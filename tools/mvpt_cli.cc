// mvpt — command-line front end for the mvp-tree library (vector data).
//
//   mvpt gen    --kind uniform|clustered --count N --dim D [--seed S]
//               [--cluster-size C --epsilon E] --out data.csv
//   mvpt build  --input data.csv --metric l1|l2|linf [--order M]
//               [--leaf K] [--paths P] [--seed S] --out index.mvpt
//   mvpt stats  --index index.mvpt
//   mvpt query  --index index.mvpt --metric l1|l2|linf
//               --point "x1,x2,..." (--radius R | --knn K | --farthest K)
//   mvpt hist   --input data.csv --metric l1|l2|linf [--bucket W]
//               [--samples N]    # pairwise distance histogram (Figs 4-5)
//   mvpt validate --index index.mvpt --metric l1|l2|linf
//                                # deep invariant check of a stored index
//   mvpt serve-bench [--count N] [--dim D] [--seed S] [--shards K]
//                    [--threads "1,2,4,8"] [--queries Q]
//                    [--radius R | --knn K] [--timeout-ms T]
//                    [--snapshot-dir DIR]  # also time cold vs warm start
//                    [--flat]    # with --snapshot-dir: additionally save a
//                                # flat (mmap-native) snapshot and report its
//                                # zero-deserialization time to first query,
//                                # checking results stay bit-identical
//                    [--deadline-partial MS]  # replay with an MS-millisecond
//                                # deadline; expired queries return their
//                                # partial harvest instead of nothing
//                    [--overload N]  # replay through admission control with
//                                # at most N queries in flight; the excess
//                                # is shed with ResourceExhausted
//                                # concurrent-serving throughput/latency
//   mvpt snapshot-save --input data.csv --metric l1|l2|linf --dir store/
//                      [--shards K] [--order M] [--leaf K] [--paths P]
//                      [--seed S] [--threads N] [--flat]
//                                # build a sharded index, persist it as a
//                                # new checksummed snapshot generation;
//                                # --flat writes the mmap-native flat layout
//   mvpt snapshot-load --dir store/ --metric l1|l2|linf [--threads N]
//                      [--point "x1,x2,..." (--radius R | --knn K)] [--flat]
//                                # load + verify the committed generation
//                                # (docs/index_format.md has the layout);
//                                # --flat serves straight out of the mapping
//   mvpt insert --dir store/ --metric l1|l2|linf
//               (--point "x1,x2,..." | --input data.csv) [--checkpoint]
//                                # durably insert into the store's dynamic
//                                # overlay (WAL-logged, fsynced before ack);
//                                # --checkpoint folds the memtable into a
//                                # delta generation afterwards
//   mvpt delete --dir store/ --metric l1|l2|linf --id N [--checkpoint]
//                                # durably delete the object with stable id N
//   mvpt compact --dir store/ --metric l1|l2|linf [--threads N] [--prune]
//                                # major merge: fold memtable + tombstones
//                                # into a fresh full generation; --prune
//                                # removes generations no longer referenced
//   mvpt wal-dump --dir store/   # decode the write-ahead log: one line per
//                                # record, plus torn-tail diagnostics
//   mvpt connect --port P [--host H] [--stats NAME]
//                                # ping an mvpt-server, list its collections;
//                                # --stats dumps one collection's ServeStats
//   mvpt query --port P --collection NAME --point "x1,x2,..."
//              (--radius R | --knn K) [--host H] [--timeout-ms T]
//              [--max-distances N]  # remote query (--host/--port switch the
//                                # query subcommand into network mode)
//   mvpt batch-query --port P --collection NAME --input queries.csv
//                    (--radius R | --knn K) [--host H] [--timeout-ms T]
//                    [--max-distances N] [--verbose]
//                                # streaming batch over one connection; prints
//                                # ok/partial/expired/shed counts + latency
//   mvpt replicate --port P --collection NAME --dir store/ [--host H]
//                                # pull the leader's committed generation into
//                                # a local store (resumable, verified)
//   mvpt selftest          # end-to-end smoke test in a temp directory
//
// Text (edit-distance) mode: pass --type words to build/query/validate;
// the input file holds one word per line, --point becomes the query word,
// and the metric is the Levenshtein edit distance.
//
// CSV format: one vector per line, comma-separated decimal values. The
// metric is not stored in the index file; pass the same --metric used at
// build time when querying.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/serialize.h"
#include "core/mvp_tree.h"
#include "dynamic/dynamic_overlay.h"
#include "dataset/histogram.h"
#include "dataset/vector_gen.h"
#include "harness/table.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "net/client.h"
#include "net/replication.h"
#include "serve/executor.h"
#include "serve/serve_stats.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"
#include "snapshot/snapshot_store.h"
#include "wal/wal.h"

namespace mvp::tools {
namespace {

using metric::Vector;

/// One tree type per supported metric; the CLI dispatches on --metric.
using TreeL1 = core::MvpTree<Vector, metric::L1>;
using TreeL2 = core::MvpTree<Vector, metric::L2>;
using TreeLInf = core::MvpTree<Vector, metric::LInf>;

struct Args {
  std::map<std::string, std::string> named;
  std::string command;

  bool Has(const std::string& key) const { return named.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = named.find(key);
    return it == named.end() ? fallback : it->second;
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = named.find(key);
    return it == named.end() ? fallback : std::atol(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = named.find(key);
    return it == named.end() ? fallback : std::atof(it->second.c_str());
  }
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mvpt gen|build|stats|query|hist|validate|serve-bench|"
               "snapshot-save|snapshot-load|insert|delete|compact|wal-dump|"
               "connect|batch-query|replicate|selftest [--key value ...]\n"
               "see the header of tools/mvpt_cli.cc for full syntax\n");
  return 2;
}

// ---- CSV vectors -----------------------------------------------------------

Result<Vector> ParseVector(const std::string& line) {
  Vector v;
  const char* p = line.c_str();
  char* end = nullptr;
  while (*p != '\0') {
    const double value = std::strtod(p, &end);
    if (end == p) return Status::InvalidArgument("bad number in: " + line);
    v.push_back(value);
    p = end;
    while (*p == ',' || *p == ' ' || *p == '\t') ++p;
  }
  if (v.empty()) return Status::InvalidArgument("empty vector line");
  return v;
}

Result<std::vector<Vector>> LoadCsv(const std::string& path) {
  auto bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  std::vector<Vector> data;
  std::string line;
  for (const std::uint8_t byte : bytes.value()) {
    if (byte == '\n') {
      if (!line.empty()) {
        auto v = ParseVector(line);
        if (!v.ok()) return v.status();
        data.push_back(std::move(v).ValueOrDie());
      }
      line.clear();
    } else if (byte != '\r') {
      line.push_back(static_cast<char>(byte));
    }
  }
  if (!line.empty()) {
    auto v = ParseVector(line);
    if (!v.ok()) return v.status();
    data.push_back(std::move(v).ValueOrDie());
  }
  for (const auto& v : data) {
    if (v.size() != data[0].size()) {
      return Status::InvalidArgument("inconsistent vector dimensions in CSV");
    }
  }
  return data;
}

Status SaveCsv(const std::string& path, const std::vector<Vector>& data) {
  std::string out;
  char buf[32];
  for (const auto& v : data) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.17g", v[i]);
      out += buf;
      if (i + 1 < v.size()) out += ',';
    }
    out += '\n';
  }
  return WriteFile(path, std::vector<std::uint8_t>(out.begin(), out.end()));
}

Result<std::vector<std::string>> LoadWords(const std::string& path) {
  auto bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  std::vector<std::string> words;
  std::string line;
  for (const std::uint8_t byte : bytes.value()) {
    if (byte == '\n') {
      if (!line.empty()) words.push_back(line);
      line.clear();
    } else if (byte != '\r') {
      line.push_back(static_cast<char>(byte));
    }
  }
  if (!line.empty()) words.push_back(line);
  if (words.empty()) return Status::InvalidArgument("no words in " + path);
  return words;
}

// ---- subcommands -----------------------------------------------------------

int RunGen(const Args& args) {
  const std::string kind = args.Get("kind", "uniform");
  const auto count = static_cast<std::size_t>(args.GetInt("count", 10000));
  const auto dim = static_cast<std::size_t>(args.GetInt("dim", 20));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 42));
  const std::string out = args.Get("out");
  if (out.empty()) return Fail("gen requires --out");
  std::vector<Vector> data;
  if (kind == "uniform") {
    data = dataset::UniformVectors(count, dim, seed);
  } else if (kind == "clustered") {
    dataset::ClusterParams params;
    params.count = count;
    params.dim = dim;
    params.cluster_size =
        static_cast<std::size_t>(args.GetInt("cluster-size", 1000));
    params.epsilon = args.GetDouble("epsilon", 0.15);
    data = dataset::ClusteredVectors(params, seed);
  } else {
    return Fail("unknown --kind (uniform|clustered)");
  }
  if (auto st = SaveCsv(out, data); !st.ok()) return Fail(st.ToString());
  std::printf("wrote %zu %zu-d vectors to %s\n", data.size(), dim,
              out.c_str());
  return 0;
}

template <typename Metric>
int BuildWith(const Args& args, std::vector<Vector> data, Metric metric) {
  typename core::MvpTree<Vector, Metric>::Options options;
  options.order = static_cast<int>(args.GetInt("order", 3));
  options.leaf_capacity = static_cast<int>(args.GetInt("leaf", 80));
  options.num_path_distances = static_cast<int>(args.GetInt("paths", 5));
  options.seed = static_cast<std::uint64_t>(args.GetInt("seed", 0));
  auto built = core::MvpTree<Vector, Metric>::Build(std::move(data),
                                                    std::move(metric), options);
  if (!built.ok()) return Fail(built.status().ToString());
  BinaryWriter writer;
  if (auto st = built.value().Serialize(&writer, VectorCodec()); !st.ok()) {
    return Fail(st.ToString());
  }
  const std::string out = args.Get("out");
  if (auto st = WriteFile(out, writer.buffer()); !st.ok()) {
    return Fail(st.ToString());
  }
  const auto stats = built.value().Stats();
  std::printf("built mvpt(%ld,%ld,p=%ld): %zu objects, height %zu, "
              "%llu construction distances -> %s (%zu bytes)\n",
              args.GetInt("order", 3), args.GetInt("leaf", 80),
              args.GetInt("paths", 5), built.value().size(), stats.height,
              static_cast<unsigned long long>(
                  stats.construction_distance_computations),
              out.c_str(), writer.buffer().size());
  return 0;
}

int RunBuild(const Args& args) {
  const std::string input = args.Get("input");
  const std::string out = args.Get("out");
  if (input.empty() || out.empty()) {
    return Fail("build requires --input and --out");
  }
  if (args.Get("type") == "words") {
    auto words = LoadWords(input);
    if (!words.ok()) return Fail(words.status().ToString());
    using WordTree = core::MvpTree<std::string, metric::Levenshtein>;
    WordTree::Options options;
    options.order = static_cast<int>(args.GetInt("order", 3));
    options.leaf_capacity = static_cast<int>(args.GetInt("leaf", 80));
    options.num_path_distances = static_cast<int>(args.GetInt("paths", 5));
    options.seed = static_cast<std::uint64_t>(args.GetInt("seed", 0));
    auto built = WordTree::Build(std::move(words).ValueOrDie(),
                                 metric::Levenshtein(), options);
    if (!built.ok()) return Fail(built.status().ToString());
    BinaryWriter writer;
    if (auto st = built.value().Serialize(&writer, StringCodec()); !st.ok()) {
      return Fail(st.ToString());
    }
    if (auto st = WriteFile(out, writer.buffer()); !st.ok()) {
      return Fail(st.ToString());
    }
    std::printf("built word index over %zu words -> %s (%zu bytes)\n",
                built.value().size(), out.c_str(), writer.buffer().size());
    return 0;
  }
  auto data = LoadCsv(input);
  if (!data.ok()) return Fail(data.status().ToString());
  const std::string metric = args.Get("metric", "l2");
  if (metric == "l1") {
    return BuildWith(args, std::move(data).ValueOrDie(), metric::L1());
  }
  if (metric == "l2") {
    return BuildWith(args, std::move(data).ValueOrDie(), metric::L2());
  }
  if (metric == "linf") {
    return BuildWith(args, std::move(data).ValueOrDie(), metric::LInf());
  }
  return Fail("unknown --metric (l1|l2|linf)");
}

template <typename Metric>
Result<core::MvpTree<Vector, Metric>> LoadIndex(const std::string& path,
                                                Metric metric) {
  auto bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  BinaryReader reader(bytes.value());
  return core::MvpTree<Vector, Metric>::Deserialize(&reader, std::move(metric),
                                                    VectorCodec());
}

template <typename Metric>
int QueryWith(const Args& args, Metric metric) {
  auto tree = LoadIndex(args.Get("index"), std::move(metric));
  if (!tree.ok()) return Fail(tree.status().ToString());
  auto point = ParseVector(args.Get("point"));
  if (!point.ok()) return Fail(point.status().ToString());
  SearchStats stats;
  std::vector<Neighbor> results;
  if (args.Has("radius")) {
    results = tree.value().RangeSearch(point.value(),
                                       args.GetDouble("radius", 0.0), &stats);
  } else if (args.Has("knn")) {
    results = tree.value().KnnSearch(
        point.value(), static_cast<std::size_t>(args.GetInt("knn", 1)),
        &stats);
  } else if (args.Has("farthest")) {
    results = tree.value().FarthestSearch(
        point.value(), static_cast<std::size_t>(args.GetInt("farthest", 1)),
        &stats);
  } else {
    return Fail("query requires one of --radius, --knn, --farthest");
  }
  std::printf("%zu results (%llu distance computations over %zu objects)\n",
              results.size(),
              static_cast<unsigned long long>(stats.distance_computations),
              tree.value().size());
  for (const auto& hit : results) {
    std::printf("  id=%zu distance=%.6f\n", hit.id, hit.distance);
  }
  return 0;
}

int RunQueryWords(const Args& args) {
  auto bytes = ReadFile(args.Get("index"));
  if (!bytes.ok()) return Fail(bytes.status().ToString());
  BinaryReader reader(bytes.value());
  using WordTree = core::MvpTree<std::string, metric::Levenshtein>;
  auto tree =
      WordTree::Deserialize(&reader, metric::Levenshtein(), StringCodec());
  if (!tree.ok()) return Fail(tree.status().ToString());
  const std::string word = args.Get("point");
  if (word.empty()) return Fail("query --type words requires --point WORD");
  SearchStats stats;
  std::vector<Neighbor> results;
  if (args.Has("radius")) {
    results = tree.value().RangeSearch(word, args.GetDouble("radius", 1.0),
                                       &stats);
  } else if (args.Has("knn")) {
    results = tree.value().KnnSearch(
        word, static_cast<std::size_t>(args.GetInt("knn", 1)), &stats);
  } else {
    return Fail("query requires one of --radius, --knn");
  }
  std::printf("%zu results (%llu distance computations over %zu words)\n",
              results.size(),
              static_cast<unsigned long long>(stats.distance_computations),
              tree.value().size());
  for (const auto& hit : results) {
    std::printf("  %-20s edits=%.0f\n",
                tree.value().object(hit.id).c_str(), hit.distance);
  }
  return 0;
}

int RunQuery(const Args& args) {
  if (args.Get("index").empty()) return Fail("query requires --index");
  if (args.Get("type") == "words") return RunQueryWords(args);
  const std::string metric = args.Get("metric", "l2");
  if (metric == "l1") return QueryWith(args, metric::L1());
  if (metric == "l2") return QueryWith(args, metric::L2());
  if (metric == "linf") return QueryWith(args, metric::LInf());
  return Fail("unknown --metric (l1|l2|linf)");
}

template <typename Metric>
int HistWith(const Args& args, const std::vector<Vector>& data,
             Metric metric) {
  const double bucket = args.GetDouble("bucket", 0.01);
  if (bucket <= 0) return Fail("--bucket must be positive");
  const auto samples =
      static_cast<std::uint64_t>(args.GetInt("samples", 2000000));
  const auto hist = dataset::SampledPairsHistogram(data, metric, bucket,
                                                   samples, /*seed=*/99);
  dataset::PrintHistogram(std::cout, hist);
  return 0;
}

int RunHist(const Args& args) {
  const std::string input = args.Get("input");
  if (input.empty()) return Fail("hist requires --input");
  auto data = LoadCsv(input);
  if (!data.ok()) return Fail(data.status().ToString());
  const std::string metric = args.Get("metric", "l2");
  if (metric == "l1") return HistWith(args, data.value(), metric::L1());
  if (metric == "l2") return HistWith(args, data.value(), metric::L2());
  if (metric == "linf") return HistWith(args, data.value(), metric::LInf());
  return Fail("unknown --metric (l1|l2|linf)");
}

template <typename Metric>
int ValidateWith(const Args& args, Metric metric) {
  auto tree = LoadIndex(args.Get("index"), std::move(metric));
  if (!tree.ok()) return Fail(tree.status().ToString());
  if (auto st = tree.value().ValidateInvariants(); !st.ok()) {
    return Fail("index INVALID: " + st.ToString());
  }
  std::printf("index valid: %zu objects, all stored distances and shell "
              "bounds verified against the supplied metric\n",
              tree.value().size());
  return 0;
}

int RunValidate(const Args& args) {
  if (args.Get("index").empty()) return Fail("validate requires --index");
  const std::string metric = args.Get("metric", "l2");
  if (metric == "l1") return ValidateWith(args, metric::L1());
  if (metric == "l2") return ValidateWith(args, metric::L2());
  if (metric == "linf") return ValidateWith(args, metric::LInf());
  return Fail("unknown --metric (l1|l2|linf)");
}

int RunStats(const Args& args) {
  // Stats are metric-independent; load with L2.
  auto tree = LoadIndex(args.Get("index"), metric::L2());
  if (!tree.ok()) return Fail(tree.status().ToString());
  const auto stats = tree.value().Stats();
  const auto& options = tree.value().options();
  std::printf("mvpt(m=%d, k=%d, p=%d)\n", options.order, options.leaf_capacity,
              options.num_path_distances);
  std::printf("objects:          %zu\n", tree.value().size());
  std::printf("height:           %zu\n", stats.height);
  std::printf("internal nodes:   %zu\n", stats.num_internal_nodes);
  std::printf("leaf nodes:       %zu\n", stats.num_leaf_nodes);
  std::printf("vantage points:   %zu\n", stats.num_vantage_points);
  std::printf("leaf points:      %zu\n", stats.num_leaf_points);
  return 0;
}

// ---- serve-bench -----------------------------------------------------------

std::vector<std::size_t> ParseThreadList(const std::string& spec) {
  std::vector<std::size_t> threads;
  const char* p = spec.c_str();
  char* end = nullptr;
  while (*p != '\0') {
    const long value = std::strtol(p, &end, 10);
    if (end == p) break;
    if (value > 0) threads.push_back(static_cast<std::size_t>(value));
    p = end;
    while (*p == ',' || *p == ' ') ++p;
  }
  return threads;
}

/// Throughput/latency benchmark for the serving layer: builds an unsharded
/// baseline tree and a sharded index over the same data, replays one batch
/// of queries serially (the baseline) and then on pools of increasing
/// size, checking every configuration returns bit-identical results.
int RunServeBench(const Args& args) {
  const auto count = static_cast<std::size_t>(args.GetInt("count", 20000));
  const auto dim = static_cast<std::size_t>(args.GetInt("dim", 20));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 42));
  const auto shards = static_cast<std::size_t>(args.GetInt("shards", 4));
  const auto num_queries =
      static_cast<std::size_t>(args.GetInt("queries", 200));
  const auto timeout_ms = args.GetInt("timeout-ms", 0);  // 0: no deadline
  const std::vector<std::size_t> thread_counts =
      ParseThreadList(args.Get("threads", "1,2,4,8"));
  if (thread_counts.empty()) return Fail("--threads needs e.g. \"1,2,4\"");

  const auto data = dataset::UniformVectors(count, dim, seed);
  const auto query_points =
      dataset::UniformQueryVectors(num_queries, dim, seed + 1);
  std::vector<serve::BatchQuery<Vector>> batch;
  for (const auto& q : query_points) {
    serve::BatchQuery<Vector> bq;
    bq.object = q;
    if (args.Has("knn")) {
      bq.kind = serve::BatchQuery<Vector>::Kind::kKnn;
      bq.k = static_cast<std::size_t>(args.GetInt("knn", 10));
    } else {
      bq.radius = args.GetDouble("radius", 0.3);
    }
    if (timeout_ms > 0) bq.timeout = std::chrono::milliseconds(timeout_ms);
    batch.push_back(bq);
  }

  serve::ThreadPool build_pool(
      thread_counts.back() > 1 ? thread_counts.back() : 2);
  serve::ShardedMvpIndex<Vector, metric::L2>::Options options;
  options.num_shards = shards;
  const auto build_t0 = std::chrono::steady_clock::now();
  auto sharded = serve::ShardedMvpIndex<Vector, metric::L2>::Build(
      data, metric::L2(), options, &build_pool);
  const double build_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - build_t0)
                              .count();
  if (!sharded.ok()) return Fail(sharded.status().ToString());
  auto plain = TreeL2::Build(data, metric::L2(), {});
  if (!plain.ok()) return Fail(plain.status().ToString());

  harness::PrintFigureHeader(
      std::cout, "serve-bench",
      "concurrent serving: batch throughput and tail latency",
      std::to_string(count) + " uniform " + std::to_string(dim) +
          "-d vectors, L2, " + std::to_string(shards) + " shards, " +
          std::to_string(batch.size()) + " queries/batch");

  // Baseline: unsharded tree, serial executor on the calling thread.
  const auto t0 = std::chrono::steady_clock::now();
  const auto baseline = serve::RunBatch(plain.value(), batch,
                                        /*pool=*/nullptr);
  const double base_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  harness::Table table({"config", "threads", "wall_ms", "qps", "speedup",
                        "p50_us", "p95_us", "p99_us", "shed"});
  table.AddRow({"unsharded-serial", "1", harness::FormatDouble(base_ms, 1),
                harness::FormatDouble(1000.0 * static_cast<double>(batch.size()) /
                                          base_ms,
                                      0),
                "1.0", "-", "-", "-", "0"});

  bool all_match = true;
  for (const std::size_t threads : thread_counts) {
    serve::ThreadPool pool(threads);
    serve::ServeStats stats;
    const auto start = std::chrono::steady_clock::now();
    const auto outcomes = serve::RunBatch(sharded.value(), batch, &pool,
                                          &stats);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    const auto snap = stats.Snapshot();
    // Every configuration must return exactly the baseline's results
    // (unless a deadline was requested, which may legitimately shed).
    if (timeout_ms <= 0) {
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].status.ok() ||
            outcomes[i].neighbors != baseline[i].neighbors) {
          all_match = false;
        }
      }
    }
    table.AddRow(
        {"sharded", std::to_string(threads),
         harness::FormatDouble(wall_ms, 1),
         harness::FormatDouble(
             1000.0 * static_cast<double>(batch.size()) / wall_ms, 0),
         harness::FormatDouble(base_ms / wall_ms, 2),
         harness::FormatDouble(static_cast<double>(snap.p50.count()) / 1e3, 0),
         harness::FormatDouble(static_cast<double>(snap.p95.count()) / 1e3, 0),
         harness::FormatDouble(static_cast<double>(snap.p99.count()) / 1e3, 0),
         std::to_string(snap.deadline_exceeded)});
  }
  std::cout << table.ToText();
  if (timeout_ms <= 0) {
    std::printf("results identical across all configurations: %s\n",
                all_match ? "yes" : "NO (BUG)");
    if (!all_match) return 1;
  }

  // Graceful-degradation demo: replay the batch with a tight deadline and
  // show how much of each answer survives as a harvested partial result.
  if (args.Has("deadline-partial")) {
    const long partial_ms = args.GetInt("deadline-partial", 1);
    auto degraded = batch;
    for (auto& bq : degraded) {
      bq.timeout = std::chrono::milliseconds(partial_ms > 0 ? partial_ms : 1);
    }
    serve::ThreadPool pool(thread_counts.back());
    serve::ServeStats stats;
    const auto outcomes =
        serve::RunBatch(sharded.value(), degraded, &pool, &stats);
    std::size_t harvested = 0, full_answers = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      harvested += outcomes[i].neighbors.size();
      full_answers += baseline[i].neighbors.size();
    }
    const auto snap = stats.Snapshot();
    harness::Table deg({"deadline_ms", "ok", "partial", "expired", "answer_%",
                        "degr_p50_us", "degr_p99_us"});
    deg.AddRow(
        {std::to_string(partial_ms), std::to_string(snap.ok),
         std::to_string(snap.partial), std::to_string(snap.deadline_exceeded),
         harness::FormatDouble(full_answers == 0
                                   ? 100.0
                                   : 100.0 * static_cast<double>(harvested) /
                                         static_cast<double>(full_answers),
                               1),
         harness::FormatDouble(
             static_cast<double>(snap.degraded_p50.count()) / 1e3, 0),
         harness::FormatDouble(
             static_cast<double>(snap.degraded_p99.count()) / 1e3, 0)});
    std::cout << deg.ToText();
    std::printf("deadline-expired queries returned their harvest instead of "
                "nothing: %zu/%zu neighbors served\n",
                harvested, full_answers);
  }

  // Overload demo: admission control bounds the work in flight; the excess
  // of a burst is shed immediately with ResourceExhausted, not queued into
  // uselessness.
  if (args.Has("overload")) {
    const auto in_flight =
        static_cast<std::size_t>(args.GetInt("overload", 8));
    serve::AdmissionController::Options admission_options;
    admission_options.max_in_flight = in_flight > 0 ? in_flight : 1;
    admission_options.num_workers = thread_counts.back();
    serve::AdmissionController admission(admission_options);
    serve::ExecutorOptions exec;
    exec.admission = &admission;

    serve::ThreadPool pool(thread_counts.back());
    serve::ServeStats stats;
    const auto start = std::chrono::steady_clock::now();
    const auto outcomes =
        serve::RunBatch(sharded.value(), batch, &pool, &stats, exec);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    // Per-query outcomes are summarized through `stats`; the table below
    // reads the aggregate snapshot.
    (void)outcomes;
    const auto snap = stats.Snapshot();
    harness::Table shed_table({"max_in_flight", "queries", "ok", "shed",
                               "wall_ms", "p99_us"});
    shed_table.AddRow(
        {std::to_string(admission_options.max_in_flight),
         std::to_string(snap.queries), std::to_string(snap.ok),
         std::to_string(snap.shed), harness::FormatDouble(wall_ms, 1),
         harness::FormatDouble(static_cast<double>(snap.p99.count()) / 1e3,
                               0)});
    std::cout << shed_table.ToText();
    std::printf("admission control shed %llu of %llu queries immediately "
                "(ResourceExhausted) instead of queueing them\n",
                static_cast<unsigned long long>(snap.shed),
                static_cast<unsigned long long>(snap.queries));
  }

  // Cold-start (build from raw data) vs warm-start (load a checksummed
  // snapshot) time to first query.
  if (args.Has("snapshot-dir")) {
    snapshot::SnapshotStore store(args.Get("snapshot-dir"));
    const auto save_t0 = std::chrono::steady_clock::now();
    auto gen = store.SaveSharded(sharded.value(), VectorCodec());
    const double save_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - save_t0)
                               .count();
    if (!gen.ok()) return Fail(gen.status().ToString());

    const auto load_t0 = std::chrono::steady_clock::now();
    auto loaded =
        store.LoadSharded<Vector>(metric::L2(), VectorCodec(), &build_pool);
    const double load_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - load_t0)
                               .count();
    if (!loaded.ok()) return Fail(loaded.status().ToString());

    auto first_query_ms = [&](const auto& index) {
      const auto q0 = std::chrono::steady_clock::now();
      // Timing probe: only the wall clock matters, not the hits.
      (void)index.RangeSearch(batch[0].object, batch[0].radius);
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - q0)
          .count();
    };
    const double cold_q = first_query_ms(sharded.value());
    const double warm_q = first_query_ms(loaded.value().index);

    harness::Table ttfq({"start", "prepare_ms", "first_query_ms", "ttfq_ms"});
    ttfq.AddRow({"cold (build)", harness::FormatDouble(build_ms, 1),
                 harness::FormatDouble(cold_q, 2),
                 harness::FormatDouble(build_ms + cold_q, 1)});
    ttfq.AddRow({"warm (snapshot)", harness::FormatDouble(load_ms, 1),
                 harness::FormatDouble(warm_q, 2),
                 harness::FormatDouble(load_ms + warm_q, 1)});

    // Zero-deserialization flavor: write the flat layout, open it straight
    // off the mapping (one mmap + checksum pass, no per-node decode), and
    // confirm it answers every query bit-identically to the heap index.
    double flat_open_ms = 0.0, flat_q = 0.0;
    if (args.Has("flat")) {
      const auto fsave_t0 = std::chrono::steady_clock::now();
      auto flat_gen = store.SaveFlat(sharded.value());
      const double flat_save_ms = std::chrono::duration<double, std::milli>(
                                      std::chrono::steady_clock::now() -
                                      fsave_t0)
                                      .count();
      if (!flat_gen.ok()) return Fail(flat_gen.status().ToString());
      const auto fopen_t0 = std::chrono::steady_clock::now();
      auto flat = store.OpenFlat(metric::L2(), &build_pool);
      flat_open_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - fopen_t0)
                         .count();
      if (!flat.ok()) return Fail(flat.status().ToString());
      flat_q = first_query_ms(flat.value().index);
      ttfq.AddRow({"flat (mmap)", harness::FormatDouble(flat_open_ms, 1),
                   harness::FormatDouble(flat_q, 2),
                   harness::FormatDouble(flat_open_ms + flat_q, 1)});

      bool flat_match = true;
      for (const auto& bq : batch) {
        SearchStats hs, fs;
        if (bq.kind == serve::BatchQuery<Vector>::Kind::kKnn) {
          if (sharded.value().KnnSearch(bq.object, bq.k, &hs) !=
              flat.value().index.KnnSearch(bq.object, bq.k, &fs)) {
            flat_match = false;
          }
        } else {
          if (sharded.value().RangeSearch(bq.object, bq.radius, &hs) !=
              flat.value().index.RangeSearch(bq.object, bq.radius, &fs)) {
            flat_match = false;
          }
        }
        if (hs.distance_computations != fs.distance_computations) {
          flat_match = false;
        }
      }
      std::cout << ttfq.ToText();
      std::printf("flat generation %llu (save %.1f ms); flat results and "
                  "distance counts identical to heap: %s\n",
                  static_cast<unsigned long long>(flat_gen.value()),
                  flat_save_ms, flat_match ? "yes" : "NO (BUG)");
      if (!flat_match) return 1;
    } else {
      std::cout << ttfq.ToText();
    }
    std::printf("snapshot generation %llu (save %.1f ms); warm start %.1fx "
                "faster to first query\n",
                static_cast<unsigned long long>(gen.value()), save_ms,
                (build_ms + cold_q) / (load_ms + warm_q));
    if (args.Has("flat")) {
      std::printf("flat start %.1fx faster to first query than heap warm "
                  "start\n",
                  (load_ms + warm_q) / (flat_open_ms + flat_q));
    }
  }
  return 0;
}

// ---- snapshot-save / snapshot-load -----------------------------------------

template <typename Metric>
int SnapshotSaveWith(const Args& args, std::vector<Vector> data,
                     Metric metric) {
  using Index = serve::ShardedMvpIndex<Vector, Metric>;
  typename Index::Options options;
  options.num_shards = static_cast<std::size_t>(args.GetInt("shards", 4));
  options.tree.order = static_cast<int>(args.GetInt("order", 3));
  options.tree.leaf_capacity = static_cast<int>(args.GetInt("leaf", 80));
  options.tree.num_path_distances =
      static_cast<int>(args.GetInt("paths", 5));
  options.tree.seed = static_cast<std::uint64_t>(args.GetInt("seed", 0));

  const auto threads = static_cast<std::size_t>(args.GetInt("threads", 2));
  serve::ThreadPool pool(threads > 0 ? threads : 1);
  const auto t0 = std::chrono::steady_clock::now();
  auto built = Index::Build(std::move(data), std::move(metric), options,
                            &pool);
  if (!built.ok()) return Fail(built.status().ToString());
  const double build_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  snapshot::SnapshotStore store(args.Get("dir"));
  const bool flat = args.Has("flat");
  const auto t1 = std::chrono::steady_clock::now();
  auto gen = flat ? store.SaveFlat(built.value())
                  : store.SaveSharded(built.value(), VectorCodec());
  if (!gen.ok()) return Fail(gen.status().ToString());
  const double save_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t1)
                             .count();
  std::printf("%s snapshot generation %llu committed: %zu objects in %zu "
              "shards (build %.1f ms, save %.1f ms) -> %s\n",
              flat ? "flat" : "heap",
              static_cast<unsigned long long>(gen.value()),
              built.value().size(), built.value().num_shards(), build_ms,
              save_ms, store.GenerationDir(gen.value()).c_str());
  return 0;
}

int RunSnapshotSave(const Args& args) {
  if (args.Get("input").empty() || args.Get("dir").empty()) {
    return Fail("snapshot-save requires --input and --dir");
  }
  auto data = LoadCsv(args.Get("input"));
  if (!data.ok()) return Fail(data.status().ToString());
  const std::string metric = args.Get("metric", "l2");
  if (metric == "l1") {
    return SnapshotSaveWith(args, std::move(data).ValueOrDie(), metric::L1());
  }
  if (metric == "l2") {
    return SnapshotSaveWith(args, std::move(data).ValueOrDie(), metric::L2());
  }
  if (metric == "linf") {
    return SnapshotSaveWith(args, std::move(data).ValueOrDie(),
                            metric::LInf());
  }
  return Fail("unknown --metric (l1|l2|linf)");
}

template <typename Metric>
int SnapshotLoadWith(const Args& args, Metric metric) {
  snapshot::SnapshotStore store(args.Get("dir"));
  const auto threads = static_cast<std::size_t>(args.GetInt("threads", 2));
  serve::ThreadPool pool(threads > 0 ? threads : 1);

  const bool flat = args.Has("flat");
  const auto t0 = std::chrono::steady_clock::now();
  auto loaded =
      flat ? store.OpenFlat(metric, &pool)
           : store.LoadSharded<Vector>(std::move(metric), VectorCodec(),
                                       &pool);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const double load_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  const auto& manifest = loaded.value().manifest;
  std::printf("%s generation %llu in %.1f ms (checksums verified): "
              "%llu objects, %llu shards, mvpt(m=%d, k=%d, p=%d), seed %llu\n",
              flat ? "opened flat (zero-deserialization)" : "loaded",
              static_cast<unsigned long long>(loaded.value().generation),
              load_ms,
              static_cast<unsigned long long>(manifest.object_count),
              static_cast<unsigned long long>(manifest.num_shards),
              manifest.order, manifest.leaf_capacity,
              manifest.num_path_distances,
              static_cast<unsigned long long>(manifest.seed));

  if (args.Has("point")) {
    auto point = ParseVector(args.Get("point"));
    if (!point.ok()) return Fail(point.status().ToString());
    SearchStats stats;
    std::vector<Neighbor> results;
    const auto q0 = std::chrono::steady_clock::now();
    if (args.Has("knn")) {
      results = loaded.value().index.KnnSearch(
          point.value(), static_cast<std::size_t>(args.GetInt("knn", 1)),
          &stats, &pool);
    } else {
      results = loaded.value().index.RangeSearch(
          point.value(), args.GetDouble("radius", 0.3), &stats, &pool);
    }
    const double query_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - q0)
                                .count();
    std::printf("%zu results in %.2f ms (%llu distance computations); "
                "time to first query: %.1f ms\n",
                results.size(), query_ms,
                static_cast<unsigned long long>(stats.distance_computations),
                load_ms + query_ms);
    // Compacted dynamic generations carry a dense-id -> stable-id map;
    // report stable ids so the output matches what insert/delete accept.
    const auto& stable = loaded.value().stable_ids;
    for (const auto& hit : results) {
      std::printf("  id=%llu distance=%.6f\n",
                  static_cast<unsigned long long>(
                      hit.id < stable.size() ? stable[hit.id] : hit.id),
                  hit.distance);
    }
  }
  return 0;
}

int RunSnapshotLoad(const Args& args) {
  if (args.Get("dir").empty()) return Fail("snapshot-load requires --dir");
  const std::string metric = args.Get("metric", "l2");
  if (metric == "l1") return SnapshotLoadWith(args, metric::L1());
  if (metric == "l2") return SnapshotLoadWith(args, metric::L2());
  if (metric == "linf") return SnapshotLoadWith(args, metric::LInf());
  return Fail("unknown --metric (l1|l2|linf)");
}

// ---- insert / delete / compact / wal-dump (online updates) -----------------

template <typename Metric>
int MutateWith(const Args& args, Metric metric, bool erase) {
  using Overlay = dynamic::DynamicOverlay<Vector, Metric, VectorCodec>;
  auto opened =
      Overlay::Open(args.Get("dir"), std::move(metric), VectorCodec());
  if (!opened.ok()) return Fail(opened.status().ToString());
  Overlay& overlay = *opened.value();

  if (erase) {
    if (!args.Has("id")) return Fail("delete requires --id");
    const auto id = static_cast<std::size_t>(args.GetInt("id", 0));
    const Status erased = overlay.Erase(id);
    if (!erased.ok()) return Fail(erased.ToString());
    std::printf("deleted id=%zu (durable)\n", id);
  } else {
    std::vector<Vector> points;
    if (args.Has("point")) {
      auto point = ParseVector(args.Get("point"));
      if (!point.ok()) return Fail(point.status().ToString());
      points.push_back(std::move(point).ValueOrDie());
    } else if (args.Has("input")) {
      auto data = LoadCsv(args.Get("input"));
      if (!data.ok()) return Fail(data.status().ToString());
      points = std::move(data).ValueOrDie();
    } else {
      return Fail("insert requires --point or --input");
    }
    std::size_t first = 0, last = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      auto id = overlay.Insert(std::move(points[i]));
      if (!id.ok()) return Fail(id.status().ToString());
      if (i == 0) first = id.value();
      last = id.value();
    }
    if (points.size() == 1) {
      std::printf("inserted id=%zu (durable)\n", first);
    } else {
      std::printf("inserted %zu objects, ids %zu..%zu (durable)\n",
                  points.size(), first, last);
    }
  }

  if (args.Has("checkpoint")) {
    auto gen = overlay.Checkpoint();
    if (!gen.ok()) return Fail(gen.status().ToString());
    std::printf("checkpointed into generation %llu\n",
                static_cast<unsigned long long>(gen.value()));
  }
  const auto wal = overlay.wal_stats();
  std::printf("store: %zu live objects (%zu in memtable, %zu tombstones); "
              "wal: %llu records in %llu fsync batches\n",
              overlay.size(), overlay.memtable_size(),
              overlay.tombstone_count(),
              static_cast<unsigned long long>(wal.records_synced),
              static_cast<unsigned long long>(wal.sync_batches));
  return 0;
}

int RunMutate(const Args& args, bool erase) {
  if (args.Get("dir").empty()) return Fail("insert/delete require --dir");
  const std::string metric = args.Get("metric", "l2");
  if (metric == "l1") return MutateWith(args, metric::L1(), erase);
  if (metric == "l2") return MutateWith(args, metric::L2(), erase);
  if (metric == "linf") return MutateWith(args, metric::LInf(), erase);
  return Fail("unknown --metric (l1|l2|linf)");
}

template <typename Metric>
int CompactWith(const Args& args, Metric metric) {
  using Overlay = dynamic::DynamicOverlay<Vector, Metric, VectorCodec>;
  auto opened =
      Overlay::Open(args.Get("dir"), std::move(metric), VectorCodec());
  if (!opened.ok()) return Fail(opened.status().ToString());
  Overlay& overlay = *opened.value();

  const std::size_t memtable = overlay.memtable_size();
  const std::size_t tombstones = overlay.tombstone_count();
  const auto threads = static_cast<std::size_t>(args.GetInt("threads", 2));
  serve::ThreadPool pool(threads > 0 ? threads : 1);
  const auto t0 = std::chrono::steady_clock::now();
  auto gen = overlay.Compact(&pool);
  if (!gen.ok()) return Fail(gen.status().ToString());
  const double compact_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
  std::printf("compacted %zu memtable objects + %zu tombstones into full "
              "generation %llu (%zu objects, %.1f ms)\n",
              memtable, tombstones,
              static_cast<unsigned long long>(gen.value()), overlay.size(),
              compact_ms);
  if (args.Has("prune")) {
    snapshot::SnapshotStore store(args.Get("dir"));
    std::printf("pruned %zu stale generation(s)\n",
                store.PruneStaleGenerations());
  }
  return 0;
}

int RunCompact(const Args& args) {
  if (args.Get("dir").empty()) return Fail("compact requires --dir");
  const std::string metric = args.Get("metric", "l2");
  if (metric == "l1") return CompactWith(args, metric::L1());
  if (metric == "l2") return CompactWith(args, metric::L2());
  if (metric == "linf") return CompactWith(args, metric::LInf());
  return Fail("unknown --metric (l1|l2|linf)");
}

int RunWalDump(const Args& args) {
  if (args.Get("dir").empty()) return Fail("wal-dump requires --dir");
  const std::string path = args.Get("dir") + "/" + wal::kWalFileName;
  auto log = wal::ReadWal(path);
  if (!log.ok()) return Fail(log.status().ToString());
  for (const auto& record : log.value().records) {
    if (record.op == wal::WalOp::kInsert) {
      // The payload is the codec-encoded object; decode just enough to
      // report its shape.
      BinaryReader reader(record.payload.data(), record.payload.size());
      Vector v;
      const Status decoded = VectorCodec().Read(reader, &v);
      if (decoded.ok() && reader.AtEnd()) {
        std::printf("seq=%llu insert id=%llu dim=%zu\n",
                    static_cast<unsigned long long>(record.seq),
                    static_cast<unsigned long long>(record.id), v.size());
      } else {
        std::printf("seq=%llu insert id=%llu payload=%zu bytes "
                    "(not a vector)\n",
                    static_cast<unsigned long long>(record.seq),
                    static_cast<unsigned long long>(record.id),
                    record.payload.size());
      }
    } else {
      std::printf("seq=%llu delete id=%llu\n",
                  static_cast<unsigned long long>(record.seq),
                  static_cast<unsigned long long>(record.id));
    }
  }
  std::printf("%zu records, %llu valid bytes%s\n", log.value().records.size(),
              static_cast<unsigned long long>(log.value().valid_bytes),
              log.value().torn_tail
                  ? " + a torn tail (repaired on next recovery)"
                  : "");
  return 0;
}

int RunSelfTest() {
  const std::string dir = std::getenv("TMPDIR") != nullptr
                              ? std::string(std::getenv("TMPDIR"))
                              : std::string("/tmp");
  const std::string csv = dir + "/mvpt_selftest.csv";
  const std::string idx = dir + "/mvpt_selftest.mvpt";
  Args gen;
  gen.named = {{"kind", "uniform"}, {"count", "2000"}, {"dim", "8"},
               {"seed", "7"},       {"out", csv}};
  if (RunGen(gen) != 0) return 1;
  Args build;
  build.named = {{"input", csv}, {"metric", "l2"}, {"out", idx}};
  if (RunBuild(build) != 0) return 1;
  Args stats;
  stats.named = {{"index", idx}};
  if (RunStats(stats) != 0) return 1;
  Args validate;
  validate.named = {{"index", idx}, {"metric", "l2"}};
  if (RunValidate(validate) != 0) return 1;
  Args hist;
  hist.named = {{"input", csv}, {"metric", "l2"}, {"samples", "20000"}};
  if (RunHist(hist) != 0) return 1;
  Args query;
  query.named = {{"index", idx},
                 {"metric", "l2"},
                 {"point", "0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5"},
                 {"knn", "5"}};
  if (RunQuery(query) != 0) return 1;
  // Snapshot round trip through the store.
  const std::string snap_dir = dir + "/mvpt_selftest_snap";
  Args snap_save;
  snap_save.named = {{"input", csv}, {"metric", "l2"}, {"dir", snap_dir},
                     {"shards", "3"}};
  if (RunSnapshotSave(snap_save) != 0) return 1;
  Args snap_load;
  snap_load.named = {{"dir", snap_dir},
                     {"metric", "l2"},
                     {"point", "0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5"},
                     {"knn", "3"}};
  if (RunSnapshotLoad(snap_load) != 0) return 1;
  std::filesystem::remove_all(snap_dir);
  // Online updates: WAL-logged mutations on a fresh store, visible to a
  // plain snapshot-load after compaction.
  const std::string dyn_dir = dir + "/mvpt_selftest_dyn";
  std::filesystem::remove_all(dyn_dir);
  std::filesystem::create_directories(dyn_dir);
  const std::string small_csv = dir + "/mvpt_selftest_small.csv";
  Args small_gen;
  small_gen.named = {{"kind", "uniform"}, {"count", "200"}, {"dim", "8"},
                     {"seed", "9"},       {"out", small_csv}};
  if (RunGen(small_gen) != 0) return 1;
  Args ins;
  ins.named = {{"dir", dyn_dir}, {"metric", "l2"}, {"input", small_csv}};
  if (RunMutate(ins, /*erase=*/false) != 0) return 1;
  Args del;
  del.named = {{"dir", dyn_dir}, {"metric", "l2"}, {"id", "0"}};
  if (RunMutate(del, /*erase=*/true) != 0) return 1;
  Args dump;
  dump.named = {{"dir", dyn_dir}};
  if (RunWalDump(dump) != 0) return 1;
  Args compact;
  compact.named = {{"dir", dyn_dir}, {"metric", "l2"}, {"prune", "1"}};
  if (RunCompact(compact) != 0) return 1;
  Args dyn_load;
  dyn_load.named = {{"dir", dyn_dir},
                    {"metric", "l2"},
                    {"point", "0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5"},
                    {"knn", "3"}};
  if (RunSnapshotLoad(dyn_load) != 0) return 1;
  std::filesystem::remove_all(dyn_dir);
  std::remove(small_csv.c_str());
  // Word-mode round trip.
  const std::string words_txt = dir + "/mvpt_selftest_words.txt";
  const std::string words_idx = dir + "/mvpt_selftest_words.mvpt";
  if (!WriteFile(words_txt, {'h','e','l','l','o','\n','w','o','r','l','d','\n',
                             'h','e','l','p','\n'})
           .ok()) {
    return 1;
  }
  Args wbuild;
  wbuild.named = {{"input", words_txt}, {"type", "words"},
                  {"out", words_idx}, {"leaf", "4"}};
  if (RunBuild(wbuild) != 0) return 1;
  Args wquery;
  wquery.named = {{"index", words_idx}, {"type", "words"},
                  {"point", "helo"}, {"radius", "1"}};
  if (RunQuery(wquery) != 0) return 1;
  std::remove(csv.c_str());
  std::remove(idx.c_str());
  std::remove(words_txt.c_str());
  std::remove(words_idx.c_str());
  std::printf("selftest ok\n");
  return 0;
}

// ---- network subcommands ---------------------------------------------------

#if defined(MVPTREE_FAULT_FS_POSIX)

Result<net::Client> ConnectFromArgs(const Args& args) {
  if (!args.Has("port")) return Status::InvalidArgument("--port is required");
  return net::Client::Connect(
      args.Get("host", "127.0.0.1"),
      static_cast<std::uint16_t>(args.GetInt("port", 0)));
}

net::WireQuery WireQueryFromArgs(const Args& args, Vector point) {
  net::WireQuery query;
  query.point = std::move(point);
  if (args.Has("knn")) {
    query.kind = 1;
    query.k = static_cast<std::uint64_t>(args.GetInt("knn", 1));
  } else {
    query.kind = 0;
    query.radius = args.GetDouble("radius", 0.0);
  }
  if (args.Has("timeout-ms")) {
    query.timeout_ns =
        static_cast<std::uint64_t>(args.GetInt("timeout-ms", 0)) * 1000000ull;
  }
  query.max_distance_computations =
      static_cast<std::uint64_t>(args.GetInt("max-distances", 0));
  return query;
}

const char* OutcomeLabel(const net::WireOutcome& outcome) {
  if (outcome.status_code == 0) return "ok";
  if (outcome.partial) return "partial";
  if (outcome.status_code ==
      static_cast<std::uint32_t>(StatusCode::kResourceExhausted)) {
    return "shed";
  }
  return "error";
}

int RunConnect(const Args& args) {
  auto client = ConnectFromArgs(args);
  if (!client.ok()) return Fail(client.status().ToString());
  Status pinged = client.value().Ping();
  if (!pinged.ok()) return Fail(pinged.ToString());
  auto collections = client.value().ListCollections();
  if (!collections.ok()) return Fail(collections.status().ToString());
  std::printf("connected; %zu collection(s)\n", collections.value().size());
  for (const auto& info : collections.value()) {
    std::printf("  %-16s metric=%-4s mode=%-7s generation=%llu size=%llu\n",
                info.name.c_str(), info.metric.c_str(),
                info.dynamic ? "dynamic" : "static",
                static_cast<unsigned long long>(info.generation),
                static_cast<unsigned long long>(info.size));
  }
  if (args.Has("stats")) {
    auto stats = client.value().Stats(args.Get("stats"));
    if (!stats.ok()) return Fail(stats.status().ToString());
    const auto& s = stats.value();
    std::printf("stats for %s:\n", args.Get("stats").c_str());
    std::printf(
        "  queries=%llu ok=%llu partial=%llu deadline_exceeded=%llu "
        "shed=%llu\n",
        static_cast<unsigned long long>(s.queries),
        static_cast<unsigned long long>(s.ok),
        static_cast<unsigned long long>(s.partial),
        static_cast<unsigned long long>(s.deadline_exceeded),
        static_cast<unsigned long long>(s.shed));
    std::printf(
        "  distance_computations=%llu results_returned=%llu\n",
        static_cast<unsigned long long>(s.distance_computations),
        static_cast<unsigned long long>(s.results_returned));
    std::printf("  latency p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms\n",
                s.p50.count() / 1e6, s.p95.count() / 1e6, s.p99.count() / 1e6,
                s.max.count() / 1e6);
  }
  return 0;
}

int RunRemoteQuery(const Args& args) {
  const std::string collection = args.Get("collection");
  if (collection.empty()) return Fail("remote query requires --collection");
  if (!args.Has("radius") && !args.Has("knn")) {
    return Fail("query requires one of --radius, --knn");
  }
  auto point = ParseVector(args.Get("point"));
  if (!point.ok()) return Fail(point.status().ToString());
  auto client = ConnectFromArgs(args);
  if (!client.ok()) return Fail(client.status().ToString());
  auto outcome = client.value().Query(
      collection, WireQueryFromArgs(args, std::move(point).ValueOrDie()));
  if (!outcome.ok()) return Fail(outcome.status().ToString());
  const net::WireOutcome& result = outcome.value();
  if (result.status_code != 0 && !result.partial) {
    return Fail(result.status().ToString());
  }
  std::printf("%zu results%s (%llu distance computations, %.3f ms)\n",
              result.neighbors.size(), result.partial ? " [partial]" : "",
              static_cast<unsigned long long>(result.distance_computations),
              result.latency_ns / 1e6);
  for (const auto& hit : result.neighbors) {
    std::printf("  id=%zu distance=%.6f\n", hit.id, hit.distance);
  }
  return 0;
}

int RunBatchQuery(const Args& args) {
  const std::string collection = args.Get("collection");
  if (collection.empty()) return Fail("batch-query requires --collection");
  if (!args.Has("radius") && !args.Has("knn")) {
    return Fail("batch-query requires one of --radius, --knn");
  }
  auto points = LoadCsv(args.Get("input"));
  if (!points.ok()) return Fail(points.status().ToString());
  std::vector<net::WireQuery> queries;
  queries.reserve(points.value().size());
  for (Vector& point : points.value()) {
    queries.push_back(WireQueryFromArgs(args, std::move(point)));
  }
  auto client = ConnectFromArgs(args);
  if (!client.ok()) return Fail(client.status().ToString());
  auto outcomes = client.value().BatchQuery(collection, queries);
  if (!outcomes.ok()) return Fail(outcomes.status().ToString());
  std::size_t ok = 0, partial = 0, expired = 0, shed = 0, errors = 0;
  std::uint64_t distances = 0, results = 0, max_latency_ns = 0;
  for (const auto& outcome : outcomes.value()) {
    if (outcome.status_code == 0) {
      ++ok;
    } else if (outcome.partial) {
      ++partial;
    } else if (outcome.status_code ==
               static_cast<std::uint32_t>(StatusCode::kResourceExhausted)) {
      ++shed;
    } else if (outcome.status_code ==
               static_cast<std::uint32_t>(StatusCode::kDeadlineExceeded)) {
      ++expired;
    } else {
      ++errors;
    }
    distances += outcome.distance_computations;
    results += outcome.neighbors.size();
    max_latency_ns = std::max(max_latency_ns, outcome.latency_ns);
  }
  std::printf(
      "%zu queries: ok=%zu partial=%zu expired=%zu shed=%zu errors=%zu "
      "(%llu results, %llu distance computations, max latency %.3f ms)\n",
      outcomes.value().size(), ok, partial, expired, shed, errors,
      static_cast<unsigned long long>(results),
      static_cast<unsigned long long>(distances), max_latency_ns / 1e6);
  if (args.Has("verbose")) {
    for (std::size_t i = 0; i < outcomes.value().size(); ++i) {
      const auto& outcome = outcomes.value()[i];
      std::printf("  #%zu %s: %zu results, %llu distances, %.3f ms\n", i,
                  OutcomeLabel(outcome), outcome.neighbors.size(),
                  static_cast<unsigned long long>(
                      outcome.distance_computations),
                  outcome.latency_ns / 1e6);
    }
  }
  return 0;
}

int RunReplicate(const Args& args) {
  const std::string collection = args.Get("collection");
  const std::string dir = args.Get("dir");
  if (collection.empty() || dir.empty()) {
    return Fail("replicate requires --collection and --dir");
  }
  auto client = ConnectFromArgs(args);
  if (!client.ok()) return Fail(client.status().ToString());
  auto generation =
      net::PullGeneration(client.value(), collection, dir);
  if (!generation.ok()) return Fail(generation.status().ToString());
  std::printf("store %s now serves generation %llu of %s\n", dir.c_str(),
              static_cast<unsigned long long>(generation.value()),
              collection.c_str());
  return 0;
}

#else  // !MVPTREE_FAULT_FS_POSIX

int RunConnect(const Args&) { return Fail("network mode requires POSIX"); }
int RunRemoteQuery(const Args&) { return Fail("network mode requires POSIX"); }
int RunBatchQuery(const Args&) { return Fail("network mode requires POSIX"); }
int RunReplicate(const Args&) { return Fail("network mode requires POSIX"); }

#endif  // MVPTREE_FAULT_FS_POSIX

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) return Usage();
    const std::string key = arg + 2;
    // A key followed by another --key (or nothing) is a bare flag, e.g.
    // --flat; Has() sees it and GetInt falls back to its default.
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (value == nullptr || std::strncmp(value, "--", 2) == 0) {
      args.named[key] = std::string("1");
    } else {
      args.named[key] = std::string(value);
      ++i;
    }
  }
  if (args.command == "gen") return RunGen(args);
  if (args.command == "build") return RunBuild(args);
  if (args.command == "stats") return RunStats(args);
  if (args.command == "hist") return RunHist(args);
  if (args.command == "validate") return RunValidate(args);
  if (args.command == "query") {
    // --host/--port flips query into network mode against an mvpt-server.
    return args.Has("port") || args.Has("host") ? RunRemoteQuery(args)
                                                : RunQuery(args);
  }
  if (args.command == "connect") return RunConnect(args);
  if (args.command == "batch-query") return RunBatchQuery(args);
  if (args.command == "replicate") return RunReplicate(args);
  if (args.command == "serve-bench") return RunServeBench(args);
  if (args.command == "snapshot-save") return RunSnapshotSave(args);
  if (args.command == "snapshot-load") return RunSnapshotLoad(args);
  if (args.command == "insert") return RunMutate(args, /*erase=*/false);
  if (args.command == "delete") return RunMutate(args, /*erase=*/true);
  if (args.command == "compact") return RunCompact(args);
  if (args.command == "wal-dump") return RunWalDump(args);
  if (args.command == "selftest") return RunSelfTest();
  return Usage();
}

}  // namespace
}  // namespace mvp::tools

int main(int argc, char** argv) { return mvp::tools::Main(argc, argv); }

#!/usr/bin/env sh
# Runs clang-tidy over src/, tools/, and bench/ using the compilation
# database from a cmake build directory.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
#   build-dir   directory holding compile_commands.json (default: build).
#               Configure first: cmake -B build -S .
#               (CMAKE_EXPORT_COMPILE_COMMANDS is on by default.)
#
# Exit status: 0 clean, 1 findings, 2 environment problem. When no
# clang-tidy binary is installed the script prints a notice and exits 0 so
# local non-Clang setups are not blocked; CI pins a clang toolchain and
# always runs the real thing.
set -u

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build"}

TIDY=
for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
            clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    TIDY=$cand
    break
  fi
done

if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: no clang-tidy binary found on PATH; skipping." >&2
  echo "run_clang_tidy: install clang-tidy or rely on the CI static-analysis job." >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json not found." >&2
  echo "run_clang_tidy: configure first: cmake -B $BUILD_DIR -S $ROOT" >&2
  exit 2
fi

# Translation units only; headers are covered through HeaderFilterRegex in
# .clang-tidy. Fixture/testdata sources are never in the compilation DB.
FILES=$(find "$ROOT/src" "$ROOT/tools" "$ROOT/bench" -name '*.cc' \
          -not -path '*/lint/testdata/*' | sort)

if [ -z "$FILES" ]; then
  echo "run_clang_tidy: no sources found under src/ tools/ bench/." >&2
  exit 2
fi

echo "run_clang_tidy: $TIDY over $(printf '%s\n' "$FILES" | wc -l) files"

STATUS=0
for f in $FILES; do
  if ! "$TIDY" -p "$BUILD_DIR" --quiet "$f"; then
    STATUS=1
  fi
done

if [ "$STATUS" -eq 0 ]; then
  echo "run_clang_tidy: clean"
else
  echo "run_clang_tidy: findings above; fix them (or suppress with" >&2
  echo "  // NOLINTNEXTLINE(check): reason  — bare NOLINT fails repo_lint)." >&2
fi
exit $STATUS

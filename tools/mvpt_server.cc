// mvpt-server — network serving daemon for mvp-tree snapshot stores.
//
//   mvpt-server --collections SPEC[;SPEC...] [--port P] [--threads N]
//               [--follow HOST:PORT [--poll-ms MS]] [--once]
//
// Each SPEC configures one named collection:
//
//   name=NAME,dir=DIR[,metric=l1|l2|linf][,dynamic]
//            [,max-timeout-ms=T][,max-in-flight=N]
//
//   name / dir        collection name and its snapshot-store directory
//   metric            distance metric (default l2)
//   dynamic           serve a live DynamicOverlay instead of a static
//                     snapshot generation
//   max-timeout-ms    per-tenant deadline cap: every query's timeout is
//                     clamped to this many milliseconds
//   max-in-flight     per-tenant admission cap (load shedding)
//
// Example — two tenants on an ephemeral port:
//
//   mvpt-server --collections "vecs,dir=/data/vecs;live,dir=/data/live,dynamic"
//
// Follower mode: with --follow the server replicates every collection
// from the leader at HOST:PORT while serving queries itself. Static
// collections pull new committed generations chunk-by-chunk (resumable,
// fingerprint-verified; see docs/network_serving.md) and hot-swap them
// into serving; dynamic collections tail the leader's WAL
// (Op::kFetchWalSince), falling back to a generation pull whenever the
// leader's checkpoint floor passed the local cursor. Both paths verify the
// leader's epoch and refuse a deposed leader's stream. --once does a
// single replication pass and exits (scriptable catch-up); --poll-ms sets
// the polling interval.
//
// The server binds 127.0.0.1 only. SIGINT stops immediately; SIGTERM
// drains first — the listener closes, Readiness answers "draining", new
// queries are refused with ResourceExhausted, and in-flight requests get
// up to --drain-ms (default 5000) to finish before the sockets close.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_fs.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX

#if defined(MVPTREE_FAULT_FS_POSIX)

#include "net/client.h"
#include "net/replication.h"
#include "net/server.h"

namespace mvp::tools {
namespace {

std::atomic<bool> g_stop{false};   // SIGINT: stop now
std::atomic<bool> g_drain{false};  // SIGTERM: drain, then stop

void HandleInterrupt(int) { g_stop.store(true, std::memory_order_relaxed); }
void HandleTerminate(int) { g_drain.store(true, std::memory_order_relaxed); }

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: mvpt-server --collections \"name=N,dir=D[,metric=M][,dynamic]"
      "[,max-timeout-ms=T][,max-in-flight=N];...\"\n"
      "                   [--port P] [--threads N] [--drain-ms MS]\n"
      "                   [--max-connections N]\n"
      "                   [--follow HOST:PORT [--poll-ms MS]] [--once]\n"
      "see the header of tools/mvpt_server.cc for full syntax\n");
  return 2;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(part);
      part.clear();
    } else {
      part.push_back(c);
    }
  }
  parts.push_back(part);
  return parts;
}

/// Parses one `key=value,...` collection spec. The first field may be a
/// bare NAME as shorthand for name=NAME.
Result<net::CollectionOptions> ParseCollectionSpec(const std::string& spec) {
  net::CollectionOptions options;
  bool first = true;
  for (const std::string& field : Split(spec, ',')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    const std::string key = eq == std::string::npos ? field
                                                    : field.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : field.substr(eq + 1);
    if (first && eq == std::string::npos) {
      options.name = key;
    } else if (key == "name") {
      options.name = value;
    } else if (key == "dir") {
      options.dir = value;
    } else if (key == "metric") {
      options.metric = value;
    } else if (key == "dynamic") {
      options.dynamic = true;
    } else if (key == "max-timeout-ms") {
      options.max_timeout_ns =
          static_cast<std::uint64_t>(std::atoll(value.c_str())) * 1000000ull;
    } else if (key == "max-in-flight") {
      options.admission.max_in_flight =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else {
      return Status::InvalidArgument("unknown collection field '" + key +
                                     "' in spec: " + spec);
    }
    first = false;
  }
  if (options.name.empty() || options.dir.empty()) {
    return Status::InvalidArgument("collection spec needs name and dir: " +
                                   spec);
  }
  return options;
}

/// One replication pass over every collection: static ones pull committed
/// generations and hot-swap; dynamic ones converge through Server::Follow
/// (WAL shipping with generation-pull fallback and epoch fencing). Errors
/// are reported but do not stop the poll loop — the follower catches up
/// next round.
void ReplicateAll(net::Server* server,
                  const std::vector<net::CollectionOptions>& collections,
                  const std::string& leader_host, std::uint16_t leader_port) {
  auto client = net::Client::Connect(leader_host, leader_port);
  if (!client.ok()) {
    std::fprintf(stderr, "follow: %s\n",
                 client.status().ToString().c_str());
    return;
  }
  for (const net::CollectionOptions& collection : collections) {
    const Status followed =
        server->Follow(collection.name, client.value());
    if (!followed.ok()) {
      std::fprintf(stderr, "follow %s: %s\n", collection.name.c_str(),
                   followed.ToString().c_str());
    }
  }
}

int Main(int argc, char** argv) {
  std::string collections_spec, follow;
  net::ServerOptions options;
  long poll_ms = 1000;
  long drain_ms = 5000;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--collections") {
      collections_spec = value();
    } else if (arg == "--port") {
      options.port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--threads") {
      options.threads = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--max-connections") {
      options.max_connections = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--follow") {
      follow = value();
    } else if (arg == "--poll-ms") {
      poll_ms = std::atol(value());
    } else if (arg == "--drain-ms") {
      drain_ms = std::atol(value());
    } else if (arg == "--once") {
      once = true;
    } else {
      return Usage();
    }
  }
  if (collections_spec.empty()) return Usage();
  for (const std::string& spec : Split(collections_spec, ';')) {
    if (spec.empty()) continue;
    auto collection = ParseCollectionSpec(spec);
    if (!collection.ok()) return Fail(collection.status().ToString());
    options.collections.push_back(std::move(collection).ValueOrDie());
  }

  std::string leader_host;
  std::uint16_t leader_port = 0;
  if (!follow.empty()) {
    const std::size_t colon = follow.rfind(':');
    if (colon == std::string::npos) {
      return Fail("--follow expects HOST:PORT");
    }
    leader_host = follow.substr(0, colon);
    leader_port =
        static_cast<std::uint16_t>(std::atoi(follow.c_str() + colon + 1));
  }

  const std::vector<net::CollectionOptions> collections = options.collections;
  auto server = net::Server::Start(std::move(options));
  if (!server.ok()) return Fail(server.status().ToString());
  std::printf("mvpt-server listening on 127.0.0.1:%u (%zu collections)%s\n",
              server.value()->port(), collections.size(),
              follow.empty() ? "" : (" following " + follow).c_str());
  std::fflush(stdout);

  // SIG_ERR here would only mean the default disposition stays; the
  // server still runs, it just cannot be stopped gracefully.
  (void)std::signal(SIGINT, HandleInterrupt);
  (void)std::signal(SIGTERM, HandleTerminate);  // same rationale as SIGINT

  if (!follow.empty() && once) {
    ReplicateAll(server.value().get(), collections, leader_host, leader_port);
    server.value()->Stop();
    return 0;
  }

  auto last_pull = std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(poll_ms);
  while (!g_stop.load(std::memory_order_relaxed)) {
    if (g_drain.load(std::memory_order_relaxed)) {
      // SIGTERM: refuse new queries, let in-flight work finish under the
      // deadline, then close. Drain() implies Stop().
      std::printf("mvpt-server: draining (up to %ld ms)\n", drain_ms);
      std::fflush(stdout);
      server.value()->Drain(static_cast<std::uint64_t>(drain_ms) *
                            1000000ull);
      std::printf("mvpt-server: drained\n");
      return 0;
    }
    if (!follow.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_pull >= std::chrono::milliseconds(poll_ms)) {
        ReplicateAll(server.value().get(), collections, leader_host,
                     leader_port);
        last_pull = now;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("mvpt-server: shutting down\n");
  server.value()->Stop();
  return 0;
}

}  // namespace
}  // namespace mvp::tools

int main(int argc, char** argv) { return mvp::tools::Main(argc, argv); }

#else  // !MVPTREE_FAULT_FS_POSIX

int main() {
  std::fprintf(stderr, "mvpt-server requires a POSIX platform\n");
  return 1;
}

#endif  // MVPTREE_FAULT_FS_POSIX

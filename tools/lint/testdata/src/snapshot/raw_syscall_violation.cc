// Fixture: raw syscalls outside src/fault/ bypass the fault-injection seam.
// Not real code — scanned only by `check_source.py --selftest`, which
// checks it as if it lived at src/snapshot/raw_syscall_violation.cc.

#include <fcntl.h>
#include <unistd.h>

namespace mvp::snapshot {

int BadDirectWrite(const char* path) {
  const int fd = ::open(path, O_WRONLY, 0644);  // seed:raw-syscall
  if (fd < 0) return -1;
  const char byte = 'x';
  ::write(fd, &byte, 1);  // seed:raw-syscall
  ::fsync(fd);            // seed:raw-syscall
  ::close(fd);            // legal: close is not a seam-guarded commit step
  ::rename(path, path);   // seed:raw-syscall
  return 0;
}

// A justified same-line suppression: not a finding.
int AllowedDirectOpen(const char* path) {
  return ::open(path, O_RDONLY, 0);  // lint:allow(raw-syscall): fixture demo
}

// A suppression without a reason is itself a finding.
int AllowedWithoutReason(const char* path) {
  return ::open(path, O_RDONLY, 0);  // lint:allow(raw-syscall) seed:raw-syscall
}

}  // namespace mvp::snapshot

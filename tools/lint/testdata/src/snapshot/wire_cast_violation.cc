// Fixture: reinterpret_cast of wire/mapped bytes outside a designated
// decode function. Not real code — scanned only by `check_source.py
// --selftest` as if it lived at src/snapshot/wire_cast_violation.cc.

#include <cstdint>

namespace mvp::snapshot {

const double* BadTypedView(const std::uint8_t* data) {
  // A typed pointer straight into a mapped buffer, outside DECODE_CAST_FNS.
  return reinterpret_cast<const double*>(data + 16);  // seed:wire-cast
}

std::uintptr_t GoodAlignmentProbe(const std::uint8_t* data) {
  // Integral target: alignment probes are fine anywhere.
  return reinterpret_cast<std::uintptr_t>(data);
}

const float* AllowedTypedView(const std::uint8_t* data) {
  // Justified suppression: not a finding.
  return reinterpret_cast<const float*>(data);  // lint:allow(wire-cast): demo
}

}  // namespace mvp::snapshot

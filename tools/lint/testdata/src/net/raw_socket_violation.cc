// Fixture: raw socket syscalls outside src/fault/ bypass the fault::net
// seam. Not real code — scanned only by `check_source.py --selftest`, which
// checks it as if it lived at src/net/raw_socket_violation.cc.

#include <netinet/in.h>
#include <sys/socket.h>

namespace mvp::net {

int BadDirectSocket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);  // seed:raw-syscall
  if (fd < 0) return -1;
  struct sockaddr_in addr {};
  ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),  // seed:raw-syscall
            sizeof(addr));
  const char byte = 'x';
  ::send(fd, &byte, 1, 0);  // seed:raw-syscall
  char in = 0;
  ::recv(fd, &in, 1, 0);  // seed:raw-syscall
  return 0;
}

// A justified suppression: not a finding.
int AllowedDirectSocket() {
  return ::socket(AF_INET, SOCK_DGRAM, 0);  // lint:allow(raw-syscall): demo
}

}  // namespace mvp::net

// Fixture: wire-read counts reaching an allocation before validation.
// Not real code — scanned only by `check_source.py --selftest`, which
// checks it as if it lived at src/net/alloc_before_validate_violation.cc.

#include <cstdint>
#include <vector>

namespace mvp::net {

struct FakeReader {
  template <typename T>
  int Read(T* out);
  int ReadLengthPrefix(std::size_t element_size, std::uint64_t* count);
  std::size_t remaining() const;
};

std::vector<int> BadReserve(FakeReader& in) {
  std::uint64_t count = 0;
  // Wire-controlled count reaches reserve with no cap check in between.
  (void)in.Read<std::uint64_t>(&count);
  std::vector<int> out;
  out.reserve(count);  // seed:alloc-before-validate
  return out;
}

std::vector<std::uint8_t> BadSizingCtor(FakeReader& in) {
  std::uint64_t length = 0;
  // Same defect through a sizing constructor.
  (void)in.Read<std::uint64_t>(&length);
  std::vector<std::uint8_t> payload(length);  // seed:alloc-before-validate
  return payload;
}

std::vector<int> GoodBranchValidated(FakeReader& in) {
  std::uint64_t count = 0;
  // Branching on the value before allocating: not a finding.
  (void)in.Read<std::uint64_t>(&count);
  if (count > in.remaining()) return {};
  std::vector<int> out;
  out.reserve(count);
  return out;
}

std::vector<int> AllowedReserve(FakeReader& in) {
  std::uint64_t count = 0;
  // Justified suppression: not a finding.
  (void)in.Read<std::uint64_t>(&count);
  std::vector<int> out;
  out.reserve(count);  // lint:allow(alloc-before-validate): fixture demo
  return out;
}

}  // namespace mvp::net

// Fixture: lock-discipline violations in an annotated directory. Scanned by
// `check_source.py --selftest` as if it lived at src/serve/.

#ifndef MVPTREE_TOOLS_LINT_TESTDATA_SRC_SERVE_UNANNOTATED_MUTEX_VIOLATION_H_
#define MVPTREE_TOOLS_LINT_TESTDATA_SRC_SERVE_UNANNOTATED_MUTEX_VIOLATION_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace mvp::serve {

class BadLocking {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(raw_mu_);  // seed:raw-mutex
    ++count_;
  }

 private:
  std::mutex raw_mu_;  // seed:raw-mutex
  // An mvp::Mutex with no MVP_GUARDED_BY / MVP_REQUIRES companion: the
  // analysis can prove nothing about what it protects.
  Mutex naked_mu_;  // seed:unannotated-mutex
  int count_ = 0;
};

// Correctly annotated: mvp::Mutex with a guarded field. Not a finding.
class GoodLocking {
 public:
  void Touch() {
    MutexLock lock(&mu_);
    ++count_;
  }

 private:
  Mutex mu_;
  int count_ MVP_GUARDED_BY(mu_) = 0;
};

}  // namespace mvp::serve

#endif  // MVPTREE_TOOLS_LINT_TESTDATA_SRC_SERVE_UNANNOTATED_MUTEX_VIOLATION_H_

// Fixture: raw lock primitives in the newly annotated src/dynamic
// directory. Not real code — scanned only by `check_source.py --selftest`
// as if it lived at src/dynamic/raw_mutex_violation.h.

#ifndef MVPTREE_TOOLS_LINT_TESTDATA_SRC_DYNAMIC_RAW_MUTEX_VIOLATION_H_
#define MVPTREE_TOOLS_LINT_TESTDATA_SRC_DYNAMIC_RAW_MUTEX_VIOLATION_H_

#include <condition_variable>
#include <mutex>

namespace mvp::dynamic {

class BadOverlayLocking {
 private:
  std::mutex mu_;  // seed:raw-mutex
  std::condition_variable cv_;  // seed:raw-mutex
};

}  // namespace mvp::dynamic

#endif  // MVPTREE_TOOLS_LINT_TESTDATA_SRC_DYNAMIC_RAW_MUTEX_VIOLATION_H_

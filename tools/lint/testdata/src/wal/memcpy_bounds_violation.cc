// Fixture: memcpy from a wire/mapped buffer without a bounds check in the
// preceding lines, plus a raw mutex proving src/wal is now in the
// annotated-directory set. Not real code — scanned only by
// `check_source.py --selftest` as if it lived at src/wal/.

#include <cstdint>
#include <cstring>
#include <mutex>

namespace mvp::wal {

void BadFrameCopy(std::uint8_t* dst, const std::uint8_t* wire,
                  std::size_t offset) {
  std::memcpy(dst, wire + offset, 16);  // seed:memcpy-bounds
}

int GoodFrameCopy(std::uint8_t* dst, const std::uint8_t* wire,
                  std::size_t offset, std::size_t size) {
  if (offset + 16 > size) return -1;
  std::memcpy(dst, wire + offset, 16);
  return 0;
}

struct BadWalLocking {
  std::mutex mu_;  // seed:raw-mutex
};

}  // namespace mvp::wal

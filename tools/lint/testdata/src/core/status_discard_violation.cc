// Fixture: Status-discard and suppression hygiene. Scanned by
// `check_source.py --selftest` as if it lived at src/core/.

#include "common/status.h"

namespace mvp {

Status MightFail();

void Discards() {
  (void)MightFail();
  // seed:status-discard@-1  (bare (void) discard, no justification comment)

  // Benign: a justified discard on the preceding line.
  (void)MightFail();

  (void)MightFail();  // justified on the same line: best-effort probe
}

int BadNolint(int wide) {
  return static_cast<short>(wide);  // NOLINT seed:nolint-reason
}

int GoodNolint(int wide) {
  // NOLINTNEXTLINE(bugprone-narrowing-conversions): fixture, value is bounded
  return static_cast<short>(wide);
}

}  // namespace mvp

#!/usr/bin/env python3
"""Repo-specific lints for the mvptree codebase.

Three classes of rule, each guarding an invariant the compilers cannot (or
that must not silently regress):

  raw-syscall      ::open/::write/::fsync/::rename/::mmap outside src/fault/
                   bypass the fault-injection seam (fault::fs), silently
                   shrinking crash-drill coverage; socket syscalls
                   (::socket/::connect/::send/::recv/...) likewise bypass
                   fault::net. Route syscalls through the seams instead
                   (docs/fault_injection.md).

  raw-mutex        std::mutex / std::shared_mutex / std::condition_variable
                   in the annotated directories (src/serve, src/snapshot,
                   src/fault, src/metric, src/net, src/dynamic, src/wal)
                   are invisible to Clang Thread Safety Analysis. Use the
                   annotated wrappers from
                   src/common/thread_annotations.h.

  unannotated-mutex  An mvp::Mutex member that no MVP_GUARDED_BY /
                   MVP_REQUIRES / MVP_ACQUIRE / MVP_EXCLUDES in the same
                   file refers to protects nothing the analysis can check —
                   annotate what it guards.

  status-discard   `(void)expr;` discards (the only way past Status's
                   [[nodiscard]]) must carry a justification comment on the
                   same or the preceding line. Guards the dynamic half too:
                   nodiscard-annotations ensure the compiler flags silent
                   discards, this rule ensures the explicit ones say why.

  nodiscard-guard  src/common/status.h must keep [[nodiscard]] on Status
                   and Result — without it every status-discard guarantee
                   in the tree evaporates at once.

  nolint-reason    NOLINT suppressions must name the check and give a
                   reason: `// NOLINTNEXTLINE(check-name): why`. A bare
                   NOLINT silences everything and explains nothing.

Parser-discipline rules, scoped to the code that decodes untrusted bytes
(src/net, src/snapshot, src/wal, src/common/serialize.*, src/common/codec.h):

  alloc-before-validate  A count read straight off the wire must be
                   validated — branch on it, or read it through
                   BinaryReader::ReadLengthPrefix — before it reaches
                   resize()/reserve() or a sizing vector constructor.
                   Otherwise one hostile frame allocates gigabytes (or
                   throws length_error) before decode even fails.

  wire-cast        reinterpret_cast to a pointer type is how wire/mapped
                   bytes become typed views, so it is legal only inside the
                   designated decode functions (DECODE_CAST_FNS below),
                   which validate bounds and alignment first. Everywhere
                   else, decode via BinaryReader or memcpy into a local.
                   Integral casts (uintptr_t alignment probes) and sockaddr
                   casts are exempt.

  memcpy-bounds    A memcpy whose source operand indexes into a buffer
                   (pointer arithmetic) must have a bounds check — an
                   if/while/for comparison, SectionInBounds,
                   ReadLengthPrefix, or remaining() — in the preceding
                   lines of the same scope.

Suppression: append `// lint:allow(<rule>): <reason>` to the offending
line. An allow without a reason string is itself a finding.

Exit status: 0 when clean, 1 when findings were printed, 2 on usage error.
"""

import argparse
import os
import re
import sys

# Directories scanned by default, relative to --root.
DEFAULT_SCAN_DIRS = ("src", "tools", "bench")

# Directories whose components must use the annotated lock wrappers.
ANNOTATED_DIRS = ("src/serve", "src/snapshot", "src/fault", "src/metric",
                  "src/net", "src/dynamic", "src/wal")

# Parser scope: everywhere untrusted bytes (RPC frames, mmapped arenas, WAL
# records, snapshot containers) are decoded. The parser-discipline rules
# (alloc-before-validate, wire-cast, memcpy-bounds) apply here.
PARSER_DIRS = ("src/net", "src/snapshot", "src/wal")
PARSER_FILES = ("src/common/serialize.h", "src/common/serialize.cc",
                "src/common/codec.h")

# The only functions allowed to reinterpret_cast wire/mapped bytes into
# typed pointers. They validate bounds + alignment before casting and
# everything downstream consumes the typed views they hand out. New decode
# entry points must be registered here deliberately, in review.
DECODE_CAST_FNS = {
    "src/snapshot/flat_tree.cc": {"ParseFlatArena"},
    "src/common/serialize.cc": {"ReadString"},
}

# The fault seam itself is the one place raw syscalls are legal.
SYSCALL_SEAM_DIR = "src/fault"

# Fixture tree with seeded violations; never part of a repo-wide scan.
TESTDATA_DIR = "tools/lint/testdata"

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")

RAW_SYSCALL_RE = re.compile(
    r"(?<![\w:])::(open|write|fsync|rename|ftruncate|mmap|socket|bind|listen|"
    r"accept|connect|send|recv|shutdown)\s*\(")
# Socket syscalls route through fault::net (src/fault/fault_net.h); the rest
# through fault::fs. Values are the seam function to name in the finding.
NET_SYSCALL_SEAM_FN = {
    "socket": "Socket", "bind": "Bind", "listen": "Listen",
    "accept": "Accept", "connect": "Connect", "send": "Send",
    "recv": "Recv", "shutdown": "ShutdownSocket",
}
RAW_MUTEX_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|condition_variable(_any)?)\b")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:mvp::)?Mutex\s+(\w+)\s*;")
VOID_DISCARD_RE = re.compile(r"^\s*\(void\)\s*[A-Za-z_:(]")
NOLINT_RE = re.compile(r"NOLINT(NEXTLINE)?\b")
NOLINT_OK_RE = re.compile(r"NOLINT(NEXTLINE)?\([^)]+\)\s*:\s*\S")
ALLOW_RE = re.compile(r"//\s*lint:allow\(([\w-]+)\)(:\s*\S)?")
COMMENT_RE = re.compile(r"//.*$")

# Parser-discipline patterns. FUNC_DEF_RE is a heuristic for column-0
# function definitions ("ReturnType [Class::]Name(") — it scopes wire-cast
# to the designated decode functions and resets alloc-before-validate
# taint at each function boundary.
FUNC_DEF_RE = re.compile(r"^[A-Za-z_][\w:<>,&*\s\[\]]*?([A-Za-z_]\w*)\s*\(")
READ_ASSIGN_RE = re.compile(r"\bRead<[^>]+>\s*\(\s*&\s*(\w+)\s*\)")
ALLOC_CALL_RE = re.compile(r"\.\s*(?:resize|reserve)\s*\(([^;]*)\)")
VECTOR_CTOR_RE = re.compile(r"\bstd::vector<[^;=]*>\s+\w+\s*\(([^;]*)\)")
BRANCH_RE = re.compile(r"\b(?:if|while|for)\s*\(")
WIRE_CAST_RE = re.compile(r"reinterpret_cast\s*<[^>;]*\*")
MEMCPY_RE = re.compile(r"\bmemcpy\s*\(")
BOUNDS_HINT_RE = re.compile(
    r"\b(?:if|while|for)\s*\(|MVP_RETURN_NOT_OK|SectionInBounds|"
    r"ReadLengthPrefix|\bremaining\s*\(|\bassert\s*\(")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings(line):
    """Blanks out string and char literals so tokens inside them never match."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            out.append(quote)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def code_view(lines):
    """Lines with strings blanked and //- and /* */-comments removed.

    Line-oriented on purpose: the repo's style keeps block comments on their
    own lines, and a line-oriented view keeps findings' line numbers exact.
    """
    view = []
    in_block = False
    for line in lines:
        line = strip_strings(line)
        if in_block:
            end = line.find("*/")
            if end < 0:
                view.append("")
                continue
            line = line[end + 2:]
            in_block = False
        # Remove complete /* ... */ runs, then a trailing unterminated one.
        line = re.sub(r"/\*.*?\*/", "", line)
        start = line.find("/*")
        if start >= 0:
            line = line[:start]
            in_block = True
        view.append(COMMENT_RE.sub("", line))
    return view


def allowed(raw_line, rule, findings, path, lineno):
    """True if the line carries a well-formed lint:allow for `rule`."""
    m = ALLOW_RE.search(raw_line)
    if not m:
        return False
    if m.group(1) != rule:
        return False
    if not m.group(2):
        findings.append(Finding(
            path, lineno, rule,
            "lint:allow must carry a reason: // lint:allow(%s): <why>" % rule))
        return True  # suppressed, but the empty reason is its own finding
    return True


def in_dir(rel, prefix):
    return rel == prefix or rel.startswith(prefix + "/")


def memcpy_source_arg(code, idx):
    """Returns memcpy's second (source) argument for the call starting on
    `code[idx]`, joining up to two continuation lines for wrapped calls.
    None when the argument list cannot be recovered."""
    text = " ".join(code[idx:idx + 3])
    m = MEMCPY_RE.search(text)
    if not m:
        return None
    depth, args, cur = 0, [], []
    for ch in text[m.end():]:
        if ch in "([{":
            depth += 1
            cur.append(ch)
        elif ch in ")]}":
            if depth == 0:
                args.append("".join(cur))
                break
            depth -= 1
            cur.append(ch)
        elif ch == "," and depth == 0:
            args.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    return args[1].strip() if len(args) >= 2 else None


def check_file(root, rel, findings, logical_rel=None):
    """Checks one file. `logical_rel` (default: `rel`) decides the
    directory-scoped rules — the self-test uses it to scan fixtures under
    tools/lint/testdata/ as if they lived at their mirrored src/ paths."""
    logical = logical_rel if logical_rel is not None else rel
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read().splitlines()
    except OSError as err:
        findings.append(Finding(rel, 0, "io", f"unreadable: {err}"))
        return
    code = code_view(raw)

    annotated = any(in_dir(logical, d) for d in ANNOTATED_DIRS)
    seam = in_dir(logical, SYSCALL_SEAM_DIR)
    is_annotation_header = logical == "src/common/thread_annotations.h"
    parser = (any(in_dir(logical, d) for d in PARSER_DIRS)
              or logical in PARSER_FILES)
    decode_fns = DECODE_CAST_FNS.get(logical, frozenset())

    mutex_members = {}  # name -> first declaration line
    current_fn = None   # innermost column-0 function definition seen
    tainted = {}        # count var read off the wire -> line it was read on

    for i, (raw_line, code_line) in enumerate(zip(raw, code), start=1):
        if not seam:
            m = RAW_SYSCALL_RE.search(code_line)
            if m and not allowed(raw_line, "raw-syscall", findings, rel, i):
                op = m.group(1)
                if op in NET_SYSCALL_SEAM_FN:
                    findings.append(Finding(
                        rel, i, "raw-syscall",
                        f"raw ::{op}() bypasses the fault::net seam; "
                        f"use fault::net::{NET_SYSCALL_SEAM_FN[op]} "
                        "(src/fault/fault_net.h)"))
                else:
                    findings.append(Finding(
                        rel, i, "raw-syscall",
                        f"raw ::{op}() bypasses the fault::fs seam; "
                        f"use fault::fs::{op.capitalize()} "
                        "(src/fault/fault_fs.h)"))

        if annotated and not is_annotation_header:
            m = RAW_MUTEX_RE.search(code_line)
            if m and not allowed(raw_line, "raw-mutex", findings, rel, i):
                findings.append(Finding(
                    rel, i, "raw-mutex",
                    f"std::{m.group(1)} is invisible to thread-safety "
                    "analysis; use the annotated wrappers in "
                    "src/common/thread_annotations.h"))
            m = MUTEX_MEMBER_RE.match(code_line)
            if m and not allowed(raw_line, "unannotated-mutex", findings,
                                 rel, i):
                mutex_members.setdefault(m.group(1), i)

        if VOID_DISCARD_RE.match(code_line):
            has_comment = "//" in raw_line or (
                i >= 2 and raw[i - 2].lstrip().startswith("//"))
            if not has_comment and not allowed(raw_line, "status-discard",
                                               findings, rel, i):
                findings.append(Finding(
                    rel, i, "status-discard",
                    "(void) discard without a justification comment on the "
                    "same or preceding line"))

        if NOLINT_RE.search(raw_line) and "lint:allow" not in raw_line:
            if not NOLINT_OK_RE.search(raw_line) and not allowed(
                    raw_line, "nolint-reason", findings, rel, i):
                findings.append(Finding(
                    rel, i, "nolint-reason",
                    "NOLINT must name its check and reason: "
                    "// NOLINTNEXTLINE(check-name): why"))

        if parser:
            # Track the enclosing column-0 function so wire-cast knows
            # whether we are inside a designated decoder, and reset the
            # alloc-before-validate taint set at every function boundary.
            if code_line and not code_line[0].isspace():
                m = FUNC_DEF_RE.match(code_line)
                if m:
                    current_fn = m.group(1)
                    tainted.clear()
                elif code_line.startswith("}"):
                    current_fn = None
                    tainted.clear()

            # Branching on a wire-read value counts as validating it.
            if tainted and BRANCH_RE.search(code_line):
                for name in list(tainted):
                    if re.search(r"\b%s\b" % re.escape(name), code_line):
                        del tainted[name]

            for m in (ALLOC_CALL_RE.search(code_line),
                      VECTOR_CTOR_RE.search(code_line)):
                if not m or not tainted:
                    continue
                hits = [n for n in tainted
                        if re.search(r"\b%s\b" % re.escape(n), m.group(1))]
                if hits and not allowed(raw_line, "alloc-before-validate",
                                        findings, rel, i):
                    findings.append(Finding(
                        rel, i, "alloc-before-validate",
                        f"'{hits[0]}' (read from the wire on line "
                        f"{tainted[hits[0]]}) reaches an allocation before "
                        "any bounds check; validate it with "
                        "ReadLengthPrefix or an explicit cap first"))
                for n in hits:
                    del tainted[n]

            for m in READ_ASSIGN_RE.finditer(code_line):
                tainted.setdefault(m.group(1), i)

            m = WIRE_CAST_RE.search(code_line)
            if (m and "sockaddr" not in code_line
                    and current_fn not in decode_fns
                    and not allowed(raw_line, "wire-cast", findings,
                                    rel, i)):
                findings.append(Finding(
                    rel, i, "wire-cast",
                    "reinterpret_cast of wire/mapped bytes to a pointer "
                    "type outside a designated decode function (see "
                    "DECODE_CAST_FNS in tools/lint/check_source.py); "
                    "decode via BinaryReader or memcpy into a local"))

            if MEMCPY_RE.search(code_line):
                src = memcpy_source_arg(code, i - 1)
                if src is not None and "+" in src:
                    window = code[max(0, i - 13):i - 1]
                    if (not any(BOUNDS_HINT_RE.search(w) for w in window)
                            and not allowed(raw_line, "memcpy-bounds",
                                            findings, rel, i)):
                        findings.append(Finding(
                            rel, i, "memcpy-bounds",
                            "memcpy whose source indexes into a buffer "
                            "with no bounds check in the preceding lines "
                            "of this scope; compare the length against "
                            "the remaining bytes first"))

    if mutex_members:
        body = "\n".join(code)
        for name, lineno in sorted(mutex_members.items(),
                                   key=lambda kv: kv[1]):
            ref = re.compile(
                r"MVP_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|"
                r"ACQUIRE|ACQUIRE_SHARED|RELEASE|RELEASE_SHARED|"
                r"TRY_ACQUIRE|EXCLUDES)\s*\([^)]*\b" + re.escape(name))
            if not ref.search(body):
                findings.append(Finding(
                    rel, lineno, "unannotated-mutex",
                    f"Mutex member '{name}' has no MVP_GUARDED_BY / "
                    "MVP_REQUIRES / MVP_EXCLUDES companion annotation in "
                    "this file"))


def check_nodiscard_guard(root, findings):
    rel = os.path.join("src", "common", "status.h")
    path = os.path.join(root, rel)
    if not os.path.exists(path):
        return
    with open(path, encoding="utf-8") as f:
        text = f.read()
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Status\b", text):
        findings.append(Finding(
            rel, 1, "nodiscard-guard",
            "Status must stay `class [[nodiscard]] Status` — the entire "
            "status-discard guarantee rests on it"))
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Result\b", text):
        findings.append(Finding(
            rel, 1, "nodiscard-guard",
            "Result must stay `class [[nodiscard]] Result`"))


def iter_sources(root, scan_dirs, include_testdata=False):
    for d in scan_dirs:
        top = os.path.join(root, d)
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTENSIONS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                if not include_testdata and in_dir(rel, TESTDATA_DIR):
                    continue
                yield rel


def run(root, scan_dirs, files=None):
    findings = []
    rels = files if files else list(iter_sources(root, scan_dirs))
    for rel in rels:
        check_file(root, rel, findings)
    check_nodiscard_guard(root, findings)
    return findings


def selftest(root):
    """Runs the checker over its seeded-violation fixtures.

    Fixtures live under tools/lint/testdata/<mirrored path>; each is
    checked as if it lived at the mirrored path (so directory-scoped rules
    apply). Each line that must be flagged carries a `seed:<rule>` marker
    in a trailing comment — `seed:<rule>@<delta>` when the violating line
    is `delta` lines away from the marker (needed when a marker comment on
    the violating line would itself satisfy the rule, as for
    status-discard). The self-test asserts an exact match between seeded
    markers and reported findings: extra findings and missed seeds both
    fail, so it pins recall and precision at once.
    """
    testdata = os.path.join(root, TESTDATA_DIR)
    if not os.path.isdir(testdata):
        print(f"selftest: fixture dir missing: {testdata}", file=sys.stderr)
        return 1
    expected = set()  # (rel, line, rule)
    fixture_rels = []
    for dirpath, dirnames, filenames in os.walk(testdata):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTENSIONS):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            fixture_rels.append(rel)
            with open(os.path.join(root, rel), encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    for m in re.finditer(r"seed:([\w-]+)(@(-?\d+))?", line):
                        delta = int(m.group(3)) if m.group(3) else 0
                        expected.add((rel, lineno + delta, m.group(1)))

    findings = []
    for rel in fixture_rels:
        logical = os.path.relpath(rel, TESTDATA_DIR)
        check_file(root, rel, findings, logical_rel=logical)
    got = {(f.path, f.line, f.rule) for f in findings}

    ok = True
    for miss in sorted(expected - got):
        print("selftest: MISSED  %s:%d [%s]" % miss, file=sys.stderr)
        ok = False
    for extra in sorted(got - expected):
        print("selftest: SPURIOUS %s:%d [%s]" % extra, file=sys.stderr)
        ok = False

    # And the clean tree must be clean: the fixtures prove detection, the
    # repo scan proves zero false positives on real code.
    repo_findings = run(root, DEFAULT_SCAN_DIRS)
    for f in repo_findings:
        print(f"selftest: DIRTY TREE {f}", file=sys.stderr)
        ok = False

    if ok:
        print(f"selftest: ok ({len(expected)} seeded violations detected, "
              "clean tree reports zero findings)")
        return 0
    return 1


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the checker against its fixtures")
    parser.add_argument("files", nargs="*",
                        help="specific files (relative to --root); default: "
                             "scan " + ", ".join(DEFAULT_SCAN_DIRS))
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"no such root: {root}", file=sys.stderr)
        return 2

    if args.selftest:
        return selftest(root)

    findings = run(root, DEFAULT_SCAN_DIRS, args.files or None)
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} finding(s). See tools/lint/README.md or "
              "docs/static_analysis.md for the rules and how to suppress "
              "with justification.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

# Replays the committed corpus through every harness's replay binary.
# Registered as the `fuzz_regression_test` ctest entry (fuzz/CMakeLists.txt);
# needs no libFuzzer, so it runs on GCC builds and in the ASan CI job.
#
#   cmake -DBIN_DIR=<build/fuzz> -DCORPUS_DIR=<repo/fuzz/corpus> \
#         -P RunRegression.cmake

set(HARNESSES wire flat_arena wal snapshot server_loopback)

foreach(harness IN LISTS HARNESSES)
  set(bin "${BIN_DIR}/fuzz_${harness}_replay")
  set(corpus "${CORPUS_DIR}/${harness}")
  if(NOT EXISTS "${bin}")
    message(FATAL_ERROR "missing replay binary: ${bin} (build the "
                        "fuzz_${harness}_replay target first)")
  endif()
  if(NOT IS_DIRECTORY "${corpus}")
    message(FATAL_ERROR "missing corpus directory: ${corpus} (regenerate "
                        "with fuzz_make_corpus)")
  endif()
  execute_process(COMMAND "${bin}" "${corpus}" RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR
            "fuzz_${harness}_replay failed over ${corpus} (exit ${rv})")
  endif()
endforeach()

// Stateful fuzz harness: fuzzed frames against a live loopback mvpt-server.
//
// One in-process Server (a dynamic collection with a few points inserted)
// is started lazily and shared across all inputs — process-global state is
// exactly what makes this harness stateful: every input runs against a
// server whose connection machinery has already survived all previous
// inputs. Each input opens a fresh connection and either writes the bytes
// raw (exercises frame header validation: bad magic, hostile lengths,
// truncation) or wraps them in one well-formed frame (exercises the full
// request dispatch path behind RecvFrame: op decode, per-op body parsing,
// error responses). The harness then drains whatever the server answers
// and closes. Any server-side crash/ASan/UBSan report takes the harness
// process down with it — that IS the finding.
//
// Input layout: [u8 mode][body...]; mode 0 = raw stream, 1 = framed body.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/serialize.h"
#include "fuzz_util.h"
#include "net/server.h"
#include "net/wire.h"

namespace {

struct ServerFixture {
  std::unique_ptr<mvp::net::Server> server;
  std::uint16_t port = 0;

  ServerFixture() {
    char tmpl[] = "/tmp/mvpt_fuzz_srv.XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    FUZZ_ASSERT(dir != nullptr, "mkdtemp failed for the server fixture");
    mvp::net::CollectionOptions collection;
    collection.name = "fuzz";
    collection.dir = dir;
    collection.metric = "l2";
    collection.dynamic = true;
    mvp::net::ServerOptions options;
    options.port = 0;  // ephemeral
    options.threads = 2;
    options.collections = {collection};
    auto started = mvp::net::Server::Start(std::move(options));
    FUZZ_ASSERT(started.ok(), "loopback server failed to start");
    server = std::move(started).ValueOrDie();
    port = server->port();
    for (int i = 0; i < 8; ++i) {
      auto id = server->Insert(
          "fuzz", {0.1 * i, 1.0 - 0.1 * i, 0.5, static_cast<double>(i)});
      FUZZ_ASSERT(id.ok(), "fixture insert failed");
    }
  }
};

ServerFixture& Fixture() {
  static ServerFixture fixture;
  return fixture;
}

int Connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SendAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    // The server may hang up mid-write (bad frame); EPIPE is expected.
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t mode = data[0] % 2;
  ++data;
  --size;

  const int fd = Connect(Fixture().port);
  if (fd < 0) return 0;

  if (mode == 0) {
    SendAll(fd, data, size);
  } else {
    // One well-formed frame around the fuzzed body, so the server's
    // dispatch and per-op decoders see it instead of the frame validator.
    mvp::BinaryWriter header;
    header.Write<std::uint32_t>(mvp::net::kFrameMagic);
    header.Write<std::uint32_t>(static_cast<std::uint32_t>(size));
    header.Write<std::uint32_t>(mvp::Crc32c(data, size));
    SendAll(fd, header.buffer().data(), header.buffer().size());
    SendAll(fd, data, size);
  }
  ::shutdown(fd, SHUT_WR);

  // Drain every response frame the server sends until it closes (or the
  // 2s receive timeout fires — a hung connection would stall fuzzing).
  std::uint8_t sink[4096];
  while (::recv(fd, sink, sizeof(sink), 0) > 0) {
  }
  ::close(fd);
  return 0;
}

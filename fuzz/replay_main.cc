// Standalone corpus-replay driver: links against the same
// LLVMFuzzerTestOneInput a libFuzzer build uses, but needs no libFuzzer —
// so fuzz findings committed under fuzz/corpus/ replay as a plain ctest
// target (fuzz_regression_test) on any compiler, GCC included.
//
// Usage: fuzz_<name>_replay <file-or-dir>...
// Directories are walked non-recursively in sorted order; every regular
// file is one input. Exits 0 when every input ran without aborting.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (RunFile(file) != 0) return 1;
        ++ran;
      }
    } else {
      if (RunFile(arg) != 0) return 1;
      ++ran;
    }
  }
  std::printf("replayed %zu input(s) clean\n", ran);
  return 0;
}

// Fuzz harness for the write-ahead log reader (wal/wal.h).
//
// The bytes are written to a scratch file and read back with ReadWal,
// which must either return a valid prefix (ok) or report Corruption for a
// checksummed-but-malformed frame — never crash, never any other error on
// a readable file. When a prefix is valid, TruncateWal to it is the
// recovery path's torn-tail repair, so re-reading the truncated file must
// yield the identical record set with no torn tail: truncation is
// idempotent by contract.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "fuzz_util.h"
#include "wal/wal.h"

namespace {

const std::string& ScratchPath() {
  static const std::string path =
      "/tmp/mvpt_wal_fuzz." + std::to_string(::getpid()) + ".log";
  return path;
}

bool WriteScratch(const std::uint8_t* data, std::size_t size) {
  std::FILE* f = std::fopen(ScratchPath().c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = size == 0 || std::fwrite(data, 1, size, f) == size;
  std::fclose(f);
  return ok;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (!WriteScratch(data, size)) return 0;

  auto read = mvp::wal::ReadWal(ScratchPath());
  if (!read.ok()) {
    FUZZ_ASSERT(read.status().code() == mvp::StatusCode::kCorruption,
                "ReadWal failed with something other than Corruption");
    return 0;
  }
  const mvp::wal::WalReadResult& first = read.value();
  FUZZ_ASSERT(first.valid_bytes <= size, "valid prefix exceeds the file");
  FUZZ_ASSERT(first.torn_tail == (first.valid_bytes < size),
              "torn_tail disagrees with the prefix length");

  FUZZ_ASSERT(mvp::wal::TruncateWal(ScratchPath(), first.valid_bytes).ok(),
              "torn-tail truncation failed");
  auto again = mvp::wal::ReadWal(ScratchPath());
  FUZZ_ASSERT(again.ok(), "re-read after truncation failed");
  const mvp::wal::WalReadResult& second = again.value();
  FUZZ_ASSERT(!second.torn_tail, "truncated log still reports a torn tail");
  FUZZ_ASSERT(second.valid_bytes == first.valid_bytes,
              "truncation changed the valid prefix length");
  FUZZ_ASSERT(second.records.size() == first.records.size(),
              "truncation changed the record count");
  for (std::size_t i = 0; i < first.records.size(); ++i) {
    FUZZ_ASSERT(second.records[i].seq == first.records[i].seq &&
                    second.records[i].id == first.records[i].id &&
                    second.records[i].op == first.records[i].op &&
                    second.records[i].payload == first.records[i].payload,
                "truncation changed a surviving record");
  }
  return 0;
}

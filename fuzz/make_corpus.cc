// Corpus seed generator for the fuzz harnesses.
//
// Emits one well-formed (and a few deliberately damaged) input per harness
// entry point under <corpus-root>/<harness>/, using the repo's own
// encoders — so seeds track the wire formats by construction instead of by
// hand-maintained hex. When a repo root is given, the committed golden
// snapshot fixtures (tests/testdata/golden_flat) are re-packaged as seeds
// too, tying the corpus to the exact bytes the format tests bless.
//
// Usage: fuzz_make_corpus <corpus-root> [repo-root]
//
// Regenerate after any format change:
//   ./build/fuzz/fuzz_make_corpus fuzz/corpus .
// then commit the rewritten fuzz/corpus/ contents (docs/static_analysis.md).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/serialize.h"
#include "common/status.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "net/wire.h"
#include "serve/sharded_index.h"
#include "snapshot/flat_tree.h"
#include "snapshot/format.h"
#include "snapshot/manifest.h"
#include "wal/wal.h"

namespace {

namespace fs = std::filesystem;
using mvp::BinaryWriter;

#define CORPUS_CHECK(cond, what)                                  \
  do {                                                            \
    if (!(cond)) {                                                \
      std::fprintf(stderr, "make_corpus: %s\n", what);            \
      std::exit(1);                                               \
    }                                                             \
  } while (0)

void WriteSeedRaw(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CORPUS_CHECK(out.good(), path.c_str());
  if (!bytes.empty()) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  CORPUS_CHECK(out.good(), path.c_str());
}

/// Most harnesses take [u8 selector][body]; this prepends the selector.
void WriteSeed(const fs::path& path, std::uint8_t selector,
               const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(body.size() + 1);
  bytes.push_back(selector);
  bytes.insert(bytes.end(), body.begin(), body.end());
  WriteSeedRaw(path, bytes);
}

std::vector<std::uint8_t> Frame(const std::vector<std::uint8_t>& payload) {
  BinaryWriter out;
  out.Write<std::uint32_t>(mvp::net::kFrameMagic);
  out.Write<std::uint32_t>(static_cast<std::uint32_t>(payload.size()));
  out.Write<std::uint32_t>(mvp::Crc32c(payload.data(), payload.size()));
  std::vector<std::uint8_t> bytes = std::move(out).TakeBuffer();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

mvp::net::WireQuery SampleQuery() {
  mvp::net::WireQuery query;
  query.kind = 1;  // k-NN
  query.k = 5;
  query.radius = 0.75;
  query.point = {0.1, 0.2, 0.3, 0.4};
  return query;
}

void EmitWireSeeds(const fs::path& dir) {
  {
    BinaryWriter w;
    mvp::net::EncodeQuery(SampleQuery(), &w);
    WriteSeed(dir / "query.bin", 0, w.buffer());
  }
  {
    mvp::net::WireOutcome outcome;
    outcome.partial = true;
    outcome.latency_ns = 12345;
    outcome.distance_computations = 64;
    outcome.neighbors = {{3, 0.5}, {7, 1.25}};
    BinaryWriter w;
    mvp::net::EncodeOutcome(outcome, &w);
    WriteSeed(dir / "outcome.bin", 1, w.buffer());
  }
  {
    mvp::serve::ServeStatsSnapshot snap;
    snap.queries = 10;
    snap.ok = 8;
    snap.partial = 2;
    snap.distance_computations = 4096;
    snap.p50 = std::chrono::nanoseconds(1000);
    snap.p99 = std::chrono::nanoseconds(9000);
    BinaryWriter w;
    mvp::net::EncodeStats(snap, &w);
    WriteSeed(dir / "stats.bin", 2, w.buffer());
  }
  {
    mvp::net::WireCollectionInfo info;
    info.name = "vectors";
    info.metric = "l2";
    info.dynamic = true;
    info.generation = 3;
    info.size = 48;
    BinaryWriter w;
    mvp::net::EncodeCollectionInfo(info, &w);
    WriteSeed(dir / "collection_info.bin", 3, w.buffer());
  }
  {
    mvp::net::WireWalSegment segment;
    segment.leader_epoch = 2;
    segment.floor_seq = 1;
    segment.generation = 4;
    segment.applied_seq = 9;
    mvp::wal::WalRecord record;
    record.op = mvp::wal::WalOp::kInsert;
    record.seq = 9;
    record.id = 17;
    record.payload = {1, 2, 3, 4};
    segment.records.push_back(record);
    BinaryWriter w;
    mvp::net::EncodeWalSegment(segment, &w);
    WriteSeed(dir / "wal_segment.bin", 4, w.buffer());
  }
  {
    mvp::net::WireReadiness readiness;
    readiness.state = 1;
    readiness.leader_epoch = 5;
    readiness.generation_lag = 2;
    BinaryWriter w;
    mvp::net::EncodeReadiness(readiness, &w);
    WriteSeed(dir / "readiness.bin", 5, w.buffer());
  }
  {
    BinaryWriter w;
    mvp::net::EncodeResponseStatus(
        mvp::Status::NotFound("no collection 'x'"), &w);
    WriteSeed(dir / "response_status.bin", 6, w.buffer());
  }
  {
    BinaryWriter ping;
    ping.Write<std::uint32_t>(
        static_cast<std::uint32_t>(mvp::net::Op::kPing));
    const std::vector<std::uint8_t> frame = Frame(ping.buffer());
    WriteSeed(dir / "frame_ping.bin", 7, frame);
    // A torn header+payload prefix: must fail as IOError, cleanly.
    WriteSeed(dir / "frame_torn.bin", 7,
              {frame.begin(), frame.begin() + 10});
  }
  WriteSeed(dir / "frame_roundtrip.bin", 8,
            {'m', 'v', 'p', '-', 'w', 'i', 'r', 'e'});
}

/// One serialized single-shard mvp-tree stream over a tiny pinned dataset
/// — the exact input shape BuildFlatArena transcodes.
std::vector<std::uint8_t> SampleTreeStream() {
  using Index =
      mvp::serve::ShardedMvpIndex<mvp::metric::Vector, mvp::metric::L2>;
  Index::Options options;
  options.num_shards = 1;
  options.tree.order = 3;
  options.tree.leaf_capacity = 4;
  options.tree.num_path_distances = 2;
  auto built = Index::Build(mvp::dataset::UniformVectors(32, 4, 7),
                            mvp::metric::L2(), options);
  CORPUS_CHECK(built.ok(), "sample index build failed");
  BinaryWriter stream;
  CORPUS_CHECK(
      built.value().shard(0).Serialize(&stream, mvp::VectorCodec{}).ok(),
      "sample tree serialize failed");
  return std::move(stream).TakeBuffer();
}

void EmitFlatSeeds(const fs::path& dir,
                   const std::vector<std::uint8_t>& stream) {
  WriteSeed(dir / "tree_stream.bin", 0, stream);
  WriteSeed(dir / "tree_stream_v1.bin", 2, stream);
  // The current (v2, SoA-leaf) encoding and the legacy v1 encoding of the
  // same tree, each with a bit-flipped and a torn variant so both parsers'
  // structural validation is seeded, not just the happy paths.
  auto arena = mvp::snapshot::flat::BuildFlatArena(
      stream.data(), stream.size(), mvp::snapshot::flat::kFlatVersionLatest);
  CORPUS_CHECK(arena.ok(), "sample arena build failed");
  auto arena_v1 = mvp::snapshot::flat::BuildFlatArena(
      stream.data(), stream.size(), mvp::snapshot::flat::kFlatVersionV1);
  CORPUS_CHECK(arena_v1.ok(), "sample v1 arena build failed");
  WriteSeed(dir / "arena.bin", 1, arena.value());
  WriteSeed(dir / "arena_v1.bin", 1, arena_v1.value());
  std::vector<std::uint8_t> corrupt = arena.value();
  corrupt[corrupt.size() / 2] ^= 0x40;
  WriteSeed(dir / "arena_bitflip.bin", 1, corrupt);
  std::vector<std::uint8_t> corrupt_v1 = arena_v1.value();
  corrupt_v1[corrupt_v1.size() / 2] ^= 0x40;
  WriteSeed(dir / "arena_v1_bitflip.bin", 1, corrupt_v1);
  WriteSeed(dir / "arena_torn.bin", 1,
            {arena.value().begin(),
             arena.value().begin() +
                 static_cast<std::ptrdiff_t>(arena.value().size() * 3 / 4)});
}

void EmitWalSeeds(const fs::path& dir) {
  std::vector<std::uint8_t> log;
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    mvp::wal::WalRecord record;
    record.op = seq == 2 ? mvp::wal::WalOp::kErase : mvp::wal::WalOp::kInsert;
    record.seq = seq;
    record.id = 100 + seq;
    if (record.op == mvp::wal::WalOp::kInsert) {
      record.payload = {9, 8, 7, 6, 5};
    }
    mvp::wal::EncodeRecord(record, &log);
  }
  WriteSeedRaw(dir / "valid.bin", log);

  std::vector<std::uint8_t> torn = log;
  mvp::wal::WalRecord tail;
  tail.op = mvp::wal::WalOp::kInsert;
  tail.seq = 4;
  tail.id = 104;
  tail.payload = {1, 1, 1};
  mvp::wal::EncodeRecord(tail, &torn);
  torn.resize(torn.size() - 7);  // crash mid-append
  WriteSeedRaw(dir / "torn_tail.bin", torn);

  std::vector<std::uint8_t> badcrc = log;
  badcrc[badcrc.size() / 2] ^= 0x01;
  WriteSeedRaw(dir / "crc_flip.bin", badcrc);
}

void EmitSnapshotSeeds(const fs::path& dir,
                       const std::vector<std::uint8_t>& arena) {
  {
    mvp::snapshot::SnapshotManifest manifest;
    manifest.object_count = 48;
    manifest.num_chunks = 2;
    manifest.payload_bytes = 4096;
    manifest.num_shards = 2;
    manifest.order = 3;
    manifest.leaf_capacity = 4;
    manifest.num_path_distances = 2;
    manifest.seed = 7;
    WriteSeed(dir / "manifest_v1.bin", 0, manifest.Serialize());
    manifest.index_kind = mvp::snapshot::IndexKind::kDynamicDelta;
    manifest.base_generation = 1;
    manifest.last_applied_seq = 42;
    manifest.next_stable_id = 64;
    manifest.leader_epoch = 3;
    WriteSeed(dir / "manifest_v3.bin", 0, manifest.Serialize());
  }
  {
    mvp::snapshot::ContainerWriter writer;
    writer.AddChunk(mvp::snapshot::ChunkKind::kShardTree,
                    {0, 1, 2, 3, 4, 5, 6, 7});
    BinaryWriter payload;
    payload.Write<std::uint64_t>(0);  // shard index, then the arena
    std::vector<std::uint8_t> bytes = std::move(payload).TakeBuffer();
    bytes.insert(bytes.end(), arena.begin(), arena.end());
    writer.AddChunk(mvp::snapshot::ChunkKind::kFlatShard, std::move(bytes),
                    8);
    WriteSeed(dir / "container.bin", 1, std::move(writer).Finalize());
  }
}

void EmitServerSeeds(const fs::path& dir) {
  BinaryWriter ping;
  ping.Write<std::uint32_t>(static_cast<std::uint32_t>(mvp::net::Op::kPing));
  WriteSeed(dir / "raw_ping_frame.bin", 0, Frame(ping.buffer()));
  WriteSeed(dir / "framed_ping.bin", 1, ping.buffer());

  BinaryWriter list;
  list.Write<std::uint32_t>(
      static_cast<std::uint32_t>(mvp::net::Op::kListCollections));
  WriteSeed(dir / "framed_list.bin", 1, list.buffer());

  BinaryWriter query;
  query.Write<std::uint32_t>(
      static_cast<std::uint32_t>(mvp::net::Op::kQuery));
  query.WriteString("fuzz");
  mvp::net::EncodeQuery(SampleQuery(), &query);
  WriteSeed(dir / "framed_query.bin", 1, query.buffer());

  BinaryWriter batch;
  batch.Write<std::uint32_t>(
      static_cast<std::uint32_t>(mvp::net::Op::kBatchQuery));
  batch.WriteString("fuzz");
  batch.Write<std::uint64_t>(1);
  mvp::net::EncodeQuery(SampleQuery(), &batch);
  WriteSeed(dir / "framed_batch.bin", 1, batch.buffer());

  // Not our protocol at all: exercises the bad-magic rejection path.
  const std::string http = "GET / HTTP/1.0\r\n\r\n";
  WriteSeed(dir / "raw_http.bin", 0,
            std::vector<std::uint8_t>(http.begin(), http.end()));
}

/// Re-packages the committed golden snapshot fixtures as corpus seeds, so
/// the corpus covers the exact bytes the golden-format tests bless.
void EmitGoldenSeeds(const fs::path& corpus, const fs::path& repo) {
  const fs::path gen = repo / "tests/testdata/golden_flat/gen-000001";
  auto manifest = mvp::ReadFile((gen / "MANIFEST").string());
  auto container = mvp::ReadFile((gen / "shards.mvps").string());
  if (!manifest.ok() || !container.ok()) {
    std::fprintf(stderr,
                 "make_corpus: golden fixtures not found under %s; "
                 "skipping golden seeds\n",
                 gen.c_str());
    return;
  }
  WriteSeed(corpus / "snapshot" / "golden_manifest.bin", 0, manifest.value());
  WriteSeed(corpus / "snapshot" / "golden_container.bin", 1,
            container.value());

  // Extract the golden flat arena out of its container chunk (payload is
  // [u64 shard index][arena]) and seed the arena harness with it.
  auto parsed = mvp::snapshot::ContainerReader::Parse(
      container.value().data(), container.value().size());
  CORPUS_CHECK(parsed.ok(), "golden container failed to parse");
  const auto chunks =
      parsed.value().ChunksOfKind(mvp::snapshot::ChunkKind::kFlatShard);
  CORPUS_CHECK(!chunks.empty(), "golden container has no flat shard");
  const auto [payload, length] = parsed.value().chunk_payload(chunks[0]);
  CORPUS_CHECK(length > 8, "golden flat chunk too small");
  WriteSeed(corpus / "flat_arena" / "golden_arena.bin", 1,
            std::vector<std::uint8_t>(payload + 8, payload + length));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s <corpus-root> [repo-root]\n", argv[0]);
    return 2;
  }
  const fs::path corpus(argv[1]);
  EmitWireSeeds(corpus / "wire");
  const std::vector<std::uint8_t> stream = SampleTreeStream();
  EmitFlatSeeds(corpus / "flat_arena", stream);
  EmitWalSeeds(corpus / "wal");
  auto arena =
      mvp::snapshot::flat::BuildFlatArena(stream.data(), stream.size());
  CORPUS_CHECK(arena.ok(), "arena build failed");
  EmitSnapshotSeeds(corpus / "snapshot", arena.value());
  EmitServerSeeds(corpus / "server_loopback");
  if (argc == 3) EmitGoldenSeeds(corpus, fs::path(argv[2]));
  std::printf("corpus written under %s\n", corpus.c_str());
  return 0;
}

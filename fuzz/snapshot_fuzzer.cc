// Fuzz harness for the snapshot metadata parsers: the manifest
// (snapshot/manifest.h) and the chunked container (snapshot/format.h).
//
// Manifest invariant: any bytes Parse accepts re-serialize to a stable
// encoding (serialize/parse/serialize is a fixpoint). Container invariant:
// a parsed chunk table only ever points inside the file — touching every
// payload byte and verifying every chunk CRC must stay in bounds (ASan).
//
// Input layout: [u8 mode][body...]; mode 0 = manifest, 1 = container.

#include <cstdint>
#include <vector>

#include "fuzz_util.h"
#include "snapshot/format.h"
#include "snapshot/manifest.h"

namespace {

void FuzzManifest(const std::uint8_t* data, std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  auto manifest = mvp::snapshot::SnapshotManifest::Parse(bytes);
  if (!manifest.ok()) return;
  const std::vector<std::uint8_t> first = manifest.value().Serialize();
  auto again = mvp::snapshot::SnapshotManifest::Parse(first);
  FUZZ_ASSERT(again.ok(), "re-parse of a serialized manifest failed");
  FUZZ_ASSERT(again.value().Serialize() == first,
              "manifest serialize/parse is not a fixpoint");
}

void FuzzContainer(const std::uint8_t* data, std::size_t size) {
  auto container = mvp::snapshot::ContainerReader::Parse(data, size);
  if (!container.ok()) return;
  const auto& reader = container.value();
  volatile std::uint8_t sink = 0;
  for (std::size_t i = 0; i < reader.num_chunks(); ++i) {
    const auto [payload, length] = reader.chunk_payload(i);
    if (length > 0) {
      // First and last byte of every accepted chunk: ASan faults here if
      // the table validation ever lets a chunk escape the file.
      sink = static_cast<std::uint8_t>(sink + payload[0]);
      sink = static_cast<std::uint8_t>(sink + payload[length - 1]);
    }
    (void)reader.VerifyChunk(i);  // CRC sweep must stay in bounds too
    (void)reader.ChunksOfKind(mvp::snapshot::ChunkKind::kFlatShard);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;
  const std::uint8_t mode = data[0] % 2;
  ++data;
  --size;
  if (mode == 0) {
    FuzzManifest(data, size);
  } else {
    FuzzContainer(data, size);
  }
  return 0;
}

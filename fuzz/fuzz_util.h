#ifndef MVPTREE_FUZZ_FUZZ_UTIL_H_
#define MVPTREE_FUZZ_FUZZ_UTIL_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Shared bits for the fuzz harnesses (fuzz/*_fuzzer.cc).
///
/// Harnesses check INVARIANTS, not behavior: a parser fed hostile bytes may
/// reject them with any Status, but it must never crash, leak, index out of
/// bounds (ASan), overflow (UBSan), or violate a round-trip/idempotence
/// property. FUZZ_ASSERT turns a violated invariant into an abort, which
/// both libFuzzer and the replay driver (replay_main.cc) report as a
/// finding.

#define FUZZ_ASSERT(cond, what)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FUZZ_ASSERT failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, what);                                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // MVPTREE_FUZZ_FUZZ_UTIL_H_

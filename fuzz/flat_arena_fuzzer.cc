// Fuzz harness for the MVPZ flat arena (snapshot/flat_tree.h).
//
// Mode 0 feeds the bytes to BuildFlatArena as a serialized mvp-tree
// stream; any arena the builder accepts MUST validate under ParseFlatArena
// (the builder's output is the parser's contract). Mode 1 treats the bytes
// as a hostile arena — v1 or v2, the version field is attacker-controlled:
// ParseFlatArena either rejects it or returns a view that is safe to
// search — range and k-NN traversals over an accepted arena must stay in
// bounds (ASan checks this, not us). Mode 2 is mode 0 for the legacy v1
// encoding, keeping the still-supported v1 writer under fuzz too.
//
// Input layout: [u8 mode][body...].

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/query.h"
#include "fuzz_util.h"
#include "metric/lp.h"
#include "snapshot/flat_tree.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) return 0;
  const std::uint8_t mode = data[0] % 3;
  ++data;
  --size;

  if (mode == 0 || mode == 2) {
    const std::uint32_t version = mode == 2
                                      ? mvp::snapshot::flat::kFlatVersionV1
                                      : mvp::snapshot::flat::kFlatVersionLatest;
    auto arena = mvp::snapshot::flat::BuildFlatArena(data, size, version);
    if (arena.ok()) {
      auto parts = mvp::snapshot::flat::ParseFlatArena(
          arena.value().data(), arena.value().size());
      FUZZ_ASSERT(parts.ok(), "BuildFlatArena output failed ParseFlatArena");
    }
    return 0;
  }

  // Hostile arena bytes. ParseFlatArena requires 8-byte alignment (as the
  // mmap path guarantees), so copy into an aligned buffer first.
  std::vector<std::uint64_t> aligned((size + 7) / 8);
  std::memcpy(aligned.data(), data, size);
  const auto* base = reinterpret_cast<const std::uint8_t*>(aligned.data());

  auto view = mvp::snapshot::flat::FlatTreeView<mvp::metric::L2>::Open(
      base, size, mvp::metric::L2{});
  if (!view.ok()) return 0;
  const auto& tree = view.value();
  // An empty arena's header can carry an arbitrary dim (no section
  // constrains it); cap the query allocation rather than OOM the harness.
  if (tree.dim() > 4096) return 0;
  const std::vector<double> query(tree.dim(), 0.25);
  mvp::SearchStats stats;
  (void)tree.RangeSearch(query, 1.5, &stats);
  (void)tree.KnnSearch(query, 3, &stats);
  return 0;
}

// Fuzz harness for the RPC wire layer (net/wire.h): frame decode over a
// byte stream, frame round-trip, and every message codec.
//
// Codec invariant: decoding arbitrary bytes either fails cleanly or yields
// a value whose encode/decode is a fixpoint (encode(decode(encode(v))) ==
// encode(v)). Framing invariants: RecvFrame never crashes on a hostile
// stream, and SendFrame -> RecvFrame returns the payload bit for bit.
//
// Input layout: [u8 selector][body...]; the selector picks the codec or
// framing mode so one corpus exercises every entry point.

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "fuzz_util.h"
#include "net/wire.h"
#include "serve/serve_stats.h"

namespace {

using mvp::BinaryReader;
using mvp::BinaryWriter;

// Decodes `data`, then asserts encode/decode reaches a fixpoint. A decoder
// may accept trailing garbage (readers are not required to consume the
// whole buffer), so the comparison is between the first and second
// re-encode, never against the input.
template <typename T, typename DecodeFn, typename EncodeFn>
void CodecRoundTrip(const std::uint8_t* data, std::size_t size,
                    DecodeFn decode, EncodeFn encode) {
  T value{};
  BinaryReader reader(data, size);
  if (!decode(&reader, &value).ok()) return;
  BinaryWriter first;
  encode(value, &first);
  T again{};
  BinaryReader reread(first.buffer().data(), first.buffer().size());
  FUZZ_ASSERT(decode(&reread, &again).ok(),
              "decoding the encoder's own output failed");
  BinaryWriter second;
  encode(again, &second);
  FUZZ_ASSERT(first.buffer() == second.buffer(),
              "encode/decode is not a fixpoint");
}

// Feeds the raw bytes to RecvFrame as a socket stream until it reports an
// error — torn, corrupt, and oversized frames must all fail cleanly.
void FrameStream(const std::uint8_t* data, std::size_t size) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return;
  std::thread writer([&] {
    std::size_t off = 0;
    while (off < size) {
      const ssize_t n =
          ::send(fds[1], data + off, size - off, MSG_NOSIGNAL);
      if (n <= 0) break;  // reader gave up mid-stream
      off += static_cast<std::size_t>(n);
    }
    ::shutdown(fds[1], SHUT_WR);
  });
  for (;;) {
    auto frame = mvp::net::RecvFrame(fds[0], "fuzz:wire", std::size_t{1} << 20);
    if (!frame.ok()) break;
  }
  ::close(fds[0]);  // unblocks the writer if the stream errored early
  writer.join();
  ::close(fds[1]);
}

// SendFrame -> RecvFrame must return the payload bit for bit.
void FrameRoundTrip(const std::uint8_t* data, std::size_t size) {
  const std::vector<std::uint8_t> payload(data, data + size);
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return;
  std::thread writer(
      [&] { (void)mvp::net::SendFrame(fds[1], payload, "fuzz:wire"); });
  auto got = mvp::net::RecvFrame(fds[0], "fuzz:wire");
  FUZZ_ASSERT(got.ok(), "round-tripped frame failed to decode");
  FUZZ_ASSERT(got.value() == payload, "round-tripped payload mismatch");
  writer.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t selector = data[0] % 9;
  ++data;
  --size;
  switch (selector) {
    case 0:
      CodecRoundTrip<mvp::net::WireQuery>(data, size, mvp::net::DecodeQuery,
                                          mvp::net::EncodeQuery);
      break;
    case 1:
      CodecRoundTrip<mvp::net::WireOutcome>(
          data, size, mvp::net::DecodeOutcome, mvp::net::EncodeOutcome);
      break;
    case 2:
      CodecRoundTrip<mvp::serve::ServeStatsSnapshot>(
          data, size, mvp::net::DecodeStats, mvp::net::EncodeStats);
      break;
    case 3:
      CodecRoundTrip<mvp::net::WireCollectionInfo>(
          data, size, mvp::net::DecodeCollectionInfo,
          mvp::net::EncodeCollectionInfo);
      break;
    case 4:
      CodecRoundTrip<mvp::net::WireWalSegment>(
          data, size, mvp::net::DecodeWalSegment,
          mvp::net::EncodeWalSegment);
      break;
    case 5:
      CodecRoundTrip<mvp::net::WireReadiness>(
          data, size, mvp::net::DecodeReadiness,
          mvp::net::EncodeReadiness);
      break;
    case 6:
      CodecRoundTrip<mvp::Status>(data, size,
                                  mvp::net::DecodeResponseStatus,
                                  mvp::net::EncodeResponseStatus);
      break;
    case 7:
      FrameStream(data, size);
      break;
    default:
      FrameRoundTrip(data, size);
      break;
  }
  return 0;
}

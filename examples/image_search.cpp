// Image similarity search — the paper's motivating application (§1, §5.1.B):
// retrieve all scans similar to a query image from a gray-level MRI
// collection, where every pixel-wise distance computation is expensive
// ("not only ... a large number of arithmetic operations, but also
// considerable I/O time"). The index exists precisely to avoid computing
// most of those distances.
//
//   $ ./build/examples/image_search

#include <cstdio>

#include "core/mvp_tree.h"
#include "dataset/image.h"
#include "dataset/image_gen.h"
#include "scan/linear_scan.h"

using mvp::SearchStats;
using mvp::core::MvpTree;
using mvp::dataset::Image;
using mvp::dataset::ImageL1;
using mvp::dataset::MriParams;

int main() {
  // A collection of 1151 synthetic head scans of 40 subjects (stand-ins for
  // the paper's real MRI scans; see DESIGN.md §3).
  MriParams params;
  params.count = 1151;
  params.subjects = 40;
  params.width = params.height = 64;
  const auto scans = mvp::dataset::MriPhantoms(params, 1997);
  std::printf("collection: %zu scans (%ux%u, %zu subjects)\n", scans.size(),
              params.width, params.height, params.subjects);

  // Index with the paper's best image configuration, mvpt(3,13,p=4).
  MvpTree<Image, ImageL1>::Options options;
  options.order = 3;
  options.leaf_capacity = 13;
  options.num_path_distances = 4;
  auto tree =
      MvpTree<Image, ImageL1>::Build(scans, ImageL1(), options).ValueOrDie();

  // Query: a previously unseen scan of subject 17. With the paper's
  // normalization a tolerance around 50 retrieves "similar" images
  // (Figure 6 discussion).
  const Image query = mvp::dataset::MriPhantomScan(params, 1997, 17, 9999);
  const double tolerance = 50.0;
  SearchStats stats;
  const auto hits = tree.RangeSearch(query, tolerance, &stats);

  std::printf("\nquery: unseen scan of subject 17, tolerance %.0f\n",
              tolerance);
  std::printf("retrieved %zu scans with %llu distance computations "
              "(linear scan: %zu)\n",
              hits.size(),
              static_cast<unsigned long long>(stats.distance_computations),
              scans.size());
  std::size_t same_subject = 0;
  for (const auto& hit : hits) {
    same_subject += hit.id % params.subjects == 17 ? 1 : 0;
  }
  std::printf("of which scans of subject 17: %zu "
              "(round-robin layout: id %% %zu == 17)\n",
              same_subject, params.subjects);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, hits.size()); ++i) {
    std::printf("  scan id=%4zu  subject=%2zu  L1 distance=%7.2f\n",
                hits[i].id, hits[i].id % params.subjects, hits[i].distance);
  }

  // The 3 most similar scans regardless of tolerance.
  const auto top = tree.KnnSearch(query, 3);
  std::printf("\ntop-3 most similar scans:\n");
  for (const auto& hit : top) {
    std::printf("  scan id=%4zu  subject=%2zu  L1 distance=%7.2f\n", hit.id,
                hit.id % params.subjects, hit.distance);
  }
  // Sanity for CI-style use: nearest scans must be of the query's subject.
  return !top.empty() && top[0].id % params.subjects == 17 ? 0 : 1;
}

// Quickstart: build an mvp-tree over random high-dimensional vectors, run a
// range query and a k-NN query, inspect the distance-computation savings,
// and persist/reload the index.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "common/codec.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

using mvp::SearchStats;
using mvp::core::MvpTree;
using mvp::metric::L2;
using mvp::metric::Vector;

int main() {
  // 1. Data: 20000 random 20-dimensional vectors (any objects with a metric
  //    distance function work — see the other examples for images/strings).
  const std::size_t n = 20000, dim = 20;
  const std::vector<Vector> data = mvp::dataset::UniformVectors(n, dim, 42);

  // 2. Build. The three parameters are the paper's (m, k, p): m partitions
  //    per vantage point (fanout m^2), k points per leaf, p pre-computed
  //    path distances stored per leaf point.
  MvpTree<Vector, L2>::Options options;
  options.order = 3;               // m
  options.leaf_capacity = 80;      // k
  options.num_path_distances = 5;  // p
  auto built = MvpTree<Vector, L2>::Build(data, L2(), options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  MvpTree<Vector, L2> tree = std::move(built).ValueOrDie();
  const auto stats = tree.Stats();
  std::printf("built mvpt(%d,%d,p=%d) over %zu vectors: height %zu, "
              "%zu vantage points, %zu leaf points, %llu build distances\n",
              options.order, options.leaf_capacity,
              options.num_path_distances, tree.size(), stats.height,
              stats.num_vantage_points, stats.num_leaf_points,
              static_cast<unsigned long long>(
                  stats.construction_distance_computations));

  // 3. Range query: everything within distance r of a query point.
  const Vector query = mvp::dataset::UniformQueryVectors(1, dim, 7)[0];
  SearchStats range_stats;
  const auto neighbors = tree.RangeSearch(query, 1.2, &range_stats);
  std::printf("\nrange query r=1.2: %zu results using %llu distance "
              "computations (linear scan would use %zu)\n",
              neighbors.size(),
              static_cast<unsigned long long>(
                  range_stats.distance_computations),
              n);
  for (std::size_t i = 0; i < std::min<std::size_t>(3, neighbors.size()); ++i) {
    std::printf("  id=%zu distance=%.4f\n", neighbors[i].id,
                neighbors[i].distance);
  }

  // 4. k-NN query (exact, and budgeted-approximate for a cost cap).
  SearchStats knn_stats;
  const auto nearest = tree.KnnSearch(query, 5, &knn_stats);
  std::printf("\n5-NN query: %llu distance computations\n",
              static_cast<unsigned long long>(knn_stats.distance_computations));
  for (const auto& hit : nearest) {
    std::printf("  id=%zu distance=%.4f\n", hit.id, hit.distance);
  }
  SearchStats approx_stats;
  const auto roughly =
      tree.KnnSearchApproximate(query, 5, /*max_distance_computations=*/300,
                                &approx_stats);
  std::printf("budgeted 5-NN (<=300 computations): best distance %.4f vs "
              "exact %.4f\n",
              roughly.empty() ? -1.0 : roughly[0].distance,
              nearest.empty() ? -1.0 : nearest[0].distance);

  // 5. Persist and reload (the metric is not serialized: pass it again).
  mvp::BinaryWriter writer;
  if (auto st = tree.Serialize(&writer, mvp::VectorCodec()); !st.ok()) {
    std::fprintf(stderr, "serialize failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nserialized index: %zu bytes\n", writer.buffer().size());
  mvp::BinaryReader reader(writer.buffer());
  auto loaded =
      MvpTree<Vector, L2>::Deserialize(&reader, L2(), mvp::VectorCodec());
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const auto again = loaded.value().RangeSearch(query, 1.2);
  std::printf("reloaded index returns %zu results for the same query "
              "(expected %zu)\n",
              again.size(), neighbors.size());
  return again.size() == neighbors.size() ? 0 : 1;
}

// Graceful degradation under overload: the same batch served three ways.
//
//   1. complete — generous deadlines, no admission control: every query
//      returns its full answer (Status OK).
//   2. partial  — tight deadlines and a distance-computation budget: a
//      cut-off query returns the neighbors it had already found, flagged
//      partial with Status DeadlineExceeded, instead of returning nothing.
//   3. shed     — an AdmissionController bounds the work in flight; the
//      burst's excess is refused up front with Status ResourceExhausted
//      (zero distance computations) rather than queued past its deadline.
//
// Self-checks that partial answers are subsets of the complete ones and
// that shed queries did no work (exits non-zero if not).
//
//   $ ./build/examples/overload_shedding

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "serve/admission.h"
#include "serve/executor.h"
#include "serve/serve_stats.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"

using mvp::StatusCode;
using mvp::metric::L2;
using mvp::metric::Vector;
using mvp::serve::AdmissionController;
using mvp::serve::BatchQuery;
using mvp::serve::ExecutorOptions;
using mvp::NeighborLess;
using mvp::serve::QueryOutcome;
using mvp::serve::RunBatch;
using mvp::serve::ServeStats;
using mvp::serve::ShardedMvpIndex;
using mvp::serve::ThreadPool;

int main() {
  const auto data = mvp::dataset::UniformVectors(20000, 20, 7);
  const auto queries = mvp::dataset::UniformQueryVectors(48, 20, 8);

  ThreadPool pool(4);
  ShardedMvpIndex<Vector, L2>::Options options;
  options.num_shards = 4;
  auto index = ShardedMvpIndex<Vector, L2>::Build(data, L2(), options, &pool)
                   .ValueOrDie();

  std::vector<BatchQuery<Vector>> batch;
  for (const auto& q : queries) {
    BatchQuery<Vector> bq;
    bq.object = q;
    bq.radius = 1.6;
    batch.push_back(bq);
  }

  int wrong = 0;

  // 1. Complete: unlimited budget, every answer in full.
  ServeStats complete_stats;
  const auto complete = RunBatch(index, batch, &pool, &complete_stats);
  for (const auto& o : complete) {
    if (!o.status.ok() || o.partial) ++wrong;
  }
  const auto complete_snap = complete_stats.Snapshot();
  std::printf("complete: %llu/%zu queries OK, p99=%lldus\n",
              static_cast<unsigned long long>(complete_snap.ok), batch.size(),
              static_cast<long long>(complete_snap.p99.count() / 1000));

  // 2. Partial: cap every query at 512 distance computations. A cut-off
  // query keeps what it found — a subset of the complete answer.
  auto capped = batch;
  for (auto& q : capped) q.max_distance_computations = 512;
  ServeStats partial_stats;
  // Serial execution keeps the budget overshoot to at most one check
  // stride, making the per-query counts below exact enough to print.
  const auto partial = RunBatch(index, capped, /*pool=*/nullptr,
                                &partial_stats);
  std::size_t kept = 0, full = 0;
  for (std::size_t i = 0; i < partial.size(); ++i) {
    const QueryOutcome& o = partial[i];
    kept += o.neighbors.size();
    full += complete[i].neighbors.size();
    if (o.status.ok()) continue;  // finished under budget
    if (o.status.code() != StatusCode::kDeadlineExceeded || !o.partial) {
      ++wrong;
      continue;
    }
    if (!std::includes(complete[i].neighbors.begin(),
                       complete[i].neighbors.end(), o.neighbors.begin(),
                       o.neighbors.end(), NeighborLess)) {
      ++wrong;  // a partial answer may only shrink, never invent neighbors
    }
  }
  const auto partial_snap = partial_stats.Snapshot();
  std::printf("partial: %llu OK, %llu cut off by the 512-distance budget; "
              "%zu/%zu neighbors still served\n",
              static_cast<unsigned long long>(partial_snap.ok),
              static_cast<unsigned long long>(partial_snap.partial), kept,
              full);

  // 3. Shed: at most 4 queries in flight; the rest of the burst is refused
  // immediately with ResourceExhausted and costs nothing.
  AdmissionController::Options admission_options;
  admission_options.max_in_flight = 4;
  admission_options.num_workers = 4;
  AdmissionController admission(admission_options);
  ExecutorOptions exec;
  exec.admission = &admission;
  ServeStats shed_stats;
  const auto shed = RunBatch(index, batch, &pool, &shed_stats, exec);
  for (const auto& o : shed) {
    if (o.status.code() == StatusCode::kResourceExhausted &&
        (o.distance_computations != 0 || !o.neighbors.empty())) {
      ++wrong;  // a shed query must not have touched the index
    }
  }
  const auto shed_snap = shed_stats.Snapshot();
  std::printf("shed: %llu served, %llu refused up front "
              "(max %zu in flight)\n",
              static_cast<unsigned long long>(shed_snap.ok),
              static_cast<unsigned long long>(shed_snap.shed),
              admission_options.max_in_flight);

  std::printf("degradation invariants hold: %s\n", wrong == 0 ? "yes" : "NO");
  return wrong == 0 ? 0 : 1;
}

// Approximate word matching — the non-spatial domain the paper highlights
// (§3.1: "text databases which generally use the edit distance (which is
// metric)"), and the original problem of [BK73] ("best matching key words
// in a file"). Compares the mvp-tree against the classic BK-tree on the
// same dictionary and misspelled queries.
//
//   $ ./build/examples/word_search

#include <cstdio>
#include <string>

#include "baselines/bk_tree.h"
#include "core/mvp_tree.h"
#include "dataset/words.h"
#include "metric/edit_distance.h"

using mvp::SearchStats;
using mvp::baselines::BkTree;
using mvp::core::MvpTree;
using mvp::metric::Levenshtein;

int main() {
  const auto dictionary = mvp::dataset::SyntheticWords(30000, 4242);
  std::printf("dictionary: %zu words\n", dictionary.size());

  MvpTree<std::string, Levenshtein>::Options options;
  options.order = 3;
  options.leaf_capacity = 80;
  options.num_path_distances = 5;
  auto mvp_tree = MvpTree<std::string, Levenshtein>::Build(
                      dictionary, Levenshtein(), options)
                      .ValueOrDie();
  auto bk_tree =
      BkTree<std::string, Levenshtein>::Build(dictionary, Levenshtein())
          .ValueOrDie();

  // Misspell a few dictionary words and look them up within 2 edits.
  int failures = 0;
  for (const std::size_t idx : {137u, 9000u, 25000u}) {
    const std::string& original = dictionary[idx];
    const std::string misspelled = mvp::dataset::MutateWord(original, 2, idx);
    std::printf("\nquery \"%s\" (misspelling of \"%s\"), tolerance 2:\n",
                misspelled.c_str(), original.c_str());

    SearchStats mvp_stats, bk_stats;
    const auto mvp_hits = mvp_tree.RangeSearch(misspelled, 2.0, &mvp_stats);
    const auto bk_hits = bk_tree.RangeSearch(misspelled, 2.0, &bk_stats);
    std::printf("  mvpt(3,80): %3zu matches, %5llu distance computations\n",
                mvp_hits.size(),
                static_cast<unsigned long long>(
                    mvp_stats.distance_computations));
    std::printf("  bk-tree:    %3zu matches, %5llu distance computations\n",
                bk_hits.size(),
                static_cast<unsigned long long>(
                    bk_stats.distance_computations));
    if (mvp_hits.size() != bk_hits.size()) ++failures;

    bool found_original = false;
    for (const auto& hit : mvp_hits) {
      if (mvp_tree.object(hit.id) == original) found_original = true;
    }
    std::printf("  original recovered: %s; best matches:",
                found_original ? "yes" : "NO");
    for (std::size_t i = 0; i < std::min<std::size_t>(4, mvp_hits.size());
         ++i) {
      std::printf(" %s(%.0f)", mvp_tree.object(mvp_hits[i].id).c_str(),
                  mvp_hits[i].distance);
    }
    std::printf("\n");
    if (!found_original) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

// Parallel serving: build a sharded mvp-tree index across a worker pool,
// then answer a batch of queries concurrently with per-query deadlines —
// the serve/ subsystem end to end. Self-checks that the sharded, parallel
// answers are bit-identical to a single mvp-tree's (exits non-zero if not).
//
//   $ ./build/examples/parallel_search

#include <chrono>
#include <cstdio>

#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "serve/executor.h"
#include "serve/serve_stats.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"

using mvp::StatusCode;
using mvp::core::MvpTree;
using mvp::metric::L2;
using mvp::metric::Vector;
using mvp::serve::BatchQuery;
using mvp::serve::RunBatch;
using mvp::serve::ServeStats;
using mvp::serve::ShardedMvpIndex;
using mvp::serve::ThreadPool;

int main() {
  // 20000 uniform 20-d vectors — the paper's §5.1.A data family.
  const auto data = mvp::dataset::UniformVectors(20000, 20, 42);
  const auto queries = mvp::dataset::UniformQueryVectors(64, 20, 43);

  // A pool of 4 workers serves both index construction and queries.
  ThreadPool pool(4);

  // Build 4 shards in parallel on the pool; each shard is an independent
  // mvp-tree over a round-robin slice of the data.
  ShardedMvpIndex<Vector, L2>::Options options;
  options.num_shards = 4;
  auto index =
      ShardedMvpIndex<Vector, L2>::Build(data, L2(), options, &pool)
          .ValueOrDie();
  std::printf("built %zu shards over %zu vectors\n", options.num_shards,
              index.size());

  // A mixed batch: range queries with a budget generous enough to hold
  // even on a loaded CI machine, plus two queries with a zero budget that
  // the executor must shed unrun.
  std::vector<BatchQuery<Vector>> batch;
  for (const auto& q : queries) {
    BatchQuery<Vector> bq;
    bq.object = q;
    bq.radius = 0.3;
    bq.timeout = std::chrono::seconds(10);
    batch.push_back(bq);
  }
  batch[10].timeout = std::chrono::nanoseconds(0);
  batch[20].timeout = std::chrono::nanoseconds(0);

  ServeStats stats;
  const auto outcomes = RunBatch(index, batch, &pool, &stats);

  // Self-check against a single unsharded tree searched serially.
  const auto reference = MvpTree<Vector, L2>::Build(data, L2(), {}).ValueOrDie();
  int wrong = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i == 10 || i == 20) {
      if (outcomes[i].status.code() != StatusCode::kDeadlineExceeded ||
          outcomes[i].distance_computations != 0) {
        ++wrong;  // a zero-budget query must be shed without running
      }
      continue;
    }
    if (!outcomes[i].status.ok() ||
        outcomes[i].neighbors != reference.RangeSearch(batch[i].object, 0.3)) {
      ++wrong;
    }
  }

  const auto snap = stats.Snapshot();
  std::printf("batch of %zu: %llu ok, %llu expired; %llu distance "
              "computations, "
              "p50=%lldus p99=%lldus\n",
              batch.size(), static_cast<unsigned long long>(snap.ok),
              static_cast<unsigned long long>(snap.deadline_exceeded),
              static_cast<unsigned long long>(snap.distance_computations),
              static_cast<long long>(snap.p50.count() / 1000),
              static_cast<long long>(snap.p99.count() / 1000));
  std::printf("sharded parallel results match the unsharded tree: %s\n",
              wrong == 0 ? "yes" : "NO");
  return wrong == 0 ? 0 : 1;
}

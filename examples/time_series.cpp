// Time-series pattern search — another domain from the paper's introduction
// ("In time-series analysis, we would like to find similar patterns among a
// given collection of sequences"). Sliding windows of a long synthetic
// signal are indexed incrementally in a dynamic MvpForest (the §6 extension)
// under L2, and recurring patterns are retrieved as near neighbors of a
// probe window — all without any coordinate-space assumption.
//
//   $ ./build/examples/time_series

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "dynamic/mvp_forest.h"
#include "metric/lp.h"

using mvp::Rng;
using mvp::SearchStats;
using mvp::dynamic::MvpForest;
using mvp::metric::L2;
using mvp::metric::Vector;

namespace {

// A long signal with a recurring "heartbeat" motif planted on noise.
std::vector<double> MakeSignal(std::size_t length, std::uint64_t seed,
                               std::vector<std::size_t>* motif_starts) {
  Rng rng(seed);
  std::vector<double> signal(length);
  for (auto& x : signal) x = rng.Uniform(-0.2, 0.2);
  const std::size_t motif_len = 64;
  for (std::size_t start = 500; start + motif_len < length; start += 900) {
    for (std::size_t i = 0; i < motif_len; ++i) {
      const double t = static_cast<double>(i) / motif_len;
      signal[start + i] += 2.0 * std::exp(-80.0 * (t - 0.3) * (t - 0.3)) -
                           1.2 * std::exp(-60.0 * (t - 0.55) * (t - 0.55));
    }
    motif_starts->push_back(start);
  }
  return signal;
}

Vector Window(const std::vector<double>& signal, std::size_t start,
              std::size_t len) {
  return Vector(signal.begin() + static_cast<std::ptrdiff_t>(start),
                signal.begin() + static_cast<std::ptrdiff_t>(start + len));
}

}  // namespace

int main() {
  const std::size_t window = 64, stride = 16;
  std::vector<std::size_t> motif_starts;
  const auto signal = MakeSignal(60000, 11, &motif_starts);
  std::printf("signal: %zu samples, %zu planted motif occurrences\n",
              signal.size(), motif_starts.size());

  // Stream the sliding windows into a dynamic index: inserts arrive as the
  // signal grows, no global rebuild required (paper §6 open problem).
  MvpForest<Vector, L2>::Options options;
  options.buffer_capacity = 128;
  options.tree.order = 3;
  options.tree.leaf_capacity = 40;
  options.tree.num_path_distances = 5;
  MvpForest<Vector, L2> index{L2(), options};
  std::vector<std::size_t> window_start_of_id;
  for (std::size_t start = 0; start + window <= signal.size();
       start += stride) {
    index.Insert(Window(signal, start, window));
    window_start_of_id.push_back(start);
  }
  std::printf("indexed %zu sliding windows (len %zu, stride %zu) across %zu "
              "static trees\n",
              index.size(), window, stride, index.num_trees());

  // Probe with a clean copy of the motif (what an analyst would sketch).
  Vector probe(window, 0.0);
  for (std::size_t i = 0; i < window; ++i) {
    const double t = static_cast<double>(i) / window;
    probe[i] = 2.0 * std::exp(-80.0 * (t - 0.3) * (t - 0.3)) -
               1.2 * std::exp(-60.0 * (t - 0.55) * (t - 0.55));
  }
  SearchStats stats;
  const auto hits = index.KnnSearch(probe, motif_starts.size(), &stats);
  std::printf("\n%zu-NN probe used %llu distance computations "
              "(scan: %zu windows)\n",
              motif_starts.size(),
              static_cast<unsigned long long>(stats.distance_computations),
              index.size());

  // Score: how many of the planted occurrences did the k-NN hit land on?
  std::size_t recovered = 0;
  for (const auto& hit : hits) {
    const std::size_t start = window_start_of_id[hit.id];
    for (const std::size_t planted : motif_starts) {
      if (start + window > planted && start < planted + window) {
        ++recovered;
        break;
      }
    }
  }
  std::printf("nearest windows overlapping a planted motif: %zu / %zu\n",
              recovered, hits.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, hits.size()); ++i) {
    std::printf("  window @%6zu  L2 distance=%.3f\n",
                window_start_of_id[hits[i].id], hits[i].distance);
  }
  return recovered >= motif_starts.size() / 2 ? 0 : 1;
}

// Extension: k-nearest-neighbor queries. The paper focuses on range
// queries and cites [Chi94] for adapting vp-trees to nearest-neighbor
// search; this bench measures the shrinking-radius k-NN implemented for
// both structures (with the mvp-tree's leaf filtering active) against the
// n-distance linear scan.

#include <iostream>

#include "bench/figure_common.h"
#include "common/rng.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"
#include "vptree/vp_tree.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;

void RunWorkload(const std::vector<Vector>& data,
                 const std::vector<Vector>& queries, std::size_t runs) {
  const std::vector<std::size_t> ks{1, 5, 10, 50};
  const std::vector<double> ks_as_double{1, 5, 10, 50};

  std::vector<SeriesRow> rows;
  auto scan_builder = [&](std::uint64_t) {
    return scan::LinearScan<Vector, L2>(data, L2());
  };
  rows.push_back(SeriesRow{
      "linear scan", harness::KnnCostSweep(scan_builder, queries, ks, 1)});
  for (const int m : {2, 3}) {
    auto builder = [&, m](std::uint64_t seed) {
      vptree::VpTree<Vector, L2>::Options options;
      options.order = m;
      options.seed = seed;
      return vptree::VpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
    rows.push_back(SeriesRow{
        "vpt(" + std::to_string(m) + ")",
        harness::KnnCostSweep(builder, queries, ks, runs)});
  }
  for (const int k : {9, 80}) {
    auto builder = [&, k](std::uint64_t seed) {
      core::MvpTree<Vector, L2>::Options options;
      options.order = 3;
      options.leaf_capacity = k;
      options.num_path_distances = 5;
      options.seed = seed;
      return core::MvpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
    rows.push_back(SeriesRow{
        "mvpt(3," + std::to_string(k) + ")",
        harness::KnnCostSweep(builder, queries, ks, runs)});
  }
  PrintSweepTable("k", ks_as_double, rows);
}

int Run() {
  auto scale = VectorScale::Get();
  if (!QuickMode()) scale.count = 30000;
  harness::PrintFigureHeader(
      std::cout, "Extension: k-NN search",
      "avg distance computations per k-nearest-neighbor query",
      std::to_string(scale.count) + " 20-d vectors, L2, " +
          std::to_string(scale.queries) + " queries x " +
          std::to_string(scale.runs) + " runs");

  std::cout << "--- uniform vectors (nearest neighbors are nearly\n"
               "    meaningless at this dimensionality: distances\n"
               "    concentrate, so NO method can prune much) ---\n";
  RunWorkload(dataset::UniformVectors(scale.count, scale.dim, 4242),
              dataset::UniformQueryVectors(scale.queries, scale.dim, 777),
              scale.runs);

  std::cout << "--- clustered vectors, cluster-member queries (meaningful\n"
               "    near neighbors exist; pruning becomes effective) ---\n";
  dataset::ClusterParams params;
  params.count = scale.count;
  params.dim = scale.dim;
  params.cluster_size = QuickMode() ? 100 : 1000;
  const auto clustered = dataset::ClusteredVectors(params, 4242);
  // Queries: perturbed cluster members (a realistic "find items like this
  // one" workload).
  std::vector<Vector> queries;
  Rng rng(777);
  for (std::size_t i = 0; i < scale.queries; ++i) {
    Vector q = clustered[rng.NextIndex(clustered.size())];
    for (auto& x : q) x += rng.Uniform(-0.05, 0.05);
    queries.push_back(std::move(q));
  }
  RunWorkload(clustered, queries, scale.runs);

  std::cout <<
      "expected: the range-query ranking (mvpt < vpt < scan) carries over\n"
      "to k-NN where neighbors are meaningful (clustered data); on uniform\n"
      "high-dimensional data every structure degenerates toward the scan —\n"
      "the distance-concentration effect behind Figure 4.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Ablation: vantage-point selection. The paper uses random vantage points
// and remarks both that "the random function that is used to pick vantage
// points has a considerable effect" (§5.2.B) and that determining better
// vantage points cheaply "would pay off in search queries" (§6). This bench
// compares random selection against the [Yia93] max-spread heuristic for
// vpt(2) and mvpt(3,80), and reports the extra construction cost.

#include <iostream>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "vptree/vp_tree.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;
using vptree::VpSelection;

int Run() {
  auto scale = VectorScale::Get();
  if (!QuickMode()) scale.count = 30000;
  harness::PrintFigureHeader(
      std::cout, "Ablation: vantage-point selection",
      "random (paper) vs max-spread [Yia93] vantage points",
      std::to_string(scale.count) + " uniform 20-d vectors, L2, " +
          std::to_string(scale.queries) + " queries x " +
          std::to_string(scale.runs) + " runs");

  const auto data = dataset::UniformVectors(scale.count, scale.dim, 4242);
  const auto queries =
      dataset::UniformQueryVectors(scale.queries, scale.dim, 777);
  const std::vector<double> radii{0.15, 0.3, 0.5};

  std::vector<SeriesRow> rows;
  for (const auto strategy : {VpSelection::kRandom, VpSelection::kMaxSpread}) {
    const std::string tag =
        strategy == VpSelection::kRandom ? "random" : "max-spread";
    auto vp_builder = [&, strategy](std::uint64_t seed) {
      vptree::VpTree<Vector, L2>::Options options;
      options.selection.strategy = strategy;
      options.seed = seed;
      return vptree::VpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
    rows.push_back(SeriesRow{
        "vpt(2) " + tag,
        harness::RangeCostSweep(vp_builder, queries, radii, scale.runs)});
    auto mvp_builder = [&, strategy](std::uint64_t seed) {
      core::MvpTree<Vector, L2>::Options options;
      options.order = 3;
      options.leaf_capacity = 80;
      options.num_path_distances = 5;
      options.selection.strategy = strategy;
      options.seed = seed;
      return core::MvpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
    rows.push_back(SeriesRow{
        "mvpt(3,80) " + tag,
        harness::RangeCostSweep(mvp_builder, queries, radii, scale.runs)});
  }
  PrintSweepTable("query range r", radii, rows);
  for (const auto& row : rows) {
    std::cout << row.name << " construction distances: "
              << harness::FormatDouble(
                     row.cells[0].avg_construction_distances, 0)
              << "\n";
  }
  std::cout <<
      "expected: max-spread buys a modest search saving for a one-off\n"
      "construction surcharge (candidates x sample extra distances per\n"
      "internal node) — the §6 trade-off, quantified.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

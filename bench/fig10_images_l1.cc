// Reproduces Figure 10: "Similarity search performances of vp and mvp trees
// on MRI images when L1 metric is used" — vpt(2), vpt(3), mvpt(2,16),
// mvpt(2,5), mvpt(3,13) over 1151 gray-level head scans, p=4, normalized L1
// (§5.1.B, §5.2.B). Real scans are substituted by deterministic phantoms
// with the same clustered distance distribution (DESIGN.md §3).

#include <iostream>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/image.h"
#include "dataset/image_gen.h"
#include "vptree/vp_tree.h"

namespace mvp::bench {
namespace {

using dataset::Image;
using dataset::ImageL1;

int Run() {
  const auto scale = ImageScale::Get();
  dataset::MriParams params;
  params.count = scale.count;
  params.subjects = scale.subjects;
  params.width = params.height = scale.side;

  harness::PrintFigureHeader(
      std::cout, "Figure 10",
      "similarity search on MRI images, L1 metric",
      std::to_string(params.count) + " phantom scans of " +
          std::to_string(params.subjects) + " subjects at " +
          std::to_string(scale.side) + "x" + std::to_string(scale.side) +
          ", L1/10000-normalized, " + std::to_string(scale.queries) +
          " queries x " + std::to_string(scale.runs) + " runs");

  const auto data = dataset::MriPhantoms(params, 1997);
  // Query scans: unseen variants of dataset subjects (the paper queries
  // with images "selected randomly from the data set"; unseen variants of
  // the same subjects keep result sets non-trivial without indexing the
  // query itself).
  std::vector<Image> queries;
  for (std::size_t i = 0; i < scale.queries; ++i) {
    queries.push_back(dataset::MriPhantomScan(
        params, 1997, i % params.subjects, 100000 + i));
  }
  const std::vector<double> radii{10, 20, 30, 40, 50, 60, 80};

  auto vp_builder = [&](int order) {
    return [&, order](std::uint64_t seed) {
      vptree::VpTree<Image, ImageL1>::Options options;
      options.order = order;
      options.seed = seed;
      return vptree::VpTree<Image, ImageL1>::Build(data, ImageL1(), options)
          .ValueOrDie();
    };
  };
  auto mvp_builder = [&](int m, int k) {
    return [&, m, k](std::uint64_t seed) {
      core::MvpTree<Image, ImageL1>::Options options;
      options.order = m;
      options.leaf_capacity = k;
      options.num_path_distances = 4;
      options.seed = seed;
      return core::MvpTree<Image, ImageL1>::Build(data, ImageL1(), options)
          .ValueOrDie();
    };
  };

  std::vector<SeriesRow> rows;
  rows.push_back(SeriesRow{
      "vpt(2)",
      harness::RangeCostSweep(vp_builder(2), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "vpt(3)",
      harness::RangeCostSweep(vp_builder(3), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "mvpt(2,16)",
      harness::RangeCostSweep(mvp_builder(2, 16), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "mvpt(2,5)",
      harness::RangeCostSweep(mvp_builder(2, 5), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "mvpt(3,13)",
      harness::RangeCostSweep(mvp_builder(3, 13), queries, radii, scale.runs)});

  PrintSweepTable("query range r (L1 values / 10000)", radii, rows);
  PrintSavings(rows[4], rows[0]);  // mvpt(3,13) vs vpt(2)
  PrintResultSizes(radii, rows[4]);
  std::cout <<
      "paper: vpt(2) 10-20% better than vpt(3); mvpt(2,16) and mvpt(2,5)\n"
      "~10% better than vpt(2); mvpt(3,13) best, 20-30% fewer distance\n"
      "computations than vpt(2).\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

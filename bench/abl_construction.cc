// Ablation: construction cost. §4.2 claims mvp-tree construction takes
// O(n log_m n) distance computations (and §3.3 the same for vp-trees, with
// m-way trees saving a log2(m) factor over binary ones). This bench sweeps
// n and reports construction distance computations per point, which should
// grow logarithmically in n and sit near log_{m^2}(n) * 2 per mvp level.

#include <iostream>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "vptree/vp_tree.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;

template <typename Builder>
std::vector<double> CostPerPoint(Builder&& build,
                                 const std::vector<std::size_t>& ns) {
  std::vector<double> out;
  for (const std::size_t n : ns) {
    const auto data = dataset::UniformVectors(n, 20, 4242);
    const auto tree = build(data);
    out.push_back(static_cast<double>(
                      tree.Stats().construction_distance_computations) /
                  static_cast<double>(n));
  }
  return out;
}

int Run() {
  harness::PrintFigureHeader(
      std::cout, "Ablation: construction cost",
      "construction distance computations per data point vs n",
      "uniform 20-d vectors, L2; expect logarithmic growth in n");
  std::vector<std::size_t> ns{1000, 4000, 16000, 64000};
  if (QuickMode()) ns = {1000, 4000, 16000};

  std::vector<std::string> columns{"structure"};
  for (const std::size_t n : ns) columns.push_back("n=" + std::to_string(n));
  harness::Table table(columns);

  table.AddRow("vpt(2)", CostPerPoint(
                             [](const std::vector<Vector>& data) {
                               return vptree::VpTree<Vector, L2>::Build(
                                          data, L2(), {})
                                   .ValueOrDie();
                             },
                             ns),
               2);
  table.AddRow("vpt(3)", CostPerPoint(
                             [](const std::vector<Vector>& data) {
                               vptree::VpTree<Vector, L2>::Options o;
                               o.order = 3;
                               return vptree::VpTree<Vector, L2>::Build(
                                          data, L2(), o)
                                   .ValueOrDie();
                             },
                             ns),
               2);
  table.AddRow("mvpt(3,9)", CostPerPoint(
                                [](const std::vector<Vector>& data) {
                                  core::MvpTree<Vector, L2>::Options o;
                                  o.order = 3;
                                  o.leaf_capacity = 9;
                                  return core::MvpTree<Vector, L2>::Build(
                                             data, L2(), o)
                                      .ValueOrDie();
                                },
                                ns),
               2);
  table.AddRow("mvpt(3,80)", CostPerPoint(
                                 [](const std::vector<Vector>& data) {
                                   core::MvpTree<Vector, L2>::Options o;
                                   o.order = 3;
                                   o.leaf_capacity = 80;
                                   return core::MvpTree<Vector, L2>::Build(
                                              data, L2(), o)
                                       .ValueOrDie();
                                 },
                                 ns),
               2);

  std::cout << "construction distance computations per point:\n"
            << table.ToText()
            << "expected: each column grows by a constant increment when n\n"
               "quadruples (logarithmic growth); mvp-trees pay ~2 distances\n"
               "per level but have half the levels of a same-fanout vp-tree;\n"
               "larger leaves reduce the internal-level count further.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

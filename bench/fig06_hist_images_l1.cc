// Reproduces Figure 6: "Distance histogram for images when L1 metric is
// used" — the exact all-pairs ((1150*1151)/2 = 658795 pairs in the paper)
// distance histogram of the 1151 gray-level head scans under the normalized
// L1 metric, distances sampled at intervals of 1 (§5.1.B). The signature
// shape is bimodal: "There are two peaks, indicating that while most of the
// images are distant from each other, some of them are quite similar,
// probably forming several clusters."

#include <iostream>

#include "bench/figure_common.h"
#include "dataset/histogram.h"
#include "dataset/image.h"
#include "dataset/image_gen.h"

namespace mvp::bench {
namespace {

int Run() {
  const auto scale = ImageScale::Get();
  dataset::MriParams params;
  params.count = scale.count;
  params.subjects = scale.subjects;
  params.width = params.height = scale.side;

  harness::PrintFigureHeader(
      std::cout, "Figure 6",
      "distance histogram for images, L1 metric",
      std::to_string(params.count) + " phantom scans at " +
          std::to_string(scale.side) + "x" + std::to_string(scale.side) +
          ", L1/10000-normalized, all " +
          std::to_string(params.count * (params.count - 1) / 2) +
          " pairs, bucket 1");

  const auto data = dataset::MriPhantoms(params, 1997);
  const auto hist =
      dataset::AllPairsHistogram(data, dataset::ImageL1(), 1.0);
  dataset::PrintHistogram(std::cout, hist);

  // Bimodality check: a low "same-subject" mode and a high "different
  // subject" mode separated by a sparse valley.
  const double near_mode = hist.Quantile(0.01);
  const double far_mode =
      (static_cast<double>(hist.PeakBucket()) + 0.5) * hist.bucket_width;
  std::cout << "near-pair mode ~" << harness::FormatDouble(near_mode, 0)
            << ", bulk mode ~" << harness::FormatDouble(far_mode, 0)
            << "  (paper: two peaks; meaningful L1 tolerance ~50 in"
               " normalized units)\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Wall-clock micro-benchmarks (google-benchmark): build and query
// throughput of the core structures. The paper's cost model is distance
// computations (see the fig* benches); this binary complements it with real
// time, confirming the index bookkeeping itself is cheap.

#include <benchmark/benchmark.h>

#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"
#include "vptree/vp_tree.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;

void BM_MvpTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = dataset::UniformVectors(n, 20, 1);
  core::MvpTree<Vector, L2>::Options options;
  options.order = 3;
  options.leaf_capacity = 80;
  options.num_path_distances = 5;
  for (auto _ : state) {
    auto tree = core::MvpTree<Vector, L2>::Build(data, L2(), options);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MvpTreeBuild)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_VpTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto data = dataset::UniformVectors(n, 20, 1);
  for (auto _ : state) {
    auto tree = vptree::VpTree<Vector, L2>::Build(data, L2(), {});
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_VpTreeBuild)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

template <typename Index>
void RunRangeQueries(benchmark::State& state, const Index& index,
                     const std::vector<Vector>& queries, double radius) {
  std::size_t qi = 0;
  for (auto _ : state) {
    auto result = index.RangeSearch(queries[qi], radius);
    benchmark::DoNotOptimize(result);
    qi = (qi + 1) % queries.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_MvpTreeRangeQuery(benchmark::State& state) {
  const auto data = dataset::UniformVectors(20000, 20, 1);
  const auto queries = dataset::UniformQueryVectors(64, 20, 2);
  core::MvpTree<Vector, L2>::Options options;
  options.order = 3;
  options.leaf_capacity = 80;
  options.num_path_distances = 5;
  const auto tree =
      core::MvpTree<Vector, L2>::Build(data, L2(), options).ValueOrDie();
  RunRangeQueries(state, tree, queries,
                  static_cast<double>(state.range(0)) / 100.0);
}
BENCHMARK(BM_MvpTreeRangeQuery)->Arg(15)->Arg(30)->Arg(50);

void BM_VpTreeRangeQuery(benchmark::State& state) {
  const auto data = dataset::UniformVectors(20000, 20, 1);
  const auto queries = dataset::UniformQueryVectors(64, 20, 2);
  const auto tree =
      vptree::VpTree<Vector, L2>::Build(data, L2(), {}).ValueOrDie();
  RunRangeQueries(state, tree, queries,
                  static_cast<double>(state.range(0)) / 100.0);
}
BENCHMARK(BM_VpTreeRangeQuery)->Arg(15)->Arg(30)->Arg(50);

void BM_LinearScanRangeQuery(benchmark::State& state) {
  const auto data = dataset::UniformVectors(20000, 20, 1);
  const auto queries = dataset::UniformQueryVectors(64, 20, 2);
  const scan::LinearScan<Vector, L2> index(data, L2());
  RunRangeQueries(state, index, queries,
                  static_cast<double>(state.range(0)) / 100.0);
}
BENCHMARK(BM_LinearScanRangeQuery)->Arg(15)->Arg(50);

void BM_MvpTreeKnnQuery(benchmark::State& state) {
  const auto data = dataset::UniformVectors(20000, 20, 1);
  const auto queries = dataset::UniformQueryVectors(64, 20, 2);
  core::MvpTree<Vector, L2>::Options options;
  options.order = 3;
  options.leaf_capacity = 80;
  options.num_path_distances = 5;
  const auto tree =
      core::MvpTree<Vector, L2>::Build(data, L2(), options).ValueOrDie();
  const auto k = static_cast<std::size_t>(state.range(0));
  std::size_t qi = 0;
  for (auto _ : state) {
    auto result = tree.KnnSearch(queries[qi], k);
    benchmark::DoNotOptimize(result);
    qi = (qi + 1) % queries.size();
  }
}
BENCHMARK(BM_MvpTreeKnnQuery)->Arg(1)->Arg(10);

void BM_EditDistanceFull(benchmark::State& state) {
  const auto words = dataset::SyntheticWords(256, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = words[i % words.size()];
    const auto& b = words[(i * 7 + 3) % words.size()];
    benchmark::DoNotOptimize(metric::EditDistance(a, b));
    ++i;
  }
}
BENCHMARK(BM_EditDistanceFull);

void BM_EditDistanceBounded(benchmark::State& state) {
  // The banded variant pays off when the bound is small relative to the
  // word lengths — exactly the range-query case (r = 1..3 edits).
  const auto words = dataset::SyntheticWords(256, 1);
  const auto bound = static_cast<unsigned>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = words[i % words.size()];
    const auto& b = words[(i * 7 + 3) % words.size()];
    benchmark::DoNotOptimize(metric::BoundedEditDistance(a, b, bound));
    ++i;
  }
}
BENCHMARK(BM_EditDistanceBounded)->Arg(1)->Arg(3);

}  // namespace
}  // namespace mvp::bench

BENCHMARK_MAIN();

// Ablation: order m. §5.2: "we have observed that order 3 (m) gives the
// most reasonable results compared to order 2 or any value higher than 3"
// — and §3.3's thin-shell analysis explains why very high orders hurt in
// high dimensions (spherical cuts of width ~R*(2^(1/N)-1) intersect every
// query annulus). Sweeps m for mvpt(m,80,p=5) and vpt(m).

#include <iostream>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "vptree/vp_tree.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;

int Run() {
  auto scale = VectorScale::Get();
  if (!QuickMode()) scale.count = 30000;
  harness::PrintFigureHeader(
      std::cout, "Ablation: order m",
      "vpt(m) and mvpt(m,80,p=5) search cost as the order m grows",
      std::to_string(scale.count) + " uniform 20-d vectors, L2, " +
          std::to_string(scale.queries) + " queries x " +
          std::to_string(scale.runs) + " runs");

  const auto data = dataset::UniformVectors(scale.count, scale.dim, 4242);
  const auto queries =
      dataset::UniformQueryVectors(scale.queries, scale.dim, 777);
  const std::vector<double> radii{0.15, 0.3, 0.5};

  std::vector<SeriesRow> rows;
  for (const int m : {2, 3, 4, 6, 8}) {
    auto builder = [&, m](std::uint64_t seed) {
      vptree::VpTree<Vector, L2>::Options options;
      options.order = m;
      options.seed = seed;
      return vptree::VpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
    rows.push_back(
        SeriesRow{"vpt(" + std::to_string(m) + ")",
                  harness::RangeCostSweep(builder, queries, radii, scale.runs)});
  }
  for (const int m : {2, 3, 4, 6}) {
    auto builder = [&, m](std::uint64_t seed) {
      core::MvpTree<Vector, L2>::Options options;
      options.order = m;
      options.leaf_capacity = 80;
      options.num_path_distances = 5;
      options.seed = seed;
      return core::MvpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
    rows.push_back(
        SeriesRow{"mvpt(" + std::to_string(m) + ",80)",
                  harness::RangeCostSweep(builder, queries, radii, scale.runs)});
  }
  PrintSweepTable("query range r", radii, rows);
  std::cout <<
      "expected (paper §5.2): moderate orders win; vpt differences are\n"
      "small (~10%), higher vp-tree orders do not help on narrow distance\n"
      "distributions; mvpt around m=3 is the sweet spot.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

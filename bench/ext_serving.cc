// Extension: concurrent query serving. Measures the serve/ subsystem on
// the paper's §5.1.A workload (uniform 20-d vectors, L2): batch throughput
// at 1/2/4/8 worker threads, the effect of sharding (1 vs K shards), and
// tail latency — while asserting every configuration returns results
// bit-identical to a single unsharded mvp-tree. Speedups depend on the
// machine's core count; the result-equality checks do not.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/executor.h"
#include "serve/serve_stats.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"
#include "snapshot/snapshot_store.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;
using Sharded = serve::ShardedMvpIndex<Vector, L2>;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int Run() {
  const std::size_t n = QuickMode() ? 5000 : 50000;
  const std::size_t num_queries = QuickMode() ? 50 : 400;
  const double radius = 0.3;
  harness::PrintFigureHeader(
      std::cout, "Extension: concurrent serving",
      "batch throughput and tail latency of the serve/ subsystem",
      std::to_string(n) + " uniform 20-d vectors, L2, radius " +
          harness::FormatDouble(radius, 2) + ", " +
          std::to_string(num_queries) + " queries/batch" +
          (QuickMode() ? "  (quick mode)" : ""));

  const auto data = dataset::UniformVectors(n, 20, 4242);
  const auto query_points = dataset::UniformQueryVectors(num_queries, 20, 777);
  std::vector<serve::BatchQuery<Vector>> batch;
  for (const auto& q : query_points) {
    serve::BatchQuery<Vector> bq;
    bq.object = q;
    bq.radius = radius;
    batch.push_back(bq);
  }

  auto plain = core::MvpTree<Vector, L2>::Build(data, L2(), {}).ValueOrDie();
  const auto t0 = Clock::now();
  const auto baseline = serve::RunBatch(plain, batch, /*pool=*/nullptr);
  const double base_ms = MillisSince(t0);
  std::printf("baseline (unsharded tree, serial executor): %.1f ms, %.0f qps\n",
              base_ms,
              1000.0 * static_cast<double>(batch.size()) / base_ms);

  serve::ThreadPool build_pool(4);
  harness::Table table({"shards", "threads", "wall_ms", "qps", "speedup",
                        "p50_us", "p95_us", "p99_us"});
  bool all_match = true;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    Sharded::Options options;
    options.num_shards = shards;
    const Sharded index =
        Sharded::Build(data, L2(), options, &build_pool).ValueOrDie();
    for (const std::size_t threads : {1, 2, 4, 8}) {
      serve::ThreadPool pool(threads);
      serve::ServeStats stats;
      const auto start = Clock::now();
      const auto outcomes = serve::RunBatch(index, batch, &pool, &stats);
      const double wall_ms = MillisSince(start);
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].status.ok() ||
            outcomes[i].neighbors != baseline[i].neighbors) {
          all_match = false;
        }
      }
      const auto snap = stats.Snapshot();
      table.AddRow(
          {std::to_string(shards), std::to_string(threads),
           harness::FormatDouble(wall_ms, 1),
           harness::FormatDouble(
               1000.0 * static_cast<double>(batch.size()) / wall_ms, 0),
           harness::FormatDouble(base_ms / wall_ms, 2),
           harness::FormatDouble(static_cast<double>(snap.p50.count()) / 1e3,
                                 0),
           harness::FormatDouble(static_cast<double>(snap.p95.count()) / 1e3,
                                 0),
           harness::FormatDouble(static_cast<double>(snap.p99.count()) / 1e3,
                                 0)});
    }
  }
  std::cout << table.ToText();
  std::printf("results identical to the unsharded tree in every "
              "configuration: %s\n",
              all_match ? "yes" : "NO (BUG)");

  // Deadline behaviour: replay the batch with a budget that cuts into the
  // queue tail. Degradation is graceful twice over — expired queries
  // return the neighbors they had already found (partial), and the
  // harvested fraction of the full answer set is reported.
  {
    Sharded::Options options;
    options.num_shards = 4;
    const Sharded index =
        Sharded::Build(data, L2(), options, &build_pool).ValueOrDie();
    auto tight = batch;
    const auto budget =
        std::chrono::microseconds(QuickMode() ? 500 : 2000);
    for (auto& q : tight) q.timeout = budget;
    serve::ThreadPool pool(4);
    serve::ServeStats stats;
    const auto outcomes = serve::RunBatch(index, tight, &pool, &stats);
    std::size_t harvested = 0, full_answers = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      harvested += outcomes[i].neighbors.size();
      full_answers += baseline[i].neighbors.size();
    }
    const auto snap = stats.Snapshot();
    std::printf("with a %lldus per-query budget: %llu complete, %llu "
                "partial, %llu empty; %zu/%zu total neighbors still served "
                "(degraded p99 %.0fus)\n",
                static_cast<long long>(budget.count()),
                static_cast<unsigned long long>(snap.ok),
                static_cast<unsigned long long>(snap.partial),
                static_cast<unsigned long long>(snap.deadline_exceeded),
                harvested, full_answers,
                static_cast<double>(snap.degraded_p99.count()) / 1e3);
  }

  // Overload behaviour: a burst far beyond the in-flight window, with
  // admission control shedding the excess immediately instead of queueing
  // it into uselessness.
  {
    Sharded::Options options;
    options.num_shards = 4;
    const Sharded index =
        Sharded::Build(data, L2(), options, &build_pool).ValueOrDie();
    serve::AdmissionController::Options admission_options;
    admission_options.max_in_flight = 8;
    admission_options.num_workers = 4;
    serve::AdmissionController admission(admission_options);
    serve::ExecutorOptions exec;
    exec.admission = &admission;
    serve::ThreadPool pool(4);
    serve::ServeStats stats;
    // The burst carries deadlines, so admission sheds a query as soon as
    // its estimated queue wait alone would blow its budget.
    auto burst = batch;
    const auto budget =
        std::chrono::microseconds(QuickMode() ? 500 : 2000);
    for (auto& q : burst) q.timeout = budget;
    const auto start = Clock::now();
    // Outcomes land in `stats`; the burst is measured in aggregate.
    (void)serve::RunBatch(index, burst, &pool, &stats, exec);
    const double wall_ms = MillisSince(start);
    const auto snap = stats.Snapshot();
    std::printf("admission control (max 8 in flight) on the %zu-query "
                "burst: %llu served, %llu shed (ResourceExhausted) in "
                "%.1f ms\n",
                batch.size(), static_cast<unsigned long long>(snap.ok),
                static_cast<unsigned long long>(snap.shed), wall_ms);
  }
#if defined(MVPTREE_FAULT_FS_POSIX)
  // Network serving: the same workload through mvpt-server's loopback RPC
  // path — one round trip per query vs one streaming batch — against the
  // in-process executor over the identical flat snapshot. The deltas are
  // the cost of the wire: framing, CRCs, syscalls, and (for the per-query
  // mode) a full RTT of latency each.
  {
    const std::string store_dir =
        (std::filesystem::temp_directory_path() / "mvpt_bench_net_store")
            .string();
    std::filesystem::remove_all(store_dir);
    Sharded::Options options;
    options.num_shards = 4;
    const Sharded built =
        Sharded::Build(data, L2(), options, &build_pool).ValueOrDie();
    snapshot::SnapshotStore store(store_dir);
    const auto saved = store.SaveFlat(built);
    if (!saved.ok()) {
      std::printf("network section skipped: %s\n",
                  saved.status().ToString().c_str());
      return all_match ? 0 : 1;
    }

    net::CollectionOptions collection;
    collection.name = "bench";
    collection.dir = store_dir;
    // Throughput run: the whole batch may be in flight at once; do not let
    // default admission shed it.
    collection.admission.max_in_flight = std::size_t{1} << 20;
    net::ServerOptions server_options;
    server_options.threads = 4;
    server_options.collections.push_back(collection);
    auto server = net::Server::Start(std::move(server_options));
    auto client = server.ok()
                      ? net::Client::Connect("127.0.0.1", server.value()->port())
                      : Result<net::Client>(server.status());
    if (!client.ok()) {
      std::printf("network section skipped: %s\n",
                  client.status().ToString().c_str());
      std::filesystem::remove_all(store_dir);
      return all_match ? 0 : 1;
    }

    std::vector<net::WireQuery> wire_batch;
    for (const auto& q : query_points) {
      net::WireQuery wq;
      wq.kind = 0;
      wq.radius = radius;
      wq.point = q;
      wire_batch.push_back(std::move(wq));
    }

    // In-process floor: the identical snapshot through RunBatch directly.
    serve::ThreadPool pool(4);
    const auto opened = store.OpenFlat(L2(), &pool);
    if (!opened.ok()) {
      std::printf("network section skipped: %s\n",
                  opened.status().ToString().c_str());
      server.value()->Stop();
      std::filesystem::remove_all(store_dir);
      return all_match ? 0 : 1;
    }
    const auto t_local = Clock::now();
    const auto local = serve::RunBatch(opened.value().index, batch, &pool);
    const double local_ms = MillisSince(t_local);

    // Streaming batch: one request frame carrying every query, one
    // response frame per outcome, a single executor batch server-side.
    const auto t_stream = Clock::now();
    const auto streamed = client.value().BatchQuery("bench", wire_batch);
    const double stream_ms = MillisSince(t_stream);

    // Per-query RPCs: a full round trip each, serially — the latency-bound
    // worst case.
    const auto t_rpc = Clock::now();
    std::size_t rpc_ok = 0;
    for (const auto& wq : wire_batch) {
      auto outcome = client.value().Query("bench", wq);
      if (outcome.ok() && outcome.value().status_code == 0) ++rpc_ok;
    }
    const double rpc_ms = MillisSince(t_rpc);

    bool net_match = streamed.ok() && rpc_ok == wire_batch.size();
    if (streamed.ok()) {
      for (std::size_t i = 0; i < streamed.value().size(); ++i) {
        if (streamed.value()[i].status_code != 0 ||
            streamed.value()[i].neighbors != baseline[i].neighbors ||
            local[i].neighbors != baseline[i].neighbors) {
          net_match = false;
        }
      }
    }
    all_match = all_match && net_match;

    harness::Table net_table({"path", "wall_ms", "qps", "vs_inproc"});
    const auto qps = [&](double ms) {
      return harness::FormatDouble(
          1000.0 * static_cast<double>(wire_batch.size()) / ms, 0);
    };
    net_table.AddRow({"in-process RunBatch",
                      harness::FormatDouble(local_ms, 1), qps(local_ms),
                      "1.00"});
    net_table.AddRow({"loopback streaming batch",
                      harness::FormatDouble(stream_ms, 1), qps(stream_ms),
                      harness::FormatDouble(local_ms / stream_ms, 2)});
    net_table.AddRow({"loopback per-query RPC",
                      harness::FormatDouble(rpc_ms, 1), qps(rpc_ms),
                      harness::FormatDouble(local_ms / rpc_ms, 2)});
    std::cout << net_table.ToText();
    std::printf("network results identical to the in-process executor: %s\n",
                net_match ? "yes" : "NO (BUG)");
    server.value()->Stop();
    std::filesystem::remove_all(store_dir);
  }
#endif  // MVPTREE_FAULT_FS_POSIX

  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

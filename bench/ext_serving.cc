// Extension: concurrent query serving. Measures the serve/ subsystem on
// the paper's §5.1.A workload (uniform 20-d vectors, L2): batch throughput
// at 1/2/4/8 worker threads, the effect of sharding (1 vs K shards), and
// tail latency — while asserting every configuration returns results
// bit-identical to a single unsharded mvp-tree. Speedups depend on the
// machine's core count; the result-equality checks do not.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "serve/executor.h"
#include "serve/serve_stats.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;
using Sharded = serve::ShardedMvpIndex<Vector, L2>;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int Run() {
  const std::size_t n = QuickMode() ? 5000 : 50000;
  const std::size_t num_queries = QuickMode() ? 50 : 400;
  const double radius = 0.3;
  harness::PrintFigureHeader(
      std::cout, "Extension: concurrent serving",
      "batch throughput and tail latency of the serve/ subsystem",
      std::to_string(n) + " uniform 20-d vectors, L2, radius " +
          harness::FormatDouble(radius, 2) + ", " +
          std::to_string(num_queries) + " queries/batch" +
          (QuickMode() ? "  (quick mode)" : ""));

  const auto data = dataset::UniformVectors(n, 20, 4242);
  const auto query_points = dataset::UniformQueryVectors(num_queries, 20, 777);
  std::vector<serve::BatchQuery<Vector>> batch;
  for (const auto& q : query_points) {
    serve::BatchQuery<Vector> bq;
    bq.object = q;
    bq.radius = radius;
    batch.push_back(bq);
  }

  auto plain = core::MvpTree<Vector, L2>::Build(data, L2(), {}).ValueOrDie();
  const auto t0 = Clock::now();
  const auto baseline = serve::RunBatch(plain, batch, /*pool=*/nullptr);
  const double base_ms = MillisSince(t0);
  std::printf("baseline (unsharded tree, serial executor): %.1f ms, %.0f qps\n",
              base_ms,
              1000.0 * static_cast<double>(batch.size()) / base_ms);

  serve::ThreadPool build_pool(4);
  harness::Table table({"shards", "threads", "wall_ms", "qps", "speedup",
                        "p50_us", "p95_us", "p99_us"});
  bool all_match = true;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    Sharded::Options options;
    options.num_shards = shards;
    const Sharded index =
        Sharded::Build(data, L2(), options, &build_pool).ValueOrDie();
    for (const std::size_t threads : {1, 2, 4, 8}) {
      serve::ThreadPool pool(threads);
      serve::ServeStats stats;
      const auto start = Clock::now();
      const auto outcomes = serve::RunBatch(index, batch, &pool, &stats);
      const double wall_ms = MillisSince(start);
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].status.ok() ||
            outcomes[i].neighbors != baseline[i].neighbors) {
          all_match = false;
        }
      }
      const auto snap = stats.Snapshot();
      table.AddRow(
          {std::to_string(shards), std::to_string(threads),
           harness::FormatDouble(wall_ms, 1),
           harness::FormatDouble(
               1000.0 * static_cast<double>(batch.size()) / wall_ms, 0),
           harness::FormatDouble(base_ms / wall_ms, 2),
           harness::FormatDouble(static_cast<double>(snap.p50.count()) / 1e3,
                                 0),
           harness::FormatDouble(static_cast<double>(snap.p95.count()) / 1e3,
                                 0),
           harness::FormatDouble(static_cast<double>(snap.p99.count()) / 1e3,
                                 0)});
    }
  }
  std::cout << table.ToText();
  std::printf("results identical to the unsharded tree in every "
              "configuration: %s\n",
              all_match ? "yes" : "NO (BUG)");

  // Deadline behaviour: replay the batch with a budget that cuts into the
  // queue tail. Degradation is graceful twice over — expired queries
  // return the neighbors they had already found (partial), and the
  // harvested fraction of the full answer set is reported.
  {
    Sharded::Options options;
    options.num_shards = 4;
    const Sharded index =
        Sharded::Build(data, L2(), options, &build_pool).ValueOrDie();
    auto tight = batch;
    const auto budget =
        std::chrono::microseconds(QuickMode() ? 500 : 2000);
    for (auto& q : tight) q.timeout = budget;
    serve::ThreadPool pool(4);
    serve::ServeStats stats;
    const auto outcomes = serve::RunBatch(index, tight, &pool, &stats);
    std::size_t harvested = 0, full_answers = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      harvested += outcomes[i].neighbors.size();
      full_answers += baseline[i].neighbors.size();
    }
    const auto snap = stats.Snapshot();
    std::printf("with a %lldus per-query budget: %llu complete, %llu "
                "partial, %llu empty; %zu/%zu total neighbors still served "
                "(degraded p99 %.0fus)\n",
                static_cast<long long>(budget.count()),
                static_cast<unsigned long long>(snap.ok),
                static_cast<unsigned long long>(snap.partial),
                static_cast<unsigned long long>(snap.deadline_exceeded),
                harvested, full_answers,
                static_cast<double>(snap.degraded_p99.count()) / 1e3);
  }

  // Overload behaviour: a burst far beyond the in-flight window, with
  // admission control shedding the excess immediately instead of queueing
  // it into uselessness.
  {
    Sharded::Options options;
    options.num_shards = 4;
    const Sharded index =
        Sharded::Build(data, L2(), options, &build_pool).ValueOrDie();
    serve::AdmissionController::Options admission_options;
    admission_options.max_in_flight = 8;
    admission_options.num_workers = 4;
    serve::AdmissionController admission(admission_options);
    serve::ExecutorOptions exec;
    exec.admission = &admission;
    serve::ThreadPool pool(4);
    serve::ServeStats stats;
    // The burst carries deadlines, so admission sheds a query as soon as
    // its estimated queue wait alone would blow its budget.
    auto burst = batch;
    const auto budget =
        std::chrono::microseconds(QuickMode() ? 500 : 2000);
    for (auto& q : burst) q.timeout = budget;
    const auto start = Clock::now();
    // Outcomes land in `stats`; the burst is measured in aggregate.
    (void)serve::RunBatch(index, burst, &pool, &stats, exec);
    const double wall_ms = MillisSince(start);
    const auto snap = stats.Snapshot();
    std::printf("admission control (max 8 in flight) on the %zu-query "
                "burst: %llu served, %llu shed (ResourceExhausted) in "
                "%.1f ms\n",
                batch.size(), static_cast<unsigned long long>(snap.ok),
                static_cast<unsigned long long>(snap.shed), wall_ms);
  }
  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Reproduces Figure 5: "Distance distribution for Euclidean vectors
// generated in clusters" — the wider, softer pairwise distance distribution
// of the clustered 50000-vector set (clusters of 1000, eps=0.15), bucket
// width 0.01 (§5.1.A set 2).

#include <iostream>

#include "bench/figure_common.h"
#include "dataset/histogram.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"

namespace mvp::bench {
namespace {

int Run() {
  const auto scale = VectorScale::Get();
  const std::uint64_t samples = QuickMode() ? 500000 : 20000000;
  dataset::ClusterParams params;
  params.count = scale.count;
  params.dim = scale.dim;
  params.cluster_size = QuickMode() ? 100 : 1000;
  params.epsilon = 0.15;

  harness::PrintFigureHeader(
      std::cout, "Figure 5",
      "distance distribution for Euclidean vectors generated in clusters",
      std::to_string(params.count) + " vectors, clusters of " +
          std::to_string(params.cluster_size) +
          ", eps=0.15, L2, bucket 0.01, " + std::to_string(samples) +
          " sampled pairs scaled to all pairs");

  const auto data = dataset::ClusteredVectors(params, 4242);
  const auto hist = dataset::SampledPairsHistogram(data, metric::L2(), 0.01,
                                                   samples, 99);
  dataset::PrintHistogram(std::cout, hist);

  // Shape comparison against Figure 4 (see fig04_hist_random): wider range,
  // flatter peak.
  const auto uniform = dataset::UniformVectors(scale.count, scale.dim, 4242);
  const auto uniform_hist = dataset::SampledPairsHistogram(
      uniform, metric::L2(), 0.01, samples / 4, 99);
  const double spread_clustered =
      hist.Quantile(0.95) - hist.Quantile(0.05);
  const double spread_uniform =
      uniform_hist.Quantile(0.95) - uniform_hist.Quantile(0.05);
  std::cout << "5%-95% spread: clustered "
            << harness::FormatDouble(spread_clustered, 2) << " vs uniform "
            << harness::FormatDouble(spread_uniform, 2)
            << "  (paper: \"a wider range ... not as sharp as it was for"
               " random vectors\")\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Ablation: leaf capacity k. §5.2: "The idea of increasing leaf capacity
// pays off since it decreases the number of vantage points by shortening
// the height of the tree, and delay[s] the major filtering step to the leaf
// level." Sweeps k for mvpt(3,k,p=5) on the uniform-vector workload.

#include <iostream>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;

int Run() {
  auto scale = VectorScale::Get();
  if (!QuickMode()) scale.count = 30000;  // keep the sweep under a minute
  harness::PrintFigureHeader(
      std::cout, "Ablation: leaf capacity",
      "mvpt(3,k,p=5) search cost as leaf capacity k grows",
      std::to_string(scale.count) + " uniform 20-d vectors, L2, " +
          std::to_string(scale.queries) + " queries x " +
          std::to_string(scale.runs) + " runs");

  const auto data = dataset::UniformVectors(scale.count, scale.dim, 4242);
  const auto queries =
      dataset::UniformQueryVectors(scale.queries, scale.dim, 777);
  const std::vector<double> radii{0.15, 0.3, 0.5};

  std::vector<SeriesRow> rows;
  for (const int k : {1, 5, 9, 20, 40, 80, 160, 320}) {
    auto builder = [&, k](std::uint64_t seed) {
      core::MvpTree<Vector, L2>::Options options;
      options.order = 3;
      options.leaf_capacity = k;
      options.num_path_distances = 5;
      options.seed = seed;
      return core::MvpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
    rows.push_back(
        SeriesRow{"mvpt(3," + std::to_string(k) + ")",
                  harness::RangeCostSweep(builder, queries, radii, scale.runs)});
  }
  PrintSweepTable("query range r", radii, rows);
  std::cout <<
      "expected: cost falls steeply as k grows from 1 (more points enjoy\n"
      "leaf-level D1/D2/PATH filtering, fewer mandatory vantage-point\n"
      "distances), then flattens. Plateaus are real, not noise: with\n"
      "fanout m^2 = 9 subtree sizes shrink ~9x per level, so k values\n"
      "falling between two successive subtree sizes produce identical\n"
      "trees (a leaf forms as soon as a subtree has <= k+2 points).\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

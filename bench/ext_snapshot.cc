// Extension: snapshot store. Measures the snapshot/ subsystem on the
// paper's §5.1.A workload (uniform 20-d vectors, L2): save throughput of
// the checksummed container, load (mmap + parallel shard deserialization,
// all CRCs verified) versus rebuilding from raw vectors, and the
// time-to-first-query a server pays cold (build) versus warm (snapshot) —
// across shard counts. Every loaded index is checked to return results
// bit-identical to the index that was saved.
//
// A second table compares the flat (mmap-native, zero-deserialization)
// snapshot layout against heap deserialization: open time, time to first
// query, and steady-state per-query latency — with results and distance
// counts required to stay bit-identical between the two representations.

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "common/codec.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"
#include "snapshot/snapshot_store.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;
using Sharded = serve::ShardedMvpIndex<Vector, L2>;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string BenchDir() {
  const char* tmp = std::getenv("TMPDIR");
  return (tmp != nullptr ? std::string(tmp) : std::string("/tmp")) +
         "/mvpt_ext_snapshot";
}

int Run() {
  const std::size_t n = QuickMode() ? 5000 : 50000;
  const std::size_t dim = 20;
  harness::PrintFigureHeader(
      std::cout, "Extension: snapshot store",
      "checksummed snapshot save/load vs rebuild, and cold vs warm start",
      std::to_string(n) + " uniform " + std::to_string(dim) +
          "-d vectors, L2, CRC32C verified on every load" +
          (QuickMode() ? "  (quick mode)" : ""));

  const auto data = dataset::UniformVectors(n, dim, 4242);
  const auto query = dataset::UniformQueryVectors(1, dim, 777)[0];
  const auto steady_queries =
      dataset::UniformQueryVectors(QuickMode() ? 100 : 500, dim, 778);
  const double radius = 0.3;
  serve::ThreadPool pool(4);

  harness::Table table({"shards", "file_mb", "save_ms", "save_mb_s",
                        "load_ms", "rebuild_ms", "load_speedup",
                        "ttfq_cold_ms", "ttfq_warm_ms"});
  harness::Table flat_table({"shards", "flat_mb", "fsave_ms", "fopen_ms",
                             "ttfq_heap_ms", "ttfq_flat_ms", "ttfq_ratio",
                             "q_heap_us", "q_flat_us"});
  bool all_match = true;
  bool flat_match = true;
  double worst_ttfq_ratio = 0.0;

  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    const std::string dir = BenchDir() + "/k" + std::to_string(shards);
    std::filesystem::remove_all(dir);
    snapshot::SnapshotStore store(dir);

    Sharded::Options options;
    options.num_shards = shards;

    // Cold start: build from raw vectors, answer one query.
    const auto build_t0 = Clock::now();
    const Sharded built =
        Sharded::Build(data, L2(), options, &pool).ValueOrDie();
    const double build_ms = MillisSince(build_t0);
    const auto cold_q0 = Clock::now();
    const auto cold_hits = built.RangeSearch(query, radius);
    const double cold_query_ms = MillisSince(cold_q0);

    // Save throughput (container + manifest + commit, fsync included).
    const auto save_t0 = Clock::now();
    const auto gen = store.SaveSharded(built, VectorCodec()).ValueOrDie();
    const double save_ms = MillisSince(save_t0);
    const auto container_bytes = std::filesystem::file_size(
        store.GenerationDir(gen) + "/" +
        snapshot::SnapshotStore::kContainerFile);
    const double mb = static_cast<double>(container_bytes) / (1024.0 * 1024.0);

    // Warm start: mmap + parallel deserialization + CRC verification.
    // Cold-start costs are single-digit milliseconds, which scheduler
    // noise on a shared machine can double — so take the best of a few
    // full repetitions (each one re-does ALL the load work from disk;
    // both representations get the identical treatment below).
    constexpr int kColdReps = 3;
    double load_ms = 0.0;
    double warm_query_ms = 0.0;
    std::optional<snapshot::LoadedSharded<Vector, L2>> loaded;
    std::vector<Neighbor> warm_hits;
    for (int rep = 0; rep < kColdReps; ++rep) {
      const auto load_t0 = Clock::now();
      auto attempt = store.LoadSharded<Vector>(L2(), VectorCodec(), &pool);
      const double l = MillisSince(load_t0);
      if (!attempt.ok()) {
        std::fprintf(stderr, "load failed: %s\n",
                     attempt.status().ToString().c_str());
        return 1;
      }
      const auto warm_q0 = Clock::now();
      auto hits = attempt.value().index.RangeSearch(query, radius);
      const double q = MillisSince(warm_q0);
      if (rep == 0 || l + q < load_ms + warm_query_ms) {
        load_ms = l;
        warm_query_ms = q;
        loaded = std::move(attempt).ValueOrDie();
        warm_hits = std::move(hits);
      }
    }

    // Rebuild-from-scratch comparison point (what a server without
    // snapshots pays on every restart).
    const auto rebuild_t0 = Clock::now();
    const Sharded rebuilt =
        Sharded::Build(data, L2(), options, &pool).ValueOrDie();
    const double rebuild_ms = MillisSince(rebuild_t0);
    (void)rebuilt;  // built only to time the from-scratch baseline

    if (warm_hits.size() != cold_hits.size()) all_match = false;
    for (std::size_t i = 0; i < warm_hits.size() && all_match; ++i) {
      if (warm_hits[i].id != cold_hits[i].id ||
          warm_hits[i].distance != cold_hits[i].distance) {
        all_match = false;
      }
    }

    table.AddRow({std::to_string(shards), harness::FormatDouble(mb, 1),
                  harness::FormatDouble(save_ms, 1),
                  harness::FormatDouble(mb / (save_ms / 1000.0), 0),
                  harness::FormatDouble(load_ms, 1),
                  harness::FormatDouble(rebuild_ms, 1),
                  harness::FormatDouble(rebuild_ms / load_ms, 1),
                  harness::FormatDouble(build_ms + cold_query_ms, 1),
                  harness::FormatDouble(load_ms + warm_query_ms, 1)});

    // Flat layout: save the arena form into its own store, open it with
    // zero deserialization, compare cold-start and steady-state cost
    // against the heap load above.
    const std::string flat_dir = dir + "_flat";
    std::filesystem::remove_all(flat_dir);
    snapshot::SnapshotStore flat_store(flat_dir);
    const auto fsave_t0 = Clock::now();
    const auto flat_gen = flat_store.SaveFlat(built).ValueOrDie();
    const double fsave_ms = MillisSince(fsave_t0);
    const auto flat_bytes = std::filesystem::file_size(
        flat_store.GenerationDir(flat_gen) + "/" +
        snapshot::SnapshotStore::kContainerFile);
    const double flat_mb = static_cast<double>(flat_bytes) / (1024.0 * 1024.0);

    double fopen_ms = 0.0;
    double flat_query_ms = 0.0;
    std::optional<snapshot::LoadedSharded<Vector, L2>> flat;
    std::vector<Neighbor> flat_hits;
    for (int rep = 0; rep < kColdReps; ++rep) {
      const auto fopen_t0 = Clock::now();
      auto attempt = flat_store.OpenFlat(L2(), &pool);
      const double o = MillisSince(fopen_t0);
      if (!attempt.ok()) {
        std::fprintf(stderr, "flat open failed: %s\n",
                     attempt.status().ToString().c_str());
        return 1;
      }
      const auto flat_q0 = Clock::now();
      auto hits = attempt.value().index.RangeSearch(query, radius);
      const double q = MillisSince(flat_q0);
      if (rep == 0 || o + q < fopen_ms + flat_query_ms) {
        fopen_ms = o;
        flat_query_ms = q;
        flat = std::move(attempt).ValueOrDie();
        flat_hits = std::move(hits);
      }
    }
    if (flat_hits.size() != warm_hits.size()) flat_match = false;
    for (std::size_t i = 0; i < flat_hits.size() && flat_match; ++i) {
      if (flat_hits[i].id != warm_hits[i].id ||
          flat_hits[i].distance != warm_hits[i].distance) {
        flat_match = false;
      }
    }

    // Steady state: replay the batch on both representations serially and
    // keep the distance-count equivalence honest while timing.
    const auto heap_batch_t0 = Clock::now();
    std::uint64_t heap_distances = 0;
    for (const auto& q : steady_queries) {
      SearchStats stats;
      // Results unused: only the timing and the distance count matter here.
      (void)loaded.value().index.RangeSearch(q, radius, &stats);
      heap_distances += stats.distance_computations;
    }
    const double heap_batch_ms = MillisSince(heap_batch_t0);
    const auto flat_batch_t0 = Clock::now();
    std::uint64_t flat_distances = 0;
    for (const auto& q : steady_queries) {
      SearchStats stats;
      // Results unused: only the timing and the distance count matter here.
      (void)flat.value().index.RangeSearch(q, radius, &stats);
      flat_distances += stats.distance_computations;
    }
    const double flat_batch_ms = MillisSince(flat_batch_t0);
    if (heap_distances != flat_distances) flat_match = false;

    const double ttfq_heap = load_ms + warm_query_ms;
    const double ttfq_flat = fopen_ms + flat_query_ms;
    const double ratio = ttfq_heap / ttfq_flat;
    if (worst_ttfq_ratio == 0.0 || ratio < worst_ttfq_ratio) {
      worst_ttfq_ratio = ratio;
    }
    const double per_query_us =
        1000.0 / static_cast<double>(steady_queries.size());
    flat_table.AddRow(
        {std::to_string(shards), harness::FormatDouble(flat_mb, 1),
         harness::FormatDouble(fsave_ms, 1),
         harness::FormatDouble(fopen_ms, 2),
         harness::FormatDouble(ttfq_heap, 1),
         harness::FormatDouble(ttfq_flat, 2),
         harness::FormatDouble(ratio, 1),
         harness::FormatDouble(heap_batch_ms * per_query_us, 0),
         harness::FormatDouble(flat_batch_ms * per_query_us, 0)});
    std::filesystem::remove_all(flat_dir);
    std::filesystem::remove_all(dir);
  }

  std::cout << table.ToText();
  std::printf("loaded results bit-identical to the saved index: %s\n",
              all_match ? "yes" : "NO (BUG)");
  std::cout << flat_table.ToText();
  std::printf("flat results and distance counts bit-identical to heap: %s\n",
              flat_match ? "yes" : "NO (BUG)");
  std::printf("flat cold-start advantage (min over shard counts): %.1fx "
              "lower time to first query than heap deserialization\n",
              worst_ttfq_ratio);
  std::filesystem::remove_all(BenchDir());
  return all_match && flat_match ? 0 : 1;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

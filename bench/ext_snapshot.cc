// Extension: snapshot store. Measures the snapshot/ subsystem on the
// paper's §5.1.A workload (uniform 20-d vectors, L2): save throughput of
// the checksummed container, load (mmap + parallel shard deserialization,
// all CRCs verified) versus rebuilding from raw vectors, and the
// time-to-first-query a server pays cold (build) versus warm (snapshot) —
// across shard counts. Every loaded index is checked to return results
// bit-identical to the index that was saved.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "common/codec.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"
#include "snapshot/snapshot_store.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;
using Sharded = serve::ShardedMvpIndex<Vector, L2>;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string BenchDir() {
  const char* tmp = std::getenv("TMPDIR");
  return (tmp != nullptr ? std::string(tmp) : std::string("/tmp")) +
         "/mvpt_ext_snapshot";
}

int Run() {
  const std::size_t n = QuickMode() ? 5000 : 50000;
  const std::size_t dim = 20;
  harness::PrintFigureHeader(
      std::cout, "Extension: snapshot store",
      "checksummed snapshot save/load vs rebuild, and cold vs warm start",
      std::to_string(n) + " uniform " + std::to_string(dim) +
          "-d vectors, L2, CRC32C verified on every load" +
          (QuickMode() ? "  (quick mode)" : ""));

  const auto data = dataset::UniformVectors(n, dim, 4242);
  const auto query = dataset::UniformQueryVectors(1, dim, 777)[0];
  const double radius = 0.3;
  serve::ThreadPool pool(4);

  harness::Table table({"shards", "file_mb", "save_ms", "save_mb_s",
                        "load_ms", "rebuild_ms", "load_speedup",
                        "ttfq_cold_ms", "ttfq_warm_ms"});
  bool all_match = true;

  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    const std::string dir = BenchDir() + "/k" + std::to_string(shards);
    std::filesystem::remove_all(dir);
    snapshot::SnapshotStore store(dir);

    Sharded::Options options;
    options.num_shards = shards;

    // Cold start: build from raw vectors, answer one query.
    const auto build_t0 = Clock::now();
    const Sharded built =
        Sharded::Build(data, L2(), options, &pool).ValueOrDie();
    const double build_ms = MillisSince(build_t0);
    const auto cold_q0 = Clock::now();
    const auto cold_hits = built.RangeSearch(query, radius);
    const double cold_query_ms = MillisSince(cold_q0);

    // Save throughput (container + manifest + commit, fsync included).
    const auto save_t0 = Clock::now();
    const auto gen = store.SaveSharded(built, VectorCodec()).ValueOrDie();
    const double save_ms = MillisSince(save_t0);
    const auto container_bytes = std::filesystem::file_size(
        store.GenerationDir(gen) + "/" +
        snapshot::SnapshotStore::kContainerFile);
    const double mb = static_cast<double>(container_bytes) / (1024.0 * 1024.0);

    // Warm start: mmap + parallel deserialization + CRC verification.
    const auto load_t0 = Clock::now();
    auto loaded = store.LoadSharded<Vector>(L2(), VectorCodec(), &pool);
    const double load_ms = MillisSince(load_t0);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    const auto warm_q0 = Clock::now();
    const auto warm_hits = loaded.value().index.RangeSearch(query, radius);
    const double warm_query_ms = MillisSince(warm_q0);

    // Rebuild-from-scratch comparison point (what a server without
    // snapshots pays on every restart).
    const auto rebuild_t0 = Clock::now();
    const Sharded rebuilt =
        Sharded::Build(data, L2(), options, &pool).ValueOrDie();
    const double rebuild_ms = MillisSince(rebuild_t0);
    (void)rebuilt;  // built only to time the from-scratch baseline

    if (warm_hits.size() != cold_hits.size()) all_match = false;
    for (std::size_t i = 0; i < warm_hits.size() && all_match; ++i) {
      if (warm_hits[i].id != cold_hits[i].id ||
          warm_hits[i].distance != cold_hits[i].distance) {
        all_match = false;
      }
    }

    table.AddRow({std::to_string(shards), harness::FormatDouble(mb, 1),
                  harness::FormatDouble(save_ms, 1),
                  harness::FormatDouble(mb / (save_ms / 1000.0), 0),
                  harness::FormatDouble(load_ms, 1),
                  harness::FormatDouble(rebuild_ms, 1),
                  harness::FormatDouble(rebuild_ms / load_ms, 1),
                  harness::FormatDouble(build_ms + cold_query_ms, 1),
                  harness::FormatDouble(load_ms + warm_query_ms, 1)});
    std::filesystem::remove_all(dir);
  }

  std::cout << table.ToText();
  std::printf("loaded results bit-identical to the saved index: %s\n",
              all_match ? "yes" : "NO (BUG)");
  std::filesystem::remove_all(BenchDir());
  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Reproduces Figure 4: "Distance distribution for randomly generated
// Euclidean vectors" — the pairwise L2 distance histogram of 50000 uniform
// 20-d vectors, sampled at intervals of 0.01 (§5.1.A). The paper's sharp
// quasi-Gaussian concentration in [1, 2.5] around ~1.75 is the reason large
// query ranges defeat every hierarchical method on this dataset.

#include <iostream>

#include "bench/figure_common.h"
#include "dataset/histogram.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"

namespace mvp::bench {
namespace {

int Run() {
  const auto scale = VectorScale::Get();
  const std::uint64_t samples = QuickMode() ? 500000 : 20000000;
  harness::PrintFigureHeader(
      std::cout, "Figure 4",
      "distance distribution for randomly generated Euclidean vectors",
      std::to_string(scale.count) + " uniform " + std::to_string(scale.dim) +
          "-d vectors, L2, bucket 0.01, " + std::to_string(samples) +
          " sampled pairs scaled to all pairs");

  const auto data = dataset::UniformVectors(scale.count, scale.dim, 4242);
  const auto hist = dataset::SampledPairsHistogram(data, metric::L2(), 0.01,
                                                   samples, 99);
  dataset::PrintHistogram(std::cout, hist);
  std::cout << "peak bucket at distance ~"
            << harness::FormatDouble(
                   (static_cast<double>(hist.PeakBucket()) + 0.5) * 0.01, 2)
            << "  (paper: concentrated around ~1.75, range [1, 2.5])\n"
            << "5th/95th percentile: "
            << harness::FormatDouble(hist.Quantile(0.05), 2) << " / "
            << harness::FormatDouble(hist.Quantile(0.95), 2) << "\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Ablation: cutoff values vs exact shell bounds. The paper stores m-1
// cutoff values per vantage point (§3.3/§4.2); this library can optionally
// store the exact [min,max] distance interval of every child instead
// (store_exact_bounds), which prunes strictly no worse. This bench measures
// whether the tighter bounds are worth the extra node storage.

#include <iostream>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "vptree/vp_tree.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;

int Run() {
  auto scale = VectorScale::Get();
  if (!QuickMode()) scale.count = 30000;
  harness::PrintFigureHeader(
      std::cout, "Ablation: pruning bounds",
      "paper cutoff values vs exact per-child [min,max] shell bounds",
      std::to_string(scale.count) + " vectors each of uniform and clustered"
          " (cluster 1000, eps=0.15), 20-d, L2");

  const auto queries =
      dataset::UniformQueryVectors(scale.queries, scale.dim, 777);
  const std::vector<double> radii{0.15, 0.3, 0.5};

  for (const bool clustered : {false, true}) {
    std::vector<Vector> data;
    if (clustered) {
      dataset::ClusterParams params;
      params.count = scale.count;
      params.dim = scale.dim;
      params.cluster_size = QuickMode() ? 100 : 1000;
      data = dataset::ClusteredVectors(params, 4242);
    } else {
      data = dataset::UniformVectors(scale.count, scale.dim, 4242);
    }
    std::cout << (clustered ? "--- clustered vectors ---\n"
                            : "--- uniform vectors ---\n");
    std::vector<SeriesRow> rows;
    for (const bool exact : {false, true}) {
      const std::string tag = exact ? "exact-bounds" : "cutoffs";
      auto vp_builder = [&, exact](std::uint64_t seed) {
        vptree::VpTree<Vector, L2>::Options options;
        options.store_exact_bounds = exact;
        options.seed = seed;
        return vptree::VpTree<Vector, L2>::Build(data, L2(), options)
            .ValueOrDie();
      };
      rows.push_back(SeriesRow{
          "vpt(2) " + tag,
          harness::RangeCostSweep(vp_builder, queries, radii, scale.runs)});
      auto mvp_builder = [&, exact](std::uint64_t seed) {
        core::MvpTree<Vector, L2>::Options options;
        options.order = 3;
        options.leaf_capacity = 80;
        options.num_path_distances = 5;
        options.store_exact_bounds = exact;
        options.seed = seed;
        return core::MvpTree<Vector, L2>::Build(data, L2(), options)
            .ValueOrDie();
      };
      rows.push_back(SeriesRow{
          "mvpt(3,80) " + tag,
          harness::RangeCostSweep(mvp_builder, queries, radii, scale.runs)});
    }
    PrintSweepTable("query range r", radii, rows);
  }
  std::cout <<
      "expected: near-identical on uniform data (equal-cardinality\n"
      "positional splits leave no gap between cutoff and true bounds);\n"
      "a visible win on clustered data, where inter-cluster gaps make the\n"
      "exact intervals strictly tighter.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

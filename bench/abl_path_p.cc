// Ablation: number of stored PATH distances p (Observation 2, §4.1). The
// pre-computed distances between each leaf point and its first p ancestor
// vantage points are free filters at query time; this sweep quantifies how
// much each additional stored distance saves, for mvpt(3,80,p).

#include <iostream>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;

int Run() {
  auto scale = VectorScale::Get();
  if (!QuickMode()) scale.count = 30000;
  harness::PrintFigureHeader(
      std::cout, "Ablation: PATH distances",
      "mvpt(3,80,p) search cost as stored path distances p grow",
      std::to_string(scale.count) + " uniform 20-d vectors, L2, " +
          std::to_string(scale.queries) + " queries x " +
          std::to_string(scale.runs) + " runs");

  const auto data = dataset::UniformVectors(scale.count, scale.dim, 4242);
  const auto queries =
      dataset::UniformQueryVectors(scale.queries, scale.dim, 777);
  const std::vector<double> radii{0.15, 0.3, 0.5};

  std::vector<SeriesRow> rows;
  for (const int p : {0, 1, 2, 3, 4, 5, 8, 12}) {
    auto builder = [&, p](std::uint64_t seed) {
      core::MvpTree<Vector, L2>::Options options;
      options.order = 3;
      options.leaf_capacity = 80;
      options.num_path_distances = p;
      options.seed = seed;
      return core::MvpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
    rows.push_back(
        SeriesRow{"p=" + std::to_string(p),
                  harness::RangeCostSweep(builder, queries, radii, scale.runs)});
  }
  PrintSweepTable("query range r", radii, rows);
  std::cout <<
      "expected: monotone improvement with diminishing returns; p beyond\n"
      "the tree's vantage-point path length (2 per internal level) cannot\n"
      "add information, so the last rows coincide. p=0 isolates the value\n"
      "of the leaf's own D1/D2 arrays alone.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Extension: budgeted (approximate) k-NN. For expensive metrics the
// natural production knob is "spend at most B distance computations and
// return the best found". Because the mvp-tree orders children by distance
// lower bound and pre-filters leaf candidates through stored distances,
// recall climbs steeply with the budget. This bench prints the recall@10
// curve vs budget on the clustered-vector workload (where near neighbors
// are meaningful) together with the exact search's cost for reference.

#include <cstdio>
#include <iostream>

#include "bench/figure_common.h"
#include "common/rng.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;

int Run() {
  const std::size_t n = QuickMode() ? 5000 : 50000;
  harness::PrintFigureHeader(
      std::cout, "Extension: budgeted approximate k-NN",
      "recall@10 vs distance-computation budget, mvpt(3,80,p=5)",
      std::to_string(n) + " clustered 20-d vectors (cluster 1000, eps=0.15),"
                          " 50 cluster-member queries");

  dataset::ClusterParams params;
  params.count = n;
  params.dim = 20;
  params.cluster_size = QuickMode() ? 100 : 1000;
  const auto data = dataset::ClusteredVectors(params, 4242);

  core::MvpTree<Vector, L2>::Options options;
  options.order = 3;
  options.leaf_capacity = 80;
  options.num_path_distances = 5;
  const auto tree =
      core::MvpTree<Vector, L2>::Build(data, L2(), options).ValueOrDie();

  // Cluster-member queries: perturbed copies of random data points.
  Rng rng(777);
  std::vector<Vector> queries;
  for (int i = 0; i < 50; ++i) {
    Vector q = data[rng.NextIndex(data.size())];
    for (auto& x : q) x += rng.Uniform(-0.05, 0.05);
    queries.push_back(std::move(q));
  }

  // Exact reference + exact cost.
  std::vector<std::vector<Neighbor>> exact;
  double exact_cost = 0;
  for (const auto& q : queries) {
    SearchStats stats;
    exact.push_back(tree.KnnSearch(q, 10, &stats));
    exact_cost += static_cast<double>(stats.distance_computations);
  }
  exact_cost /= static_cast<double>(queries.size());

  std::printf("%10s  %10s  %10s\n", "budget", "recall@10", "avg dists");
  for (const std::uint64_t budget :
       {std::uint64_t{25}, std::uint64_t{50}, std::uint64_t{100},
        std::uint64_t{200}, std::uint64_t{400}, std::uint64_t{800},
        std::uint64_t{1600}, std::uint64_t{6400}}) {
    double hits = 0, cost = 0;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      SearchStats stats;
      const auto approx =
          tree.KnnSearchApproximate(queries[qi], 10, budget, &stats);
      cost += static_cast<double>(stats.distance_computations);
      for (const auto& a : approx) {
        for (const auto& e : exact[qi]) hits += a.id == e.id ? 1 : 0;
      }
    }
    std::printf("%10llu  %10.3f  %10.1f\n",
                static_cast<unsigned long long>(budget),
                hits / (10.0 * static_cast<double>(queries.size())),
                cost / static_cast<double>(queries.size()));
  }
  std::printf("exact search: recall 1.000 at avg %.1f distance computations\n",
              exact_cost);
  std::cout <<
      "expected: recall climbs monotonically with the budget (the\n"
      "best-bound-first traversal finds the home cluster early, then\n"
      "spends the rest confirming), reaching ~0.9+ at roughly half the\n"
      "exact search's cost — a smooth recall/cost trade-off curve.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

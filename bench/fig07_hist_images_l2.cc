// Reproduces Figure 7: "Distance histogram for images when L2 metric is
// used" — as Figure 6 but under the normalized L2 metric (paper: values
// divided by 100, sampled at intervals of 1; meaningful tolerance ~30).

#include <iostream>

#include "bench/figure_common.h"
#include "dataset/histogram.h"
#include "dataset/image.h"
#include "dataset/image_gen.h"

namespace mvp::bench {
namespace {

int Run() {
  const auto scale = ImageScale::Get();
  dataset::MriParams params;
  params.count = scale.count;
  params.subjects = scale.subjects;
  params.width = params.height = scale.side;

  harness::PrintFigureHeader(
      std::cout, "Figure 7",
      "distance histogram for images, L2 metric",
      std::to_string(params.count) + " phantom scans at " +
          std::to_string(scale.side) + "x" + std::to_string(scale.side) +
          ", L2/100-normalized, all " +
          std::to_string(params.count * (params.count - 1) / 2) +
          " pairs, bucket 1");

  const auto data = dataset::MriPhantoms(params, 1997);
  const auto hist =
      dataset::AllPairsHistogram(data, dataset::ImageL2(), 1.0);
  dataset::PrintHistogram(std::cout, hist);

  const double near_mode = hist.Quantile(0.01);
  const double far_mode =
      (static_cast<double>(hist.PeakBucket()) + 0.5) * hist.bucket_width;
  std::cout << "near-pair mode ~" << harness::FormatDouble(near_mode, 0)
            << ", bulk mode ~" << harness::FormatDouble(far_mode, 0)
            << "  (paper: two peaks; meaningful L2 tolerance ~30 in"
               " normalized units)\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Extension: distance-preserving transformations (§3.1). Quantifies both
// sides of the paper's argument:
//   (a) when a cheap contractive transform exists (QBIC-style tile sums on
//       images), the two-stage filter slashes expensive distance
//       computations — the technique §3.1 credits to QBIC/DFT systems;
//   (b) "transformations such as DFT or Karhunen-Loeve are not effective in
//       indexing high-dimensional vectors where the values at each
//       dimension are uncorrelated" — prefix filters on uniform vectors
//       barely filter, while the same filter on smooth (correlated)
//       signals filters well. Distance-based trees (mvp) need no such
//       transform at all.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/figure_common.h"
#include "common/rng.h"
#include "core/mvp_tree.h"
#include "dataset/image.h"
#include "dataset/image_gen.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "transform/filter_index.h"
#include "transform/transforms.h"

namespace mvp::bench {
namespace {

using metric::L1;
using metric::L2;
using metric::Vector;

/// Smooth random-walk signals: adjacent coordinates strongly correlated —
/// the regime where energy-compacting transforms shine.
std::vector<Vector> SmoothSignals(std::size_t count, std::size_t dim,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> data(count);
  for (auto& v : data) {
    v.resize(dim);
    double x = rng.Uniform(-1, 1);
    for (auto& value : v) {
      x += rng.Uniform(-0.05, 0.05);
      value = x;
    }
  }
  return data;
}

template <typename Filter, typename Queries>
void ReportFilter(const char* name, const Filter& filter,
                  const Queries& queries, double radius, std::size_t n) {
  transform::FilterSearchStats stats;
  double results = 0;
  for (const auto& q : queries) {
    results += static_cast<double>(filter.RangeSearch(q, radius, &stats).size());
  }
  const double per = static_cast<double>(queries.size());
  std::printf(
      "  %-28s cheap=%8.1f  expensive=%7.1f  candidates=%7.1f  "
      "results=%6.2f  (n=%zu)\n",
      name, static_cast<double>(stats.low_distance_computations) / per,
      static_cast<double>(stats.high_distance_computations) / per,
      static_cast<double>(stats.candidates) / per, results / per, n);
}

int Run() {
  harness::PrintFigureHeader(
      std::cout, "Extension: distance-preserving transformations",
      "two-stage filter (transform + verify) vs direct mvp-tree",
      "per-query cost split into cheap (transformed-space) and expensive"
      " (actual metric) distance computations");

  const bool quick = QuickMode();

  // ---- (a) images: QBIC-style filters vs direct mvp-tree ----
  {
    dataset::MriParams params;
    params.count = quick ? 300 : 1151;
    params.subjects = 40;
    params.width = params.height = quick ? 32 : 64;
    const auto scans = dataset::MriPhantoms(params, 1997);
    std::vector<dataset::Image> queries;
    for (std::size_t i = 0; i < 20; ++i) {
      queries.push_back(
          dataset::MriPhantomScan(params, 1997, i % params.subjects, 7000 + i));
    }
    const double radius = 50.0;
    std::printf("(a) %zu images, normalized L1, r=%.0f\n", scans.size(),
                radius);

    using AvgFilter = transform::FilterIndex<
        dataset::Image, dataset::ImageL1,
        transform::AverageIntensityTransform, L1>;
    auto avg = AvgFilter::Build(scans, dataset::ImageL1(),
                                transform::AverageIntensityTransform(), L1(),
                                {})
                   .ValueOrDie();
    ReportFilter("avg-intensity filter", avg, queries, radius, scans.size());

    using TileFilter = transform::FilterIndex<
        dataset::Image, dataset::ImageL1, transform::TileSumTransform, L1>;
    auto tiles = TileFilter::Build(scans, dataset::ImageL1(),
                                   transform::TileSumTransform(4), L1(), {})
                     .ValueOrDie();
    ReportFilter("4x4 tile-sum filter", tiles, queries, radius, scans.size());

    core::MvpTree<dataset::Image, dataset::ImageL1>::Options mvp_options;
    mvp_options.order = 3;
    mvp_options.leaf_capacity = 13;
    mvp_options.num_path_distances = 4;
    auto direct = core::MvpTree<dataset::Image, dataset::ImageL1>::Build(
                      scans, dataset::ImageL1(), mvp_options)
                      .ValueOrDie();
    SearchStats direct_stats;
    for (const auto& q : queries) direct.RangeSearch(q, radius, &direct_stats);
    std::printf("  %-28s expensive=%7.1f (all in the actual space)\n",
                "direct mvpt(3,13)",
                static_cast<double>(direct_stats.distance_computations) /
                    static_cast<double>(queries.size()));
  }

  // ---- (b) vectors: prefix filters on uncorrelated vs correlated data ----
  {
    const std::size_t n = quick ? 4000 : 20000;
    const std::size_t dim = 32;
    std::printf("(b) prefix-8 filter selectivity, %zu %zu-d vectors, L2\n", n,
                dim);
    using PrefFilter =
        transform::FilterIndex<Vector, L2, transform::PrefixTransform, L2>;

    const auto uniform = dataset::UniformVectors(n, dim, 4242);
    auto uf = PrefFilter::Build(uniform, L2(), transform::PrefixTransform(8),
                                L2(), {})
                  .ValueOrDie();
    ReportFilter("uniform (uncorrelated)", uf,
                 dataset::UniformQueryVectors(20, dim, 777), 0.8, n);

    const auto smooth = SmoothSignals(n, dim, 4242);
    auto sf = PrefFilter::Build(smooth, L2(), transform::PrefixTransform(8),
                                L2(), {})
                  .ValueOrDie();
    ReportFilter("smooth (correlated)", sf, SmoothSignals(20, dim, 777), 0.8,
                 n);

    using BlockFilter =
        transform::FilterIndex<Vector, L2, transform::BlockMeanTransform, L2>;
    auto bf = BlockFilter::Build(smooth, L2(), transform::BlockMeanTransform(4),
                                 L2(), {})
                  .ValueOrDie();
    ReportFilter("smooth + block-mean(4)", bf, SmoothSignals(20, dim, 777),
                 0.8, n);
  }

  std::cout <<
      "expected: on images both filters cut expensive computations well\n"
      "below n, tile-sums far below avg-intensity, with the direct mvp-tree\n"
      "competitive without needing any transform. On vectors, the §3.1\n"
      "caveat shows as wasted verifications: on uncorrelated data every\n"
      "candidate the prefix filter admits is a false positive (results=0),\n"
      "while on correlated signals candidates track true results closely\n"
      "and the energy-compacting block-mean transform tightens it further.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

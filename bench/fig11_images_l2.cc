// Reproduces Figure 11: "Similarity search performances of vp and mvp trees
// on MRI images when L2 metric is used" — same five structures and workload
// as Figure 10 under the normalized L2 metric (§5.2.B).

#include <iostream>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/image.h"
#include "dataset/image_gen.h"
#include "vptree/vp_tree.h"

namespace mvp::bench {
namespace {

using dataset::Image;
using dataset::ImageL2;

int Run() {
  const auto scale = ImageScale::Get();
  dataset::MriParams params;
  params.count = scale.count;
  params.subjects = scale.subjects;
  params.width = params.height = scale.side;

  harness::PrintFigureHeader(
      std::cout, "Figure 11",
      "similarity search on MRI images, L2 metric",
      std::to_string(params.count) + " phantom scans of " +
          std::to_string(params.subjects) + " subjects at " +
          std::to_string(scale.side) + "x" + std::to_string(scale.side) +
          ", L2/100-normalized, " + std::to_string(scale.queries) +
          " queries x " + std::to_string(scale.runs) + " runs");

  const auto data = dataset::MriPhantoms(params, 1997);
  std::vector<Image> queries;
  for (std::size_t i = 0; i < scale.queries; ++i) {
    queries.push_back(dataset::MriPhantomScan(
        params, 1997, i % params.subjects, 100000 + i));
  }
  const std::vector<double> radii{10, 20, 30, 40, 50, 60, 80};

  auto vp_builder = [&](int order) {
    return [&, order](std::uint64_t seed) {
      vptree::VpTree<Image, ImageL2>::Options options;
      options.order = order;
      options.seed = seed;
      return vptree::VpTree<Image, ImageL2>::Build(data, ImageL2(), options)
          .ValueOrDie();
    };
  };
  auto mvp_builder = [&](int m, int k) {
    return [&, m, k](std::uint64_t seed) {
      core::MvpTree<Image, ImageL2>::Options options;
      options.order = m;
      options.leaf_capacity = k;
      options.num_path_distances = 4;
      options.seed = seed;
      return core::MvpTree<Image, ImageL2>::Build(data, ImageL2(), options)
          .ValueOrDie();
    };
  };

  std::vector<SeriesRow> rows;
  rows.push_back(SeriesRow{
      "vpt(2)",
      harness::RangeCostSweep(vp_builder(2), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "vpt(3)",
      harness::RangeCostSweep(vp_builder(3), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "mvpt(2,16)",
      harness::RangeCostSweep(mvp_builder(2, 16), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "mvpt(2,5)",
      harness::RangeCostSweep(mvp_builder(2, 5), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "mvpt(3,13)",
      harness::RangeCostSweep(mvp_builder(3, 13), queries, radii, scale.runs)});

  PrintSweepTable("query range r (L2 values / 100)", radii, rows);
  PrintSavings(rows[4], rows[0]);  // mvpt(3,13) vs vpt(2)
  PrintResultSizes(radii, rows[4]);
  std::cout <<
      "paper: vpt(2) outperforms vpt(3) by ~10%; mvpt(2,16) better than\n"
      "vpt(2) except at high ranges; mvpt(3,13) best overall with 20-30%\n"
      "fewer distance computations than vpt(2).\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Reproduces Figure 8: "Search performances of vp and mvp trees for randomly
// generated Euclidean vectors" — average number of distance computations per
// query vs query range, for vpt(2), vpt(3), mvpt(3,9) and mvpt(3,80), on
// 50000 random 20-dimensional vectors under L2 (§5.1.A set 1, §5.2.A).

#include <iostream>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "vptree/vp_tree.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;

int Run() {
  const auto scale = VectorScale::Get();
  harness::PrintFigureHeader(
      std::cout, "Figure 8",
      "search performance on randomly generated Euclidean vectors",
      std::to_string(scale.count) + " uniform " + std::to_string(scale.dim) +
          "-d vectors in [0,1]^d, L2, " + std::to_string(scale.queries) +
          " queries x " + std::to_string(scale.runs) + " runs");

  const auto data = dataset::UniformVectors(scale.count, scale.dim, 4242);
  const auto queries =
      dataset::UniformQueryVectors(scale.queries, scale.dim, 777);
  const std::vector<double> radii{0.15, 0.2, 0.3, 0.4, 0.5};

  auto vp_builder = [&](int order) {
    return [&, order](std::uint64_t seed) {
      vptree::VpTree<Vector, L2>::Options options;
      options.order = order;
      options.seed = seed;
      return vptree::VpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
  };
  auto mvp_builder = [&](int k) {
    return [&, k](std::uint64_t seed) {
      core::MvpTree<Vector, L2>::Options options;
      options.order = 3;
      options.leaf_capacity = k;
      options.num_path_distances = 5;
      options.seed = seed;
      return core::MvpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
  };

  std::vector<SeriesRow> rows;
  rows.push_back(SeriesRow{
      "vpt(2)",
      harness::RangeCostSweep(vp_builder(2), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "vpt(3)",
      harness::RangeCostSweep(vp_builder(3), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "mvpt(3,9)",
      harness::RangeCostSweep(mvp_builder(9), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "mvpt(3,80)",
      harness::RangeCostSweep(mvp_builder(80), queries, radii, scale.runs)});

  PrintSweepTable("query range r", radii, rows);
  PrintSavings(rows[2], rows[0]);  // mvpt(3,9) vs vpt(2)
  PrintSavings(rows[3], rows[0]);  // mvpt(3,80) vs vpt(2)
  std::cout <<
      "paper: vpt(2) ~10% better than vpt(3); mvpt(3,9) ~40% fewer than\n"
      "vpt(2) closing to ~20% at r=0.5; mvpt(3,80) 80%-65% fewer for\n"
      "r in [0.15,0.3], 45% at 0.4, 30% at 0.5.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Extension benchmark: SIMD distance-kernel throughput (metric/kernels).
//
// Measures the two batch shapes the serving path uses — one query against a
// contiguous object slab (leaf sweeps) and many queries against one vantage
// point (serve::RunBatch priming) — plus the AnnulusMask leaf-filter
// primitive, for every kernel tier compiled into and supported by this
// binary. Every tier's outputs are byte-compared against the scalar
// reference: the speedup numbers are only meaningful because the results
// are bit-identical, and the binary exits nonzero if they are not.

#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/figure_common.h"
#include "dataset/vector_gen.h"
#include "metric/kernels/kernels.h"

namespace mvp::bench {
namespace {

namespace kernels = mvp::metric::kernels;

constexpr int kReps = 3;  // best-of, same convention as ext_snapshot

double SecondsOf(const std::chrono::steady_clock::time_point start,
                 const std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

/// Runs `body` kReps times and returns the fastest wall-clock seconds.
template <typename Fn>
double BestOf(Fn&& body) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    const double s = SecondsOf(start, stop);
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

const char* FamilyLabel(kernels::Family family) {
  switch (family) {
    case kernels::Family::kL1:
      return "L1";
    case kernels::Family::kL2:
      return "L2";
    default:
      return "Linf";
  }
}

int Run() {
  const auto scale = VectorScale::Get();
  const std::size_t count = scale.count;
  const std::size_t dim = scale.dim;
  const std::size_t num_queries = QuickMode() ? 512 : 4096;
  const std::size_t sweeps = QuickMode() ? 4 : 16;

  harness::PrintFigureHeader(
      std::cout, "Extension: SIMD kernels",
      "distance-kernel throughput per dispatch tier, bit-identical to scalar",
      std::to_string(count) + " uniform " + std::to_string(dim) +
          "-d vectors in [0,1]^d, " + std::to_string(num_queries) +
          " queries, best of " + std::to_string(kReps) + " reps" +
          (QuickMode() ? " (quick mode)" : ""));

  // One contiguous row-major slab of objects (the v2 leaf layout) plus a
  // pointer-per-query batch (the RunBatch priming shape).
  const auto data = dataset::UniformVectors(count, dim, 4242);
  std::vector<double> slab(count * dim);
  for (std::size_t i = 0; i < count; ++i) {
    std::memcpy(slab.data() + i * dim, data[i].data(), dim * sizeof(double));
  }
  // The one->many shape models a leaf sweep, and leaf slabs are small and
  // cache-resident — sweep a leaf-sized block repeatedly rather than
  // streaming the full slab (which measures DRAM bandwidth, not the kernel).
  const std::size_t block = count < 4096 ? count : 4096;
  const std::size_t o2m_iters = sweeps * (count / block);
  const auto query_vecs = dataset::UniformQueryVectors(num_queries, dim, 777);
  std::vector<const double*> queries(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    queries[q] = query_vecs[q].data();
  }
  const double* vp = slab.data();  // first object doubles as vantage point

  std::vector<kernels::Tier> tiers;
  for (int t = 0; t < kernels::kTierCount; ++t) {
    const auto tier = static_cast<kernels::Tier>(t);
    if (kernels::TierSupported(tier)) tiers.push_back(tier);
  }

  const std::array<kernels::Family, kernels::kFamilyCount> families = {
      kernels::Family::kL1, kernels::Family::kL2, kernels::Family::kLInf};

  harness::Table table({"metric", "tier", "1->many Mdist/s", "speedup",
                        "many->1 Mdist/s", "speedup", "bit-identical"});
  bool all_match = true;
  // Min over families of the best SIMD tier's speedup, per batch shape.
  double min_o2m_speedup = 0.0;
  double min_m2o_speedup = 0.0;

  std::vector<double> scalar_o2m(count), out_o2m(count);
  std::vector<double> scalar_m2o(num_queries), out_m2o(num_queries);
  for (const auto family : families) {
    double scalar_o2m_s = 0.0;
    double scalar_m2o_s = 0.0;
    double best_o2m = 0.0;
    double best_m2o = 0.0;
    for (const auto tier : tiers) {
      if (!kernels::ForceTier(kernels::TierName(tier)).ok()) {
        all_match = false;
        continue;
      }
      const double o2m_s = BestOf([&] {
        for (std::size_t s = 0; s < o2m_iters; ++s) {
          kernels::OneToMany(family, queries[s % num_queries], slab.data(),
                             block, dim, dim, out_o2m.data());
        }
      });
      const double m2o_s = BestOf([&] {
        kernels::ManyToOne(family, queries.data(), num_queries, vp, dim,
                           out_m2o.data());
      });
      bool match = true;
      if (tier == kernels::Tier::kScalar) {
        scalar_o2m_s = o2m_s;
        scalar_m2o_s = m2o_s;
        scalar_o2m = out_o2m;
        scalar_m2o = out_m2o;
      } else {
        match = std::memcmp(scalar_o2m.data(), out_o2m.data(),
                            block * sizeof(double)) == 0 &&
                std::memcmp(scalar_m2o.data(), out_m2o.data(),
                            num_queries * sizeof(double)) == 0;
        if (!match) all_match = false;
        if (scalar_o2m_s / o2m_s > best_o2m) best_o2m = scalar_o2m_s / o2m_s;
        if (scalar_m2o_s / m2o_s > best_m2o) best_m2o = scalar_m2o_s / m2o_s;
      }
      const double o2m_rate =
          static_cast<double>(o2m_iters * block) / o2m_s / 1e6;
      const double m2o_rate = static_cast<double>(num_queries) / m2o_s / 1e6;
      table.AddRow({FamilyLabel(family), kernels::TierName(tier),
                    harness::FormatDouble(o2m_rate, 1),
                    tier == kernels::Tier::kScalar
                        ? std::string("1.0")
                        : harness::FormatDouble(scalar_o2m_s / o2m_s, 1),
                    harness::FormatDouble(m2o_rate, 1),
                    tier == kernels::Tier::kScalar
                        ? std::string("1.0")
                        : harness::FormatDouble(scalar_m2o_s / m2o_s, 1),
                    match ? "yes" : "NO (BUG)"});
    }
    if (tiers.size() > 1) {
      if (min_o2m_speedup == 0.0 || best_o2m < min_o2m_speedup) {
        min_o2m_speedup = best_o2m;
      }
      if (min_m2o_speedup == 0.0 || best_m2o < min_m2o_speedup) {
        min_m2o_speedup = best_m2o;
      }
    }
  }

  // AnnulusMask: the v2 leaf filter sweeps 64-wide chunks of a path-distance
  // column against [d(q,vp) - r, d(q,vp) + r].
  const std::size_t chunks = count / kernels::kAnnulusMaskMaxCount;
  harness::Table mask_table(
      {"tier", "leaf-filter Melem/s", "speedup", "bit-identical"});
  std::vector<std::uint64_t> scalar_masks(chunks), masks(chunks);
  double scalar_mask_s = 0.0;
  double mask_speedup = 0.0;
  for (const auto tier : tiers) {
    if (!kernels::ForceTier(kernels::TierName(tier)).ok()) {
      all_match = false;
      continue;
    }
    const double mask_s = BestOf([&] {
      for (std::size_t s = 0; s < sweeps; ++s) {
        for (std::size_t c = 0; c < chunks; ++c) {
          masks[c] = kernels::AnnulusMask(
              0.5, slab.data() + c * kernels::kAnnulusMaskMaxCount,
              kernels::kAnnulusMaskMaxCount, 0.25);
        }
      }
    });
    bool match = true;
    if (tier == kernels::Tier::kScalar) {
      scalar_mask_s = mask_s;
      scalar_masks = masks;
    } else {
      match = scalar_masks == masks;
      if (!match) all_match = false;
      const double speedup = scalar_mask_s / mask_s;
      if (speedup > mask_speedup) mask_speedup = speedup;
    }
    const double rate =
        static_cast<double>(sweeps * chunks * kernels::kAnnulusMaskMaxCount) /
        mask_s / 1e6;
    mask_table.AddRow({kernels::TierName(tier), harness::FormatDouble(rate, 1),
                       tier == kernels::Tier::kScalar
                           ? std::string("1.0")
                           : harness::FormatDouble(scalar_mask_s / mask_s, 1),
                       match ? "yes" : "NO (BUG)"});
  }
  // Leave the process-wide dispatch as it was found.
  (void)kernels::ForceTier("auto");  // not a status to act on: reset

  std::cout << table.ToText();
  std::cout << mask_table.ToText();
  std::printf("all tiers bit-identical to scalar: %s\n",
              all_match ? "yes" : "NO (BUG)");
  if (tiers.size() > 1) {
    std::printf("best SIMD speedup, min across metrics: one->many %.1fx, "
                "many->one (batch priming) %.1fx, leaf filter %.1fx\n",
                min_o2m_speedup, min_m2o_speedup, mask_speedup);
  } else {
    std::printf("no SIMD tier available on this host; scalar only\n");
  }
  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

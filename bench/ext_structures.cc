// Extension: all-structure shootout. The paper reviews BK-trees, gh-trees
// and GNAT in §3 but only evaluates vp-trees against mvp-trees; this bench
// puts every distance-based structure in this library on shared workloads:
// (a) uniform 20-d vectors under L2, (b) synthetic words under edit
// distance (the BK-tree's home turf — it requires a discrete metric and so
// only appears in part b).

#include <iostream>

#include "baselines/ball_partition_tree.h"
#include "baselines/bk_tree.h"
#include "baselines/clique_tree.h"
#include "baselines/distance_matrix.h"
#include "baselines/gh_tree.h"
#include "baselines/gnat.h"
#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"
#include "vptree/vp_tree.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;

void VectorShootout() {
  auto scale = VectorScale::Get();
  if (!QuickMode()) scale.count = 20000;
  std::cout << "--- (a) " << scale.count
            << " uniform 20-d vectors, L2 ---\n";
  const auto data = dataset::UniformVectors(scale.count, scale.dim, 4242);
  const auto queries =
      dataset::UniformQueryVectors(scale.queries, scale.dim, 777);
  const std::vector<double> radii{0.15, 0.3, 0.5};

  std::vector<SeriesRow> rows;
  rows.push_back(SeriesRow{
      "linear scan",
      harness::RangeCostSweep(
          [&](std::uint64_t) {
            return scan::LinearScan<Vector, L2>(data, L2());
          },
          queries, radii, 1)});
  rows.push_back(SeriesRow{
      "ball-part [BK73-2]",
      harness::RangeCostSweep(
          [&](std::uint64_t seed) {
            baselines::BallPartitionTree<Vector, L2>::Options options;
            options.seed = seed;
            return baselines::BallPartitionTree<Vector, L2>::Build(
                       data, L2(), options)
                .ValueOrDie();
          },
          queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "gh-tree", harness::RangeCostSweep(
                     [&](std::uint64_t seed) {
                       baselines::GhTree<Vector, L2>::Options options;
                       options.seed = seed;
                       return baselines::GhTree<Vector, L2>::Build(
                                  data, L2(), options)
                           .ValueOrDie();
                     },
                     queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "gnat(8)", harness::RangeCostSweep(
                     [&](std::uint64_t seed) {
                       baselines::Gnat<Vector, L2>::Options options;
                       options.seed = seed;
                       return baselines::Gnat<Vector, L2>::Build(data, L2(),
                                                                 options)
                           .ValueOrDie();
                     },
                     queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "vpt(2)", harness::RangeCostSweep(
                    [&](std::uint64_t seed) {
                      vptree::VpTree<Vector, L2>::Options options;
                      options.seed = seed;
                      return vptree::VpTree<Vector, L2>::Build(data, L2(),
                                                               options)
                          .ValueOrDie();
                    },
                    queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "mvpt(3,80)", harness::RangeCostSweep(
                        [&](std::uint64_t seed) {
                          core::MvpTree<Vector, L2>::Options options;
                          options.order = 3;
                          options.leaf_capacity = 80;
                          options.num_path_distances = 5;
                          options.seed = seed;
                          return core::MvpTree<Vector, L2>::Build(data, L2(),
                                                                  options)
                              .ValueOrDie();
                        },
                        queries, radii, scale.runs)});
  PrintSweepTable("query range r", radii, rows);
}

void WordShootout() {
  const std::size_t count = QuickMode() ? 2000 : 20000;
  std::cout << "--- (b) " << count
            << " synthetic words, edit distance ---\n";
  const auto words = dataset::SyntheticWords(count, 4242);
  std::vector<std::string> queries;
  for (std::size_t i = 0; i < 50; ++i) {
    queries.push_back(dataset::MutateWord(words[(i * 131) % words.size()],
                                          static_cast<unsigned>(1 + i % 3), i));
  }
  const std::vector<double> radii{1, 2, 3};
  using Lev = metric::Levenshtein;

  std::vector<SeriesRow> rows;
  rows.push_back(SeriesRow{
      "linear scan",
      harness::RangeCostSweep(
          [&](std::uint64_t) {
            return scan::LinearScan<std::string, Lev>(words, Lev());
          },
          queries, radii, 1)});
  rows.push_back(SeriesRow{
      "bk-tree", harness::RangeCostSweep(
                     [&](std::uint64_t) {
                       return baselines::BkTree<std::string, Lev>::Build(
                                  words, Lev())
                           .ValueOrDie();
                     },
                     queries, radii, 1)});
  rows.push_back(SeriesRow{
      "gh-tree", harness::RangeCostSweep(
                     [&](std::uint64_t seed) {
                       baselines::GhTree<std::string, Lev>::Options options;
                       options.seed = seed;
                       return baselines::GhTree<std::string, Lev>::Build(
                                  words, Lev(), options)
                           .ValueOrDie();
                     },
                     queries, radii, 2)});
  rows.push_back(SeriesRow{
      "gnat(8)", harness::RangeCostSweep(
                     [&](std::uint64_t seed) {
                       baselines::Gnat<std::string, Lev>::Options options;
                       options.seed = seed;
                       return baselines::Gnat<std::string, Lev>::Build(
                                  words, Lev(), options)
                           .ValueOrDie();
                     },
                     queries, radii, 2)});
  rows.push_back(SeriesRow{
      "vpt(2)", harness::RangeCostSweep(
                    [&](std::uint64_t seed) {
                      vptree::VpTree<std::string, Lev>::Options options;
                      options.seed = seed;
                      return vptree::VpTree<std::string, Lev>::Build(
                                 words, Lev(), options)
                          .ValueOrDie();
                    },
                    queries, radii, 2)});
  rows.push_back(SeriesRow{
      "mvpt(3,80)", harness::RangeCostSweep(
                        [&](std::uint64_t seed) {
                          core::MvpTree<std::string, Lev>::Options options;
                          options.order = 3;
                          options.leaf_capacity = 80;
                          options.num_path_distances = 5;
                          options.seed = seed;
                          return core::MvpTree<std::string, Lev>::Build(
                                     words, Lev(), options)
                              .ValueOrDie();
                        },
                        queries, radii, 2)});
  PrintSweepTable("query range r (edits)", radii, rows);
}

void SmallDomainShootout() {
  // [SW90]'s O(n^2) distance table only fits small domains — exactly the
  // trade-off §3.2 describes: minimal query-time distance computations,
  // "overwhelming" space (n^2 doubles) and O(n) bookkeeping per step.
  const std::size_t n = QuickMode() ? 1000 : 4000;
  std::cout << "--- (c) small domain: " << n
            << " uniform 20-d vectors, L2 (where O(n^2) tables fit) ---\n";
  const auto data = dataset::UniformVectors(n, 20, 4242);
  const auto queries = dataset::UniformQueryVectors(30, 20, 777);
  const std::vector<double> radii{0.15, 0.3, 0.5};

  std::vector<SeriesRow> rows;
  rows.push_back(SeriesRow{
      "clique-tree [BK73-3]",
      harness::RangeCostSweep(
          [&](std::uint64_t seed) {
            baselines::CliqueTree<Vector, L2>::Options options;
            options.seed = seed;
            return baselines::CliqueTree<Vector, L2>::Build(data, L2(),
                                                            options)
                .ValueOrDie();
          },
          queries, radii, 2)});
  rows.push_back(SeriesRow{
      "dist-matrix [SW90]",
      harness::RangeCostSweep(
          [&](std::uint64_t) {
            return baselines::DistanceMatrixIndex<Vector, L2>::Build(
                       data, L2(), {})
                .ValueOrDie();
          },
          queries, radii, 1)});
  rows.push_back(SeriesRow{
      "mvpt(3,80)", harness::RangeCostSweep(
                        [&](std::uint64_t seed) {
                          core::MvpTree<Vector, L2>::Options options;
                          options.order = 3;
                          options.leaf_capacity = 80;
                          options.num_path_distances = 5;
                          options.seed = seed;
                          return core::MvpTree<Vector, L2>::Build(data, L2(),
                                                                  options)
                              .ValueOrDie();
                        },
                        queries, radii, 2)});
  PrintSweepTable("query range r", radii, rows);
  std::printf(
      "  construction distances: dist-matrix %.0f (n(n-1)/2) vs mvpt %.0f;\n"
      "  dist-matrix table: %.0f MB of doubles for n=%zu\n",
      static_cast<double>(n) * (static_cast<double>(n) - 1) / 2,
      rows.back().cells[0].avg_construction_distances,
      static_cast<double>(n) * static_cast<double>(n) * 8 / 1e6, n);
}

int Run() {
  harness::PrintFigureHeader(
      std::cout, "Extension: structure shootout",
      "every distance-based structure of §3 on shared workloads",
      "avg distance computations per range query");
  VectorShootout();
  WordShootout();
  SmallDomainShootout();
  std::cout <<
      "expected: every structure beats the scan; mvpt leads on vectors\n"
      "(the paper's result); on words with small integer radii the\n"
      "discrete structures are competitive — the reason [BK73] predates\n"
      "continuous-metric trees.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Reproduces Figure 9: "Search performances of vp and mvp trees for
// Euclidean vectors generated in clusters" — 50000 20-d vectors generated in
// clusters of 1000 with epsilon=0.15 (§5.1.A set 2), query ranges 0.2..1.0.

#include <iostream>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "vptree/vp_tree.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;

int Run() {
  const auto scale = VectorScale::Get();
  dataset::ClusterParams params;
  params.count = scale.count;
  params.dim = scale.dim;
  params.cluster_size = QuickMode() ? 100 : 1000;
  params.epsilon = 0.15;

  harness::PrintFigureHeader(
      std::cout, "Figure 9",
      "search performance on Euclidean vectors generated in clusters",
      std::to_string(params.count) + " vectors, clusters of " +
          std::to_string(params.cluster_size) + ", eps=0.15, L2, " +
          std::to_string(scale.queries) + " queries x " +
          std::to_string(scale.runs) + " runs");

  const auto data = dataset::ClusteredVectors(params, 4242);
  const auto queries =
      dataset::UniformQueryVectors(scale.queries, scale.dim, 777);
  const std::vector<double> radii{0.2, 0.4, 0.6, 0.8, 1.0};

  auto vp_builder = [&](int order) {
    return [&, order](std::uint64_t seed) {
      vptree::VpTree<Vector, L2>::Options options;
      options.order = order;
      options.seed = seed;
      return vptree::VpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
  };
  auto mvp_builder = [&](int k) {
    return [&, k](std::uint64_t seed) {
      core::MvpTree<Vector, L2>::Options options;
      options.order = 3;
      options.leaf_capacity = k;
      options.num_path_distances = 5;
      options.seed = seed;
      return core::MvpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
  };

  std::vector<SeriesRow> rows;
  rows.push_back(SeriesRow{
      "vpt(2)",
      harness::RangeCostSweep(vp_builder(2), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "vpt(3)",
      harness::RangeCostSweep(vp_builder(3), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "mvpt(3,9)",
      harness::RangeCostSweep(mvp_builder(9), queries, radii, scale.runs)});
  rows.push_back(SeriesRow{
      "mvpt(3,80)",
      harness::RangeCostSweep(mvp_builder(80), queries, radii, scale.runs)});

  PrintSweepTable("query range r", radii, rows);
  PrintSavings(rows[2], rows[1]);  // mvpt(3,9) vs vpt(3)
  PrintSavings(rows[3], rows[1]);  // mvpt(3,80) vs vpt(3)
  PrintResultSizes(radii, rows[3]);
  std::cout <<
      "paper: vpt(3) ~10% better than vpt(2) on this set; mvpt(3,80)\n"
      "70%-80% fewer than vpt(3) up to r=0.4, 25% at r=1.0; mvpt(3,9)\n"
      "45%-50% fewer up to r=0.4, 20% at r=1.0.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Ablation: vantage points per node (v). §4.2: "The mvp-tree construction
// can be modified easily so that more than 2 vantage points can be kept in
// one node ... and may be more favorable in most cases." — sketched but not
// evaluated in the paper. This bench sweeps v for GeneralizedMvpTree(m=3,
// k=80, p=5): v=1 is an m-way vp-tree PLUS the stored leaf distances
// (isolating Observation 2 from Observation 1), v=2 is the paper's
// structure, v=3..4 test the sketched extension.

#include <iostream>

#include "bench/figure_common.h"
#include "core/generalized_mvp_tree.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;

int Run() {
  auto scale = VectorScale::Get();
  if (!QuickMode()) scale.count = 30000;
  harness::PrintFigureHeader(
      std::cout, "Ablation: vantage points per node",
      "GeneralizedMvpTree(m=3, v, k=80, p=5) as v grows (fanout 3^v)",
      std::to_string(scale.count) + " uniform 20-d vectors, L2, " +
          std::to_string(scale.queries) + " queries x " +
          std::to_string(scale.runs) + " runs");

  const auto data = dataset::UniformVectors(scale.count, scale.dim, 4242);
  const auto queries =
      dataset::UniformQueryVectors(scale.queries, scale.dim, 777);
  const std::vector<double> radii{0.15, 0.3, 0.5};

  std::vector<SeriesRow> rows;
  for (const int v : {1, 2, 3, 4}) {
    auto builder = [&, v](std::uint64_t seed) {
      core::GeneralizedMvpTree<Vector, L2>::Options options;
      options.order = 3;
      options.vantage_points = v;
      options.leaf_capacity = 80;
      options.num_path_distances = 5;
      options.seed = seed;
      return core::GeneralizedMvpTree<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
    };
    rows.push_back(
        SeriesRow{"gen-mvpt(v=" + std::to_string(v) + ")",
                  harness::RangeCostSweep(builder, queries, radii, scale.runs)});
  }
  // The canonical paper structure for reference.
  auto canonical = [&](std::uint64_t seed) {
    core::MvpTree<Vector, L2>::Options options;
    options.order = 3;
    options.leaf_capacity = 80;
    options.num_path_distances = 5;
    options.seed = seed;
    return core::MvpTree<Vector, L2>::Build(data, L2(), options)
        .ValueOrDie();
  };
  rows.push_back(SeriesRow{
      "mvpt(3,80) canonical",
      harness::RangeCostSweep(canonical, queries, radii, scale.runs)});

  PrintSweepTable("query range r", radii, rows);
  for (const auto& row : rows) {
    std::cout << row.name << " construction distances: "
              << harness::FormatDouble(
                     row.cells[0].avg_construction_distances, 0)
              << "\n";
  }
  std::cout <<
      "expected: v=2 ~matches the canonical mvp-tree (same structure,\n"
      "slightly different second-vantage-point rule); v=1 shows how much\n"
      "of the gain comes from stored leaf distances alone; v>=3 trades\n"
      "fewer tree levels against thinner shells per vantage point — the\n"
      "sweet spot stays at small v on this distance distribution.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

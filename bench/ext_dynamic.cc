// Extension: dynamic updates (the paper's §6 open problem). Measures the
// MvpForest static-to-dynamic transformation: amortized insert cost, query
// overhead relative to a monolithic static mvp-tree, and delete behaviour.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <thread>

#include "bench/figure_common.h"
#include "common/codec.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "dynamic/dynamic_overlay.h"
#include "dynamic/mvp_forest.h"
#include "metric/lp.h"
#include "snapshot/snapshot_store.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;
using Forest = dynamic::MvpForest<Vector, L2>;

int Run() {
  const std::size_t n = QuickMode() ? 4000 : 20000;
  harness::PrintFigureHeader(
      std::cout, "Extension: dynamic mvp-forest",
      "insert/delete/query costs of the logarithmic-method mvp-forest",
      std::to_string(n) + " uniform 20-d vectors, L2, buffer 256,"
                          " mvpt(3,80,p=5) levels");

  const auto data = dataset::UniformVectors(n, 20, 4242);
  const auto queries = dataset::UniformQueryVectors(50, 20, 777);

  Forest::Options options;
  options.buffer_capacity = 256;
  options.tree.order = 3;
  options.tree.leaf_capacity = 80;
  options.tree.num_path_distances = 5;

  // --- amortized insert cost as the forest grows.
  Forest forest{L2(), options};
  std::uint64_t prev_cost = 0;
  std::size_t prev_count = 0;
  std::printf("amortized construction distances per insert:\n");
  for (std::size_t i = 0; i < n; ++i) {
    forest.Insert(data[i]);
    if ((i + 1) % (n / 5) == 0) {
      const std::uint64_t cost = forest.construction_distance_computations();
      std::printf("  inserts %6zu..%6zu: %7.1f (trees=%zu)\n", prev_count + 1,
                  i + 1,
                  static_cast<double>(cost - prev_cost) /
                      static_cast<double>(i + 1 - prev_count),
                  forest.num_trees());
      prev_cost = cost;
      prev_count = i + 1;
    }
  }

  // --- query overhead vs a monolithic static tree over the same data.
  auto static_tree =
      core::MvpTree<Vector, L2>::Build(data, L2(), options.tree).ValueOrDie();
  const std::vector<double> radii{0.15, 0.3, 0.5};
  std::printf("avg distance computations per range query:\n");
  std::printf("  %-22s", "r:");
  for (const double r : radii) std::printf("  %8.2f", r);
  std::printf("\n");
  auto report = [&](const char* name, auto&& index) {
    std::printf("  %-22s", name);
    for (const double r : radii) {
      SearchStats stats;
      for (const auto& q : queries) index.RangeSearch(q, r, &stats);
      std::printf("  %8.1f", static_cast<double>(stats.distance_computations) /
                                 static_cast<double>(queries.size()));
    }
    std::printf("\n");
  };
  report("static mvpt(3,80)", static_tree);
  report("forest (log-method)", forest);
  forest.Compact();
  report("forest (compacted)", forest);

  // --- delete behaviour: erase just over half so the tombstone fraction
  // crosses the compaction threshold; queries stay correct and get cheaper
  // once the rebuild drops the dead points.
  for (std::size_t i = 0; i < n; i += 2) {
    const auto st = forest.Erase(i);
    MVP_DCHECK(st.ok());
    (void)st;  // checked by MVP_DCHECK; unused in release builds
  }
  {
    const auto st = forest.Erase(1);
    MVP_DCHECK(st.ok());
    (void)st;  // checked by MVP_DCHECK; unused in release builds
  }
  std::printf("after erasing 50%% (live=%zu, tombstones=%zu, trees=%zu):\n",
              forest.size(), forest.tombstone_count(), forest.num_trees());
  report("forest (half erased)", forest);
  std::cout <<
      "expected: amortized insert cost grows logarithmically; the\n"
      "log-method forest pays a small query multiplier over one static\n"
      "tree (it holds O(log n) trees) which Compact() removes entirely;\n"
      "the balance of every component tree is preserved by construction.\n";

  // --- durable overlay: the WAL + memtable + tombstone layer over a
  // committed snapshot generation. Measures (a) query overhead as churn
  // accumulates on top of the base, (b) WAL append throughput under group
  // commit, (c) checkpoint I/O as a function of churn (the delta container
  // scales with what changed, not with the index).
  using Overlay = dynamic::DynamicOverlay<Vector, L2, VectorCodec>;
  const std::size_t base_n = QuickMode() ? 2000 : 10000;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mvpt_bench_dynamic").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Overlay::Options ovl_options;
  ovl_options.memtable = options;
  ovl_options.rebuild.num_shards = 4;
  // The base index's tree options are a distinct instantiation (its metric
  // is wrapped for cancellation checks); copy the fields across.
  ovl_options.rebuild.tree.order = options.tree.order;
  ovl_options.rebuild.tree.leaf_capacity = options.tree.leaf_capacity;
  ovl_options.rebuild.tree.num_path_distances = options.tree.num_path_distances;
  auto opened = Overlay::Open(dir, L2(), VectorCodec(), ovl_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "overlay open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  Overlay& overlay = *opened.value();
  const auto extra = dataset::UniformVectors(base_n, 20, 5151);
  for (std::size_t i = 0; i < base_n; ++i) {
    // ValueOrDie aborts on failure; the id itself is not needed here.
    (void)overlay.Insert(data[i % data.size()]).ValueOrDie();
  }
  // ValueOrDie aborts on failure; the generation number is not needed.
  (void)overlay.Compact().ValueOrDie();
  snapshot::SnapshotStore store(dir);
  const auto base_bytes =
      store.ReadManifest(overlay.generation()).ValueOrDie().payload_bytes;

  std::printf("overlay range queries (r=0.3) vs churn on a %zu-object "
              "base:\n", base_n);
  std::size_t churned = 0, next_extra = 0;
  for (const double churn : {0.0, 0.01, 0.10}) {
    const auto target = static_cast<std::size_t>(churn * base_n);
    for (; churned < target; ++churned) {
      // Half the churn deletes base objects, half inserts fresh ones.
      const Status mutated =
          churned % 2 == 0
              ? overlay.Erase(churned)
              : overlay.Insert(extra[next_extra++]).status();
      if (!mutated.ok()) {
        std::fprintf(stderr, "mutation failed: %s\n",
                     mutated.ToString().c_str());
        return 1;
      }
    }
    SearchStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& q : queries) overlay.RangeSearch(q, 0.3, &stats);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::printf("  churn %4.0f%%: %8.1f dists/query, %6.3f ms/query",
                churn * 100,
                static_cast<double>(stats.distance_computations) /
                    static_cast<double>(queries.size()),
                ms / static_cast<double>(queries.size()));
    if (target == 0) {
      std::printf("  (pure base, nothing to checkpoint)\n");
      continue;
    }
    const auto checkpoint_t0 = std::chrono::steady_clock::now();
    const auto gen = overlay.Checkpoint().ValueOrDie();
    const double checkpoint_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - checkpoint_t0)
            .count();
    const auto delta_bytes = store.ReadManifest(gen).ValueOrDie().payload_bytes;
    std::printf("; checkpoint %.1f ms, delta %llu bytes (%5.2f%% of base)\n",
                checkpoint_ms, static_cast<unsigned long long>(delta_bytes),
                100.0 * static_cast<double>(delta_bytes) /
                    static_cast<double>(base_bytes));
  }

  // --- Compaction chunk reuse: a recompaction whose shard payloads are
  // byte-identical to the previous generation's must write ~36-byte refs
  // instead of full shard chunks, so the physical container I/O collapses
  // to the stable-id map plus refs. This is asserted, not just printed:
  // losing the reuse path is a silent I/O regression.
  const auto container_bytes = [&store](std::uint64_t gen) {
    return static_cast<std::uint64_t>(std::filesystem::file_size(
        store.GenerationDir(gen) + "/" +
        snapshot::SnapshotStore::kContainerFile));
  };
  const auto full_gen = overlay.Compact().ValueOrDie();
  const auto full_write = container_bytes(full_gen);
  const auto reused_before = overlay.stats().compaction_reused_chunks;
  const auto reuse_gen = overlay.Compact().ValueOrDie();
  const auto reuse_write = container_bytes(reuse_gen);
  const auto reused = overlay.stats().compaction_reused_chunks - reused_before;
  std::printf("compaction chunk reuse: full rewrite %llu bytes, idempotent "
              "recompaction %llu bytes (%llu shard chunks reused)\n",
              static_cast<unsigned long long>(full_write),
              static_cast<unsigned long long>(reuse_write),
              static_cast<unsigned long long>(reused));
  if (reused == 0 || reuse_write * 2 >= full_write) {
    std::fprintf(stderr,
                 "chunk-reuse regression: recompaction rewrote %llu of %llu "
                 "bytes with %llu chunks reused\n",
                 static_cast<unsigned long long>(reuse_write),
                 static_cast<unsigned long long>(full_write),
                 static_cast<unsigned long long>(reused));
    return 1;
  }

  // --- WAL group-commit throughput: concurrent writers amortize one fsync
  // across many acknowledged inserts.
  std::printf("wal append throughput (%zu-d vectors, fsync before ack):\n",
              static_cast<std::size_t>(20));
  for (const std::size_t writers : {1u, 4u, 8u}) {
    const std::string wal_dir = dir + "/wal_bench_" + std::to_string(writers);
    std::filesystem::create_directories(wal_dir);
    auto bench_overlay =
        Overlay::Open(wal_dir, L2(), VectorCodec(), ovl_options).ValueOrDie();
    const std::size_t per_writer = (QuickMode() ? 400 : 2000) / writers;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        for (std::size_t i = 0; i < per_writer; ++i) {
          const auto id =
              bench_overlay->Insert(extra[(w * per_writer + i) %
                                          extra.size()]);
          MVP_DCHECK(id.ok());
          (void)id;  // checked by MVP_DCHECK; benign to drop in a bench
        }
      });
    }
    for (auto& t : threads) t.join();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    const auto wal = bench_overlay->wal_stats();
    std::printf("  %zu writer(s): %7.0f inserts/s, %5.1f records per fsync "
                "batch\n",
                writers,
                static_cast<double>(wal.records_synced) / secs,
                static_cast<double>(wal.records_synced) /
                    static_cast<double>(wal.sync_batches > 0
                                            ? wal.sync_batches
                                            : 1));
  }
  std::filesystem::remove_all(dir);
  std::cout <<
      "expected: overlay query cost rises gently with churn (tombstone\n"
      "over-fetch + memtable probe) and resets after compaction; the\n"
      "checkpoint delta stays proportional to churn, not to the base; and\n"
      "group commit raises records-per-fsync with writer concurrency.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

// Extension: dynamic updates (the paper's §6 open problem). Measures the
// MvpForest static-to-dynamic transformation: amortized insert cost, query
// overhead relative to a monolithic static mvp-tree, and delete behaviour.

#include <cstdio>
#include <iostream>

#include "bench/figure_common.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "dynamic/mvp_forest.h"
#include "metric/lp.h"

namespace mvp::bench {
namespace {

using metric::L2;
using metric::Vector;
using Forest = dynamic::MvpForest<Vector, L2>;

int Run() {
  const std::size_t n = QuickMode() ? 4000 : 20000;
  harness::PrintFigureHeader(
      std::cout, "Extension: dynamic mvp-forest",
      "insert/delete/query costs of the logarithmic-method mvp-forest",
      std::to_string(n) + " uniform 20-d vectors, L2, buffer 256,"
                          " mvpt(3,80,p=5) levels");

  const auto data = dataset::UniformVectors(n, 20, 4242);
  const auto queries = dataset::UniformQueryVectors(50, 20, 777);

  Forest::Options options;
  options.buffer_capacity = 256;
  options.tree.order = 3;
  options.tree.leaf_capacity = 80;
  options.tree.num_path_distances = 5;

  // --- amortized insert cost as the forest grows.
  Forest forest{L2(), options};
  std::uint64_t prev_cost = 0;
  std::size_t prev_count = 0;
  std::printf("amortized construction distances per insert:\n");
  for (std::size_t i = 0; i < n; ++i) {
    forest.Insert(data[i]);
    if ((i + 1) % (n / 5) == 0) {
      const std::uint64_t cost = forest.construction_distance_computations();
      std::printf("  inserts %6zu..%6zu: %7.1f (trees=%zu)\n", prev_count + 1,
                  i + 1,
                  static_cast<double>(cost - prev_cost) /
                      static_cast<double>(i + 1 - prev_count),
                  forest.num_trees());
      prev_cost = cost;
      prev_count = i + 1;
    }
  }

  // --- query overhead vs a monolithic static tree over the same data.
  auto static_tree =
      core::MvpTree<Vector, L2>::Build(data, L2(), options.tree).ValueOrDie();
  const std::vector<double> radii{0.15, 0.3, 0.5};
  std::printf("avg distance computations per range query:\n");
  std::printf("  %-22s", "r:");
  for (const double r : radii) std::printf("  %8.2f", r);
  std::printf("\n");
  auto report = [&](const char* name, auto&& index) {
    std::printf("  %-22s", name);
    for (const double r : radii) {
      SearchStats stats;
      for (const auto& q : queries) index.RangeSearch(q, r, &stats);
      std::printf("  %8.1f", static_cast<double>(stats.distance_computations) /
                                 static_cast<double>(queries.size()));
    }
    std::printf("\n");
  };
  report("static mvpt(3,80)", static_tree);
  report("forest (log-method)", forest);
  forest.Compact();
  report("forest (compacted)", forest);

  // --- delete behaviour: erase just over half so the tombstone fraction
  // crosses the compaction threshold; queries stay correct and get cheaper
  // once the rebuild drops the dead points.
  for (std::size_t i = 0; i < n; i += 2) {
    const auto st = forest.Erase(i);
    MVP_DCHECK(st.ok());
    (void)st;  // checked by MVP_DCHECK; unused in release builds
  }
  {
    const auto st = forest.Erase(1);
    MVP_DCHECK(st.ok());
    (void)st;  // checked by MVP_DCHECK; unused in release builds
  }
  std::printf("after erasing 50%% (live=%zu, tombstones=%zu, trees=%zu):\n",
              forest.size(), forest.tombstone_count(), forest.num_trees());
  report("forest (half erased)", forest);
  std::cout <<
      "expected: amortized insert cost grows logarithmically; the\n"
      "log-method forest pays a small query multiplier over one static\n"
      "tree (it holds O(log n) trees) which Compact() removes entirely;\n"
      "the balance of every component tree is preserved by construction.\n";
  return 0;
}

}  // namespace
}  // namespace mvp::bench

int main() { return mvp::bench::Run(); }

#ifndef MVPTREE_BENCH_FIGURE_COMMON_H_
#define MVPTREE_BENCH_FIGURE_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness/table.h"
#include "harness/workload.h"

/// \file
/// Shared configuration for the paper-figure benchmarks.
///
/// Every binary reproduces one figure of the paper's §5 at the paper's scale
/// by default. Setting the environment variable MVPT_BENCH_QUICK=1 shrinks
/// the workloads (~10x) for smoke runs; the reported tables then carry a
/// "(quick mode)" marker since absolute values shift at smaller n.

namespace mvp::bench {

inline bool QuickMode() {
  const char* env = std::getenv("MVPT_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

/// §5.1.A scale: "two sets of 50.000 20-dimensional vectors", 100 queries,
/// 4 runs.
struct VectorScale {
  std::size_t count = 50000;
  std::size_t dim = 20;
  std::size_t queries = 100;
  std::size_t runs = 4;

  static VectorScale Get() {
    VectorScale s;
    if (QuickMode()) {
      s.count = 5000;
      s.queries = 20;
      s.runs = 2;
    }
    return s;
  }
};

/// §5.1.B scale: 1151 images, 30 queries per run. The paper's 256x256
/// resolution is reproduced at 64x64 by default (see DESIGN.md §3 — the
/// normalized metrics make tolerance factors resolution-invariant);
/// MVPT_BENCH_FULLRES=1 switches to 256x256.
struct ImageScale {
  std::size_t count = 1151;
  std::size_t subjects = 40;
  std::uint16_t side = 64;
  std::size_t queries = 30;
  std::size_t runs = 4;

  static ImageScale Get() {
    ImageScale s;
    const char* fullres = std::getenv("MVPT_BENCH_FULLRES");
    if (fullres != nullptr && fullres[0] == '1') s.side = 256;
    if (QuickMode()) {
      s.count = 300;
      s.subjects = 12;
      s.side = 32;
      s.queries = 10;
      s.runs = 2;
    }
    return s;
  }
};

/// One structure's measured series across the sweep (one row of a figure).
struct SeriesRow {
  std::string name;
  std::vector<harness::SweepCell> cells;
};

/// Prints the figure as a table: one column per sweep point, one row per
/// structure, exactly the series the paper plots, followed by a
/// percentage-saving row per structure pair the paper discusses.
inline void PrintSweepTable(const std::string& x_label,
                            const std::vector<double>& xs,
                            const std::vector<SeriesRow>& rows) {
  std::vector<std::string> columns{"structure"};
  for (const double x : xs) columns.push_back(harness::FormatDouble(x, 2));
  harness::Table table(columns);
  for (const auto& row : rows) {
    table.AddRow(row.name, harness::DistanceColumn(row.cells), 1);
  }
  std::cout << "avg # distance computations per query, by " << x_label
            << (QuickMode() ? "  (quick mode)" : "") << "\n"
            << table.ToText();
}

/// Prints "A vs B: x% fewer distance computations" per sweep point — the
/// form the paper's §5.2 observations take.
inline void PrintSavings(const SeriesRow& better, const SeriesRow& baseline) {
  std::printf("%s vs %s, %% fewer distance computations:", better.name.c_str(),
              baseline.name.c_str());
  for (std::size_t i = 0; i < better.cells.size(); ++i) {
    const double b = baseline.cells[i].avg_distance_computations;
    const double a = better.cells[i].avg_distance_computations;
    std::printf(" %5.1f%%", b > 0 ? 100.0 * (b - a) / b : 0.0);
  }
  std::printf("\n");
}

/// Prints average result-set sizes (sanity: the query ranges are meaningful).
inline void PrintResultSizes(const std::vector<double>& xs,
                             const SeriesRow& row) {
  std::printf("avg result size (%s):", row.name.c_str());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::printf(" %.2f", row.cells[i].avg_result_size);
  }
  std::printf("\n");
}

}  // namespace mvp::bench

#endif  // MVPTREE_BENCH_FIGURE_COMMON_H_

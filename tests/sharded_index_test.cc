// ShardedMvpIndex correctness: the defining property is exact result
// equality — same ids, same distances, same order — with a single
// unsharded mvp-tree over the same data, for every shard count, with and
// without a thread pool, for both range and k-NN queries.

#include "serve/sharded_index.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "serve/thread_pool.h"

namespace mvp::serve {
namespace {

using metric::L2;
using metric::Vector;
using Sharded = ShardedMvpIndex<Vector, L2>;
using Plain = core::MvpTree<Vector, L2>;

Sharded BuildSharded(const std::vector<Vector>& data, std::size_t shards,
                     ThreadPool* pool = nullptr) {
  Sharded::Options options;
  options.num_shards = shards;
  auto built = Sharded::Build(data, L2(), options, pool);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).ValueOrDie();
}

TEST(ShardedIndexTest, RangeSearchEqualsUnshardedExactly) {
  const auto data = dataset::UniformVectors(3000, 10, 21);
  const auto queries = dataset::UniformQueryVectors(12, 10, 33);
  const auto plain = Plain::Build(data, L2(), {}).ValueOrDie();
  for (const std::size_t shards : {1u, 2u, 3u, 5u, 8u}) {
    const Sharded sharded = BuildSharded(data, shards);
    for (const auto& q : queries) {
      for (const double r : {0.2, 0.5, 0.9}) {
        const auto expected = plain.RangeSearch(q, r);
        const auto got = sharded.RangeSearch(q, r);
        EXPECT_EQ(got, expected) << "shards=" << shards << " r=" << r;
      }
    }
  }
}

TEST(ShardedIndexTest, KnnSearchEqualsUnshardedExactly) {
  const auto data = dataset::UniformVectors(2500, 8, 55);
  const auto queries = dataset::UniformQueryVectors(12, 8, 66);
  const auto plain = Plain::Build(data, L2(), {}).ValueOrDie();
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    const Sharded sharded = BuildSharded(data, shards);
    for (const auto& q : queries) {
      for (const std::size_t k : {1u, 10u, 100u}) {
        const auto expected = plain.KnnSearch(q, k);
        const auto got = sharded.KnnSearch(q, k);
        EXPECT_EQ(got, expected) << "shards=" << shards << " k=" << k;
      }
    }
  }
}

TEST(ShardedIndexTest, ParallelBuildEqualsSerialBuild) {
  const auto data = dataset::UniformVectors(4000, 8, 77);
  const auto queries = dataset::UniformQueryVectors(10, 8, 88);
  ThreadPool pool(4);
  const Sharded serial = BuildSharded(data, 4);
  const Sharded parallel = BuildSharded(data, 4, &pool);

  // Shard builds are deterministic given (partition, options, seed), so a
  // parallel build must produce byte-for-byte the same trees: identical
  // structural stats AND identical per-query work, not just results.
  const TreeStats a = serial.Stats();
  const TreeStats b = parallel.Stats();
  EXPECT_EQ(a.construction_distance_computations,
            b.construction_distance_computations);
  EXPECT_EQ(a.num_internal_nodes, b.num_internal_nodes);
  EXPECT_EQ(a.num_leaf_nodes, b.num_leaf_nodes);
  EXPECT_EQ(a.num_vantage_points, b.num_vantage_points);
  EXPECT_EQ(a.height, b.height);
  for (const auto& q : queries) {
    SearchStats sa, sb;
    EXPECT_EQ(serial.RangeSearch(q, 0.5, &sa), parallel.RangeSearch(q, 0.5, &sb));
    EXPECT_EQ(sa.distance_computations, sb.distance_computations);
    EXPECT_EQ(sa.nodes_visited, sb.nodes_visited);
  }
}

TEST(ShardedIndexTest, ParallelSearchEqualsSerialSearch) {
  const auto data = dataset::UniformVectors(3000, 8, 99);
  const auto queries = dataset::UniformQueryVectors(10, 8, 111);
  ThreadPool pool(4);
  const Sharded sharded = BuildSharded(data, 4, &pool);
  for (const auto& q : queries) {
    SearchStats serial_stats, parallel_stats;
    const auto serial = sharded.RangeSearch(q, 0.5, &serial_stats);
    const auto parallel = sharded.RangeSearch(q, 0.5, &parallel_stats, &pool);
    EXPECT_EQ(parallel, serial);
    EXPECT_EQ(parallel_stats.distance_computations,
              serial_stats.distance_computations);
    EXPECT_EQ(sharded.KnnSearch(q, 20, nullptr, &pool),
              sharded.KnnSearch(q, 20));
  }
}

TEST(ShardedIndexTest, GlobalIdsSurviveSharding) {
  // Ids in results must be positions in the ORIGINAL input vector.
  const auto data = dataset::UniformVectors(500, 6, 13);
  const Sharded sharded = BuildSharded(data, 3);
  const auto hits = sharded.KnnSearch(data[123], 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 123u);
  EXPECT_EQ(hits[0].distance, 0.0);
}

TEST(ShardedIndexTest, EmptyDatasetIsValid) {
  const Sharded sharded = BuildSharded({}, 4);
  EXPECT_EQ(sharded.size(), 0u);
  EXPECT_TRUE(sharded.RangeSearch(Vector{0.5, 0.5}, 10.0).empty());
  EXPECT_TRUE(sharded.KnnSearch(Vector{0.5, 0.5}, 3).empty());
}

TEST(ShardedIndexTest, MoreShardsThanPoints) {
  const auto data = dataset::UniformVectors(5, 4, 3);
  const Sharded sharded = BuildSharded(data, 8);
  const auto plain = Plain::Build(data, L2(), {}).ValueOrDie();
  const Vector q(4, 0.5);
  EXPECT_EQ(sharded.KnnSearch(q, 5), plain.KnnSearch(q, 5));
  EXPECT_EQ(sharded.RangeSearch(q, 2.0), plain.RangeSearch(q, 2.0));
}

TEST(ShardedIndexTest, AdaptiveShardCountScalesWithDataAndCores) {
  // Small datasets never over-shard: below one shard's worth of objects
  // the answer is a single tree, regardless of core count.
  EXPECT_EQ(Sharded::AdaptiveShardCount(0, 16), 1u);
  EXPECT_EQ(Sharded::AdaptiveShardCount(Sharded::kMinObjectsPerShard - 1, 16),
            1u);
  // The data-size bound: ~one shard per kMinObjectsPerShard objects until
  // the core count caps it.
  EXPECT_EQ(Sharded::AdaptiveShardCount(2 * Sharded::kMinObjectsPerShard, 16),
            2u);
  // The core bound: plenty of data uses every core...
  EXPECT_EQ(Sharded::AdaptiveShardCount(1'000'000, 8), 8u);
  // ...up to the global clamp.
  EXPECT_EQ(Sharded::AdaptiveShardCount(100'000'000, 1024),
            Sharded::kMaxAdaptiveShards);
  // hardware_concurrency may report 0; that is one core, not zero shards.
  EXPECT_EQ(Sharded::AdaptiveShardCount(1'000'000, 0), 1u);
}

TEST(ShardedIndexTest, DefaultOptionsResolveAdaptively) {
  // num_shards = 0 (the default) resolves from dataset size and cores at
  // Build time, and the resolved count is recorded in options()/
  // build_params() so snapshots round-trip the real value.
  const auto data = dataset::UniformVectors(100, 4, 3);
  const auto built = Sharded::Build(data, L2(), Sharded::Options{});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().num_shards(), 1u);  // 100 objects: one shard
  EXPECT_EQ(built.value().options().num_shards, 1u);
  EXPECT_EQ(built.value().build_params().num_shards, 1u);

  // Results are still bit-identical to the unsharded tree.
  const auto plain = Plain::Build(data, L2(), {}).ValueOrDie();
  const Vector q(4, 0.5);
  EXPECT_EQ(built.value().KnnSearch(q, 7), plain.KnnSearch(q, 7));
}

TEST(ShardedIndexTest, SearchStatsAccumulateAcrossShards) {
  const auto data = dataset::UniformVectors(2000, 8, 31);
  const Sharded sharded = BuildSharded(data, 4);
  SearchStats stats;
  (void)sharded.RangeSearch(Vector(8, 0.5), 0.5, &stats);
  EXPECT_GT(stats.distance_computations, 0u);
  EXPECT_GT(stats.nodes_visited, 0u);
  // Four shards were all consulted: at least one node per shard.
  EXPECT_GE(stats.nodes_visited, 4u);
}

TEST(ShardedIndexTest, BuildParamsFlattenOptions) {
  Sharded::Options options;
  options.num_shards = 5;
  options.tree.order = 4;
  options.tree.leaf_capacity = 11;
  options.tree.num_path_distances = 6;
  options.tree.seed = 99;
  options.tree.store_exact_bounds = true;
  const auto built =
      Sharded::Build(dataset::UniformVectors(50, 4, 7), L2(), options);
  ASSERT_TRUE(built.ok());
  const Sharded::BuildParams params = built.value().build_params();
  EXPECT_EQ(params.num_shards, 5u);
  EXPECT_EQ(params.order, 4);
  EXPECT_EQ(params.leaf_capacity, 11);
  EXPECT_EQ(params.num_path_distances, 6);
  EXPECT_EQ(params.seed, 99u);
  EXPECT_TRUE(params.store_exact_bounds);
  EXPECT_EQ(params, built.value().build_params());  // == is usable
}

TEST(ShardedIndexTest, ShardGlobalIdsAreRoundRobin) {
  const Sharded sharded = BuildSharded(dataset::UniformVectors(23, 4, 5), 4);
  std::size_t total = 0;
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    for (const std::size_t id : sharded.shard_global_ids(s)) {
      EXPECT_EQ(id % sharded.num_shards(), s);
      ++total;
    }
  }
  EXPECT_EQ(total, sharded.size());
}

TEST(ShardedIndexTest, RestoreRebuildsIdenticalIndex) {
  const auto data = dataset::UniformVectors(120, 4, 13);
  const Sharded original = BuildSharded(data, 3);

  // Tear the index down to (tree, id-map) parts the way the snapshot layer
  // does, rebuilding each tree from its serialized bytes.
  std::vector<std::pair<Sharded::Tree, std::vector<std::size_t>>> parts;
  for (std::size_t s = 0; s < original.num_shards(); ++s) {
    BinaryWriter w;
    ASSERT_TRUE(original.shard(s).Serialize(&w, VectorCodec()).ok());
    BinaryReader r(w.buffer());
    auto tree = Sharded::Tree::Deserialize(&r, CancelChecked<L2>(L2()),
                                           VectorCodec());
    ASSERT_TRUE(tree.ok());
    parts.emplace_back(std::move(tree).ValueOrDie(),
                       original.shard_global_ids(s));
  }
  auto restored = Sharded::Restore(original.options(), std::move(parts));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().size(), original.size());

  const Vector q(4, 0.5);
  EXPECT_EQ(restored.value().RangeSearch(q, 1.0), original.RangeSearch(q, 1.0));
  EXPECT_EQ(restored.value().KnnSearch(q, 7), original.KnnSearch(q, 7));
}

TEST(ShardedIndexTest, RestoreRejectsBrokenPartition) {
  const auto data = dataset::UniformVectors(30, 4, 17);
  const Sharded original = BuildSharded(data, 2);

  auto parts_of = [&](bool swap_maps) {
    std::vector<std::pair<Sharded::Tree, std::vector<std::size_t>>> parts;
    for (std::size_t s = 0; s < 2; ++s) {
      BinaryWriter w;
      EXPECT_TRUE(original.shard(s).Serialize(&w, VectorCodec()).ok());
      BinaryReader r(w.buffer());
      auto tree = Sharded::Tree::Deserialize(&r, CancelChecked<L2>(L2()),
                                             VectorCodec());
      EXPECT_TRUE(tree.ok());
      parts.emplace_back(std::move(tree).ValueOrDie(),
                         original.shard_global_ids(swap_maps ? 1 - s : s));
    }
    return parts;
  };

  // Id maps swapped between shards: ids land in the wrong residue class.
  auto swapped = Sharded::Restore(original.options(), parts_of(true));
  EXPECT_EQ(swapped.status().code(), StatusCode::kCorruption);

  // Wrong shard count.
  auto wrong_count = Sharded::Restore(original.options(), {});
  EXPECT_EQ(wrong_count.status().code(), StatusCode::kCorruption);

  // Id map shorter than its tree.
  auto parts = parts_of(false);
  parts[0].second.pop_back();
  auto mismatched = Sharded::Restore(original.options(), std::move(parts));
  EXPECT_EQ(mismatched.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace mvp::serve

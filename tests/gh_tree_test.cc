#include "baselines/gh_tree.h"

#include <gtest/gtest.h>

#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/counting.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::baselines {
namespace {

using metric::L2;
using metric::Vector;
using VecGh = GhTree<Vector, L2>;

TEST(GhTreeTest, RejectsBadOptions) {
  VecGh::Options options;
  options.leaf_capacity = 0;
  EXPECT_FALSE(VecGh::Build({}, L2(), options).ok());
}

TEST(GhTreeTest, EmptyAndTiny) {
  auto empty = VecGh::Build({}, L2(), {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().RangeSearch({0, 0}, 5.0).empty());
  auto two = VecGh::Build({{0, 0}, {1, 1}}, L2(), {});
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two.value().RangeSearch({0, 0}, 5.0).size(), 2u);
}

struct GhParam {
  int leaf_capacity;
  bool far_apart;
  std::size_t n;
  std::size_t dim;
};

class GhTreeSweepTest : public ::testing::TestWithParam<GhParam> {};

TEST_P(GhTreeSweepTest, RangeSearchMatchesLinearScan) {
  const auto p = GetParam();
  const auto data = dataset::UniformVectors(p.n, p.dim, 11);
  VecGh::Options options;
  options.leaf_capacity = p.leaf_capacity;
  options.far_apart_pivots = p.far_apart;
  auto built = VecGh::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(8, p.dim, 13);
  for (const auto& q : queries) {
    for (const double r : {0.0, 0.25, 0.7, 1.5}) {
      const auto got = built.value().RangeSearch(q, r);
      const auto expected = reference.RangeSearch(q, r);
      ASSERT_EQ(got.size(), expected.size()) << "r=" << r;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GhTreeSweepTest,
                         ::testing::Values(GhParam{4, true, 400, 6},
                                           GhParam{1, true, 300, 4},
                                           GhParam{4, false, 400, 6},
                                           GhParam{10, true, 500, 10},
                                           GhParam{4, true, 20, 3}));

TEST_P(GhTreeSweepTest, KnnMatchesLinearScan) {
  const auto p = GetParam();
  const auto data = dataset::UniformVectors(p.n, p.dim, 21);
  VecGh::Options options;
  options.leaf_capacity = p.leaf_capacity;
  options.far_apart_pivots = p.far_apart;
  auto built = VecGh::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(6, p.dim, 23);
  for (const auto& q : queries) {
    for (const std::size_t k : {1u, 4u, 15u}) {
      const auto got = built.value().KnnSearch(q, k);
      const auto expected = reference.KnnSearch(q, k);
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(GhTreeTest, DuplicatesDoNotInfinitelyRecurse) {
  std::vector<Vector> data(500, Vector{3, 3});
  auto built = VecGh::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RangeSearch({3, 3}, 0.0).size(), 500u);
  EXPECT_LE(built.value().Stats().height, 66u);
}

TEST(GhTreeTest, AllPointsAccounted) {
  const auto data = dataset::UniformVectors(333, 5, 17);
  auto built = VecGh::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RangeSearch(Vector(5, 0.5), 1e9).size(), 333u);
  const auto stats = built.value().Stats();
  EXPECT_EQ(stats.num_vantage_points + stats.num_leaf_points, 333u);
}

TEST(GhTreeTest, SearchStatsMatchCountingMetric) {
  const auto data = dataset::UniformVectors(300, 6, 19);
  metric::DistanceCounter counter;
  auto counted = metric::MakeCounting(L2(), counter);
  auto built =
      GhTree<Vector, metric::CountingMetric<L2>>::Build(data, counted, {});
  ASSERT_TRUE(built.ok());
  counter.Reset();
  SearchStats stats;
  built.value().RangeSearch(data[7], 0.5, &stats);
  EXPECT_EQ(stats.distance_computations, counter.count());
}

TEST(GhTreeTest, WorksWithEditDistance) {
  auto words = dataset::SyntheticWords(250, 29);
  using WordGh = GhTree<std::string, metric::Levenshtein>;
  auto built = WordGh::Build(words, metric::Levenshtein(), {});
  ASSERT_TRUE(built.ok());
  scan::LinearScan<std::string, metric::Levenshtein> reference(
      words, metric::Levenshtein());
  const std::string q = dataset::MutateWord(words[31], 2, 7);
  for (const double r : {1.0, 2.0, 4.0}) {
    EXPECT_EQ(built.value().RangeSearch(q, r).size(),
              reference.RangeSearch(q, r).size());
  }
}

}  // namespace
}  // namespace mvp::baselines

// The acceptance test for crash safety of the dynamic overlay: every
// injected failure point across the WAL append/sync path, the checkpoint
// commit (container, MANIFEST, CURRENT — error and simulated-crash
// variants, with short writes), the WAL truncation that follows it, and
// the compaction commit is enumerated; after EVERY one the overlay must
// reopen and converge — each acknowledged mutation is present, the one
// in-flight mutation is atomically present-or-absent, and queries are
// bit-identical to an index rebuilt from scratch over the recovered live
// set.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/query.h"
#include "common/status.h"
#include "dataset/vector_gen.h"
#include "dynamic/dynamic_overlay.h"
#include "fault/failpoint.h"
#include "fault/fault_fs.h"
#include "metric/lp.h"
#include "serve/sharded_index.h"
#include "snapshot/snapshot_store.h"
#include "wal/wal.h"

namespace mvp::dynamic {
namespace {

using metric::L2;
using metric::Vector;
using Overlay = DynamicOverlay<Vector, L2, VectorCodec>;
using Oracle = serve::ShardedMvpIndex<Vector, L2>;

/// One injected failure: a failpoint (syscall-level, restricted by path
/// substring, or logic-level) failing either with an error return or a
/// simulated process death at that exact point.
struct Scenario {
  std::string failpoint;
  std::string match;         // path substring for fs seam sites; "" = any
  bool crash = false;        // error return vs CrashError unwind
  std::int64_t short_write = -1;  // >= 0: partial progress before failing

  std::string Name() const {
    std::string name = failpoint;
    if (!match.empty()) name += ":" + match;
    if (short_write >= 0) name += ":short";
    name += crash ? ":crash" : ":error";
    return name;
  }

  fault::FailpointConfig Config() const {
    fault::FailpointConfig config;
    config.match = match;
    config.crash = crash;
    config.short_write = short_write;
    return config;
  }
};

/// Failure points on the path of a single logged mutation: the logic-level
/// append/sync sites plus the syscalls Sync's group commit drives against
/// the log file.
std::vector<Scenario> MutationScenarios() {
  return {
      {"wal/append", ""},
      {"wal/sync", ""},
      {"fs/write", wal::kWalFileName},
      {"fs/write", wal::kWalFileName, /*crash=*/false, /*short_write=*/9},
      {"fs/write", wal::kWalFileName, /*crash=*/true},
      {"fs/write", wal::kWalFileName, /*crash=*/true, /*short_write=*/9},
      {"fs/fsync", wal::kWalFileName},
      {"fs/fsync", wal::kWalFileName, /*crash=*/true},
  };
}

/// Failure points on the checkpoint/compaction commit: every syscall
/// WriteFileAtomic drives for each committed file, error and crash, plus
/// the post-commit WAL truncation sites.
std::vector<Scenario> CommitScenarios(bool include_truncate) {
  const char* kFiles[] = {snapshot::SnapshotStore::kContainerFile,
                          snapshot::SnapshotStore::kManifestFile,
                          snapshot::SnapshotStore::kCurrentFile};
  std::vector<Scenario> scenarios;
  for (const char* file : kFiles) {
    for (const bool crash : {false, true}) {
      scenarios.push_back({"fs/open", file, crash});
      scenarios.push_back({"fs/write", file, crash});
      scenarios.push_back({"fs/write", file, crash, /*short_write=*/7});
      scenarios.push_back({"fs/fsync", file, crash});
      scenarios.push_back({"fs/close", file, crash});
      scenarios.push_back({"fs/rename", file, crash});
    }
  }
  if (include_truncate) {
    // These fire AFTER the generation committed: the WAL keeps already-
    // folded records, and replay must skip them by sequence number.
    scenarios.push_back({"wal/truncate", ""});
    scenarios.push_back({"fs/ftruncate", wal::kWalFileName});
    scenarios.push_back({"fs/ftruncate", wal::kWalFileName, /*crash=*/true});
  }
  return scenarios;
}

class DynamicRecoveryTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kDim = 4;

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/dynrec_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    pool_ = dataset::UniformVectors(4000, kDim, 77);
  }
  void TearDown() override {
    fault::Failpoints::Instance().DisarmAll();
    overlay_.reset();
    std::filesystem::remove_all(dir_);
  }

  static Overlay::Options SmallOptions() {
    Overlay::Options options;
    options.memtable.buffer_capacity = 16;
    options.memtable.tree.leaf_capacity = 8;
    options.rebuild.num_shards = 2;
    options.rebuild.tree.leaf_capacity = 8;
    return options;
  }

  void Open() {
    auto opened = Overlay::Open(dir_, L2(), VectorCodec(), SmallOptions());
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    overlay_ = std::move(opened).ValueOrDie();
  }

  Vector NextVec() { return pool_.at(next_vec_++); }

  /// Mutations with nothing armed: must succeed and enter the model.
  void AckedInserts(int n) {
    for (int i = 0; i < n; ++i) {
      Vector v = NextVec();
      auto id = overlay_->Insert(v);
      ASSERT_TRUE(id.ok()) << id.status().message();
      model_[id.value()] = std::move(v);
    }
  }
  void AckedErase() {
    ASSERT_FALSE(model_.empty());
    const auto it = model_.begin();
    ASSERT_TRUE(overlay_->Erase(it->first).ok());
    model_.erase(it);
  }

  /// After recovery, the interrupted mutation must be atomic: either fully
  /// applied (WAL frame made it to disk intact) or fully absent. Probe with
  /// an exact-match query and fold the outcome into the model.
  void ReconcileInsert(const Vector& v, std::uint64_t expected_id) {
    const auto hits = overlay_->RangeSearch(v, 0.0);
    ASSERT_LE(hits.size(), 1u);
    if (!hits.empty()) {
      EXPECT_EQ(hits[0].id, expected_id);
      model_[expected_id] = v;
    }
  }
  void ReconcileErase(std::uint64_t id, const Vector& v) {
    const auto hits = overlay_->RangeSearch(v, 0.0);
    ASSERT_LE(hits.size(), 1u);
    if (hits.empty()) {
      model_.erase(id);
    } else {
      EXPECT_EQ(hits[0].id, id);
    }
  }

  /// Queries over the recovered overlay vs a from-scratch rebuild over the
  /// model's live set — ids translated, distances compared exactly.
  void ExpectConverged(const std::string& what) {
    ASSERT_EQ(overlay_->size(), model_.size()) << what;
    std::vector<std::uint64_t> stable;
    std::vector<Vector> objects;
    for (const auto& [id, object] : model_) {
      stable.push_back(id);
      objects.push_back(object);
    }
    auto built = Oracle::Build(std::move(objects), L2(), SmallOptions().rebuild);
    ASSERT_TRUE(built.ok()) << what;
    const Oracle& oracle = built.value();
    const auto queries = dataset::UniformQueryVectors(4, kDim, 31);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      for (const double radius : {0.3, 0.6}) {
        const auto got = overlay_->RangeSearch(queries[q], radius);
        auto want = oracle.RangeSearch(queries[q], radius);
        for (Neighbor& n : want) n.id = static_cast<std::size_t>(stable[n.id]);
        ASSERT_EQ(got.size(), want.size()) << what << " range q" << q;
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].id, want[i].id) << what << " range q" << q;
          EXPECT_EQ(got[i].distance, want[i].distance) << what;
        }
      }
      const auto got = overlay_->KnnSearch(queries[q], 5);
      auto want = oracle.KnnSearch(queries[q], 5);
      for (Neighbor& n : want) n.id = static_cast<std::size_t>(stable[n.id]);
      ASSERT_EQ(got.size(), want.size()) << what << " knn q" << q;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id) << what << " knn q" << q;
        EXPECT_EQ(got[i].distance, want[i].distance) << what;
      }
    }
  }

  std::string dir_;
  std::unique_ptr<Overlay> overlay_;
  std::map<std::uint64_t, Vector> model_;
  std::vector<Vector> pool_;
  std::size_t next_vec_ = 0;
};

TEST_F(DynamicRecoveryTest, EveryMutationFailurePointConvergesOnReplay) {
  Open();
  AckedInserts(40);

  for (const Scenario& s : MutationScenarios()) {
    for (const bool erase_op : {false, true}) {
      SCOPED_TRACE(s.Name() + (erase_op ? "/erase" : "/insert"));
      AckedInserts(3);  // fresh acked state between scenarios

      const std::uint64_t expected_id = overlay_->next_stable_id();
      const Vector inserted = NextVec();
      const std::uint64_t erase_id = model_.begin()->first;
      const Vector erase_vec = model_.begin()->second;

      fault::Failpoints::Instance().Arm(s.failpoint, s.Config());
      bool failed = false;
      try {
        failed = erase_op ? !overlay_->Erase(erase_id).ok()
                          : !overlay_->Insert(inserted).ok();
      } catch (const fault::CrashError&) {
        failed = true;
      }
      fault::Failpoints::Instance().DisarmAll();
      EXPECT_TRUE(failed) << "the armed failpoint did not interrupt the op";

      // "Restart": recovery replays the log against the last committed
      // generation and repairs any torn tail.
      overlay_.reset();
      Open();
      if (erase_op) {
        ReconcileErase(erase_id, erase_vec);
      } else {
        ReconcileInsert(inserted, expected_id);
      }
      ExpectConverged(s.Name());
    }
  }
}

TEST_F(DynamicRecoveryTest, EveryCheckpointFailurePointConvergesOnReplay) {
  Open();
  AckedInserts(120);
  ASSERT_TRUE(overlay_->Compact().ok());  // a real base generation to layer on

  for (const Scenario& s : CommitScenarios(/*include_truncate=*/true)) {
    SCOPED_TRACE(s.Name());
    AckedInserts(4);
    AckedErase();

    fault::Failpoints::Instance().Arm(s.failpoint, s.Config());
    bool failed = false;
    try {
      failed = !overlay_->Checkpoint().ok();
    } catch (const fault::CrashError&) {
      failed = true;
    }
    fault::Failpoints::Instance().DisarmAll();
    EXPECT_TRUE(failed) << "the armed failpoint did not interrupt the op";

    // Whether the delta committed or not, the union of (last committed
    // generation, surviving WAL) is exactly the acked state.
    overlay_.reset();
    Open();
    ExpectConverged(s.Name());
  }

  // With nothing armed the same checkpoint commits and serves.
  ASSERT_TRUE(overlay_->Checkpoint().ok());
  overlay_.reset();
  Open();
  ExpectConverged("clean checkpoint");
}

TEST_F(DynamicRecoveryTest, EveryCompactionFailurePointConvergesOnReplay) {
  Open();
  AckedInserts(90);
  ASSERT_TRUE(overlay_->Compact().ok());

  for (const Scenario& s : CommitScenarios(/*include_truncate=*/true)) {
    SCOPED_TRACE(s.Name());
    AckedInserts(3);
    AckedErase();

    fault::Failpoints::Instance().Arm(s.failpoint, s.Config());
    bool failed = false;
    try {
      failed = !overlay_->Compact().ok();
    } catch (const fault::CrashError&) {
      failed = true;
    }
    fault::Failpoints::Instance().DisarmAll();
    EXPECT_TRUE(failed) << "the armed failpoint did not interrupt the op";

    overlay_.reset();
    Open();
    ExpectConverged(s.Name());
  }

  ASSERT_TRUE(overlay_->Compact().ok());
  ExpectConverged("clean compaction");
}

TEST_F(DynamicRecoveryTest, TornTrailingGarbageIsRepairedOnRecovery) {
  Open();
  AckedInserts(25);
  const std::string wal_path = overlay_->wal_path();
  overlay_.reset();

  // Simulate a torn final append: a frame header promising more bytes than
  // the crash left behind.
  const auto before = std::filesystem::file_size(wal_path);
  {
    std::ofstream out(wal_path, std::ios::binary | std::ios::app);
    const char garbage[] = "\xff\xff\xff\x7f torn frame";
    out.write(garbage, sizeof(garbage));
  }
  ASSERT_GT(std::filesystem::file_size(wal_path), before);

  Open();
  ExpectConverged("torn tail");
  // Recovery truncated the garbage so the next append extends a clean log.
  EXPECT_EQ(std::filesystem::file_size(wal_path), before);
  AckedInserts(5);
  overlay_.reset();
  Open();
  ExpectConverged("appended after repair");
}

}  // namespace
}  // namespace mvp::dynamic

// Negative fixture for the thread-safety-annotation compile test.
//
// Touches an MVP_GUARDED_BY field without holding its mutex. Under Clang
// with -Werror=thread-safety this file MUST fail to compile; the ctest
// entry that builds it is registered with WILL_FAIL TRUE, so a toolchain
// or annotation regression that lets this compile turns the test red.
// (Under GCC the annotations are no-ops and the file compiles, which is
// why the test is only registered for Clang + MVPTREE_THREAD_SAFETY_ANALYSIS.)

#include <cstddef>

#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(std::size_t n) MVP_EXCLUDES(mu_) {
    total_ += n;  // BUG: guarded field written without holding mu_.
  }

 private:
  mvp::Mutex mu_;
  std::size_t total_ MVP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return 0;
}

// Positive fixture for the thread-safety-annotation compile test.
//
// Exercises every annotation shape the repo uses — MVP_GUARDED_BY fields
// accessed under MutexLock, MVP_REQUIRES helper functions, MVP_EXCLUDES
// entry points, CondVar::Wait re-checking a guarded predicate, and
// SharedMutex reader/writer scopes. This file must compile cleanly with
// `-Wthread-safety -Werror=thread-safety` under Clang (and trivially under
// GCC, where the macros are no-ops). Its sibling bad_locking.cc is the
// negative: identical structure minus the locks, and must NOT compile
// under Clang TSA.

#include <cstddef>

#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Add(std::size_t n) MVP_EXCLUDES(mu_) {
    mvp::MutexLock lock(&mu_);
    total_ += n;
    cv_.NotifyAll();
  }

  void WaitForAtLeast(std::size_t n) MVP_EXCLUDES(mu_) {
    mvp::MutexLock lock(&mu_);
    while (total_ < n) {
      cv_.Wait(mu_);
    }
  }

  std::size_t Snapshot() MVP_EXCLUDES(mu_) {
    mvp::MutexLock lock(&mu_);
    return TotalLocked();
  }

 private:
  std::size_t TotalLocked() const MVP_REQUIRES(mu_) { return total_; }

  mutable mvp::Mutex mu_;
  mvp::CondVar cv_;
  std::size_t total_ MVP_GUARDED_BY(mu_) = 0;
};

class Registry {
 public:
  void Set(int v) MVP_EXCLUDES(smu_) {
    mvp::WriterMutexLock lock(&smu_);
    value_ = v;
  }

  int Get() const MVP_EXCLUDES(smu_) {
    mvp::ReaderMutexLock lock(&smu_);
    return value_;
  }

 private:
  mutable mvp::SharedMutex smu_;
  int value_ MVP_GUARDED_BY(smu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(3);
  c.WaitForAtLeast(1);
  Registry r;
  r.Set(42);
  return c.Snapshot() == 3 && r.Get() == 42 ? 0 : 1;
}

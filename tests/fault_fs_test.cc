// The fault::fs syscall seam, exercised through WriteFileAtomic and
// MmapFile: injected open/write/fsync/close/rename failures surface as
// IOError with the temp file cleaned up, ENOSPC-style error codes pass
// through, benign short writes are absorbed by the retry loop, short-
// write-then-fail leaves partial progress behind, and CrashError unwinds
// from the exact syscall it was armed on.

#include "fault/fault_fs.h"

#include <fcntl.h>
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "fault/failpoint.h"
#include "snapshot/mmap_file.h"

namespace mvp::fault {
namespace {

class FaultFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/faultfs_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    Failpoints::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  static std::vector<std::uint8_t> Payload(std::size_t n) {
    std::vector<std::uint8_t> bytes(n);
    for (std::size_t i = 0; i < n; ++i) {
      bytes[i] = static_cast<std::uint8_t>(i * 131 + 7);
    }
    return bytes;
  }

  std::string dir_;
};

TEST_F(FaultFsTest, NoInjectionWritesNormally) {
  const auto payload = Payload(1000);
  ASSERT_TRUE(WriteFileAtomic(Path("f"), payload).ok());
  auto read = ReadFile(Path("f"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), payload);
}

TEST_F(FaultFsTest, InjectedOpenFailureReturnsIOError) {
  ScopedFailpoint fp("fs/open", {});
  const Status status = WriteFileAtomic(Path("f"), Payload(100));
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_FALSE(std::filesystem::exists(Path("f")));
  EXPECT_FALSE(std::filesystem::exists(Path("f.tmp")));
}

TEST_F(FaultFsTest, InjectedWriteFailureCleansUpTempFile) {
  ScopedFailpoint fp("fs/write", {});
  const Status status = WriteFileAtomic(Path("f"), Payload(100));
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("write failed"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(Path("f")));
  EXPECT_FALSE(std::filesystem::exists(Path("f.tmp")));
}

TEST_F(FaultFsTest, EnospcErrorCodePassesThroughTheSeam) {
  FailpointConfig config;
  config.error_code = ENOSPC;
  Failpoints::Instance().Arm("fs/write", config);

  // Probe the seam directly so errno is observed right at the failing call.
  const std::string path = Path("raw");
  const int fd = fault::fs::Open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  errno = 0;
  const char byte = 'x';
  EXPECT_EQ(fault::fs::Write(fd, &byte, 1, path.c_str()), -1);
  EXPECT_EQ(errno, ENOSPC);
  Failpoints::Instance().DisarmAll();
  EXPECT_EQ(fault::fs::Close(fd, path.c_str()), 0);

  // And end to end: the injected ENOSPC makes WriteFileAtomic fail cleanly.
  Failpoints::Instance().Arm("fs/write", config);
  EXPECT_EQ(WriteFileAtomic(Path("f"), Payload(100)).code(),
            StatusCode::kIOError);
}

TEST_F(FaultFsTest, InjectedFsyncFailureCleansUpTempFile) {
  ScopedFailpoint fp("fs/fsync", {});
  const Status status = WriteFileAtomic(Path("f"), Payload(100));
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("fsync"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(Path("f")));
  EXPECT_FALSE(std::filesystem::exists(Path("f.tmp")));
}

TEST_F(FaultFsTest, InjectedRenameFailureLeavesNoDestination) {
  ScopedFailpoint fp("fs/rename", {});
  const Status status = WriteFileAtomic(Path("f"), Payload(100));
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("rename"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(Path("f")));
  EXPECT_FALSE(std::filesystem::exists(Path("f.tmp")));
}

TEST_F(FaultFsTest, BenignShortWriteIsAbsorbedByTheRetryLoop) {
  // One short write of 7 bytes; every later ::write is real, so the
  // caller's retry loop finishes the file and the result is byte-perfect.
  FailpointConfig config;
  config.short_write = 7;
  config.max_fires = 1;
  Failpoints::Instance().Arm("fs/write", config);

  const auto payload = Payload(1000);
  ASSERT_TRUE(WriteFileAtomic(Path("f"), payload).ok());
  auto read = ReadFile(Path("f"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), payload);
  EXPECT_EQ(Failpoints::Instance().fires("fs/write"), 1u);
}

TEST_F(FaultFsTest, ShortWriteThenHardFailureLeavesPartialTempOnly) {
  // Unlimited fires: the first makes 7 bytes of real progress, the second
  // fails the retry — the loop cannot quietly complete 7 bytes at a time.
  FailpointConfig config;
  config.short_write = 7;
  Failpoints::Instance().Arm("fs/write", config);

  const Status status = WriteFileAtomic(Path("f"), Payload(1000));
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(Failpoints::Instance().fires("fs/write"), 2u);
  EXPECT_FALSE(std::filesystem::exists(Path("f")));
  EXPECT_FALSE(std::filesystem::exists(Path("f.tmp")));  // cleaned up
}

TEST_F(FaultFsTest, MatchTargetsOneFileAmongMany) {
  FailpointConfig config;
  config.match = "victim";
  Failpoints::Instance().Arm("fs/fsync", config);

  EXPECT_TRUE(WriteFileAtomic(Path("innocent"), Payload(64)).ok());
  EXPECT_EQ(WriteFileAtomic(Path("victim"), Payload(64)).code(),
            StatusCode::kIOError);
  EXPECT_TRUE(WriteFileAtomic(Path("bystander"), Payload(64)).ok());
}

TEST_F(FaultFsTest, CrashAtWriteUnwindsAsCrashError) {
  FailpointConfig config;
  config.crash = true;
  Failpoints::Instance().Arm("fs/write", config);
  EXPECT_THROW(
      { (void)WriteFileAtomic(Path("f"), Payload(100)); }, CrashError);
  // The simulated process died mid-write: the temp file (whatever made it
  // to disk) is still there, the destination never appeared.
  EXPECT_FALSE(std::filesystem::exists(Path("f")));
}

TEST_F(FaultFsTest, CrashAfterShortWritePersistsThePartialBytes) {
  FailpointConfig config;
  config.crash = true;
  config.short_write = 7;
  Failpoints::Instance().Arm("fs/write", config);
  EXPECT_THROW(
      { (void)WriteFileAtomic(Path("f"), Payload(100)); }, CrashError);
  Failpoints::Instance().DisarmAll();

  ASSERT_TRUE(std::filesystem::exists(Path("f.tmp")));
  auto read = ReadFile(Path("f.tmp"));
  ASSERT_TRUE(read.ok());
  const auto expected = Payload(100);
  ASSERT_EQ(read.value().size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(read.value()[i], expected[i]);
  EXPECT_FALSE(std::filesystem::exists(Path("f")));
}

TEST_F(FaultFsTest, CrashAtRenameLeavesOnlyTheTempFile) {
  FailpointConfig config;
  config.crash = true;
  Failpoints::Instance().Arm("fs/rename", config);
  EXPECT_THROW(
      { (void)WriteFileAtomic(Path("f"), Payload(100)); }, CrashError);
  Failpoints::Instance().DisarmAll();

  // Everything up to the rename really ran: full temp file, no destination.
  EXPECT_TRUE(std::filesystem::exists(Path("f.tmp")));
  EXPECT_FALSE(std::filesystem::exists(Path("f")));
  auto read = ReadFile(Path("f.tmp"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), Payload(100));
}

TEST_F(FaultFsTest, InjectedMmapFailureSurfacesThroughMmapFile) {
  const auto payload = Payload(512);
  ASSERT_TRUE(WriteFileAtomic(Path("f"), payload).ok());

  ScopedFailpoint fp("fs/mmap", {});
  auto mapped = snapshot::MmapFile::Open(Path("f"));
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIOError);
}

TEST_F(FaultFsTest, InjectedOpenFailureSurfacesThroughMmapFile) {
  ASSERT_TRUE(WriteFileAtomic(Path("f"), Payload(512)).ok());
  ScopedFailpoint fp("fs/open", {});
  auto mapped = snapshot::MmapFile::Open(Path("f"));
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace mvp::fault

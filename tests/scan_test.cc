#include "scan/linear_scan.h"

#include <gtest/gtest.h>

#include "dataset/vector_gen.h"
#include "metric/counting.h"
#include "metric/lp.h"

namespace mvp::scan {
namespace {

using metric::L2;
using metric::Vector;

TEST(LinearScanTest, RangeSearchFindsExactlyTheBall) {
  const std::vector<Vector> data{{0, 0}, {1, 0}, {0, 2}, {3, 3}};
  LinearScan<Vector, L2> scan(data, L2());
  const auto result = scan.RangeSearch({0, 0}, 2.0);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 0u);
  EXPECT_DOUBLE_EQ(result[0].distance, 0.0);
  EXPECT_EQ(result[1].id, 1u);
  EXPECT_EQ(result[2].id, 2u);  // boundary point included (closed ball)
  EXPECT_DOUBLE_EQ(result[2].distance, 2.0);
}

TEST(LinearScanTest, RangeRadiusZeroFindsExactMatches) {
  const std::vector<Vector> data{{1, 1}, {1, 1}, {2, 2}};
  LinearScan<Vector, L2> scan(data, L2());
  const auto result = scan.RangeSearch({1, 1}, 0.0);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 0u);
  EXPECT_EQ(result[1].id, 1u);
}

TEST(LinearScanTest, EmptyDataset) {
  LinearScan<Vector, L2> scan({}, L2());
  EXPECT_TRUE(scan.RangeSearch({0}, 10.0).empty());
  EXPECT_TRUE(scan.KnnSearch({0}, 5).empty());
  EXPECT_EQ(scan.size(), 0u);
}

TEST(LinearScanTest, CostIsExactlyN) {
  const auto data = dataset::UniformVectors(97, 5, 1);
  SearchStats stats;
  LinearScan<Vector, L2> scan(data, L2());
  scan.RangeSearch(data[0], 0.5, &stats);
  EXPECT_EQ(stats.distance_computations, 97u);
  scan.KnnSearch(data[0], 3, &stats);
  EXPECT_EQ(stats.distance_computations, 2u * 97u);
}

TEST(LinearScanTest, KnnReturnsClosestSorted) {
  const std::vector<Vector> data{{5, 0}, {1, 0}, {3, 0}, {2, 0}, {4, 0}};
  LinearScan<Vector, L2> scan(data, L2());
  const auto result = scan.KnnSearch({0, 0}, 3);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 1u);
  EXPECT_EQ(result[1].id, 3u);
  EXPECT_EQ(result[2].id, 2u);
  EXPECT_DOUBLE_EQ(result[2].distance, 3.0);
}

TEST(LinearScanTest, KnnWithKLargerThanData) {
  const std::vector<Vector> data{{1}, {2}};
  LinearScan<Vector, L2> scan(data, L2());
  EXPECT_EQ(scan.KnnSearch({0}, 10).size(), 2u);
}

TEST(LinearScanTest, KnnTieBrokenById) {
  const std::vector<Vector> data{{1, 0}, {0, 1}, {2, 2}};
  LinearScan<Vector, L2> scan(data, L2());
  const auto result = scan.KnnSearch({0, 0}, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0u);  // same distance as id 1; lower id wins
}

TEST(LinearScanTest, FarthestSearchReturnsMostDistant) {
  const std::vector<Vector> data{{0, 0}, {1, 0}, {5, 0}, {9, 0}};
  LinearScan<Vector, L2> scan(data, L2());
  const auto result = scan.FarthestSearch({0, 0}, 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 3u);
  EXPECT_DOUBLE_EQ(result[0].distance, 9.0);
  EXPECT_EQ(result[1].id, 2u);
}

TEST(LinearScanTest, ObjectAccessorReturnsOriginals) {
  const std::vector<Vector> data{{1, 2}, {3, 4}};
  LinearScan<Vector, L2> scan(data, L2());
  EXPECT_EQ(scan.object(0), (Vector{1, 2}));
  EXPECT_EQ(scan.object(1), (Vector{3, 4}));
}

}  // namespace
}  // namespace mvp::scan

#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mvp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("m").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("m").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("m").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::DeadlineExceeded("m").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_NE(Status::DeadlineExceeded("m").ToString().find("deadline"),
            std::string::npos);
  EXPECT_EQ(Status::ResourceExhausted("m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_NE(Status::ResourceExhausted("m").ToString().find("resource"),
            std::string::npos);
  Status s = Status::Corruption("bad bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad bytes");
  EXPECT_EQ(s.ToString(), "corruption: bad bytes");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "invalid argument");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValueCanBeExtracted) {
  Result<std::vector<std::string>> r = std::vector<std::string>{"a", "b"};
  ASSERT_TRUE(r.ok());
  std::vector<std::string> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 2u);
}

TEST(ResultTest, MutableValueReference) {
  Result<std::string> r = std::string("x");
  r.value() += "y";
  EXPECT_EQ(r.value(), "xy");
}

}  // namespace
}  // namespace mvp

// The dynamic overlay's core contract: query results over base + memtable
// + tombstones are BIT-IDENTICAL to an index rebuilt from scratch over the
// current live set — across randomized insert/erase workloads (including
// erases of base objects, memtable objects, and re-inserted keys),
// checkpoints, compactions, reopens, and flat (mmap-served) bases. Plus
// the DynamicIndex interface wiring and the representation-naming save
// guards.

#include "dynamic/dynamic_overlay.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/query.h"
#include "common/status.h"
#include "dynamic/dynamic_index.h"
#include "dynamic/mvp_forest.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "serve/sharded_index.h"
#include "snapshot/manifest.h"
#include "snapshot/snapshot_store.h"
#include "wal/wal.h"

namespace mvp::dynamic {
namespace {

using Vec = std::vector<double>;
using Overlay = DynamicOverlay<Vec, metric::L2, VectorCodec>;
using Oracle = serve::ShardedMvpIndex<Vec, metric::L2>;

// Satellite: the memtable implementation is typed against the
// DynamicIndex interface — checked here at compile time, in tier-1.
static_assert(DynamicIndexFor<MvpForest<Vec, metric::L2>, Vec>);
static_assert(DynamicIndexFor<MvpForest<std::string, metric::Levenshtein>,
                              std::string>);
static_assert(!DynamicIndexFor<Oracle, Vec>);  // static index: no Insert

class DynamicOverlayTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kDim = 6;

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/overlay_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Overlay::Options SmallOptions() const {
    Overlay::Options options;
    options.memtable.buffer_capacity = 16;
    options.memtable.tree.order = 2;
    options.memtable.tree.leaf_capacity = 8;
    options.memtable.tree.num_path_distances = 2;
    options.rebuild.num_shards = 3;
    options.rebuild.tree.order = 2;
    options.rebuild.tree.leaf_capacity = 8;
    options.rebuild.tree.num_path_distances = 2;
    return options;
  }

  Result<std::unique_ptr<Overlay>> OpenOverlay() {
    return Overlay::Open(dir_, metric::L2{}, VectorCodec{}, SmallOptions());
  }

  Vec RandomVec(std::mt19937_64& rng) const {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    Vec v(kDim);
    for (double& x : v) x = uniform(rng);
    return v;
  }

  /// From-scratch oracle over the live set: a ShardedMvpIndex built over
  /// the live objects in ascending stable-id order, whose dense result ids
  /// are translated back through that order.
  struct RebuiltOracle {
    Oracle index;
    std::vector<std::uint64_t> stable;  // dense id -> stable id

    std::vector<Neighbor> RangeSearch(const Vec& q, double r) const {
      auto hits = index.RangeSearch(q, r);
      for (Neighbor& n : hits) n.id = static_cast<std::size_t>(stable[n.id]);
      return hits;
    }
    std::vector<Neighbor> KnnSearch(const Vec& q, std::size_t k) const {
      auto hits = index.KnnSearch(q, k);
      for (Neighbor& n : hits) n.id = static_cast<std::size_t>(stable[n.id]);
      return hits;
    }
  };

  RebuiltOracle Rebuild(const std::map<std::uint64_t, Vec>& live) const {
    std::vector<std::uint64_t> stable;
    std::vector<Vec> objects;
    for (const auto& [stable_id, object] : live) {
      stable.push_back(stable_id);
      objects.push_back(object);
    }
    auto built = Oracle::Build(std::move(objects), metric::L2{},
                               SmallOptions().rebuild);
    EXPECT_TRUE(built.ok()) << built.status().message();
    return RebuiltOracle{std::move(built).ValueOrDie(), std::move(stable)};
  }

  static void ExpectSameHits(const std::vector<Neighbor>& got,
                             const std::vector<Neighbor>& want,
                             const std::string& what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << what << " hit " << i;
      // Bit-identical, not approximately equal: both sides run the same
      // metric over the same stored doubles.
      EXPECT_EQ(got[i].distance, want[i].distance) << what << " hit " << i;
    }
  }

  /// Cross-checks `queries` range + knn queries against a fresh rebuild.
  void ExpectEquivalent(const Overlay& overlay,
                        const std::map<std::uint64_t, Vec>& live,
                        std::mt19937_64& rng, int queries,
                        const std::string& what) {
    ASSERT_EQ(overlay.size(), live.size()) << what;
    const RebuiltOracle oracle = Rebuild(live);
    for (int q = 0; q < queries; ++q) {
      const Vec query = RandomVec(rng);
      const double radius = 0.2 + 0.2 * static_cast<double>(q % 4);
      ExpectSameHits(overlay.RangeSearch(query, radius),
                     oracle.RangeSearch(query, radius),
                     what + " range q" + std::to_string(q));
      const std::size_t k = 1 + static_cast<std::size_t>(q % 12);
      ExpectSameHits(overlay.KnnSearch(query, k), oracle.KnnSearch(query, k),
                     what + " knn q" + std::to_string(q));
    }
  }

  std::string dir_;
};

TEST_F(DynamicOverlayTest, FreshStoreInsertsAndSearches) {
  auto opened = OpenOverlay();
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  Overlay& overlay = *opened.value();

  std::mt19937_64 rng(7);
  std::map<std::uint64_t, Vec> live;
  for (int i = 0; i < 40; ++i) {
    Vec v = RandomVec(rng);
    auto id = overlay.Insert(v);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(id.value(), static_cast<std::size_t>(i));  // dense, in order
    live[id.value()] = std::move(v);
  }
  ExpectEquivalent(overlay, live, rng, 30, "fresh");
}

TEST_F(DynamicOverlayTest, EraseContract) {
  auto opened = OpenOverlay();
  ASSERT_TRUE(opened.ok());
  Overlay& overlay = *opened.value();

  std::mt19937_64 rng(11);
  const Vec kept = RandomVec(rng);
  const Vec dropped = RandomVec(rng);
  auto kept_id = overlay.Insert(kept);
  auto dropped_id = overlay.Insert(dropped);
  ASSERT_TRUE(kept_id.ok());
  ASSERT_TRUE(dropped_id.ok());

  ASSERT_TRUE(overlay.Erase(dropped_id.value()).ok());
  EXPECT_EQ(overlay.Erase(dropped_id.value()).code(), StatusCode::kNotFound);
  EXPECT_EQ(overlay.Erase(999).code(), StatusCode::kNotFound);
  EXPECT_EQ(overlay.size(), 1u);

  // The erased object is gone from results immediately; a re-insert of the
  // same payload gets a FRESH id, never the old one back.
  auto hits = overlay.RangeSearch(dropped, 1e-12);
  EXPECT_TRUE(hits.empty());
  auto again = overlay.Insert(dropped);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(again.value(), dropped_id.value());
  hits = overlay.RangeSearch(dropped, 1e-12);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, again.value());
}

// The tentpole acceptance test: a randomized insert/erase workload with
// checkpoints, compactions, and full reopens interleaved, cross-checked
// against a from-scratch rebuild after every batch. Over the run this
// executes well over a thousand range/k-NN queries, covering erased base
// objects, erased memtable objects, and keys re-inserted after erasure.
TEST_F(DynamicOverlayTest, RandomizedWorkloadMatchesRebuildExactly) {
  auto opened = OpenOverlay();
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<Overlay> overlay = std::move(opened).ValueOrDie();

  std::mt19937_64 rng(1234);
  std::map<std::uint64_t, Vec> live;

  constexpr int kBatches = 10;
  for (int batch = 0; batch < kBatches; ++batch) {
    // Mutate: ~30 inserts (some re-using previously erased payloads) and
    // ~10 erases per batch.
    for (int i = 0; i < 30; ++i) {
      Vec v = RandomVec(rng);
      auto id = overlay->Insert(v);
      ASSERT_TRUE(id.ok()) << id.status().message();
      live[id.value()] = std::move(v);
    }
    for (int i = 0; i < 10 && !live.empty(); ++i) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng() % live.size()));
      if (rng() % 3 == 0) {
        // Erase-then-reinsert: the payload returns under a fresh id.
        Vec v = it->second;
        ASSERT_TRUE(overlay->Erase(it->first).ok());
        live.erase(it);
        auto id = overlay->Insert(v);
        ASSERT_TRUE(id.ok());
        live[id.value()] = std::move(v);
      } else {
        ASSERT_TRUE(overlay->Erase(it->first).ok());
        live.erase(it);
      }
    }

    // Structural event: rotate through checkpoint / compact / reopen /
    // nothing, so equivalence is checked in every lifecycle state.
    switch (batch % 4) {
      case 1: {
        auto gen = overlay->Checkpoint();
        ASSERT_TRUE(gen.ok()) << gen.status().message();
        break;
      }
      case 2: {
        auto gen = overlay->Compact();
        ASSERT_TRUE(gen.ok()) << gen.status().message();
        EXPECT_EQ(overlay->memtable_size(), 0u);
        EXPECT_EQ(overlay->tombstone_count(), 0u);
        break;
      }
      case 3: {
        auto checkpoint = overlay->Checkpoint();
        ASSERT_TRUE(checkpoint.ok());
        overlay.reset();  // close
        auto reopened = OpenOverlay();
        ASSERT_TRUE(reopened.ok()) << reopened.status().message();
        overlay = std::move(reopened).ValueOrDie();
        break;
      }
      default:
        break;
    }

    ExpectEquivalent(*overlay, live, rng, 60,
                     "batch " + std::to_string(batch));
  }
}

TEST_F(DynamicOverlayTest, ReopenReplaysTheWalWithoutACheckpoint) {
  std::mt19937_64 rng(99);
  std::map<std::uint64_t, Vec> live;
  {
    auto opened = OpenOverlay();
    ASSERT_TRUE(opened.ok());
    Overlay& overlay = *opened.value();
    for (int i = 0; i < 50; ++i) {
      Vec v = RandomVec(rng);
      auto id = overlay.Insert(v);
      ASSERT_TRUE(id.ok());
      live[id.value()] = std::move(v);
    }
    ASSERT_TRUE(overlay.Erase(3).ok());
    ASSERT_TRUE(overlay.Erase(17).ok());
    live.erase(3);
    live.erase(17);
    // No checkpoint: everything lives only in the WAL when we close.
  }
  auto reopened = OpenOverlay();
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value()->stats().replayed_records, 52u);
  EXPECT_EQ(reopened.value()->next_stable_id(), 50u);
  ExpectEquivalent(*reopened.value(), live, rng, 30, "replayed");

  // Ids keep ascending across the reopen — never reused.
  auto id = reopened.value()->Insert(RandomVec(rng));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 50u);
}

TEST_F(DynamicOverlayTest, CheckpointWritesADeltaProportionalToChurn) {
  auto opened = OpenOverlay();
  ASSERT_TRUE(opened.ok());
  Overlay& overlay = *opened.value();

  std::mt19937_64 rng(5);
  std::map<std::uint64_t, Vec> live;
  for (int i = 0; i < 400; ++i) {
    Vec v = RandomVec(rng);
    auto id = overlay.Insert(v);
    ASSERT_TRUE(id.ok());
    live[id.value()] = std::move(v);
  }
  auto base_gen = overlay.Compact();
  ASSERT_TRUE(base_gen.ok());

  // Small churn on a large base.
  for (int i = 0; i < 8; ++i) {
    Vec v = RandomVec(rng);
    auto id = overlay.Insert(v);
    ASSERT_TRUE(id.ok());
    live[id.value()] = std::move(v);
  }
  ASSERT_TRUE(overlay.Erase(5).ok());
  live.erase(5);

  auto delta_gen = overlay.Checkpoint();
  ASSERT_TRUE(delta_gen.ok());
  EXPECT_GT(delta_gen.value(), base_gen.value());
  EXPECT_EQ(overlay.base_generation(), base_gen.value());  // base unchanged

  snapshot::SnapshotStore store(dir_);
  auto base_manifest = store.ReadManifest(base_gen.value());
  auto delta_manifest = store.ReadManifest(delta_gen.value());
  ASSERT_TRUE(base_manifest.ok());
  ASSERT_TRUE(delta_manifest.ok());
  EXPECT_EQ(delta_manifest.value().index_kind,
            snapshot::IndexKind::kDynamicDelta);
  EXPECT_EQ(delta_manifest.value().base_generation, base_gen.value());
  // The checkpoint's I/O is proportional to the churn (9 objects), not the
  // index (400 objects): the delta container must be a small fraction of
  // the base container it layers on.
  EXPECT_LT(delta_manifest.value().payload_bytes,
            base_manifest.value().payload_bytes / 4);

  // The WAL was folded in and truncated.
  auto log = wal::ReadWal(overlay.wal_path());
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log.value().records.empty());

  // A reopen from the delta serves the same results.
  ExpectEquivalent(overlay, live, rng, 20, "delta-live");
  auto reopened = OpenOverlay();
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  ExpectEquivalent(*reopened.value(), live, rng, 20, "delta-reopened");

  // Pruning keeps the delta's base alive (lineage), removing nothing here.
  EXPECT_EQ(store.PruneStaleGenerations(), 0u);
  auto repruned = OpenOverlay();
  ASSERT_TRUE(repruned.ok());
}

TEST_F(DynamicOverlayTest, CheckpointWithNothingNewIsANoOp) {
  auto opened = OpenOverlay();
  ASSERT_TRUE(opened.ok());
  Overlay& overlay = *opened.value();
  auto id = overlay.Insert(Vec(kDim, 0.5));
  ASSERT_TRUE(id.ok());
  auto first = overlay.Checkpoint();
  ASSERT_TRUE(first.ok());
  auto second = overlay.Checkpoint();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), first.value());  // no new generation written
}

TEST_F(DynamicOverlayTest, OverlayServesOverAFlatBase) {
  // Seed the store with a FLAT (mmap-served) generation, the
  // zero-deserialization serving path, then mutate on top of it.
  std::mt19937_64 rng(21);
  std::map<std::uint64_t, Vec> live;
  {
    std::vector<Vec> objects;
    for (int i = 0; i < 120; ++i) {
      objects.push_back(RandomVec(rng));
      live[static_cast<std::uint64_t>(i)] = objects.back();
    }
    auto built =
        Oracle::Build(std::move(objects), metric::L2{}, SmallOptions().rebuild);
    ASSERT_TRUE(built.ok());
    snapshot::SnapshotStore store(dir_);
    auto gen = store.SaveFlat(built.value());
    ASSERT_TRUE(gen.ok()) << gen.status().message();
  }

  auto opened = OpenOverlay();
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  Overlay& overlay = *opened.value();
  EXPECT_TRUE(overlay.base_flat_serving());
  EXPECT_EQ(overlay.size(), 120u);

  // Erase base objects, insert new ones — all on top of the mapping.
  ASSERT_TRUE(overlay.Erase(7).ok());
  ASSERT_TRUE(overlay.Erase(64).ok());
  live.erase(7);
  live.erase(64);
  for (int i = 0; i < 25; ++i) {
    Vec v = RandomVec(rng);
    auto id = overlay.Insert(v);
    ASSERT_TRUE(id.ok());
    live[id.value()] = std::move(v);
  }
  ExpectEquivalent(overlay, live, rng, 40, "flat-base");

  // Compaction materializes the mapped vectors into a fresh heap
  // generation; results must not change.
  auto gen = overlay.Compact();
  ASSERT_TRUE(gen.ok()) << gen.status().message();
  EXPECT_FALSE(overlay.base_flat_serving());
  ExpectEquivalent(overlay, live, rng, 40, "flat-compacted");
}

// Satellite: save-path guards name the offending representation on both
// sides (what the index is, what the operation needs).
TEST_F(DynamicOverlayTest, SaveGuardsNameTheRepresentation) {
  std::mt19937_64 rng(3);
  std::vector<Vec> objects;
  for (int i = 0; i < 60; ++i) objects.push_back(RandomVec(rng));
  auto built =
      Oracle::Build(std::move(objects), metric::L2{}, SmallOptions().rebuild);
  ASSERT_TRUE(built.ok());

  snapshot::SnapshotStore store(dir_);
  ASSERT_TRUE(store.SaveFlat(built.value()).ok());
  auto flat = store.OpenFlat<metric::L2>(metric::L2{});
  ASSERT_TRUE(flat.ok());

  for (const Status& status :
       {store.SaveSharded(flat.value().index, VectorCodec{}).status(),
        store.SaveFlat(flat.value().index).status(),
        store
            .SaveCompacted(flat.value().index,
                           std::vector<std::uint64_t>(flat.value().index.size()),
                           1, 60, VectorCodec{})
            .status()}) {
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("flat-serving"), std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("heap"), std::string::npos)
        << status.message();
  }
}

}  // namespace
}  // namespace mvp::dynamic

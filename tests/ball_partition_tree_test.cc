#include "baselines/ball_partition_tree.h"

#include <gtest/gtest.h>

#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/counting.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::baselines {
namespace {

using metric::L2;
using metric::Vector;
using VecBall = BallPartitionTree<Vector, L2>;

TEST(BallPartitionTreeTest, RejectsBadOptions) {
  VecBall::Options options;
  options.fanout = 1;
  EXPECT_FALSE(VecBall::Build({}, L2(), options).ok());
  options = {};
  options.leaf_capacity = 0;
  EXPECT_FALSE(VecBall::Build({}, L2(), options).ok());
}

TEST(BallPartitionTreeTest, EmptyAndTiny) {
  auto empty = VecBall::Build({}, L2(), {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().RangeSearch({0, 0}, 5.0).empty());
  auto two = VecBall::Build({{0, 0}, {3, 4}}, L2(), {});
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two.value().RangeSearch({0, 0}, 10.0).size(), 2u);
}

struct BallParam {
  int fanout;
  int leaf_capacity;
  std::size_t n;
  std::size_t dim;
};

class BallSweepTest : public ::testing::TestWithParam<BallParam> {};

TEST_P(BallSweepTest, RangeSearchMatchesLinearScan) {
  const auto p = GetParam();
  const auto data = dataset::UniformVectors(p.n, p.dim, 31);
  VecBall::Options options;
  options.fanout = p.fanout;
  options.leaf_capacity = p.leaf_capacity;
  auto built = VecBall::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(8, p.dim, 33);
  for (const auto& q : queries) {
    for (const double r : {0.0, 0.2, 0.6, 1.5}) {
      const auto got = built.value().RangeSearch(q, r);
      const auto expected = reference.RangeSearch(q, r);
      ASSERT_EQ(got.size(), expected.size()) << "r=" << r;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
      }
    }
  }
}

TEST_P(BallSweepTest, KnnMatchesLinearScan) {
  const auto p = GetParam();
  const auto data = dataset::UniformVectors(p.n, p.dim, 35);
  VecBall::Options options;
  options.fanout = p.fanout;
  options.leaf_capacity = p.leaf_capacity;
  auto built = VecBall::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(6, p.dim, 37);
  for (const auto& q : queries) {
    for (const std::size_t k : {1u, 4u, 12u}) {
      const auto got = built.value().KnnSearch(q, k);
      const auto expected = reference.KnnSearch(q, k);
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BallSweepTest,
                         ::testing::Values(BallParam{4, 8, 400, 6},
                                           BallParam{2, 1, 300, 4},
                                           BallParam{8, 16, 500, 10},
                                           BallParam{16, 4, 200, 3},
                                           BallParam{4, 8, 20, 4}));

TEST(BallPartitionTreeTest, DuplicatesTerminate) {
  std::vector<Vector> data(300, Vector{1, 1});
  auto built = VecBall::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RangeSearch({1, 1}, 0.0).size(), 300u);
}

TEST(BallPartitionTreeTest, AllPointsAccounted) {
  const auto data = dataset::UniformVectors(321, 5, 39);
  auto built = VecBall::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RangeSearch(Vector(5, 0.5), 1e9).size(), 321u);
  const auto stats = built.value().Stats();
  EXPECT_EQ(stats.num_vantage_points + stats.num_leaf_points, 321u);
}

TEST(BallPartitionTreeTest, SearchStatsMatchCountingMetric) {
  const auto data = dataset::UniformVectors(300, 6, 41);
  metric::DistanceCounter counter;
  auto counted = metric::MakeCounting(L2(), counter);
  auto built = BallPartitionTree<Vector, metric::CountingMetric<L2>>::Build(
      data, counted, {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().Stats().construction_distance_computations,
            counter.count());
  counter.Reset();
  SearchStats stats;
  built.value().RangeSearch(data[0], 0.4, &stats);
  EXPECT_EQ(stats.distance_computations, counter.count());
}

TEST(BallPartitionTreeTest, WorksWithEditDistance) {
  auto words = dataset::SyntheticWords(250, 43);
  using WordBall = BallPartitionTree<std::string, metric::Levenshtein>;
  auto built = WordBall::Build(words, metric::Levenshtein(), {});
  ASSERT_TRUE(built.ok());
  scan::LinearScan<std::string, metric::Levenshtein> reference(
      words, metric::Levenshtein());
  const std::string q = dataset::MutateWord(words[77], 1, 5);
  for (const double r : {1.0, 2.0, 3.0}) {
    EXPECT_EQ(built.value().RangeSearch(q, r).size(),
              reference.RangeSearch(q, r).size());
  }
}

}  // namespace
}  // namespace mvp::baselines

#include "baselines/gnat.h"

#include <gtest/gtest.h>

#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/counting.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::baselines {
namespace {

using metric::L2;
using metric::Vector;
using VecGnat = Gnat<Vector, L2>;

TEST(GnatTest, RejectsBadOptions) {
  VecGnat::Options options;
  options.split_points = 1;
  EXPECT_FALSE(VecGnat::Build({}, L2(), options).ok());
  options = {};
  options.leaf_capacity = 0;
  EXPECT_FALSE(VecGnat::Build({}, L2(), options).ok());
  options = {};
  options.candidate_factor = 0;
  EXPECT_FALSE(VecGnat::Build({}, L2(), options).ok());
}

TEST(GnatTest, EmptyAndTiny) {
  auto empty = VecGnat::Build({}, L2(), {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().RangeSearch({0, 0}, 5.0).empty());

  auto one = VecGnat::Build({{1, 1}}, L2(), {});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().RangeSearch({1, 1}, 0.0).size(), 1u);
}

struct GnatParam {
  int split_points;
  int leaf_capacity;
  std::size_t n;
  std::size_t dim;
};

class GnatSweepTest : public ::testing::TestWithParam<GnatParam> {};

TEST_P(GnatSweepTest, RangeSearchMatchesLinearScan) {
  const auto p = GetParam();
  const auto data = dataset::UniformVectors(p.n, p.dim, 5);
  VecGnat::Options options;
  options.split_points = p.split_points;
  options.leaf_capacity = p.leaf_capacity;
  auto built = VecGnat::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  auto& gnat = built.value();
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(8, p.dim, 9);
  for (const auto& q : queries) {
    for (const double r : {0.0, 0.2, 0.6, 1.2, 3.0}) {
      const auto got = gnat.RangeSearch(q, r);
      const auto expected = reference.RangeSearch(q, r);
      ASSERT_EQ(got.size(), expected.size()) << "r=" << r;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
      }
    }
  }
}

TEST_P(GnatSweepTest, AccountsForAllPoints) {
  const auto p = GetParam();
  const auto data = dataset::UniformVectors(p.n, p.dim, 15);
  VecGnat::Options options;
  options.split_points = p.split_points;
  options.leaf_capacity = p.leaf_capacity;
  auto built = VecGnat::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  const auto all = built.value().RangeSearch(Vector(p.dim, 0.5), 1e9);
  EXPECT_EQ(all.size(), p.n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GnatSweepTest,
                         ::testing::Values(GnatParam{8, 16, 400, 6},
                                           GnatParam{2, 4, 300, 4},
                                           GnatParam{16, 8, 500, 10},
                                           GnatParam{4, 1, 150, 3},
                                           GnatParam{50, 10, 120, 5},
                                           GnatParam{8, 16, 30, 4}));

TEST_P(GnatSweepTest, KnnMatchesLinearScan) {
  const auto p = GetParam();
  const auto data = dataset::UniformVectors(p.n, p.dim, 17);
  VecGnat::Options options;
  options.split_points = p.split_points;
  options.leaf_capacity = p.leaf_capacity;
  auto built = VecGnat::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(6, p.dim, 19);
  for (const auto& q : queries) {
    for (const std::size_t k : {1u, 4u, 15u}) {
      const auto got = built.value().KnnSearch(q, k);
      const auto expected = reference.KnnSearch(q, k);
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(GnatTest, DuplicatePoints) {
  std::vector<Vector> data(40, Vector{1, 2});
  auto built = VecGnat::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RangeSearch({1, 2}, 0.0).size(), 40u);
}

TEST(GnatTest, PrunesAtSmallRadius) {
  const auto data = dataset::UniformVectors(3000, 10, 21);
  auto built = VecGnat::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  SearchStats stats;
  built.value().RangeSearch(data[17], 0.1, &stats);
  EXPECT_LT(stats.distance_computations, 3000u);
}

TEST(GnatTest, SearchStatsMatchCountingMetric) {
  const auto data = dataset::UniformVectors(400, 6, 23);
  metric::DistanceCounter counter;
  auto counted = metric::MakeCounting(L2(), counter);
  auto built = Gnat<Vector, metric::CountingMetric<L2>>::Build(data, counted, {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().Stats().construction_distance_computations,
            counter.count());
  counter.Reset();
  SearchStats stats;
  built.value().RangeSearch(data[0], 0.4, &stats);
  EXPECT_EQ(stats.distance_computations, counter.count());
}

TEST(GnatTest, WorksWithEditDistance) {
  auto words = dataset::SyntheticWords(250, 27);
  using WordGnat = Gnat<std::string, metric::Levenshtein>;
  auto built = WordGnat::Build(words, metric::Levenshtein(), {});
  ASSERT_TRUE(built.ok());
  scan::LinearScan<std::string, metric::Levenshtein> reference(
      words, metric::Levenshtein());
  const std::string q = dataset::MutateWord(words[9], 1, 2);
  for (const double r : {1.0, 2.0, 3.0}) {
    EXPECT_EQ(built.value().RangeSearch(q, r).size(),
              reference.RangeSearch(q, r).size());
  }
}

}  // namespace
}  // namespace mvp::baselines

// Replication acceptance tests: a follower that never built an index pulls
// a leader's committed generation chunk-by-chunk over the real wire and
// must end up serving BIT-IDENTICAL results and SearchStats. The crash
// drills then attack every syscall on the pull path — follower-side fs and
// client-side net, error and crash flavours, at varying depths — and after
// every single one the follower either still has no committed generation
// or a fully verified one. An unverified generation is never swapped in.
//
// Failpoint safety: crash-mode failpoints are matched to follower paths
// ("follower" in the fs path, "client:rpc" on the net seam) ONLY — a crash
// unwinding a server connection thread would std::terminate the process.

#include "fault/fault_fs.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/serialize.h"
#include "dataset/vector_gen.h"
#include "fault/failpoint.h"
#include "metric/lp.h"
#include "net/client.h"
#include "net/replication.h"
#include "net/server.h"
#include "serve/executor.h"
#include "serve/sharded_index.h"
#include "snapshot/snapshot_store.h"

namespace mvp::net {
namespace {

using metric::L2;
using metric::Vector;
using Index = serve::ShardedMvpIndex<Vector, L2>;

/// Big enough that the container spans many 4 KiB replication chunks, so
/// resume and mid-transfer failures land in interesting places.
std::vector<Vector> LeaderData() { return dataset::UniformVectors(600, 8, 7); }

Index BuildLeaderIndex(std::uint32_t seed_tweak = 0) {
  Index::Options options;
  options.num_shards = 2;
  options.tree.order = 3;
  options.tree.leaf_capacity = 16;
  options.tree.num_path_distances = 2;
  options.tree.seed = 1234 + seed_tweak;
  auto built = Index::Build(LeaderData(), L2(), options);
  EXPECT_TRUE(built.ok());
  return std::move(built).ValueOrDie();
}

ReplicationOptions SmallChunks() {
  ReplicationOptions options;
  options.chunk_bytes = 4096;
  return options;
}

std::vector<std::uint8_t> MustRead(const std::string& path) {
  auto bytes = ReadFile(path);
  EXPECT_TRUE(bytes.ok()) << path << ": " << bytes.status().ToString();
  return bytes.ok() ? std::move(bytes).ValueOrDie()
                    : std::vector<std::uint8_t>{};
}

void ExpectWireOutcomesEqual(const WireOutcome& follower,
                             const WireOutcome& leader, std::size_t i) {
  EXPECT_EQ(follower.status_code, leader.status_code) << "query " << i;
  EXPECT_EQ(follower.partial, leader.partial) << "query " << i;
  EXPECT_EQ(follower.distance_computations, leader.distance_computations)
      << "query " << i;
  EXPECT_EQ(follower.search.distance_computations,
            leader.search.distance_computations)
      << "query " << i;
  EXPECT_EQ(follower.search.nodes_visited, leader.search.nodes_visited)
      << "query " << i;
  EXPECT_EQ(follower.search.leaf_points_seen, leader.search.leaf_points_seen)
      << "query " << i;
  EXPECT_EQ(follower.search.leaf_points_filtered,
            leader.search.leaf_points_filtered)
      << "query " << i;
  ASSERT_EQ(follower.neighbors.size(), leader.neighbors.size())
      << "query " << i;
  for (std::size_t j = 0; j < follower.neighbors.size(); ++j) {
    EXPECT_EQ(follower.neighbors[j].id, leader.neighbors[j].id)
        << "query " << i << " neighbor " << j;
    EXPECT_EQ(follower.neighbors[j].distance, leader.neighbors[j].distance)
        << "query " << i << " neighbor " << j;
  }
}

class NetReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/net_repl_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    leader_dir_ = dir_ + "/leader";
  }
  void TearDown() override {
    fault::Failpoints::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  /// Commits one flat generation into the leader store and starts the
  /// leader server over it.
  void StartLeader() {
    snapshot::SnapshotStore store(leader_dir_);
    auto saved = store.SaveFlat(BuildLeaderIndex());
    ASSERT_TRUE(saved.ok()) << saved.status().ToString();
    CollectionOptions collection;
    collection.name = "vecs";
    collection.dir = leader_dir_;
    ServerOptions options;
    options.collections.push_back(collection);
    auto server = Server::Start(std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    leader_ = std::move(server).ValueOrDie();
  }

  Client ConnectLeader() {
    auto client = Client::Connect("127.0.0.1", leader_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).ValueOrDie();
  }

  /// The follower's committed state must be absent or fully loadable —
  /// never a committed-but-unverified generation. Call with failpoints
  /// DISARMED (this inspects disk, not the pull path).
  void CheckFollowerInvariant(const std::string& follower_dir) {
    snapshot::SnapshotStore store(follower_dir);
    auto current = store.CurrentGeneration();
    if (!current.ok()) {
      EXPECT_EQ(current.status().code(), StatusCode::kNotFound);
      return;  // nothing committed — the previous state still "serves"
    }
    auto opened = store.OpenFlat(L2());
    EXPECT_TRUE(opened.ok())
        << "committed generation " << current.value()
        << " is not servable: " << opened.status().ToString();
  }

  /// Byte-compares the follower's generation files against the leader's.
  void ExpectStoreBytesIdentical(const std::string& follower_dir,
                                 std::uint64_t gen) {
    snapshot::SnapshotStore leader_store(leader_dir_);
    snapshot::SnapshotStore follower_store(follower_dir);
    for (const char* file : {snapshot::SnapshotStore::kManifestFile,
                             snapshot::SnapshotStore::kContainerFile}) {
      const auto want =
          MustRead(leader_store.GenerationDir(gen) + "/" + file);
      const auto got =
          MustRead(follower_store.GenerationDir(gen) + "/" + file);
      EXPECT_EQ(want, got) << file << " drifted from the leader's bytes";
    }
  }

  std::string dir_;
  std::string leader_dir_;
  std::unique_ptr<Server> leader_;
};

// The headline guarantee: a follower server that never built anything
// replicates a generation over the wire, hot-swaps it in, and serves
// bit-identical results and SearchStats to the leader.
TEST_F(NetReplicationTest, FollowerServesBitIdenticalToLeader) {
  StartLeader();
  const std::string follower_dir = dir_ + "/follower";

  // Follower server starts over an EMPTY store: queries answer NotFound.
  CollectionOptions collection;
  collection.name = "vecs";
  collection.dir = follower_dir;
  ServerOptions options;
  options.collections.push_back(collection);
  auto follower = Server::Start(std::move(options));
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();

  auto follower_client =
      Client::Connect("127.0.0.1", follower.value()->port());
  ASSERT_TRUE(follower_client.ok());
  WireQuery probe;
  probe.kind = 1;
  probe.k = 3;
  probe.point = dataset::UniformQueryVectors(1, 8, 99)[0];
  auto before = follower_client.value().Query("vecs", probe);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().status_code,
            static_cast<std::uint32_t>(StatusCode::kNotFound));

  // Pull + hot-swap.
  Client leader_client = ConnectLeader();
  auto pulled = PullGeneration(leader_client, "vecs", follower_dir,
                               SmallChunks());
  ASSERT_TRUE(pulled.ok()) << pulled.status().ToString();
  EXPECT_EQ(pulled.value(), 1u);
  ASSERT_TRUE(follower.value()->Refresh("vecs").ok());
  ExpectStoreBytesIdentical(follower_dir, 1);

  // The same mixed workload against both servers, compared field by field.
  const auto points = dataset::UniformQueryVectors(24, 8, 31);
  std::vector<WireQuery> queries;
  for (std::size_t i = 0; i < points.size(); ++i) {
    WireQuery q;
    q.point = points[i];
    if (i % 2 == 0) {
      q.kind = 0;
      q.radius = 0.8 + 0.2 * static_cast<double>(i % 3);
    } else {
      q.kind = 1;
      q.k = 1 + i % 6;
    }
    queries.push_back(std::move(q));
  }
  auto from_leader = leader_client.BatchQuery("vecs", queries);
  ASSERT_TRUE(from_leader.ok()) << from_leader.status().ToString();
  auto from_follower = follower_client.value().BatchQuery("vecs", queries);
  ASSERT_TRUE(from_follower.ok()) << from_follower.status().ToString();
  ASSERT_EQ(from_leader.value().size(), from_follower.value().size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ExpectWireOutcomesEqual(from_follower.value()[i], from_leader.value()[i],
                            i);
  }

  // Idempotent: a second pull is a no-op returning the same generation.
  auto again = PullGeneration(leader_client, "vecs", follower_dir,
                              SmallChunks());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 1u);
  follower.value()->Stop();
  leader_->Stop();
}

// A poisoned partial (garbage bytes already on disk where the resume
// appends) must be caught by the fingerprint check, discarded, and never
// committed; the retry then succeeds from scratch.
TEST_F(NetReplicationTest, PoisonedPartialIsDiscardedNotCommitted) {
  StartLeader();
  const std::string follower_dir = dir_ + "/follower";
  snapshot::SnapshotStore store(follower_dir);
  const std::string gen_dir = store.GenerationDir(1);
  std::filesystem::create_directories(gen_dir);
  const std::string partial =
      gen_dir + "/" + std::string(snapshot::SnapshotStore::kContainerFile) +
      ".partial";
  ASSERT_TRUE(WriteFile(partial, std::vector<std::uint8_t>(1000, 0xAB)).ok());

  Client client = ConnectLeader();
  auto pulled = PullGeneration(client, "vecs", follower_dir, SmallChunks());
  ASSERT_FALSE(pulled.ok());
  EXPECT_EQ(pulled.status().code(), StatusCode::kCorruption);
  // Nothing committed, the poisoned partial is gone.
  EXPECT_EQ(store.CurrentGeneration().status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(std::filesystem::exists(partial));

  auto retry = PullGeneration(client, "vecs", follower_dir, SmallChunks());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.value(), 1u);
  CheckFollowerInvariant(follower_dir);
  ExpectStoreBytesIdentical(follower_dir, 1);
  leader_->Stop();
}

// Resume proof: crash the follower mid-transfer, tamper one byte of the
// surviving partial, and re-pull. The re-pull APPENDS (that is the resume
// contract) — so the tampered prefix is never re-fetched and the
// fingerprint check must reject the assembled container. A third, clean
// pull then succeeds. This fails if resume silently restarted (the tamper
// would be overwritten and the corruption missed... but also nothing would
// resume), and fails harder if the tampered container were ever committed.
TEST_F(NetReplicationTest, CrashMidPullResumesByAppending) {
  StartLeader();
  const std::string follower_dir = dir_ + "/follower";
  snapshot::SnapshotStore store(follower_dir);

  {
    // Crash at the 2nd container write: some chunks are on disk, most not.
    fault::FailpointConfig config;
    config.match = "shards.mvps.partial";
    config.crash = true;
    config.skip = 1;
    fault::ScopedFailpoint failpoint("fs/write", config);
    Client client = ConnectLeader();
    bool crashed = false;
    try {
      auto pulled =
          PullGeneration(client, "vecs", follower_dir, SmallChunks());
      ASSERT_FALSE(pulled.ok());  // reachable only if the crash was mapped
    } catch (const fault::CrashError&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);
  }
  fault::Failpoints::Instance().DisarmAll();
  EXPECT_EQ(store.CurrentGeneration().status().code(), StatusCode::kNotFound);

  const std::string partial =
      store.GenerationDir(1) + "/" +
      std::string(snapshot::SnapshotStore::kContainerFile) + ".partial";
  auto survived = ReadFile(partial);
  ASSERT_TRUE(survived.ok()) << "crash should leave a resumable partial";
  const auto manifest = store.ReadManifest(1);
  ASSERT_TRUE(manifest.ok());
  ASSERT_GT(survived.value().size(), 0u);
  ASSERT_LT(survived.value().size(), manifest.value().payload_bytes);

  // Tamper the first byte of the surviving prefix.
  auto tampered = std::move(survived).ValueOrDie();
  tampered[0] ^= 0x01;
  ASSERT_TRUE(WriteFile(partial, tampered).ok());

  Client client = ConnectLeader();
  auto resumed = PullGeneration(client, "vecs", follower_dir, SmallChunks());
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kCorruption)
      << "resume must append to the existing prefix, not restart";
  EXPECT_EQ(store.CurrentGeneration().status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(std::filesystem::exists(partial));

  auto clean = PullGeneration(client, "vecs", follower_dir, SmallChunks());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean.value(), 1u);
  CheckFollowerInvariant(follower_dir);
  ExpectStoreBytesIdentical(follower_dir, 1);
  leader_->Stop();
}

/// One injected failure on the pull path: a follower-side fs syscall or a
/// client-side net syscall, as a clean error or a simulated crash, after
/// `skip` unharmed firings.
struct DrillScenario {
  const char* failpoint;  // "fs/write", "net/recv", ...
  const char* match;      // "follower" (fs paths) or "client:rpc" (net)
  bool crash;
  std::uint64_t skip;
  std::int64_t short_write;

  std::string Name() const {
    std::string name = std::string(failpoint) + ":skip" +
                       std::to_string(skip) +
                       (short_write >= 0 ? ":short" : "") +
                       (crash ? ":crash" : ":error");
    return name;
  }
};

std::vector<DrillScenario> EnumerateDrills() {
  std::vector<DrillScenario> drills;
  // Follower-side filesystem: manifest write, partial open/append/fsync/
  // close, container rename, CURRENT commit — different skips land the
  // same failpoint on different files along the pull.
  for (const char* fs : {"fs/open", "fs/write", "fs/fsync", "fs/close",
                         "fs/rename"}) {
    for (const bool crash : {false, true}) {
      for (const std::uint64_t skip : {0u, 1u, 2u}) {
        drills.push_back({fs, "follower", crash, skip, -1});
      }
    }
  }
  // Torn writes: partial progress before the failure.
  drills.push_back({"fs/write", "follower", false, 1, 100});
  drills.push_back({"fs/write", "follower", true, 1, 100});
  // Client-side network: the connection dies mid-RPC at varying depths
  // (skip 0 hits the CurrentGeneration round trip, larger skips land
  // inside the chunk stream). NEVER matched to server-side details — a
  // crash there would unwind a connection thread and terminate.
  for (const char* net : {"net/recv", "net/send"}) {
    for (const bool crash : {false, true}) {
      for (const std::uint64_t skip : {0u, 4u}) {
        drills.push_back({net, "client:rpc", crash, skip, -1});
      }
    }
  }
  return drills;
}

// The sweep. After EVERY injected failure: nothing unverified is ever
// committed (CheckFollowerInvariant), and a clean retry converges to the
// leader's exact bytes.
TEST_F(NetReplicationTest, CrashDrillSweep) {
  StartLeader();
  const auto drills = EnumerateDrills();
  std::size_t index = 0;
  for (const DrillScenario& drill : drills) {
    SCOPED_TRACE(drill.Name());
    const std::string follower_dir =
        dir_ + "/follower_" + std::to_string(index++);

    {
      fault::FailpointConfig config;
      config.match = drill.match;
      config.crash = drill.crash;
      config.skip = drill.skip;
      config.short_write = drill.short_write;
      fault::ScopedFailpoint failpoint(drill.failpoint, config);
      Client client = ConnectLeader();
      try {
        // With a deep skip the failpoint may never fire and the pull just
        // succeeds — also a valid outcome; the invariant must hold either
        // way.
        (void)PullGeneration(client, "vecs", follower_dir, SmallChunks());
      } catch (const fault::CrashError&) {
        // The simulated follower kill. State on disk is whatever it is.
      }
    }
    fault::Failpoints::Instance().DisarmAll();
    CheckFollowerInvariant(follower_dir);

    // Recovery: a fresh process (fresh client, no failpoints) re-pulls.
    Client client = ConnectLeader();
    auto recovered =
        PullGeneration(client, "vecs", follower_dir, SmallChunks());
    ASSERT_TRUE(recovered.ok())
        << drill.Name() << ": " << recovered.status().ToString();
    EXPECT_EQ(recovered.value(), 1u);
    CheckFollowerInvariant(follower_dir);
    ExpectStoreBytesIdentical(follower_dir, 1);
  }
  leader_->Stop();
}

// Hot-swap safety after the pull: if the committed container is damaged
// on disk AFTER replication, Refresh fails its fingerprint check and the
// collection keeps serving the generation it already has.
TEST_F(NetReplicationTest, TamperedContainerFailsRefreshKeepsServing) {
  StartLeader();
  const std::string follower_dir = dir_ + "/follower";

  CollectionOptions collection;
  collection.name = "vecs";
  collection.dir = follower_dir;
  ServerOptions options;
  options.collections.push_back(collection);
  auto follower = Server::Start(std::move(options));
  ASSERT_TRUE(follower.ok());

  Client leader_client = ConnectLeader();
  ASSERT_TRUE(
      PullGeneration(leader_client, "vecs", follower_dir, SmallChunks())
          .ok());
  ASSERT_TRUE(follower.value()->Refresh("vecs").ok());

  // Leader commits generation 2; the follower pulls it, but the bytes are
  // damaged on the follower's disk before the hot swap.
  {
    snapshot::SnapshotStore leader_store(leader_dir_);
    auto saved = leader_store.SaveFlat(BuildLeaderIndex(/*seed_tweak=*/1));
    ASSERT_TRUE(saved.ok()) << saved.status().ToString();
    EXPECT_EQ(saved.value(), 2u);
    ASSERT_TRUE(leader_->Refresh("vecs").ok());
  }
  ASSERT_TRUE(
      PullGeneration(leader_client, "vecs", follower_dir, SmallChunks())
          .ok());
  snapshot::SnapshotStore follower_store(follower_dir);
  const std::string container =
      follower_store.GenerationDir(2) + "/" +
      std::string(snapshot::SnapshotStore::kContainerFile);
  auto bytes = MustRead(container);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteFile(container, bytes).ok());

  EXPECT_FALSE(follower.value()->Refresh("vecs").ok());

  // Still serving generation 1, and correctly.
  auto follower_client =
      Client::Connect("127.0.0.1", follower.value()->port());
  ASSERT_TRUE(follower_client.ok());
  auto collections = follower_client.value().ListCollections();
  ASSERT_TRUE(collections.ok());
  ASSERT_EQ(collections.value().size(), 1u);
  EXPECT_EQ(collections.value()[0].generation, 1u);
  WireQuery probe;
  probe.kind = 1;
  probe.k = 3;
  probe.point = dataset::UniformQueryVectors(1, 8, 99)[0];
  auto outcome = follower_client.value().Query("vecs", probe);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().status_code, 0u);
  EXPECT_EQ(outcome.value().neighbors.size(), 3u);
  follower.value()->Stop();
  leader_->Stop();
}

}  // namespace
}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

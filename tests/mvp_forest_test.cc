#include "dynamic/mvp_forest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/codec.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::dynamic {
namespace {

using metric::L2;
using metric::Vector;
using Forest = MvpForest<Vector, L2>;

Forest::Options SmallOptions() {
  Forest::Options options;
  options.buffer_capacity = 16;
  options.tree.order = 2;
  options.tree.leaf_capacity = 4;
  options.tree.num_path_distances = 4;
  return options;
}

TEST(MvpForestTest, EmptyForest) {
  Forest forest{L2(), SmallOptions()};
  EXPECT_EQ(forest.size(), 0u);
  EXPECT_TRUE(forest.RangeSearch({0, 0}, 1.0).empty());
  EXPECT_TRUE(forest.KnnSearch({0, 0}, 5).empty());
}

TEST(MvpForestTest, InsertAssignsSequentialIds) {
  Forest forest{L2(), SmallOptions()};
  EXPECT_EQ(forest.Insert({0, 0}), 0u);
  EXPECT_EQ(forest.Insert({1, 1}), 1u);
  EXPECT_EQ(forest.Insert({2, 2}), 2u);
  EXPECT_EQ(forest.size(), 3u);
}

TEST(MvpForestTest, RangeSearchMatchesLinearScanAfterManyInserts) {
  const auto data = dataset::UniformVectors(500, 6, 3);
  Forest forest{L2(), SmallOptions()};
  for (const auto& v : data) forest.Insert(v);
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(10, 6, 5);
  for (const auto& q : queries) {
    for (const double r : {0.0, 0.3, 0.8, 2.0}) {
      const auto got = forest.RangeSearch(q, r);
      const auto expected = reference.RangeSearch(q, r);
      ASSERT_EQ(got.size(), expected.size()) << "r=" << r;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
  }
}

TEST(MvpForestTest, KnnMatchesLinearScan) {
  const auto data = dataset::UniformVectors(400, 5, 7);
  Forest forest{L2(), SmallOptions()};
  for (const auto& v : data) forest.Insert(v);
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(8, 5, 9);
  for (const auto& q : queries) {
    for (const std::size_t k : {1u, 7u, 25u}) {
      const auto got = forest.KnnSearch(q, k);
      const auto expected = reference.KnnSearch(q, k);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k;
      }
    }
  }
}

TEST(MvpForestTest, ForestWidthStaysLogarithmic) {
  Forest forest{L2(), SmallOptions()};
  const auto data = dataset::UniformVectors(2000, 4, 11);
  for (const auto& v : data) forest.Insert(v);
  // 2000 / 16 = 125 buffer flushes; Bentley-Saxe keeps <= log2(125)+1 trees.
  EXPECT_LE(forest.num_trees(), 8u);
  EXPECT_LT(forest.buffered(), 16u);
}

TEST(MvpForestTest, EraseRemovesFromResults) {
  Forest forest{L2(), SmallOptions()};
  const auto data = dataset::UniformVectors(100, 4, 13);
  std::vector<std::size_t> ids;
  for (const auto& v : data) ids.push_back(forest.Insert(v));
  ASSERT_TRUE(forest.Erase(ids[42]).ok());
  EXPECT_EQ(forest.size(), 99u);
  const auto hits = forest.RangeSearch(data[42], 0.0);
  for (const auto& hit : hits) EXPECT_NE(hit.id, ids[42]);
}

TEST(MvpForestTest, EraseUnknownIdFails) {
  Forest forest{L2(), SmallOptions()};
  EXPECT_EQ(forest.Erase(0).code(), StatusCode::kNotFound);
  forest.Insert({1, 2});
  EXPECT_TRUE(forest.Erase(0).ok());
  EXPECT_EQ(forest.Erase(0).code(), StatusCode::kNotFound);  // double erase
  EXPECT_EQ(forest.Erase(99).code(), StatusCode::kNotFound);
}

TEST(MvpForestTest, MixedInsertEraseMatchesReference) {
  Rng rng(17);
  Forest forest{L2(), SmallOptions()};
  std::vector<Vector> live_objects;
  std::vector<std::size_t> live_ids;
  const auto pool = dataset::UniformVectors(600, 4, 19);
  for (const auto& v : pool) {
    const std::size_t id = forest.Insert(v);
    live_objects.push_back(v);
    live_ids.push_back(id);
    // Randomly erase ~1/3 of the time.
    if (rng.NextIndex(3) == 0 && !live_ids.empty()) {
      const std::size_t victim = rng.NextIndex(live_ids.size());
      ASSERT_TRUE(forest.Erase(live_ids[victim]).ok());
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(victim));
      live_objects.erase(live_objects.begin() +
                         static_cast<std::ptrdiff_t>(victim));
    }
  }
  ASSERT_EQ(forest.size(), live_ids.size());
  scan::LinearScan<Vector, L2> reference(live_objects, L2());
  const auto queries = dataset::UniformQueryVectors(10, 4, 21);
  for (const auto& q : queries) {
    for (const double r : {0.1, 0.5, 1.0}) {
      const auto got = forest.RangeSearch(q, r);
      const auto expected = reference.RangeSearch(q, r);
      ASSERT_EQ(got.size(), expected.size()) << "r=" << r;
      // Compare distances (ids differ: reference reindexes).
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
    for (const std::size_t k : {1u, 10u}) {
      const auto got = forest.KnnSearch(q, k);
      const auto expected = reference.KnnSearch(q, k);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
  }
}

TEST(MvpForestTest, HeavyDeletionTriggersCompaction) {
  Forest forest{L2(), SmallOptions()};
  const auto data = dataset::UniformVectors(512, 4, 23);
  std::vector<std::size_t> ids;
  for (const auto& v : data) ids.push_back(forest.Insert(v));
  // Erase 80%: tombstones must not accumulate past the threshold.
  for (std::size_t i = 0; i < 410; ++i) {
    ASSERT_TRUE(forest.Erase(ids[i]).ok());
  }
  EXPECT_EQ(forest.size(), 102u);
  // After compaction the forest holds one tree whose size is the live
  // count; all erased points physically gone from query paths.
  const auto all = forest.RangeSearch(Vector(4, 0.5), 1e9);
  EXPECT_EQ(all.size(), 102u);
}

TEST(MvpForestTest, CompactMergesToOneTree) {
  Forest forest{L2(), SmallOptions()};
  const auto data = dataset::UniformVectors(300, 4, 29);
  for (const auto& v : data) forest.Insert(v);
  EXPECT_GT(forest.num_trees() + (forest.buffered() > 0 ? 1 : 0), 1u);
  forest.Compact();
  EXPECT_EQ(forest.num_trees(), 1u);
  EXPECT_EQ(forest.buffered(), 0u);
  EXPECT_EQ(forest.RangeSearch(Vector(4, 0.5), 1e9).size(), 300u);
}

TEST(MvpForestTest, QueriesBeatLinearScanCost) {
  Forest forest{L2(), SmallOptions()};
  const auto data = dataset::UniformVectors(4000, 10, 31);
  for (const auto& v : data) forest.Insert(v);
  forest.Compact();
  SearchStats stats;
  forest.RangeSearch(data[0], 0.15, &stats);
  EXPECT_LT(stats.distance_computations, 4000u);
}

TEST(MvpForestTest, LongRandomizedStressAgainstReference) {
  // Deterministic fuzz: thousands of interleaved insert/erase/query ops
  // checked against a naive mirror. Exercises level merges, tombstone
  // attribution across id ranges, compactions, and buffer churn together.
  Rng rng(97);
  Forest::Options options = SmallOptions();
  options.buffer_capacity = 8;
  Forest forest{L2(), options};
  std::vector<std::pair<std::size_t, Vector>> mirror;  // (id, object)
  const auto pool = dataset::UniformVectors(1500, 3, 99);
  std::size_t next = 0;
  for (int op = 0; op < 3000; ++op) {
    const auto kind = rng.NextIndex(10);
    if (kind < 6 && next < pool.size()) {  // 60% insert
      const std::size_t id = forest.Insert(pool[next]);
      mirror.emplace_back(id, pool[next]);
      ++next;
    } else if (kind < 8 && !mirror.empty()) {  // 20% erase
      const std::size_t victim = rng.NextIndex(mirror.size());
      ASSERT_TRUE(forest.Erase(mirror[victim].first).ok());
      mirror.erase(mirror.begin() + static_cast<std::ptrdiff_t>(victim));
    } else if (op % 97 == 0) {  // occasional full query check
      const Vector q{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
      const auto got = forest.RangeSearch(q, 0.4);
      std::vector<Neighbor> expected;
      L2 d;
      for (const auto& [id, obj] : mirror) {
        const double dist = d(q, obj);
        if (dist <= 0.4) expected.push_back(Neighbor{id, dist});
      }
      std::sort(expected.begin(), expected.end(), NeighborLess);
      ASSERT_EQ(got.size(), expected.size()) << "op " << op;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
      }
    }
  }
  EXPECT_EQ(forest.size(), mirror.size());
}

TEST(MvpForestTest, BufferCapacityOneDegeneratesGracefully) {
  Forest::Options options = SmallOptions();
  options.buffer_capacity = 1;  // every insert triggers a merge cascade
  Forest forest{L2(), options};
  const auto data = dataset::UniformVectors(64, 3, 51);
  for (const auto& v : data) forest.Insert(v);
  EXPECT_EQ(forest.size(), 64u);
  EXPECT_LE(forest.num_trees(), 7u);  // log2(64) + 1
  scan::LinearScan<Vector, L2> reference(data, L2());
  const Vector q{0.5, 0.5, 0.5};
  EXPECT_EQ(forest.RangeSearch(q, 0.4).size(),
            reference.RangeSearch(q, 0.4).size());
}

TEST(MvpForestTest, EraseEverythingThenReinsert) {
  Forest forest{L2(), SmallOptions()};
  const auto data = dataset::UniformVectors(100, 3, 53);
  std::vector<std::size_t> ids;
  for (const auto& v : data) ids.push_back(forest.Insert(v));
  for (const std::size_t id : ids) ASSERT_TRUE(forest.Erase(id).ok());
  EXPECT_EQ(forest.size(), 0u);
  EXPECT_TRUE(forest.RangeSearch(Vector{0, 0, 0}, 1e9).empty());
  // Fresh inserts get fresh ids and work normally.
  const std::size_t id = forest.Insert(Vector{1, 2, 3});
  EXPECT_EQ(id, 100u);
  const auto hits = forest.RangeSearch(Vector{1, 2, 3}, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 100u);
}

TEST(MvpForestTest, KnnStatsAreReported) {
  Forest forest{L2(), SmallOptions()};
  for (const auto& v : dataset::UniformVectors(200, 4, 57)) forest.Insert(v);
  SearchStats stats;
  forest.KnnSearch(Vector{0.5, 0.5, 0.5, 0.5}, 5, &stats);
  EXPECT_GT(stats.distance_computations, 0u);
  EXPECT_LE(stats.distance_computations, 400u);  // bounded by ~n + overfetch
}

TEST(MvpForestTest, SerializeRoundTripPreservesEverything) {
  Forest forest{L2(), SmallOptions()};
  const auto data = dataset::UniformVectors(300, 4, 41);
  std::vector<std::size_t> ids;
  for (const auto& v : data) ids.push_back(forest.Insert(v));
  for (std::size_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(forest.Erase(ids[i * 3]).ok());
  }
  BinaryWriter writer;
  ASSERT_TRUE(forest.Serialize(&writer, VectorCodec()).ok());
  BinaryReader reader(writer.buffer());
  auto loaded =
      Forest::Deserialize(&reader, L2(), VectorCodec(), SmallOptions());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(loaded.value().size(), forest.size());
  EXPECT_EQ(loaded.value().num_trees(), forest.num_trees());
  EXPECT_EQ(loaded.value().buffered(), forest.buffered());
  const auto queries = dataset::UniformQueryVectors(6, 4, 43);
  for (const auto& q : queries) {
    const auto a = forest.RangeSearch(q, 0.6);
    const auto b = loaded.value().RangeSearch(q, 0.6);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_DOUBLE_EQ(a[i].distance, b[i].distance);
    }
  }
  // The loaded forest keeps working as a dynamic index.
  const std::size_t new_id = loaded.value().Insert(Vector{9, 9, 9, 9});
  EXPECT_EQ(new_id, 300u);
  EXPECT_TRUE(loaded.value().Erase(new_id).ok());
}

TEST(MvpForestTest, DeserializeRejectsCorruptInput) {
  Forest forest{L2(), SmallOptions()};
  for (const auto& v : dataset::UniformVectors(100, 3, 47)) forest.Insert(v);
  BinaryWriter writer;
  ASSERT_TRUE(forest.Serialize(&writer, VectorCodec()).ok());
  const auto bytes = writer.TakeBuffer();
  for (const double fraction : {0.1, 0.5, 0.9}) {
    BinaryReader reader(
        bytes.data(),
        static_cast<std::size_t>(static_cast<double>(bytes.size()) * fraction));
    EXPECT_FALSE(
        Forest::Deserialize(&reader, L2(), VectorCodec(), SmallOptions())
            .ok());
  }
}

TEST(MvpForestTest, StableIdsSurviveMerges) {
  Forest forest{L2(), SmallOptions()};
  const auto data = dataset::UniformVectors(200, 4, 37);
  std::vector<std::size_t> ids;
  for (const auto& v : data) ids.push_back(forest.Insert(v));
  // Exact-match query for each point must return its original id.
  for (std::size_t i = 0; i < data.size(); i += 17) {
    const auto hits = forest.RangeSearch(data[i], 0.0);
    ASSERT_FALSE(hits.empty());
    bool found = false;
    for (const auto& hit : hits) found = found || hit.id == ids[i];
    EXPECT_TRUE(found) << "id " << ids[i];
  }
}

TEST(MvpForestTest, ContainsTracksLiveness) {
  Forest forest{L2(), SmallOptions()};
  const auto data = dataset::UniformVectors(60, 4, 41);
  for (const auto& v : data) forest.Insert(v);

  EXPECT_FALSE(forest.contains(60));   // never issued
  EXPECT_FALSE(forest.contains(999));  // far out of range
  for (std::size_t id = 0; id < 60; ++id) EXPECT_TRUE(forest.contains(id));

  ASSERT_TRUE(forest.Erase(5).ok());
  ASSERT_TRUE(forest.Erase(59).ok());  // one merged, one likely buffered
  EXPECT_FALSE(forest.contains(5));
  EXPECT_FALSE(forest.contains(59));
  EXPECT_TRUE(forest.contains(6));

  // A re-issued id is a NEW id; the erased ones stay dead forever.
  const std::size_t fresh = forest.Insert(data[5]);
  EXPECT_EQ(fresh, 60u);
  EXPECT_TRUE(forest.contains(fresh));
  EXPECT_FALSE(forest.contains(5));
}

TEST(MvpForestTest, ForEachLiveVisitsBufferAndEveryLevelExactlyOnce) {
  Forest forest{L2(), SmallOptions()};
  const auto data = dataset::UniformVectors(150, 4, 43);
  for (const auto& v : data) forest.Insert(v);
  // Erase a spread of ids so some levels carry tombstones, then insert a
  // few more so the buffer is non-empty: the visit must cover the merged
  // levels AND the unmerged buffer, skipping exactly the tombstones.
  std::set<std::size_t> erased;
  for (std::size_t id = 0; id < 150; id += 13) {
    ASSERT_TRUE(forest.Erase(id).ok());
    erased.insert(id);
  }
  const auto extra = dataset::UniformVectors(5, 4, 44);
  for (const auto& v : extra) forest.Insert(v);
  ASSERT_GT(forest.buffered(), 0u);
  ASSERT_GT(forest.num_trees(), 0u);

  std::map<std::size_t, Vector> seen;
  forest.ForEachLive([&](std::size_t id, const Vector& object) {
    EXPECT_TRUE(seen.emplace(id, object).second) << "id visited twice: " << id;
  });
  ASSERT_EQ(seen.size(), forest.size());
  for (std::size_t id = 0; id < 155; ++id) {
    if (erased.count(id)) {
      EXPECT_FALSE(seen.count(id)) << id;
    } else {
      ASSERT_TRUE(seen.count(id)) << id;
      const Vector& want = id < 150 ? data[id] : extra[id - 150];
      EXPECT_EQ(seen[id], want) << id;
    }
  }
}

TEST(MvpForestTest, MergeMathKeepsLevelsContiguousAndComplete) {
  // The Bentley-Saxe invariant the overlay's checkpoint leans on: after any
  // insert pattern, every issued id is either buffered, in exactly one
  // level, or tombstoned — and each level holds a contiguous id range (so
  // erases can be attributed to levels by range). Exercised across the
  // doubling boundaries (buffer capacity 16: merges at 16, 32, 64, ...).
  Forest forest{L2(), SmallOptions()};
  const auto data = dataset::UniformVectors(300, 4, 47);
  for (std::size_t i = 0; i < data.size(); ++i) {
    forest.Insert(data[i]);
    if (i == 15 || i == 16 || i == 31 || i == 63 || i == 127 || i == 255 ||
        i == 299) {
      std::size_t visited = 0;
      forest.ForEachLive([&](std::size_t, const Vector&) { ++visited; });
      EXPECT_EQ(visited, i + 1) << "after insert " << i;
      EXPECT_EQ(forest.size(), i + 1);
      EXPECT_EQ(forest.buffered() + 0u, forest.buffered());
      EXPECT_LE(forest.buffered(), SmallOptions().buffer_capacity);
    }
  }
  // Width stays logarithmic in n/buffer_capacity.
  EXPECT_LE(forest.num_trees(), 6u);
}

}  // namespace
}  // namespace mvp::dynamic

#include "dataset/pgm.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "dataset/image_gen.h"

namespace mvp::dataset {
namespace {

Image TestImage() {
  Image img;
  img.width = 3;
  img.height = 2;
  img.pixels = {0, 128, 255, 10, 20, 30};
  return img;
}

TEST(PgmTest, EncodeProducesValidHeader) {
  const auto bytes = EncodePgm(TestImage());
  const std::string header(bytes.begin(), bytes.begin() + 11);
  EXPECT_EQ(header, "P5\n3 2\n255\n");
  EXPECT_EQ(bytes.size(), 11u + 6u);
}

TEST(PgmTest, RoundTrip) {
  const Image original = TestImage();
  auto decoded = DecodePgm(EncodePgm(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), original);
}

TEST(PgmTest, RoundTripPhantom) {
  MriParams params;
  params.count = 1;
  params.subjects = 1;
  params.width = params.height = 48;
  const Image scan = MriPhantoms(params, 7)[0];
  auto decoded = DecodePgm(EncodePgm(scan));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), scan);
}

TEST(PgmTest, HandlesCommentsAndWhitespace) {
  const std::string text = "P5 # a comment\n# another comment\n 3\t2 \n255 ";
  std::vector<std::uint8_t> bytes(text.begin(), text.end());
  bytes.insert(bytes.end(), {1, 2, 3, 4, 5, 6});
  auto decoded = DecodePgm(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().width, 3);
  EXPECT_EQ(decoded.value().height, 2);
  EXPECT_EQ(decoded.value().pixels[5], 6);
}

TEST(PgmTest, RejectsAsciiVariant) {
  const std::string text = "P2\n2 2\n255\n0 1 2 3\n";
  auto decoded = DecodePgm({text.begin(), text.end()});
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotSupported);
}

TEST(PgmTest, Rejects16BitMaxval) {
  const std::string text = "P5\n2 2\n65535\n";
  auto decoded = DecodePgm({text.begin(), text.end()});
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotSupported);
}

TEST(PgmTest, RejectsTruncatedPixels) {
  auto bytes = EncodePgm(TestImage());
  bytes.resize(bytes.size() - 2);
  EXPECT_EQ(DecodePgm(bytes).status().code(), StatusCode::kCorruption);
}

TEST(PgmTest, RejectsGarbage) {
  EXPECT_FALSE(DecodePgm({}).ok());
  const std::string text = "JFIF not a pgm";
  EXPECT_FALSE(DecodePgm({text.begin(), text.end()}).ok());
  const std::string bad_dims = "P5\n0 5\n255\n";
  EXPECT_EQ(DecodePgm({bad_dims.begin(), bad_dims.end()}).status().code(),
            StatusCode::kCorruption);
  const std::string neg = "P5\n-3 2\n255\n";
  EXPECT_FALSE(DecodePgm({neg.begin(), neg.end()}).ok());
}

TEST(PgmTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mvp_pgm_test.pgm";
  const Image original = TestImage();
  ASSERT_TRUE(WritePgm(path, original).ok());
  auto loaded = ReadPgm(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), original);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mvp::dataset

// Loopback integration tests for the network serving subsystem: a real
// Server on 127.0.0.1 with real sockets, driven through the real Client.
// The core claim is transparency — a query answered over the wire returns
// bit-identical neighbors AND bit-identical SearchStats to the same query
// run in-process through serve::RunBatch on the same snapshot, and the
// serving disciplines (deadlines, per-tenant clamps, admission shedding,
// ServeStats) survive the network hop intact.

#include "fault/fault_fs.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "common/codec.h"
#include "dataset/vector_gen.h"
#include "dynamic/dynamic_overlay.h"
#include "fault/failpoint.h"
#include "metric/lp.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/executor.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"
#include "snapshot/snapshot_store.h"

namespace mvp::net {
namespace {

using metric::L2;
using metric::Vector;
using Index = serve::ShardedMvpIndex<Vector, L2>;

std::vector<Vector> LeaderData() { return dataset::UniformVectors(300, 4, 7); }

Index BuildLeaderIndex() {
  Index::Options options;
  options.num_shards = 2;
  options.tree.order = 3;
  options.tree.leaf_capacity = 8;
  options.tree.num_path_distances = 2;
  auto built = Index::Build(LeaderData(), L2(), options);
  EXPECT_TRUE(built.ok());
  return std::move(built).ValueOrDie();
}

/// A deterministic mixed workload: alternating range and k-NN queries, no
/// deadlines — every outcome is a pure function of the snapshot.
std::vector<WireQuery> MixedQueries(std::size_t n) {
  const auto points = dataset::UniformQueryVectors(n, 4, 23);
  std::vector<WireQuery> queries;
  for (std::size_t i = 0; i < n; ++i) {
    WireQuery q;
    q.point = points[i];
    if (i % 2 == 0) {
      q.kind = 0;
      q.radius = 0.45 + 0.1 * static_cast<double>(i % 3);
    } else {
      q.kind = 1;
      q.k = 1 + i % 7;
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

/// The same workload expressed for the in-process executor.
std::vector<serve::BatchQuery<Vector>> InProcessQueries(
    const std::vector<WireQuery>& wire) {
  std::vector<serve::BatchQuery<Vector>> batch;
  for (const WireQuery& w : wire) {
    serve::BatchQuery<Vector> q;
    q.kind = w.kind == 1 ? serve::BatchQuery<Vector>::Kind::kKnn
                         : serve::BatchQuery<Vector>::Kind::kRange;
    q.object = w.point;
    q.radius = w.radius;
    q.k = static_cast<std::size_t>(w.k);
    batch.push_back(std::move(q));
  }
  return batch;
}

void ExpectOutcomeMatches(const WireOutcome& remote,
                          const serve::QueryOutcome& local, std::size_t i) {
  EXPECT_EQ(remote.status_code,
            static_cast<std::uint32_t>(local.status.code()))
      << "query " << i;
  EXPECT_EQ(remote.partial, local.partial) << "query " << i;
  EXPECT_EQ(remote.distance_computations, local.distance_computations)
      << "query " << i;
  EXPECT_EQ(remote.search.distance_computations,
            local.search.distance_computations)
      << "query " << i;
  EXPECT_EQ(remote.search.nodes_visited, local.search.nodes_visited)
      << "query " << i;
  EXPECT_EQ(remote.search.leaf_points_seen, local.search.leaf_points_seen)
      << "query " << i;
  EXPECT_EQ(remote.search.leaf_points_filtered,
            local.search.leaf_points_filtered)
      << "query " << i;
  ASSERT_EQ(remote.neighbors.size(), local.neighbors.size()) << "query " << i;
  for (std::size_t j = 0; j < remote.neighbors.size(); ++j) {
    EXPECT_EQ(remote.neighbors[j].id, local.neighbors[j].id)
        << "query " << i << " neighbor " << j;
    EXPECT_EQ(remote.neighbors[j].distance, local.neighbors[j].distance)
        << "query " << i << " neighbor " << j;
  }
}

class NetLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/net_loopback_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::Failpoints::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string StorePath(const std::string& name) { return dir_ + "/" + name; }

  /// Starts a server hosting one static flat collection over `store_dir`.
  std::unique_ptr<Server> StartStatic(const std::string& store_dir,
                                      CollectionOptions extra = {}) {
    extra.name = extra.name.empty() ? "vecs" : extra.name;
    extra.dir = store_dir;
    ServerOptions options;
    options.collections.push_back(std::move(extra));
    auto server = Server::Start(std::move(options));
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return server.ok() ? std::move(server).ValueOrDie() : nullptr;
  }

  Client MustConnect(const Server& server) {
    auto client = Client::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).ValueOrDie();
  }

  std::string dir_;
};

TEST_F(NetLoopbackTest, PingAndListCollections) {
  const std::string store_dir = StorePath("leader");
  snapshot::SnapshotStore store(store_dir);
  auto saved = store.SaveFlat(BuildLeaderIndex());
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();

  auto server = StartStatic(store_dir);
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  EXPECT_TRUE(client.Ping().ok());

  auto collections = client.ListCollections();
  ASSERT_TRUE(collections.ok()) << collections.status().ToString();
  ASSERT_EQ(collections.value().size(), 1u);
  const WireCollectionInfo& info = collections.value()[0];
  EXPECT_EQ(info.name, "vecs");
  EXPECT_EQ(info.metric, "l2");
  EXPECT_FALSE(info.dynamic);
  EXPECT_EQ(info.generation, 1u);
  EXPECT_EQ(info.size, LeaderData().size());
  server->Stop();
}

// The tentpole transparency claim: results AND SearchStats that cross the
// wire are bit-identical to the in-process executor over the same
// generation — single-query RPC and the streaming batch path both.
TEST_F(NetLoopbackTest, RemoteResultsBitIdenticalToInProcess) {
  const std::string store_dir = StorePath("leader");
  snapshot::SnapshotStore store(store_dir);
  ASSERT_TRUE(store.SaveFlat(BuildLeaderIndex()).ok());

  auto server = StartStatic(store_dir);
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);

  const auto queries = MixedQueries(24);
  auto remote = client.BatchQuery("vecs", queries);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_EQ(remote.value().size(), queries.size());

  // In-process baseline over the same committed generation.
  serve::ThreadPool pool(4);
  auto loaded = store.OpenFlat<L2>(L2(), &pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto local = serve::RunBatch(loaded.value().index,
                                     InProcessQueries(queries), &pool);
  ASSERT_EQ(local.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ExpectOutcomeMatches(remote.value()[i], local[i], i);
  }

  // The single-query RPC goes through the same executor path.
  for (const std::size_t i : {std::size_t{0}, std::size_t{5}}) {
    auto one = client.Query("vecs", queries[i]);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    ExpectOutcomeMatches(one.value(), local[i], i);
  }
  server->Stop();
}

// A dynamic collection recovers its WAL at server start and serves the
// live set; results match a brute-force scan with the same metric.
TEST_F(NetLoopbackTest, DynamicCollectionServesRecoveredOverlay) {
  const std::string store_dir = StorePath("live");
  std::filesystem::create_directories(store_dir);
  const auto data = dataset::UniformVectors(120, 4, 41);
  {
    // Populate, then destroy: the server must recover from the WAL alone.
    auto overlay = dynamic::DynamicOverlay<Vector, L2, VectorCodec>::Open(
        store_dir, L2(), VectorCodec{});
    ASSERT_TRUE(overlay.ok()) << overlay.status().ToString();
    for (const Vector& v : data) {
      ASSERT_TRUE(overlay.value()->Insert(v).ok());
    }
  }

  CollectionOptions collection;
  collection.name = "live";
  collection.dynamic = true;
  auto server = StartStatic(store_dir, collection);
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);

  auto collections = client.ListCollections();
  ASSERT_TRUE(collections.ok());
  ASSERT_EQ(collections.value().size(), 1u);
  EXPECT_TRUE(collections.value()[0].dynamic);
  EXPECT_EQ(collections.value()[0].size, data.size());

  const auto points = dataset::UniformQueryVectors(8, 4, 51);
  L2 metric;
  for (const Vector& point : points) {
    WireQuery q;
    q.kind = 1;
    q.k = 5;
    q.point = point;
    auto outcome = client.Query("live", q);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome.value().status_code, 0u);

    // Brute-force 5-NN by (distance, insert-order id).
    std::vector<Neighbor> expected;
    for (std::size_t id = 0; id < data.size(); ++id) {
      expected.push_back(Neighbor{id, metric(point, data[id])});
    }
    std::sort(expected.begin(), expected.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.distance != b.distance ? a.distance < b.distance
                                                : a.id < b.id;
              });
    expected.resize(5);
    ASSERT_EQ(outcome.value().neighbors.size(), expected.size());
    for (std::size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(outcome.value().neighbors[j].id, expected[j].id);
      EXPECT_EQ(outcome.value().neighbors[j].distance, expected[j].distance);
    }
  }
  server->Stop();
}

// Deadlines travel the wire: a zero timeout is shed dead-on-arrival, and a
// tenant's max-timeout clamp expires even a client that asked for none.
TEST_F(NetLoopbackTest, DeadlinesAndTenantClampOverTheWire) {
  const std::string store_dir = StorePath("leader");
  snapshot::SnapshotStore store(store_dir);
  ASSERT_TRUE(store.SaveFlat(BuildLeaderIndex()).ok());

  CollectionOptions clamped;
  clamped.name = "clamped";
  clamped.dir = store_dir;
  // Every query's budget collapses to zero — shed dead-on-arrival, which
  // (unlike a tiny-but-nonzero clamp) is deterministic by contract.
  clamped.max_timeout_ns = 0;
  ServerOptions options;
  CollectionOptions plain;
  plain.name = "vecs";
  plain.dir = store_dir;
  options.collections.push_back(plain);
  options.collections.push_back(clamped);
  auto server = Server::Start(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Client client = MustConnect(*server.value());

  // A zero budget is shed before any index work — by the executor's
  // dead-on-arrival check (DeadlineExceeded) or, when other zero-budget
  // queries are momentarily in flight, by admission's would-be-DOA
  // estimate (ResourceExhausted). Which one wins the race varies; that the
  // query never runs does not.
  auto expect_all_shed = [](const std::vector<WireOutcome>& outcomes) {
    for (const WireOutcome& outcome : outcomes) {
      EXPECT_TRUE(
          outcome.status_code ==
              static_cast<std::uint32_t>(StatusCode::kDeadlineExceeded) ||
          outcome.status_code ==
              static_cast<std::uint32_t>(StatusCode::kResourceExhausted))
          << outcome.status_message;
      EXPECT_TRUE(outcome.neighbors.empty());
      EXPECT_EQ(outcome.distance_computations, 0u);
    }
  };

  auto queries = MixedQueries(6);
  for (WireQuery& q : queries) q.timeout_ns = 0;
  auto doa = client.BatchQuery("vecs", queries);
  ASSERT_TRUE(doa.ok()) << doa.status().ToString();
  expect_all_shed(doa.value());

  // No client-side timeout at all — the tenant clamp still applies.
  auto clamped_queries = MixedQueries(6);
  auto expired = client.BatchQuery("clamped", clamped_queries);
  ASSERT_TRUE(expired.ok()) << expired.status().ToString();
  expect_all_shed(expired.value());

  // Stats RPC: both tenants accounted separately, every query refused.
  auto stats = client.Stats("clamped");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().queries, clamped_queries.size());
  EXPECT_EQ(stats.value().deadline_exceeded + stats.value().shed,
            clamped_queries.size());
  EXPECT_EQ(stats.value().ok, 0u);
  server.value()->Stop();
}

// Admission budgets travel the wire: a tenant with a zero in-flight budget
// sheds everything as ResourceExhausted, and the Stats RPC reports it.
TEST_F(NetLoopbackTest, AdmissionSheddingOverTheWire) {
  const std::string store_dir = StorePath("leader");
  snapshot::SnapshotStore store(store_dir);
  ASSERT_TRUE(store.SaveFlat(BuildLeaderIndex()).ok());

  CollectionOptions collection;
  collection.name = "vecs";
  collection.admission.max_in_flight = 0;  // shed unconditionally
  auto server = StartStatic(store_dir, collection);
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);

  const auto queries = MixedQueries(16);
  auto shed = client.BatchQuery("vecs", queries);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  for (const WireOutcome& outcome : shed.value()) {
    EXPECT_EQ(outcome.status_code,
              static_cast<std::uint32_t>(StatusCode::kResourceExhausted));
    EXPECT_TRUE(outcome.neighbors.empty());
  }
  auto stats = client.Stats("vecs");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().queries, queries.size());
  EXPECT_EQ(stats.value().shed, queries.size());
  server->Stop();
}

// ServeStats accumulate across RPCs and the snapshot that crosses the wire
// matches the workload exactly (deterministic: no deadlines, no shedding).
TEST_F(NetLoopbackTest, StatsRpcMatchesWorkload) {
  const std::string store_dir = StorePath("leader");
  snapshot::SnapshotStore store(store_dir);
  ASSERT_TRUE(store.SaveFlat(BuildLeaderIndex()).ok());

  auto server = StartStatic(store_dir);
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);

  const auto queries = MixedQueries(20);
  auto remote = client.BatchQuery("vecs", queries);
  ASSERT_TRUE(remote.ok());
  std::uint64_t distances = 0, results = 0;
  for (const WireOutcome& outcome : remote.value()) {
    ASSERT_EQ(outcome.status_code, 0u);
    distances += outcome.distance_computations;
    results += outcome.neighbors.size();
  }

  auto stats = client.Stats("vecs");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().queries, queries.size());
  EXPECT_EQ(stats.value().ok, queries.size());
  EXPECT_EQ(stats.value().shed, 0u);
  EXPECT_EQ(stats.value().deadline_exceeded, 0u);
  EXPECT_EQ(stats.value().distance_computations, distances);
  EXPECT_EQ(stats.value().results_returned, results);
  server->Stop();
}

TEST_F(NetLoopbackTest, UnknownCollectionIsNotFound) {
  const std::string store_dir = StorePath("leader");
  snapshot::SnapshotStore store(store_dir);
  ASSERT_TRUE(store.SaveFlat(BuildLeaderIndex()).ok());

  auto server = StartStatic(store_dir);
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);

  WireQuery q = MixedQueries(1)[0];
  auto outcome = client.Query("nope", q);
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
  // The connection survives a per-request error.
  EXPECT_TRUE(client.Ping().ok());
  server->Stop();
}

// A static collection over an empty store starts up, serves NotFound, and
// begins serving after a generation is committed + Refresh hot-swaps it —
// the follower lifecycle without the network pull.
TEST_F(NetLoopbackTest, EmptyCollectionRefreshLifecycle) {
  const std::string store_dir = StorePath("empty");
  auto server = StartStatic(store_dir);
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);

  auto collections = client.ListCollections();
  ASSERT_TRUE(collections.ok());
  EXPECT_EQ(collections.value()[0].generation, 0u);
  EXPECT_EQ(collections.value()[0].size, 0u);

  WireQuery q = MixedQueries(1)[0];
  auto before = client.Query("vecs", q);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before.value().status_code,
            static_cast<std::uint32_t>(StatusCode::kNotFound));

  snapshot::SnapshotStore store(store_dir);
  ASSERT_TRUE(store.SaveFlat(BuildLeaderIndex()).ok());
  ASSERT_TRUE(server->Refresh("vecs").ok());

  auto after = client.Query("vecs", q);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().status_code, 0u);
  auto listed = client.ListCollections();
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed.value()[0].generation, 1u);
  EXPECT_EQ(listed.value()[0].size, LeaderData().size());
  server->Stop();
}

}  // namespace
}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

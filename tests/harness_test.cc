#include <gtest/gtest.h>

#include <sstream>

#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "harness/table.h"
#include "harness/workload.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::harness {
namespace {

using metric::L2;
using metric::Vector;

TEST(TableTest, AlignedTextOutput) {
  Table table({"structure", "0.15", "0.30"});
  table.AddRow({"vpt(2)", "857.2", "7790.4"});
  table.AddRow("mvpt(3,80)", {158.3, 2687.5}, 1);
  const std::string text = table.ToText();
  EXPECT_NE(text.find("structure"), std::string::npos);
  EXPECT_NE(text.find("857.2"), std::string::npos);
  EXPECT_NE(text.find("2687.5"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.AddRow({"x", "1"});
  EXPECT_EQ(table.ToCsv(), "a,b\nx,1\n");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(10.0, 0), "10");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(TableTest, FigureHeader) {
  std::ostringstream os;
  PrintFigureHeader(os, "Figure 8", "caption", "workload");
  EXPECT_NE(os.str().find("Figure 8: caption"), std::string::npos);
  EXPECT_NE(os.str().find("workload: workload"), std::string::npos);
}

TEST(WorkloadTest, LinearScanSweepCostsExactlyN) {
  const auto data = dataset::UniformVectors(123, 5, 1);
  const auto queries = dataset::UniformQueryVectors(7, 5, 2);
  auto build = [&](std::uint64_t) {
    return scan::LinearScan<Vector, L2>(data, L2());
  };
  const auto cells = RangeCostSweep(build, queries, {0.1, 0.5, 2.0}, 3);
  ASSERT_EQ(cells.size(), 3u);
  for (const auto& cell : cells) {
    EXPECT_DOUBLE_EQ(cell.avg_distance_computations, 123.0);
  }
  // At a huge radius every point matches.
  const auto all = RangeCostSweep(build, queries, {1e9}, 1);
  EXPECT_DOUBLE_EQ(all[0].avg_result_size, 123.0);
}

TEST(WorkloadTest, SweepAveragesAcrossRunsAndQueries) {
  const auto data = dataset::UniformVectors(500, 8, 3);
  const auto queries = dataset::UniformQueryVectors(5, 8, 4);
  std::size_t builds = 0;
  auto build = [&](std::uint64_t seed) {
    ++builds;
    core::MvpTree<Vector, L2>::Options options;
    options.seed = seed;
    return core::MvpTree<Vector, L2>::Build(data, L2(), options)
        .ValueOrDie();
  };
  const auto cells = RangeCostSweep(build, queries, {0.3, 0.6}, 4);
  EXPECT_EQ(builds, 4u);  // one index per run, shared across radii
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_GT(cells[0].avg_distance_computations, 0.0);
  EXPECT_LE(cells[0].avg_distance_computations,
            cells[1].avg_distance_computations);
  EXPECT_GT(cells[0].avg_construction_distances, 0.0);
}

TEST(WorkloadTest, KnnSweep) {
  const auto data = dataset::UniformVectors(300, 6, 5);
  const auto queries = dataset::UniformQueryVectors(4, 6, 6);
  auto build = [&](std::uint64_t seed) {
    core::MvpTree<Vector, L2>::Options options;
    options.seed = seed;
    return core::MvpTree<Vector, L2>::Build(data, L2(), options)
        .ValueOrDie();
  };
  const auto cells = KnnCostSweep(build, queries, {1, 10}, 2);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_DOUBLE_EQ(cells[0].avg_result_size, 1.0);
  EXPECT_DOUBLE_EQ(cells[1].avg_result_size, 10.0);
  EXPECT_LE(cells[0].avg_distance_computations,
            cells[1].avg_distance_computations);
}

TEST(WorkloadTest, DistanceColumnExtraction) {
  std::vector<SweepCell> cells(2);
  cells[0].avg_distance_computations = 10.5;
  cells[1].avg_distance_computations = 20.5;
  EXPECT_EQ(DistanceColumn(cells), (std::vector<double>{10.5, 20.5}));
}

}  // namespace
}  // namespace mvp::harness

// The acceptance test for crash safety of the snapshot commit path: every
// injected failure point — open, write, short-write, fsync, close, rename,
// for each of the three files the commit touches (shards.mvps, MANIFEST,
// CURRENT), each as both a clean error and a simulated crash — is
// enumerated, and after EVERY one the store must still serve the prior
// generation: load succeeds, generation number unchanged, query results
// bit-identical. Never a corrupt, unloadable, or half-new store.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/serialize.h"
#include "dataset/vector_gen.h"
#include "dynamic/mvp_forest.h"
#include "fault/failpoint.h"
#include "fault/fault_fs.h"
#include "metric/lp.h"
#include "snapshot/snapshot_store.h"

namespace mvp::snapshot {
namespace {

using metric::L2;
using metric::Vector;
using Index = serve::ShardedMvpIndex<Vector, L2>;
using Forest = dynamic::MvpForest<Vector, L2>;

/// One injected failure: a syscall-level failpoint restricted (by path
/// substring) to one of the files the commit writes, failing either with
/// an error return or a simulated crash at that exact syscall.
struct Scenario {
  const char* failpoint;   // "fs/open", "fs/write", ...
  const char* file;        // substring of the path: which file to hit
  bool crash;              // error return vs CrashError unwind
  std::int64_t short_write;  // >= 0: partial progress before failing

  std::string Name() const {
    std::string name = std::string(failpoint) + ":" + file;
    if (short_write >= 0) name += ":short";
    name += crash ? ":crash" : ":error";
    return name;
  }
};

/// The full commit-path enumeration. WriteFileAtomic drives every one of
/// these syscalls for each file; CURRENT's rename is the commit point.
std::vector<Scenario> EnumerateScenarios() {
  const char* kFiles[] = {SnapshotStore::kContainerFile,
                          SnapshotStore::kManifestFile,
                          SnapshotStore::kCurrentFile};
  std::vector<Scenario> scenarios;
  for (const char* file : kFiles) {
    for (const bool crash : {false, true}) {
      scenarios.push_back({"fs/open", file, crash, -1});
      scenarios.push_back({"fs/write", file, crash, -1});
      scenarios.push_back({"fs/write", file, crash, 7});  // partial progress
      scenarios.push_back({"fs/fsync", file, crash, -1});
      scenarios.push_back({"fs/close", file, crash, -1});
      scenarios.push_back({"fs/rename", file, crash, -1});
    }
  }
  return scenarios;
}

class SnapshotFaultpointsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/snapfault_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    fault::Failpoints::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  static Index BuildIndex(std::size_t n, std::uint64_t seed) {
    Index::Options options;
    options.num_shards = 2;
    options.tree.leaf_capacity = 8;
    options.tree.seed = seed;
    auto built =
        Index::Build(dataset::UniformVectors(n, 4, seed + 50), L2(), options);
    EXPECT_TRUE(built.ok());
    return std::move(built).ValueOrDie();
  }

  static fault::FailpointConfig ConfigFor(const Scenario& s) {
    fault::FailpointConfig config;
    config.match = s.file;
    config.crash = s.crash;
    config.short_write = s.short_write;
    return config;
  }

  std::string dir_;
};

TEST_F(SnapshotFaultpointsTest, EveryCommitFailurePointLeavesPriorGenServing) {
  SnapshotStore store(dir_);

  // Stable state: generation 1, with known query answers.
  const Index gen1_index = BuildIndex(150, 1);
  ASSERT_TRUE(store.SaveSharded(gen1_index, VectorCodec()).ok());
  const auto queries = dataset::UniformQueryVectors(6, 4, 9);
  std::vector<std::vector<Neighbor>> expected;
  for (const auto& q : queries) expected.push_back(gen1_index.RangeSearch(q, 0.7));

  const Index gen2_index = BuildIndex(220, 2);
  const auto scenarios = EnumerateScenarios();
  ASSERT_EQ(scenarios.size(), 36u);

  for (const Scenario& s : scenarios) {
    SCOPED_TRACE(s.Name());
    fault::Failpoints::Instance().Arm(s.failpoint, ConfigFor(s));

    // The interrupted commit: either a clean error status or a simulated
    // process death at the armed syscall. Neither may advance CURRENT.
    bool failed = false;
    try {
      const auto saved = store.SaveSharded(gen2_index, VectorCodec());
      failed = !saved.ok();
    } catch (const fault::CrashError&) {
      failed = true;
    }
    EXPECT_TRUE(failed) << "the armed failpoint did not interrupt the save";
    fault::Failpoints::Instance().DisarmAll();

    // Recovery ("restart after the crash"): the store must still name and
    // serve generation 1, answers bit-identical.
    auto loaded = store.LoadSharded<Vector>(L2(), VectorCodec());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().generation, 1u);
    EXPECT_EQ(loaded.value().index.size(), 150u);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto got = loaded.value().index.RangeSearch(queries[i], 0.7);
      ASSERT_EQ(got.size(), expected[i].size()) << "query " << i;
      for (std::size_t j = 0; j < got.size(); ++j) {
        EXPECT_EQ(got[j].id, expected[i][j].id);
        EXPECT_EQ(got[j].distance, expected[i][j].distance);
      }
    }
  }

  // With nothing armed the same save commits, and generation 2 serves.
  ASSERT_TRUE(store.SaveSharded(gen2_index, VectorCodec()).ok());
  auto loaded = store.LoadSharded<Vector>(L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().generation, 2u);
  EXPECT_EQ(loaded.value().index.size(), 220u);
}

TEST_F(SnapshotFaultpointsTest, ForestCommitPathSurvivesTheSameEnumeration) {
  SnapshotStore store(dir_);

  Forest forest{L2()};
  const auto data = dataset::UniformVectors(90, 4, 3);
  for (const auto& v : data) forest.Insert(v);
  ASSERT_TRUE(store.SaveForest(forest, VectorCodec()).ok());
  const auto queries = dataset::UniformQueryVectors(4, 4, 11);
  std::vector<std::vector<Neighbor>> expected;
  for (const auto& q : queries) expected.push_back(forest.RangeSearch(q, 0.7));

  Forest bigger{L2()};
  for (const auto& v : dataset::UniformVectors(140, 4, 4)) bigger.Insert(v);

  for (const Scenario& s : EnumerateScenarios()) {
    SCOPED_TRACE(s.Name());
    fault::Failpoints::Instance().Arm(s.failpoint, ConfigFor(s));
    bool failed = false;
    try {
      failed = !store.SaveForest(bigger, VectorCodec()).ok();
    } catch (const fault::CrashError&) {
      failed = true;
    }
    EXPECT_TRUE(failed) << "the armed failpoint did not interrupt the save";
    fault::Failpoints::Instance().DisarmAll();

    auto loaded = store.LoadForest<Vector>(L2(), VectorCodec());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().generation, 1u);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto got = loaded.value().forest.RangeSearch(queries[i], 0.7);
      ASSERT_EQ(got.size(), expected[i].size()) << "query " << i;
      for (std::size_t j = 0; j < got.size(); ++j) {
        EXPECT_EQ(got[j].id, expected[i][j].id);
        EXPECT_EQ(got[j].distance, expected[i][j].distance);
      }
    }
  }

  ASSERT_TRUE(store.SaveForest(bigger, VectorCodec()).ok());
  auto loaded = store.LoadForest<Vector>(L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().generation, 2u);
  EXPECT_EQ(loaded.value().forest.size(), 140u);
}

TEST_F(SnapshotFaultpointsTest, OrphanedGenerationFromCrashIsPrunable) {
  SnapshotStore store(dir_);
  ASSERT_TRUE(store.SaveSharded(BuildIndex(100, 5), VectorCodec()).ok());

  // Crash at the CURRENT swap: gen-000002 fully written but never named.
  fault::FailpointConfig config;
  config.match = SnapshotStore::kCurrentFile;
  config.crash = true;
  fault::Failpoints::Instance().Arm("fs/rename", config);
  EXPECT_THROW((void)store.SaveSharded(BuildIndex(130, 6), VectorCodec()),
               fault::CrashError);
  fault::Failpoints::Instance().DisarmAll();

  EXPECT_EQ(store.ListGenerations().size(), 2u);  // the orphan is on disk
  EXPECT_EQ(store.PruneStaleGenerations(), 1u);   // and prunable
  EXPECT_EQ(store.ListGenerations().size(), 1u);
  auto loaded = store.LoadSharded<Vector>(L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().generation, 1u);
}

}  // namespace
}  // namespace mvp::snapshot

#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mvp {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.NextU64() == b.NextU64() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleIsRoughlyUniform) {
  Rng rng(99);
  const int kBuckets = 10, kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<int>(rng.NextDouble() * kBuckets)];
  }
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-0.15, 0.15);
    EXPECT_GE(x, -0.15);
    EXPECT_LT(x, 0.15);
  }
}

TEST(RngTest, NextBoundedCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng.NextBounded(7)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, NextBoundedOne) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(23);
  const auto sample = rng.SampleIndices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleIndicesClampsToPopulation) {
  Rng rng(29);
  const auto sample = rng.SampleIndices(5, 50);
  EXPECT_EQ(sample.size(), 5u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SplitMix64MatchesReferenceVector) {
  // Known-answer test against the reference splitmix64 implementation
  // (seed 0); pins the seeding primitive so experiment tables stay
  // reproducible across refactors.
  std::uint64_t state = 0;
  EXPECT_EQ(SplitMix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(SplitMix64(state), 0x06c45d188009454fULL);
}

}  // namespace
}  // namespace mvp

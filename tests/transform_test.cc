#include "transform/filter_index.h"

#include <gtest/gtest.h>

#include "dataset/image.h"
#include "dataset/image_gen.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"
#include "transform/transforms.h"

namespace mvp::transform {
namespace {

using metric::L1;
using metric::L2;
using metric::Vector;

// ---- contraction proofs on sampled data -----------------------------------

TEST(TransformContractionTest, PrefixContractsL2) {
  const auto data = dataset::UniformVectors(40, 20, 1);
  EXPECT_TRUE(
      CheckContractive(data, L2(), PrefixTransform(5), L2()).ok());
  EXPECT_TRUE(
      CheckContractive(data, L2(), PrefixTransform(20), L2()).ok());
}

TEST(TransformContractionTest, PrefixContractsL1) {
  const auto data = dataset::UniformVectors(40, 12, 2);
  EXPECT_TRUE(CheckContractive(data, L1(), PrefixTransform(4), L1()).ok());
}

TEST(TransformContractionTest, BlockMeanContractsL2) {
  const auto data = dataset::UniformVectors(40, 24, 3);
  for (const std::size_t block : {2u, 3u, 8u, 24u}) {
    EXPECT_TRUE(
        CheckContractive(data, L2(), BlockMeanTransform(block), L2()).ok())
        << "block " << block;
  }
}

TEST(TransformContractionTest, BlockMeanPartialLastBlockStillContracts) {
  // dim 14 with block 4: last block has 2 elements; scaling by 1/sqrt(4)
  // remains an underestimate (Cauchy-Schwarz holds a fortiori).
  const auto data = dataset::UniformVectors(40, 14, 9);
  EXPECT_TRUE(CheckContractive(data, L2(), BlockMeanTransform(4), L2()).ok());
  EXPECT_EQ(BlockMeanTransform(4)(data[0]).size(), 4u);  // ceil(14/4)
}

TEST(TransformContractionTest, AverageIntensityContractsImageL1) {
  dataset::MriParams params;
  params.count = 25;
  params.subjects = 5;
  params.width = params.height = 32;
  const auto scans = dataset::MriPhantoms(params, 4);
  EXPECT_TRUE(CheckContractive(scans, dataset::ImageL1(),
                               AverageIntensityTransform(), L1())
                  .ok());
}

TEST(TransformContractionTest, TileSumContractsImageL1) {
  dataset::MriParams params;
  params.count = 25;
  params.subjects = 5;
  params.width = params.height = 32;
  const auto scans = dataset::MriPhantoms(params, 5);
  for (const std::size_t tiles : {1u, 2u, 4u, 8u}) {
    EXPECT_TRUE(CheckContractive(scans, dataset::ImageL1(),
                                 TileSumTransform(tiles), L1())
                    .ok())
        << "tiles " << tiles;
  }
}

TEST(TransformContractionTest, DetectsNonContractiveTransform) {
  // Doubling a coordinate overestimates distances: must be rejected.
  struct Doubler {
    Vector operator()(const Vector& v) const { return Vector{2.0 * v[0]}; }
  };
  const auto data = dataset::UniformVectors(20, 5, 6);
  const auto st = CheckContractive(data, L2(), Doubler(), L2());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not contractive"), std::string::npos);
}

// ---- FilterIndex correctness ----------------------------------------------

using VecFilter = FilterIndex<Vector, L2, PrefixTransform, L2>;

TEST(FilterIndexTest, RangeSearchMatchesLinearScan) {
  const auto data = dataset::UniformVectors(800, 16, 7);
  auto built =
      VecFilter::Build(data, L2(), PrefixTransform(6), L2(), {});
  ASSERT_TRUE(built.ok());
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(8, 16, 9);
  for (const auto& q : queries) {
    for (const double r : {0.0, 0.3, 0.8, 1.5}) {
      const auto got = built.value().RangeSearch(q, r);
      const auto expected = reference.RangeSearch(q, r);
      ASSERT_EQ(got.size(), expected.size()) << "r=" << r;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
  }
}

TEST(FilterIndexTest, KnnMatchesLinearScan) {
  const auto data = dataset::UniformVectors(600, 16, 11);
  auto built =
      VecFilter::Build(data, L2(), PrefixTransform(6), L2(), {});
  ASSERT_TRUE(built.ok());
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(6, 16, 13);
  for (const auto& q : queries) {
    for (const std::size_t k : {1u, 5u, 20u, 700u}) {
      const auto got = built.value().KnnSearch(q, k);
      const auto expected = reference.KnnSearch(q, k);
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k << " i=" << i;
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
  }
}

TEST(FilterIndexTest, StatsSeparateCheapAndExpensiveComputations) {
  const auto data = dataset::UniformVectors(1000, 16, 15);
  auto built =
      VecFilter::Build(data, L2(), PrefixTransform(6), L2(), {});
  ASSERT_TRUE(built.ok());
  FilterSearchStats stats;
  const auto result = built.value().RangeSearch(
      dataset::UniformQueryVectors(1, 16, 17)[0], 0.5, &stats);
  // Every candidate costs exactly one real distance computation; the answer
  // is a subset of the candidates.
  EXPECT_EQ(stats.high_distance_computations, stats.candidates);
  EXPECT_LE(result.size(), stats.candidates);
  EXPECT_GT(stats.low_distance_computations, 0u);
  // The filter must actually filter: candidates << n.
  EXPECT_LT(stats.candidates, 1000u);
}

TEST(FilterIndexTest, ImagePipelineMatchesDirectSearch) {
  dataset::MriParams params;
  params.count = 150;
  params.subjects = 10;
  params.width = params.height = 32;
  const auto scans = dataset::MriPhantoms(params, 19);
  using ImgFilter =
      FilterIndex<dataset::Image, dataset::ImageL1, TileSumTransform, L1>;
  auto built = ImgFilter::Build(scans, dataset::ImageL1(),
                                TileSumTransform(4), L1(), {});
  ASSERT_TRUE(built.ok());
  scan::LinearScan<dataset::Image, dataset::ImageL1> reference(
      scans, dataset::ImageL1());
  const auto query = dataset::MriPhantomScan(params, 19, 3, 777);
  for (const double r : {20.0, 60.0, 150.0}) {
    const auto got = built.value().RangeSearch(query, r);
    const auto expected = reference.RangeSearch(query, r);
    ASSERT_EQ(got.size(), expected.size()) << "r=" << r;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id);
    }
  }
}

TEST(FilterIndexTest, ImageKnnMatchesDirectKnn) {
  dataset::MriParams params;
  params.count = 120;
  params.subjects = 8;
  params.width = params.height = 32;
  const auto scans = dataset::MriPhantoms(params, 23);
  using ImgFilter =
      FilterIndex<dataset::Image, dataset::ImageL1, TileSumTransform, L1>;
  auto built = ImgFilter::Build(scans, dataset::ImageL1(),
                                TileSumTransform(4), L1(), {});
  ASSERT_TRUE(built.ok());
  scan::LinearScan<dataset::Image, dataset::ImageL1> reference(
      scans, dataset::ImageL1());
  const auto query = dataset::MriPhantomScan(params, 23, 5, 900);
  for (const std::size_t k : {1u, 3u, 10u}) {
    const auto got = built.value().KnnSearch(query, k);
    const auto expected = reference.KnnSearch(query, k);
    ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k << " i=" << i;
    }
  }
}

TEST(FilterIndexTest, EmptyAndTinyDatasets) {
  auto empty = VecFilter::Build({}, L2(), PrefixTransform(2), L2(), {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().RangeSearch(Vector{1, 2, 3}, 1.0).empty());
  EXPECT_TRUE(empty.value().KnnSearch(Vector{1, 2, 3}, 3).empty());

  auto one = VecFilter::Build({Vector{1, 2, 3}}, L2(), PrefixTransform(2),
                              L2(), {});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().KnnSearch(Vector{1, 2, 3}, 5).size(), 1u);
}

TEST(FilterIndexTest, TighterTransformYieldsFewerCandidates) {
  // More retained prefix dimensions -> tighter lower bound -> fewer
  // survivors needing an expensive verification.
  const auto data = dataset::UniformVectors(2000, 16, 21);
  const auto q = dataset::UniformQueryVectors(1, 16, 23)[0];
  std::uint64_t prev = ~0ull;
  for (const std::size_t dims : {2u, 6u, 12u}) {
    auto built =
        VecFilter::Build(data, L2(), PrefixTransform(dims), L2(), {});
    ASSERT_TRUE(built.ok());
    FilterSearchStats stats;
    built.value().RangeSearch(q, 0.8, &stats);
    EXPECT_LT(stats.candidates, prev) << "dims " << dims;
    prev = stats.candidates;
  }
}

}  // namespace
}  // namespace mvp::transform

#include "baselines/bk_tree.h"

#include <gtest/gtest.h>

#include "dataset/words.h"
#include "metric/counting.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::baselines {
namespace {

using WordBk = BkTree<std::string, metric::Levenshtein>;

TEST(BkTreeTest, EmptyAndSingle) {
  auto empty = WordBk::Build({}, metric::Levenshtein());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().RangeSearch("query", 2.0).empty());

  auto one = WordBk::Build({"hello"}, metric::Levenshtein());
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().RangeSearch("hello", 0.0).size(), 1u);
  EXPECT_TRUE(one.value().RangeSearch("zzz", 1.0).empty());
}

TEST(BkTreeTest, RangeSearchMatchesLinearScan) {
  auto words = dataset::SyntheticWords(600, 3);
  auto built = WordBk::Build(words, metric::Levenshtein());
  ASSERT_TRUE(built.ok());
  scan::LinearScan<std::string, metric::Levenshtein> reference(
      words, metric::Levenshtein());
  for (const std::size_t probe : {0u, 100u, 599u}) {
    const std::string q = dataset::MutateWord(words[probe], 1, probe);
    for (const double r : {0.0, 1.0, 2.0, 3.0, 5.0}) {
      const auto got = built.value().RangeSearch(q, r);
      const auto expected = reference.RangeSearch(q, r);
      ASSERT_EQ(got.size(), expected.size()) << "r=" << r;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
      }
    }
  }
}

TEST(BkTreeTest, IncrementalInsertMatchesBatchBuild) {
  auto words = dataset::SyntheticWords(200, 5);
  WordBk incremental((metric::Levenshtein()));
  for (const auto& w : words) ASSERT_TRUE(incremental.Insert(w).ok());
  auto batch = WordBk::Build(words, metric::Levenshtein());
  ASSERT_TRUE(batch.ok());
  const std::string q = dataset::MutateWord(words[50], 2, 9);
  const auto a = incremental.RangeSearch(q, 2.0);
  const auto b = batch.value().RangeSearch(q, 2.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
}

TEST(BkTreeTest, KnnMatchesLinearScan) {
  auto words = dataset::SyntheticWords(500, 11);
  auto built = WordBk::Build(words, metric::Levenshtein());
  ASSERT_TRUE(built.ok());
  scan::LinearScan<std::string, metric::Levenshtein> reference(
      words, metric::Levenshtein());
  for (const std::size_t probe : {3u, 250u, 499u}) {
    const std::string q = dataset::MutateWord(words[probe], 2, probe);
    for (const std::size_t k : {1u, 5u, 20u}) {
      const auto got = built.value().KnnSearch(q, k);
      const auto expected = reference.KnnSearch(q, k);
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(BkTreeTest, KnnPrunesComparedToScan) {
  auto words = dataset::SyntheticWords(2000, 13);
  auto built = WordBk::Build(words, metric::Levenshtein());
  ASSERT_TRUE(built.ok());
  SearchStats stats;
  built.value().KnnSearch(dataset::MutateWord(words[0], 1, 1), 3, &stats);
  EXPECT_LT(stats.distance_computations, 2000u);
}

TEST(BkTreeTest, RejectsContinuousMetric) {
  using VecBk = BkTree<metric::Vector, metric::L2>;
  auto built = VecBk::Build({{0.0, 0.0}, {0.3, 0.4}}, metric::L2());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(BkTreeTest, AcceptsIntegerValuedContinuousMetric) {
  // L2 over integer grids with integer distances is fine (3-4-5 triangle).
  using VecBk = BkTree<metric::Vector, metric::L2>;
  auto built = VecBk::Build({{0, 0}, {3, 4}, {6, 8}}, metric::L2());
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RangeSearch({0, 0}, 5.0).size(), 2u);
}

TEST(BkTreeTest, DuplicateWords) {
  std::vector<std::string> words(30, "echo");
  auto built = WordBk::Build(words, metric::Levenshtein());
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RangeSearch("echo", 0.0).size(), 30u);
}

TEST(BkTreeTest, SearchStatsMatchCountingMetric) {
  auto words = dataset::SyntheticWords(300, 7);
  metric::DistanceCounter counter;
  auto counted = metric::MakeCounting(metric::Levenshtein(), counter);
  auto built =
      BkTree<std::string, metric::CountingMetric<metric::Levenshtein>>::Build(
          words, counted);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().Stats().construction_distance_computations,
            counter.count());
  counter.Reset();
  SearchStats stats;
  built.value().RangeSearch("query", 2.0, &stats);
  EXPECT_EQ(stats.distance_computations, counter.count());
  // The whole point of [BK73]: a bounded search touches a fraction of the
  // 300 keys.
  EXPECT_LT(stats.distance_computations, 300u);
}

TEST(BkTreeTest, StatsAccountForAllElements) {
  auto words = dataset::SyntheticWords(150, 9);
  auto built = WordBk::Build(words, metric::Levenshtein());
  ASSERT_TRUE(built.ok());
  const auto stats = built.value().Stats();
  EXPECT_EQ(stats.num_vantage_points, 150u);
  EXPECT_EQ(stats.num_internal_nodes + stats.num_leaf_nodes, 150u);
}

TEST(BkTreeTest, HammingMetricWorks) {
  std::vector<std::string> codes{"0000", "0001", "0011", "0111", "1111",
                                 "1000", "1100", "1010", "0101", "1001"};
  using HamBk = BkTree<std::string, metric::Hamming>;
  auto built = HamBk::Build(codes, metric::Hamming());
  ASSERT_TRUE(built.ok());
  scan::LinearScan<std::string, metric::Hamming> reference(codes,
                                                           metric::Hamming());
  for (const double r : {0.0, 1.0, 2.0}) {
    EXPECT_EQ(built.value().RangeSearch("0000", r).size(),
              reference.RangeSearch("0000", r).size());
  }
}

}  // namespace
}  // namespace mvp::baselines

// High-availability acceptance tests: WAL shipping, leader-epoch fencing,
// client-side failover, and graceful drain (docs/network_serving.md).
//
// The headline guarantees under test:
//
//  * A dynamic follower that tails the leader's WAL (Op::kFetchWalSince)
//    converges to BIT-IDENTICAL query results and SearchStats, across
//    checkpoints and compactions (generation-pull fallback included).
//  * No acknowledged write is ever lost: after a leader kill, every write
//    the leader acked and the follower converged on answers exactly on the
//    promoted follower.
//  * A deposed leader's stream is fenced out by the persisted leader epoch.
//  * A two-endpoint client completes its query stream across a leader kill
//    without surfacing an error.
//  * SIGTERM-style drain finishes in-flight batches and refuses new
//    queries with a clean, parseable ResourceExhausted.
//
// The crash-drill sweep attacks every syscall on the shipping path —
// follower-side fs, follower WAL, client-side net; error and crash
// flavours at varying depths — and after every single one a RESTARTED
// follower (recovery from disk, i.e. a from-scratch rebuild of in-memory
// state) re-follows cleanly and serves bit-identically to the leader.
//
// Failpoint safety: crash-mode failpoints are matched to follower fs paths
// ("follower" in the path) or the client seam ("client:rpc") ONLY — a
// crash unwinding a server connection thread would std::terminate.

#include "fault/fault_fs.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/codec.h"
#include "dataset/vector_gen.h"
#include "fault/failpoint.h"
#include "metric/lp.h"
#include "net/client.h"
#include "net/failover.h"
#include "net/server.h"
#include "snapshot/snapshot_store.h"

namespace mvp::net {
namespace {

using metric::L2;
using metric::Vector;

/// A deterministic mixed workload (range + k-NN, no deadlines): every
/// outcome is a pure function of the served state.
std::vector<WireQuery> MixedQueries(std::size_t n, std::uint32_t seed = 23) {
  const auto points = dataset::UniformQueryVectors(n, 4, seed);
  std::vector<WireQuery> queries;
  for (std::size_t i = 0; i < n; ++i) {
    WireQuery q;
    q.point = points[i];
    if (i % 2 == 0) {
      q.kind = 0;
      q.radius = 0.45 + 0.1 * static_cast<double>(i % 3);
    } else {
      q.kind = 1;
      q.k = 1 + i % 7;
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

void ExpectWireOutcomesEqual(const WireOutcome& follower,
                             const WireOutcome& leader, std::size_t i) {
  EXPECT_EQ(follower.status_code, leader.status_code) << "query " << i;
  EXPECT_EQ(follower.partial, leader.partial) << "query " << i;
  EXPECT_EQ(follower.distance_computations, leader.distance_computations)
      << "query " << i;
  EXPECT_EQ(follower.search.distance_computations,
            leader.search.distance_computations)
      << "query " << i;
  EXPECT_EQ(follower.search.nodes_visited, leader.search.nodes_visited)
      << "query " << i;
  EXPECT_EQ(follower.search.leaf_points_seen, leader.search.leaf_points_seen)
      << "query " << i;
  EXPECT_EQ(follower.search.leaf_points_filtered,
            leader.search.leaf_points_filtered)
      << "query " << i;
  ASSERT_EQ(follower.neighbors.size(), leader.neighbors.size())
      << "query " << i;
  for (std::size_t j = 0; j < follower.neighbors.size(); ++j) {
    EXPECT_EQ(follower.neighbors[j].id, leader.neighbors[j].id)
        << "query " << i << " neighbor " << j;
    EXPECT_EQ(follower.neighbors[j].distance, leader.neighbors[j].distance)
        << "query " << i << " neighbor " << j;
  }
}

class NetHaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/net_ha_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    leader_dir_ = dir_ + "/leader";
  }
  void TearDown() override {
    fault::Failpoints::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  static std::unique_ptr<Server> StartDynamic(const std::string& name,
                                              const std::string& store_dir) {
    std::filesystem::create_directories(store_dir);
    CollectionOptions collection;
    collection.name = name;
    collection.dir = store_dir;
    collection.dynamic = true;
    // The drain test parks a very large batch in flight on purpose; keep
    // the admission controller out of these tests' way.
    collection.admission.max_in_flight = 1 << 20;
    ServerOptions options;
    options.collections.push_back(collection);
    auto server = Server::Start(std::move(options));
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return server.ok() ? std::move(server).ValueOrDie() : nullptr;
  }

  void StartLeader() {
    leader_ = StartDynamic("live", leader_dir_);
    ASSERT_NE(leader_, nullptr);
  }

  static Client MustConnect(const Server& server) {
    auto client = Client::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).ValueOrDie();
  }

  /// Inserts `n` fresh vectors into the leader; every returned id is an
  /// ACKNOWLEDGED write (Insert waits for the WAL group-commit fsync) and
  /// is recorded with its point for the no-loss audit.
  void LeaderInserts(std::size_t n) {
    const auto data = dataset::UniformVectors(n, 4, next_seed_++);
    for (const Vector& v : data) {
      auto id = leader_->Insert("live", v);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      acked_.push_back({id.value(), v});
    }
  }

  /// Erases the oldest still-live acked write on the leader.
  void LeaderEraseOldest() {
    ASSERT_FALSE(acked_.empty());
    ASSERT_TRUE(leader_->Erase("live", acked_.front().id).ok());
    acked_.erase(acked_.begin());
  }

  /// Every acked-and-replicated write must answer on `server`: a radius-0
  /// range query at the exact point returns it, under its stable id.
  void ExpectNoAckedWriteLost(Client& client) {
    for (const AckedWrite& write : acked_) {
      WireQuery q;
      q.kind = 0;
      q.radius = 0.0;
      q.point = write.point;
      auto outcome = client.Query("live", q);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      ASSERT_EQ(outcome.value().status_code, 0u) << "id " << write.id;
      ASSERT_EQ(outcome.value().neighbors.size(), 1u)
          << "acked write " << write.id << " lost";
      EXPECT_EQ(outcome.value().neighbors[0].id, write.id);
      EXPECT_EQ(outcome.value().neighbors[0].distance, 0.0);
    }
  }

  /// Runs the comparison workload against leader and follower and demands
  /// bit-identical outcomes (results AND SearchStats).
  void ExpectBitIdentical(Client& leader_client, Client& follower_client) {
    const auto queries = MixedQueries(12);
    auto from_leader = leader_client.BatchQuery("live", queries);
    ASSERT_TRUE(from_leader.ok()) << from_leader.status().ToString();
    auto from_follower = follower_client.BatchQuery("live", queries);
    ASSERT_TRUE(from_follower.ok()) << from_follower.status().ToString();
    ASSERT_EQ(from_leader.value().size(), from_follower.value().size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ExpectWireOutcomesEqual(from_follower.value()[i],
                              from_leader.value()[i], i);
    }
  }

  struct AckedWrite {
    std::uint64_t id;
    Vector point;
  };

  std::string dir_;
  std::string leader_dir_;
  std::unique_ptr<Server> leader_;
  std::vector<AckedWrite> acked_;
  std::uint32_t next_seed_ = 1;
};

// WAL shipping end to end: an empty follower tails the leader's WAL and
// serves bit-identically; after the leader checkpoints (WAL floor moves
// past the follower's cursor) AND compacts, the follower falls back to the
// generation pull and resumes the tail — still bit-identical, still no
// acked write lost.
TEST_F(NetHaTest, WalShippingFollowerConvergesBitIdentical) {
  StartLeader();
  LeaderInserts(60);
  LeaderEraseOldest();

  const std::string follower_dir = dir_ + "/follower";
  auto follower = StartDynamic("live", follower_dir);
  ASSERT_NE(follower, nullptr);

  Client leader_client = MustConnect(*leader_);
  ASSERT_TRUE(follower->Follow("live", leader_client).ok());
  Client follower_client = MustConnect(*follower);
  {
    SCOPED_TRACE("phase wal-tail");
    ExpectBitIdentical(leader_client, follower_client);
    ExpectNoAckedWriteLost(follower_client);
  }

  // Converged: the follower reports zero generation lag for the tenant.
  auto readiness = follower_client.Readiness("live");
  ASSERT_TRUE(readiness.ok());
  EXPECT_EQ(readiness.value().generation_lag, 0u);

  // Checkpoint truncates the leader WAL (floor passes the tail), then more
  // writes land in the fresh WAL: the follower must pull the generation
  // and resume tailing.
  ASSERT_TRUE(leader_->Checkpoint("live").ok());
  LeaderInserts(10);
  LeaderEraseOldest();
  ASSERT_TRUE(follower->Follow("live", leader_client).ok());
  {
    SCOPED_TRACE("phase post-checkpoint");
    ExpectBitIdentical(leader_client, follower_client);
    ExpectNoAckedWriteLost(follower_client);
  }

  // Major compaction rewrites the lineage into one generation; same deal.
  ASSERT_TRUE(leader_->Compact("live").ok());
  LeaderInserts(7);
  ASSERT_TRUE(follower->Follow("live", leader_client).ok());
  {
    SCOPED_TRACE("phase post-compact");
    ExpectBitIdentical(leader_client, follower_client);
    ExpectNoAckedWriteLost(follower_client);
  }

  follower->Stop();
  leader_->Stop();
}

// Epoch fencing: once the follower has been promoted (epoch bumped), the
// old leader's stream — still answering RPCs, as deposed leaders do — is
// rejected as stale. A higher re-promotion on the leader side is adopted.
TEST_F(NetHaTest, StaleLeaderEpochIsRejected) {
  StartLeader();
  LeaderInserts(30);

  const std::string follower_dir = dir_ + "/follower";
  auto follower = StartDynamic("live", follower_dir);
  ASSERT_NE(follower, nullptr);
  Client leader_client = MustConnect(*leader_);
  ASSERT_TRUE(follower->Follow("live", leader_client).ok());

  // Promotion: the follower becomes the new leader at epoch 1.
  auto promoted = follower->Promote("live");
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(promoted.value(), 1u);

  // The deposed leader (epoch 0) writes on; its stream must be fenced.
  LeaderInserts(5);
  const Status stale = follower->Follow("live", leader_client);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stale.ToString().find("stale leader epoch"), std::string::npos)
      << stale.ToString();

  // Re-promoting the old leader ABOVE the follower's accepted epoch makes
  // its stream authoritative again; the follower adopts the new epoch.
  ASSERT_TRUE(leader_->Promote("live").ok());      // epoch 1 — still stale
  auto reclaimed = leader_->Promote("live");       // epoch 2 — wins
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_EQ(reclaimed.value(), 2u);
  ASSERT_TRUE(follower->Follow("live", leader_client).ok());
  EXPECT_EQ(snapshot::SnapshotStore(follower_dir).ReadEpoch(), 2u);

  Client follower_client = MustConnect(*follower);
  ExpectNoAckedWriteLost(follower_client);
  follower->Stop();
  leader_->Stop();
}

// The acceptance drill: a two-endpoint client completes its query stream
// across a leader kill without surfacing an error, and the promoted
// follower holds every acked write the leader replicated.
TEST_F(NetHaTest, LeaderKillFollowerPromoteClientFailover) {
  StartLeader();
  LeaderInserts(50);
  LeaderEraseOldest();

  const std::string follower_dir = dir_ + "/follower";
  auto follower = StartDynamic("live", follower_dir);
  ASSERT_NE(follower, nullptr);
  {
    Client leader_client = MustConnect(*leader_);
    ASSERT_TRUE(follower->Follow("live", leader_client).ok());
  }

  FailoverOptions options;
  options.retry.max_attempts = 5;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  FailoverClient client({{"127.0.0.1", leader_->port()},
                         {"127.0.0.1", follower->port()}},
                        options);
  const auto queries = MixedQueries(20);

  // First half of the stream lands on the leader...
  for (std::size_t i = 0; i < queries.size() / 2; ++i) {
    auto outcome = client.Query("live", queries[i]);
    ASSERT_TRUE(outcome.ok()) << "query " << i << ": "
                              << outcome.status().ToString();
    ASSERT_EQ(outcome.value().status_code, 0u);
  }
  EXPECT_EQ(client.active_endpoint(), 0u);

  // ...then the leader dies mid-stream. No query may surface an error.
  leader_->Stop();
  auto promoted = follower->Promote("live");
  ASSERT_TRUE(promoted.ok());
  for (std::size_t i = queries.size() / 2; i < queries.size(); ++i) {
    auto outcome = client.Query("live", queries[i]);
    ASSERT_TRUE(outcome.ok()) << "query " << i << " after leader kill: "
                              << outcome.status().ToString();
    ASSERT_EQ(outcome.value().status_code, 0u);
  }
  EXPECT_EQ(client.active_endpoint(), 1u);
  EXPECT_GE(client.failovers(), 1u);

  // The new leader accepts writes and holds every replicated acked write.
  ASSERT_TRUE(follower->Insert("live", queries[0].point).ok());
  Client follower_client = MustConnect(*follower);
  ExpectNoAckedWriteLost(follower_client);
  client.Close();
  follower->Stop();
}

// Hedged reads: with two healthy replicas the hedge must return a correct
// answer (whichever endpoint wins), and with the primary dead the hedge
// path still completes without surfacing an error.
TEST_F(NetHaTest, HedgedReadsReturnCorrectAnswers) {
  StartLeader();
  LeaderInserts(40);
  const std::string follower_dir = dir_ + "/follower";
  auto follower = StartDynamic("live", follower_dir);
  ASSERT_NE(follower, nullptr);
  {
    Client leader_client = MustConnect(*leader_);
    ASSERT_TRUE(follower->Follow("live", leader_client).ok());
  }

  FailoverOptions options;
  options.hedged_reads = true;
  options.hedge_delay_ns = 0;  // race immediately — exercises both arms
  options.retry.max_attempts = 5;
  options.retry.initial_backoff = std::chrono::milliseconds(1);
  FailoverClient hedged({{"127.0.0.1", leader_->port()},
                         {"127.0.0.1", follower->port()}},
                        options);
  Client leader_client = MustConnect(*leader_);
  const auto queries = MixedQueries(8);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto outcome = hedged.Query("live", queries[i]);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    auto expected = leader_client.Query("live", queries[i]);
    ASSERT_TRUE(expected.ok());
    ExpectWireOutcomesEqual(outcome.value(), expected.value(), i);
  }

  leader_->Stop();
  for (std::size_t i = 0; i < 4; ++i) {
    auto outcome = hedged.Query("live", queries[i]);
    ASSERT_TRUE(outcome.ok()) << "hedged after kill: "
                              << outcome.status().ToString();
    ASSERT_EQ(outcome.value().status_code, 0u);
  }
  hedged.Close();
  follower->Stop();
}

/// One injected failure on the WAL-shipping path, after `skip` unharmed
/// firings, as a clean error or a simulated process crash.
struct HaDrill {
  const char* failpoint;  // "fs/write", "net/recv", "wal/append", ...
  const char* match;      // "follower" (fs), "client:rpc" (net), "" (wal)
  bool crash;
  std::uint64_t skip;

  std::string Name() const {
    return std::string(failpoint) + ":skip" + std::to_string(skip) +
           (crash ? ":crash" : ":error");
  }
};

std::vector<HaDrill> EnumerateHaDrills() {
  std::vector<HaDrill> drills;
  // Follower-side filesystem: the generation-pull files (manifest,
  // partial container, rename, CURRENT) and the follower's own WAL
  // append/sync path all sit behind these seams; different skips land the
  // same failpoint on different files along one convergence step.
  for (const char* fs : {"fs/open", "fs/write", "fs/fsync", "fs/close",
                         "fs/rename"}) {
    for (const bool crash : {false, true}) {
      for (const std::uint64_t skip : {0u, 1u, 2u}) {
        drills.push_back({fs, "follower", crash, skip});
      }
    }
  }
  // Client-side network: the leader connection dies mid-RPC at varying
  // depths (skip 0 hits the first FetchWalSince or CurrentGeneration round
  // trip; deeper skips land inside the chunk or manifest stream). NEVER
  // matched server-side — a crash there would unwind a connection thread.
  for (const char* net : {"net/recv", "net/send"}) {
    for (const bool crash : {false, true}) {
      for (const std::uint64_t skip : {0u, 3u}) {
        drills.push_back({net, "client:rpc", crash, skip});
      }
    }
  }
  // The follower WAL's own logical failpoints (replicated records are
  // re-logged through the same WalWriter discipline). The leader is idle
  // during Follow, so an unmatched wal/* failpoint can only fire on the
  // follower's ApplyReplicated path.
  drills.push_back({"wal/append", "", false, 0});
  drills.push_back({"wal/append", "", false, 2});
  drills.push_back({"wal/sync", "", false, 0});
  return drills;
}

// The sweep (>= 30 scenarios): after EVERY injected failure the follower
// is RESTARTED over its surviving directory — recovery from disk, the
// from-scratch rebuild of all in-memory state — then re-follows cleanly
// and must serve bit-identical results and SearchStats to the leader, with
// no acked write lost. The leader mutates (and periodically checkpoints /
// compacts) between scenarios, so drills land on pure WAL tails, on
// generation-pull fallbacks, and on mixes of both.
TEST_F(NetHaTest, HaCrashDrillSweep) {
  StartLeader();
  LeaderInserts(40);

  const auto drills = EnumerateHaDrills();
  ASSERT_GE(drills.size(), 30u);
  std::size_t index = 0;
  for (const HaDrill& drill : drills) {
    SCOPED_TRACE(drill.Name());

    // Advance the leader: new acked writes, an erase, and periodically a
    // checkpoint (WAL floor moves) or a major compaction.
    LeaderInserts(3);
    LeaderEraseOldest();
    if (index % 13 == 12) {
      ASSERT_TRUE(leader_->Compact("live").ok());
    } else if (index % 7 == 6) {
      ASSERT_TRUE(leader_->Checkpoint("live").ok());
    }

    const std::string follower_dir =
        dir_ + "/follower_" + std::to_string(index++);
    auto follower = StartDynamic("live", follower_dir);
    ASSERT_NE(follower, nullptr);

    {
      // A fresh conversation per drill: an injected net fault tears the
      // connection, and the server rightly hangs up on a torn frame.
      Client drill_client = MustConnect(*leader_);
      fault::FailpointConfig config;
      config.match = drill.match;
      config.crash = drill.crash;
      config.skip = drill.skip;
      fault::ScopedFailpoint failpoint(drill.failpoint, config);
      try {
        // With a deep skip the failpoint may never fire and the follow
        // just converges — also a valid outcome; the invariants must hold
        // either way.
        (void)follower->Follow("live", drill_client);
      } catch (const fault::CrashError&) {
        // The simulated follower kill; disk state is whatever it is.
      }
    }
    fault::Failpoints::Instance().DisarmAll();

    // "Process restart": recover from the surviving directory alone.
    follower->Stop();
    follower.reset();
    follower = StartDynamic("live", follower_dir);
    ASSERT_NE(follower, nullptr)
        << drill.Name() << ": follower does not recover from disk";

    Client leader_client = MustConnect(*leader_);
    const Status caught_up = follower->Follow("live", leader_client);
    ASSERT_TRUE(caught_up.ok())
        << drill.Name() << ": " << caught_up.ToString();
    Client follower_client = MustConnect(*follower);
    ExpectBitIdentical(leader_client, follower_client);
    ExpectNoAckedWriteLost(follower_client);
    follower->Stop();
  }
  leader_->Stop();
}

// S4: the --follow polling mode's convergence loop across MULTIPLE leader
// generations with an injected failure on every poll round. Each round the
// leader moves on (writes + checkpoint/compact = a new generation) and the
// poll's first attempt fails at a different depth; the next clean attempt
// must converge — exactly the mvpt-server poll loop's retry discipline.
TEST_F(NetHaTest, FollowPollingConvergesAcrossGenerationsUnderFailures) {
  StartLeader();
  LeaderInserts(30);

  const std::string follower_dir = dir_ + "/follower";
  auto follower = StartDynamic("live", follower_dir);
  ASSERT_NE(follower, nullptr);

  std::uint64_t last_generation = 0;
  for (std::uint64_t round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    LeaderInserts(4);
    LeaderEraseOldest();
    if (round % 2 == 1) {
      auto gen = round % 4 == 3 ? leader_->Compact("live")
                                : leader_->Checkpoint("live");
      ASSERT_TRUE(gen.ok()) << gen.status().ToString();
      EXPECT_GT(gen.value(), last_generation);
      last_generation = gen.value();
    }

    // The poll's first attempt dies mid-conversation at a round-dependent
    // depth (one-shot failure, like a transient network blip).
    {
      // Like mvpt-server's poll loop: every pass speaks over a fresh
      // connection, because the previous one may have died with the fault.
      Client poll_client = MustConnect(*leader_);
      fault::FailpointConfig config;
      config.match = "client:rpc";
      config.skip = round;
      config.max_fires = 1;
      fault::ScopedFailpoint failpoint(
          round % 2 == 0 ? "net/recv" : "net/send", config);
      // A failed poll round is allowed any error; the next round retries.
      // (The failpoint may also go unfired at deep skips — then this round
      // simply converges early.)
      (void)follower->Follow("live", poll_client);
    }
    Client leader_client = MustConnect(*leader_);
    const Status caught_up = follower->Follow("live", leader_client);
    ASSERT_TRUE(caught_up.ok()) << caught_up.ToString();

    Client follower_client = MustConnect(*follower);
    ExpectBitIdentical(leader_client, follower_client);
    ExpectNoAckedWriteLost(follower_client);
  }
  follower->Stop();
  leader_->Stop();
}

// S2: EINTR is retried INSIDE the fault seams — an injected EINTR storm on
// the net and fs seams must be invisible to callers (no error, no torn
// frame, no failed insert). Regression for the seam-level retry contract.
TEST_F(NetHaTest, InjectedEintrIsRetriedInsideSeams) {
  StartLeader();
  LeaderInserts(10);
  Client client = MustConnect(*leader_);

  {
    fault::FailpointConfig config;
    config.match = "client:rpc";
    config.error_code = EINTR;
    config.max_fires = 3;
    fault::ScopedFailpoint failpoint("net/send", config);
    EXPECT_TRUE(client.Ping().ok());
  }
  {
    fault::FailpointConfig config;
    config.match = "client:rpc";
    config.error_code = EINTR;
    config.max_fires = 3;
    fault::ScopedFailpoint failpoint("net/recv", config);
    auto outcome = client.Query("live", MixedQueries(1)[0]);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
  {
    // The WAL group-commit write path: EINTR mid-fsync/write is retried in
    // the seam, so the insert still acks durably.
    fault::FailpointConfig config;
    config.error_code = EINTR;
    config.max_fires = 2;
    fault::ScopedFailpoint failpoint("fs/write", config);
    auto id = leader_->Insert("live", MixedQueries(1)[0].point);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
  }
  leader_->Stop();
}

// S3: the connection cap answers the N+1st connection with one clean,
// parseable ResourceExhausted frame — and a freed slot is reusable.
TEST_F(NetHaTest, ConnectionCapRefusesCleanly) {
  std::filesystem::create_directories(leader_dir_);
  CollectionOptions collection;
  collection.name = "live";
  collection.dir = leader_dir_;
  collection.dynamic = true;
  ServerOptions options;
  options.max_connections = 2;
  options.collections.push_back(collection);
  auto server = Server::Start(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto first = Client::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().Ping().ok());
  auto second = Client::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value().Ping().ok());

  // Over the cap: the TCP connect succeeds (kernel accept queue), but the
  // server's answer is one ResourceExhausted frame, then hangup.
  auto third = Client::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(third.ok());
  const Status refused = third.value().Ping();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.ToString().find("connection limit"), std::string::npos)
      << refused.ToString();

  // Closing a connection frees its slot (the server reaps the thread
  // asynchronously — poll briefly).
  first.value().Close();
  bool admitted = false;
  for (int attempt = 0; attempt < 200 && !admitted; ++attempt) {
    auto replacement = Client::Connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(replacement.ok());
    admitted = replacement.value().Ping().ok();
    if (!admitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(admitted) << "freed connection slot was never reusable";
  server.value()->Stop();
}

// Graceful drain: with a big batch in flight, Drain() lets it finish (no
// torn frame, complete outcomes) while Readiness answers draining and NEW
// queries are refused with ResourceExhausted — the clean signal a
// failover client sheds on.
TEST_F(NetHaTest, DrainFinishesInFlightAndRefusesNewQueries) {
  StartLeader();
  LeaderInserts(60);

  // Pre-connect both observers before Drain shuts the listener.
  Client batch_client = MustConnect(*leader_);
  Client probe_client = MustConnect(*leader_);

  auto before = probe_client.Readiness("");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().state,
            static_cast<std::uint8_t>(ReadinessState::kServing));
  EXPECT_FALSE(leader_->draining());

  // A batch big enough to still be streaming when Drain lands, even with
  // sanitizer-grade scheduling skew.
  const auto one_round = MixedQueries(50);
  std::vector<WireQuery> big;
  for (int r = 0; r < 1000; ++r) {
    big.insert(big.end(), one_round.begin(), one_round.end());
  }
  Result<std::vector<WireOutcome>> batch_result =
      Status::IOError("batch never ran");
  std::thread batch_thread([&] {
    batch_result = batch_client.BatchQuery("live", big);
  });
  // Wait until the batch is OBSERVABLY in flight server-side: the tenant's
  // completed-query counter only moves inside the batch's RunBatch, and the
  // first completion lands while tens of thousands of its queries remain.
  // (A fixed head-start sleep is a race under sanitizers.)
  bool in_flight = false;
  for (int i = 0; i < 50000 && !in_flight; ++i) {
    auto stats = probe_client.Stats("live");
    if (!stats.ok()) break;
    in_flight = stats.value().queries > 0;
    if (!in_flight) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  if (!in_flight) {
    batch_thread.join();
    FAIL() << "batch never became observable in flight";
  }

  std::thread drain_thread([&] { leader_->Drain(60'000'000'000ull); });
  // Drain flips the server to draining before it starts waiting. All the
  // checks between here and the joins are EXPECTs: an ASSERT's early
  // return with unjoined threads would terminate the process and bury the
  // real failure message.
  for (int i = 0; i < 10000 && !leader_->draining(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(leader_->draining());

  // The pre-existing probe connection sees the draining state and a clean
  // refusal for NEW queries — never a torn frame.
  auto during = probe_client.Readiness("");
  EXPECT_TRUE(during.ok()) << during.status().ToString();
  if (during.ok()) {
    EXPECT_EQ(during.value().state,
              static_cast<std::uint8_t>(ReadinessState::kDraining));
  }
  auto refused = probe_client.Query("live", one_round[0]);
  EXPECT_FALSE(refused.ok());
  if (!refused.ok()) {
    EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  }

  // The in-flight batch finishes completely under the drain deadline.
  batch_thread.join();
  drain_thread.join();
  ASSERT_TRUE(batch_result.ok())
      << "in-flight batch was torn by drain: "
      << batch_result.status().ToString();
  ASSERT_EQ(batch_result.value().size(), big.size());
  for (const WireOutcome& outcome : batch_result.value()) {
    EXPECT_EQ(outcome.status_code, 0u);
  }
}

}  // namespace
}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

// Unit tests for the serving layer's worker pool: completion and result
// delivery, behaviour under submitter contention, exception propagation
// through futures, bounded-queue backpressure, helping via RunOne, and the
// drain-on-shutdown guarantee.

#include "serve/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mvp::serve {
namespace {

// Reusable gate: lets a test park the pool's workers on purpose.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ThreadPoolTest, SubmittedTasksRunAndReturnValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, EveryTaskRunsExactlyOnceUnderContention) {
  // Several submitter threads race several workers over one bounded queue;
  // each task must run exactly once — no losses, no duplicates.
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 200;
  ThreadPool pool(ThreadPool::Options{3, 16});  // small queue: real pressure
  std::vector<std::atomic<int>> runs(kSubmitters * kTasksEach);
  for (auto& r : runs) r.store(0);

  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int t = 0; t < kTasksEach; ++t) {
        const int id = s * kTasksEach + t;
        (void)pool.Submit([&runs, id] {
          runs[static_cast<std::size_t>(id)].fetch_add(1);
        });
      }
    });
  }
  for (auto& th : submitters) th.join();
  pool.WaitIdle();
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto bad = pool.Submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task keeps serving.
  auto good = pool.Submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(ThreadPool::Options{1, 256});
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        executed.fetch_add(1);
      });
    }
    // Destructor (Shutdown) must complete every accepted task.
  }
  EXPECT_EQ(executed.load(), 50);
}

// Parks the pool's single worker inside a task and waits until the worker
// has actually dequeued it, so the queue is empty when the test proceeds.
std::future<void> ParkWorker(ThreadPool& pool, Gate& gate) {
  std::promise<void> started;
  std::future<void> running = started.get_future();
  auto parked = pool.Submit([&gate, p = std::move(started)]() mutable {
    p.set_value();
    gate.Wait();
  });
  running.wait();
  return parked;
}

TEST(ThreadPoolTest, TrySubmitRefusesWhenQueueFull) {
  ThreadPool pool(ThreadPool::Options{1, 2});
  Gate gate;
  auto parked = ParkWorker(pool, gate);
  // The worker is parked; fill the two queue slots.
  ASSERT_TRUE(pool.TrySubmit([] {}));
  ASSERT_TRUE(pool.TrySubmit([] {}));
  EXPECT_FALSE(pool.TrySubmit([] {}));
  gate.Open();
  parked.get();
  pool.WaitIdle();
  EXPECT_TRUE(pool.TrySubmit([] {}));
  pool.WaitIdle();
}

TEST(ThreadPoolTest, SubmitBlocksUntilSpaceThenCompletes) {
  ThreadPool pool(ThreadPool::Options{1, 1});
  Gate gate;
  std::atomic<int> done{0};
  auto parked = ParkWorker(pool, gate);
  (void)pool.Submit([&done] { done.fetch_add(1); });  // fills the queue
  // This submission must wait for queue space, then still execute.
  std::thread submitter([&] {
    (void)pool.Submit([&done] { done.fetch_add(1); });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  gate.Open();
  submitter.join();
  parked.get();
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPoolTest, RunOneExecutesPendingTaskOnCallingThread) {
  ThreadPool pool(ThreadPool::Options{1, 8});
  Gate gate;
  auto parked = ParkWorker(pool, gate);
  const std::thread::id main_id = std::this_thread::get_id();
  std::thread::id ran_on{};
  ASSERT_TRUE(pool.TrySubmit([&ran_on] { ran_on = std::this_thread::get_id(); }));
  EXPECT_TRUE(pool.RunOne());
  EXPECT_EQ(ran_on, main_id);
  EXPECT_FALSE(pool.RunOne());  // nothing pending anymore
  gate.Open();
  parked.get();
}

TEST(ThreadPoolTest, WaitIdleObservesQuiescence) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    (void)pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 64);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, SubmitAfterShutdownReturnsBrokenPromise) {
  ThreadPool pool(2);
  pool.Shutdown();
  // Refused, not deadlocked and not aborted: the future exists but its
  // promise was dropped, which surfaces as broken_promise on get().
  auto future = pool.Submit([] { return 7; });
  EXPECT_THROW(
      {
        try {
          (void)future.get();
        } catch (const std::future_error& e) {
          EXPECT_EQ(e.code(), std::future_errc::broken_promise);
          throw;
        }
      },
      std::future_error);
}

TEST(ThreadPoolTest, TrySubmitAfterShutdownReturnsFalse) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.TrySubmit([] {}));
}

TEST(ThreadPoolTest, SubmissionsRacingShutdownNeverDeadlockOrLoseWork) {
  // Hammer Submit/TrySubmit from several threads while Shutdown runs
  // concurrently. Accepted work must all execute (drain-on-shutdown);
  // refused work must be observably refused; nothing may hang or crash.
  for (int round = 0; round < 20; ++round) {
    auto pool = std::make_unique<ThreadPool>(ThreadPool::Options{2, 8});
    std::atomic<int> executed{0};
    std::atomic<int> submit_ran{0};
    std::atomic<int> submit_broken{0};
    std::atomic<int> try_accepted{0};
    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 50;

    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          if ((t + i) % 2 == 0) {
            auto future = pool->Submit([&executed] {
              executed.fetch_add(1, std::memory_order_relaxed);
              return 0;
            });
            try {
              (void)future.get();  // either ran or broken_promise
              submit_ran.fetch_add(1, std::memory_order_relaxed);
            } catch (const std::future_error&) {
              submit_broken.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (pool->TrySubmit([&executed] {
                       executed.fetch_add(1, std::memory_order_relaxed);
                     })) {
            try_accepted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    std::thread closer([&] { pool->Shutdown(); });
    for (auto& th : submitters) th.join();
    closer.join();
    pool.reset();  // destructor re-runs Shutdown: must be idempotent

    // Every Submit resolved one way or the other, and exactly the accepted
    // tasks executed — drain-on-shutdown loses nothing it accepted.
    EXPECT_EQ(submit_ran.load() + submit_broken.load(),
              kSubmitters * kPerThread / 2);
    EXPECT_EQ(executed.load(), submit_ran.load() + try_accepted.load());
  }
}

}  // namespace
}  // namespace mvp::serve

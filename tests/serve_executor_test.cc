// Batch executor semantics: result fidelity against direct searches,
// per-query deadline enforcement (zero-budget queries never touch the
// index; expiry mid-search cancels cooperatively, reports DeadlineExceeded,
// and harvests the partial answer found so far), the distance-computation
// budget degrading the same way, distance accounting, and the serving
// stats sink — including the lock-free latency histogram.

#include "serve/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "serve/serve_stats.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"

namespace mvp::serve {
namespace {

using metric::L2;
using metric::Vector;
using Query = BatchQuery<Vector>;

/// L2 with a switchable per-evaluation stall: fast during Build, slow
/// during the deadline tests so a search reliably outlives a deadline.
class ThrottledL2 {
 public:
  ThrottledL2() : stall_us_(std::make_shared<std::atomic<int>>(0)) {}

  double operator()(const Vector& a, const Vector& b) const {
    const int stall = stall_us_->load(std::memory_order_relaxed);
    if (stall > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(stall));
    }
    return inner_(a, b);
  }

  void set_stall_us(int us) const {
    stall_us_->store(us, std::memory_order_relaxed);
  }

 private:
  L2 inner_;
  std::shared_ptr<std::atomic<int>> stall_us_;
};

std::vector<Query> MakeRangeBatch(const std::vector<Vector>& queries,
                                  double radius) {
  std::vector<Query> batch;
  for (const auto& q : queries) {
    Query bq;
    bq.kind = Query::Kind::kRange;
    bq.object = q;
    bq.radius = radius;
    batch.push_back(bq);
  }
  return batch;
}

TEST(ExecutorTest, BatchResultsMatchDirectSearches) {
  const auto data = dataset::UniformVectors(3000, 8, 5);
  const auto queries = dataset::UniformQueryVectors(16, 8, 6);
  ShardedMvpIndex<Vector, L2>::Options options;
  options.num_shards = 3;
  const auto index =
      ShardedMvpIndex<Vector, L2>::Build(data, L2(), options).ValueOrDie();
  const auto plain = core::MvpTree<Vector, L2>::Build(data, L2(), {})
                         .ValueOrDie();

  auto batch = MakeRangeBatch(queries, 0.5);
  // Mix in k-NN queries.
  for (const auto& q : queries) {
    Query bq;
    bq.kind = Query::Kind::kKnn;
    bq.object = q;
    bq.k = 15;
    batch.push_back(bq);
  }

  ThreadPool pool(4);
  const auto outcomes = RunBatch(index, batch, &pool);
  ASSERT_EQ(outcomes.size(), batch.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(outcomes[i].status.ok());
    EXPECT_EQ(outcomes[i].neighbors, plain.RangeSearch(queries[i], 0.5));
    const auto& knn = outcomes[queries.size() + i];
    EXPECT_TRUE(knn.status.ok());
    EXPECT_EQ(knn.neighbors, plain.KnnSearch(queries[i], 15));
    EXPECT_GT(outcomes[i].distance_computations, 0u);
    EXPECT_GT(outcomes[i].latency.count(), 0);
  }
}

TEST(ExecutorTest, SerialAndParallelExecutionAgree) {
  const auto data = dataset::UniformVectors(2000, 8, 9);
  const auto queries = dataset::UniformQueryVectors(12, 8, 10);
  ShardedMvpIndex<Vector, L2>::Options options;
  options.num_shards = 4;
  const auto index =
      ShardedMvpIndex<Vector, L2>::Build(data, L2(), options).ValueOrDie();
  const auto batch = MakeRangeBatch(queries, 0.4);

  ThreadPool pool(4);
  const auto serial = RunBatch(index, batch, /*pool=*/nullptr);
  const auto parallel = RunBatch(index, batch, &pool);
  ExecutorOptions shard_parallel;
  shard_parallel.parallel_shards = true;
  const auto nested = RunBatch(index, batch, &pool, nullptr, shard_parallel);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(serial[i].neighbors, parallel[i].neighbors);
    EXPECT_EQ(serial[i].neighbors, nested[i].neighbors);
    EXPECT_EQ(serial[i].distance_computations,
              parallel[i].distance_computations);
    EXPECT_EQ(serial[i].distance_computations,
              nested[i].distance_computations);
  }
}

TEST(ExecutorTest, ZeroTimeoutQueriesNeverRun) {
  const auto data = dataset::UniformVectors(1000, 8, 11);
  ShardedMvpIndex<Vector, L2>::Options options;
  options.num_shards = 2;
  const auto index =
      ShardedMvpIndex<Vector, L2>::Build(data, L2(), options).ValueOrDie();

  auto batch = MakeRangeBatch(dataset::UniformQueryVectors(6, 8, 12), 0.5);
  for (auto& q : batch) q.timeout = std::chrono::nanoseconds(0);
  ThreadPool pool(2);
  ServeStats stats;
  const auto outcomes = RunBatch(index, batch, &pool, &stats);
  for (const auto& out : outcomes) {
    EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(out.neighbors.empty());
    EXPECT_EQ(out.distance_computations, 0u);  // the index was never touched
  }
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.deadline_exceeded, batch.size());
  EXPECT_EQ(snap.ok, 0u);
  EXPECT_EQ(snap.distance_computations, 0u);
}

TEST(ExecutorTest, DeadlineExpiryMidSearchHarvestsPartialResults) {
  const auto data = dataset::UniformVectors(1500, 8, 13);
  ThrottledL2 throttled;
  ShardedMvpIndex<Vector, ThrottledL2>::Options options;
  options.num_shards = 2;
  const auto index = ShardedMvpIndex<Vector, ThrottledL2>::Build(
                         data, throttled, options)
                         .ValueOrDie();
  // The full answer, for subset verification (fast metric, no stall).
  const auto queries = dataset::UniformQueryVectors(1, 8, 14);
  const auto full = index.RangeSearch(queries[0], 0.6);

  // ~200us per distance computation: a full search (hundreds of
  // evaluations) takes far longer than the 10ms budget, so the deadline
  // must fire mid-search. Run serially — the query then starts the moment
  // the batch does, so "began searching, then was cancelled" is
  // deterministic even on a loaded single-core machine.
  throttled.set_stall_us(200);

  auto batch = MakeRangeBatch(queries, 0.6);
  for (auto& q : batch) q.timeout = std::chrono::milliseconds(10);
  ServeStats stats;
  const auto outcomes = RunBatch(index, batch, /*pool=*/nullptr, &stats);
  throttled.set_stall_us(0);
  for (const auto& out : outcomes) {
    EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(out.partial);                  // degraded, not discarded
    EXPECT_GT(out.distance_computations, 0u);  // it did start searching
    EXPECT_LT(out.distance_computations, 1500u);  // and was cut short
    // Every harvested neighbor is a true answer: it passed the exact
    // d <= r test before the cut, so the harvest is a subset of the full
    // result set, sorted the same way.
    EXPECT_LE(out.neighbors.size(), full.size());
    EXPECT_TRUE(std::is_sorted(out.neighbors.begin(), out.neighbors.end(),
                               NeighborLess));
    EXPECT_TRUE(std::includes(full.begin(), full.end(),
                              out.neighbors.begin(), out.neighbors.end(),
                              NeighborLess));
  }
  const auto snap = stats.Snapshot();
  // Disjoint outcome classes: a harvest-bearing expiry counts as partial,
  // not as deadline_exceeded (that class is for dead-on-arrival queries).
  EXPECT_EQ(snap.partial, batch.size());
  EXPECT_EQ(snap.deadline_exceeded, 0u);
}

TEST(ExecutorTest, DistanceBudgetDegradesToPartialResults) {
  const auto data = dataset::UniformVectors(4000, 8, 23);
  ShardedMvpIndex<Vector, L2>::Options options;
  options.num_shards = 2;
  const auto index =
      ShardedMvpIndex<Vector, L2>::Build(data, L2(), options).ValueOrDie();
  const auto queries = dataset::UniformQueryVectors(4, 8, 24);
  const auto unbounded = RunBatch(index, MakeRangeBatch(queries, 0.6),
                                  /*pool=*/nullptr);

  auto batch = MakeRangeBatch(queries, 0.6);
  for (auto& q : batch) q.max_distance_computations = 256;
  ServeStats stats;
  const auto outcomes = RunBatch(index, batch, /*pool=*/nullptr, &stats);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& out = outcomes[i];
    ASSERT_GT(unbounded[i].distance_computations, 256u)
        << "query too easy to exercise the budget";
    EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(out.status.message().find("distance budget"), std::string::npos);
    EXPECT_TRUE(out.partial);
    // The budget is enforced at stride boundaries (serially: one frame),
    // so the overshoot is bounded by one check stride.
    EXPECT_GE(out.distance_computations, 256u);
    EXPECT_LE(out.distance_computations, 256u + 64u);
    // Partial range answers are a subset of the unbounded answer.
    EXPECT_TRUE(std::includes(unbounded[i].neighbors.begin(),
                              unbounded[i].neighbors.end(),
                              out.neighbors.begin(), out.neighbors.end(),
                              NeighborLess));
  }
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.partial, batch.size());
  EXPECT_EQ(snap.deadline_exceeded, 0u);
}

TEST(ExecutorTest, DegradedOutcomeClassesFoldIntoStatsDisjointly) {
  const auto data = dataset::UniformVectors(3000, 8, 25);
  ShardedMvpIndex<Vector, L2>::Options options;
  options.num_shards = 2;
  const auto index =
      ShardedMvpIndex<Vector, L2>::Build(data, L2(), options).ValueOrDie();

  // 3 healthy + 3 shed-at-start (zero timeout) + 3 budget-degraded.
  auto batch = MakeRangeBatch(dataset::UniformQueryVectors(9, 8, 26), 0.6);
  for (std::size_t i = 3; i < 6; ++i) {
    batch[i].timeout = std::chrono::nanoseconds(0);
  }
  for (std::size_t i = 6; i < 9; ++i) {
    batch[i].max_distance_computations = 128;
  }
  ServeStats stats;
  const auto outcomes = RunBatch(index, batch, /*pool=*/nullptr, &stats);

  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 9u);
  EXPECT_EQ(snap.ok, 3u);
  EXPECT_EQ(snap.deadline_exceeded, 3u);  // expired before any search work
  EXPECT_EQ(snap.partial, 3u);            // budget-degraded, harvest served
  EXPECT_EQ(snap.shed, 0u);
  EXPECT_EQ(snap.ok + snap.partial + snap.deadline_exceeded + snap.shed,
            snap.queries);
  // Degraded latencies (everything that was not a complete OK answer) have
  // their own histogram: 3 zero-timeout + 3 budget-cut queries.
  EXPECT_EQ(stats.degraded_latency().count(), 6u);
  for (std::size_t i = 6; i < 9; ++i) {
    EXPECT_TRUE(outcomes[i].partial);
  }
}

TEST(ExecutorTest, MixedDeadlinesAreEnforcedPerQuery) {
  const auto data = dataset::UniformVectors(1500, 8, 15);
  ShardedMvpIndex<Vector, L2>::Options options;
  options.num_shards = 2;
  const auto index =
      ShardedMvpIndex<Vector, L2>::Build(data, L2(), options).ValueOrDie();
  const auto plain =
      core::MvpTree<Vector, L2>::Build(data, L2(), {}).ValueOrDie();

  auto batch = MakeRangeBatch(dataset::UniformQueryVectors(8, 8, 16), 0.5);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].timeout = (i % 2 == 0) ? std::chrono::seconds(30)
                                    : std::chrono::nanoseconds(0);
  }
  ThreadPool pool(3);
  const auto outcomes = RunBatch(index, batch, &pool);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(outcomes[i].status.ok());
      EXPECT_EQ(outcomes[i].neighbors,
                plain.RangeSearch(batch[i].object, 0.5));
    } else {
      EXPECT_EQ(outcomes[i].status.code(), StatusCode::kDeadlineExceeded);
    }
  }
}

TEST(ExecutorTest, StatsAggregateAcrossBatch) {
  const auto data = dataset::UniformVectors(2000, 8, 17);
  const auto queries = dataset::UniformQueryVectors(20, 8, 18);
  ShardedMvpIndex<Vector, L2>::Options options;
  options.num_shards = 2;
  const auto index =
      ShardedMvpIndex<Vector, L2>::Build(data, L2(), options).ValueOrDie();
  const auto batch = MakeRangeBatch(queries, 0.5);
  ThreadPool pool(4);
  ServeStats stats;
  const auto outcomes = RunBatch(index, batch, &pool, &stats);

  std::uint64_t distances = 0, results = 0;
  for (const auto& out : outcomes) {
    distances += out.distance_computations;
    results += out.neighbors.size();
  }
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, batch.size());
  EXPECT_EQ(snap.ok, batch.size());
  EXPECT_EQ(snap.deadline_exceeded, 0u);
  EXPECT_EQ(snap.distance_computations, distances);
  EXPECT_EQ(snap.results_returned, results);
  EXPECT_GT(snap.p50.count(), 0);
  EXPECT_LE(snap.p50.count(), snap.p95.count());
  EXPECT_LE(snap.p95.count(), snap.p99.count());
}

TEST(LatencyHistogramTest, QuantilesBoundRecordedValues) {
  LatencyHistogram hist;
  // 100 samples: 90 at ~1us, 10 at ~1ms.
  for (int i = 0; i < 90; ++i) hist.Record(std::chrono::microseconds(1));
  for (int i = 0; i < 10; ++i) hist.Record(std::chrono::milliseconds(1));
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.max(), std::chrono::nanoseconds(1000000));
  // p50 lands in the ~1us bucket: its upper bound is < 3us.
  EXPECT_LT(hist.Quantile(0.5), std::chrono::microseconds(3));
  // p95 and p99 land in the ~1ms bucket: bounds in (1ms, 3ms).
  EXPECT_GE(hist.Quantile(0.95), std::chrono::milliseconds(1));
  EXPECT_LT(hist.Quantile(0.99), std::chrono::milliseconds(3));
  // Quantiles are monotone in q.
  EXPECT_LE(hist.Quantile(0.5), hist.Quantile(0.95));
  EXPECT_LE(hist.Quantile(0.95), hist.Quantile(1.0));
}

TEST(LatencyHistogramTest, ConcurrentRecordsAreAllCounted) {
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kRecords; ++i) {
        hist.Record(std::chrono::nanoseconds(100 * (t + 1)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kRecords);
  EXPECT_EQ(hist.max(), std::chrono::nanoseconds(400));
}

}  // namespace
}  // namespace mvp::serve

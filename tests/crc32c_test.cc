#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace mvp {
namespace {

std::uint32_t CrcOf(const std::string& s) { return Crc32c(s.data(), s.size()); }

TEST(Crc32cTest, KnownCheckValue) {
  // The CRC32C check value from the iSCSI spec test suite (RFC 3720 uses
  // the same Castagnoli polynomial).
  EXPECT_EQ(CrcOf("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, KnownZeroVectors) {
  const std::vector<std::uint8_t> zeros32(32, 0);
  EXPECT_EQ(Crc32c(zeros32.data(), zeros32.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32c("x", 0), 0u);
}

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(CrcOf("hello"), CrcOf("hellp"));
  EXPECT_NE(CrcOf("hello"), CrcOf("hell"));
  EXPECT_NE(CrcOf(std::string("\x00\x01", 2)),
            CrcOf(std::string("\x01\x00", 2)));
}

TEST(Crc32cTest, SingleBitFlipAlwaysDetected) {
  const std::string base = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t crc = CrcOf(base);
  for (std::size_t byte = 0; byte < base.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = base;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(CrcOf(flipped), crc) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32cTest, StreamingExtendMatchesOneShot) {
  std::vector<std::uint8_t> data(1037);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const std::uint32_t whole = Crc32c(data.data(), data.size());
  // Split at every boundary in a coarse sweep, plus awkward small cuts
  // around the slice-by-8 stride.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{8}, std::size_t{9}, std::size_t{63},
                                std::size_t{512}, data.size() - 1,
                                data.size()}) {
    std::uint32_t crc = Crc32cExtend(0, data.data(), cut);
    crc = Crc32cExtend(crc, data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc, whole) << "cut at " << cut;
  }
}

TEST(Crc32cTest, ExtendFromZeroEqualsOneShot) {
  const std::string s = "streaming == one-shot";
  EXPECT_EQ(Crc32cExtend(0, s.data(), s.size()), CrcOf(s));
}

TEST(Crc32cTest, CombineMatchesConcatenation) {
  std::vector<std::uint8_t> data(4096 + 37);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  const std::uint32_t whole = Crc32c(data.data(), data.size());
  // Combining the CRCs of any prefix/suffix split must reproduce the
  // whole-buffer value — this is what lets the snapshot load path checksum
  // disjoint blocks on separate threads and stitch the results.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, std::size_t{8}, std::size_t{100},
        std::size_t{4096}, data.size() - 1, data.size()}) {
    const std::uint32_t a = Crc32c(data.data(), cut);
    const std::uint32_t b = Crc32c(data.data() + cut, data.size() - cut);
    EXPECT_EQ(Crc32cCombine(a, b, data.size() - cut), whole)
        << "cut at " << cut;
  }
}

TEST(Crc32cTest, CombineManyBlocksMatchesSerial) {
  std::vector<std::uint8_t> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i ^ (i >> 3));
  }
  const std::uint32_t whole = Crc32c(data.data(), data.size());
  for (const std::size_t block : {std::size_t{1}, std::size_t{7},
                                  std::size_t{1024}, std::size_t{4096}}) {
    std::uint32_t crc = 0;
    for (std::size_t begin = 0; begin < data.size(); begin += block) {
      const std::size_t len = std::min(block, data.size() - begin);
      crc = Crc32cCombine(crc, Crc32c(data.data() + begin, len), len);
    }
    EXPECT_EQ(crc, whole) << "block size " << block;
  }
}

TEST(Crc32cTest, LargeBufferMatchesSmallChunkStreaming) {
  // Large one-shot CRCs take the multi-lane fast path; tiny streamed
  // chunks do not. Composing the two must agree bit-for-bit, for sizes
  // straddling the lane cutoff and awkward tails.
  for (const std::size_t total :
       {std::size_t{6143}, std::size_t{6144}, std::size_t{6145},
        std::size_t{65536}, std::size_t{1000003}}) {
    std::vector<std::uint8_t> data(total);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
    }
    const std::uint32_t whole = Crc32c(data.data(), data.size());
    std::uint32_t streamed = 0;
    for (std::size_t begin = 0; begin < total; begin += 509) {
      const std::size_t len = std::min(std::size_t{509}, total - begin);
      streamed = Crc32cExtend(streamed, data.data() + begin, len);
    }
    EXPECT_EQ(streamed, whole) << "total " << total;
  }
}

TEST(Crc32cTest, CombineWithEmptySideIsIdentity) {
  const std::string s = "nonempty";
  EXPECT_EQ(Crc32cCombine(CrcOf(s), 0u, 0), CrcOf(s));
  EXPECT_EQ(Crc32cCombine(0u, CrcOf(s), s.size()), CrcOf(s));
}

TEST(Crc32cTest, UnalignedStartMatchesAligned) {
  // The slice-by-8 fast path must produce identical results regardless of
  // the buffer's alignment.
  std::vector<std::uint8_t> padded(256 + 8, 0);
  for (std::size_t i = 0; i < padded.size(); ++i) {
    padded[i] = static_cast<std::uint8_t>(i ^ 0x5a);
  }
  const std::uint32_t reference = Crc32c(padded.data(), 256);
  for (std::size_t shift = 1; shift < 8; ++shift) {
    std::vector<std::uint8_t> copy(padded.begin() + shift,
                                   padded.begin() + shift + 256);
    // Same bytes, different alignment: recompute what they should hash to.
    EXPECT_EQ(Crc32c(copy.data(), copy.size()),
              Crc32c(padded.data() + shift, 256));
  }
  EXPECT_EQ(reference, Crc32c(padded.data(), 256));  // determinism
}

}  // namespace
}  // namespace mvp

// MmapFile's two read paths — the kernel mapping and the always-compiled
// heap fallback — must be interchangeable: bit-identical bytes for the
// same file, and a snapshot loaded through either path answers queries
// identically. The fallback is forced per process via ForceHeapFallback,
// which is how platforms without mmap (and fault drills on platforms with
// it) run the load path.

#include "snapshot/mmap_file.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/serialize.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "snapshot/snapshot_store.h"

namespace mvp::snapshot {
namespace {

using metric::L2;
using metric::Vector;
using Index = serve::ShardedMvpIndex<Vector, L2>;

/// RAII guard so a test can never leak the process-wide fallback switch.
class ForcedFallback {
 public:
  ForcedFallback() { MmapFile::ForceHeapFallback(true); }
  ~ForcedFallback() { MmapFile::ForceHeapFallback(false); }
};

class MmapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/mmapfile_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    MmapFile::ForceHeapFallback(false);
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(MmapFileTest, BothPathsReadTheSameBytes) {
  std::vector<std::uint8_t> payload(100000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 13);
  }
  const std::string path = dir_ + "/blob";
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());

  auto mapped = MmapFile::Open(path);
  ASSERT_TRUE(mapped.ok());
#if MVPTREE_HAS_MMAP
  EXPECT_TRUE(mapped.value().mapped());
#endif

  ForcedFallback forced;
  EXPECT_TRUE(MmapFile::heap_fallback_forced());
  auto heap = MmapFile::Open(path);
  ASSERT_TRUE(heap.ok());
  EXPECT_FALSE(heap.value().mapped());

  ASSERT_EQ(mapped.value().size(), payload.size());
  ASSERT_EQ(heap.value().size(), payload.size());
  EXPECT_EQ(std::memcmp(mapped.value().data(), heap.value().data(),
                        payload.size()),
            0);
  EXPECT_EQ(std::memcmp(heap.value().data(), payload.data(), payload.size()),
            0);
}

TEST_F(MmapFileTest, EmptyFileYieldsZeroLengthViewOnBothPaths) {
  const std::string path = dir_ + "/empty";
  ASSERT_TRUE(WriteFileAtomic(path, {}).ok());

  auto mapped = MmapFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped.value().size(), 0u);

  ForcedFallback forced;
  auto heap = MmapFile::Open(path);
  ASSERT_TRUE(heap.ok());
  EXPECT_EQ(heap.value().size(), 0u);
}

TEST_F(MmapFileTest, MissingFileFailsOnBothPaths) {
  EXPECT_FALSE(MmapFile::Open(dir_ + "/nope").ok());
  ForcedFallback forced;
  EXPECT_FALSE(MmapFile::Open(dir_ + "/nope").ok());
}

TEST_F(MmapFileTest, MoveTransfersOwnershipOfTheMapping) {
  const std::string path = dir_ + "/blob";
  ASSERT_TRUE(WriteFileAtomic(path, std::vector<std::uint8_t>(64, 7)).ok());
  auto opened = MmapFile::Open(path);
  ASSERT_TRUE(opened.ok());
  MmapFile a = std::move(opened).ValueOrDie();
  const auto* data = a.data();
  MmapFile b = std::move(a);
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.size(), 64u);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST_F(MmapFileTest, SnapshotLoadsIdenticallyThroughBothPaths) {
  Index::Options options;
  options.num_shards = 3;
  options.tree.leaf_capacity = 8;
  const auto data = dataset::UniformVectors(200, 5, 31);
  auto built = Index::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());

  SnapshotStore store(dir_ + "/store");
  ASSERT_TRUE(store.SaveSharded(built.value(), VectorCodec()).ok());

  auto via_mmap = store.LoadSharded<Vector>(L2(), VectorCodec());
  ASSERT_TRUE(via_mmap.ok()) << via_mmap.status().ToString();

  ForcedFallback forced;
  auto via_heap = store.LoadSharded<Vector>(L2(), VectorCodec());
  ASSERT_TRUE(via_heap.ok()) << via_heap.status().ToString();

  EXPECT_EQ(via_mmap.value().generation, via_heap.value().generation);
  EXPECT_EQ(via_mmap.value().index.size(), via_heap.value().index.size());
  const auto queries = dataset::UniformQueryVectors(8, 5, 32);
  for (const auto& q : queries) {
    const auto a = via_mmap.value().index.RangeSearch(q, 0.8);
    const auto b = via_heap.value().index.RangeSearch(q, 0.8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
    EXPECT_EQ(via_mmap.value().index.KnnSearch(q, 5),
              via_heap.value().index.KnnSearch(q, 5));
  }
}

}  // namespace
}  // namespace mvp::snapshot

// Integration tests: the full experiment pipeline (dataset generation ->
// index construction -> multi-seed sweep -> paper-shape assertions) at
// reduced scale, tying every module together the way the bench binaries do.
// These are the repository's executable claims about the paper's results.

#include <gtest/gtest.h>

#include "core/mvp_tree.h"
#include "dataset/histogram.h"
#include "dataset/image.h"
#include "dataset/image_gen.h"
#include "dataset/vector_gen.h"
#include "harness/workload.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"
#include "vptree/vp_tree.h"

namespace mvp {
namespace {

using metric::L2;
using metric::Vector;

/// Shared reduced-scale uniform-vector experiment (Figure 8 shape).
class Fig8ShapeTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kCount = 12000;
  static constexpr std::size_t kDim = 20;

  void SetUp() override {
    data_ = dataset::UniformVectors(kCount, kDim, 4242);
    queries_ = dataset::UniformQueryVectors(30, kDim, 777);
  }

  std::vector<harness::SweepCell> VpSweep(int order,
                                          const std::vector<double>& radii) {
    return harness::RangeCostSweep(
        [&, order](std::uint64_t seed) {
          vptree::VpTree<Vector, L2>::Options options;
          options.order = order;
          options.seed = seed;
          return vptree::VpTree<Vector, L2>::Build(data_, L2(), options)
              .ValueOrDie();
        },
        queries_, radii, 2);
  }

  std::vector<harness::SweepCell> MvpSweep(int k,
                                           const std::vector<double>& radii) {
    return harness::RangeCostSweep(
        [&, k](std::uint64_t seed) {
          core::MvpTree<Vector, L2>::Options options;
          options.order = 3;
          options.leaf_capacity = k;
          options.num_path_distances = 5;
          options.seed = seed;
          return core::MvpTree<Vector, L2>::Build(data_, L2(), options)
              .ValueOrDie();
        },
        queries_, radii, 2);
  }

  std::vector<Vector> data_;
  std::vector<Vector> queries_;
};

TEST_F(Fig8ShapeTest, MvpTreeBeatsVpTreeAcrossRadii) {
  const std::vector<double> radii{0.15, 0.3, 0.5};
  const auto vpt2 = VpSweep(2, radii);
  const auto mvpt9 = MvpSweep(9, radii);
  const auto mvpt80 = MvpSweep(80, radii);
  for (std::size_t r = 0; r < radii.size(); ++r) {
    // The paper's central claim: both mvp configurations use fewer distance
    // computations than the vp-tree. At this reduced scale (12k points vs
    // the paper's 50k) the small-leaf configuration reaches parity at the
    // largest radius, so the strict assertion applies through r=0.3 and the
    // largest radius allows a 10% tolerance (the gap "closes slowly", §5.2).
    const double slack = radii[r] < 0.5 ? 1.0 : 1.1;
    EXPECT_LT(mvpt9[r].avg_distance_computations,
              slack * vpt2[r].avg_distance_computations)
        << "r=" << radii[r];
    EXPECT_LT(mvpt80[r].avg_distance_computations,
              vpt2[r].avg_distance_computations)
        << "r=" << radii[r];
  }
  // Savings are large at small radii (paper: up to 80%) ...
  EXPECT_GT(1.0 - mvpt80[0].avg_distance_computations /
                      vpt2[0].avg_distance_computations,
            0.5);
  // ... and decay as the radius grows (paper: "the gap closes slowly").
  const double saving_small = 1.0 - mvpt80[0].avg_distance_computations /
                                        vpt2[0].avg_distance_computations;
  const double saving_large = 1.0 - mvpt80[2].avg_distance_computations /
                                        vpt2[2].avg_distance_computations;
  EXPECT_GT(saving_small, saving_large);
}

TEST_F(Fig8ShapeTest, EveryStructureBeatsLinearScanAtSmallRadius) {
  const std::vector<double> radii{0.2};
  EXPECT_LT(VpSweep(2, radii)[0].avg_distance_computations, kCount);
  EXPECT_LT(VpSweep(3, radii)[0].avg_distance_computations, kCount);
  EXPECT_LT(MvpSweep(9, radii)[0].avg_distance_computations, kCount);
  EXPECT_LT(MvpSweep(80, radii)[0].avg_distance_computations, kCount);
}

TEST_F(Fig8ShapeTest, SweepResultsAgreeWithGroundTruthCounts) {
  // The sweep must measure real result sizes: validate against linear scan.
  scan::LinearScan<Vector, L2> reference(data_, L2());
  const std::vector<double> radii{0.6};
  const auto cells = MvpSweep(80, radii);
  double expected = 0;
  for (const auto& q : queries_) {
    expected += static_cast<double>(reference.RangeSearch(q, 0.6).size());
  }
  expected /= static_cast<double>(queries_.size());
  EXPECT_DOUBLE_EQ(cells[0].avg_result_size, expected);
}

TEST(IntegrationImageTest, Fig10ShapeAtReducedScale) {
  dataset::MriParams params;
  params.count = 400;
  params.subjects = 16;
  params.width = params.height = 32;
  const auto scans = dataset::MriPhantoms(params, 1997);
  std::vector<dataset::Image> queries;
  for (std::size_t i = 0; i < 10; ++i) {
    queries.push_back(
        dataset::MriPhantomScan(params, 1997, i % params.subjects, 5000 + i));
  }
  const std::vector<double> radii{20, 50};

  auto vpt2 = harness::RangeCostSweep(
      [&](std::uint64_t seed) {
        vptree::VpTree<dataset::Image, dataset::ImageL1>::Options options;
        options.seed = seed;
        return vptree::VpTree<dataset::Image, dataset::ImageL1>::Build(
                   scans, dataset::ImageL1(), options)
            .ValueOrDie();
      },
      queries, radii, 2);
  auto mvpt313 = harness::RangeCostSweep(
      [&](std::uint64_t seed) {
        core::MvpTree<dataset::Image, dataset::ImageL1>::Options options;
        options.order = 3;
        options.leaf_capacity = 13;
        options.num_path_distances = 4;
        options.seed = seed;
        return core::MvpTree<dataset::Image, dataset::ImageL1>::Build(
                   scans, dataset::ImageL1(), options)
            .ValueOrDie();
      },
      queries, radii, 2);
  for (std::size_t r = 0; r < radii.size(); ++r) {
    EXPECT_LT(mvpt313[r].avg_distance_computations,
              vpt2[r].avg_distance_computations);
  }
}

TEST(IntegrationHistogramTest, ImageDistancesAreBimodalLikeFig6) {
  dataset::MriParams params;
  params.count = 300;
  params.subjects = 12;
  params.width = params.height = 32;
  const auto scans = dataset::MriPhantoms(params, 1997);
  const auto hist =
      dataset::AllPairsHistogram(scans, dataset::ImageL1(), 1.0);
  // Same-subject pairs form a near mode well below the bulk mode.
  const double near = hist.Quantile(0.02);
  const double bulk =
      (static_cast<double>(hist.PeakBucket()) + 0.5) * hist.bucket_width;
  EXPECT_LT(near, 0.5 * bulk);
}

TEST(IntegrationHistogramTest, UniformDistancesConcentrateLikeFig4) {
  const auto data = dataset::UniformVectors(3000, 20, 4242);
  const auto hist =
      dataset::SampledPairsHistogram(data, L2(), 0.01, 200000, 99);
  const double mode =
      (static_cast<double>(hist.PeakBucket()) + 0.5) * hist.bucket_width;
  EXPECT_GT(mode, 1.5);   // paper: concentrated around ~1.75
  EXPECT_LT(mode, 2.1);
  EXPECT_GT(hist.Quantile(0.001), 0.5);  // void region near 0
}

}  // namespace
}  // namespace mvp

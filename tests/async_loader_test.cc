#include "snapshot/async_loader.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/codec.h"
#include "dataset/vector_gen.h"
#include "fault/failpoint.h"
#include "fault/retry.h"
#include "metric/lp.h"
#include "snapshot/snapshot_store.h"

namespace mvp::snapshot {
namespace {

using metric::L2;
using metric::Vector;
using Index = serve::ShardedMvpIndex<Vector, L2>;
using Cell = GenerationCell<Index>;

/// A codec whose reads block until the gate opens, and which counts
/// blocked readers — the instrument that lets a test hold a snapshot load
/// mid-deserialization while it probes the serving path.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int waiters = 0;

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }

  bool AwaitWaiter(std::chrono::seconds timeout) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, timeout, [this] { return waiters > 0; });
  }
};

struct GatedVectorCodec {
  Gate* gate = nullptr;

  void Write(BinaryWriter& w, const Vector& v) const {
    VectorCodec().Write(w, v);
  }
  Status Read(BinaryReader& r, Vector* out) const {
    {
      std::unique_lock<std::mutex> lock(gate->mu);
      if (!gate->open) {
        ++gate->waiters;
        gate->cv.notify_all();
        gate->cv.wait(lock, [this] { return gate->open; });
        --gate->waiters;
      }
    }
    return VectorCodec().Read(r, out);
  }
};

class AsyncLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/asyncload_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Index BuildIndex(std::size_t n, std::uint64_t seed) {
    Index::Options options;
    options.num_shards = 3;
    options.tree.leaf_capacity = 6;
    options.tree.seed = seed;
    auto built =
        Index::Build(dataset::UniformVectors(n, 5, seed + 100), L2(), options);
    EXPECT_TRUE(built.ok());
    return std::move(built).ValueOrDie();
  }

  std::string dir_;
};

TEST_F(AsyncLoaderTest, QueriesServeOldGenerationDuringLoadThenSwap) {
  SnapshotStore store(dir_);
  const Index next = BuildIndex(120, 2);
  ASSERT_TRUE(store.SaveSharded(next, VectorCodec()).ok());

  // Old generation the server starts with (different data than the
  // snapshot, so the swap is observable in results too).
  auto old_gen = std::make_shared<const Index>(BuildIndex(40, 1));
  Cell cell{old_gen};
  ASSERT_EQ(cell.version(), 1u);

  serve::ThreadPool pool(2);
  AsyncSnapshotLoader loader(&pool);
  Gate gate;
  auto future =
      loader.LoadAndSwap<Vector>(store, L2(), GatedVectorCodec{&gate}, &cell);

  // Hold until a loader thread is provably blocked mid-deserialization.
  ASSERT_TRUE(gate.AwaitWaiter(std::chrono::seconds(30)));

  // The search path must not touch any lock the loader holds: queries run
  // to completion against the old generation while the load is in flight.
  const auto queries = dataset::UniformQueryVectors(5, 5, 9);
  for (const auto& q : queries) {
    auto generation = cell.Get();
    ASSERT_NE(generation, nullptr);
    EXPECT_EQ(generation->size(), 40u);
    const auto hits = generation->RangeSearch(q, 0.9);
    const auto knn = generation->KnnSearch(q, 3);
    EXPECT_LE(knn.size(), 3u);
    for (const auto& h : hits) EXPECT_LT(h.id, 40u);
  }
  EXPECT_EQ(cell.version(), 1u);  // no swap observed yet

  gate.Open();
  ASSERT_TRUE(future.get().ok());
  EXPECT_EQ(cell.version(), 2u);

  // New generation serves, bit-identical to the index that was saved.
  auto generation = cell.Get();
  ASSERT_NE(generation, nullptr);
  EXPECT_EQ(generation->size(), 120u);
  for (const auto& q : queries) {
    const auto expected = next.RangeSearch(q, 0.9);
    const auto got = generation->RangeSearch(q, 0.9);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id);
      EXPECT_EQ(got[i].distance, expected[i].distance);
    }
  }

  // The old generation stayed alive for its holders (RCU grace period via
  // shared_ptr), and is released once they drop it.
  EXPECT_EQ(old_gen->size(), 40u);
  EXPECT_GE(old_gen.use_count(), 1);
}

TEST_F(AsyncLoaderTest, FailedLoadLeavesOldGenerationServing) {
  SnapshotStore store(dir_);
  const Index saved = BuildIndex(80, 3);
  ASSERT_TRUE(store.SaveSharded(saved, VectorCodec()).ok());

  // Corrupt one payload byte of the committed container.
  const std::string path =
      store.GenerationDir(1) + "/" + SnapshotStore::kContainerFile;
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  auto corrupted = std::move(bytes).ValueOrDie();
  corrupted[corrupted.size() - 5] ^= 0x20;
  ASSERT_TRUE(WriteFile(path, corrupted).ok());

  auto old_gen = std::make_shared<const Index>(BuildIndex(25, 4));
  Cell cell{old_gen};
  serve::ThreadPool pool(2);
  AsyncSnapshotLoader loader(&pool);
  auto future = loader.LoadAndSwap<Vector>(store, L2(), VectorCodec(), &cell);

  const Status status = future.get();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(cell.version(), 1u);  // nothing was published
  auto generation = cell.Get();
  ASSERT_NE(generation, nullptr);
  EXPECT_EQ(generation->size(), 25u);
}

TEST_F(AsyncLoaderTest, BackToBackLoadsPublishMonotonically) {
  SnapshotStore store(dir_);
  serve::ThreadPool pool(2);
  AsyncSnapshotLoader loader(&pool);
  Cell cell;
  EXPECT_EQ(cell.Get(), nullptr);

  for (std::uint64_t round = 1; round <= 3; ++round) {
    const Index index = BuildIndex(30 * round, round);
    ASSERT_TRUE(store.SaveSharded(index, VectorCodec()).ok());
    auto future = loader.LoadAndSwap<Vector>(store, L2(), VectorCodec(), &cell);
    ASSERT_TRUE(future.get().ok());
    EXPECT_EQ(cell.version(), round);
    auto generation = cell.Get();
    ASSERT_NE(generation, nullptr);
    EXPECT_EQ(generation->size(), 30 * round);
  }
}

TEST_F(AsyncLoaderTest, TransientLoadFailureIsRetriedAndSwapsExactlyOnce) {
  SnapshotStore store(dir_);
  const Index next = BuildIndex(100, 8);
  ASSERT_TRUE(store.SaveSharded(next, VectorCodec()).ok());

  auto old_gen = std::make_shared<const Index>(BuildIndex(30, 9));
  Cell cell{old_gen};
  serve::ThreadPool pool(2);
  AsyncSnapshotLoader loader(&pool);

  // The first load attempt fails with an injected transient IOError; the
  // retry succeeds. No real sleeping — the backoff goes through the seam.
  fault::FailpointConfig config;
  config.max_fires = 1;
  fault::ScopedFailpoint fp("snapshot/load", config);
  fault::RetryOptions retry;
  retry.max_attempts = 3;
  std::atomic<int> sleeps{0};
  retry.sleep = [&sleeps](std::chrono::nanoseconds) { ++sleeps; };

  auto future =
      loader.LoadAndSwap<Vector>(store, L2(), VectorCodec(), &cell, retry);
  ASSERT_TRUE(future.get().ok());
  EXPECT_EQ(sleeps.load(), 1);   // exactly one failed attempt
  EXPECT_EQ(cell.version(), 2u); // swapped exactly once
  auto generation = cell.Get();
  ASSERT_NE(generation, nullptr);
  EXPECT_EQ(generation->size(), 100u);
}

TEST_F(AsyncLoaderTest, ExhaustedRetriesPublishNothing) {
  SnapshotStore store(dir_);
  ASSERT_TRUE(store.SaveSharded(BuildIndex(100, 10), VectorCodec()).ok());

  auto old_gen = std::make_shared<const Index>(BuildIndex(30, 11));
  Cell cell{old_gen};
  serve::ThreadPool pool(2);
  AsyncSnapshotLoader loader(&pool);

  fault::ScopedFailpoint fp("snapshot/load", {});  // every attempt fails
  fault::RetryOptions retry;
  retry.max_attempts = 3;
  retry.sleep = [](std::chrono::nanoseconds) {};

  auto future =
      loader.LoadAndSwap<Vector>(store, L2(), VectorCodec(), &cell, retry);
  const Status status = future.get();
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(fault::Failpoints::Instance().fires("snapshot/load"), 3u);
  EXPECT_EQ(cell.version(), 1u);  // old generation still serving
  auto generation = cell.Get();
  ASSERT_NE(generation, nullptr);
  EXPECT_EQ(generation->size(), 30u);
}

TEST_F(AsyncLoaderTest, GenerationCellKeepsOldAliveAcrossPublish) {
  auto first = std::make_shared<const Index>(BuildIndex(20, 6));
  const Index* raw = first.get();
  Cell cell{std::move(first)};
  auto held = cell.Get();

  cell.Publish(std::make_shared<const Index>(BuildIndex(35, 7)));
  // `held` still valid and queryable after the swap.
  EXPECT_EQ(held.get(), raw);
  EXPECT_EQ(held->size(), 20u);
  EXPECT_EQ(cell.Get()->size(), 35u);
  held.reset();
}

}  // namespace
}  // namespace mvp::snapshot

// Failpoint registry semantics: count-based triggers (skip / max_fires),
// one-shot fires, seeded-probability determinism, detail-substring matching,
// arm/disarm lifecycle, and thread safety of the fire counters.

#include "fault/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace mvp::fault {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedFailpointNeverFires) {
  EXPECT_FALSE(Failpoints::AnyArmed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(MVP_FAILPOINT("test/nothing-armed"));
  }
  EXPECT_EQ(Failpoints::Instance().evaluations("test/nothing-armed"), 0u);
}

TEST_F(FailpointTest, SkipFiresOnNthEvaluation) {
  FailpointConfig config;
  config.skip = 2;  // fire starting with the 3rd evaluation
  Failpoints::Instance().Arm("test/skip", config);
  EXPECT_TRUE(Failpoints::AnyArmed());

  EXPECT_FALSE(MVP_FAILPOINT("test/skip"));
  EXPECT_FALSE(MVP_FAILPOINT("test/skip"));
  EXPECT_TRUE(MVP_FAILPOINT("test/skip"));
  EXPECT_TRUE(MVP_FAILPOINT("test/skip"));  // and keeps firing (no max)
  EXPECT_EQ(Failpoints::Instance().evaluations("test/skip"), 4u);
  EXPECT_EQ(Failpoints::Instance().fires("test/skip"), 2u);
}

TEST_F(FailpointTest, OneShotFiresExactlyOnce) {
  FailpointConfig config;
  config.max_fires = 1;
  Failpoints::Instance().Arm("test/oneshot", config);

  EXPECT_TRUE(MVP_FAILPOINT("test/oneshot"));
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(MVP_FAILPOINT("test/oneshot"));
  EXPECT_EQ(Failpoints::Instance().fires("test/oneshot"), 1u);
}

TEST_F(FailpointTest, SkipAndMaxFiresComposeIntoAWindow) {
  FailpointConfig config;
  config.skip = 3;
  config.max_fires = 2;  // fire exactly on evaluations 4 and 5
  Failpoints::Instance().Arm("test/window", config);

  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(MVP_FAILPOINT("test/window"));
  const std::vector<bool> expected{false, false, false, true,
                                   true,  false, false, false};
  EXPECT_EQ(fired, expected);
}

TEST_F(FailpointTest, SeededProbabilityReplaysExactly) {
  auto run = [](std::uint64_t seed) {
    FailpointConfig config;
    config.probability = 0.5;
    config.seed = seed;
    Failpoints::Instance().Arm("test/coin", config);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(MVP_FAILPOINT("test/coin"));
    Failpoints::Instance().Disarm("test/coin");
    return fired;
  };

  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a, b);  // same seed, same fire sequence
  EXPECT_NE(a, c);  // different seed, (overwhelmingly) different sequence

  // A fair-ish number of fires: p=0.5 over 200 trials is within [60, 140]
  // with probability ~1 - 1e-8.
  const auto fires = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 60u);
  EXPECT_LT(fires, 140u);
}

TEST_F(FailpointTest, MatchFiltersByDetailSubstring) {
  FailpointConfig config;
  config.match = "MANIFEST";
  Failpoints::Instance().Arm("test/match", config);
  auto& fp = Failpoints::Instance();

  EXPECT_FALSE(fp.Fire("test/match", "/store/gen-000001/shards.mvps"));
  EXPECT_TRUE(fp.Fire("test/match", "/store/gen-000001/MANIFEST"));
  EXPECT_FALSE(fp.Fire("test/match", "/store/CURRENT"));
  // Non-matching evaluations are invisible: not counted, not skipped.
  EXPECT_EQ(fp.evaluations("test/match"), 1u);
  EXPECT_EQ(fp.fires("test/match"), 1u);
}

TEST_F(FailpointTest, ConfigAndOrdinalAreCopiedOutOnFire) {
  FailpointConfig config;
  config.error_code = 28;  // ENOSPC
  config.short_write = 7;
  Failpoints::Instance().Arm("test/out", config);

  FailpointConfig got;
  std::uint64_t ordinal = 0;
  ASSERT_TRUE(Failpoints::Instance().Fire("test/out", {}, &got, &ordinal));
  EXPECT_EQ(got.error_code, 28);
  EXPECT_EQ(got.short_write, 7);
  EXPECT_EQ(ordinal, 1u);
  ASSERT_TRUE(Failpoints::Instance().Fire("test/out", {}, &got, &ordinal));
  EXPECT_EQ(ordinal, 2u);
}

TEST_F(FailpointTest, DisarmAllResetsEverything) {
  Failpoints::Instance().Arm("test/a", {});
  Failpoints::Instance().Arm("test/b", {});
  EXPECT_TRUE(Failpoints::AnyArmed());
  Failpoints::Instance().DisarmAll();
  EXPECT_FALSE(Failpoints::AnyArmed());
  EXPECT_FALSE(MVP_FAILPOINT("test/a"));
  EXPECT_FALSE(MVP_FAILPOINT("test/b"));
}

TEST_F(FailpointTest, RearmingResetsCounters) {
  FailpointConfig config;
  config.max_fires = 1;
  Failpoints::Instance().Arm("test/rearm", config);
  EXPECT_TRUE(MVP_FAILPOINT("test/rearm"));
  EXPECT_FALSE(MVP_FAILPOINT("test/rearm"));  // exhausted

  Failpoints::Instance().Arm("test/rearm", config);  // re-arm: fresh counters
  EXPECT_TRUE(MVP_FAILPOINT("test/rearm"));
  EXPECT_EQ(Failpoints::Instance().fires("test/rearm"), 1u);
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    ScopedFailpoint scoped("test/scoped", {});
    EXPECT_TRUE(MVP_FAILPOINT("test/scoped"));
  }
  EXPECT_FALSE(Failpoints::AnyArmed());
  EXPECT_FALSE(MVP_FAILPOINT("test/scoped"));
}

TEST_F(FailpointTest, ConcurrentEvaluationsHonorMaxFiresExactly) {
  FailpointConfig config;
  config.max_fires = 100;
  Failpoints::Instance().Arm("test/threads", config);

  constexpr int kThreads = 4;
  constexpr int kEvals = 10000;
  std::vector<std::uint64_t> fired(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &fired] {
      for (int i = 0; i < kEvals; ++i) {
        if (MVP_FAILPOINT("test/threads")) ++fired[t];
      }
    });
  }
  for (auto& th : threads) th.join();

  std::uint64_t total = 0;
  for (const auto f : fired) total += f;
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(Failpoints::Instance().fires("test/threads"), 100u);
  EXPECT_EQ(Failpoints::Instance().evaluations("test/threads"),
            static_cast<std::uint64_t>(kThreads) * kEvals);
}

}  // namespace
}  // namespace mvp::fault

// Tests for the paper's §2 "farthest" query forms on the mvp-tree: all
// objects farther than a range, and the k farthest objects.

#include <gtest/gtest.h>

#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::core {
namespace {

using metric::L2;
using metric::Vector;
using VecTree = MvpTree<Vector, L2>;

VecTree MustBuild(std::vector<Vector> data, VecTree::Options options = {}) {
  auto result = VecTree::Build(std::move(data), L2(), options);
  EXPECT_TRUE(result.ok());
  return std::move(result).ValueOrDie();
}

TEST(MvpTreeFarthestTest, KFarthestMatchesLinearScan) {
  const auto data = dataset::UniformVectors(600, 8, 7);
  auto tree = MustBuild(data);
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(8, 8, 11);
  for (const auto& q : queries) {
    for (const std::size_t k : {1u, 5u, 20u}) {
      const auto got = tree.FarthestSearch(q, k);
      const auto expected = reference.FarthestSearch(q, k);
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k << " i=" << i;
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
  }
}

TEST(MvpTreeFarthestTest, FarthestRangeMatchesBruteForce) {
  const auto data = dataset::UniformVectors(500, 6, 13);
  auto tree = MustBuild(data);
  L2 d;
  const auto queries = dataset::UniformQueryVectors(6, 6, 17);
  for (const auto& q : queries) {
    for (const double r : {1.0, 1.4, 1.8, 2.4}) {
      const auto got = tree.FarthestRangeSearch(q, r);
      std::size_t expected = 0;
      for (const auto& x : data) expected += d(q, x) >= r ? 1 : 0;
      ASSERT_EQ(got.size(), expected) << "r=" << r;
      // Sorted by decreasing distance, all >= r.
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_GE(got[i].distance, r);
        if (i > 0) {
          EXPECT_LE(got[i].distance, got[i - 1].distance);
        }
      }
    }
  }
}

TEST(MvpTreeFarthestTest, FarthestRangeZeroReturnsEverything) {
  const auto data = dataset::UniformVectors(100, 4, 19);
  auto tree = MustBuild(data);
  EXPECT_EQ(tree.FarthestRangeSearch(Vector(4, 0.5), 0.0).size(), 100u);
}

TEST(MvpTreeFarthestTest, KLargerThanDataset) {
  const auto data = dataset::UniformVectors(30, 4, 23);
  auto tree = MustBuild(data);
  EXPECT_EQ(tree.FarthestSearch(Vector(4, 0.5), 100).size(), 30u);
}

TEST(MvpTreeFarthestTest, EmptyTree) {
  auto tree = MustBuild({});
  EXPECT_TRUE(tree.FarthestSearch({1, 2}, 3).empty());
  EXPECT_TRUE(tree.FarthestRangeSearch({1, 2}, 0.5).empty());
}

TEST(MvpTreeFarthestTest, PrunesComparedToScan) {
  const auto data = dataset::UniformVectors(8000, 20, 29);
  auto tree = MustBuild(data);
  SearchStats stats;
  // The farthest points from a corner query are well separated from the
  // bulk; the upper-bound pruning must beat the scan.
  tree.FarthestSearch(Vector(20, 0.0), 1, &stats);
  EXPECT_LT(stats.distance_computations, 8000u);
}

TEST(MvpTreeFarthestTest, WorksAcrossParameterSettings) {
  const auto data = dataset::UniformVectors(400, 5, 31);
  scan::LinearScan<Vector, L2> reference(data, L2());
  const Vector q(5, 0.2);
  const auto expected = reference.FarthestSearch(q, 10);
  for (const int m : {2, 3, 4}) {
    for (const int k : {1, 10, 60}) {
      VecTree::Options options;
      options.order = m;
      options.leaf_capacity = k;
      options.num_path_distances = 4;
      auto tree = MustBuild(data, options);
      const auto got = tree.FarthestSearch(q, 10);
      ASSERT_EQ(got.size(), expected.size()) << "m=" << m << " k=" << k;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "m=" << m << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace mvp::core

// Admission control: the in-flight cap, the Q x S / W queue-wait estimate
// (dead-on-arrival and max-wait shedding), EWMA service-time tracking —
// and the acceptance scenario: RunBatch under 10x queue overload sheds
// with ResourceExhausted instead of blocking, and the shed counts show up
// in ServeStats.

#include "serve/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "serve/executor.h"
#include "serve/serve_stats.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"

namespace mvp::serve {
namespace {

using metric::L2;
using metric::Vector;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;

TEST(AdmissionTest, AdmitsUpToInFlightLimitThenSheds) {
  AdmissionController::Options options;
  options.max_in_flight = 3;
  AdmissionController ctrl(options);

  EXPECT_TRUE(ctrl.TryAdmit().ok());
  EXPECT_TRUE(ctrl.TryAdmit().ok());
  EXPECT_TRUE(ctrl.TryAdmit().ok());
  EXPECT_EQ(ctrl.in_flight(), 3u);

  const Status fourth = ctrl.TryAdmit();
  EXPECT_EQ(fourth.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctrl.in_flight(), 3u);
  EXPECT_EQ(ctrl.admitted(), 3u);
  EXPECT_EQ(ctrl.shed(), 1u);
}

TEST(AdmissionTest, CompleteFreesASlot) {
  AdmissionController::Options options;
  options.max_in_flight = 1;
  AdmissionController ctrl(options);

  ASSERT_TRUE(ctrl.TryAdmit().ok());
  EXPECT_EQ(ctrl.TryAdmit().code(), StatusCode::kResourceExhausted);
  ctrl.Complete(microseconds(50));
  EXPECT_EQ(ctrl.in_flight(), 0u);
  EXPECT_TRUE(ctrl.TryAdmit().ok());
}

TEST(AdmissionTest, DeadOnArrivalQueriesAreShed) {
  // 1 worker, ~10ms per query, 5 already in flight: a new arrival waits
  // ~50ms. A query with a 20ms budget is dead on arrival and must be shed;
  // one with a 200ms budget fits.
  AdmissionController::Options options;
  options.max_in_flight = 100;
  options.num_workers = 1;
  options.initial_service_estimate = milliseconds(10);
  AdmissionController ctrl(options);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ctrl.TryAdmit(milliseconds(200)).ok());

  EXPECT_GE(ctrl.EstimatedQueueWait(), milliseconds(50));
  const Status doa = ctrl.TryAdmit(milliseconds(20));
  EXPECT_EQ(doa.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(doa.message().find("queue wait"), std::string::npos);
  EXPECT_TRUE(ctrl.TryAdmit(milliseconds(200)).ok());
  EXPECT_EQ(ctrl.in_flight(), 6u);  // the shed query released its slot
}

TEST(AdmissionTest, MaxQueueWaitCapSheds) {
  AdmissionController::Options options;
  options.max_in_flight = 100;
  options.num_workers = 2;
  options.initial_service_estimate = milliseconds(10);
  options.max_queue_wait = milliseconds(15);
  AdmissionController ctrl(options);

  // Wait estimate with q in flight: q * 10ms / 2. Stays under the 15ms cap
  // through q = 3, exceeds it at q = 4.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ctrl.TryAdmit().ok()) << i;
  EXPECT_EQ(ctrl.TryAdmit().code(), StatusCode::kResourceExhausted);
}

TEST(AdmissionTest, EwmaTracksObservedServiceTimes) {
  AdmissionController::Options options;
  options.num_workers = 1;
  options.ewma_alpha = 1.0;  // estimate = last observation, exactly
  options.initial_service_estimate = milliseconds(10);
  AdmissionController ctrl(options);

  ASSERT_TRUE(ctrl.TryAdmit().ok());
  ASSERT_TRUE(ctrl.TryAdmit().ok());
  ctrl.Complete(microseconds(500));
  // One query still in flight at 500us each: estimated wait is 500us.
  EXPECT_EQ(ctrl.EstimatedQueueWait(), microseconds(500));
  ctrl.Complete(milliseconds(40));
  EXPECT_EQ(ctrl.EstimatedQueueWait(), nanoseconds(0));  // nothing in flight
  ASSERT_TRUE(ctrl.TryAdmit().ok());
  EXPECT_EQ(ctrl.EstimatedQueueWait(), milliseconds(40));
  ctrl.Complete(microseconds(1));
}

TEST(AdmissionTest, ConcurrentAdmitsNeverExceedTheCap) {
  AdmissionController::Options options;
  options.max_in_flight = 8;
  AdmissionController ctrl(options);

  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  std::atomic<std::size_t> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        if (!ctrl.TryAdmit().ok()) continue;
        const std::size_t seen = ctrl.in_flight();
        std::size_t prev = peak.load(std::memory_order_relaxed);
        while (seen > prev &&
               !peak.compare_exchange_weak(prev, seen,
                                           std::memory_order_relaxed)) {
        }
        ctrl.Complete(microseconds(10));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(peak.load(), 8u);
  EXPECT_EQ(ctrl.in_flight(), 0u);
  EXPECT_EQ(ctrl.admitted() + ctrl.shed(),
            static_cast<std::uint64_t>(kThreads) * kRounds);
}

/// L2 with a fixed per-evaluation stall, to make query service time large
/// and predictable relative to the admission window.
class SlowL2 {
 public:
  SlowL2() = default;
  double operator()(const Vector& a, const Vector& b) const {
    std::this_thread::sleep_for(microseconds(200));
    return inner_(a, b);
  }

 private:
  L2 inner_;
};

// The acceptance scenario: a batch 10x the admission window, on slow
// queries. The controller must shed the excess immediately (no blocking),
// every outcome must be either a complete OK answer or an explicit
// ResourceExhausted, and the shed count must appear in ServeStats.
TEST(AdmissionTest, OverloadedRunBatchShedsInsteadOfBlocking) {
  const auto data = dataset::UniformVectors(600, 6, 21);
  ShardedMvpIndex<Vector, SlowL2>::Options options;
  options.num_shards = 2;
  const auto index =
      ShardedMvpIndex<Vector, SlowL2>::Build(data, SlowL2(), options)
          .ValueOrDie();

  AdmissionController::Options admission_options;
  admission_options.max_in_flight = 4;
  admission_options.num_workers = 2;
  AdmissionController admission(admission_options);

  const auto queries = dataset::UniformQueryVectors(40, 6, 22);  // 10x
  std::vector<BatchQuery<Vector>> batch;
  for (const auto& q : queries) {
    BatchQuery<Vector> bq;
    bq.kind = BatchQuery<Vector>::Kind::kRange;
    bq.object = q;
    bq.radius = 0.6;
    batch.push_back(bq);
  }

  ThreadPool pool(2);
  ServeStats stats;
  ExecutorOptions exec;
  exec.admission = &admission;
  const auto outcomes = RunBatch(index, batch, &pool, &stats, exec);

  ASSERT_EQ(outcomes.size(), batch.size());
  std::size_t ok = 0, shed = 0;
  for (const auto& out : outcomes) {
    if (out.status.ok()) {
      ++ok;
      EXPECT_FALSE(out.partial);
    } else {
      ASSERT_EQ(out.status.code(), StatusCode::kResourceExhausted)
          << out.status.ToString();
      ++shed;
      EXPECT_TRUE(out.neighbors.empty());
      EXPECT_FALSE(out.partial);
      EXPECT_EQ(out.distance_computations, 0u);  // refused at the door
    }
  }
  EXPECT_EQ(ok + shed, batch.size());
  // RunBatch admits at submission time, so at most max_in_flight of the 40
  // can be in the window at once; the rest of the burst is shed.
  EXPECT_GE(shed, batch.size() / 2);
  EXPECT_GT(ok, 0u);

  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, batch.size());
  EXPECT_EQ(snap.ok, ok);
  EXPECT_EQ(snap.shed, shed);
  EXPECT_EQ(snap.deadline_exceeded, 0u);
  EXPECT_EQ(admission.shed(), shed);
  EXPECT_EQ(admission.admitted(), ok);
  EXPECT_EQ(admission.in_flight(), 0u);  // every admitted query Completed
}

}  // namespace
}  // namespace mvp::serve

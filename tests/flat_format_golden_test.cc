#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/serialize.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "serve/sharded_index.h"
#include "snapshot/snapshot_store.h"

/// Golden-file layer for the snapshot formats: canonical fixture stores
/// (heap-tree and flat-arena) are COMMITTED under tests/testdata/, and this
/// suite regenerates each from its fixed recipe and byte-compares every
/// file. Any change to the on-disk encoding — field order, alignment,
/// checksum placement, container layout — fails here first, forcing an
/// explicit decision: bump the format version and re-bless, or fix the
/// accidental incompatibility.
///
/// Re-bless (after an INTENTIONAL format change):
///   MVPT_BLESS_GOLDEN=1 ./flat_format_golden_test
/// then commit the rewritten tests/testdata/ contents.

namespace mvp::snapshot {
namespace {

using metric::L2;
using metric::Vector;
using Index = serve::ShardedMvpIndex<Vector, L2>;

#ifndef MVPT_TESTDATA_DIR
#error "flat_format_golden_test requires the MVPT_TESTDATA_DIR definition"
#endif

/// The fixture recipe. Everything is pinned — dataset seed, build
/// parameters, shard count — so the snapshot bytes are a pure function of
/// the format. Small on purpose: the fixtures live in the repository.
std::vector<Vector> GoldenData() { return dataset::UniformVectors(48, 4, 7); }

Index GoldenIndex() {
  Index::Options options;
  options.num_shards = 2;
  options.tree.order = 3;
  options.tree.leaf_capacity = 4;
  options.tree.num_path_distances = 2;
  auto built = Index::Build(GoldenData(), L2(), options);
  EXPECT_TRUE(built.ok());
  return std::move(built).ValueOrDie();
}

bool BlessMode() {
  const char* env = std::getenv("MVPT_BLESS_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string GoldenDir(const std::string& name) {
  return std::string(MVPT_TESTDATA_DIR) + "/" + name;
}

/// Writes the recipe's snapshot into `dir` with the given saver.
template <typename SaveFn>
void WriteStore(const std::string& dir, const SaveFn& save) {
  std::filesystem::remove_all(dir);
  SnapshotStore store(dir);
  const auto saved = save(store);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  ASSERT_EQ(saved.value(), 1u);  // fixture is always generation 1
}

std::vector<std::uint8_t> MustRead(const std::string& path) {
  auto bytes = ReadFile(path);
  EXPECT_TRUE(bytes.ok()) << path << ": " << bytes.status().ToString()
                          << " (run with MVPT_BLESS_GOLDEN=1 to create)";
  return bytes.ok() ? std::move(bytes).ValueOrDie()
                    : std::vector<std::uint8_t>{};
}

void ExpectFileBytesEqual(const std::string& golden,
                          const std::string& fresh) {
  const auto want = MustRead(golden);
  const auto got = MustRead(fresh);
  ASSERT_EQ(want.size(), got.size())
      << golden << ": size drifted — the on-disk format changed";
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i])
        << golden << ": byte " << i << " drifted — the on-disk format changed";
  }
}

void CheckGolden(const std::string& name,
                 const std::function<Result<std::uint64_t>(SnapshotStore&)>&
                     save) {
  const std::string golden = GoldenDir(name);
  if (BlessMode()) {
    WriteStore(golden, save);
    GTEST_SKIP() << "blessed " << golden;
  }
  const std::string fresh = ::testing::TempDir() + "/golden_" + name;
  WriteStore(fresh, save);
  for (const char* file :
       {"CURRENT", "gen-000001/MANIFEST", "gen-000001/shards.mvps"}) {
    ExpectFileBytesEqual(golden + "/" + file, fresh + "/" + file);
  }
  std::filesystem::remove_all(fresh);
}

TEST(FlatFormatGoldenTest, HeapSnapshotBytesStable) {
  CheckGolden("golden_heap", [](SnapshotStore& store) {
    return store.SaveSharded(GoldenIndex(), VectorCodec());
  });
}

TEST(FlatFormatGoldenTest, FlatSnapshotBytesStable) {
  CheckGolden("golden_flat", [](SnapshotStore& store) {
    return store.SaveFlat(GoldenIndex());
  });
}

TEST(FlatFormatGoldenTest, GoldenHeapFixtureLoadsAndMatchesRebuild) {
  if (BlessMode()) GTEST_SKIP();
  SnapshotStore store(GoldenDir("golden_heap"));
  auto loaded = store.LoadSharded<Vector>(L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Index rebuilt = GoldenIndex();
  const auto queries = dataset::UniformQueryVectors(40, 4, 11);
  for (const auto& q : queries) {
    const auto a = loaded.value().index.KnnSearch(q, 5);
    const auto b = rebuilt.KnnSearch(q, 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
  }
}

TEST(FlatFormatGoldenTest, GoldenFlatFixtureLoadsAndMatchesRebuild) {
  if (BlessMode()) GTEST_SKIP();
  SnapshotStore store(GoldenDir("golden_flat"));
  auto loaded = store.OpenFlat(L2());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().index.flat_serving());
  const Index rebuilt = GoldenIndex();
  const auto queries = dataset::UniformQueryVectors(40, 4, 11);
  for (const auto& q : queries) {
    const auto a = loaded.value().index.RangeSearch(q, 0.5);
    const auto b = rebuilt.RangeSearch(q, 0.5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
  }
}

/// The v1 arena fixture is FROZEN: it was blessed before the v2 SoA-leaf
/// layout existed and is never re-blessed, so this test proves the current
/// reader keeps opening real v1 snapshots from the field — and answers
/// queries over them bit-identically to a fresh build. (Bless mode leaves
/// the directory untouched on purpose.)
TEST(FlatFormatGoldenTest, FrozenV1FixtureStillOpensAndMatchesRebuild) {
  if (BlessMode()) GTEST_SKIP() << "frozen fixture is never re-blessed";
  SnapshotStore store(GoldenDir("golden_flat_v1"));
  auto loaded = store.OpenFlat(L2());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().index.flat_serving());
  for (std::size_t s = 0; s < loaded.value().index.num_shards(); ++s) {
    EXPECT_EQ(loaded.value().index.flat_shard(s).version(),
              flat::kFlatVersionV1);
  }
  const Index rebuilt = GoldenIndex();
  const auto queries = dataset::UniformQueryVectors(40, 4, 11);
  for (const auto& q : queries) {
    SearchStats vs, rs;
    const auto a = loaded.value().index.RangeSearch(q, 0.5, &vs);
    const auto b = rebuilt.RangeSearch(q, 0.5, &rs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
    EXPECT_EQ(vs.distance_computations, rs.distance_computations);
  }
}

TEST(FlatFormatGoldenTest, GoldenFlatFixtureIsCurrentVersion) {
  if (BlessMode()) GTEST_SKIP();
  SnapshotStore store(GoldenDir("golden_flat"));
  auto loaded = store.OpenFlat(L2());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (std::size_t s = 0; s < loaded.value().index.num_shards(); ++s) {
    EXPECT_EQ(loaded.value().index.flat_shard(s).version(),
              flat::kFlatVersionLatest);
  }
}

TEST(FlatFormatGoldenTest, GoldenFixturesAgreeWithEachOther) {
  if (BlessMode()) GTEST_SKIP();
  SnapshotStore heap_store(GoldenDir("golden_heap"));
  SnapshotStore flat_store(GoldenDir("golden_flat"));
  auto heap = heap_store.LoadSharded<Vector>(L2(), VectorCodec());
  auto flat = flat_store.OpenFlat(L2());
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  const auto queries = dataset::UniformQueryVectors(40, 4, 12);
  for (const auto& q : queries) {
    SearchStats hs, fs;
    const auto a = heap.value().index.KnnSearch(q, 7, &hs);
    const auto b = flat.value().index.KnnSearch(q, 7, &fs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
    EXPECT_EQ(hs.distance_computations, fs.distance_computations);
  }
}

}  // namespace
}  // namespace mvp::snapshot

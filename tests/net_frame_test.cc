// Adversarial wire-protocol tests: the framing layer must turn every kind
// of mangled input — truncated frames, bit flips anywhere in the stream,
// adversarial length prefixes, mid-stream disconnects, raw garbage thrown
// at a live server — into a clean Status, never a crash, hang, or
// unbounded allocation. The sweep style mirrors the snapshot corruption
// tests: enumerate every byte position, assert the taxonomy.

#include "fault/fault_fs.h"  // platform gate: defines MVPTREE_FAULT_FS_POSIX

#if defined(MVPTREE_FAULT_FS_POSIX)

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "fault/failpoint.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"

namespace mvp::net {
namespace {

/// A connected AF_UNIX stream pair; the tests write mangled bytes into one
/// end and run RecvFrame on the other.
class SocketPair {
 public:
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a_ = fds[0];
    b_ = fds[1];
  }
  ~SocketPair() {
    CloseA();
    CloseB();
  }
  int a() const { return a_; }
  int b() const { return b_; }
  void CloseA() {
    if (a_ >= 0) ::close(a_);
    a_ = -1;
  }
  void CloseB() {
    if (b_ >= 0) ::close(b_);
    b_ = -1;
  }

 private:
  int a_ = -1;
  int b_ = -1;
};

void WriteRaw(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const long n = ::write(fd, data + sent, size - sent);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

std::vector<std::uint8_t> SamplePayload() {
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 64; ++i) {
    payload.push_back(static_cast<std::uint8_t>(i * 7 + 3));
  }
  return payload;
}

/// The full byte stream of one valid frame, captured off a socket.
std::vector<std::uint8_t> EncodedFrame(const std::vector<std::uint8_t>& payload) {
  SocketPair pair;
  EXPECT_TRUE(SendFrame(pair.a(), payload.data(), payload.size(), "test").ok());
  std::vector<std::uint8_t> bytes(kFrameHeaderBytes + payload.size());
  std::size_t got = 0;
  while (got < bytes.size()) {
    const long n = ::read(pair.b(), bytes.data() + got, bytes.size() - got);
    EXPECT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  return bytes;
}

class NetFrameTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Failpoints::Instance().DisarmAll(); }
};

TEST_F(NetFrameTest, RoundTrip) {
  SocketPair pair;
  const auto payload = SamplePayload();
  ASSERT_TRUE(SendFrame(pair.a(), payload.data(), payload.size(), "test").ok());
  auto received = RecvFrame(pair.b(), "test");
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received.value(), payload);
}

TEST_F(NetFrameTest, EmptyPayloadRoundTrips) {
  SocketPair pair;
  ASSERT_TRUE(SendFrame(pair.a(), nullptr, 0, "test").ok());
  auto received = RecvFrame(pair.b(), "test");
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received.value().empty());
}

TEST_F(NetFrameTest, CleanCloseBetweenFramesIsNotFound) {
  SocketPair pair;
  pair.CloseA();
  auto received = RecvFrame(pair.b(), "test");
  EXPECT_EQ(received.status().code(), StatusCode::kNotFound);
}

// Every possible truncation point: the peer dies after N bytes of a valid
// frame, for every N short of the full frame. The receiver must report a
// torn frame (IOError), never hang or return a short payload as success.
TEST_F(NetFrameTest, TruncationSweep) {
  const auto frame = EncodedFrame(SamplePayload());
  for (std::size_t cut = 1; cut < frame.size(); ++cut) {
    SocketPair pair;
    WriteRaw(pair.a(), frame.data(), cut);
    pair.CloseA();
    auto received = RecvFrame(pair.b(), "test");
    ASSERT_FALSE(received.ok()) << "cut=" << cut;
    EXPECT_EQ(received.status().code(), StatusCode::kIOError)
        << "cut=" << cut << ": " << received.status().ToString();
  }
}

// Every single-bit-flip of every byte of a valid frame must surface as a
// clean error — Corruption for magic/CRC/payload damage, InvalidArgument
// for a length inflated past the cap, IOError when a shrunken length
// leaves the CRC check reading short. Never OK, never a crash.
TEST_F(NetFrameTest, BitFlipSweep) {
  const auto frame = EncodedFrame(SamplePayload());
  for (std::size_t pos = 0; pos < frame.size(); ++pos) {
    for (int bit = 0; bit < 8; bit += 3) {
      auto mangled = frame;
      mangled[pos] = static_cast<std::uint8_t>(mangled[pos] ^ (1u << bit));
      SocketPair pair;
      WriteRaw(pair.a(), mangled.data(), mangled.size());
      pair.CloseA();
      auto received = RecvFrame(pair.b(), "test");
      ASSERT_FALSE(received.ok()) << "pos=" << pos << " bit=" << bit;
      const StatusCode code = received.status().code();
      EXPECT_TRUE(code == StatusCode::kCorruption ||
                  code == StatusCode::kInvalidArgument ||
                  code == StatusCode::kIOError)
          << "pos=" << pos << " bit=" << bit << ": "
          << received.status().ToString();
    }
  }
}

// An adversarial length prefix must be rejected BEFORE any allocation: a
// 4 GiB length comes back InvalidArgument immediately, no resize attempt.
TEST_F(NetFrameTest, AdversarialLengthPrefix) {
  for (const std::uint32_t length :
       {static_cast<std::uint32_t>(kMaxFramePayload + 1), 0x7fffffffu,
        0xffffffffu}) {
    SocketPair pair;
    BinaryWriter header;
    header.Write<std::uint32_t>(kFrameMagic);
    header.Write<std::uint32_t>(length);
    header.Write<std::uint32_t>(0);  // CRC never reached
    WriteRaw(pair.a(), header.buffer().data(), header.buffer().size());
    auto received = RecvFrame(pair.b(), "test");
    EXPECT_EQ(received.status().code(), StatusCode::kInvalidArgument)
        << "length=" << length;
  }
}

TEST_F(NetFrameTest, CallerSuppliedCapIsHonoured) {
  SocketPair pair;
  const auto payload = SamplePayload();
  ASSERT_TRUE(SendFrame(pair.a(), payload.data(), payload.size(), "test").ok());
  auto received = RecvFrame(pair.b(), "test", /*max_payload=*/8);
  EXPECT_EQ(received.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(NetFrameTest, BadMagicIsCorruption) {
  SocketPair pair;
  BinaryWriter header;
  header.Write<std::uint32_t>(0xdeadbeef);
  header.Write<std::uint32_t>(4);
  header.Write<std::uint32_t>(0);
  WriteRaw(pair.a(), header.buffer().data(), header.buffer().size());
  auto received = RecvFrame(pair.b(), "test");
  EXPECT_EQ(received.status().code(), StatusCode::kCorruption);
}

// Mid-stream disconnects injected at the syscall seam: the recv dies with
// a connection reset partway into a frame.
TEST_F(NetFrameTest, InjectedRecvFailureMidFrame) {
  for (const std::uint64_t skip : {0u, 1u}) {
    SocketPair pair;
    const auto payload = SamplePayload();
    ASSERT_TRUE(
        SendFrame(pair.a(), payload.data(), payload.size(), "test").ok());
    fault::FailpointConfig config;
    config.skip = skip;
    config.match = "torn";
    fault::ScopedFailpoint failpoint("net/recv", config);
    auto received = RecvFrame(pair.b(), "torn");
    ASSERT_FALSE(received.ok()) << "skip=" << skip;
    EXPECT_EQ(received.status().code(), StatusCode::kIOError);
  }
}

TEST_F(NetFrameTest, InjectedSendFailureIncludingShortWrite) {
  for (const std::int64_t short_write : {-1, 5}) {
    SocketPair pair;
    fault::FailpointConfig config;
    config.match = "torn";
    config.short_write = short_write;
    fault::ScopedFailpoint failpoint("net/send", config);
    const auto payload = SamplePayload();
    const Status status =
        SendFrame(pair.a(), payload.data(), payload.size(), "torn");
    ASSERT_FALSE(status.ok()) << "short_write=" << short_write;
    EXPECT_EQ(status.code(), StatusCode::kIOError);
  }
}

// Message-codec hardening: a CRC-valid frame whose *payload* carries an
// adversarial element count must fail the length-prefix guard, not
// attempt a giant resize.
TEST_F(NetFrameTest, AdversarialNeighborCountInOutcome) {
  BinaryWriter payload;
  payload.Write<std::uint32_t>(0);  // status code OK
  payload.WriteString("");
  payload.Write<std::uint8_t>(0);                 // partial
  payload.Write<std::uint64_t>(0);                // latency
  payload.Write<std::uint64_t>(0);                // distance computations
  for (int i = 0; i < 4; ++i) payload.Write<std::uint64_t>(0);  // SearchStats
  payload.Write<std::uint64_t>(std::uint64_t{1} << 60);  // neighbor count
  BinaryReader reader(payload.buffer());
  WireOutcome outcome;
  EXPECT_EQ(DecodeOutcome(&reader, &outcome).code(), StatusCode::kCorruption);
}

TEST_F(NetFrameTest, OutOfRangeStatusCodeIsCorruption) {
  BinaryWriter payload;
  payload.Write<std::uint32_t>(250);
  payload.WriteString("weird");
  BinaryReader reader(payload.buffer());
  Status decoded;
  EXPECT_EQ(DecodeResponseStatus(&reader, &decoded).code(),
            StatusCode::kCorruption);
}

/// Opens a raw TCP connection to the loopback server, bypassing Client —
/// for injecting bytes no well-behaved client would send.
int RawConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

// A live server fed raw garbage must answer with a clean error (when the
// stream still parses as a frame) or hang up — and keep serving proper
// clients afterwards. No crash, no wedged accept loop.
TEST_F(NetFrameTest, GarbageAgainstLiveServer) {
  ServerOptions options;  // zero collections: pure protocol surface
  auto server = Server::Start(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const std::uint16_t port = server.value()->port();

  {
    // Garbage bytes that are not even a frame header: the server answers
    // with a Corruption response frame and closes the connection.
    const int fd = RawConnect(port);
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    WriteRaw(fd, reinterpret_cast<const std::uint8_t*>(junk), sizeof(junk));
    auto response = RecvFrame(fd, "test");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    BinaryReader reader(response.value());
    Status server_status;
    ASSERT_TRUE(DecodeResponseStatus(&reader, &server_status).ok());
    EXPECT_EQ(server_status.code(), StatusCode::kCorruption);
    // The stream lost sync, so the server hangs up after the error. The
    // leftover junk in the server's receive buffer can turn the close into
    // an RST, so either a clean EOF or a reset is acceptable here.
    auto next = RecvFrame(fd, "test");
    EXPECT_TRUE(next.status().code() == StatusCode::kNotFound ||
                next.status().code() == StatusCode::kIOError)
        << next.status().ToString();
    ::close(fd);
  }
  {
    // A valid frame carrying an unknown op: InvalidArgument response, and
    // the connection stays usable (the frame itself was intact).
    const int fd = RawConnect(port);
    BinaryWriter request;
    request.Write<std::uint32_t>(0xfeedfaceu);
    ASSERT_TRUE(SendFrame(fd, request.buffer().data(),
                          request.buffer().size(), "test")
                    .ok());
    auto response = RecvFrame(fd, "test");
    ASSERT_TRUE(response.ok());
    BinaryReader reader(response.value());
    Status server_status;
    ASSERT_TRUE(DecodeResponseStatus(&reader, &server_status).ok());
    EXPECT_EQ(server_status.code(), StatusCode::kInvalidArgument);
    BinaryWriter ping;
    ping.Write<std::uint32_t>(static_cast<std::uint32_t>(Op::kPing));
    ASSERT_TRUE(
        SendFrame(fd, ping.buffer().data(), ping.buffer().size(), "test")
            .ok());
    auto pong = RecvFrame(fd, "test");
    EXPECT_TRUE(pong.ok()) << pong.status().ToString();
    ::close(fd);
  }
  {
    // An adversarial length prefix straight at the server, then a flood of
    // truncated headers with abrupt disconnects.
    const int fd = RawConnect(port);
    BinaryWriter header;
    header.Write<std::uint32_t>(kFrameMagic);
    header.Write<std::uint32_t>(0xffffffffu);
    header.Write<std::uint32_t>(0);
    WriteRaw(fd, header.buffer().data(), header.buffer().size());
    auto response = RecvFrame(fd, "test");
    ASSERT_TRUE(response.ok());
    BinaryReader reader(response.value());
    Status server_status;
    ASSERT_TRUE(DecodeResponseStatus(&reader, &server_status).ok());
    EXPECT_EQ(server_status.code(), StatusCode::kInvalidArgument);
    ::close(fd);
  }
  for (int round = 0; round < 4; ++round) {
    const int fd = RawConnect(port);
    const std::uint8_t partial[] = {0x4d, 0x56, 0x50};  // 3 bytes of magic
    WriteRaw(fd, partial, round);  // 0..3 bytes, then vanish
    ::close(fd);
  }

  // After all the abuse the server still answers a well-behaved client.
  auto client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value().Ping().ok());
  auto collections = client.value().ListCollections();
  ASSERT_TRUE(collections.ok());
  EXPECT_TRUE(collections.value().empty());
  server.value()->Stop();
}

}  // namespace
}  // namespace mvp::net

#endif  // MVPTREE_FAULT_FS_POSIX

#include "core/mvp_tree.h"

#include <gtest/gtest.h>

#include <limits>

#include "dataset/image.h"
#include "dataset/image_gen.h"
#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/counting.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::core {
namespace {

using metric::L2;
using metric::Vector;
using VecTree = MvpTree<Vector, L2>;

VecTree MustBuild(std::vector<Vector> data, VecTree::Options options = {}) {
  auto result = VecTree::Build(std::move(data), L2(), options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

TEST(MvpTreeTest, RejectsBadOptions) {
  VecTree::Options options;
  options.order = 1;
  EXPECT_EQ(VecTree::Build({}, L2(), options).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.leaf_capacity = 0;
  EXPECT_EQ(VecTree::Build({}, L2(), options).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.num_path_distances = -1;
  EXPECT_EQ(VecTree::Build({}, L2(), options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MvpTreeTest, EmptyTree) {
  auto tree = MustBuild({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.RangeSearch({0, 0}, 1.0).empty());
  EXPECT_TRUE(tree.KnnSearch({0, 0}, 3).empty());
}

TEST(MvpTreeTest, SinglePointBecomesVantagePoint) {
  auto tree = MustBuild({{1, 2}});
  const auto hits = tree.RangeSearch({1, 2}, 0.5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
  const auto stats = tree.Stats();
  EXPECT_EQ(stats.num_vantage_points, 1u);
  EXPECT_EQ(stats.num_leaf_points, 0u);
}

TEST(MvpTreeTest, TwoPointsBothVantagePoints) {
  auto tree = MustBuild({{0, 0}, {5, 5}});
  EXPECT_EQ(tree.RangeSearch({0, 0}, 10.0).size(), 2u);
  const auto stats = tree.Stats();
  EXPECT_EQ(stats.num_vantage_points, 2u);
  EXPECT_EQ(stats.num_leaf_points, 0u);
}

TEST(MvpTreeTest, ThreePointsOneLeafPoint) {
  auto tree = MustBuild({{0, 0}, {5, 5}, {1, 1}});
  EXPECT_EQ(tree.RangeSearch({0, 0}, 10.0).size(), 3u);
  const auto stats = tree.Stats();
  EXPECT_EQ(stats.num_vantage_points, 2u);
  EXPECT_EQ(stats.num_leaf_points, 1u);
}

TEST(MvpTreeTest, AllIdenticalPoints) {
  std::vector<Vector> data(100, Vector{1, 1});
  auto tree = MustBuild(data);
  EXPECT_EQ(tree.RangeSearch({1, 1}, 0.0).size(), 100u);
  EXPECT_TRUE(tree.RangeSearch({9, 9}, 1.0).empty());
  EXPECT_EQ(tree.KnnSearch({3, 3}, 11).size(), 11u);
}

TEST(MvpTreeTest, DuplicateHeavyDataset) {
  // Half the points identical, half unique: exercises cutoff ties.
  auto data = dataset::UniformVectors(100, 3, 61);
  for (int i = 0; i < 100; ++i) data.push_back(Vector{0.5, 0.5, 0.5});
  auto tree = MustBuild(data);
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(10, 3, 67);
  for (const auto& q : queries) {
    for (const double r : {0.0, 0.2, 0.5, 1.0}) {
      EXPECT_EQ(tree.RangeSearch(q, r).size(),
                reference.RangeSearch(q, r).size());
    }
  }
  EXPECT_EQ(tree.RangeSearch({0.5, 0.5, 0.5}, 0.0).size(), 100u);
}

TEST(MvpTreeTest, EveryPointRetrievableIncludingInternalVantagePoints) {
  const auto data = dataset::UniformVectors(777, 6, 71);
  auto tree = MustBuild(data);
  const auto all = tree.RangeSearch(Vector(6, 0.5), 1e6);
  ASSERT_EQ(all.size(), 777u);
  // ids must be a permutation of 0..n-1
  std::vector<bool> seen(777, false);
  for (const auto& n : all) {
    EXPECT_FALSE(seen[n.id]);
    seen[n.id] = true;
  }
}

TEST(MvpTreeTest, ReportedDistancesAreExact) {
  const auto data = dataset::UniformVectors(200, 5, 73);
  auto tree = MustBuild(data);
  const Vector q(5, 0.3);
  L2 d;
  for (const auto& hit : tree.RangeSearch(q, 0.7)) {
    EXPECT_DOUBLE_EQ(hit.distance, d(q, data[hit.id]));
  }
}

TEST(MvpTreeTest, SearchStatsMatchCountingMetric) {
  const auto data = dataset::UniformVectors(800, 8, 79);
  metric::DistanceCounter counter;
  auto counted = metric::MakeCounting(L2(), counter);
  using CountedTree = MvpTree<Vector, metric::CountingMetric<L2>>;
  auto result = CountedTree::Build(data, counted, {});
  ASSERT_TRUE(result.ok());
  auto& tree = result.value();
  // Construction cost is tracked too.
  EXPECT_EQ(tree.Stats().construction_distance_computations, counter.count());
  counter.Reset();
  SearchStats stats;
  tree.RangeSearch(data[3], 0.4, &stats);
  EXPECT_EQ(stats.distance_computations, counter.count());
  counter.Reset();
  stats = {};
  tree.KnnSearch(data[3], 10, &stats);
  EXPECT_EQ(stats.distance_computations, counter.count());
}

TEST(MvpTreeTest, LeafFilteringRejectsWithoutComputing) {
  // For a tiny radius nearly every leaf point must be rejected by the
  // stored D1/D2/PATH distances, i.e. filtered > 0 and far fewer distance
  // computations than points seen.
  const auto data = dataset::UniformVectors(5000, 20, 83);
  auto tree = MustBuild(data);
  SearchStats stats;
  tree.RangeSearch(dataset::UniformQueryVectors(1, 20, 5)[0], 0.15, &stats);
  EXPECT_GT(stats.leaf_points_filtered, 0u);
  EXPECT_LT(stats.distance_computations,
            stats.leaf_points_seen + 2 * stats.nodes_visited);
}

TEST(MvpTreeTest, BeatsLinearScanOnModerateRadius) {
  const auto data = dataset::UniformVectors(5000, 20, 89);
  auto tree = MustBuild(data);
  SearchStats stats;
  tree.RangeSearch(dataset::UniformQueryVectors(1, 20, 7)[0], 0.3, &stats);
  EXPECT_LT(stats.distance_computations, 5000u);
}

TEST(MvpTreeTest, HigherLeafCapacityUsesFewerDistances) {
  // §5.2's headline observation: mvpt(3,80) dominates mvpt(3,9) at small
  // query ranges. Note the dataset size matters: with fanout m^2 = 9 the
  // subtree sizes at successive levels jump by ~9x, so k=9 and k=80 only
  // produce different trees when some level's subtree size falls inside
  // (k_small+2, k_big+2]; 30000 -> ~3333 -> ~370 -> ~41 does.
  const auto data = dataset::UniformVectors(30000, 20, 97);
  VecTree::Options small_leaf;
  small_leaf.order = 3;
  small_leaf.leaf_capacity = 9;
  small_leaf.num_path_distances = 5;
  VecTree::Options big_leaf = small_leaf;
  big_leaf.leaf_capacity = 80;
  auto tree_small = MustBuild(data, small_leaf);
  auto tree_big = MustBuild(data, big_leaf);
  // The structures must actually differ (see the note above).
  EXPECT_LT(tree_big.Stats().num_leaf_nodes,
            tree_small.Stats().num_leaf_nodes);
  EXPECT_GT(tree_big.Stats().num_leaf_points,
            tree_small.Stats().num_leaf_points);

  const auto queries = dataset::UniformQueryVectors(20, 20, 11);
  std::uint64_t cost_small = 0, cost_big = 0;
  for (const auto& q : queries) {
    SearchStats a, b;
    tree_small.RangeSearch(q, 0.2, &a);
    tree_big.RangeSearch(q, 0.2, &b);
    cost_small += a.distance_computations;
    cost_big += b.distance_computations;
  }
  EXPECT_LT(cost_big, cost_small);
}

TEST(MvpTreeTest, PathDistancesImproveFiltering) {
  // Observation 2: keeping PATH distances must reduce distance
  // computations relative to p=0 on the same tree shape.
  const auto data = dataset::UniformVectors(8000, 20, 101);
  VecTree::Options with_path;
  with_path.num_path_distances = 5;
  VecTree::Options no_path = with_path;
  no_path.num_path_distances = 0;
  auto tree_path = MustBuild(data, with_path);
  auto tree_bare = MustBuild(data, no_path);

  const auto queries = dataset::UniformQueryVectors(20, 20, 13);
  std::uint64_t cost_path = 0, cost_bare = 0;
  for (const auto& q : queries) {
    SearchStats a, b;
    tree_path.RangeSearch(q, 0.25, &a);
    tree_bare.RangeSearch(q, 0.25, &b);
    cost_path += a.distance_computations;
    cost_bare += b.distance_computations;
  }
  EXPECT_LT(cost_path, cost_bare);
}

TEST(MvpTreeTest, StatsAccountForEveryPoint) {
  for (const std::size_t n : {1u, 2u, 3u, 10u, 100u, 1000u}) {
    const auto data = dataset::UniformVectors(n, 4, 103 + n);
    auto tree = MustBuild(data);
    const auto stats = tree.Stats();
    EXPECT_EQ(stats.num_vantage_points + stats.num_leaf_points, n)
        << "n=" << n;
  }
}

TEST(MvpTreeTest, FullTreeMatchesPaperFormulas) {
  // §4.2: a full mvp-tree of height h has 2*(m^2h - 1)/(m^2-1) vantage
  // points and m^(2(h-1))*k leaf points. Build an exactly-full tree:
  // m=2, k=2, height 2: internal root (2 vps) + 4 leaves of (2 vps + 2
  // points) = 2 + 4*2 = 10 vantage points, 8 leaf points, n = 18.
  // Height-2 fullness requires each leaf to get exactly k+2 = 4 points:
  // root consumes 2, leaving 16 = 4*4.
  const auto data = dataset::UniformVectors(18, 3, 107);
  VecTree::Options options;
  options.order = 2;
  options.leaf_capacity = 2;
  options.num_path_distances = 2;
  auto tree = MustBuild(data, options);
  const auto stats = tree.Stats();
  EXPECT_EQ(stats.height, 2u);
  EXPECT_EQ(stats.num_internal_nodes, 1u);
  EXPECT_EQ(stats.num_leaf_nodes, 4u);
  EXPECT_EQ(stats.num_vantage_points, 10u);  // 2*(2^4-1)/(2^2-1) = 10
  EXPECT_EQ(stats.num_leaf_points, 8u);      // 2^(2*(2-1)) * k = 4*2
}

TEST(MvpTreeTest, ApproximateKnnWithInfiniteBudgetIsExact) {
  const auto data = dataset::UniformVectors(1500, 8, 301);
  auto tree = MustBuild(data);
  const auto queries = dataset::UniformQueryVectors(6, 8, 303);
  for (const auto& q : queries) {
    const auto exact = tree.KnnSearch(q, 10);
    const auto approx = tree.KnnSearchApproximate(
        q, 10, std::numeric_limits<std::uint64_t>::max());
    ASSERT_EQ(approx.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(approx[i].id, exact[i].id);
    }
  }
}

TEST(MvpTreeTest, ApproximateKnnRespectsBudget) {
  const auto data = dataset::UniformVectors(3000, 10, 307);
  auto tree = MustBuild(data);
  const auto q = dataset::UniformQueryVectors(1, 10, 309)[0];
  for (const std::uint64_t budget : {1ull, 10ull, 100ull, 500ull}) {
    SearchStats stats;
    tree.KnnSearchApproximate(q, 5, budget, &stats);
    EXPECT_LE(stats.distance_computations, budget) << "budget " << budget;
  }
  // Zero budget: empty result, zero computations.
  SearchStats stats;
  const auto none = tree.KnnSearchApproximate(q, 5, 0, &stats);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(stats.distance_computations, 0u);
}

TEST(MvpTreeTest, ApproximateKnnRecallGrowsWithBudget) {
  // On clustered data (meaningful neighbors) recall should climb quickly
  // and monotonically-ish with the budget; verify endpoints.
  dataset::ClusterParams params;
  params.count = 5000;
  params.dim = 10;
  params.cluster_size = 500;
  const auto data = dataset::ClusteredVectors(params, 311);
  auto tree = MustBuild(data);
  Vector q = data[123];
  for (auto& x : q) x += 0.01;

  const auto exact = tree.KnnSearch(q, 10);
  auto recall_at = [&](std::uint64_t budget) {
    const auto approx = tree.KnnSearchApproximate(q, 10, budget);
    std::size_t hits = 0;
    for (const auto& a : approx) {
      for (const auto& e : exact) hits += a.id == e.id ? 1 : 0;
    }
    return static_cast<double>(hits) / static_cast<double>(exact.size());
  };
  EXPECT_LT(recall_at(5), 1.0);  // tiny budget cannot finish
  EXPECT_GT(recall_at(200), 0.5);
  EXPECT_DOUBLE_EQ(recall_at(1000000), 1.0);
}

TEST(MvpTreeTest, FreshTreesPassValidation) {
  for (const std::size_t n : {0u, 1u, 2u, 5u, 50u, 500u}) {
    const auto data = dataset::UniformVectors(n, 5, 211 + n);
    auto tree = MustBuild(data);
    EXPECT_TRUE(tree.ValidateInvariants().ok()) << "n=" << n;
  }
  // Across parameter settings too.
  const auto data = dataset::UniformVectors(400, 6, 213);
  for (const int m : {2, 4}) {
    for (const int p : {0, 3, 9}) {
      VecTree::Options options;
      options.order = m;
      options.leaf_capacity = 7;
      options.num_path_distances = p;
      auto tree = MustBuild(data, options);
      EXPECT_TRUE(tree.ValidateInvariants().ok()) << "m=" << m << " p=" << p;
    }
  }
}

TEST(MvpTreeTest, ValidationSurvivesSerializationRoundTrip) {
  const auto data = dataset::UniformVectors(300, 5, 217);
  auto tree = MustBuild(data);
  BinaryWriter writer;
  ASSERT_TRUE(tree.Serialize(&writer, VectorCodec()).ok());
  BinaryReader reader(writer.buffer());
  auto loaded = VecTree::Deserialize(&reader, L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().ValidateInvariants().ok());
}

TEST(MvpTreeTest, ValidationCatchesTamperedDistances) {
  // Flip bytes in the serialized stored-distance region: structurally valid
  // trees with lying D1/D2/PATH values must fail deep validation (while
  // Deserialize alone cannot catch them).
  const auto data = dataset::UniformVectors(200, 4, 219);
  auto tree = MustBuild(data);
  BinaryWriter writer;
  ASSERT_TRUE(tree.Serialize(&writer, VectorCodec()).ok());
  auto bytes = writer.TakeBuffer();
  int tampered_but_loaded = 0, caught = 0;
  for (std::size_t pos = bytes.size() * 3 / 4; pos + 8 < bytes.size();
       pos += 53) {
    auto corrupted = bytes;
    corrupted[pos] ^= 0x3f;
    BinaryReader reader(corrupted);
    auto loaded = VecTree::Deserialize(&reader, L2(), VectorCodec());
    if (!loaded.ok()) continue;  // structural validation already caught it
    ++tampered_but_loaded;
    if (!loaded.value().ValidateInvariants().ok()) ++caught;
  }
  // At least some flips must have landed in distance payloads and been
  // caught by the deep check.
  ASSERT_GT(tampered_but_loaded, 0);
  EXPECT_GT(caught, 0);
}

TEST(MvpTreeTest, DeterministicForFixedSeed) {
  const auto data = dataset::UniformVectors(500, 6, 109);
  VecTree::Options options;
  options.seed = 31;
  auto a = MustBuild(data, options);
  auto b = MustBuild(data, options);
  SearchStats sa, sb;
  const Vector q(6, 0.4);
  const auto ra = a.RangeSearch(q, 0.5, &sa);
  const auto rb = b.RangeSearch(q, 0.5, &sb);
  EXPECT_EQ(sa.distance_computations, sb.distance_computations);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i].id, rb[i].id);
}

TEST(MvpTreeTest, DifferentSeedsStillCorrect) {
  const auto data = dataset::UniformVectors(400, 5, 113);
  scan::LinearScan<Vector, L2> reference(data, L2());
  const Vector q(5, 0.6);
  const auto expected = reference.RangeSearch(q, 0.4);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    VecTree::Options options;
    options.seed = seed;
    auto tree = MustBuild(data, options);
    const auto got = tree.RangeSearch(q, 0.4);
    ASSERT_EQ(got.size(), expected.size()) << "seed " << seed;
  }
}

TEST(MvpTreeTest, WorksWithLInfAndFractionlessLp) {
  const auto data = dataset::UniformVectors(400, 6, 121);
  const auto queries = dataset::UniformQueryVectors(5, 6, 123);
  {
    using TreeInf = MvpTree<Vector, metric::LInf>;
    auto tree = TreeInf::Build(data, metric::LInf(), {});
    ASSERT_TRUE(tree.ok());
    scan::LinearScan<Vector, metric::LInf> reference(data, metric::LInf());
    for (const auto& q : queries) {
      for (const double r : {0.1, 0.3, 0.6}) {
        EXPECT_EQ(tree.value().RangeSearch(q, r).size(),
                  reference.RangeSearch(q, r).size());
      }
    }
  }
  {
    using TreeLp = MvpTree<Vector, metric::Lp>;
    auto tree = TreeLp::Build(data, metric::Lp(3.0), {});
    ASSERT_TRUE(tree.ok());
    scan::LinearScan<Vector, metric::Lp> reference(data, metric::Lp(3.0));
    for (const auto& q : queries) {
      for (const double r : {0.2, 0.5, 1.0}) {
        EXPECT_EQ(tree.value().RangeSearch(q, r).size(),
                  reference.RangeSearch(q, r).size());
      }
    }
  }
}

TEST(MvpTreeTest, WorksWithEditDistance) {
  auto words = dataset::SyntheticWords(400, 127);
  using WordTree = MvpTree<std::string, metric::Levenshtein>;
  WordTree::Options options;
  options.order = 2;
  options.leaf_capacity = 10;
  options.num_path_distances = 4;
  auto result = WordTree::Build(words, metric::Levenshtein(), options);
  ASSERT_TRUE(result.ok());
  auto& tree = result.value();
  scan::LinearScan<std::string, metric::Levenshtein> reference(
      words, metric::Levenshtein());
  for (const auto& probe : {words[0], words[100], words[399]}) {
    const std::string query = dataset::MutateWord(probe, 2, 5);
    for (const double r : {1.0, 2.0, 3.0}) {
      const auto got = tree.RangeSearch(query, r);
      const auto expected = reference.RangeSearch(query, r);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
      }
    }
  }
}

TEST(MvpTreeTest, WorksWithImages) {
  dataset::MriParams params;
  params.count = 60;
  params.subjects = 6;
  params.width = params.height = 24;
  const auto scans = dataset::MriPhantoms(params, 131);
  using ImgTree = MvpTree<dataset::Image, dataset::ImageL1>;
  ImgTree::Options options;
  options.order = 2;
  options.leaf_capacity = 5;
  options.num_path_distances = 4;
  auto result = ImgTree::Build(scans, dataset::ImageL1(), options);
  ASSERT_TRUE(result.ok());
  auto& tree = result.value();
  scan::LinearScan<dataset::Image, dataset::ImageL1> reference(
      scans, dataset::ImageL1());
  const auto query = dataset::MriPhantomScan(params, 131, 3, 500);
  for (const double r : {5.0, 20.0, 60.0}) {
    EXPECT_EQ(tree.RangeSearch(query, r).size(),
              reference.RangeSearch(query, r).size());
  }
}

TEST(MvpTreeTest, KnnFindsClusterScans) {
  dataset::MriParams params;
  params.count = 50;
  params.subjects = 10;
  params.width = params.height = 24;
  const auto scans = dataset::MriPhantoms(params, 137);
  using ImgTree = MvpTree<dataset::Image, dataset::ImageL2>;
  auto result = ImgTree::Build(scans, dataset::ImageL2(), {});
  ASSERT_TRUE(result.ok());
  const auto query = dataset::MriPhantomScan(params, 137, 4, 77);
  const auto nn = result.value().KnnSearch(query, 3);
  ASSERT_EQ(nn.size(), 3u);
  // All three nearest scans should be of subject 4 (round-robin layout).
  for (const auto& hit : nn) EXPECT_EQ(hit.id % params.subjects, 4u);
}

}  // namespace
}  // namespace mvp::core

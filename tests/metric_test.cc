#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dataset/image.h"
#include "metric/counting.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"

namespace mvp::metric {
namespace {

TEST(LpTest, L2HandComputed) {
  L2 d;
  EXPECT_DOUBLE_EQ(d({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(d({1, 1, 1}, {1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(d({-1, 0}, {1, 0}), 2.0);
}

TEST(LpTest, L1HandComputed) {
  L1 d;
  EXPECT_DOUBLE_EQ(d({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(d({-1, -2}, {1, 2}), 6.0);
}

TEST(LpTest, LInfHandComputed) {
  LInf d;
  EXPECT_DOUBLE_EQ(d({0, 0}, {3, 4}), 4.0);
  EXPECT_DOUBLE_EQ(d({5, 1}, {1, 2}), 4.0);
}

TEST(LpTest, GeneralLpMatchesSpecializations) {
  const Vector a{0.3, -1.2, 4.0, 0.0};
  const Vector b{1.1, 2.2, -0.5, 3.3};
  EXPECT_NEAR(Lp(1.0)(a, b), L1()(a, b), 1e-12);
  EXPECT_NEAR(Lp(2.0)(a, b), L2()(a, b), 1e-12);
  // Large p approaches LInf from above.
  EXPECT_NEAR(Lp(64.0)(a, b), LInf()(a, b), 0.2);
  EXPECT_GE(Lp(64.0)(a, b), LInf()(a, b));
}

// The integer-exponent fast path: Lp(1) and Lp(2) must be BIT-identical to
// the L1/L2 specializations (not merely near) — snapshots built under one
// spelling of the metric are served under the other, and the flat layouts
// byte-compare path distances. Exact equality of every result is the
// contract; EXPECT_EQ on doubles checks the bits here (no NaNs involved).
TEST(LpTest, IntegerExponentFastPathBitIdenticalToSpecializations) {
  Rng rng(20260809);
  const Lp lp1(1.0);
  const Lp lp2(2.0);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t dim = 1 + rng.NextBounded(33);
    Vector a(dim), b(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      a[i] = std::ldexp(rng.NextDouble() - 0.5,
                        static_cast<int>(rng.NextBounded(41)) - 20);
      b[i] = std::ldexp(rng.NextDouble() - 0.5,
                        static_cast<int>(rng.NextBounded(41)) - 20);
    }
    EXPECT_EQ(lp1(a, b), L1()(a, b));
    EXPECT_EQ(lp2(a, b), L2()(a, b));
  }
}

TEST(LpTest, WeightedLpIntegerExponentMatchesDirectEvaluation) {
  Rng rng(97);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t dim = 1 + rng.NextBounded(17);
    Vector a(dim), b(dim), w(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      a[i] = rng.NextDouble() * 4.0 - 2.0;
      b[i] = rng.NextDouble() * 4.0 - 2.0;
      w[i] = rng.NextDouble();
    }
    // p = 1: sum of weighted absolute differences, summed left to right —
    // the same order the fast path must use.
    double sum1 = 0.0;
    double sum2 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double term = w[i] * std::fabs(a[i] - b[i]);
      sum1 += term;
      sum2 += term * term;
    }
    EXPECT_EQ(WeightedLp(1.0, w)(a, b), sum1);
    EXPECT_EQ(WeightedLp(2.0, w)(a, b), std::sqrt(sum2));
  }
}

// Integral p >= 3 has no bit-identity pin to pow() (PowInt's multiply chain
// is not correctly rounded), but it must stay deterministic and close.
TEST(LpTest, LargerIntegerExponentsNearPowEvaluation) {
  const Vector a{0.3, -1.2, 4.0, 0.0, 2.5};
  const Vector b{1.1, 2.2, -0.5, 3.3, -0.25};
  for (const double p : {3.0, 4.0, 5.0, 8.0}) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      sum += std::pow(std::fabs(a[i] - b[i]), p);
    }
    const double want = std::pow(sum, 1.0 / p);
    EXPECT_NEAR(Lp(p)(a, b), want, 1e-12 * want);
    EXPECT_EQ(Lp(p)(a, b), Lp(p)(a, b));
  }
}

TEST(LpTest, LpMonotoneNonincreasingInP) {
  const Vector a{0.0, 0.0, 0.0};
  const Vector b{1.0, 2.0, 3.0};
  double prev = Lp(1.0)(a, b);
  for (double p = 1.5; p <= 8.0; p += 0.5) {
    const double cur = Lp(p)(a, b);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(LpTest, WeightedLpZeroWeightsIgnoreDimensions) {
  WeightedLp d(2.0, {1.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(d({0, 100, 0}, {3, -100, 4}), 5.0);
}

TEST(LpTest, WeightedLpUniformWeightsScale) {
  WeightedLp d(2.0, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(d({0, 0}, {3, 4}), 10.0);
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
  EXPECT_EQ(EditDistance("a", "b"), 1u);
}

TEST(EditDistanceTest, SymmetricOnAsymmetricLengths) {
  EXPECT_EQ(EditDistance("short", "a much longer string"),
            EditDistance("a much longer string", "short"));
}

TEST(BoundedEditDistanceTest, ExactWithinBound) {
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 3), 3u);
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 5), 3u);
  EXPECT_EQ(BoundedEditDistance("abc", "abc", 0), 0u);
}

TEST(BoundedEditDistanceTest, ExceedsBoundReportsOverflow) {
  EXPECT_GT(BoundedEditDistance("kitten", "sitting", 2), 2u);
  EXPECT_GT(BoundedEditDistance("", "abcdef", 3), 3u);
}

TEST(BoundedEditDistanceTest, AgreesWithExactOnRandomPairs) {
  // Deterministic mini-fuzz across short strings.
  const std::vector<std::string> words{"",      "a",     "ab",    "abc",
                                       "abcd",  "axcd",  "bacd",  "dcba",
                                       "aabb",  "abab",  "hello", "hallo",
                                       "world", "wordl", "wrld",  "w"};
  for (const auto& x : words) {
    for (const auto& y : words) {
      const unsigned exact = EditDistance(x, y);
      for (unsigned bound = 0; bound <= 6; ++bound) {
        const unsigned bounded = BoundedEditDistance(x, y, bound);
        if (exact <= bound) {
          EXPECT_EQ(bounded, exact) << x << " vs " << y << " bound " << bound;
        } else {
          EXPECT_GT(bounded, bound) << x << " vs " << y << " bound " << bound;
        }
      }
    }
  }
}

TEST(HammingTest, CountsDifferingPositions) {
  Hamming d;
  EXPECT_DOUBLE_EQ(d("karolin", "kathrin"), 3.0);
  EXPECT_DOUBLE_EQ(d("", ""), 0.0);
  EXPECT_DOUBLE_EQ(d("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(d("000", "111"), 3.0);
}

TEST(CountingMetricTest, CountsEveryInvocation) {
  DistanceCounter counter;
  auto counted = MakeCounting(L2(), counter);
  const Vector a{0, 0}, b{1, 1};
  EXPECT_EQ(counter.count(), 0u);
  counted(a, b);
  counted(a, b);
  counted(b, a);
  EXPECT_EQ(counter.count(), 3u);
  counter.Reset();
  EXPECT_EQ(counter.count(), 0u);
}

TEST(CountingMetricTest, CopiesShareTheCounter) {
  DistanceCounter counter;
  auto counted = MakeCounting(L2(), counter);
  auto copy = counted;  // indexes store metrics by value
  const Vector a{0, 0}, b{1, 1};
  counted(a, b);
  copy(a, b);
  EXPECT_EQ(counter.count(), 2u);
}

TEST(CountingMetricTest, PreservesDistanceValues) {
  DistanceCounter counter;
  auto counted = MakeCounting(L2(), counter);
  const Vector a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(counted(a, b), 5.0);
}

TEST(ImageMetricTest, IdenticalImagesAreAtDistanceZero) {
  dataset::Image img;
  img.width = 4;
  img.height = 4;
  img.pixels.assign(16, 100);
  EXPECT_DOUBLE_EQ(dataset::ImageL1()(img, img), 0.0);
  EXPECT_DOUBLE_EQ(dataset::ImageL2()(img, img), 0.0);
}

TEST(ImageMetricTest, NormalizationMatchesPaperAt256) {
  // At the paper's 256x256 resolution the normalizers are exactly the
  // paper's constants: 10000 for L1 and 100 for L2.
  EXPECT_DOUBLE_EQ(dataset::ImageL1Normalizer(65536), 10000.0);
  EXPECT_DOUBLE_EQ(dataset::ImageL2Normalizer(65536), 100.0);
}

TEST(ImageMetricTest, HandComputedDistances) {
  dataset::Image a, b;
  a.width = b.width = 2;
  a.height = b.height = 2;
  a.pixels = {0, 0, 0, 0};
  b.pixels = {10, 0, 0, 0};
  // L1: raw 10, normalizer 10000*4/65536.
  EXPECT_NEAR(dataset::ImageL1()(a, b), 10.0 / (10000.0 * 4 / 65536.0), 1e-9);
  // L2: raw 10, normalizer 100*sqrt(4/65536).
  EXPECT_NEAR(dataset::ImageL2()(a, b),
              10.0 / (100.0 * std::sqrt(4.0 / 65536.0)), 1e-9);
}

TEST(ImageMetricTest, ResolutionInvarianceOfNormalizedDistance) {
  // A constant intensity offset produces the same normalized L1 distance at
  // any resolution — the point of generalizing the paper's constants.
  auto make = [](std::uint16_t side, std::uint8_t level) {
    dataset::Image img;
    img.width = img.height = side;
    img.pixels.assign(static_cast<std::size_t>(side) * side, level);
    return img;
  };
  const double d64 = dataset::ImageL1()(make(64, 10), make(64, 30));
  const double d256 = dataset::ImageL1()(make(256, 10), make(256, 30));
  EXPECT_NEAR(d64, d256, 1e-9);
}

}  // namespace
}  // namespace mvp::metric

#include "core/generalized_mvp_tree.h"

#include <gtest/gtest.h>

#include <tuple>

#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/counting.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::core {
namespace {

using metric::L2;
using metric::Vector;
using GenTree = GeneralizedMvpTree<Vector, L2>;

TEST(GeneralizedMvpTreeTest, RejectsBadOptions) {
  GenTree::Options options;
  options.order = 1;
  EXPECT_FALSE(GenTree::Build({}, L2(), options).ok());
  options = {};
  options.vantage_points = 0;
  EXPECT_FALSE(GenTree::Build({}, L2(), options).ok());
  options = {};
  options.vantage_points = 9;
  EXPECT_FALSE(GenTree::Build({}, L2(), options).ok());
  options = {};
  options.order = 8;
  options.vantage_points = 8;  // fanout 8^8 >> 4096
  EXPECT_FALSE(GenTree::Build({}, L2(), options).ok());
  options = {};
  options.leaf_capacity = 0;
  EXPECT_FALSE(GenTree::Build({}, L2(), options).ok());
}

TEST(GeneralizedMvpTreeTest, EmptyAndTiny) {
  auto empty = GenTree::Build({}, L2(), {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().RangeSearch({0, 0}, 1.0).empty());
  for (std::size_t n = 1; n <= 6; ++n) {
    std::vector<Vector> data;
    for (std::size_t i = 0; i < n; ++i) {
      data.push_back(Vector{static_cast<double>(i), 0.0});
    }
    GenTree::Options options;
    options.vantage_points = 3;
    options.leaf_capacity = 2;
    auto tree = GenTree::Build(data, L2(), options);
    ASSERT_TRUE(tree.ok()) << "n=" << n;
    EXPECT_EQ(tree.value().RangeSearch({0, 0}, 100.0).size(), n);
  }
}

// (order m, vantage points v, leaf capacity k, path p, n, dim)
using Param = std::tuple<int, int, int, int, std::size_t, std::size_t>;

class GeneralizedSweepTest : public ::testing::TestWithParam<Param> {};

TEST_P(GeneralizedSweepTest, RangeSearchMatchesLinearScan) {
  const auto [m, v, k, p, n, dim] = GetParam();
  const auto data = dataset::UniformVectors(n, dim, 7);
  GenTree::Options options;
  options.order = m;
  options.vantage_points = v;
  options.leaf_capacity = k;
  options.num_path_distances = p;
  options.seed = 11;
  auto built = GenTree::Build(data, L2(), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(6, dim, 13);
  for (const auto& q : queries) {
    for (const double r : {0.0, 0.2, 0.6, 1.4}) {
      const auto got = built.value().RangeSearch(q, r);
      const auto expected = reference.RangeSearch(q, r);
      ASSERT_EQ(got.size(), expected.size())
          << "m=" << m << " v=" << v << " r=" << r;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
  }
}

TEST_P(GeneralizedSweepTest, KnnMatchesLinearScan) {
  const auto [m, v, k, p, n, dim] = GetParam();
  const auto data = dataset::UniformVectors(n, dim, 17);
  GenTree::Options options;
  options.order = m;
  options.vantage_points = v;
  options.leaf_capacity = k;
  options.num_path_distances = p;
  auto built = GenTree::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(5, dim, 19);
  for (const auto& q : queries) {
    for (const std::size_t kk : {1u, 6u, 19u}) {
      const auto got = built.value().KnnSearch(q, kk);
      const auto expected = reference.KnnSearch(q, kk);
      ASSERT_EQ(got.size(), expected.size()) << "k=" << kk;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << kk << " i=" << i;
      }
    }
  }
}

TEST_P(GeneralizedSweepTest, AllPointsAccounted) {
  const auto [m, v, k, p, n, dim] = GetParam();
  const auto data = dataset::UniformVectors(n, dim, 23);
  GenTree::Options options;
  options.order = m;
  options.vantage_points = v;
  options.leaf_capacity = k;
  options.num_path_distances = p;
  auto built = GenTree::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  const auto stats = built.value().Stats();
  EXPECT_EQ(stats.num_vantage_points + stats.num_leaf_points, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneralizedSweepTest,
    ::testing::Values(Param{3, 2, 9, 5, 600, 20},   // the paper's mvp shape
                      Param{3, 1, 9, 5, 500, 8},    // vp-tree + stored dists
                      Param{2, 3, 10, 6, 600, 8},   // three vps per node
                      Param{2, 4, 8, 8, 500, 6},    // four vps per node
                      Param{4, 2, 5, 4, 400, 5},
                      Param{2, 2, 1, 2, 300, 4},
                      Param{3, 3, 13, 0, 500, 8},   // no PATH at all
                      Param{3, 2, 9, 5, 15, 4},     // around leaf threshold
                      Param{2, 3, 4, 4, 9, 3}));

TEST(GeneralizedMvpTreeTest, DuplicateHeavyDataset) {
  std::vector<Vector> data(150, Vector{1, 2, 3});
  for (const auto& v : dataset::UniformVectors(150, 3, 29)) data.push_back(v);
  GenTree::Options options;
  options.vantage_points = 3;
  options.leaf_capacity = 6;
  auto built = GenTree::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RangeSearch({1, 2, 3}, 0.0).size(), 150u);
  scan::LinearScan<Vector, L2> reference(data, L2());
  const Vector q{0.5, 0.5, 0.5};
  EXPECT_EQ(built.value().RangeSearch(q, 0.5).size(),
            reference.RangeSearch(q, 0.5).size());
}

TEST(GeneralizedMvpTreeTest, SearchStatsMatchCountingMetric) {
  const auto data = dataset::UniformVectors(600, 8, 31);
  metric::DistanceCounter counter;
  auto counted = metric::MakeCounting(L2(), counter);
  using CountedTree =
      GeneralizedMvpTree<Vector, metric::CountingMetric<L2>>;
  CountedTree::Options options;
  options.vantage_points = 3;
  auto built = CountedTree::Build(data, counted, options);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().Stats().construction_distance_computations,
            counter.count());
  counter.Reset();
  SearchStats stats;
  built.value().RangeSearch(data[0], 0.4, &stats);
  EXPECT_EQ(stats.distance_computations, counter.count());
}

TEST(GeneralizedMvpTreeTest, MoreVantagePointsFilterLeavesHarder) {
  // With more stored distances per leaf point (v of them), the leaf filter
  // rejects at least as many candidates per seen point at small radii.
  const auto data = dataset::UniformVectors(10000, 20, 37);
  const auto q = dataset::UniformQueryVectors(1, 20, 39)[0];
  double prev_ratio = -1.0;
  for (const int v : {1, 2, 3}) {
    GenTree::Options options;
    options.order = 3;
    options.vantage_points = v;
    options.leaf_capacity = 80;
    options.num_path_distances = 5;
    auto built = GenTree::Build(data, L2(), options);
    ASSERT_TRUE(built.ok());
    SearchStats stats;
    built.value().RangeSearch(q, 0.2, &stats);
    const double ratio =
        stats.leaf_points_seen == 0
            ? 1.0
            : static_cast<double>(stats.leaf_points_filtered) /
                  static_cast<double>(stats.leaf_points_seen);
    EXPECT_GE(ratio, prev_ratio * 0.95) << "v=" << v;  // near-monotone
    prev_ratio = ratio;
  }
}

TEST(GeneralizedMvpTreeTest, WorksWithEditDistance) {
  auto words = dataset::SyntheticWords(300, 41);
  using WordTree = GeneralizedMvpTree<std::string, metric::Levenshtein>;
  WordTree::Options options;
  options.order = 2;
  options.vantage_points = 3;
  options.leaf_capacity = 8;
  options.num_path_distances = 4;
  auto built = WordTree::Build(words, metric::Levenshtein(), options);
  ASSERT_TRUE(built.ok());
  scan::LinearScan<std::string, metric::Levenshtein> reference(
      words, metric::Levenshtein());
  const std::string q = dataset::MutateWord(words[123], 2, 5);
  for (const double r : {1.0, 2.0, 3.0}) {
    const auto got = built.value().RangeSearch(q, r);
    const auto expected = reference.RangeSearch(q, r);
    ASSERT_EQ(got.size(), expected.size());
  }
}

}  // namespace
}  // namespace mvp::core

#include "vptree/vp_select.h"

#include <gtest/gtest.h>

#include "dataset/vector_gen.h"
#include "metric/counting.h"
#include "metric/lp.h"

namespace mvp::vptree {
namespace {

using metric::L2;
using metric::Vector;

std::size_t Select(const std::vector<Vector>& data, std::size_t begin,
                   std::size_t end, const VpSelectOptions& options,
                   Rng& rng, std::uint64_t* distances = nullptr) {
  return SelectVantagePoint(
      begin, end, [&](std::size_t i) -> const Vector& { return data[i]; },
      L2(), rng, options, distances);
}

TEST(VpSelectTest, RandomStaysInRange) {
  const auto data = dataset::UniformVectors(100, 3, 1);
  Rng rng(7);
  VpSelectOptions options;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t pos = Select(data, 20, 60, options, rng);
    EXPECT_GE(pos, 20u);
    EXPECT_LT(pos, 60u);
  }
}

TEST(VpSelectTest, RandomUsesNoDistanceComputations) {
  const auto data = dataset::UniformVectors(50, 3, 2);
  Rng rng(7);
  std::uint64_t distances = 0;
  Select(data, 0, 50, VpSelectOptions{}, rng, &distances);
  EXPECT_EQ(distances, 0u);
}

TEST(VpSelectTest, MaxSpreadCountsItsDistances) {
  const auto data = dataset::UniformVectors(200, 5, 3);
  Rng rng(7);
  VpSelectOptions options;
  options.strategy = VpSelection::kMaxSpread;
  options.candidates = 4;
  options.sample = 10;
  std::uint64_t distances = 0;
  Select(data, 0, 200, options, rng, &distances);
  EXPECT_EQ(distances, 4u * 10u);
}

TEST(VpSelectTest, MaxSpreadPrefersWideSpreadPoint) {
  // A dataset where one point (the origin-corner outlier) has far wider
  // distance spread than points inside a tight cluster; with all points as
  // candidates, max-spread must avoid picking a cluster center.
  std::vector<Vector> data;
  for (int i = 0; i < 30; ++i) {
    data.push_back(Vector{10.0 + 0.01 * i, 10.0});  // tight cluster
  }
  data.push_back(Vector{0.0, 0.0});  // outlier with wide spread
  VpSelectOptions options;
  options.strategy = VpSelection::kMaxSpread;
  options.candidates = data.size();
  options.sample = data.size();
  int outlier_picked = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    if (Select(data, 0, data.size(), options, rng) == data.size() - 1) {
      ++outlier_picked;
    }
  }
  // The outlier's spread dominates; it must win consistently.
  EXPECT_GE(outlier_picked, 8);
}

TEST(VpSelectTest, TinyRangesFallBackToRandom) {
  const auto data = dataset::UniformVectors(10, 3, 4);
  Rng rng(7);
  VpSelectOptions options;
  options.strategy = VpSelection::kMaxSpread;
  std::uint64_t distances = 0;
  const std::size_t pos = Select(data, 3, 5, options, rng, &distances);
  EXPECT_GE(pos, 3u);
  EXPECT_LT(pos, 5u);
  EXPECT_EQ(distances, 0u);  // <= 2 points: no heuristic
}

TEST(VpSelectTest, DeterministicGivenRngState) {
  const auto data = dataset::UniformVectors(100, 4, 5);
  VpSelectOptions options;
  options.strategy = VpSelection::kMaxSpread;
  Rng a(42), b(42);
  EXPECT_EQ(Select(data, 0, 100, options, a),
            Select(data, 0, 100, options, b));
}

}  // namespace
}  // namespace mvp::vptree

// The write-ahead log layer: record framing round-trips, torn tails end
// the valid prefix exactly at the last complete frame, CRC/op/sequence
// violations are tail-breaks rather than accepted records, group commit
// acknowledges many appends per fsync, truncation resets the log, and the
// writer latches a failed state after an injected write/fsync error.

#include "wal/wal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "fault/failpoint.h"

namespace mvp::wal {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/wal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/" + kWalFileName;
  }
  void TearDown() override {
    fault::Failpoints::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  static WalRecord Insert(std::uint64_t seq, std::uint64_t id,
                          std::size_t payload_bytes) {
    WalRecord record;
    record.op = WalOp::kInsert;
    record.seq = seq;
    record.id = id;
    record.payload.resize(payload_bytes);
    for (std::size_t i = 0; i < payload_bytes; ++i) {
      record.payload[i] = static_cast<std::uint8_t>(seq * 31 + i);
    }
    return record;
  }

  static WalRecord Erase(std::uint64_t seq, std::uint64_t id) {
    WalRecord record;
    record.op = WalOp::kErase;
    record.seq = seq;
    record.id = id;
    return record;
  }

  /// Appends `records` through a writer and syncs them all.
  void WriteLog(const std::vector<WalRecord>& records) {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok()) << writer.status().message();
    for (const WalRecord& record : records) {
      ASSERT_TRUE(writer.value()->Append(record).ok());
    }
    ASSERT_TRUE(writer.value()->SyncAll().ok());
  }

  std::vector<std::uint8_t> FileBytes() const {
    auto bytes = ReadFile(path_);
    EXPECT_TRUE(bytes.ok());
    return bytes.ok() ? bytes.value() : std::vector<std::uint8_t>{};
  }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, MissingFileIsAnEmptyLog) {
  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log.value().records.empty());
  EXPECT_EQ(log.value().valid_bytes, 0u);
  EXPECT_FALSE(log.value().torn_tail);
}

TEST_F(WalTest, RecordsRoundTripThroughTheFile) {
  const std::vector<WalRecord> records = {Insert(1, 0, 24), Erase(2, 0),
                                          Insert(3, 1, 0), Insert(7, 2, 256)};
  WriteLog(records);

  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE(log.value().torn_tail);
  ASSERT_EQ(log.value().records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(static_cast<int>(log.value().records[i].op),
              static_cast<int>(records[i].op));
    EXPECT_EQ(log.value().records[i].seq, records[i].seq);
    EXPECT_EQ(log.value().records[i].id, records[i].id);
    EXPECT_EQ(log.value().records[i].payload, records[i].payload);
  }
  EXPECT_EQ(log.value().valid_bytes, FileBytes().size());
}

TEST_F(WalTest, TornTailEndsThePrefixAtTheLastCompleteFrame) {
  WriteLog({Insert(1, 0, 40), Insert(2, 1, 40), Insert(3, 2, 40)});
  const auto full = FileBytes();

  // Chop the file anywhere inside the final frame: exactly two records
  // must survive, and the valid prefix must be the two-frame boundary.
  std::vector<std::uint8_t> frame;
  EncodeRecord(Insert(3, 2, 40), &frame);
  const std::size_t boundary = full.size() - frame.size();
  for (const std::size_t cut :
       {boundary + 1, boundary + 4, boundary + 9, full.size() - 1}) {
    std::vector<std::uint8_t> torn(full.begin(),
                                   full.begin() + static_cast<long>(cut));
    ASSERT_TRUE(WriteFile(path_, torn).ok());
    auto log = ReadWal(path_);
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE(log.value().torn_tail) << "cut at " << cut;
    ASSERT_EQ(log.value().records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(log.value().valid_bytes, boundary);
  }
}

TEST_F(WalTest, CorruptCrcEndsThePrefix) {
  WriteLog({Insert(1, 0, 32), Insert(2, 1, 32)});
  auto bytes = FileBytes();
  bytes[bytes.size() - 5] ^= 0x40;  // flip a bit inside the second frame
  ASSERT_TRUE(WriteFile(path_, bytes).ok());

  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log.value().torn_tail);
  ASSERT_EQ(log.value().records.size(), 1u);
  EXPECT_EQ(log.value().records[0].seq, 1u);
}

TEST_F(WalTest, NonMonotoneSequenceEndsThePrefix) {
  // Hand-build a log whose third frame repeats seq 2: a valid CRC cannot
  // save a record that breaks the strictly-increasing contract.
  std::vector<std::uint8_t> bytes;
  EncodeRecord(Insert(1, 0, 8), &bytes);
  EncodeRecord(Insert(2, 1, 8), &bytes);
  EncodeRecord(Insert(2, 2, 8), &bytes);
  ASSERT_TRUE(WriteFile(path_, bytes).ok());

  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log.value().torn_tail);
  EXPECT_EQ(log.value().records.size(), 2u);
}

TEST_F(WalTest, UnknownOpEndsThePrefix) {
  std::vector<std::uint8_t> bytes;
  EncodeRecord(Insert(1, 0, 8), &bytes);
  WalRecord bad = Insert(2, 1, 8);
  bad.op = static_cast<WalOp>(9);
  EncodeRecord(bad, &bytes);
  ASSERT_TRUE(WriteFile(path_, bytes).ok());

  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log.value().torn_tail);
  EXPECT_EQ(log.value().records.size(), 1u);
}

TEST_F(WalTest, TruncateWalRepairsATornTail) {
  WriteLog({Insert(1, 0, 16), Insert(2, 1, 16)});
  auto bytes = FileBytes();
  bytes.resize(bytes.size() - 3);
  ASSERT_TRUE(WriteFile(path_, bytes).ok());

  auto torn = ReadWal(path_);
  ASSERT_TRUE(torn.ok());
  ASSERT_TRUE(torn.value().torn_tail);
  ASSERT_TRUE(TruncateWal(path_, torn.value().valid_bytes).ok());

  auto repaired = ReadWal(path_);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired.value().torn_tail);
  EXPECT_EQ(repaired.value().records.size(), 1u);
  EXPECT_EQ(FileBytes().size(), repaired.value().valid_bytes);
}

TEST_F(WalTest, AppendIsBufferedUntilSync) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(Insert(1, 0, 16)).ok());
  // Not yet durable: the file holds nothing (or does not exist).
  auto before = ReadWal(path_);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before.value().records.empty());

  ASSERT_TRUE(writer.value()->Sync(1).ok());
  auto after = ReadWal(path_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().records.size(), 1u);
}

TEST_F(WalTest, SyncIsIdempotentPerSequence) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(Insert(1, 0, 16)).ok());
  ASSERT_TRUE(writer.value()->Sync(1).ok());
  const auto stats_once = writer.value()->stats();
  // A second sync of the same sequence must not touch the disk again.
  ASSERT_TRUE(writer.value()->Sync(1).ok());
  EXPECT_EQ(writer.value()->stats().sync_batches, stats_once.sync_batches);
  EXPECT_EQ(writer.value()->stats().bytes_written, stats_once.bytes_written);
}

TEST_F(WalTest, GroupCommitBatchesConcurrentSyncs) {
  auto opened = WalWriter::Open(path_);
  ASSERT_TRUE(opened.ok());
  WalWriter* writer = opened.value().get();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 32;
  std::atomic<std::uint64_t> next_seq{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t seq = next_seq.fetch_add(1) + 1;
        ASSERT_TRUE(writer->Append(Insert(seq, seq - 1, 32)).ok());
        ASSERT_TRUE(writer->Sync(seq).ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto stats = writer->stats();
  EXPECT_EQ(stats.records_appended, kThreads * kPerThread);
  EXPECT_EQ(stats.records_synced, kThreads * kPerThread);
  // Group commit's whole point: far fewer fsync batches than records.
  // (>= 1 and <= records always holds; strictly fewer is overwhelmingly
  // likely with 8 contending threads, but not guaranteed — so only the
  // contract, not the amortization, is asserted.)
  EXPECT_GE(stats.sync_batches, 1u);
  EXPECT_LE(stats.sync_batches, stats.records_synced);

  // NOTE: appends above race on seq ORDER (fetch_add then lock), so the
  // file may hold frames out of order — ReadWal treats a seq inversion as
  // a tail break by contract. What must hold: the valid prefix parses and
  // every parsed record is intact.
  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  for (std::size_t i = 1; i < log.value().records.size(); ++i) {
    EXPECT_GT(log.value().records[i].seq, log.value().records[i - 1].seq);
  }
}

TEST_F(WalTest, TruncateToEmptyResetsTheLog) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(Insert(1, 0, 64)).ok());
  ASSERT_TRUE(writer.value()->SyncAll().ok());
  ASSERT_TRUE(writer.value()->TruncateToEmpty().ok());

  auto log = ReadWal(path_);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log.value().records.empty());
  EXPECT_FALSE(log.value().torn_tail);

  // The writer keeps appending after a truncate (same fd, O_APPEND).
  ASSERT_TRUE(writer.value()->Append(Insert(2, 1, 64)).ok());
  ASSERT_TRUE(writer.value()->SyncAll().ok());
  auto after = ReadWal(path_);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().records.size(), 1u);
  EXPECT_EQ(after.value().records[0].seq, 2u);
}

TEST_F(WalTest, TruncateWithUnsyncedRecordsIsRejected) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(Insert(1, 0, 16)).ok());
  const Status status = writer.value()->TruncateToEmpty();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(WalTest, InjectedAppendFailureRejectsTheRecordOnly) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  {
    fault::ScopedFailpoint fp("wal/append", {});
    EXPECT_EQ(writer.value()->Append(Insert(1, 0, 16)).code(),
              StatusCode::kIOError);
  }
  // The writer is NOT latched: the record never entered the buffer.
  ASSERT_TRUE(writer.value()->Append(Insert(2, 0, 16)).ok());
  ASSERT_TRUE(writer.value()->SyncAll().ok());
}

TEST_F(WalTest, InjectedSyncFailureLatchesTheWriter) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(Insert(1, 0, 16)).ok());
  {
    fault::ScopedFailpoint fp("wal/sync", {});
    EXPECT_EQ(writer.value()->Sync(1).code(), StatusCode::kIOError);
  }
  // Durability of the tail is now unknown; everything must report failed.
  EXPECT_EQ(writer.value()->Append(Insert(2, 1, 16)).code(),
            StatusCode::kIOError);
  EXPECT_EQ(writer.value()->Sync(1).code(), StatusCode::kIOError);
  EXPECT_EQ(writer.value()->TruncateToEmpty().code(), StatusCode::kIOError);
}

TEST_F(WalTest, InjectedFsyncFailureLatchesTheWriter) {
  auto writer = WalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append(Insert(1, 0, 16)).ok());
  {
    fault::FailpointConfig config;
    config.match = kWalFileName;
    fault::ScopedFailpoint fp("fs/fsync", config);
    EXPECT_EQ(writer.value()->Sync(1).code(), StatusCode::kIOError);
  }
  EXPECT_EQ(writer.value()->Append(Insert(2, 1, 16)).code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace mvp::wal

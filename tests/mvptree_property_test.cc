// Parameterized property sweep: for every (m, k, p, bounds-mode, metric,
// dataset-shape) combination, mvp-tree range and k-NN searches must return
// exactly the linear-scan ground truth. This is the main correctness net
// for the reproduction's core structure.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::core {
namespace {

using metric::Vector;

// (order m, leaf capacity k, path distances p, exact bounds, n, dim,
//  clustered?)
using Param = std::tuple<int, int, int, bool, std::size_t, std::size_t, bool>;

class MvpTreePropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  std::vector<Vector> MakeData() const {
    const auto [m, k, p, exact, n, dim, clustered] = GetParam();
    (void)m;
    (void)k;
    (void)p;
    (void)exact;
    if (clustered) {
      dataset::ClusterParams params;
      params.count = n;
      params.dim = dim;
      params.cluster_size = std::max<std::size_t>(1, n / 5);
      return dataset::ClusteredVectors(params, 7);
    }
    return dataset::UniformVectors(n, dim, 7);
  }

  MvpTree<Vector, metric::L2>::Options MakeOptions() const {
    const auto [m, k, p, exact, n, dim, clustered] = GetParam();
    (void)n;
    (void)dim;
    (void)clustered;
    MvpTree<Vector, metric::L2>::Options options;
    options.order = m;
    options.leaf_capacity = k;
    options.num_path_distances = p;
    options.store_exact_bounds = exact;
    options.seed = 17;
    return options;
  }
};

TEST_P(MvpTreePropertyTest, RangeSearchMatchesLinearScan) {
  const auto data = MakeData();
  auto result = MvpTree<Vector, metric::L2>::Build(data, metric::L2(),
                                                   MakeOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto& tree = result.value();
  scan::LinearScan<Vector, metric::L2> reference(data, metric::L2());

  const std::size_t dim = std::get<5>(GetParam());
  const auto queries = dataset::UniformQueryVectors(6, dim, 23);
  for (const auto& q : queries) {
    for (const double radius : {0.0, 0.1, 0.4, 1.0, 2.5}) {
      const auto got = tree.RangeSearch(q, radius);
      const auto expected = reference.RangeSearch(q, radius);
      ASSERT_EQ(got.size(), expected.size()) << "radius " << radius;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
  }
  // Data points themselves as queries (distance 0 hits guaranteed).
  for (const std::size_t idx : {std::size_t{0}, data.size() / 2}) {
    const auto got = tree.RangeSearch(data[idx], 0.05);
    const auto expected = reference.RangeSearch(data[idx], 0.05);
    ASSERT_EQ(got.size(), expected.size());
  }
}

TEST_P(MvpTreePropertyTest, KnnMatchesLinearScan) {
  const auto data = MakeData();
  auto result = MvpTree<Vector, metric::L2>::Build(data, metric::L2(),
                                                   MakeOptions());
  ASSERT_TRUE(result.ok());
  auto& tree = result.value();
  scan::LinearScan<Vector, metric::L2> reference(data, metric::L2());

  const std::size_t dim = std::get<5>(GetParam());
  const auto queries = dataset::UniformQueryVectors(4, dim, 29);
  for (const auto& q : queries) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{5},
                                std::size_t{17}, data.size() + 3}) {
      const auto got = tree.KnnSearch(q, k);
      const auto expected = reference.KnnSearch(q, k);
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k << " i=" << i;
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
  }
}

TEST_P(MvpTreePropertyTest, TreeAccountsForAllPoints) {
  const auto data = MakeData();
  auto result = MvpTree<Vector, metric::L2>::Build(data, metric::L2(),
                                                   MakeOptions());
  ASSERT_TRUE(result.ok());
  const auto stats = result.value().Stats();
  EXPECT_EQ(stats.num_vantage_points + stats.num_leaf_points, data.size());
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSweep, MvpTreePropertyTest,
    ::testing::Values(
        // Paper configurations.
        Param{3, 9, 5, false, 600, 20, false},
        Param{3, 80, 5, false, 600, 20, false},
        Param{2, 16, 4, false, 400, 10, false},
        Param{2, 5, 4, false, 400, 10, false},
        Param{3, 13, 4, false, 400, 10, false},
        // Binary tree exactly as §4.2 presents it.
        Param{2, 4, 2, false, 300, 6, false},
        // p = 0: no PATH filtering at all.
        Param{3, 10, 0, false, 300, 8, false},
        // Large p (deep paths truncated).
        Param{2, 3, 12, false, 500, 6, false},
        // Exact-bound pruning ablation.
        Param{3, 9, 5, true, 600, 20, false},
        Param{2, 5, 4, true, 400, 10, false},
        // High order.
        Param{5, 7, 3, false, 700, 8, false},
        Param{4, 1, 2, false, 350, 5, false},
        // Leaf capacity 1 (degenerate small leaves).
        Param{2, 1, 4, false, 200, 4, false},
        // Clustered data.
        Param{3, 9, 5, false, 600, 20, true},
        Param{3, 80, 5, false, 600, 20, true},
        Param{2, 10, 6, true, 500, 10, true},
        // Tiny datasets around the leaf threshold k+2.
        Param{3, 9, 5, false, 10, 4, false},
        Param{3, 9, 5, false, 11, 4, false},
        Param{3, 9, 5, false, 12, 4, false},
        Param{2, 2, 2, false, 5, 3, false},
        Param{2, 2, 2, false, 4, 3, false},
        // 1-D metric space.
        Param{3, 6, 4, false, 400, 1, false}));

}  // namespace
}  // namespace mvp::core

#include "vptree/vp_tree.h"

#include "common/codec.h"

#include <gtest/gtest.h>

#include <tuple>

#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/counting.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::vptree {
namespace {

using metric::L2;
using metric::Vector;
using VecTree = VpTree<Vector, L2>;

VecTree MustBuild(std::vector<Vector> data, VecTree::Options options = {}) {
  auto result = VecTree::Build(std::move(data), L2(), options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

TEST(VpTreeTest, RejectsBadOptions) {
  VecTree::Options options;
  options.order = 1;
  EXPECT_EQ(VecTree::Build({}, L2(), options).status().code(),
            StatusCode::kInvalidArgument);
  options.order = 2;
  options.leaf_capacity = 0;
  EXPECT_EQ(VecTree::Build({}, L2(), options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(VpTreeTest, EmptyTree) {
  auto tree = MustBuild({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.RangeSearch({0, 0}, 1.0).empty());
  EXPECT_TRUE(tree.KnnSearch({0, 0}, 3).empty());
  EXPECT_EQ(tree.Stats().height, 0u);
}

TEST(VpTreeTest, SinglePoint) {
  auto tree = MustBuild({{1, 1}});
  const auto hit = tree.RangeSearch({1, 1}, 0.0);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].id, 0u);
  EXPECT_TRUE(tree.RangeSearch({5, 5}, 1.0).empty());
}

TEST(VpTreeTest, AllIdenticalPoints) {
  std::vector<Vector> data(50, Vector{2, 2, 2});
  auto tree = MustBuild(data);
  EXPECT_EQ(tree.RangeSearch({2, 2, 2}, 0.0).size(), 50u);
  EXPECT_EQ(tree.RangeSearch({2, 2, 2.5}, 0.4).size(), 0u);
  EXPECT_EQ(tree.KnnSearch({0, 0, 0}, 7).size(), 7u);
}

TEST(VpTreeTest, VantagePointsAreDataPointsAndSearchable) {
  // Every data point, including those consumed as vantage points, must be
  // reported by a search that covers it.
  const auto data = dataset::UniformVectors(100, 4, 3);
  auto tree = MustBuild(data);
  const auto all = tree.RangeSearch(Vector{0.5, 0.5, 0.5, 0.5}, 100.0);
  EXPECT_EQ(all.size(), 100u);
}

struct SweepParam {
  int order;
  int leaf_capacity;
  std::size_t n;
  std::size_t dim;
  bool exact_bounds;
};

class VpTreeSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(VpTreeSweepTest, RangeSearchMatchesLinearScan) {
  const auto p = GetParam();
  const auto data = dataset::UniformVectors(p.n, p.dim, 7);
  VecTree::Options options;
  options.order = p.order;
  options.leaf_capacity = p.leaf_capacity;
  options.store_exact_bounds = p.exact_bounds;
  options.seed = 99;
  auto tree = MustBuild(data, options);
  scan::LinearScan<Vector, L2> reference(data, L2());

  const auto queries = dataset::UniformQueryVectors(10, p.dim, 13);
  for (const auto& q : queries) {
    for (const double radius : {0.0, 0.3, 0.8, 1.5, 4.0}) {
      const auto got = tree.RangeSearch(q, radius);
      const auto expected = reference.RangeSearch(q, radius);
      ASSERT_EQ(got.size(), expected.size())
          << "radius " << radius << " order " << p.order;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
  }
}

TEST_P(VpTreeSweepTest, KnnMatchesLinearScan) {
  const auto p = GetParam();
  const auto data = dataset::UniformVectors(p.n, p.dim, 17);
  VecTree::Options options;
  options.order = p.order;
  options.leaf_capacity = p.leaf_capacity;
  options.store_exact_bounds = p.exact_bounds;
  auto tree = MustBuild(data, options);
  scan::LinearScan<Vector, L2> reference(data, L2());

  const auto queries = dataset::UniformQueryVectors(8, p.dim, 19);
  for (const auto& q : queries) {
    for (const std::size_t k : {1u, 3u, 10u}) {
      const auto got = tree.KnnSearch(q, k);
      const auto expected = reference.KnnSearch(q, k);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST_P(VpTreeSweepTest, StatsAreConsistent) {
  const auto p = GetParam();
  const auto data = dataset::UniformVectors(p.n, p.dim, 23);
  VecTree::Options options;
  options.order = p.order;
  options.leaf_capacity = p.leaf_capacity;
  auto tree = MustBuild(data, options);
  const auto stats = tree.Stats();
  // Every data point is either a vantage point or in a leaf bucket.
  EXPECT_EQ(stats.num_vantage_points + stats.num_leaf_points, p.n);
  EXPECT_EQ(stats.num_vantage_points, stats.num_internal_nodes);
  EXPECT_GT(stats.construction_distance_computations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VpTreeSweepTest,
    ::testing::Values(SweepParam{2, 1, 300, 4, false},
                      SweepParam{2, 1, 300, 4, true},
                      SweepParam{2, 8, 500, 8, false},
                      SweepParam{3, 1, 300, 4, false},
                      SweepParam{3, 5, 500, 8, true},
                      SweepParam{4, 1, 200, 3, false},
                      SweepParam{5, 13, 431, 6, false},
                      SweepParam{2, 1, 63, 2, false},
                      SweepParam{7, 3, 100, 20, false}));

TEST(VpTreeTest, MaxSpreadSelectionStaysCorrect) {
  const auto data = dataset::UniformVectors(400, 6, 29);
  VecTree::Options options;
  options.order = 3;
  options.selection.strategy = VpSelection::kMaxSpread;
  auto tree = MustBuild(data, options);
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(5, 6, 31);
  for (const auto& q : queries) {
    EXPECT_EQ(tree.RangeSearch(q, 0.9).size(),
              reference.RangeSearch(q, 0.9).size());
  }
}

TEST(VpTreeTest, SearchStatsCountDistancesExactly) {
  const auto data = dataset::UniformVectors(500, 8, 37);
  metric::DistanceCounter counter;
  auto counted = metric::MakeCounting(L2(), counter);
  using CountedTree = VpTree<Vector, metric::CountingMetric<L2>>;
  auto result = CountedTree::Build(data, counted, {});
  ASSERT_TRUE(result.ok());
  auto& tree = result.value();
  counter.Reset();
  SearchStats stats;
  tree.RangeSearch(data[0], 0.5, &stats);
  EXPECT_EQ(stats.distance_computations, counter.count());
}

TEST(VpTreeTest, PrunesComparedToLinearScan) {
  // On a moderate dataset with a small radius the vp-tree must beat n
  // distance computations (the entire point of the structure).
  const auto data = dataset::UniformVectors(2000, 8, 41);
  auto tree = MustBuild(data, {});
  SearchStats stats;
  tree.RangeSearch(data[42], 0.1, &stats);
  EXPECT_LT(stats.distance_computations, 2000u);
}

TEST(VpTreeTest, ConstructionCostScalesAsNLogN) {
  // O(n log_m n) distance computations (§3.3): for n=1024, order 2 with
  // leaf capacity 1, each level costs ~n and there are ~log2(n) levels.
  const auto data = dataset::UniformVectors(1024, 4, 43);
  auto tree = MustBuild(data, {});
  const auto cost = tree.Stats().construction_distance_computations;
  EXPECT_GT(cost, 1024u * 5u);
  EXPECT_LT(cost, 1024u * 20u);
}

TEST(VpTreeTest, WorksWithEditDistance) {
  auto words = dataset::SyntheticWords(300, 47);
  using WordTree = VpTree<std::string, metric::Levenshtein>;
  WordTree::Options options;
  options.order = 3;
  auto result = WordTree::Build(words, metric::Levenshtein(), options);
  ASSERT_TRUE(result.ok());
  auto& tree = result.value();
  scan::LinearScan<std::string, metric::Levenshtein> reference(
      words, metric::Levenshtein());
  const std::string query = dataset::MutateWord(words[5], 1, 3);
  for (const double r : {0.0, 1.0, 2.0, 4.0}) {
    EXPECT_EQ(tree.RangeSearch(query, r).size(),
              reference.RangeSearch(query, r).size());
  }
}

TEST(VpTreeTest, SerializeRoundTripPreservesBehaviour) {
  const auto data = dataset::UniformVectors(400, 6, 59);
  VecTree::Options options;
  options.order = 3;
  options.leaf_capacity = 4;
  auto tree = MustBuild(data, options);
  BinaryWriter writer;
  ASSERT_TRUE(tree.Serialize(&writer, VectorCodec()).ok());
  BinaryReader reader(writer.buffer());
  auto loaded = VecTree::Deserialize(&reader, L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  const auto queries = dataset::UniformQueryVectors(5, 6, 61);
  for (const auto& q : queries) {
    SearchStats sa, sb;
    const auto expected = tree.RangeSearch(q, 0.6, &sa);
    const auto got = loaded.value().RangeSearch(q, 0.6, &sb);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id);
    }
    EXPECT_EQ(sa.distance_computations, sb.distance_computations);
  }
}

TEST(VpTreeTest, DeserializeRejectsCorruptInput) {
  const auto data = dataset::UniformVectors(50, 3, 67);
  auto tree = MustBuild(data, {});
  BinaryWriter writer;
  ASSERT_TRUE(tree.Serialize(&writer, VectorCodec()).ok());
  auto bytes = writer.TakeBuffer();
  {
    BinaryWriter bad;
    bad.Write<std::uint32_t>(0x12345678);
    BinaryReader reader(bad.buffer());
    EXPECT_EQ(VecTree::Deserialize(&reader, L2(), VectorCodec())
                  .status()
                  .code(),
              StatusCode::kCorruption);
  }
  for (const double fraction : {0.2, 0.6, 0.95}) {
    BinaryReader reader(
        bytes.data(),
        static_cast<std::size_t>(static_cast<double>(bytes.size()) * fraction));
    EXPECT_FALSE(VecTree::Deserialize(&reader, L2(), VectorCodec()).ok());
  }
}

TEST(VpTreeTest, DeterministicForFixedSeed) {
  const auto data = dataset::UniformVectors(200, 5, 53);
  VecTree::Options options;
  options.seed = 5;
  auto a = MustBuild(data, options);
  auto b = MustBuild(data, options);
  SearchStats sa, sb;
  a.RangeSearch(data[0], 0.4, &sa);
  b.RangeSearch(data[0], 0.4, &sb);
  EXPECT_EQ(sa.distance_computations, sb.distance_computations);
}

}  // namespace
}  // namespace mvp::vptree

#include "baselines/clique_tree.h"

#include <gtest/gtest.h>

#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/counting.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::baselines {
namespace {

using metric::L2;
using metric::Vector;
using VecClique = CliqueTree<Vector, L2>;

TEST(CliqueTreeTest, RejectsBadOptions) {
  VecClique::Options options;
  options.shrink = 1.0;
  EXPECT_FALSE(VecClique::Build({}, L2(), options).ok());
  options = {};
  options.initial_diameter_fraction = 0;
  EXPECT_FALSE(VecClique::Build({}, L2(), options).ok());
  options = {};
  options.leaf_capacity = 0;
  EXPECT_FALSE(VecClique::Build({}, L2(), options).ok());
}

TEST(CliqueTreeTest, EmptyAndTiny) {
  auto empty = VecClique::Build({}, L2(), {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().RangeSearch({0, 0}, 5.0).empty());
  auto one = VecClique::Build({{1, 1}}, L2(), {});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().RangeSearch({1, 1}, 0.0).size(), 1u);
}

struct CliqueParam {
  double diameter_fraction;
  double shrink;
  int leaf_capacity;
  std::size_t n;
  std::size_t dim;
};

class CliqueSweepTest : public ::testing::TestWithParam<CliqueParam> {};

TEST_P(CliqueSweepTest, RangeSearchMatchesLinearScan) {
  const auto p = GetParam();
  const auto data = dataset::UniformVectors(p.n, p.dim, 61);
  VecClique::Options options;
  options.initial_diameter_fraction = p.diameter_fraction;
  options.shrink = p.shrink;
  options.leaf_capacity = p.leaf_capacity;
  auto built = VecClique::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(8, p.dim, 63);
  for (const auto& q : queries) {
    for (const double r : {0.0, 0.2, 0.6, 1.5}) {
      const auto got = built.value().RangeSearch(q, r);
      const auto expected = reference.RangeSearch(q, r);
      ASSERT_EQ(got.size(), expected.size()) << "r=" << r;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CliqueSweepTest,
    ::testing::Values(CliqueParam{0.5, 0.5, 8, 400, 6},
                      CliqueParam{0.8, 0.7, 4, 300, 4},
                      CliqueParam{0.3, 0.5, 1, 200, 3},
                      CliqueParam{0.5, 0.5, 8, 25, 4}));

TEST(CliqueTreeTest, ClusteredDataFormsTightCliques) {
  dataset::ClusterParams params;
  params.count = 500;
  params.dim = 8;
  params.cluster_size = 100;
  params.epsilon = 0.05;  // tight clusters -> natural cliques
  const auto data = dataset::ClusteredVectors(params, 67);
  auto built = VecClique::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  scan::LinearScan<Vector, L2> reference(data, L2());
  SearchStats stats;
  const auto got = built.value().RangeSearch(data[0], 0.3, &stats);
  EXPECT_EQ(got.size(), reference.RangeSearch(data[0], 0.3).size());
  // Cliques should allow skipping most other clusters.
  EXPECT_LT(stats.distance_computations, 500u);
}

TEST(CliqueTreeTest, DuplicatesTerminate) {
  std::vector<Vector> data(200, Vector{5, 5});
  auto built = VecClique::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RangeSearch({5, 5}, 0.0).size(), 200u);
}

TEST(CliqueTreeTest, AllPointsAccounted) {
  const auto data = dataset::UniformVectors(237, 5, 71);
  auto built = VecClique::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RangeSearch(Vector(5, 0.5), 1e9).size(), 237u);
  // Representatives are not consumed: all points live in leaf buckets.
  EXPECT_EQ(built.value().Stats().num_leaf_points, 237u);
}

TEST(CliqueTreeTest, SearchStatsMatchCountingMetric) {
  const auto data = dataset::UniformVectors(300, 6, 73);
  metric::DistanceCounter counter;
  auto counted = metric::MakeCounting(L2(), counter);
  auto built =
      CliqueTree<Vector, metric::CountingMetric<L2>>::Build(data, counted, {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().Stats().construction_distance_computations,
            counter.count());
  counter.Reset();
  SearchStats stats;
  built.value().RangeSearch(data[0], 0.4, &stats);
  EXPECT_EQ(stats.distance_computations, counter.count());
}

TEST(CliqueTreeTest, WorksWithEditDistance) {
  auto words = dataset::SyntheticWords(250, 79);
  using WordClique = CliqueTree<std::string, metric::Levenshtein>;
  auto built = WordClique::Build(words, metric::Levenshtein(), {});
  ASSERT_TRUE(built.ok());
  scan::LinearScan<std::string, metric::Levenshtein> reference(
      words, metric::Levenshtein());
  const std::string q = dataset::MutateWord(words[111], 1, 7);
  for (const double r : {1.0, 2.0, 3.0}) {
    EXPECT_EQ(built.value().RangeSearch(q, r).size(),
              reference.RangeSearch(q, r).size());
  }
}

}  // namespace
}  // namespace mvp::baselines

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "metric/kernels/kernels.h"
#include "metric/lp.h"

/// Conformance suite for the dispatched batch kernels
/// (src/metric/kernels/). The library's claim is not "SIMD is close to
/// scalar" but *bit-identity*: every tier reachable on this host must
/// return, for every shape and every input class, exactly the bytes the
/// scalar reference returns. This suite is what lets the flat index, the
/// goldens, and the serving layer treat the active tier as an invisible
/// implementation detail.
///
/// Coverage axes, crossed with every reachable tier:
///   * dimensions 0..300 (every value 0..68, then strided) — exercises all
///     SIMD block/tail splits for 2-, 4- and 8-lane tiers;
///   * batch counts around the lane-block boundaries;
///   * misaligned base pointers (odd 8-byte offsets — vector loads must not
///     assume 32/64-byte alignment);
///   * adversarial values: ±0, subnormals, ±Inf, NaN, and magnitude mixes
///     that make summation order observable;
///   * forced-tier dispatch: ForceTier error contract, and the
///     MVPT_FORCE_KERNEL resolver aborting on unknown/unavailable names.
///
/// Bit-identity is asserted with memcmp, never operator== — it must
/// distinguish -0.0 from +0.0 and must not let NaN != NaN vacuously pass.

namespace mvp::metric::kernels {
namespace {

constexpr Family kFamilies[] = {Family::kL1, Family::kL2, Family::kLInf};

const char* FamilyLabel(Family f) {
  switch (f) {
    case Family::kL1:
      return "L1";
    case Family::kL2:
      return "L2";
    case Family::kLInf:
      return "LInf";
  }
  return "?";
}

std::vector<Tier> ReachableTiers() {
  std::vector<Tier> tiers;
  for (int t = 0; t < kTierCount; ++t) {
    if (TierSupported(static_cast<Tier>(t))) {
      tiers.push_back(static_cast<Tier>(t));
    }
  }
  return tiers;
}

/// Restores feature-probe dispatch no matter how a test exits, so a failing
/// assertion cannot leak a forced tier into later tests.
struct TierGuard {
  ~TierGuard() { (void)ForceTier("auto"); }  // not a status to act on: reset
};

void ExpectBitsEqual(double want, double got, const std::string& what) {
  EXPECT_EQ(std::memcmp(&want, &got, sizeof(double)), 0)
      << what << ": scalar=" << want << " tier=" << got
      << " (bit patterns differ)";
}

/// Deterministic fill mixing magnitudes so that any reassociation of the
/// sum changes the result — the strongest practical probe for "same
/// summation order as scalar".
void FillValues(Rng& rng, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const int exponent = static_cast<int>(rng.NextBounded(81)) - 40;
    out[i] = std::ldexp(rng.NextDouble() - 0.5, exponent);
  }
}

/// Adversarial special values, cycled through a buffer.
void FillSpecials(double* out, std::size_t n, std::size_t phase) {
  static const double kSpecials[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      1.0,
      -1.0,
      1e308,
      -1e-308,
  };
  constexpr std::size_t kNumSpecials = sizeof(kSpecials) / sizeof(kSpecials[0]);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = kSpecials[(i + phase) % kNumSpecials];
  }
}

/// One conformance pass: runs both batch shapes for every family at
/// (dim, count) on buffers starting at an `offset`-doubles-misaligned base,
/// and memcmp-compares the active tier's outputs against the scalar
/// reference table.
void CheckShapes(Tier tier, std::size_t dim, std::size_t count,
                 std::size_t offset, bool specials, std::uint64_t seed) {
  const internal::Ops* scalar = internal::ScalarOps();
  ASSERT_NE(scalar, nullptr);

  // `offset` leading doubles force SIMD-unfriendly base alignment.
  const std::size_t stride = dim + (seed % 3);  // also exercise stride > dim
  std::vector<double> query_buf(offset + dim, 0.0);
  std::vector<double> objects_buf(offset + count * stride + 1, 0.0);
  Rng rng(seed);
  if (specials) {
    FillSpecials(query_buf.data() + offset, dim, seed % 7);
    FillSpecials(objects_buf.data() + offset, count * stride, seed % 5);
  } else {
    FillValues(rng, query_buf.data() + offset, dim);
    FillValues(rng, objects_buf.data() + offset, count * stride);
  }
  const double* query = query_buf.data() + offset;
  const double* objects = objects_buf.data() + offset;

  std::vector<const double*> rows(count);
  for (std::size_t i = 0; i < count; ++i) rows[i] = objects + i * stride;

  std::vector<double> want(count), got(count);
  const std::string ctx = std::string(TierName(tier)) + " dim=" +
                          std::to_string(dim) + " count=" +
                          std::to_string(count) + " offset=" +
                          std::to_string(offset) +
                          (specials ? " specials" : "");
  for (Family family : kFamilies) {
    const int f = static_cast<int>(family);
    scalar->one_to_many[f](query, objects, count, stride, dim, want.data());
    OneToMany(family, query, objects, count, stride, dim, got.data());
    for (std::size_t i = 0; i < count; ++i) {
      ExpectBitsEqual(want[i], got[i],
                      std::string(FamilyLabel(family)) + " OneToMany[" +
                          std::to_string(i) + "] " + ctx);
    }
    // Same data through the transposed shape: rows become the queries, the
    // query becomes the vantage point.
    scalar->many_to_one[f](rows.data(), count, query, dim, want.data());
    ManyToOne(family, rows.data(), count, query, dim, got.data());
    for (std::size_t i = 0; i < count; ++i) {
      ExpectBitsEqual(want[i], got[i],
                      std::string(FamilyLabel(family)) + " ManyToOne[" +
                          std::to_string(i) + "] " + ctx);
    }
    // Every batch result must equal the never-dispatched pair kernel.
    for (std::size_t i = 0; i < count; ++i) {
      const double pair = PairDistance(family, query, rows[i], dim);
      ExpectBitsEqual(pair, got[i],
                      std::string(FamilyLabel(family)) + " vs PairDistance[" +
                          std::to_string(i) + "] " + ctx);
    }
  }
}

class KernelConformanceTest : public ::testing::TestWithParam<Tier> {
 protected:
  void SetUp() override {
    const Tier tier = GetParam();
    ASSERT_TRUE(TierSupported(tier));
    const Status forced = ForceTier(TierName(tier));
    ASSERT_TRUE(forced.ok()) << forced.ToString();
    ASSERT_EQ(ActiveTier(), tier);
  }
  void TearDown() override {
    const Status reset = ForceTier("auto");
    ASSERT_TRUE(reset.ok()) << reset.ToString();
  }
};

TEST_P(KernelConformanceTest, EveryDimensionZeroTo300) {
  // 0..68 covers every block/tail split of 2-, 4- and 8-lane kernels with
  // margin; beyond that, stride through 300 for long-accumulation coverage.
  for (std::size_t dim = 0; dim <= 68; ++dim) {
    CheckShapes(GetParam(), dim, 5, 0, false, 1000 + dim);
  }
  for (std::size_t dim = 69; dim <= 300; dim += 17) {
    CheckShapes(GetParam(), dim, 3, 0, false, 2000 + dim);
  }
  CheckShapes(GetParam(), 300, 3, 0, false, 2300);
}

TEST_P(KernelConformanceTest, BatchCountsAroundLaneBoundaries) {
  for (std::size_t count : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u,
                            17u, 31u, 33u, 64u, 65u}) {
    CheckShapes(GetParam(), 20, count, 0, false, 3000 + count);
  }
}

TEST_P(KernelConformanceTest, MisalignedBasePointers) {
  for (std::size_t offset : {1u, 2u, 3u, 5u, 7u}) {
    CheckShapes(GetParam(), 33, 9, offset, false, 4000 + offset);
    CheckShapes(GetParam(), 8, 17, offset, false, 4100 + offset);
  }
}

TEST_P(KernelConformanceTest, SpecialValuesBitIdentical) {
  for (std::size_t dim : {1u, 3u, 4u, 7u, 8u, 12u, 16u, 33u}) {
    for (std::size_t count : {1u, 4u, 9u}) {
      CheckShapes(GetParam(), dim, count, 0, true, 5000 + dim * 100 + count);
      CheckShapes(GetParam(), dim, count, 1, true, 6000 + dim * 100 + count);
    }
  }
}

TEST_P(KernelConformanceTest, AnnulusMaskMatchesScalar) {
  const internal::Ops* scalar = internal::ScalarOps();
  ASSERT_NE(scalar, nullptr);
  Rng rng(99);
  std::vector<double> values(kAnnulusMaskMaxCount + 1);
  for (std::size_t count = 0; count <= kAnnulusMaskMaxCount; ++count) {
    FillValues(rng, values.data(), count);
    // Sprinkle exact-boundary and special entries.
    if (count > 0) values[0] = 1.5;
    if (count > 2) values[2] = std::numeric_limits<double>::quiet_NaN();
    if (count > 3) values[3] = std::numeric_limits<double>::infinity();
    if (count > 4) values[4] = -0.0;
    for (double radius : {0.0, 0.5, 1e300, -1.0,
                          std::numeric_limits<double>::quiet_NaN()}) {
      const double center = (count % 2 == 0) ? 1.5 : -0.75;
      const std::uint64_t want =
          scalar->annulus_mask(center, values.data(), count, radius);
      const std::uint64_t got =
          AnnulusMask(center, values.data(), count, radius);
      EXPECT_EQ(want, got) << TierName(GetParam()) << " count=" << count
                           << " radius=" << radius;
      // Cross-check against the definition, not just the scalar table.
      for (std::size_t i = 0; i < count; ++i) {
        const bool bit = (got >> i) & 1;
        EXPECT_EQ(bit, std::fabs(center - values[i]) <= radius)
            << "bit " << i << " count=" << count << " radius=" << radius;
      }
      // Bits at and above `count` must be zero.
      if (count < 64) EXPECT_EQ(got >> count, 0u);
    }
  }
}

TEST_P(KernelConformanceTest, MisalignedAnnulusMask) {
  Rng rng(7);
  std::vector<double> buf(kAnnulusMaskMaxCount + 1);
  FillValues(rng, buf.data(), buf.size());
  const internal::Ops* scalar = internal::ScalarOps();
  for (std::size_t count : {1u, 7u, 31u, 63u, 64u}) {
    const std::uint64_t want =
        scalar->annulus_mask(0.25, buf.data() + 1, count, 0.5);
    EXPECT_EQ(want, AnnulusMask(0.25, buf.data() + 1, count, 0.5))
        << TierName(GetParam()) << " count=" << count;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllReachableTiers, KernelConformanceTest,
    ::testing::ValuesIn(ReachableTiers()),
    [](const ::testing::TestParamInfo<Tier>& info) {
      return std::string(TierName(info.param));
    });

// --- dispatch contract ------------------------------------------------------

TEST(KernelDispatchTest, ScalarTierAlwaysSupported) {
  EXPECT_TRUE(TierSupported(Tier::kScalar));
  EXPECT_TRUE(TierSupported(BestSupportedTier()));
}

TEST(KernelDispatchTest, ForceTierRejectsUnknownName) {
  TierGuard guard;
  const Status s = ForceTier("sse9");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  const Status empty = ForceTier("");
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument) << empty.ToString();
}

TEST(KernelDispatchTest, ForceTierRejectsUnavailableTierLoudly) {
  TierGuard guard;
  // At least one of the vector tiers is impossible on any single host
  // (neon and avx2 are mutually exclusive ISAs).
  bool saw_unavailable = false;
  for (int t = 0; t < kTierCount; ++t) {
    const Tier tier = static_cast<Tier>(t);
    if (TierSupported(tier)) continue;
    saw_unavailable = true;
    const Status s = ForceTier(TierName(tier));
    EXPECT_EQ(s.code(), StatusCode::kNotSupported) << s.ToString();
    // A refused ForceTier must not have changed dispatch.
    EXPECT_TRUE(TierSupported(ActiveTier()));
  }
  EXPECT_TRUE(saw_unavailable);
}

TEST(KernelDispatchTest, ForceTierRoundTripsEveryReachableTier) {
  TierGuard guard;
  for (Tier tier : ReachableTiers()) {
    const Status s = ForceTier(TierName(tier));
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(ActiveTier(), tier);
  }
  EXPECT_TRUE(ForceTier("auto").ok());
  EXPECT_EQ(ActiveTier(), BestSupportedTier());
}

TEST(KernelDispatchDeathTest, EnvResolverAbortsOnUnknownName) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(internal::TierFromEnvOrDie("bogus-tier"), "MVPT_FORCE_KERNEL");
}

TEST(KernelDispatchDeathTest, EnvResolverAbortsOnUnavailableTier) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* unavailable = nullptr;
  for (int t = 0; t < kTierCount; ++t) {
    if (!TierSupported(static_cast<Tier>(t))) {
      unavailable = TierName(static_cast<Tier>(t));
      break;
    }
  }
  ASSERT_NE(unavailable, nullptr);
  EXPECT_DEATH(internal::TierFromEnvOrDie(unavailable), "MVPT_FORCE_KERNEL");
}

TEST(KernelDispatchTest, EnvResolverAcceptsAutoAndEmpty) {
  EXPECT_EQ(internal::TierFromEnvOrDie(nullptr), BestSupportedTier());
  EXPECT_EQ(internal::TierFromEnvOrDie(""), BestSupportedTier());
  EXPECT_EQ(internal::TierFromEnvOrDie("auto"), BestSupportedTier());
  EXPECT_EQ(internal::TierFromEnvOrDie("scalar"), Tier::kScalar);
}

// --- pair kernels are the metrics -------------------------------------------

/// The scalar pair kernels must be the *same function* (bit for bit) as the
/// metric objects the trees were built with — that identity is what lets
/// the flat SoA path mix kernel sweeps with metric calls mid-query.
TEST(KernelPairTest, PairKernelsMatchMetricObjects) {
  Rng rng(11);
  for (std::size_t dim : {0u, 1u, 2u, 5u, 8u, 20u, 33u, 300u}) {
    std::vector<double> a(dim), b(dim);
    FillValues(rng, a.data(), dim);
    FillValues(rng, b.data(), dim);
    ExpectBitsEqual(metric::L1()(a, b), L1Pair(a.data(), b.data(), dim),
                    "L1 dim=" + std::to_string(dim));
    ExpectBitsEqual(metric::L2()(a, b), L2Pair(a.data(), b.data(), dim),
                    "L2 dim=" + std::to_string(dim));
    ExpectBitsEqual(metric::LInf()(a, b), LInfPair(a.data(), b.data(), dim),
                    "LInf dim=" + std::to_string(dim));
    // And Lp at p=1 / p=2 (the integer-exponent fast path) agrees too.
    ExpectBitsEqual(metric::Lp(1.0)(a, b), L1Pair(a.data(), b.data(), dim),
                    "Lp(1) dim=" + std::to_string(dim));
    ExpectBitsEqual(metric::Lp(2.0)(a, b), L2Pair(a.data(), b.data(), dim),
                    "Lp(2) dim=" + std::to_string(dim));
  }
}

}  // namespace
}  // namespace mvp::metric::kernels

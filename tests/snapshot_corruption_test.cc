#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/codec.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "snapshot/format.h"
#include "snapshot/manifest.h"
#include "snapshot/snapshot_store.h"

/// Adversarial-input suite for the snapshot container: every truncation
/// prefix and every header-region bit flip must surface as a non-OK Status
/// (almost always Corruption), never as a crash, a huge allocation, or a
/// silently wrong index.

namespace mvp::snapshot {
namespace {

using metric::L2;
using metric::Vector;
using Index = serve::ShardedMvpIndex<Vector, L2>;

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/snapcorrupt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);

    Index::Options options;
    options.num_shards = 3;
    options.tree.leaf_capacity = 6;
    auto built =
        Index::Build(dataset::UniformVectors(90, 5, 19), L2(), options);
    ASSERT_TRUE(built.ok());

    SnapshotStore store(dir_);
    ASSERT_TRUE(store.SaveSharded(built.value(), VectorCodec()).ok());
    gen_dir_ = store.GenerationDir(1);
    auto bytes = ReadFile(gen_dir_ + "/" + SnapshotStore::kContainerFile);
    ASSERT_TRUE(bytes.ok());
    container_ = std::move(bytes).ValueOrDie();
    auto manifest = ReadFile(gen_dir_ + "/" + SnapshotStore::kManifestFile);
    ASSERT_TRUE(manifest.ok());
    manifest_ = std::move(manifest).ValueOrDie();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Rewrites the container and loads through the full store path.
  Status LoadWithContainer(const std::vector<std::uint8_t>& bytes) {
    EXPECT_TRUE(
        WriteFile(gen_dir_ + "/" + SnapshotStore::kContainerFile, bytes).ok());
    SnapshotStore store(dir_);
    return store.LoadSharded<Vector>(L2(), VectorCodec()).status();
  }

  std::string dir_;
  std::string gen_dir_;
  std::vector<std::uint8_t> container_;
  std::vector<std::uint8_t> manifest_;
};

TEST_F(SnapshotCorruptionTest, EveryTruncationPrefixRejected) {
  // Every proper prefix of the container must fail parse/verify. The
  // store-level size check would catch these too; parse the container
  // directly so the container format itself proves the property.
  for (std::size_t cut = 0; cut < container_.size(); ++cut) {
    auto parsed = ContainerReader::Parse(container_.data(), cut);
    if (!parsed.ok()) continue;  // header rejected the truncation
    Status status = Status::OK();
    for (std::size_t c = 0; c < parsed.value().num_chunks() && status.ok();
         ++c) {
      status = parsed.value().VerifyChunk(c);
    }
    EXPECT_FALSE(status.ok()) << "prefix of " << cut << " bytes parsed and "
                              << "verified as a complete container";
  }
}

TEST_F(SnapshotCorruptionTest, EveryTruncationPrefixRejectedByStore) {
  // Through the full load path (which also cross-checks the manifest), on a
  // sweep of prefixes including every boundary-straddling one.
  for (std::size_t cut = 0; cut < container_.size();
       cut += (cut < 256 ? 1 : 37)) {
    std::vector<std::uint8_t> truncated(container_.begin(),
                                        container_.begin() + cut);
    EXPECT_FALSE(LoadWithContainer(truncated).ok()) << "prefix " << cut;
  }
}

TEST_F(SnapshotCorruptionTest, EveryHeaderByteFlipRejected) {
  const std::size_t header_bytes = ContainerHeaderBytes(3);
  ASSERT_LE(header_bytes, container_.size());
  for (std::size_t pos = 0; pos < header_bytes; ++pos) {
    for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      auto corrupted = container_;
      corrupted[pos] ^= mask;
      const Status status = LoadWithContainer(corrupted);
      EXPECT_FALSE(status.ok())
          << "header byte " << pos << " flip 0x" << std::hex << int{mask};
    }
  }
}

TEST_F(SnapshotCorruptionTest, PayloadFlipReportsFailingChunk) {
  auto parsed = ContainerReader::Parse(container_.data(), container_.size());
  ASSERT_TRUE(parsed.ok());
  for (std::size_t c = 0; c < parsed.value().num_chunks(); ++c) {
    const ChunkEntry& entry = parsed.value().chunk(c);
    auto corrupted = container_;
    corrupted[entry.offset + entry.length / 2] ^= 0x40;
    const Status status = LoadWithContainer(corrupted);
    ASSERT_EQ(status.code(), StatusCode::kCorruption);
    EXPECT_NE(status.ToString().find("chunk " + std::to_string(c)),
              std::string::npos)
        << "message does not name chunk " << c << ": " << status.ToString();
  }
}

TEST_F(SnapshotCorruptionTest, EveryPayloadByteFlipSweepRejected) {
  const std::size_t header_bytes = ContainerHeaderBytes(3);
  for (std::size_t pos = header_bytes; pos < container_.size(); pos += 11) {
    auto corrupted = container_;
    corrupted[pos] ^= 0xff;
    EXPECT_EQ(LoadWithContainer(corrupted).code(), StatusCode::kCorruption)
        << "payload byte " << pos;
  }
}

TEST_F(SnapshotCorruptionTest, AdversarialChunkCountRejectedBeforeAllocation) {
  // A header claiming ~2^32 chunks must be rejected by the bounds check on
  // the table size, not by attempting to read (or allocate) the table.
  auto corrupted = container_;
  corrupted[12] = 0xff;  // chunk_count field (offset 12), little-endian
  corrupted[13] = 0xff;
  corrupted[14] = 0xff;
  corrupted[15] = 0xff;
  EXPECT_EQ(LoadWithContainer(corrupted).code(), StatusCode::kCorruption);
}

TEST_F(SnapshotCorruptionTest, AdversarialChunkExtentRejected) {
  // Hand-build a container whose chunk table points past EOF with an
  // offset+length that would wrap u64; the subtraction-form bounds check
  // must reject it.
  ContainerWriter writer;
  writer.AddChunk(ChunkKind::kShardTree, {1, 2, 3});
  auto bytes = std::move(writer).Finalize();
  // Chunk entry 0 starts at byte 16: kind, reserved, then offset (u64).
  const std::uint64_t evil_offset = ~std::uint64_t{0} - 1;
  for (int i = 0; i < 8; ++i) {
    bytes[24 + i] = static_cast<std::uint8_t>(evil_offset >> (8 * i));
  }
  // Recompute the header CRC so ONLY the bounds check can reject it.
  const std::size_t header_end = ContainerHeaderBytes(1) - 4;
  const std::uint32_t crc = Crc32c(bytes.data(), header_end);
  for (int i = 0; i < 4; ++i) {
    bytes[header_end + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  auto parsed = ContainerReader::Parse(bytes.data(), bytes.size());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
}

TEST_F(SnapshotCorruptionTest, ManifestFlipsRejected) {
  for (std::size_t pos = 0; pos < manifest_.size(); ++pos) {
    auto corrupted = manifest_;
    corrupted[pos] ^= 0x01;
    EXPECT_FALSE(SnapshotManifest::Parse(corrupted).ok())
        << "manifest byte " << pos;
  }
}

TEST_F(SnapshotCorruptionTest, ManifestTamperRejectedByStore) {
  // Rewrite the manifest claiming different build params with a VALID CRC;
  // the load path must reject the mismatch FAST — by peeking the tree
  // stream's recorded options before the full decode — as InvalidArgument
  // (a snapshot paired with the wrong options, not damaged bytes).
  auto parsed = SnapshotManifest::Parse(manifest_);
  ASSERT_TRUE(parsed.ok());
  SnapshotManifest tampered = parsed.value();
  tampered.leaf_capacity += 1;
  ASSERT_TRUE(
      WriteFile(gen_dir_ + "/" + SnapshotStore::kManifestFile,
                tampered.Serialize())
          .ok());
  SnapshotStore store(dir_);
  EXPECT_EQ(store.LoadSharded<Vector>(L2(), VectorCodec()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SnapshotCorruptionTest, NonsenseManifestParamsFailFast) {
  // Build parameters that are not even self-consistent (order < 2) must be
  // rejected before any chunk decode.
  auto parsed = SnapshotManifest::Parse(manifest_);
  ASSERT_TRUE(parsed.ok());
  SnapshotManifest tampered = parsed.value();
  tampered.order = 1;
  ASSERT_TRUE(
      WriteFile(gen_dir_ + "/" + SnapshotStore::kManifestFile,
                tampered.Serialize())
          .ok());
  SnapshotStore store(dir_);
  EXPECT_EQ(store.LoadSharded<Vector>(L2(), VectorCodec()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SnapshotCorruptionTest, SwappedChunkOrderStillLoadsCorrectly) {
  // Chunk order is NOT part of the contract: each shard chunk names its
  // shard index, so a permuted table must round-trip correctly (the
  // partition invariant validation pins every id to its shard).
  auto parsed = ContainerReader::Parse(container_.data(), container_.size());
  ASSERT_TRUE(parsed.ok());
  ContainerWriter writer;
  for (const std::size_t c : {2, 0, 1}) {
    const auto [payload, length] = parsed.value().chunk_payload(c);
    writer.AddChunk(ChunkKind::kShardTree,
                    std::vector<std::uint8_t>(payload, payload + length));
  }
  auto bytes = std::move(writer).Finalize();
  // Size/fingerprint are unchanged only if layout matches; rewrite the
  // manifest to match the permuted container.
  auto manifest = SnapshotManifest::Parse(manifest_);
  ASSERT_TRUE(manifest.ok());
  SnapshotManifest updated = manifest.value();
  updated.payload_bytes = bytes.size();
  updated.dataset_fingerprint = ContainerFingerprint(bytes.data(), bytes.size());
  ASSERT_TRUE(WriteFile(gen_dir_ + "/" + SnapshotStore::kManifestFile,
                        updated.Serialize())
                  .ok());
  EXPECT_TRUE(LoadWithContainer(bytes).ok());
}

TEST_F(SnapshotCorruptionTest, DuplicatedShardChunkRejected) {
  auto parsed = ContainerReader::Parse(container_.data(), container_.size());
  ASSERT_TRUE(parsed.ok());
  ContainerWriter writer;
  for (const std::size_t c : {0, 1, 1}) {  // shard 2's chunk replaced by 1's
    const auto [payload, length] = parsed.value().chunk_payload(c);
    writer.AddChunk(ChunkKind::kShardTree,
                    std::vector<std::uint8_t>(payload, payload + length));
  }
  auto bytes = std::move(writer).Finalize();
  auto manifest = SnapshotManifest::Parse(manifest_);
  ASSERT_TRUE(manifest.ok());
  SnapshotManifest updated = manifest.value();
  updated.payload_bytes = bytes.size();
  updated.dataset_fingerprint = ContainerFingerprint(bytes.data(), bytes.size());
  ASSERT_TRUE(WriteFile(gen_dir_ + "/" + SnapshotStore::kManifestFile,
                        updated.Serialize())
                  .ok());
  EXPECT_EQ(LoadWithContainer(bytes).code(), StatusCode::kCorruption);
}

// ---- flat (zero-deserialization) container ---------------------------------
//
// The flat read path trusts NOTHING it maps: the chunk CRC catches byte
// damage, and ParseFlatArena's structural validation catches arenas whose
// checksums are valid but whose offsets/links lie. The second half of this
// fixture rebuilds every checksum after corrupting, so the structural layer
// alone must do the rejecting.

class FlatSnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/flatcorrupt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);

    Index::Options options;
    options.num_shards = 3;
    options.tree.leaf_capacity = 6;
    auto built =
        Index::Build(dataset::UniformVectors(90, 5, 19), L2(), options);
    ASSERT_TRUE(built.ok());

    SnapshotStore store(dir_);
    ASSERT_TRUE(store.SaveFlat(built.value()).ok());
    gen_dir_ = store.GenerationDir(1);
    auto bytes = ReadFile(gen_dir_ + "/" + SnapshotStore::kContainerFile);
    ASSERT_TRUE(bytes.ok());
    container_ = std::move(bytes).ValueOrDie();
    auto manifest = ReadFile(gen_dir_ + "/" + SnapshotStore::kManifestFile);
    ASSERT_TRUE(manifest.ok());
    manifest_ = std::move(manifest).ValueOrDie();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Status OpenWithContainer(const std::vector<std::uint8_t>& bytes) {
    EXPECT_TRUE(
        WriteFile(gen_dir_ + "/" + SnapshotStore::kContainerFile, bytes).ok());
    SnapshotStore store(dir_);
    return store.OpenFlat(L2()).status();
  }

  /// Applies `mutate` to chunk 0's arena bytes, then REBUILDS every
  /// checksum on the way out — chunk CRC, container header CRC, manifest
  /// fingerprint — so the only layer left to reject the result is the
  /// arena's own structural validation.
  template <typename Fn>
  Status OpenWithMutatedArena(Fn mutate) {
    auto parsed = ContainerReader::Parse(container_.data(), container_.size());
    EXPECT_TRUE(parsed.ok());
    ContainerWriter writer;
    for (std::size_t c = 0; c < parsed.value().num_chunks(); ++c) {
      const auto [payload, length] = parsed.value().chunk_payload(c);
      std::vector<std::uint8_t> bytes(payload, payload + length);
      if (c == 0) {
        std::vector<std::uint8_t> arena(bytes.begin() + 8, bytes.end());
        mutate(arena);
        bytes.resize(8);
        bytes.insert(bytes.end(), arena.begin(), arena.end());
      }
      writer.AddChunk(ChunkKind::kFlatShard, std::move(bytes),
                      kFlatChunkAlignment);
    }
    auto file = std::move(writer).Finalize();
    auto manifest = SnapshotManifest::Parse(manifest_);
    EXPECT_TRUE(manifest.ok());
    SnapshotManifest updated = manifest.value();
    updated.payload_bytes = file.size();
    updated.dataset_fingerprint =
        ContainerFingerprint(file.data(), file.size());
    EXPECT_TRUE(WriteFile(gen_dir_ + "/" + SnapshotStore::kManifestFile,
                          updated.Serialize())
                    .ok());
    return OpenWithContainer(file);
  }

  static void PokeU32(std::vector<std::uint8_t>& arena, std::size_t offset,
                      std::uint32_t value) {
    ASSERT_LE(offset + 4, arena.size());
    for (int i = 0; i < 4; ++i) {
      arena[offset + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(value >> (8 * i));
    }
  }
  static void PokeU64(std::vector<std::uint8_t>& arena, std::size_t offset,
                      std::uint64_t value) {
    ASSERT_LE(offset + 8, arena.size());
    for (int i = 0; i < 8; ++i) {
      arena[offset + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(value >> (8 * i));
    }
  }
  static std::uint64_t PeekU64(const std::vector<std::uint8_t>& arena,
                               std::size_t offset) {
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= std::uint64_t{arena[offset + static_cast<std::size_t>(i)]}
               << (8 * i);
    }
    return value;
  }
  static std::uint32_t PeekU32(const std::vector<std::uint8_t>& arena,
                               std::size_t offset) {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= std::uint32_t{arena[offset + static_cast<std::size_t>(i)]}
               << (8 * i);
    }
    return value;
  }

  std::string dir_;
  std::string gen_dir_;
  std::vector<std::uint8_t> container_;
  std::vector<std::uint8_t> manifest_;
};

TEST_F(FlatSnapshotCorruptionTest, FixtureRoundTrips) {
  SnapshotStore store(dir_);
  auto loaded = store.OpenFlat(L2());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().index.size(), 90u);
  EXPECT_TRUE(loaded.value().index.flat_serving());
}

TEST_F(FlatSnapshotCorruptionTest, EveryTruncationPrefixRejected) {
  for (std::size_t cut = 0; cut < container_.size();
       cut += (cut < 256 ? 1 : 23)) {
    std::vector<std::uint8_t> truncated(container_.begin(),
                                        container_.begin() + cut);
    EXPECT_FALSE(OpenWithContainer(truncated).ok()) << "prefix " << cut;
  }
}

TEST_F(FlatSnapshotCorruptionTest, BitFlipSweepRejected) {
  // Flips across the whole file — header, chunk table, padding, and every
  // region of every arena — must all surface as a non-OK Status (the CRCs
  // and the container fingerprint cover every byte).
  for (std::size_t pos = 0; pos < container_.size(); pos += 7) {
    for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      auto corrupted = container_;
      corrupted[pos] ^= mask;
      EXPECT_FALSE(OpenWithContainer(corrupted).ok())
          << "byte " << pos << " flip 0x" << std::hex << int{mask};
    }
  }
}

TEST_F(FlatSnapshotCorruptionTest, StructuralHeaderCorruptionRejected) {
  // FlatHeaderRec field offsets (layout is static_asserted in
  // snapshot/flat_tree.h).
  constexpr std::size_t kMagicOff = 0, kVersionOff = 4, kOrderOff = 8,
                        kLeafOff = 12, kFlagsOff = 20, kDimOff = 24,
                        kCountOff = 32,
                        kNodeCountOff = 40, kRootOff = 48, kObjectsOff = 56,
                        kPathCountOff = 72, kBoundsOff = 80,
                        kEntriesCountOff = 104, kNodesOff = 112,
                        kChildrenCountOff = 128, kArenaBytesOff = 136;
  struct Mutation {
    const char* name;
    std::size_t offset;
    std::uint64_t value;
    bool is_u32;
  };
  const Mutation mutations[] = {
      {"bad magic", kMagicOff, 0xdeadbeefu, true},
      {"future version", kVersionOff, 99, true},
      {"order below 2", kOrderOff, 1, true},
      {"order huge", kOrderOff, 0xffffffffu, true},
      {"leaf capacity zero", kLeafOff, 0, true},
      {"unknown flags", kFlagsOff, 0xff, true},
      // Zero dim with a non-zero object count once divided by zero inside
      // the objects-section bounds check (SIGFPE, not a Status).
      {"dim zero with objects", kDimOff, 0, true},
      {"object count over u32", kCountOff, std::uint64_t{1} << 32, false},
      {"node count zero", kNodeCountOff, 0, false},
      {"node count huge", kNodeCountOff, std::uint64_t{1} << 40, false},
      {"root not first node", kRootOff, 1, false},
      {"root absent", kRootOff, ~std::uint64_t{0}, false},
      {"objects misaligned", kObjectsOff, 145, false},
      {"objects out of bounds", kObjectsOff, std::uint64_t{1} << 60, false},
      {"path count huge", kPathCountOff, std::uint64_t{1} << 60, false},
      {"bounds out of bounds", kBoundsOff, std::uint64_t{1} << 60, false},
      {"entry count huge", kEntriesCountOff, std::uint64_t{1} << 60, false},
      {"nodes out of bounds", kNodesOff, std::uint64_t{1} << 60, false},
      {"children count zero", kChildrenCountOff, 0, false},
      {"arena size lie", kArenaBytesOff, 8, false},
  };
  for (const Mutation& m : mutations) {
    const Status status = OpenWithMutatedArena([&](auto& arena) {
      if (m.is_u32) {
        PokeU32(arena, m.offset, static_cast<std::uint32_t>(m.value));
      } else {
        PokeU64(arena, m.offset, m.value);
      }
    });
    EXPECT_FALSE(status.ok()) << m.name << " was accepted";
  }
}

TEST_F(FlatSnapshotCorruptionTest, StructuralNodeAndEntryCorruptionRejected) {
  auto parsed = ContainerReader::Parse(container_.data(), container_.size());
  ASSERT_TRUE(parsed.ok());
  const auto [payload, length] = parsed.value().chunk_payload(0);
  const std::vector<std::uint8_t> arena0(payload + 8, payload + length);
  const std::uint64_t entries_offset = PeekU64(arena0, 96);
  const std::uint64_t nodes_offset = PeekU64(arena0, 112);
  const std::uint64_t children_offset = PeekU64(arena0, 120);
  const std::uint64_t children_count = PeekU64(arena0, 128);
  ASSERT_GT(children_count, 0u);  // 90 points, leaf 6: root is internal

  // Root node's flags carry an undefined bit.
  EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                 PokeU32(arena, static_cast<std::size_t>(nodes_offset), 0xf0);
               }).ok());
  // Root's vp1 points past the object table.
  EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                 PokeU32(arena, static_cast<std::size_t>(nodes_offset) + 4,
                         0x0fffffffu);
               }).ok());
  // A child link pointing backwards (to the root itself) — a cycle the
  // preorder rule must reject before any traversal can loop on it.
  EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                 PokeU32(arena, static_cast<std::size_t>(children_offset), 0);
               }).ok());
  // First two stored ids out of range (in v2 the entries section is the
  // bare u32 id column; the same pokes hit the first leaf entry's id and
  // PATH fields in a v1 arena).
  EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                 PokeU32(arena, static_cast<std::size_t>(entries_offset),
                         0x0fffffffu);
               }).ok());
  EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                 PokeU32(arena, static_cast<std::size_t>(entries_offset) + 4,
                         0x0fffffffu);
               }).ok());
}

TEST_F(FlatSnapshotCorruptionTest, V2SoaStructuralCorruptionRejected) {
  // The v2-only structures: the 48-byte header extension locating the
  // D1/D2 columns and the per-node PATH-slab records, and the canonical
  // slab tiling rule. Every mutation leaves all checksums VALID (the
  // harness rebuilds them), so the structural pass alone must reject.
  auto parsed = ContainerReader::Parse(container_.data(), container_.size());
  ASSERT_TRUE(parsed.ok());
  const auto [payload, length] = parsed.value().chunk_payload(0);
  const std::vector<std::uint8_t> arena0(payload + 8, payload + length);
  ASSERT_EQ(PeekU32(arena0, 4), 2u);  // fixture writes the v2 format
  const std::uint64_t node_count = PeekU64(arena0, 40);
  const std::uint64_t nodes_offset = PeekU64(arena0, 112);
  constexpr std::size_t kExtD1Off = 144, kExtD2Off = 152,
                        kExtLeafPathsOff = 160, kExtReservedOff = 168;
  const std::uint64_t leafpaths_offset = PeekU64(arena0, kExtLeafPathsOff);

  std::vector<std::size_t> leaves;
  std::size_t internal_node = ~std::size_t{0};
  for (std::size_t n = 0; n < node_count; ++n) {
    const std::uint32_t flags =
        PeekU32(arena0, static_cast<std::size_t>(nodes_offset) + n * 32);
    if ((flags & 1u) != 0) {
      leaves.push_back(n);
    } else {
      internal_node = n;
    }
  }
  ASSERT_GE(leaves.size(), 2u);
  ASSERT_NE(internal_node, ~std::size_t{0});
  const auto lp_off = [&](std::size_t n) {
    return static_cast<std::size_t>(leafpaths_offset) + n * 16;
  };

  // An internal node carrying a PATH slab record.
  EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                 PokeU64(arena, lp_off(internal_node), 1);
               }).ok());
  // First leaf's slab shifted: the slabs no longer tile the PATH pool.
  EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                 PokeU64(arena, lp_off(leaves[0]),
                         PeekU64(arena, lp_off(leaves[0])) + 8);
               }).ok());
  // Second leaf's slab pulled backwards to OVERLAP the first leaf's.
  const std::uint64_t second_slab = PeekU64(arena0, lp_off(leaves[1]));
  ASSERT_GT(second_slab, 0u);  // p=5 makes every leaf slab non-empty
  EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                 PokeU64(arena, lp_off(leaves[1]), second_slab - 1);
               }).ok());
  // A leaf PATH length exceeding the header's p.
  EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                 PokeU32(arena, lp_off(leaves[0]) + 8,
                         PeekU32(arena, 16) + 1);
               }).ok());
  // Nonzero reserved field in a leaf path record.
  EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                 PokeU32(arena, lp_off(leaves[0]) + 12, 7);
               }).ok());
  // Nonzero reserved words in the header extension.
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                   PokeU64(arena, kExtReservedOff + 8 * r, 1);
                 }).ok());
  }
  // D1/D2/leafpaths sections pointing out of the mapping (truncated
  // columns), and a misaligned D1 column.
  for (const std::size_t off : {kExtD1Off, kExtD2Off, kExtLeafPathsOff}) {
    EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                   PokeU64(arena, off, std::uint64_t{1} << 60);
                 }).ok());
  }
  EXPECT_FALSE(OpenWithMutatedArena([&](auto& arena) {
                 PokeU64(arena, kExtD1Off, PeekU64(arena, kExtD1Off) + 4);
               }).ok());
}

TEST_F(FlatSnapshotCorruptionTest, TamperedManifestParamsFailFast) {
  auto parsed = SnapshotManifest::Parse(manifest_);
  ASSERT_TRUE(parsed.ok());
  SnapshotManifest tampered = parsed.value();
  tampered.leaf_capacity += 1;
  ASSERT_TRUE(
      WriteFile(gen_dir_ + "/" + SnapshotStore::kManifestFile,
                tampered.Serialize())
          .ok());
  SnapshotStore store(dir_);
  EXPECT_EQ(store.OpenFlat(L2()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FlatSnapshotCorruptionTest, HeapSnapshotRejectedByFlatOpen) {
  // A heap-tree snapshot must not open through the flat path (and vice
  // versa): the manifest's index kind gates the representation.
  Index::Options options;
  options.num_shards = 3;
  options.tree.leaf_capacity = 6;
  auto built = Index::Build(dataset::UniformVectors(90, 5, 19), L2(), options);
  ASSERT_TRUE(built.ok());
  SnapshotStore store(dir_);
  // While the fixture's flat generation is current, the heap loader must
  // refuse it...
  EXPECT_FALSE(store.LoadSharded<Vector>(L2(), VectorCodec()).ok());
  // ...and once a heap generation is current, the flat opener must refuse
  // that.
  ASSERT_TRUE(store.SaveSharded(built.value(), VectorCodec()).ok());
  EXPECT_FALSE(store.OpenFlat(L2()).ok());
  EXPECT_TRUE(store.LoadSharded<Vector>(L2(), VectorCodec()).ok());
}

}  // namespace
}  // namespace mvp::snapshot

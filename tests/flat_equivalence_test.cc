#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "dataset/vector_gen.h"
#include "metric/counting.h"
#include "metric/kernels/kernels.h"
#include "metric/lp.h"
#include "serve/cancel.h"
#include "serve/executor.h"
#include "serve/sharded_index.h"
#include "snapshot/flat_tree.h"
#include "snapshot/snapshot_store.h"

/// The equivalence layer for zero-deserialization serving: a flat index
/// opened off a snapshot mapping must be INDISTINGUISHABLE from the heap
/// index deserialized from the same logical snapshot — same result sets
/// (ids and bit-identical distances), same SearchStats down to the exact
/// distance-computation count, over thousands of seeded queries on both of
/// the paper's workload shapes. Partial results under a tight distance
/// budget must match too: both representations evaluate the same metric
/// sequence, so a budget cancels both at the same evaluation.
///
/// Three representations are differentially tested: the heap tree, the
/// current flat format (v2, SoA leaves swept by the batch kernels), and a
/// v1 (AoS) encoding of the same trees — plus the batched RunBatch door
/// (which primes root distances with the many-queries-one-vantage-point
/// kernel) and every reachable SIMD dispatch tier. Same ids, bit-identical
/// distances, same four SearchStats counters, everywhere.

namespace mvp::snapshot {
namespace {

using metric::L2;
using metric::Vector;
using Index = serve::ShardedMvpIndex<Vector, L2>;

std::vector<Vector> ClusteredData(std::size_t count, std::size_t dim,
                                  std::uint64_t seed) {
  dataset::ClusterParams params;
  params.count = count;
  params.dim = dim;
  params.cluster_size = 50;
  return dataset::ClusteredVectors(params, seed);
}

/// Heap + flat loads of one snapshot pair over the same dataset.
class FlatEquivalenceTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/flateq_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_ + "_heap");
    std::filesystem::remove_all(dir_ + "_flat");

    const bool clustered = GetParam();
    data_ = clustered ? ClusteredData(600, 8, 101)
                      : dataset::UniformVectors(600, 8, 101);

    Index::Options options;
    options.num_shards = 3;
    options.tree.order = 3;
    options.tree.leaf_capacity = 8;
    options.tree.num_path_distances = 4;
    auto built = Index::Build(data_, L2(), options);
    ASSERT_TRUE(built.ok());

    SnapshotStore heap_store(dir_ + "_heap");
    ASSERT_TRUE(heap_store.SaveSharded(built.value(), VectorCodec()).ok());
    auto heap = heap_store.LoadSharded<Vector>(L2(), VectorCodec());
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    heap_.emplace(std::move(heap).ValueOrDie().index);
    ASSERT_FALSE(heap_->flat_serving());

    SnapshotStore flat_store(dir_ + "_flat");
    ASSERT_TRUE(flat_store.SaveFlat(built.value()).ok());
    auto flat = flat_store.OpenFlat(L2());
    ASSERT_TRUE(flat.ok()) << flat.status().ToString();
    flat_.emplace(std::move(flat).ValueOrDie().index);
    ASSERT_TRUE(flat_->flat_serving());
    // The snapshot pipeline writes the current format.
    for (std::size_t s = 0; s < flat_->num_shards(); ++s) {
      ASSERT_EQ(flat_->flat_shard(s).version(), flat::kFlatVersionV2);
    }

    BuildV1();
  }
  void TearDown() override {
    heap_.reset();
    flat_.reset();  // views die before the mapping-owning index they alias
    flat_v1_.reset();
    std::filesystem::remove_all(dir_ + "_heap");
    std::filesystem::remove_all(dir_ + "_flat");
  }

  /// Encodes the SAME shard trees as format v1 (AoS leaf entries) and
  /// restores a third index over the buffers — the legacy-snapshot serving
  /// path, without a round-trip through a store.
  void BuildV1() {
    const std::size_t k = heap_->num_shards();
    auto arenas = std::make_shared<std::vector<std::vector<std::uint8_t>>>();
    arenas->reserve(k);
    for (std::size_t s = 0; s < k; ++s) {
      BinaryWriter stream;
      ASSERT_TRUE(heap_->shard(s).Serialize(&stream, VectorCodec{}).ok());
      auto arena = flat::BuildFlatArena(
          stream.buffer().data(), stream.buffer().size(), flat::kFlatVersionV1);
      ASSERT_TRUE(arena.ok()) << arena.status().ToString();
      arenas->push_back(std::move(arena).ValueOrDie());
    }
    std::vector<Index::FlatView> views;
    for (std::size_t s = 0; s < k; ++s) {
      auto view = Index::FlatView::Open((*arenas)[s].data(),
                                        (*arenas)[s].size(),
                                        serve::CancelChecked<L2>(L2()));
      ASSERT_TRUE(view.ok()) << view.status().ToString();
      ASSERT_EQ(view.value().version(), flat::kFlatVersionV1);
      views.push_back(std::move(view).ValueOrDie());
    }
    auto restored = Index::RestoreFlat(heap_->options(), heap_->size(),
                                       std::move(views),
                                       std::shared_ptr<const void>(arenas));
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    flat_v1_.emplace(std::move(restored).ValueOrDie());
    ASSERT_TRUE(flat_v1_->flat_serving());
  }

  static void ExpectIdentical(const std::vector<Neighbor>& a,
                              const std::vector<Neighbor>& b,
                              const SearchStats& sa, const SearchStats& sb,
                              std::size_t q) {
    ASSERT_EQ(a.size(), b.size()) << "query " << q;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "query " << q << " result " << i;
      // Bit-identical, not approximately equal: both representations run
      // the same floating-point expressions on the same values.
      EXPECT_EQ(a[i].distance, b[i].distance) << "query " << q;
    }
    EXPECT_EQ(sa.distance_computations, sb.distance_computations)
        << "query " << q;
    EXPECT_EQ(sa.nodes_visited, sb.nodes_visited) << "query " << q;
    EXPECT_EQ(sa.leaf_points_seen, sb.leaf_points_seen) << "query " << q;
    EXPECT_EQ(sa.leaf_points_filtered, sb.leaf_points_filtered)
        << "query " << q;
  }

  std::string dir_;
  std::vector<Vector> data_;
  std::optional<Index> heap_;
  std::optional<Index> flat_;     // current format (v2, SoA leaves)
  std::optional<Index> flat_v1_;  // same trees encoded as v1 (AoS leaves)
};

TEST_P(FlatEquivalenceTest, RangeSearchBitIdentical) {
  const auto queries = dataset::UniformQueryVectors(500, 8, 777);
  const double radii[] = {0.2, 0.6, 1.1};
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const double radius = radii[q % 3];
    SearchStats hs, fs;
    const auto heap_result = heap_->RangeSearch(queries[q], radius, &hs);
    const auto flat_result = flat_->RangeSearch(queries[q], radius, &fs);
    ExpectIdentical(heap_result, flat_result, hs, fs, q);
  }
}

TEST_P(FlatEquivalenceTest, KnnSearchBitIdentical) {
  const auto queries = dataset::UniformQueryVectors(500, 8, 778);
  const std::size_t ks[] = {1, 5, 17};
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::size_t k = ks[q % 3];
    SearchStats hs, fs;
    const auto heap_result = heap_->KnnSearch(queries[q], k, &hs);
    const auto flat_result = flat_->KnnSearch(queries[q], k, &fs);
    ExpectIdentical(heap_result, flat_result, hs, fs, q);
  }
}

TEST_P(FlatEquivalenceTest, V1AndV2LayoutsBitIdenticalToHeap) {
  const auto queries = dataset::UniformQueryVectors(300, 8, 791);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const double radius = (q % 3 == 0) ? 0.3 : 0.9;
    SearchStats hs, fs, vs;
    const auto heap_result = heap_->RangeSearch(queries[q], radius, &hs);
    const auto v2_result = flat_->RangeSearch(queries[q], radius, &fs);
    const auto v1_result = flat_v1_->RangeSearch(queries[q], radius, &vs);
    ExpectIdentical(heap_result, v2_result, hs, fs, q);
    ExpectIdentical(heap_result, v1_result, hs, vs, q);

    SearchStats hks, fks, vks;
    const std::size_t k = 1 + q % 11;
    const auto heap_knn = heap_->KnnSearch(queries[q], k, &hks);
    const auto v2_knn = flat_->KnnSearch(queries[q], k, &fks);
    const auto v1_knn = flat_v1_->KnnSearch(queries[q], k, &vks);
    ExpectIdentical(heap_knn, v2_knn, hks, fks, q);
    ExpectIdentical(heap_knn, v1_knn, hks, vks, q);
  }
}

TEST_P(FlatEquivalenceTest, RangeResultsMatchBruteForce) {
  // Anchor the pair to ground truth, not just to each other.
  const auto queries = dataset::UniformQueryVectors(50, 8, 779);
  const L2 l2;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const double radius = 0.8;
    std::vector<Neighbor> expected;
    for (std::size_t i = 0; i < data_.size(); ++i) {
      const double d = l2(queries[q], data_[i]);
      if (d <= radius) expected.push_back(Neighbor{i, d});
    }
    std::sort(expected.begin(), expected.end(), NeighborLess);
    const auto flat_result = flat_->RangeSearch(queries[q], radius);
    ASSERT_EQ(flat_result.size(), expected.size()) << "query " << q;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(flat_result[i].id, expected[i].id) << "query " << q;
      EXPECT_EQ(flat_result[i].distance, expected[i].distance);
    }
  }
}

/// One search under a hard distance-computation budget, run serially so the
/// cancellation point is deterministic. Returns the partial harvest.
template <typename SearchFn>
std::vector<Neighbor> RunBudgeted(std::uint64_t budget, bool* cancelled,
                                  SearchStats* stats, const SearchFn& search) {
  metric::AtomicDistanceCounter counter;
  serve::CancelToken token;
  std::vector<Neighbor> out;
  *cancelled = false;
  serve::CancelScope scope(&counter, &token, serve::kNoDeadline, budget);
  try {
    search(&out, stats);
  } catch (const serve::CancelledError&) {
    *cancelled = true;
  }
  return out;
}

TEST_P(FlatEquivalenceTest, PartialResultsUnderBudgetBitIdentical) {
  // Deadline flavor chosen for determinism: a distance budget trips at an
  // exact evaluation index, and serial fan-out makes that index identical
  // across representations — so even INTERRUPTED searches must agree.
  const auto queries = dataset::UniformQueryVectors(100, 8, 780);
  std::size_t cancels = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const std::uint64_t budget : {std::uint64_t{70}, std::uint64_t{200}}) {
      bool hc = false, fc = false;
      SearchStats hs, fs;
      auto heap_result =
          RunBudgeted(budget, &hc, &hs, [&](auto* out, auto* stats) {
            heap_->RangeSearchInto(queries[q], 0.8, out, stats);
          });
      auto flat_result =
          RunBudgeted(budget, &fc, &fs, [&](auto* out, auto* stats) {
            flat_->RangeSearchInto(queries[q], 0.8, out, stats);
          });
      EXPECT_EQ(hc, fc) << "query " << q << " budget " << budget;
      if (hc) ++cancels;
      std::sort(heap_result.begin(), heap_result.end(), NeighborLess);
      std::sort(flat_result.begin(), flat_result.end(), NeighborLess);
      ExpectIdentical(heap_result, flat_result, hs, fs, q);

      bool hkc = false, fkc = false;
      SearchStats hks, fks;
      auto heap_knn =
          RunBudgeted(budget, &hkc, &hks, [&](auto* out, auto* stats) {
            heap_->KnnSearchInto(queries[q], 9, out, stats);
          });
      auto flat_knn =
          RunBudgeted(budget, &fkc, &fks, [&](auto* out, auto* stats) {
            flat_->KnnSearchInto(queries[q], 9, out, stats);
          });
      EXPECT_EQ(hkc, fkc) << "query " << q << " budget " << budget;
      std::sort(heap_knn.begin(), heap_knn.end(), NeighborLess);
      std::sort(flat_knn.begin(), flat_knn.end(), NeighborLess);
      ExpectIdentical(heap_knn, flat_knn, hks, fks, q);
    }
  }
  // The tight budget must actually have interrupted some searches, or this
  // test is vacuous.
  EXPECT_GT(cancels, 0u);
}

TEST_P(FlatEquivalenceTest, BudgetedPartialsAgreeAcrossAllThreeLayouts) {
  const auto queries = dataset::UniformQueryVectors(60, 8, 785);
  std::size_t cancels = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const std::uint64_t budget : {std::uint64_t{70}, std::uint64_t{200}}) {
      bool hc = false, fc = false, vc = false;
      SearchStats hs, fs, vs;
      auto heap_result =
          RunBudgeted(budget, &hc, &hs, [&](auto* out, auto* stats) {
            heap_->RangeSearchInto(queries[q], 0.8, out, stats);
          });
      auto v2_result =
          RunBudgeted(budget, &fc, &fs, [&](auto* out, auto* stats) {
            flat_->RangeSearchInto(queries[q], 0.8, out, stats);
          });
      auto v1_result =
          RunBudgeted(budget, &vc, &vs, [&](auto* out, auto* stats) {
            flat_v1_->RangeSearchInto(queries[q], 0.8, out, stats);
          });
      EXPECT_EQ(hc, fc) << "query " << q << " budget " << budget;
      EXPECT_EQ(hc, vc) << "query " << q << " budget " << budget;
      if (hc) ++cancels;
      std::sort(heap_result.begin(), heap_result.end(), NeighborLess);
      std::sort(v2_result.begin(), v2_result.end(), NeighborLess);
      std::sort(v1_result.begin(), v1_result.end(), NeighborLess);
      ExpectIdentical(heap_result, v2_result, hs, fs, q);
      ExpectIdentical(heap_result, v1_result, hs, vs, q);
    }
  }
  EXPECT_GT(cancels, 0u);
}

/// The batch front door: RunBatch over the flat index primes every query's
/// root vantage-point distances with one many-queries-one-vantage-point
/// kernel sweep per shard. Outcomes — statuses, partial flags, neighbors,
/// and all four SearchStats counters — must still be bit-identical to the
/// heap index, which runs completely unprimed, including for queries whose
/// distance budget cuts them off mid-search.
TEST_P(FlatEquivalenceTest, RunBatchPrimedBitIdenticalAcrossLayouts) {
  using Query = serve::BatchQuery<Vector>;
  const auto queries = dataset::UniformQueryVectors(64, 8, 786);
  std::vector<Query> batch;
  batch.reserve(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    Query bq;
    bq.object = queries[q];
    if (q % 2 == 0) {
      bq.kind = Query::Kind::kRange;
      bq.radius = 0.8;
    } else {
      bq.kind = Query::Kind::kKnn;
      bq.k = 7;
    }
    // Sprinkle budget-cut partials through the batch.
    if (q % 5 == 3) bq.max_distance_computations = 120;
    batch.push_back(std::move(bq));
  }

  const auto heap_out = serve::RunBatch(*heap_, batch, nullptr);
  const auto v2_out = serve::RunBatch(*flat_, batch, nullptr);
  const auto v1_out = serve::RunBatch(*flat_v1_, batch, nullptr);
  ASSERT_EQ(heap_out.size(), batch.size());
  ASSERT_EQ(v2_out.size(), batch.size());
  ASSERT_EQ(v1_out.size(), batch.size());
  std::size_t partials = 0;
  for (std::size_t q = 0; q < batch.size(); ++q) {
    for (const auto* other : {&v2_out[q], &v1_out[q]}) {
      EXPECT_EQ(heap_out[q].status.code(), other->status.code())
          << "query " << q;
      EXPECT_EQ(heap_out[q].partial, other->partial) << "query " << q;
      ExpectIdentical(heap_out[q].neighbors, other->neighbors,
                      heap_out[q].search, other->search, q);
      EXPECT_EQ(heap_out[q].distance_computations,
                other->distance_computations)
          << "query " << q;
    }
    if (heap_out[q].partial) ++partials;
  }
  // The budgeted queries must actually have been cut, or the partial-path
  // comparison is vacuous.
  EXPECT_GT(partials, 0u);
}

/// Every reachable dispatch tier (scalar always; AVX2/AVX-512/NEON as the
/// host allows) must serve the v2 flat index bit-identically to the heap
/// index — results AND stats — under plain searches, the primed batch
/// door, and budget cancellation. This is the end-to-end face of the
/// kernel conformance suite.
TEST_P(FlatEquivalenceTest, EveryKernelTierServesBitIdentically) {
  namespace kernels = metric::kernels;
  struct RestoreDispatch {
    // not a status to act on: best-effort reset to feature-probe dispatch
    ~RestoreDispatch() { (void)kernels::ForceTier("auto"); }
  } restore;

  const auto queries = dataset::UniformQueryVectors(40, 8, 787);
  for (int t = 0; t < kernels::kTierCount; ++t) {
    const auto tier = static_cast<kernels::Tier>(t);
    if (!kernels::TierSupported(tier)) continue;
    const Status forced = kernels::ForceTier(kernels::TierName(tier));
    ASSERT_TRUE(forced.ok()) << forced.ToString();

    for (std::size_t q = 0; q < queries.size(); ++q) {
      SearchStats hs, fs;
      const auto heap_result = heap_->RangeSearch(queries[q], 0.8, &hs);
      const auto flat_result = flat_->RangeSearch(queries[q], 0.8, &fs);
      ExpectIdentical(heap_result, flat_result, hs, fs, q);

      bool hc = false, fc = false;
      SearchStats hbs, fbs;
      auto heap_partial =
          RunBudgeted(90, &hc, &hbs, [&](auto* out, auto* stats) {
            heap_->RangeSearchInto(queries[q], 0.8, out, stats);
          });
      auto flat_partial =
          RunBudgeted(90, &fc, &fbs, [&](auto* out, auto* stats) {
            flat_->RangeSearchInto(queries[q], 0.8, out, stats);
          });
      EXPECT_EQ(hc, fc) << kernels::TierName(tier) << " query " << q;
      std::sort(heap_partial.begin(), heap_partial.end(), NeighborLess);
      std::sort(flat_partial.begin(), flat_partial.end(), NeighborLess);
      ExpectIdentical(heap_partial, flat_partial, hbs, fbs, q);
    }

    // The primed batch path under this tier, against the unprimed heap.
    using Query = serve::BatchQuery<Vector>;
    std::vector<Query> batch;
    for (std::size_t q = 0; q < 16; ++q) {
      Query bq;
      bq.object = queries[q % queries.size()];
      bq.kind = (q % 2 == 0) ? Query::Kind::kRange : Query::Kind::kKnn;
      bq.radius = 0.8;
      bq.k = 5;
      batch.push_back(std::move(bq));
    }
    const auto heap_out = serve::RunBatch(*heap_, batch, nullptr);
    const auto flat_out = serve::RunBatch(*flat_, batch, nullptr);
    for (std::size_t q = 0; q < batch.size(); ++q) {
      ExpectIdentical(heap_out[q].neighbors, flat_out[q].neighbors,
                      heap_out[q].search, flat_out[q].search, q);
    }
  }
}

TEST(FlatEmptyShardTest, FewerObjectsThanShardsRoundTrips) {
  // SaveFlat of an index with object_count < num_shards writes empty-shard
  // arenas (dim 0, zero objects). OpenFlat must serve them — the empty
  // objects section once tripped a division by zero in arena validation.
  const std::string dir = ::testing::TempDir() + "/flateq_empty_shard";
  std::filesystem::remove_all(dir);
  const auto data = dataset::UniformVectors(2, 8, 404);
  Index::Options options;
  options.num_shards = 4;
  auto built = Index::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());

  SnapshotStore store(dir);
  auto saved = store.SaveFlat(built.value());
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  auto flat = store.OpenFlat(L2());
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  {
    const Index index = std::move(flat).ValueOrDie().index;
    EXPECT_TRUE(index.flat_serving());
    EXPECT_EQ(index.size(), 2u);
    const auto result = index.KnnSearch(data[0], 2);
    ASSERT_EQ(result.size(), 2u);
    EXPECT_EQ(result[0].id, 0u);
    EXPECT_EQ(result[0].distance, 0.0);
  }  // views die before the directory goes away
  std::filesystem::remove_all(dir);
}

TEST(FlatServingTest, ReSerializationFailsFast) {
  // A flat-serving index has no heap trees to serialize; both save paths
  // must reject it with InvalidArgument instead of dereferencing the
  // disengaged heap representation.
  const std::string dir = ::testing::TempDir() + "/flateq_reserialize";
  std::filesystem::remove_all(dir);
  Index::Options options;
  options.num_shards = 3;
  auto built = Index::Build(dataset::UniformVectors(60, 8, 405), L2(), options);
  ASSERT_TRUE(built.ok());

  SnapshotStore store(dir);
  ASSERT_TRUE(store.SaveFlat(built.value()).ok());
  auto flat = store.OpenFlat(L2());
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  {
    const Index index = std::move(flat).ValueOrDie().index;
    ASSERT_TRUE(index.flat_serving());
    EXPECT_EQ(store.SaveFlat(index).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(store.SaveSharded(index, VectorCodec()).status().code(),
              StatusCode::kInvalidArgument);
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Workloads, FlatEquivalenceTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Clustered" : "Uniform";
                         });

}  // namespace
}  // namespace mvp::snapshot

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/query.h"
#include "common/rng.h"
#include "dataset/vector_gen.h"
#include "metric/counting.h"
#include "metric/lp.h"
#include "serve/cancel.h"
#include "serve/sharded_index.h"
#include "snapshot/flat_tree.h"
#include "snapshot/snapshot_store.h"

/// The equivalence layer for zero-deserialization serving: a flat index
/// opened off a snapshot mapping must be INDISTINGUISHABLE from the heap
/// index deserialized from the same logical snapshot — same result sets
/// (ids and bit-identical distances), same SearchStats down to the exact
/// distance-computation count, over thousands of seeded queries on both of
/// the paper's workload shapes. Partial results under a tight distance
/// budget must match too: both representations evaluate the same metric
/// sequence, so a budget cancels both at the same evaluation.

namespace mvp::snapshot {
namespace {

using metric::L2;
using metric::Vector;
using Index = serve::ShardedMvpIndex<Vector, L2>;

std::vector<Vector> ClusteredData(std::size_t count, std::size_t dim,
                                  std::uint64_t seed) {
  dataset::ClusterParams params;
  params.count = count;
  params.dim = dim;
  params.cluster_size = 50;
  return dataset::ClusteredVectors(params, seed);
}

/// Heap + flat loads of one snapshot pair over the same dataset.
class FlatEquivalenceTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/flateq_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_ + "_heap");
    std::filesystem::remove_all(dir_ + "_flat");

    const bool clustered = GetParam();
    data_ = clustered ? ClusteredData(600, 8, 101)
                      : dataset::UniformVectors(600, 8, 101);

    Index::Options options;
    options.num_shards = 3;
    options.tree.order = 3;
    options.tree.leaf_capacity = 8;
    options.tree.num_path_distances = 4;
    auto built = Index::Build(data_, L2(), options);
    ASSERT_TRUE(built.ok());

    SnapshotStore heap_store(dir_ + "_heap");
    ASSERT_TRUE(heap_store.SaveSharded(built.value(), VectorCodec()).ok());
    auto heap = heap_store.LoadSharded<Vector>(L2(), VectorCodec());
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    heap_.emplace(std::move(heap).ValueOrDie().index);
    ASSERT_FALSE(heap_->flat_serving());

    SnapshotStore flat_store(dir_ + "_flat");
    ASSERT_TRUE(flat_store.SaveFlat(built.value()).ok());
    auto flat = flat_store.OpenFlat(L2());
    ASSERT_TRUE(flat.ok()) << flat.status().ToString();
    flat_.emplace(std::move(flat).ValueOrDie().index);
    ASSERT_TRUE(flat_->flat_serving());
  }
  void TearDown() override {
    heap_.reset();
    flat_.reset();  // views die before the mapping-owning index they alias
    std::filesystem::remove_all(dir_ + "_heap");
    std::filesystem::remove_all(dir_ + "_flat");
  }

  static void ExpectIdentical(const std::vector<Neighbor>& a,
                              const std::vector<Neighbor>& b,
                              const SearchStats& sa, const SearchStats& sb,
                              std::size_t q) {
    ASSERT_EQ(a.size(), b.size()) << "query " << q;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "query " << q << " result " << i;
      // Bit-identical, not approximately equal: both representations run
      // the same floating-point expressions on the same values.
      EXPECT_EQ(a[i].distance, b[i].distance) << "query " << q;
    }
    EXPECT_EQ(sa.distance_computations, sb.distance_computations)
        << "query " << q;
    EXPECT_EQ(sa.nodes_visited, sb.nodes_visited) << "query " << q;
    EXPECT_EQ(sa.leaf_points_seen, sb.leaf_points_seen) << "query " << q;
    EXPECT_EQ(sa.leaf_points_filtered, sb.leaf_points_filtered)
        << "query " << q;
  }

  std::string dir_;
  std::vector<Vector> data_;
  std::optional<Index> heap_;
  std::optional<Index> flat_;
};

TEST_P(FlatEquivalenceTest, RangeSearchBitIdentical) {
  const auto queries = dataset::UniformQueryVectors(500, 8, 777);
  const double radii[] = {0.2, 0.6, 1.1};
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const double radius = radii[q % 3];
    SearchStats hs, fs;
    const auto heap_result = heap_->RangeSearch(queries[q], radius, &hs);
    const auto flat_result = flat_->RangeSearch(queries[q], radius, &fs);
    ExpectIdentical(heap_result, flat_result, hs, fs, q);
  }
}

TEST_P(FlatEquivalenceTest, KnnSearchBitIdentical) {
  const auto queries = dataset::UniformQueryVectors(500, 8, 778);
  const std::size_t ks[] = {1, 5, 17};
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::size_t k = ks[q % 3];
    SearchStats hs, fs;
    const auto heap_result = heap_->KnnSearch(queries[q], k, &hs);
    const auto flat_result = flat_->KnnSearch(queries[q], k, &fs);
    ExpectIdentical(heap_result, flat_result, hs, fs, q);
  }
}

TEST_P(FlatEquivalenceTest, RangeResultsMatchBruteForce) {
  // Anchor the pair to ground truth, not just to each other.
  const auto queries = dataset::UniformQueryVectors(50, 8, 779);
  const L2 l2;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const double radius = 0.8;
    std::vector<Neighbor> expected;
    for (std::size_t i = 0; i < data_.size(); ++i) {
      const double d = l2(queries[q], data_[i]);
      if (d <= radius) expected.push_back(Neighbor{i, d});
    }
    std::sort(expected.begin(), expected.end(), NeighborLess);
    const auto flat_result = flat_->RangeSearch(queries[q], radius);
    ASSERT_EQ(flat_result.size(), expected.size()) << "query " << q;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(flat_result[i].id, expected[i].id) << "query " << q;
      EXPECT_EQ(flat_result[i].distance, expected[i].distance);
    }
  }
}

/// One search under a hard distance-computation budget, run serially so the
/// cancellation point is deterministic. Returns the partial harvest.
template <typename SearchFn>
std::vector<Neighbor> RunBudgeted(std::uint64_t budget, bool* cancelled,
                                  SearchStats* stats, const SearchFn& search) {
  metric::AtomicDistanceCounter counter;
  serve::CancelToken token;
  std::vector<Neighbor> out;
  *cancelled = false;
  serve::CancelScope scope(&counter, &token, serve::kNoDeadline, budget);
  try {
    search(&out, stats);
  } catch (const serve::CancelledError&) {
    *cancelled = true;
  }
  return out;
}

TEST_P(FlatEquivalenceTest, PartialResultsUnderBudgetBitIdentical) {
  // Deadline flavor chosen for determinism: a distance budget trips at an
  // exact evaluation index, and serial fan-out makes that index identical
  // across representations — so even INTERRUPTED searches must agree.
  const auto queries = dataset::UniformQueryVectors(100, 8, 780);
  std::size_t cancels = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const std::uint64_t budget : {std::uint64_t{70}, std::uint64_t{200}}) {
      bool hc = false, fc = false;
      SearchStats hs, fs;
      auto heap_result =
          RunBudgeted(budget, &hc, &hs, [&](auto* out, auto* stats) {
            heap_->RangeSearchInto(queries[q], 0.8, out, stats);
          });
      auto flat_result =
          RunBudgeted(budget, &fc, &fs, [&](auto* out, auto* stats) {
            flat_->RangeSearchInto(queries[q], 0.8, out, stats);
          });
      EXPECT_EQ(hc, fc) << "query " << q << " budget " << budget;
      if (hc) ++cancels;
      std::sort(heap_result.begin(), heap_result.end(), NeighborLess);
      std::sort(flat_result.begin(), flat_result.end(), NeighborLess);
      ExpectIdentical(heap_result, flat_result, hs, fs, q);

      bool hkc = false, fkc = false;
      SearchStats hks, fks;
      auto heap_knn =
          RunBudgeted(budget, &hkc, &hks, [&](auto* out, auto* stats) {
            heap_->KnnSearchInto(queries[q], 9, out, stats);
          });
      auto flat_knn =
          RunBudgeted(budget, &fkc, &fks, [&](auto* out, auto* stats) {
            flat_->KnnSearchInto(queries[q], 9, out, stats);
          });
      EXPECT_EQ(hkc, fkc) << "query " << q << " budget " << budget;
      std::sort(heap_knn.begin(), heap_knn.end(), NeighborLess);
      std::sort(flat_knn.begin(), flat_knn.end(), NeighborLess);
      ExpectIdentical(heap_knn, flat_knn, hks, fks, q);
    }
  }
  // The tight budget must actually have interrupted some searches, or this
  // test is vacuous.
  EXPECT_GT(cancels, 0u);
}

TEST(FlatEmptyShardTest, FewerObjectsThanShardsRoundTrips) {
  // SaveFlat of an index with object_count < num_shards writes empty-shard
  // arenas (dim 0, zero objects). OpenFlat must serve them — the empty
  // objects section once tripped a division by zero in arena validation.
  const std::string dir = ::testing::TempDir() + "/flateq_empty_shard";
  std::filesystem::remove_all(dir);
  const auto data = dataset::UniformVectors(2, 8, 404);
  Index::Options options;
  options.num_shards = 4;
  auto built = Index::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());

  SnapshotStore store(dir);
  auto saved = store.SaveFlat(built.value());
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  auto flat = store.OpenFlat(L2());
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  {
    const Index index = std::move(flat).ValueOrDie().index;
    EXPECT_TRUE(index.flat_serving());
    EXPECT_EQ(index.size(), 2u);
    const auto result = index.KnnSearch(data[0], 2);
    ASSERT_EQ(result.size(), 2u);
    EXPECT_EQ(result[0].id, 0u);
    EXPECT_EQ(result[0].distance, 0.0);
  }  // views die before the directory goes away
  std::filesystem::remove_all(dir);
}

TEST(FlatServingTest, ReSerializationFailsFast) {
  // A flat-serving index has no heap trees to serialize; both save paths
  // must reject it with InvalidArgument instead of dereferencing the
  // disengaged heap representation.
  const std::string dir = ::testing::TempDir() + "/flateq_reserialize";
  std::filesystem::remove_all(dir);
  Index::Options options;
  options.num_shards = 3;
  auto built = Index::Build(dataset::UniformVectors(60, 8, 405), L2(), options);
  ASSERT_TRUE(built.ok());

  SnapshotStore store(dir);
  ASSERT_TRUE(store.SaveFlat(built.value()).ok());
  auto flat = store.OpenFlat(L2());
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  {
    const Index index = std::move(flat).ValueOrDie().index;
    ASSERT_TRUE(index.flat_serving());
    EXPECT_EQ(store.SaveFlat(index).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(store.SaveSharded(index, VectorCodec()).status().code(),
              StatusCode::kInvalidArgument);
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Workloads, FlatEquivalenceTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Clustered" : "Uniform";
                         });

}  // namespace
}  // namespace mvp::snapshot

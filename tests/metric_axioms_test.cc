// Property tests: every bundled metric satisfies the four metric-space
// axioms of §2 on randomized data. The triangle inequality is the single
// property all index correctness rests on (the paper's Appendix proof uses
// nothing else), so these tests are the foundation of the suite.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "metric/axioms.h"
#include "dataset/image.h"
#include "dataset/image_gen.h"
#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"

namespace mvp {
namespace {

/// Checks all four axioms over every pair/triple of `objects`.
template <typename Object, typename Metric>
void CheckAxioms(const std::vector<Object>& objects, const Metric& d,
                 double tolerance = 1e-9) {
  const std::size_t n = objects.size();
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      dist[i][j] = d(objects[i], objects[j]);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    // iii) d(x,x) = 0
    EXPECT_EQ(dist[i][i], 0.0) << "identity violated at " << i;
    for (std::size_t j = 0; j < n; ++j) {
      // i) symmetry, ii) non-negativity
      EXPECT_GE(dist[i][j], 0.0);
      EXPECT_NEAR(dist[i][j], dist[j][i], tolerance)
          << "symmetry violated at (" << i << "," << j << ")";
      // iv) triangle inequality through every witness z
      for (std::size_t z = 0; z < n; ++z) {
        EXPECT_LE(dist[i][j], dist[i][z] + dist[z][j] + tolerance)
            << "triangle violated at (" << i << "," << j << "," << z << ")";
      }
    }
  }
}

std::vector<metric::Vector> RandomVectors(std::size_t n, std::size_t dim,
                                          std::uint64_t seed) {
  return dataset::UniformVectors(n, dim, seed);
}

TEST(MetricAxiomsTest, L1OnRandomVectors) {
  CheckAxioms(RandomVectors(14, 8, 1), metric::L1());
}

TEST(MetricAxiomsTest, L2OnRandomVectors) {
  CheckAxioms(RandomVectors(14, 8, 2), metric::L2());
}

TEST(MetricAxiomsTest, LInfOnRandomVectors) {
  CheckAxioms(RandomVectors(14, 8, 3), metric::LInf());
}

TEST(MetricAxiomsTest, Lp3OnRandomVectors) {
  CheckAxioms(RandomVectors(12, 6, 4), metric::Lp(3.0));
}

TEST(MetricAxiomsTest, Lp1_5OnRandomVectors) {
  CheckAxioms(RandomVectors(12, 6, 5), metric::Lp(1.5));
}

TEST(MetricAxiomsTest, WeightedLpOnRandomVectors) {
  Rng rng(6);
  metric::Vector weights(6);
  for (auto& w : weights) w = rng.Uniform(0.0, 3.0);
  CheckAxioms(RandomVectors(12, 6, 7), metric::WeightedLp(2.0, weights));
}

TEST(MetricAxiomsTest, L2OnClusteredVectors) {
  dataset::ClusterParams params;
  params.count = 14;
  params.dim = 8;
  params.cluster_size = 5;
  CheckAxioms(dataset::ClusteredVectors(params, 8), metric::L2());
}

TEST(MetricAxiomsTest, EditDistanceOnWords) {
  CheckAxioms(dataset::SyntheticWords(14, 9), metric::Levenshtein());
}

TEST(MetricAxiomsTest, HammingOnFixedLengthStrings) {
  // Hamming requires equal lengths: build same-length random strings.
  Rng rng(10);
  std::vector<std::string> strings;
  for (int i = 0; i < 14; ++i) {
    std::string s(9, 'a');
    for (auto& c : s) c = static_cast<char>('a' + rng.NextIndex(4));
    strings.push_back(s);
  }
  CheckAxioms(strings, metric::Hamming());
}

TEST(MetricAxiomsTest, ImageL1OnPhantoms) {
  dataset::MriParams params;
  params.count = 10;
  params.subjects = 4;
  params.width = params.height = 16;
  CheckAxioms(dataset::MriPhantoms(params, 11), dataset::ImageL1());
}

TEST(MetricAxiomsTest, ImageL2OnPhantoms) {
  dataset::MriParams params;
  params.count = 10;
  params.subjects = 4;
  params.width = params.height = 16;
  CheckAxioms(dataset::MriPhantoms(params, 12), dataset::ImageL2(), 1e-6);
}

// --- the public CheckMetricAxioms utility (metric/axioms.h) ---

TEST(CheckMetricAxiomsTest, AcceptsRealMetrics) {
  EXPECT_TRUE(
      metric::CheckMetricAxioms(RandomVectors(15, 6, 31), metric::L2()).ok());
  EXPECT_TRUE(metric::CheckMetricAxioms(dataset::SyntheticWords(15, 32),
                                        metric::Levenshtein())
                  .ok());
}

TEST(CheckMetricAxiomsTest, RejectsSquaredL2) {
  // Squared Euclidean distance violates the triangle inequality — the
  // classic trap this utility exists to catch.
  struct SquaredL2 {
    double operator()(const metric::Vector& a, const metric::Vector& b) const {
      const double d = metric::L2()(a, b);
      return d * d;
    }
  };
  const auto st =
      metric::CheckMetricAxioms(RandomVectors(15, 6, 33), SquaredL2());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("triangle"), std::string::npos);
}

TEST(CheckMetricAxiomsTest, RejectsAsymmetry) {
  struct Asymmetric {
    double operator()(const metric::Vector& a, const metric::Vector& b) const {
      return a[0] < b[0] ? metric::L2()(a, b) : 2.0 * metric::L2()(a, b);
    }
  };
  const auto st =
      metric::CheckMetricAxioms(RandomVectors(10, 3, 34), Asymmetric());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("symmetry"), std::string::npos);
}

TEST(CheckMetricAxiomsTest, RejectsNonZeroSelfDistance) {
  struct Shifted {
    double operator()(const metric::Vector& a, const metric::Vector& b) const {
      return metric::L2()(a, b) + 1.0;
    }
  };
  const auto st =
      metric::CheckMetricAxioms(RandomVectors(5, 3, 35), Shifted());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("identity"), std::string::npos);
}

}  // namespace
}  // namespace mvp

#include "snapshot/snapshot_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/codec.h"
#include "dataset/vector_gen.h"
#include "dynamic/mvp_forest.h"
#include "metric/lp.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"

namespace mvp::snapshot {
namespace {

using metric::L2;
using metric::Vector;
using Index = serve::ShardedMvpIndex<Vector, L2>;
using Forest = dynamic::MvpForest<Vector, L2>;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/snap_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

Index BuildIndex(std::size_t n, std::size_t shards, std::uint64_t seed) {
  Index::Options options;
  options.num_shards = shards;
  options.tree.order = 3;
  options.tree.leaf_capacity = 8;
  options.tree.num_path_distances = 4;
  options.tree.seed = seed;
  auto built = Index::Build(dataset::UniformVectors(n, 6, 11), L2(), options);
  EXPECT_TRUE(built.ok());
  return std::move(built).ValueOrDie();
}

void ExpectIdenticalResults(const Index& a, const Index& b) {
  const auto queries = dataset::UniformQueryVectors(8, 6, 29);
  for (const auto& q : queries) {
    for (const double r : {0.2, 0.6, 1.1}) {
      const auto ea = a.RangeSearch(q, r);
      const auto eb = b.RangeSearch(q, r);
      ASSERT_EQ(ea.size(), eb.size());
      for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].id, eb[i].id);
        EXPECT_EQ(ea[i].distance, eb[i].distance);  // bit-identical
      }
    }
    const auto ka = a.KnnSearch(q, 9);
    const auto kb = b.KnnSearch(q, 9);
    ASSERT_EQ(ka.size(), kb.size());
    for (std::size_t i = 0; i < ka.size(); ++i) {
      EXPECT_EQ(ka[i].id, kb[i].id);
      EXPECT_EQ(ka[i].distance, kb[i].distance);
    }
  }
}

TEST_F(SnapshotTest, ShardedRoundTripBitIdentical) {
  const Index index = BuildIndex(400, 4, 7);
  SnapshotStore store(dir_);
  auto gen = store.SaveSharded(index, VectorCodec());
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  EXPECT_EQ(gen.value(), 1u);

  auto loaded = store.LoadSharded<Vector>(L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().generation, 1u);
  EXPECT_EQ(loaded.value().index.size(), index.size());
  EXPECT_EQ(loaded.value().index.num_shards(), index.num_shards());
  EXPECT_EQ(loaded.value().index.build_params(), index.build_params());
  EXPECT_EQ(loaded.value().manifest.object_count, index.size());
  ExpectIdenticalResults(index, loaded.value().index);
}

TEST_F(SnapshotTest, ShardedRoundTripParallelLoadIdentical) {
  const Index index = BuildIndex(300, 5, 3);
  SnapshotStore store(dir_);
  ASSERT_TRUE(store.SaveSharded(index, VectorCodec()).ok());
  serve::ThreadPool pool(3);
  auto loaded = store.LoadSharded<Vector>(L2(), VectorCodec(), &pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectIdenticalResults(index, loaded.value().index);
}

TEST_F(SnapshotTest, SingleShardAndEmptyDatasetRoundTrip) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{17}}) {
    const Index index = BuildIndex(n, 1, 5);
    SnapshotStore store(dir_ + "/n" + std::to_string(n));
    std::filesystem::create_directories(store.dir());
    ASSERT_TRUE(store.SaveSharded(index, VectorCodec()).ok());
    auto loaded = store.LoadSharded<Vector>(L2(), VectorCodec());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded.value().index.size(), n);
    ExpectIdenticalResults(index, loaded.value().index);
  }
}

TEST_F(SnapshotTest, ForestRoundTripBitIdentical) {
  Forest forest{L2()};
  const auto data = dataset::UniformVectors(250, 6, 13);
  std::vector<std::size_t> ids;
  for (const auto& v : data) ids.push_back(forest.Insert(v));
  for (std::size_t i = 0; i < ids.size(); i += 7) {
    ASSERT_TRUE(forest.Erase(ids[i]).ok());
  }

  SnapshotStore store(dir_);
  auto gen = store.SaveForest(forest, VectorCodec());
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();

  auto loaded = store.LoadForest<Vector>(L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().forest.size(), forest.size());
  EXPECT_EQ(loaded.value().forest.tombstone_count(), forest.tombstone_count());

  const auto queries = dataset::UniformQueryVectors(6, 6, 31);
  for (const auto& q : queries) {
    const auto ea = forest.RangeSearch(q, 0.8);
    const auto eb = loaded.value().forest.RangeSearch(q, 0.8);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].id, eb[i].id);
      EXPECT_EQ(ea[i].distance, eb[i].distance);
    }
    const auto ka = forest.KnnSearch(q, 5);
    const auto kb = loaded.value().forest.KnnSearch(q, 5);
    ASSERT_EQ(ka.size(), kb.size());
    for (std::size_t i = 0; i < ka.size(); ++i) {
      EXPECT_EQ(ka[i].id, kb[i].id);
    }
  }

  // A loaded forest must keep working as a dynamic index.
  auto& reloaded = loaded.value().forest;
  const std::size_t before = reloaded.size();
  reloaded.Insert(data[0]);
  EXPECT_EQ(reloaded.size(), before + 1);
}

TEST_F(SnapshotTest, GenerationsAdvanceAndOldOnesSurvive) {
  SnapshotStore store(dir_);
  const Index first = BuildIndex(100, 2, 1);
  const Index second = BuildIndex(200, 3, 2);
  ASSERT_TRUE(store.SaveSharded(first, VectorCodec()).ok());
  auto gen2 = store.SaveSharded(second, VectorCodec());
  ASSERT_TRUE(gen2.ok());
  EXPECT_EQ(gen2.value(), 2u);
  EXPECT_EQ(store.CurrentGeneration().value(), 2u);
  EXPECT_EQ(store.ListGenerations().size(), 2u);

  auto loaded = store.LoadSharded<Vector>(L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().index.size(), 200u);

  EXPECT_EQ(store.PruneStaleGenerations(), 1u);
  EXPECT_EQ(store.ListGenerations(), std::vector<std::uint64_t>{2});
  ASSERT_TRUE(store.LoadSharded<Vector>(L2(), VectorCodec()).ok());
}

TEST_F(SnapshotTest, EmptyStoreReportsNotFound) {
  SnapshotStore store(dir_);
  EXPECT_EQ(store.CurrentGeneration().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.LoadSharded<Vector>(L2(), VectorCodec()).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SnapshotTest, InterruptedSaveLeavesPriorGenerationLoadable) {
  SnapshotStore store(dir_);
  const Index index = BuildIndex(150, 3, 9);
  ASSERT_TRUE(store.SaveSharded(index, VectorCodec()).ok());

  // Simulate a crash mid-save of generation 2: the generation directory and
  // even a stray CURRENT.tmp exist, but the CURRENT rename never happened.
  const std::string gen2 = store.GenerationDir(2);
  std::filesystem::create_directories(gen2);
  const std::vector<std::uint8_t> junk = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_TRUE(WriteFile(gen2 + "/" + SnapshotStore::kContainerFile, junk).ok());
  ASSERT_TRUE(
      WriteFile(dir_ + "/" + std::string(SnapshotStore::kCurrentFile) + ".tmp",
                junk)
          .ok());

  EXPECT_EQ(store.CurrentGeneration().value(), 1u);
  auto loaded = store.LoadSharded<Vector>(L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().generation, 1u);
  ExpectIdenticalResults(index, loaded.value().index);

  // The next save reclaims the orphaned generation number cleanly.
  auto gen = store.SaveSharded(index, VectorCodec());
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen.value(), 2u);
  ASSERT_TRUE(store.LoadSharded<Vector>(L2(), VectorCodec()).ok());
}

TEST_F(SnapshotTest, KindMismatchRejected) {
  SnapshotStore store(dir_);
  const Index index = BuildIndex(60, 2, 4);
  ASSERT_TRUE(store.SaveSharded(index, VectorCodec()).ok());
  auto as_forest = store.LoadForest<Vector>(L2(), VectorCodec());
  EXPECT_EQ(as_forest.status().code(), StatusCode::kCorruption);

  Forest forest{L2()};
  forest.Insert({1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(store.SaveForest(forest, VectorCodec()).ok());
  auto as_sharded = store.LoadSharded<Vector>(L2(), VectorCodec());
  EXPECT_EQ(as_sharded.status().code(), StatusCode::kCorruption);
}

TEST_F(SnapshotTest, ManifestRecordsBuildParams) {
  SnapshotStore store(dir_);
  Index::Options options;
  options.num_shards = 3;
  options.tree.order = 4;
  options.tree.leaf_capacity = 12;
  options.tree.num_path_distances = 6;
  options.tree.seed = 42;
  options.tree.store_exact_bounds = true;
  auto built =
      Index::Build(dataset::UniformVectors(120, 6, 15), L2(), options);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(store.SaveSharded(built.value(), VectorCodec()).ok());

  auto loaded = store.LoadSharded<Vector>(L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SnapshotManifest& m = loaded.value().manifest;
  EXPECT_EQ(m.index_kind, IndexKind::kShardedMvpIndex);
  EXPECT_EQ(m.num_shards, 3u);
  EXPECT_EQ(m.order, 4);
  EXPECT_EQ(m.leaf_capacity, 12);
  EXPECT_EQ(m.num_path_distances, 6);
  EXPECT_EQ(m.seed, 42u);
  EXPECT_EQ(m.store_exact_bounds, 1u);
  EXPECT_EQ(m.num_chunks, 3u);
  EXPECT_EQ(loaded.value().index.build_params(), built.value().build_params());
}

TEST_F(SnapshotTest, ForestLoadAppliesManifestTreeParams) {
  SnapshotStore store(dir_);
  Forest::Options options;
  options.tree.order = 4;
  options.tree.leaf_capacity = 10;
  options.tree.seed = 77;
  Forest forest{L2(), options};
  for (const auto& v : dataset::UniformVectors(90, 6, 21)) forest.Insert(v);
  ASSERT_TRUE(store.SaveForest(forest, VectorCodec()).ok());

  // Load with default options: the manifest's tree params must win.
  auto loaded = store.LoadForest<Vector>(L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().forest.options().tree.order, 4);
  EXPECT_EQ(loaded.value().forest.options().tree.leaf_capacity, 10);
  EXPECT_EQ(loaded.value().forest.options().tree.seed, 77u);
}

}  // namespace
}  // namespace mvp::snapshot

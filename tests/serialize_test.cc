#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace mvp {
namespace {

TEST(SerializeTest, RoundTripPrimitives) {
  BinaryWriter w;
  w.Write<std::uint8_t>(7);
  w.Write<std::int32_t>(-42);
  w.Write<std::uint64_t>(1ULL << 60);
  w.Write<double>(3.25);

  BinaryReader r(w.buffer());
  std::uint8_t a = 0;
  std::int32_t b = 0;
  std::uint64_t c = 0;
  double d = 0;
  ASSERT_TRUE(r.Read(&a).ok());
  ASSERT_TRUE(r.Read(&b).ok());
  ASSERT_TRUE(r.Read(&c).ok());
  ASSERT_TRUE(r.Read(&d).ok());
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, -42);
  EXPECT_EQ(c, 1ULL << 60);
  EXPECT_EQ(d, 3.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, RoundTripStringAndVector) {
  BinaryWriter w;
  w.WriteString("hello metric spaces");
  w.WriteVector(std::vector<double>{1.5, -2.5, 0.0});
  w.WriteString("");

  BinaryReader r(w.buffer());
  std::string s;
  std::vector<double> v;
  std::string empty;
  ASSERT_TRUE(r.ReadString(&s).ok());
  ASSERT_TRUE(r.ReadVector(&v).ok());
  ASSERT_TRUE(r.ReadString(&empty).ok());
  EXPECT_EQ(s, "hello metric spaces");
  EXPECT_EQ(v, (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_TRUE(empty.empty());
}

TEST(SerializeTest, TruncatedFixedReadIsCorruption) {
  BinaryWriter w;
  w.Write<std::uint8_t>(1);
  BinaryReader r(w.buffer());
  std::uint64_t big = 0;
  Status st = r.Read(&big);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(SerializeTest, OversizedStringLengthIsCorruption) {
  BinaryWriter w;
  w.Write<std::uint64_t>(1000);  // claims 1000 bytes, provides none
  BinaryReader r(w.buffer());
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kCorruption);
}

TEST(SerializeTest, OversizedVectorLengthIsCorruption) {
  BinaryWriter w;
  w.Write<std::uint64_t>(1ULL << 40);  // absurd element count
  BinaryReader r(w.buffer());
  std::vector<double> v;
  EXPECT_EQ(r.ReadVector(&v).code(), StatusCode::kCorruption);
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mvp_serialize_test.bin";
  std::vector<std::uint8_t> bytes{0, 1, 2, 253, 254, 255};
  ASSERT_TRUE(WriteFile(path, bytes).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), bytes);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIOError) {
  auto read = ReadFile("/nonexistent/dir/file.bin");
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(SerializeTest, EmptyFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mvp_empty_test.bin";
  ASSERT_TRUE(WriteFile(path, {}).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, AdversarialLengthPrefixFailsBeforeAllocation) {
  // A length prefix near SIZE_MAX must be rejected by arithmetic on the
  // remaining-byte count, not by attempting a resize (which would throw
  // bad_alloc or OOM the process). The division-form check also cannot
  // overflow the way `count * sizeof(T)` would.
  for (const std::uint64_t evil :
       {~std::uint64_t{0}, ~std::uint64_t{0} - 7, std::uint64_t{1} << 63,
        (std::uint64_t{1} << 61) + 1}) {
    BinaryWriter w;
    w.Write<std::uint64_t>(evil);
    w.Write<double>(1.0);  // some trailing bytes, fewer than claimed
    BinaryReader r(w.buffer());
    std::vector<double> v;
    EXPECT_EQ(r.ReadVector(&v).code(), StatusCode::kCorruption) << evil;
    EXPECT_TRUE(v.empty());

    BinaryReader rs(w.buffer());
    std::string s;
    EXPECT_EQ(rs.ReadString(&s).code(), StatusCode::kCorruption) << evil;
  }
}

TEST(SerializeTest, ReadLengthPrefixValidatesAgainstRemaining) {
  BinaryWriter w;
  w.Write<std::uint64_t>(3);
  w.Write<std::uint32_t>(1);
  w.Write<std::uint32_t>(2);
  w.Write<std::uint32_t>(3);
  BinaryReader r(w.buffer());
  std::uint64_t count = 0;
  ASSERT_TRUE(r.ReadLengthPrefix(sizeof(std::uint32_t), &count).ok());
  EXPECT_EQ(count, 3u);

  // Same bytes read as u64 elements: 3 * 8 > 12 remaining.
  BinaryReader r2(w.buffer());
  EXPECT_EQ(r2.ReadLengthPrefix(sizeof(std::uint64_t), &count).code(),
            StatusCode::kCorruption);
}

TEST(SerializeTest, AtomicFileWriteRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mvp_atomic_test.bin";
  const std::vector<std::uint8_t> bytes{9, 8, 7, 6};
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), bytes);
  // The temp file must not survive a successful write.
  EXPECT_EQ(ReadFile(path + ".tmp").status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(SerializeTest, AtomicFileWriteReplacesExisting) {
  const std::string path = ::testing::TempDir() + "/mvp_atomic_replace.bin";
  ASSERT_TRUE(WriteFileAtomic(path, {1, 1, 1}).ok());
  ASSERT_TRUE(WriteFileAtomic(path, {2, 2}).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), (std::vector<std::uint8_t>{2, 2}));
  std::remove(path.c_str());
}

TEST(SerializeTest, AtomicFileWriteToMissingDirIsIOError) {
  EXPECT_EQ(WriteFileAtomic("/nonexistent/dir/f.bin", {1}).code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace mvp

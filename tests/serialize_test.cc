#include "common/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace mvp {
namespace {

TEST(SerializeTest, RoundTripPrimitives) {
  BinaryWriter w;
  w.Write<std::uint8_t>(7);
  w.Write<std::int32_t>(-42);
  w.Write<std::uint64_t>(1ULL << 60);
  w.Write<double>(3.25);

  BinaryReader r(w.buffer());
  std::uint8_t a = 0;
  std::int32_t b = 0;
  std::uint64_t c = 0;
  double d = 0;
  ASSERT_TRUE(r.Read(&a).ok());
  ASSERT_TRUE(r.Read(&b).ok());
  ASSERT_TRUE(r.Read(&c).ok());
  ASSERT_TRUE(r.Read(&d).ok());
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, -42);
  EXPECT_EQ(c, 1ULL << 60);
  EXPECT_EQ(d, 3.25);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, RoundTripStringAndVector) {
  BinaryWriter w;
  w.WriteString("hello metric spaces");
  w.WriteVector(std::vector<double>{1.5, -2.5, 0.0});
  w.WriteString("");

  BinaryReader r(w.buffer());
  std::string s;
  std::vector<double> v;
  std::string empty;
  ASSERT_TRUE(r.ReadString(&s).ok());
  ASSERT_TRUE(r.ReadVector(&v).ok());
  ASSERT_TRUE(r.ReadString(&empty).ok());
  EXPECT_EQ(s, "hello metric spaces");
  EXPECT_EQ(v, (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_TRUE(empty.empty());
}

TEST(SerializeTest, TruncatedFixedReadIsCorruption) {
  BinaryWriter w;
  w.Write<std::uint8_t>(1);
  BinaryReader r(w.buffer());
  std::uint64_t big = 0;
  Status st = r.Read(&big);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(SerializeTest, OversizedStringLengthIsCorruption) {
  BinaryWriter w;
  w.Write<std::uint64_t>(1000);  // claims 1000 bytes, provides none
  BinaryReader r(w.buffer());
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kCorruption);
}

TEST(SerializeTest, OversizedVectorLengthIsCorruption) {
  BinaryWriter w;
  w.Write<std::uint64_t>(1ULL << 40);  // absurd element count
  BinaryReader r(w.buffer());
  std::vector<double> v;
  EXPECT_EQ(r.ReadVector(&v).code(), StatusCode::kCorruption);
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mvp_serialize_test.bin";
  std::vector<std::uint8_t> bytes{0, 1, 2, 253, 254, 255};
  ASSERT_TRUE(WriteFile(path, bytes).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), bytes);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIOError) {
  auto read = ReadFile("/nonexistent/dir/file.bin");
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(SerializeTest, EmptyFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mvp_empty_test.bin";
  ASSERT_TRUE(WriteFile(path, {}).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mvp

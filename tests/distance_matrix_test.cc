#include "baselines/distance_matrix.h"

#include <gtest/gtest.h>

#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/counting.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"
#include "scan/linear_scan.h"

namespace mvp::baselines {
namespace {

using metric::L2;
using metric::Vector;
using VecDm = DistanceMatrixIndex<Vector, L2>;

TEST(DistanceMatrixTest, RejectsOversizedDomains) {
  VecDm::Options options;
  options.max_objects = 10;
  auto built =
      VecDm::Build(dataset::UniformVectors(11, 3, 1), L2(), options);
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(DistanceMatrixTest, ConstructionCostIsExactlyAllPairs) {
  const auto data = dataset::UniformVectors(60, 4, 2);
  metric::DistanceCounter counter;
  auto counted = metric::MakeCounting(L2(), counter);
  auto built = DistanceMatrixIndex<Vector, metric::CountingMetric<L2>>::Build(
      data, counted, {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(counter.count(), 60u * 59u / 2u);
  EXPECT_EQ(built.value().Stats().construction_distance_computations,
            counter.count());
}

TEST(DistanceMatrixTest, EmptyAndSingle) {
  auto empty = VecDm::Build({}, L2(), {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().RangeSearch({1, 2}, 5.0).empty());
  EXPECT_TRUE(empty.value().KnnSearch({1, 2}, 3).empty());

  auto one = VecDm::Build({{1, 1}}, L2(), {});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().RangeSearch({1, 1}, 0.0).size(), 1u);
  EXPECT_EQ(one.value().KnnSearch({5, 5}, 2).size(), 1u);
}

TEST(DistanceMatrixTest, RangeSearchMatchesLinearScan) {
  const auto data = dataset::UniformVectors(300, 6, 3);
  auto built = VecDm::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(10, 6, 5);
  for (const auto& q : queries) {
    for (const double r : {0.0, 0.3, 0.8, 2.0}) {
      const auto got = built.value().RangeSearch(q, r);
      const auto expected = reference.RangeSearch(q, r);
      ASSERT_EQ(got.size(), expected.size()) << "r=" << r;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
    }
  }
}

TEST(DistanceMatrixTest, KnnMatchesLinearScan) {
  const auto data = dataset::UniformVectors(250, 5, 7);
  auto built = VecDm::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  scan::LinearScan<Vector, L2> reference(data, L2());
  const auto queries = dataset::UniformQueryVectors(8, 5, 9);
  for (const auto& q : queries) {
    for (const std::size_t k : {1u, 5u, 20u}) {
      const auto got = built.value().KnnSearch(q, k);
      const auto expected = reference.KnnSearch(q, k);
      ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(DistanceMatrixTest, UsesFarFewerDistanceComputationsThanTrees) {
  // [SW90]'s selling point, confirmed: on small domains the table approach
  // needs dramatically fewer query-time distance computations.
  const auto data = dataset::UniformVectors(2000, 20, 11);
  auto built = VecDm::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  SearchStats stats;
  built.value().RangeSearch(dataset::UniformQueryVectors(1, 20, 13)[0], 0.3,
                            &stats);
  EXPECT_LT(stats.distance_computations, 200u);  // vs ~800+ for trees
}

TEST(DistanceMatrixTest, WorksWithEditDistance) {
  auto words = dataset::SyntheticWords(200, 15);
  using WordDm = DistanceMatrixIndex<std::string, metric::Levenshtein>;
  auto built = WordDm::Build(words, metric::Levenshtein(), {});
  ASSERT_TRUE(built.ok());
  scan::LinearScan<std::string, metric::Levenshtein> reference(
      words, metric::Levenshtein());
  const std::string q = dataset::MutateWord(words[50], 1, 3);
  for (const double r : {1.0, 2.0, 3.0}) {
    const auto got = built.value().RangeSearch(q, r);
    const auto expected = reference.RangeSearch(q, r);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id);
    }
  }
}

TEST(DistanceMatrixTest, DuplicatePoints) {
  std::vector<Vector> data(40, Vector{2, 2});
  auto built = VecDm::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RangeSearch({2, 2}, 0.0).size(), 40u);
  EXPECT_EQ(built.value().KnnSearch({0, 0}, 5).size(), 5u);
}

}  // namespace
}  // namespace mvp::baselines

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "dataset/image_gen.h"
#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"

namespace mvp::dataset {
namespace {

TEST(UniformVectorsTest, ShapeAndRange) {
  const auto data = UniformVectors(200, 20, 42);
  ASSERT_EQ(data.size(), 200u);
  for (const auto& v : data) {
    ASSERT_EQ(v.size(), 20u);
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(UniformVectorsTest, DeterministicInSeed) {
  EXPECT_EQ(UniformVectors(50, 5, 7), UniformVectors(50, 5, 7));
  EXPECT_NE(UniformVectors(50, 5, 7), UniformVectors(50, 5, 8));
}

TEST(UniformVectorsTest, QueriesDifferFromData) {
  const auto data = UniformVectors(20, 5, 7);
  const auto queries = UniformQueryVectors(20, 5, 7);
  EXPECT_NE(data, queries);
}

TEST(UniformVectorsTest, PairwiseDistancesConcentrateForHighDim) {
  // §5.1.A: uniform high-dimensional vectors are "mostly far away from each
  // other", distances concentrating around ~1.75 for dim=20 in [1, 2.5].
  const auto data = UniformVectors(300, 20, 1);
  metric::L2 d;
  double sum = 0;
  int count = 0;
  for (std::size_t i = 0; i < data.size(); i += 3) {
    for (std::size_t j = i + 1; j < data.size(); j += 7) {
      sum += d(data[i], data[j]);
      ++count;
    }
  }
  const double mean = sum / count;
  EXPECT_GT(mean, 1.5);
  EXPECT_LT(mean, 2.0);
}

TEST(ClusteredVectorsTest, ShapeAndDeterminism) {
  ClusterParams params;
  params.count = 2500;
  params.dim = 10;
  params.cluster_size = 500;
  const auto data = ClusteredVectors(params, 3);
  ASSERT_EQ(data.size(), 2500u);
  for (const auto& v : data) ASSERT_EQ(v.size(), 10u);
  EXPECT_EQ(data, ClusteredVectors(params, 3));
}

TEST(ClusteredVectorsTest, PartialFinalCluster) {
  ClusterParams params;
  params.count = 1234;
  params.dim = 4;
  params.cluster_size = 500;
  EXPECT_EQ(ClusteredVectors(params, 5).size(), 1234u);
}

TEST(ClusteredVectorsTest, WiderDistanceSpreadThanUniform) {
  // §5.1.A: the clustered set "has a different distance distribution where
  // the possible pairwise distances have a wider range" — in particular many
  // small distances exist (same-cluster pairs).
  ClusterParams params;
  params.count = 1000;
  params.dim = 20;
  params.cluster_size = 200;
  params.epsilon = 0.15;
  const auto clustered = ClusteredVectors(params, 9);
  const auto uniform = UniformVectors(1000, 20, 9);
  metric::L2 d;
  auto min_nonzero_distance = [&](const auto& data) {
    double best = 1e300;
    for (std::size_t i = 0; i < 200; ++i) {
      for (std::size_t j = i + 1; j < 200; ++j) {
        best = std::min(best, d(data[i], data[j]));
      }
    }
    return best;
  };
  // Within a cluster, consecutive points differ by one perturbation step:
  // much closer than any uniform pair.
  EXPECT_LT(min_nonzero_distance(clustered),
            0.5 * min_nonzero_distance(uniform));
}

TEST(ClusteredVectorsTest, PointsEscapeTheHypercube) {
  // The paper: "many are outside of the hypercube of side 1" — accumulated
  // perturbations must not be clamped.
  ClusterParams params;
  params.count = 3000;
  params.dim = 10;
  params.cluster_size = 1000;
  const auto data = ClusteredVectors(params, 11);
  bool any_outside = false;
  for (const auto& v : data) {
    for (double x : v) {
      if (x < 0.0 || x > 1.0) any_outside = true;
    }
  }
  EXPECT_TRUE(any_outside);
}

TEST(MriPhantomsTest, ShapeCountDeterminism) {
  MriParams params;
  params.count = 37;
  params.subjects = 5;
  params.width = params.height = 32;
  const auto scans = MriPhantoms(params, 21);
  ASSERT_EQ(scans.size(), 37u);
  for (const auto& img : scans) {
    EXPECT_EQ(img.width, 32);
    EXPECT_EQ(img.height, 32);
    ASSERT_EQ(img.pixels.size(), 32u * 32u);
  }
  EXPECT_EQ(scans, MriPhantoms(params, 21));
}

TEST(MriPhantomsTest, UsesFullIntensityRange) {
  MriParams params;
  params.count = 8;
  params.subjects = 4;
  params.width = params.height = 32;
  const auto scans = MriPhantoms(params, 22);
  std::uint8_t lo = 255, hi = 0;
  for (const auto& img : scans) {
    for (std::uint8_t px : img.pixels) {
      lo = std::min(lo, px);
      hi = std::max(hi, px);
    }
  }
  EXPECT_LT(lo, 30);   // dark background exists
  EXPECT_GT(hi, 150);  // bright skull/lesions exist
}

TEST(MriPhantomsTest, SameSubjectCloserThanDifferentSubjects) {
  // The property that gives the paper's bimodal Figures 6-7.
  MriParams params;
  params.count = 40;
  params.subjects = 10;
  params.width = params.height = 32;
  const auto scans = MriPhantoms(params, 23);
  ImageL1 d;
  // Round-robin layout: scan i is subject i % subjects.
  double same_sum = 0, diff_sum = 0;
  int same_n = 0, diff_n = 0;
  for (std::size_t i = 0; i < scans.size(); ++i) {
    for (std::size_t j = i + 1; j < scans.size(); ++j) {
      const double dist = d(scans[i], scans[j]);
      if (i % params.subjects == j % params.subjects) {
        same_sum += dist;
        ++same_n;
      } else {
        diff_sum += dist;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(diff_n, 0);
  EXPECT_LT(same_sum / same_n, 0.5 * (diff_sum / diff_n));
}

TEST(MriPhantomsTest, ExtraScanIsNearItsSubject) {
  MriParams params;
  params.count = 20;
  params.subjects = 5;
  params.width = params.height = 32;
  const auto scans = MriPhantoms(params, 24);
  const Image query = MriPhantomScan(params, 24, /*subject_index=*/2,
                                     /*variant=*/999);
  ImageL1 d;
  double best_same = 1e300, best_other = 1e300;
  for (std::size_t i = 0; i < scans.size(); ++i) {
    const double dist = d(query, scans[i]);
    if (i % params.subjects == 2) {
      best_same = std::min(best_same, dist);
    } else {
      best_other = std::min(best_other, dist);
    }
  }
  EXPECT_LT(best_same, best_other);
}

TEST(SyntheticWordsTest, CountDistinctDeterministic) {
  const auto words = SyntheticWords(500, 31);
  ASSERT_EQ(words.size(), 500u);
  std::set<std::string> unique(words.begin(), words.end());
  EXPECT_EQ(unique.size(), 500u);
  EXPECT_EQ(words, SyntheticWords(500, 31));
  for (const auto& w : words) {
    EXPECT_GE(w.size(), 2u);
    EXPECT_LE(w.size(), 14u);
  }
}

TEST(MutateWordTest, EditDistanceBoundedByEdits) {
  const auto words = SyntheticWords(50, 33);
  for (const auto& w : words) {
    for (unsigned edits = 0; edits <= 3; ++edits) {
      const std::string mutated = MutateWord(w, edits, 77);
      EXPECT_LE(metric::EditDistance(w, mutated), edits);
    }
  }
}

TEST(MutateWordTest, ZeroEditsIsIdentity) {
  EXPECT_EQ(MutateWord("breakfast", 0, 1), "breakfast");
}

}  // namespace
}  // namespace mvp::dataset

#include "dataset/histogram.h"

#include <gtest/gtest.h>

#include <sstream>

#include "dataset/vector_gen.h"
#include "metric/counting.h"
#include "metric/lp.h"

namespace mvp::dataset {
namespace {

TEST(HistogramTest, AllPairsCountsEveryPairOnce) {
  const auto data = UniformVectors(30, 5, 1);
  const auto h = AllPairsHistogram(data, metric::L2(), 0.05);
  EXPECT_EQ(h.total_pairs, 30u * 29u / 2u);
  std::uint64_t sum = 0;
  for (auto c : h.counts) sum += c;
  EXPECT_EQ(sum, h.total_pairs);
  EXPECT_DOUBLE_EQ(h.scale, 1.0);
}

TEST(HistogramTest, AllPairsUsesExactlyNChoose2Distances) {
  const auto data = UniformVectors(25, 4, 2);
  metric::DistanceCounter counter;
  AllPairsHistogram(data, metric::MakeCounting(metric::L2(), counter), 0.05);
  EXPECT_EQ(counter.count(), 25u * 24u / 2u);
}

TEST(HistogramTest, BucketsPartitionTheRange) {
  const std::vector<metric::Vector> data{{0.0}, {0.05}, {0.11}, {0.32}};
  const auto h = AllPairsHistogram(data, metric::L1(), 0.1);
  // Distances: .05 .11 .32 .06 .27 .21 -> buckets 0,1,3,0,2,2
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 2u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_DOUBLE_EQ(h.min_distance, 0.05);
  EXPECT_DOUBLE_EQ(h.max_distance, 0.32);
}

TEST(HistogramTest, MeanAndQuantileAreBucketAccurate) {
  const std::vector<metric::Vector> data{{0.0}, {1.0}};
  const auto h = AllPairsHistogram(data, metric::L1(), 0.01);
  EXPECT_NEAR(h.Mean(), 1.0, 0.011);
  EXPECT_NEAR(h.Quantile(1.0), 1.0, 0.011);
}

TEST(HistogramTest, SampledFallsBackToExactForSmallData) {
  const auto data = UniformVectors(10, 3, 3);
  const auto exact = AllPairsHistogram(data, metric::L2(), 0.05);
  const auto sampled =
      SampledPairsHistogram(data, metric::L2(), 0.05, 100000, 7);
  EXPECT_EQ(sampled.total_pairs, exact.total_pairs);
  EXPECT_EQ(sampled.counts, exact.counts);
}

TEST(HistogramTest, SampledRespectsBudgetAndScales) {
  const auto data = UniformVectors(400, 5, 4);
  metric::DistanceCounter counter;
  const auto h = SampledPairsHistogram(
      data, metric::MakeCounting(metric::L2(), counter), 0.05, 5000, 7);
  EXPECT_EQ(counter.count(), 5000u);
  EXPECT_EQ(h.total_pairs, 5000u);
  EXPECT_NEAR(h.scale, (400.0 * 399.0 / 2.0) / 5000.0, 1e-9);
}

TEST(HistogramTest, SampledApproximatesExactShape) {
  const auto data = UniformVectors(150, 8, 5);
  const auto exact = AllPairsHistogram(data, metric::L2(), 0.1);
  const auto sampled =
      SampledPairsHistogram(data, metric::L2(), 0.1, 4000, 11);
  // Peak buckets should be close (coarse shape agreement).
  const auto peak_exact = static_cast<double>(exact.PeakBucket());
  const auto peak_sampled = static_cast<double>(sampled.PeakBucket());
  EXPECT_NEAR(peak_exact, peak_sampled, 2.0);
  EXPECT_NEAR(exact.Mean(), sampled.Mean(), 0.05);
}

TEST(HistogramTest, QuantileEdgeCases) {
  const std::vector<metric::Vector> data{{0.0}, {1.0}, {2.0}};
  const auto h = AllPairsHistogram(data, metric::L1(), 0.5);
  // Quantile(0) returns the first non-empty bucket's upper edge at most.
  EXPECT_LE(h.Quantile(0.0), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(1.0));
  DistanceHistogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_EQ(empty.Mean(), 0.0);
  EXPECT_EQ(empty.PeakBucket(), 0u);
}

TEST(HistogramTest, ZeroDistancesLandInBucketZero) {
  const std::vector<metric::Vector> data{{1.0}, {1.0}, {1.0}};
  const auto h = AllPairsHistogram(data, metric::L1(), 0.1);
  ASSERT_GE(h.counts.size(), 1u);
  EXPECT_EQ(h.counts[0], 3u);
  EXPECT_EQ(h.min_distance, 0.0);
  EXPECT_EQ(h.max_distance, 0.0);
}

TEST(HistogramTest, PrintProducesRowsAndStats) {
  const auto data = UniformVectors(40, 5, 6);
  const auto h = AllPairsHistogram(data, metric::L2(), 0.01);
  std::ostringstream os;
  PrintHistogram(os, h);
  const std::string out = os.str();
  EXPECT_NE(out.find("pairs=780"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(HistogramTest, PrintHandlesEmpty) {
  DistanceHistogram h;
  std::ostringstream os;
  PrintHistogram(os, h);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(HistogramTest, PrintCoarsensToMaxRows) {
  const auto data = UniformVectors(60, 10, 8);
  const auto h = AllPairsHistogram(data, metric::L2(), 0.001);  // many buckets
  HistogramPrintOptions options;
  options.max_rows = 10;
  std::ostringstream os;
  PrintHistogram(os, h, options);
  int lines = 0;
  for (char c : os.str()) lines += c == '\n' ? 1 : 0;
  EXPECT_LE(lines, 12);  // stats line + <= 10 rows (+ slack)
}

}  // namespace
}  // namespace mvp::dataset

// RetryWithBackoff semantics: attempt counting, retryable-vs-terminal
// classification, the exponential backoff + jitter schedule (observed
// through the injectable sleep seam), and Result<T> pass-through.

#include "fault/retry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "common/status.h"

namespace mvp::fault {
namespace {

using std::chrono::nanoseconds;

RetryOptions NoSleep(int max_attempts) {
  RetryOptions options;
  options.max_attempts = max_attempts;
  options.sleep = [](nanoseconds) {};
  return options;
}

TEST(RetryTest, FirstSuccessReturnsImmediately) {
  int calls = 0;
  const Status status = RetryWithBackoff(NoSleep(5), [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, TransientFailureIsRetriedUntilSuccess) {
  int calls = 0;
  const Status status = RetryWithBackoff(NoSleep(5), [&] {
    ++calls;
    if (calls < 3) return Status::IOError("transient");
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, ExhaustedAttemptsReturnLastFailure) {
  int calls = 0;
  const Status status = RetryWithBackoff(NoSleep(4), [&] {
    ++calls;
    return Status::IOError("still down");
  });
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 4);
}

TEST(RetryTest, CorruptionIsNotRetried) {
  int calls = 0;
  const Status status = RetryWithBackoff(NoSleep(5), [&] {
    ++calls;
    return Status::Corruption("bad checksum");
  });
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);  // a second read of corrupt bytes would not help
}

TEST(RetryTest, SingleAttemptMeansNoRetry) {
  int calls = 0;
  const Status status = RetryWithBackoff(NoSleep(1), [&] {
    ++calls;
    return Status::IOError("transient");
  });
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, CustomRetryablePredicateIsHonored) {
  RetryOptions options = NoSleep(3);
  options.retryable = [](const Status& s) {
    return s.code() == StatusCode::kNotFound;
  };
  int calls = 0;
  const Status status = RetryWithBackoff(options, [&] {
    ++calls;
    return Status::IOError("transient");  // not retryable under the override
  });
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, BackoffGrowsExponentiallyWithinJitterBounds) {
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff = nanoseconds(1000);
  options.backoff_multiplier = 2.0;
  options.max_backoff = std::chrono::seconds(1);
  options.jitter = 0.5;
  std::vector<nanoseconds> slept;
  options.sleep = [&](nanoseconds d) { slept.push_back(d); };

  (void)RetryWithBackoff(options, [] { return Status::IOError("x"); });

  // 4 attempts -> 3 sleeps of nominally 1000, 2000, 4000ns, each scaled by
  // a factor in [1 - jitter, 1] = [0.5, 1].
  ASSERT_EQ(slept.size(), 3u);
  const std::int64_t nominal[] = {1000, 2000, 4000};
  for (std::size_t i = 0; i < slept.size(); ++i) {
    EXPECT_GE(slept[i].count(), nominal[i] / 2) << "sleep " << i;
    EXPECT_LE(slept[i].count(), nominal[i]) << "sleep " << i;
  }
}

TEST(RetryTest, BackoffIsCappedAtMaxBackoff) {
  RetryOptions options;
  options.max_attempts = 6;
  options.initial_backoff = nanoseconds(1000);
  options.backoff_multiplier = 10.0;
  options.max_backoff = nanoseconds(5000);
  options.jitter = 0.0;  // exact schedule
  std::vector<nanoseconds> slept;
  options.sleep = [&](nanoseconds d) { slept.push_back(d); };

  (void)RetryWithBackoff(options, [] { return Status::IOError("x"); });

  ASSERT_EQ(slept.size(), 5u);
  EXPECT_EQ(slept[0].count(), 1000);
  EXPECT_EQ(slept[1].count(), 5000);  // 10000 capped
  EXPECT_EQ(slept[2].count(), 5000);
  EXPECT_EQ(slept[4].count(), 5000);
}

TEST(RetryTest, SameSeedReplaysTheSameSleepSchedule) {
  auto run = [](std::uint64_t seed) {
    RetryOptions options;
    options.max_attempts = 5;
    options.initial_backoff = nanoseconds(1 << 20);
    options.seed = seed;
    std::vector<nanoseconds> slept;
    options.sleep = [&](nanoseconds d) { slept.push_back(d); };
    (void)RetryWithBackoff(options, [] { return Status::IOError("x"); });
    return slept;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(RetryTest, ResultValuesPassThrough) {
  int calls = 0;
  const Result<int> result = RetryWithBackoff(NoSleep(5), [&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::IOError("transient");
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace mvp::fault

// Concurrent read safety: all index structures are immutable after Build,
// so any number of threads may search the same instance simultaneously.
// These tests hammer one tree from several threads and require every
// thread to observe exactly the single-threaded results. (Run them under
// TSAN to verify the absence of data races; here they check functional
// interference.) Note: CountingMetric is NOT thread-safe — use a plain
// metric per the documented contract when sharing an index across threads.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "dynamic/mvp_forest.h"
#include "metric/lp.h"
#include "vptree/vp_tree.h"

namespace mvp {
namespace {

using metric::L2;
using metric::Vector;

TEST(ThreadSafetyTest, ConcurrentMvpTreeSearchesAgree) {
  const auto data = dataset::UniformVectors(3000, 8, 7);
  auto built = core::MvpTree<Vector, L2>::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  const auto& tree = built.value();
  const auto queries = dataset::UniformQueryVectors(24, 8, 11);

  // Single-threaded reference answers.
  std::vector<std::vector<Neighbor>> expected;
  for (const auto& q : queries) expected.push_back(tree.RangeSearch(q, 0.5));

  std::atomic<int> mismatches{0};
  auto worker = [&](std::size_t offset) {
    for (int round = 0; round < 20; ++round) {
      const std::size_t qi = (offset + round) % queries.size();
      const auto got = tree.RangeSearch(queries[qi], 0.5);
      if (got.size() != expected[qi].size()) {
        ++mismatches;
        continue;
      }
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i].id != expected[qi][i].id) {
          ++mismatches;
          break;
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t) threads.emplace_back(worker, t * 3);
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadSafetyTest, ConcurrentMixedQueryKindsAgree) {
  const auto data = dataset::UniformVectors(2000, 6, 13);
  auto built = core::MvpTree<Vector, L2>::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  const auto& tree = built.value();
  const Vector q(6, 0.5);
  const auto knn_expected = tree.KnnSearch(q, 10);
  const auto far_expected = tree.FarthestSearch(q, 10);

  std::atomic<int> mismatches{0};
  auto knn_worker = [&] {
    for (int i = 0; i < 30; ++i) {
      if (tree.KnnSearch(q, 10) != knn_expected) ++mismatches;
    }
  };
  auto far_worker = [&] {
    for (int i = 0; i < 30; ++i) {
      if (tree.FarthestSearch(q, 10) != far_expected) ++mismatches;
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back(knn_worker);
    threads.emplace_back(far_worker);
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadSafetyTest, ConcurrentVpTreeSearchesAgree) {
  const auto data = dataset::UniformVectors(2000, 6, 17);
  auto built = vptree::VpTree<Vector, L2>::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  const auto& tree = built.value();
  const Vector q(6, 0.4);
  const auto expected = tree.RangeSearch(q, 0.6);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        if (tree.RangeSearch(q, 0.6) != expected) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadSafetyTest, ConcurrentForestReadsAgree) {
  // The forest is read-safe between mutations (Insert/Erase require
  // external synchronization, like every container).
  dynamic::MvpForest<Vector, L2> forest{L2(), {}};
  for (const auto& v : dataset::UniformVectors(1000, 5, 19)) forest.Insert(v);
  const Vector q(5, 0.5);
  const auto expected = forest.RangeSearch(q, 0.5);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        if (forest.RangeSearch(q, 0.5) != expected) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace mvp

// Concurrent read safety: all index structures are immutable after Build,
// so any number of threads may search the same instance simultaneously.
// These tests hammer one instance from several threads — the mvp-tree, the
// vp-tree, the MvpForest, and the serving layer's ShardedMvpIndex (serial,
// with a shared ThreadPool, and through the batch executor) — and require
// every thread to observe results bit-identical to the single-threaded
// ones. (Run them under TSAN — the CI tsan job does — to verify the
// absence of data races; here they check functional interference.) Note:
// CountingMetric is NOT thread-safe — share a plain metric, or the
// AtomicCountingMetric flavour, when searching from several threads.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "dynamic/mvp_forest.h"
#include "metric/counting.h"
#include "metric/lp.h"
#include "serve/executor.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"
#include "vptree/vp_tree.h"

namespace mvp {
namespace {

using metric::L2;
using metric::Vector;

TEST(ThreadSafetyTest, ConcurrentMvpTreeSearchesAgree) {
  const auto data = dataset::UniformVectors(3000, 8, 7);
  auto built = core::MvpTree<Vector, L2>::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  const auto& tree = built.value();
  const auto queries = dataset::UniformQueryVectors(24, 8, 11);

  // Single-threaded reference answers.
  std::vector<std::vector<Neighbor>> expected;
  for (const auto& q : queries) expected.push_back(tree.RangeSearch(q, 0.5));

  std::atomic<int> mismatches{0};
  auto worker = [&](std::size_t offset) {
    for (int round = 0; round < 20; ++round) {
      const std::size_t qi = (offset + round) % queries.size();
      const auto got = tree.RangeSearch(queries[qi], 0.5);
      if (got.size() != expected[qi].size()) {
        ++mismatches;
        continue;
      }
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i].id != expected[qi][i].id) {
          ++mismatches;
          break;
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t) threads.emplace_back(worker, t * 3);
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadSafetyTest, ConcurrentMixedQueryKindsAgree) {
  const auto data = dataset::UniformVectors(2000, 6, 13);
  auto built = core::MvpTree<Vector, L2>::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  const auto& tree = built.value();
  const Vector q(6, 0.5);
  const auto knn_expected = tree.KnnSearch(q, 10);
  const auto far_expected = tree.FarthestSearch(q, 10);

  std::atomic<int> mismatches{0};
  auto knn_worker = [&] {
    for (int i = 0; i < 30; ++i) {
      if (tree.KnnSearch(q, 10) != knn_expected) ++mismatches;
    }
  };
  auto far_worker = [&] {
    for (int i = 0; i < 30; ++i) {
      if (tree.FarthestSearch(q, 10) != far_expected) ++mismatches;
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back(knn_worker);
    threads.emplace_back(far_worker);
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadSafetyTest, ConcurrentVpTreeSearchesAgree) {
  const auto data = dataset::UniformVectors(2000, 6, 17);
  auto built = vptree::VpTree<Vector, L2>::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  const auto& tree = built.value();
  const Vector q(6, 0.4);
  const auto expected = tree.RangeSearch(q, 0.6);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        if (tree.RangeSearch(q, 0.6) != expected) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadSafetyTest, ConcurrentForestReadsAgree) {
  // The forest is read-safe between mutations (Insert/Erase require
  // external synchronization, like every container).
  dynamic::MvpForest<Vector, L2> forest{L2(), {}};
  for (const auto& v : dataset::UniformVectors(1000, 5, 19)) forest.Insert(v);
  const Vector q(5, 0.5);
  const auto expected = forest.RangeSearch(q, 0.5);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        if (forest.RangeSearch(q, 0.5) != expected) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadSafetyTest, ConcurrentForestMixedReadsAgree) {
  // Hammer the forest with range and k-NN readers at once, across several
  // distinct query points, after deletions (tombstone filtering included).
  dynamic::MvpForest<Vector, L2> forest{L2(), {}};
  for (const auto& v : dataset::UniformVectors(1500, 6, 23)) forest.Insert(v);
  for (std::size_t id = 0; id < 1500; id += 7) {
    ASSERT_TRUE(forest.Erase(id).ok());
  }
  const auto queries = dataset::UniformQueryVectors(6, 6, 29);
  std::vector<std::vector<Neighbor>> range_expected, knn_expected;
  for (const auto& q : queries) {
    range_expected.push_back(forest.RangeSearch(q, 0.5));
    knn_expected.push_back(forest.KnnSearch(q, 12));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 15; ++i) {
        for (std::size_t qi = 0; qi < queries.size(); ++qi) {
          if (forest.RangeSearch(queries[qi], 0.5) != range_expected[qi]) {
            ++mismatches;
          }
        }
      }
    });
    threads.emplace_back([&] {
      for (int i = 0; i < 15; ++i) {
        for (std::size_t qi = 0; qi < queries.size(); ++qi) {
          if (forest.KnnSearch(queries[qi], 12) != knn_expected[qi]) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadSafetyTest, ConcurrentShardedIndexSearchesAgree) {
  // The sharded index is immutable after Build like the trees it wraps;
  // concurrent readers must observe results bit-identical to both the
  // single-threaded sharded answer and the unsharded reference tree.
  const auto data = dataset::UniformVectors(3000, 8, 37);
  serve::ShardedMvpIndex<Vector, L2>::Options options;
  options.num_shards = 4;
  const auto sharded =
      serve::ShardedMvpIndex<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
  const auto plain =
      core::MvpTree<Vector, L2>::Build(data, L2(), {}).ValueOrDie();
  const auto queries = dataset::UniformQueryVectors(8, 8, 41);
  std::vector<std::vector<Neighbor>> range_expected, knn_expected;
  for (const auto& q : queries) {
    range_expected.push_back(plain.RangeSearch(q, 0.5));
    knn_expected.push_back(plain.KnnSearch(q, 10));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 12; ++round) {
        const std::size_t qi = (t + static_cast<std::size_t>(round)) %
                               queries.size();
        if (sharded.RangeSearch(queries[qi], 0.5) != range_expected[qi]) {
          ++mismatches;
        }
        if (sharded.KnnSearch(queries[qi], 10) != knn_expected[qi]) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadSafetyTest, ConcurrentShardedSearchesSharingOnePool) {
  // Many caller threads fan their queries out over ONE shared pool — the
  // serving configuration — exercising nested task submission and helping.
  const auto data = dataset::UniformVectors(2000, 8, 43);
  serve::ShardedMvpIndex<Vector, L2>::Options options;
  options.num_shards = 4;
  serve::ThreadPool pool(4);
  const auto sharded =
      serve::ShardedMvpIndex<Vector, L2>::Build(data, L2(), options, &pool)
          .ValueOrDie();
  const auto queries = dataset::UniformQueryVectors(6, 8, 47);
  std::vector<std::vector<Neighbor>> expected;
  for (const auto& q : queries) expected.push_back(sharded.RangeSearch(q, 0.5));
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 10; ++round) {
        const std::size_t qi = (t + static_cast<std::size_t>(round)) %
                               queries.size();
        if (sharded.RangeSearch(queries[qi], 0.5, nullptr, &pool) !=
            expected[qi]) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadSafetyTest, ConcurrentExecutorBatchesWithSharedStats) {
  // Two threads run whole batches on one pool into one ServeStats; the
  // atomic accounting must add up exactly after joining.
  const auto data = dataset::UniformVectors(1500, 8, 53);
  serve::ShardedMvpIndex<Vector, L2>::Options options;
  options.num_shards = 2;
  const auto sharded =
      serve::ShardedMvpIndex<Vector, L2>::Build(data, L2(), options)
          .ValueOrDie();
  const auto queries = dataset::UniformQueryVectors(10, 8, 59);
  std::vector<serve::BatchQuery<Vector>> batch;
  for (const auto& q : queries) {
    serve::BatchQuery<Vector> bq;
    bq.object = q;
    bq.radius = 0.5;
    batch.push_back(bq);
  }
  serve::ThreadPool pool(3);
  serve::ServeStats stats;
  std::atomic<std::uint64_t> distances{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      const auto outcomes = serve::RunBatch(sharded, batch, &pool, &stats);
      std::uint64_t local = 0;
      for (const auto& out : outcomes) local += out.distance_computations;
      distances.fetch_add(local);
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 2 * batch.size());
  EXPECT_EQ(snap.ok, 2 * batch.size());
  EXPECT_EQ(snap.distance_computations, distances.load());
}

}  // namespace
}  // namespace mvp

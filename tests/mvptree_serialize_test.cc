#include <gtest/gtest.h>

#include <string>

#include "common/codec.h"
#include "core/mvp_tree.h"
#include "dataset/vector_gen.h"
#include "dataset/words.h"
#include "metric/edit_distance.h"
#include "metric/lp.h"

namespace mvp::core {
namespace {

using metric::L2;
using metric::Vector;
using VecTree = MvpTree<Vector, L2>;

std::vector<std::uint8_t> SerializeTree(const VecTree& tree) {
  BinaryWriter writer;
  EXPECT_TRUE(tree.Serialize(&writer, VectorCodec()).ok());
  return writer.TakeBuffer();
}

TEST(MvpTreeSerializeTest, RoundTripPreservesSearchBehaviour) {
  const auto data = dataset::UniformVectors(500, 8, 11);
  VecTree::Options options;
  options.order = 3;
  options.leaf_capacity = 9;
  options.num_path_distances = 5;
  auto built = VecTree::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  auto& tree = built.value();

  const auto bytes = SerializeTree(tree);
  BinaryReader reader(bytes);
  auto loaded = VecTree::Deserialize(&reader, L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(reader.AtEnd());

  EXPECT_EQ(loaded.value().size(), tree.size());
  const auto queries = dataset::UniformQueryVectors(10, 8, 13);
  for (const auto& q : queries) {
    for (const double r : {0.1, 0.5, 1.2}) {
      SearchStats s_orig, s_load;
      const auto expected = tree.RangeSearch(q, r, &s_orig);
      const auto got = loaded.value().RangeSearch(q, r, &s_load);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i].id);
        EXPECT_DOUBLE_EQ(got[i].distance, expected[i].distance);
      }
      // Identical structure must visit identically.
      EXPECT_EQ(s_load.distance_computations, s_orig.distance_computations);
    }
    const auto knn_orig = tree.KnnSearch(q, 7);
    const auto knn_load = loaded.value().KnnSearch(q, 7);
    ASSERT_EQ(knn_orig.size(), knn_load.size());
    for (std::size_t i = 0; i < knn_orig.size(); ++i) {
      EXPECT_EQ(knn_orig[i].id, knn_load[i].id);
    }
  }
}

TEST(MvpTreeSerializeTest, RoundTripStatsIdentical) {
  const auto data = dataset::UniformVectors(300, 5, 17);
  auto built = VecTree::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  const auto bytes = SerializeTree(built.value());
  BinaryReader reader(bytes);
  auto loaded = VecTree::Deserialize(&reader, L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok());
  const auto a = built.value().Stats();
  const auto b = loaded.value().Stats();
  EXPECT_EQ(a.num_internal_nodes, b.num_internal_nodes);
  EXPECT_EQ(a.num_leaf_nodes, b.num_leaf_nodes);
  EXPECT_EQ(a.num_vantage_points, b.num_vantage_points);
  EXPECT_EQ(a.num_leaf_points, b.num_leaf_points);
  EXPECT_EQ(a.height, b.height);
}

TEST(MvpTreeSerializeTest, EmptyTreeRoundTrips) {
  auto built = VecTree::Build({}, L2(), {});
  ASSERT_TRUE(built.ok());
  const auto bytes = SerializeTree(built.value());
  BinaryReader reader(bytes);
  auto loaded = VecTree::Deserialize(&reader, L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0u);
  EXPECT_TRUE(loaded.value().RangeSearch({1, 2, 3}, 5.0).empty());
}

TEST(MvpTreeSerializeTest, StringObjectsRoundTrip) {
  auto words = dataset::SyntheticWords(150, 19);
  using WordTree = MvpTree<std::string, metric::Levenshtein>;
  WordTree::Options options;
  options.order = 2;
  options.leaf_capacity = 6;
  options.num_path_distances = 3;
  auto built = WordTree::Build(words, metric::Levenshtein(), options);
  ASSERT_TRUE(built.ok());
  BinaryWriter writer;
  ASSERT_TRUE(built.value().Serialize(&writer, StringCodec()).ok());
  BinaryReader reader(writer.buffer());
  auto loaded =
      WordTree::Deserialize(&reader, metric::Levenshtein(), StringCodec());
  ASSERT_TRUE(loaded.ok());
  const std::string q = dataset::MutateWord(words[42], 1, 3);
  const auto expected = built.value().RangeSearch(q, 2.0);
  const auto got = loaded.value().RangeSearch(q, 2.0);
  ASSERT_EQ(got.size(), expected.size());
}

TEST(MvpTreeSerializeTest, ExactBoundsModeRoundTrips) {
  const auto data = dataset::UniformVectors(250, 5, 41);
  VecTree::Options options;
  options.order = 3;
  options.leaf_capacity = 7;
  options.num_path_distances = 3;
  options.store_exact_bounds = true;
  auto built = VecTree::Build(data, L2(), options);
  ASSERT_TRUE(built.ok());
  const auto bytes = SerializeTree(built.value());
  BinaryReader reader(bytes);
  auto loaded = VecTree::Deserialize(&reader, L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().options().store_exact_bounds);
  EXPECT_TRUE(loaded.value().ValidateInvariants().ok());
  const auto q = dataset::UniformQueryVectors(1, 5, 43)[0];
  SearchStats sa, sb;
  built.value().RangeSearch(q, 0.5, &sa);
  loaded.value().RangeSearch(q, 0.5, &sb);
  EXPECT_EQ(sa.distance_computations, sb.distance_computations);
}

TEST(MvpTreeSerializeTest, SerializedSizeScalesReasonably) {
  // Sanity on the format: bytes per point should be dominated by the
  // object payload (dim doubles) plus stored distances, not bookkeeping.
  const std::size_t dim = 8;
  const auto data = dataset::UniformVectors(1000, dim, 47);
  auto built = VecTree::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  const auto bytes = SerializeTree(built.value());
  const double per_point = static_cast<double>(bytes.size()) / 1000.0;
  EXPECT_GT(per_point, dim * 8.0);         // at least the raw vectors
  EXPECT_LT(per_point, dim * 8.0 + 150.0); // bounded metadata overhead
}

TEST(MvpTreeSerializeTest, BadMagicRejected) {
  BinaryWriter writer;
  writer.Write<std::uint32_t>(0xdeadbeef);
  BinaryReader reader(writer.buffer());
  auto loaded = VecTree::Deserialize(&reader, L2(), VectorCodec());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(MvpTreeSerializeTest, UnknownVersionRejected) {
  const auto data = dataset::UniformVectors(20, 3, 23);
  auto built = VecTree::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  auto bytes = SerializeTree(built.value());
  bytes[4] = 0xff;  // clobber version field
  BinaryReader reader(bytes);
  auto loaded = VecTree::Deserialize(&reader, L2(), VectorCodec());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotSupported);
}

TEST(MvpTreeSerializeTest, TruncatedBufferRejectedEverywhere) {
  const auto data = dataset::UniformVectors(60, 4, 29);
  auto built = VecTree::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  const auto bytes = SerializeTree(built.value());
  // Truncate at a spread of offsets; every prefix must fail cleanly, never
  // crash or return a half-valid tree.
  for (const double fraction : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const auto cut =
        static_cast<std::size_t>(static_cast<double>(bytes.size()) * fraction);
    BinaryReader reader(bytes.data(), cut);
    auto loaded = VecTree::Deserialize(&reader, L2(), VectorCodec());
    EXPECT_FALSE(loaded.ok()) << "prefix " << cut;
  }
}

TEST(MvpTreeSerializeTest, CorruptedVantagePointIdRejected) {
  const auto data = dataset::UniformVectors(30, 3, 31);
  auto built = VecTree::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  auto bytes = SerializeTree(built.value());
  // Flip high bytes throughout the payload; the reader must always fail
  // with a Status (ids/bounds validation), never crash.
  int failures = 0;
  for (std::size_t pos = bytes.size() / 2; pos < bytes.size(); pos += 97) {
    auto corrupted = bytes;
    corrupted[pos] ^= 0xff;
    BinaryReader reader(corrupted);
    auto loaded = VecTree::Deserialize(&reader, L2(), VectorCodec());
    if (!loaded.ok()) ++failures;
  }
  // Some flips may land in benign doubles; at least the id/offset flips
  // must be caught.
  EXPECT_GT(failures, 0);
}

TEST(MvpTreeSerializeTest, FileRoundTrip) {
  const auto data = dataset::UniformVectors(120, 6, 37);
  auto built = VecTree::Build(data, L2(), {});
  ASSERT_TRUE(built.ok());
  const std::string path = ::testing::TempDir() + "/mvp_tree_test.mvpt";
  ASSERT_TRUE(WriteFile(path, SerializeTree(built.value())).ok());
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  BinaryReader reader(bytes.value());
  auto loaded = VecTree::Deserialize(&reader, L2(), VectorCodec());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 120u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mvp::core

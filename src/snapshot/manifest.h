#ifndef MVPTREE_SNAPSHOT_MANIFEST_H_
#define MVPTREE_SNAPSHOT_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/serialize.h"
#include "common/status.h"

/// \file
/// The snapshot manifest: a small self-checksummed file describing what the
/// container next to it holds — which index kind, how many objects, the
/// exact build parameters, and a fingerprint binding it to the container's
/// bytes. Recording the build parameters here is what lets the load path
/// VALIDATE them against the deserialized index instead of silently
/// mis-deserializing when a snapshot is paired with the wrong options (the
/// container stream itself would happily parse under many parameter
/// combinations).

namespace mvp::snapshot {

inline constexpr std::uint32_t kManifestMagic = 0x4d50564d;  // "MVPM"
inline constexpr std::uint32_t kManifestVersion = 1;
/// Version 2 appends the generation-lineage fields used by online updates
/// (base_generation, last_applied_seq, next_stable_id). A v2 manifest is
/// written ONLY when one of those fields is meaningful — plain dataset
/// builds keep writing v1, so older binaries stay compatible with them and
/// reject lineage-bearing generations with NotSupported instead of serving
/// them with wrong ids.
inline constexpr std::uint32_t kManifestVersionLineage = 2;
/// Version 3 appends the leader-epoch field used for replication fencing.
/// Written ONLY when a nonzero epoch is present — epoch-less stores keep
/// their v1/v2 bytes, so golden files and pre-epoch binaries stay intact.
inline constexpr std::uint32_t kManifestVersionEpoch = 3;

/// Index kinds a snapshot can hold.
enum class IndexKind : std::uint8_t {
  kShardedMvpIndex = 1,
  kMvpForest = 2,
  /// A sharded mvp-index stored as flat arenas (ChunkKind::kFlatShard)
  /// served directly out of the mapping — no deserialization on load.
  kFlatShardedMvpIndex = 3,
  /// A delta generation: an MvpForest of mutations (plus its stable-id map
  /// and a tombstone set) layered on the full generation named by
  /// base_generation. Written by the online-update checkpoint; always a
  /// version-2 manifest.
  kDynamicDelta = 4,
};

/// Fingerprint of a container file: CRC32C of all its bytes in the high
/// word, low 32 bits of its length in the low word. Cheap to recompute at
/// load time and collision-resistant enough to catch a manifest paired
/// with the wrong (or regenerated) container.
inline std::uint64_t FingerprintFromCrc(std::uint32_t crc,
                                        std::size_t size) {
  return static_cast<std::uint64_t>(crc) << 32 |
         static_cast<std::uint64_t>(size & 0xffffffffu);
}

inline std::uint64_t ContainerFingerprint(const std::uint8_t* data,
                                          std::size_t size) {
  return FingerprintFromCrc(Crc32c(data, size), size);
}

struct SnapshotManifest {
  IndexKind index_kind = IndexKind::kShardedMvpIndex;
  std::uint64_t object_count = 0;
  std::uint64_t num_chunks = 0;
  std::uint64_t payload_bytes = 0;  ///< container file size
  std::uint64_t dataset_fingerprint = 0;  ///< ContainerFingerprint(container)

  // Build parameters, recorded for validation on load. For a forest these
  // describe its static-tree options (num_shards is unused and zero).
  std::uint64_t num_shards = 0;
  std::int32_t order = 0;
  std::int32_t leaf_capacity = 0;
  std::int32_t num_path_distances = 0;
  std::uint64_t seed = 0;
  std::uint8_t store_exact_bounds = 0;

  // Generation lineage (online updates; zero/defaulted on v1 manifests).
  // `base_generation` names the full generation a kDynamicDelta layers on
  // (0 = none). `last_applied_seq` is the WAL sequence watermark folded
  // into this generation: recovery replays only records above it, which is
  // what makes replay idempotent. `next_stable_id` is the next id the
  // overlay will issue (0 = derive as object_count, the v1/identity case).
  std::uint64_t base_generation = 0;
  std::uint64_t last_applied_seq = 0;
  std::uint64_t next_stable_id = 0;

  /// Leader epoch this generation was committed under (0 = epoch-less
  /// store). Replication fencing: a follower that has accepted epoch N
  /// rejects generations and WAL segments stamped with an epoch < N, so a
  /// deposed leader's writes cannot reach it (docs/network_serving.md).
  std::uint64_t leader_epoch = 0;

  /// True when this manifest must carry the lineage fields, i.e. must be
  /// written as version 2 (and therefore be rejected by pre-lineage
  /// binaries instead of misread).
  bool needs_lineage() const {
    return index_kind == IndexKind::kDynamicDelta || base_generation != 0 ||
           last_applied_seq != 0 || next_stable_id != 0;
  }

  /// True when this manifest must carry the epoch field (version 3). A v3
  /// manifest always carries the lineage fields too, even when zero.
  bool needs_epoch() const { return leader_epoch != 0; }

  std::vector<std::uint8_t> Serialize() const {
    BinaryWriter writer;
    writer.Write<std::uint32_t>(kManifestMagic);
    writer.Write<std::uint32_t>(needs_epoch()      ? kManifestVersionEpoch
                                : needs_lineage() ? kManifestVersionLineage
                                                  : kManifestVersion);
    writer.Write<std::uint8_t>(static_cast<std::uint8_t>(index_kind));
    writer.Write<std::uint64_t>(object_count);
    writer.Write<std::uint64_t>(num_chunks);
    writer.Write<std::uint64_t>(payload_bytes);
    writer.Write<std::uint64_t>(dataset_fingerprint);
    writer.Write<std::uint64_t>(num_shards);
    writer.Write<std::int32_t>(order);
    writer.Write<std::int32_t>(leaf_capacity);
    writer.Write<std::int32_t>(num_path_distances);
    writer.Write<std::uint64_t>(seed);
    writer.Write<std::uint8_t>(store_exact_bounds);
    if (needs_lineage() || needs_epoch()) {
      writer.Write<std::uint64_t>(base_generation);
      writer.Write<std::uint64_t>(last_applied_seq);
      writer.Write<std::uint64_t>(next_stable_id);
    }
    if (needs_epoch()) {
      writer.Write<std::uint64_t>(leader_epoch);
    }
    writer.Write<std::uint32_t>(
        Crc32c(writer.buffer().data(), writer.buffer().size()));
    return std::move(writer).TakeBuffer();
  }

  static Result<SnapshotManifest> Parse(const std::vector<std::uint8_t>& bytes) {
    if (bytes.size() < 4) {
      return Status::Corruption("snapshot manifest truncated");
    }
    BinaryReader reader(bytes.data(), bytes.size());
    std::uint32_t magic = 0, version = 0;
    MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&magic));
    if (magic != kManifestMagic) {
      return Status::Corruption("bad snapshot manifest magic");
    }
    MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&version));
    if (version != kManifestVersion && version != kManifestVersionLineage &&
        version != kManifestVersionEpoch) {
      return Status::NotSupported("unknown snapshot manifest version " +
                                  std::to_string(version));
    }
    SnapshotManifest manifest;
    std::uint8_t kind = 0;
    MVP_RETURN_NOT_OK(reader.Read<std::uint8_t>(&kind));
    if (kind != static_cast<std::uint8_t>(IndexKind::kShardedMvpIndex) &&
        kind != static_cast<std::uint8_t>(IndexKind::kMvpForest) &&
        kind != static_cast<std::uint8_t>(IndexKind::kFlatShardedMvpIndex) &&
        kind != static_cast<std::uint8_t>(IndexKind::kDynamicDelta)) {
      return Status::Corruption("unknown snapshot index kind");
    }
    manifest.index_kind = static_cast<IndexKind>(kind);
    MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&manifest.object_count));
    MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&manifest.num_chunks));
    MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&manifest.payload_bytes));
    MVP_RETURN_NOT_OK(
        reader.Read<std::uint64_t>(&manifest.dataset_fingerprint));
    MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&manifest.num_shards));
    MVP_RETURN_NOT_OK(reader.Read<std::int32_t>(&manifest.order));
    MVP_RETURN_NOT_OK(reader.Read<std::int32_t>(&manifest.leaf_capacity));
    MVP_RETURN_NOT_OK(
        reader.Read<std::int32_t>(&manifest.num_path_distances));
    MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&manifest.seed));
    MVP_RETURN_NOT_OK(reader.Read<std::uint8_t>(&manifest.store_exact_bounds));
    if (version >= kManifestVersionLineage) {
      MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&manifest.base_generation));
      MVP_RETURN_NOT_OK(
          reader.Read<std::uint64_t>(&manifest.last_applied_seq));
      MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&manifest.next_stable_id));
    }
    if (version >= kManifestVersionEpoch) {
      MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&manifest.leader_epoch));
    }
    const std::size_t body_end = reader.position();
    std::uint32_t stored_crc = 0;
    MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&stored_crc));
    if (Crc32c(bytes.data(), body_end) != stored_crc) {
      return Status::Corruption("snapshot manifest CRC mismatch");
    }
    return manifest;
  }
};

}  // namespace mvp::snapshot

#endif  // MVPTREE_SNAPSHOT_MANIFEST_H_

#include "snapshot/flat_tree.h"

#include <cstring>
#include <limits>
#include <string>

#include "common/serialize.h"
#include "core/mvp_tree.h"
#include "metric/lp.h"

/// \file
/// Flat-arena transcoding (serialized MvpTree stream -> contiguous arena)
/// and untrusted-arena validation. Non-template code: the arena layout is
/// object-type-specific (dense real vectors), which is what makes the
/// in-place VectorView serving possible at all.

namespace mvp::snapshot::flat {
namespace {

// The stream being transcoded is exactly what MvpTree::Serialize emits;
// share its identity constants (any instantiation carries the same values).
using SourceTree = core::MvpTree<metric::Vector, metric::L2>;

constexpr std::size_t kHeaderBytes = sizeof(FlatHeaderRec);

std::uint64_t Align8(std::uint64_t v) { return (v + 7) & ~std::uint64_t{7}; }

/// Mutable arena-in-progress: section vectors appended during the preorder
/// walk of the stream, assembled into one buffer at the end.
struct ArenaBuilder {
  std::vector<double> objects;
  std::size_t object_count = 0;
  std::size_t dim = 0;
  std::vector<double> path;
  std::vector<double> bounds;
  std::vector<FlatLeafEntryRec> entries;
  std::vector<FlatNodeRec> nodes;
  std::vector<std::uint32_t> children;
};

/// Transcodes one serialized node (and, preorder, its subtree). Returns the
/// flat node index, or kNoNode for a null child. Mirrors the validation of
/// MvpTree::ReadNode so a stream the heap path would reject is rejected
/// here too.
Result<std::uint64_t> TranscodeNode(BinaryReader* reader, ArenaBuilder* b,
                                    std::size_t m, std::size_t depth) {
  if (depth > kMaxFlatDepth) {
    return Status::Corruption("mvp-tree nesting too deep");
  }
  std::uint8_t tag = 0;
  MVP_RETURN_NOT_OK(reader->Read<std::uint8_t>(&tag));
  if (tag == 0) return kNoNode;
  if (tag > 2) return Status::Corruption("bad mvp-tree node tag");

  std::uint64_t vp1 = 0, vp2 = 0;
  std::uint8_t has_vp2 = 0;
  MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&vp1));
  MVP_RETURN_NOT_OK(reader->Read<std::uint8_t>(&has_vp2));
  MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&vp2));
  if (vp1 >= b->object_count || (has_vp2 != 0 && vp2 >= b->object_count)) {
    return Status::Corruption("vantage point id out of range");
  }

  const std::uint64_t index = b->nodes.size();
  if (index >= kNullChild) {
    return Status::Corruption("flat tree node count exceeds format limit");
  }
  b->nodes.emplace_back();  // filled below; children recurse after it
  FlatNodeRec rec;
  rec.vp1 = static_cast<std::uint32_t>(vp1);
  rec.vp2 = static_cast<std::uint32_t>(vp2);
  if (has_vp2 != 0) rec.flags |= kNodeHasVp2;

  if (tag == 1) {  // leaf
    rec.flags |= kNodeLeaf;
    std::uint64_t bucket_size = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&bucket_size));
    if (bucket_size > reader->remaining()) {
      return Status::Corruption("leaf bucket size exceeds buffer");
    }
    rec.begin = b->entries.size();
    rec.count = static_cast<std::uint32_t>(bucket_size);
    for (std::uint64_t i = 0; i < bucket_size; ++i) {
      FlatLeafEntryRec e;
      std::uint64_t id = 0;
      MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&id));
      MVP_RETURN_NOT_OK(reader->Read<double>(&e.d1));
      MVP_RETURN_NOT_OK(reader->Read<double>(&e.d2));
      MVP_RETURN_NOT_OK(reader->Read<std::uint32_t>(&e.path_offset));
      MVP_RETURN_NOT_OK(reader->Read<std::uint32_t>(&e.path_length));
      if (id >= b->object_count) {
        return Status::Corruption("leaf point id out of range");
      }
      if (static_cast<std::size_t>(e.path_offset) + e.path_length >
          b->path.size()) {
        return Status::Corruption("leaf PATH slice out of pool range");
      }
      e.id = static_cast<std::uint32_t>(id);
      b->entries.push_back(e);
    }
    b->nodes[static_cast<std::size_t>(index)] = rec;
    return index;
  }

  // Internal node: bounds arrays, then m*m children, preorder.
  std::vector<double> lower1, upper1, lower2, upper2;
  MVP_RETURN_NOT_OK(reader->ReadVector(&lower1));
  MVP_RETURN_NOT_OK(reader->ReadVector(&upper1));
  MVP_RETURN_NOT_OK(reader->ReadVector(&lower2));
  MVP_RETURN_NOT_OK(reader->ReadVector(&upper2));
  if (lower1.size() != m || upper1.size() != m || lower2.size() != m * m ||
      upper2.size() != m * m) {
    return Status::Corruption("internal node bound arrays malformed");
  }
  rec.begin = b->bounds.size();
  b->bounds.insert(b->bounds.end(), lower1.begin(), lower1.end());
  b->bounds.insert(b->bounds.end(), upper1.begin(), upper1.end());
  b->bounds.insert(b->bounds.end(), lower2.begin(), lower2.end());
  b->bounds.insert(b->bounds.end(), upper2.begin(), upper2.end());
  rec.children = b->children.size();
  b->children.insert(b->children.end(), m * m, kNullChild);
  b->nodes[static_cast<std::size_t>(index)] = rec;

  for (std::size_t c = 0; c < m * m; ++c) {
    auto child = TranscodeNode(reader, b, m, depth + 1);
    if (!child.ok()) return child.status();
    const std::uint64_t ci = child.value();
    b->children[static_cast<std::size_t>(rec.children) + c] =
        ci == kNoNode ? kNullChild : static_cast<std::uint32_t>(ci);
  }
  return index;
}

template <typename T>
void CopySection(std::vector<std::uint8_t>* arena, std::uint64_t offset,
                 const std::vector<T>& values) {
  if (values.empty()) return;
  std::memcpy(arena->data() + offset, values.data(),
              values.size() * sizeof(T));
}

}  // namespace

Result<std::vector<std::uint8_t>> BuildFlatArena(const std::uint8_t* stream,
                                                 std::size_t length) {
  BinaryReader reader(stream, length);
  std::uint32_t magic = 0, version = 0;
  MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&magic));
  if (magic != SourceTree::kMagic) {
    return Status::Corruption("bad mvp-tree magic");
  }
  MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&version));
  if (version != SourceTree::kFormatVersion) {
    return Status::NotSupported("unknown mvp-tree format version");
  }
  std::int32_t order = 0, leaf_capacity = 0, num_paths = 0;
  std::uint8_t bounds_flag = 0;
  MVP_RETURN_NOT_OK(reader.Read<std::int32_t>(&order));
  MVP_RETURN_NOT_OK(reader.Read<std::int32_t>(&leaf_capacity));
  MVP_RETURN_NOT_OK(reader.Read<std::int32_t>(&num_paths));
  MVP_RETURN_NOT_OK(reader.Read<std::uint8_t>(&bounds_flag));
  if (order < 2 || leaf_capacity < 1 || num_paths < 0) {
    return Status::Corruption("mvp-tree options out of range");
  }

  std::uint64_t count = 0;
  MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&count));
  if (count > reader.remaining()) {
    return Status::Corruption("object count exceeds buffer");
  }
  if (count > std::numeric_limits<std::uint32_t>::max()) {
    return Status::InvalidArgument(
        "flat arenas hold at most 2^32-1 objects per shard");
  }

  ArenaBuilder b;
  b.object_count = static_cast<std::size_t>(count);
  b.objects.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::vector<double> v;
    MVP_RETURN_NOT_OK(reader.ReadVector(&v));
    if (i == 0) {
      b.dim = v.size();
    } else if (v.size() != b.dim) {
      return Status::InvalidArgument(
          "flat arenas require equal-dimension vectors");
    }
    b.objects.insert(b.objects.end(), v.begin(), v.end());
  }
  if (b.dim > std::numeric_limits<std::uint32_t>::max()) {
    return Status::InvalidArgument("vector dimension exceeds format limit");
  }
  MVP_RETURN_NOT_OK(reader.ReadVector(&b.path));

  auto root = TranscodeNode(&reader, &b, static_cast<std::size_t>(order), 0);
  if (!root.ok()) return root.status();
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after mvp-tree stream");
  }
  if (root.value() == kNoNode && b.object_count != 0) {
    return Status::Corruption("non-empty tree has no root");
  }

  FlatHeaderRec h;
  h.order = static_cast<std::uint32_t>(order);
  h.leaf_capacity = static_cast<std::uint32_t>(leaf_capacity);
  h.num_path_distances = static_cast<std::uint32_t>(num_paths);
  if (bounds_flag != 0) h.flags |= kHeaderExactBounds;
  h.dim = static_cast<std::uint32_t>(b.dim);
  h.object_count = count;
  h.node_count = b.nodes.size();
  h.root = root.value();

  std::uint64_t offset = kHeaderBytes;
  h.objects_offset = offset;
  offset += b.objects.size() * sizeof(double);
  h.path_offset = offset;
  h.path_count = b.path.size();
  offset += b.path.size() * sizeof(double);
  h.bounds_offset = offset;
  h.bounds_count = b.bounds.size();
  offset += b.bounds.size() * sizeof(double);
  h.entries_offset = offset;
  h.entry_count = b.entries.size();
  offset += b.entries.size() * sizeof(FlatLeafEntryRec);
  h.nodes_offset = offset;
  offset += b.nodes.size() * sizeof(FlatNodeRec);
  h.children_offset = offset;
  h.children_count = b.children.size();
  offset += b.children.size() * sizeof(std::uint32_t);
  offset = Align8(offset);
  h.arena_bytes = offset;

  std::vector<std::uint8_t> arena(static_cast<std::size_t>(offset), 0);
  std::memcpy(arena.data(), &h, sizeof(h));
  CopySection(&arena, h.objects_offset, b.objects);
  CopySection(&arena, h.path_offset, b.path);
  CopySection(&arena, h.bounds_offset, b.bounds);
  CopySection(&arena, h.entries_offset, b.entries);
  CopySection(&arena, h.nodes_offset, b.nodes);
  CopySection(&arena, h.children_offset, b.children);
  return arena;
}

namespace {

Status SectionInBounds(std::uint64_t offset, std::uint64_t count,
                       std::uint64_t element_size, std::uint64_t size,
                       const char* what) {
  if (offset % kFlatAlignment != 0) {
    return Status::Corruption(std::string("flat arena ") + what +
                              " section misaligned");
  }
  if (offset > size) {
    return Status::Corruption(std::string("flat arena ") + what +
                              " section out of bounds");
  }
  if (element_size == 0) {
    // Only the objects section of an empty arena (dim == 0) has zero-size
    // elements; any element would make the section unbounded, and the
    // division below would be undefined.
    if (count != 0) {
      return Status::Corruption(std::string("flat arena ") + what +
                                " section out of bounds");
    }
    return Status::OK();
  }
  if (count > (size - offset) / element_size) {
    return Status::Corruption(std::string("flat arena ") + what +
                              " section out of bounds");
  }
  return Status::OK();
}

}  // namespace

Result<FlatArenaParts> ParseFlatArena(const std::uint8_t* data,
                                      std::size_t size) {
  if (reinterpret_cast<std::uintptr_t>(data) % kFlatAlignment != 0) {
    return Status::InvalidArgument("flat arena base address misaligned");
  }
  if (size < kHeaderBytes) {
    return Status::Corruption("flat arena smaller than its header");
  }
  FlatHeaderRec h;
  std::memcpy(&h, data, sizeof(h));
  if (h.magic != kFlatMagic) {
    return Status::Corruption("bad flat arena magic");
  }
  if (h.version != kFlatVersion) {
    return Status::NotSupported("unknown flat arena version " +
                                std::to_string(h.version));
  }
  constexpr std::uint32_t kMaxI32 = 0x7fffffffu;
  if (h.order < 2 || h.order > kMaxI32 || h.leaf_capacity < 1 ||
      h.leaf_capacity > kMaxI32 || h.num_path_distances > kMaxI32 ||
      (h.flags & ~kHeaderExactBounds) != 0) {
    return Status::Corruption("flat arena options out of range");
  }
  if (h.arena_bytes != size) {
    return Status::Corruption("flat arena size mismatches header");
  }
  if (h.object_count > std::numeric_limits<std::uint32_t>::max()) {
    return Status::Corruption("flat arena object count out of range");
  }
  if (h.dim == 0 && h.object_count != 0) {
    return Status::Corruption("flat arena stores objects but dim is zero");
  }

  // Section bounds. Objects need count*dim doubles; guard the product.
  const std::uint64_t m = h.order;
  MVP_RETURN_NOT_OK(SectionInBounds(h.objects_offset, h.object_count,
                                    sizeof(double) * std::uint64_t{h.dim},
                                    size, "objects"));
  MVP_RETURN_NOT_OK(SectionInBounds(h.path_offset, h.path_count,
                                    sizeof(double), size, "path"));
  MVP_RETURN_NOT_OK(SectionInBounds(h.bounds_offset, h.bounds_count,
                                    sizeof(double), size, "bounds"));
  MVP_RETURN_NOT_OK(SectionInBounds(h.entries_offset, h.entry_count,
                                    sizeof(FlatLeafEntryRec), size,
                                    "entries"));
  MVP_RETURN_NOT_OK(SectionInBounds(h.nodes_offset, h.node_count,
                                    sizeof(FlatNodeRec), size, "nodes"));
  MVP_RETURN_NOT_OK(SectionInBounds(h.children_offset, h.children_count,
                                    sizeof(std::uint32_t), size, "children"));

  FlatArenaParts parts;
  parts.header = h;
  parts.objects = reinterpret_cast<const double*>(data + h.objects_offset);
  parts.path = reinterpret_cast<const double*>(data + h.path_offset);
  parts.bounds = reinterpret_cast<const double*>(data + h.bounds_offset);
  parts.entries =
      reinterpret_cast<const FlatLeafEntryRec*>(data + h.entries_offset);
  parts.nodes = reinterpret_cast<const FlatNodeRec*>(data + h.nodes_offset);
  parts.children =
      reinterpret_cast<const std::uint32_t*>(data + h.children_offset);

  // Every leaf entry's id and PATH slice, in one linear pass.
  for (std::uint64_t i = 0; i < h.entry_count; ++i) {
    const FlatLeafEntryRec& e = parts.entries[i];
    if (e.id >= h.object_count) {
      return Status::Corruption("flat leaf entry id out of range");
    }
    if (std::uint64_t{e.path_offset} + e.path_length > h.path_count) {
      return Status::Corruption("flat leaf PATH slice out of pool range");
    }
  }

  // Structural pass over the nodes. Preorder is the invariant that makes
  // one forward scan sufficient AND guarantees traversal termination:
  // every child index must point strictly forward, every non-root node
  // must have been referenced by an earlier parent (exactly once), and
  // depth — assigned parent-before-child — must stay under the cap.
  if (h.node_count == 0) {
    if (h.root != kNoNode || h.object_count != 0) {
      return Status::Corruption("flat arena root mismatches empty tree");
    }
    return parts;
  }
  if (h.root != 0) {
    return Status::Corruption("flat arena root must be the first node");
  }
  std::vector<std::uint32_t> depth(static_cast<std::size_t>(h.node_count), 0);
  depth[0] = 1;
  for (std::uint64_t i = 0; i < h.node_count; ++i) {
    const FlatNodeRec& node = parts.nodes[i];
    if (depth[static_cast<std::size_t>(i)] == 0) {
      return Status::Corruption("flat arena node unreachable from root");
    }
    if ((node.flags & ~(kNodeLeaf | kNodeHasVp2)) != 0) {
      return Status::Corruption("flat arena node has unknown flags");
    }
    if (node.vp1 >= h.object_count ||
        ((node.flags & kNodeHasVp2) != 0 && node.vp2 >= h.object_count)) {
      return Status::Corruption("flat arena vantage point id out of range");
    }
    if ((node.flags & kNodeLeaf) != 0) {
      if (node.begin > h.entry_count ||
          node.count > h.entry_count - node.begin) {
        return Status::Corruption("flat arena leaf entry range out of bounds");
      }
      continue;
    }
    const std::uint64_t bounds_needed = 2 * m + 2 * m * m;
    if (node.begin > h.bounds_count ||
        bounds_needed > h.bounds_count - node.begin) {
      return Status::Corruption("flat arena bounds range out of bounds");
    }
    if (node.children > h.children_count ||
        m * m > h.children_count - node.children) {
      return Status::Corruption("flat arena children range out of bounds");
    }
    if (depth[static_cast<std::size_t>(i)] >= kMaxFlatDepth) {
      return Status::Corruption("flat tree nesting too deep");
    }
    for (std::uint64_t c = 0; c < m * m; ++c) {
      const std::uint32_t child =
          parts.children[static_cast<std::size_t>(node.children + c)];
      if (child == kNullChild) continue;
      if (child >= h.node_count || child <= i) {
        return Status::Corruption("flat arena child link is not preorder");
      }
      if (depth[child] != 0) {
        return Status::Corruption("flat arena node referenced twice");
      }
      depth[child] = depth[static_cast<std::size_t>(i)] + 1;
    }
  }
  return parts;
}

}  // namespace mvp::snapshot::flat

#include "snapshot/flat_tree.h"

#include <cstring>
#include <limits>
#include <string>

#include "common/serialize.h"
#include "core/mvp_tree.h"
#include "metric/lp.h"

/// \file
/// Flat-arena transcoding (serialized MvpTree stream -> contiguous arena)
/// and untrusted-arena validation. Non-template code: the arena layout is
/// object-type-specific (dense real vectors), which is what makes the
/// in-place VectorView serving possible at all.

namespace mvp::snapshot::flat {
namespace {

// The stream being transcoded is exactly what MvpTree::Serialize emits;
// share its identity constants (any instantiation carries the same values).
using SourceTree = core::MvpTree<metric::Vector, metric::L2>;

std::uint64_t Align8(std::uint64_t v) { return (v + 7) & ~std::uint64_t{7}; }

/// Mutable arena-in-progress: section vectors appended during the preorder
/// walk of the stream, assembled into one buffer at the end.
struct ArenaBuilder {
  std::vector<double> objects;
  std::size_t object_count = 0;
  std::size_t dim = 0;
  std::vector<double> path;
  std::vector<double> bounds;
  std::vector<FlatLeafEntryRec> entries;
  std::vector<FlatNodeRec> nodes;
  std::vector<std::uint32_t> children;
};

/// Transcodes one serialized node (and, preorder, its subtree). Returns the
/// flat node index, or kNoNode for a null child. Mirrors the validation of
/// MvpTree::ReadNode so a stream the heap path would reject is rejected
/// here too.
Result<std::uint64_t> TranscodeNode(BinaryReader* reader, ArenaBuilder* b,
                                    std::size_t m, std::size_t depth) {
  if (depth > kMaxFlatDepth) {
    return Status::Corruption("mvp-tree nesting too deep");
  }
  std::uint8_t tag = 0;
  MVP_RETURN_NOT_OK(reader->Read<std::uint8_t>(&tag));
  if (tag == 0) return kNoNode;
  if (tag > 2) return Status::Corruption("bad mvp-tree node tag");

  std::uint64_t vp1 = 0, vp2 = 0;
  std::uint8_t has_vp2 = 0;
  MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&vp1));
  MVP_RETURN_NOT_OK(reader->Read<std::uint8_t>(&has_vp2));
  MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&vp2));
  if (vp1 >= b->object_count || (has_vp2 != 0 && vp2 >= b->object_count)) {
    return Status::Corruption("vantage point id out of range");
  }

  const std::uint64_t index = b->nodes.size();
  if (index >= kNullChild) {
    return Status::Corruption("flat tree node count exceeds format limit");
  }
  b->nodes.emplace_back();  // filled below; children recurse after it
  FlatNodeRec rec;
  rec.vp1 = static_cast<std::uint32_t>(vp1);
  rec.vp2 = static_cast<std::uint32_t>(vp2);
  if (has_vp2 != 0) rec.flags |= kNodeHasVp2;

  if (tag == 1) {  // leaf
    rec.flags |= kNodeLeaf;
    std::uint64_t bucket_size = 0;
    MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&bucket_size));
    if (bucket_size > reader->remaining()) {
      return Status::Corruption("leaf bucket size exceeds buffer");
    }
    rec.begin = b->entries.size();
    rec.count = static_cast<std::uint32_t>(bucket_size);
    for (std::uint64_t i = 0; i < bucket_size; ++i) {
      FlatLeafEntryRec e;
      std::uint64_t id = 0;
      MVP_RETURN_NOT_OK(reader->Read<std::uint64_t>(&id));
      MVP_RETURN_NOT_OK(reader->Read<double>(&e.d1));
      MVP_RETURN_NOT_OK(reader->Read<double>(&e.d2));
      MVP_RETURN_NOT_OK(reader->Read<std::uint32_t>(&e.path_offset));
      MVP_RETURN_NOT_OK(reader->Read<std::uint32_t>(&e.path_length));
      if (id >= b->object_count) {
        return Status::Corruption("leaf point id out of range");
      }
      if (static_cast<std::size_t>(e.path_offset) + e.path_length >
          b->path.size()) {
        return Status::Corruption("leaf PATH slice out of pool range");
      }
      e.id = static_cast<std::uint32_t>(id);
      b->entries.push_back(e);
    }
    b->nodes[static_cast<std::size_t>(index)] = rec;
    return index;
  }

  // Internal node: bounds arrays, then m*m children, preorder.
  std::vector<double> lower1, upper1, lower2, upper2;
  MVP_RETURN_NOT_OK(reader->ReadVector(&lower1));
  MVP_RETURN_NOT_OK(reader->ReadVector(&upper1));
  MVP_RETURN_NOT_OK(reader->ReadVector(&lower2));
  MVP_RETURN_NOT_OK(reader->ReadVector(&upper2));
  if (lower1.size() != m || upper1.size() != m || lower2.size() != m * m ||
      upper2.size() != m * m) {
    return Status::Corruption("internal node bound arrays malformed");
  }
  rec.begin = b->bounds.size();
  b->bounds.insert(b->bounds.end(), lower1.begin(), lower1.end());
  b->bounds.insert(b->bounds.end(), upper1.begin(), upper1.end());
  b->bounds.insert(b->bounds.end(), lower2.begin(), lower2.end());
  b->bounds.insert(b->bounds.end(), upper2.begin(), upper2.end());
  rec.children = b->children.size();
  b->children.insert(b->children.end(), m * m, kNullChild);
  b->nodes[static_cast<std::size_t>(index)] = rec;

  for (std::size_t c = 0; c < m * m; ++c) {
    auto child = TranscodeNode(reader, b, m, depth + 1);
    if (!child.ok()) return child.status();
    const std::uint64_t ci = child.value();
    b->children[static_cast<std::size_t>(rec.children) + c] =
        ci == kNoNode ? kNullChild : static_cast<std::uint32_t>(ci);
  }
  return index;
}

template <typename T>
void CopySection(std::vector<std::uint8_t>* arena, std::uint64_t offset,
                 const std::vector<T>& values) {
  if (values.empty()) return;
  std::memcpy(arena->data() + offset, values.data(),
              values.size() * sizeof(T));
}

/// v2 structure-of-arrays leaf sections, derived from the AoS entries the
/// transcoder collected. Slabs are emitted leaf by leaf in node (preorder)
/// order, so their offsets are the canonical gap-free sequence
/// ParseFlatArena later enforces.
struct SoaSections {
  std::vector<std::uint32_t> ids;
  std::vector<double> d1;
  std::vector<double> d2;
  std::vector<double> slab;  ///< replaces the v1 PATH pool
  std::vector<FlatLeafPathRec> leafpaths;
};

Status BuildSoaSections(const ArenaBuilder& b, SoaSections* soa) {
  soa->ids.reserve(b.entries.size());
  soa->d1.reserve(b.entries.size());
  soa->d2.reserve(b.entries.size());
  for (const FlatLeafEntryRec& e : b.entries) {
    soa->ids.push_back(e.id);
    soa->d1.push_back(e.d1);
    soa->d2.push_back(e.d2);
  }
  soa->leafpaths.resize(b.nodes.size());
  for (std::size_t ni = 0; ni < b.nodes.size(); ++ni) {
    const FlatNodeRec& node = b.nodes[ni];
    if ((node.flags & kNodeLeaf) == 0) continue;
    const std::size_t begin = static_cast<std::size_t>(node.begin);
    FlatLeafPathRec lp;
    lp.slab_offset = soa->slab.size();
    lp.path_length = node.count > 0 ? b.entries[begin].path_length : 0;
    for (std::uint32_t i = 0; i < node.count; ++i) {
      if (b.entries[begin + i].path_length != lp.path_length) {
        // The heap tree records one PATH prefix length per leaf; a stream
        // with mixed lengths in a leaf has no SoA slab representation.
        return Status::Corruption("leaf PATH lengths inconsistent in a leaf");
      }
    }
    for (std::uint32_t j = 0; j < lp.path_length; ++j) {
      for (std::uint32_t i = 0; i < node.count; ++i) {
        soa->slab.push_back(b.path[b.entries[begin + i].path_offset + j]);
      }
    }
    soa->leafpaths[ni] = lp;
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::uint8_t>> BuildFlatArena(const std::uint8_t* stream,
                                                 std::size_t length) {
  return BuildFlatArena(stream, length, kFlatVersionLatest);
}

Result<std::vector<std::uint8_t>> BuildFlatArena(const std::uint8_t* stream,
                                                 std::size_t length,
                                                 std::uint32_t version) {
  if (version != kFlatVersionV1 && version != kFlatVersionV2) {
    return Status::InvalidArgument("unknown flat arena version " +
                                   std::to_string(version));
  }
  BinaryReader reader(stream, length);
  std::uint32_t magic = 0, stream_version = 0;
  MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&magic));
  if (magic != SourceTree::kMagic) {
    return Status::Corruption("bad mvp-tree magic");
  }
  MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&stream_version));
  if (stream_version != SourceTree::kFormatVersion) {
    return Status::NotSupported("unknown mvp-tree format version");
  }
  std::int32_t order = 0, leaf_capacity = 0, num_paths = 0;
  std::uint8_t bounds_flag = 0;
  MVP_RETURN_NOT_OK(reader.Read<std::int32_t>(&order));
  MVP_RETURN_NOT_OK(reader.Read<std::int32_t>(&leaf_capacity));
  MVP_RETURN_NOT_OK(reader.Read<std::int32_t>(&num_paths));
  MVP_RETURN_NOT_OK(reader.Read<std::uint8_t>(&bounds_flag));
  if (order < 2 || leaf_capacity < 1 || num_paths < 0) {
    return Status::Corruption("mvp-tree options out of range");
  }

  std::uint64_t count = 0;
  MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&count));
  if (count > reader.remaining()) {
    return Status::Corruption("object count exceeds buffer");
  }
  if (count > std::numeric_limits<std::uint32_t>::max()) {
    return Status::InvalidArgument(
        "flat arenas hold at most 2^32-1 objects per shard");
  }

  ArenaBuilder b;
  b.object_count = static_cast<std::size_t>(count);
  b.objects.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::vector<double> v;
    MVP_RETURN_NOT_OK(reader.ReadVector(&v));
    if (i == 0) {
      b.dim = v.size();
    } else if (v.size() != b.dim) {
      return Status::InvalidArgument(
          "flat arenas require equal-dimension vectors");
    }
    b.objects.insert(b.objects.end(), v.begin(), v.end());
  }
  if (b.dim > std::numeric_limits<std::uint32_t>::max()) {
    return Status::InvalidArgument("vector dimension exceeds format limit");
  }
  MVP_RETURN_NOT_OK(reader.ReadVector(&b.path));

  auto root = TranscodeNode(&reader, &b, static_cast<std::size_t>(order), 0);
  if (!root.ok()) return root.status();
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after mvp-tree stream");
  }
  if (root.value() == kNoNode && b.object_count != 0) {
    return Status::Corruption("non-empty tree has no root");
  }

  FlatHeaderRec h;
  h.version = version;
  h.order = static_cast<std::uint32_t>(order);
  h.leaf_capacity = static_cast<std::uint32_t>(leaf_capacity);
  h.num_path_distances = static_cast<std::uint32_t>(num_paths);
  if (bounds_flag != 0) h.flags |= kHeaderExactBounds;
  h.dim = static_cast<std::uint32_t>(b.dim);
  h.object_count = count;
  h.node_count = b.nodes.size();
  h.root = root.value();

  if (version == kFlatVersionV1) {
    std::uint64_t offset = kFlatHeaderBytesV1;
    h.objects_offset = offset;
    offset += b.objects.size() * sizeof(double);
    h.path_offset = offset;
    h.path_count = b.path.size();
    offset += b.path.size() * sizeof(double);
    h.bounds_offset = offset;
    h.bounds_count = b.bounds.size();
    offset += b.bounds.size() * sizeof(double);
    h.entries_offset = offset;
    h.entry_count = b.entries.size();
    offset += b.entries.size() * sizeof(FlatLeafEntryRec);
    h.nodes_offset = offset;
    offset += b.nodes.size() * sizeof(FlatNodeRec);
    h.children_offset = offset;
    h.children_count = b.children.size();
    offset += b.children.size() * sizeof(std::uint32_t);
    offset = Align8(offset);
    h.arena_bytes = offset;

    std::vector<std::uint8_t> arena(static_cast<std::size_t>(offset), 0);
    std::memcpy(arena.data(), &h, sizeof(h));
    CopySection(&arena, h.objects_offset, b.objects);
    CopySection(&arena, h.path_offset, b.path);
    CopySection(&arena, h.bounds_offset, b.bounds);
    CopySection(&arena, h.entries_offset, b.entries);
    CopySection(&arena, h.nodes_offset, b.nodes);
    CopySection(&arena, h.children_offset, b.children);
    return arena;
  }

  SoaSections soa;
  MVP_RETURN_NOT_OK(BuildSoaSections(b, &soa));

  // v2 layout: every section offset stays 8-aligned (the u32 ids section can
  // end off an 8-byte boundary, hence the explicit Align8 between sections).
  FlatHeaderExtRec ext;
  std::uint64_t offset = kFlatHeaderBytesV2;
  h.objects_offset = offset;
  offset = Align8(offset + b.objects.size() * sizeof(double));
  h.path_offset = offset;
  h.path_count = soa.slab.size();
  offset = Align8(offset + soa.slab.size() * sizeof(double));
  h.bounds_offset = offset;
  h.bounds_count = b.bounds.size();
  offset = Align8(offset + b.bounds.size() * sizeof(double));
  h.entries_offset = offset;  // ids section in v2
  h.entry_count = soa.ids.size();
  offset = Align8(offset + soa.ids.size() * sizeof(std::uint32_t));
  ext.d1_offset = offset;
  offset = Align8(offset + soa.d1.size() * sizeof(double));
  ext.d2_offset = offset;
  offset = Align8(offset + soa.d2.size() * sizeof(double));
  ext.leafpaths_offset = offset;
  offset = Align8(offset + soa.leafpaths.size() * sizeof(FlatLeafPathRec));
  h.nodes_offset = offset;
  offset = Align8(offset + b.nodes.size() * sizeof(FlatNodeRec));
  h.children_offset = offset;
  h.children_count = b.children.size();
  offset = Align8(offset + b.children.size() * sizeof(std::uint32_t));
  h.arena_bytes = offset;

  std::vector<std::uint8_t> arena(static_cast<std::size_t>(offset), 0);
  std::memcpy(arena.data(), &h, sizeof(h));
  std::memcpy(arena.data() + sizeof(h), &ext, sizeof(ext));
  CopySection(&arena, h.objects_offset, b.objects);
  CopySection(&arena, h.path_offset, soa.slab);
  CopySection(&arena, h.bounds_offset, b.bounds);
  CopySection(&arena, h.entries_offset, soa.ids);
  CopySection(&arena, ext.d1_offset, soa.d1);
  CopySection(&arena, ext.d2_offset, soa.d2);
  CopySection(&arena, ext.leafpaths_offset, soa.leafpaths);
  CopySection(&arena, h.nodes_offset, b.nodes);
  CopySection(&arena, h.children_offset, b.children);
  return arena;
}

namespace {

Status SectionInBounds(std::uint64_t offset, std::uint64_t count,
                       std::uint64_t element_size, std::uint64_t size,
                       const char* what) {
  if (offset % kFlatAlignment != 0) {
    return Status::Corruption(std::string("flat arena ") + what +
                              " section misaligned");
  }
  if (offset > size) {
    return Status::Corruption(std::string("flat arena ") + what +
                              " section out of bounds");
  }
  if (element_size == 0) {
    // Only the objects section of an empty arena (dim == 0) has zero-size
    // elements; any element would make the section unbounded, and the
    // division below would be undefined.
    if (count != 0) {
      return Status::Corruption(std::string("flat arena ") + what +
                                " section out of bounds");
    }
    return Status::OK();
  }
  if (count > (size - offset) / element_size) {
    return Status::Corruption(std::string("flat arena ") + what +
                              " section out of bounds");
  }
  return Status::OK();
}

}  // namespace

Result<FlatArenaParts> ParseFlatArena(const std::uint8_t* data,
                                      std::size_t size) {
  if (reinterpret_cast<std::uintptr_t>(data) % kFlatAlignment != 0) {
    return Status::InvalidArgument("flat arena base address misaligned");
  }
  if (size < kFlatHeaderBytesV1) {
    return Status::Corruption("flat arena smaller than its header");
  }
  FlatHeaderRec h;
  std::memcpy(&h, data, sizeof(h));
  if (h.magic != kFlatMagic) {
    return Status::Corruption("bad flat arena magic");
  }
  if (h.version != kFlatVersionV1 && h.version != kFlatVersionV2) {
    return Status::NotSupported("unknown flat arena version " +
                                std::to_string(h.version));
  }
  const bool v2 = h.version == kFlatVersionV2;
  FlatHeaderExtRec ext;
  if (v2) {
    if (size < kFlatHeaderBytesV2) {
      return Status::Corruption("flat arena smaller than its header");
    }
    std::memcpy(&ext, data + sizeof(h), sizeof(ext));
    if (ext.reserved0 != 0 || ext.reserved1 != 0 || ext.reserved2 != 0) {
      return Status::Corruption("flat arena header reserved bytes nonzero");
    }
  }
  constexpr std::uint32_t kMaxI32 = 0x7fffffffu;
  if (h.order < 2 || h.order > kMaxI32 || h.leaf_capacity < 1 ||
      h.leaf_capacity > kMaxI32 || h.num_path_distances > kMaxI32 ||
      (h.flags & ~kHeaderExactBounds) != 0) {
    return Status::Corruption("flat arena options out of range");
  }
  if (h.arena_bytes != size) {
    return Status::Corruption("flat arena size mismatches header");
  }
  if (h.object_count > std::numeric_limits<std::uint32_t>::max()) {
    return Status::Corruption("flat arena object count out of range");
  }
  if (h.dim == 0 && h.object_count != 0) {
    return Status::Corruption("flat arena stores objects but dim is zero");
  }

  // Section bounds. Objects need count*dim doubles; guard the product.
  const std::uint64_t m = h.order;
  MVP_RETURN_NOT_OK(SectionInBounds(h.objects_offset, h.object_count,
                                    sizeof(double) * std::uint64_t{h.dim},
                                    size, "objects"));
  MVP_RETURN_NOT_OK(SectionInBounds(h.path_offset, h.path_count,
                                    sizeof(double), size, "path"));
  MVP_RETURN_NOT_OK(SectionInBounds(h.bounds_offset, h.bounds_count,
                                    sizeof(double), size, "bounds"));
  if (v2) {
    // In v2 the entries section holds u32 ids; D1/D2/leafpaths live behind
    // the header extension.
    MVP_RETURN_NOT_OK(SectionInBounds(h.entries_offset, h.entry_count,
                                      sizeof(std::uint32_t), size, "ids"));
    MVP_RETURN_NOT_OK(SectionInBounds(ext.d1_offset, h.entry_count,
                                      sizeof(double), size, "d1"));
    MVP_RETURN_NOT_OK(SectionInBounds(ext.d2_offset, h.entry_count,
                                      sizeof(double), size, "d2"));
    MVP_RETURN_NOT_OK(SectionInBounds(ext.leafpaths_offset, h.node_count,
                                      sizeof(FlatLeafPathRec), size,
                                      "leafpaths"));
  } else {
    MVP_RETURN_NOT_OK(SectionInBounds(h.entries_offset, h.entry_count,
                                      sizeof(FlatLeafEntryRec), size,
                                      "entries"));
  }
  MVP_RETURN_NOT_OK(SectionInBounds(h.nodes_offset, h.node_count,
                                    sizeof(FlatNodeRec), size, "nodes"));
  MVP_RETURN_NOT_OK(SectionInBounds(h.children_offset, h.children_count,
                                    sizeof(std::uint32_t), size, "children"));

  FlatArenaParts parts;
  parts.header = h;
  parts.ext = ext;
  parts.objects = reinterpret_cast<const double*>(data + h.objects_offset);
  parts.path = reinterpret_cast<const double*>(data + h.path_offset);
  parts.bounds = reinterpret_cast<const double*>(data + h.bounds_offset);
  parts.nodes = reinterpret_cast<const FlatNodeRec*>(data + h.nodes_offset);
  parts.children =
      reinterpret_cast<const std::uint32_t*>(data + h.children_offset);
  if (v2) {
    parts.ids = reinterpret_cast<const std::uint32_t*>(data + h.entries_offset);
    parts.d1 = reinterpret_cast<const double*>(data + ext.d1_offset);
    parts.d2 = reinterpret_cast<const double*>(data + ext.d2_offset);
    parts.leafpaths =
        reinterpret_cast<const FlatLeafPathRec*>(data + ext.leafpaths_offset);
  } else {
    parts.entries =
        reinterpret_cast<const FlatLeafEntryRec*>(data + h.entries_offset);
  }

  // Every leaf entry's id (and, v1, its PATH slice), in one linear pass.
  for (std::uint64_t i = 0; i < h.entry_count; ++i) {
    if (v2) {
      if (parts.ids[i] >= h.object_count) {
        return Status::Corruption("flat leaf entry id out of range");
      }
      continue;
    }
    const FlatLeafEntryRec& e = parts.entries[i];
    if (e.id >= h.object_count) {
      return Status::Corruption("flat leaf entry id out of range");
    }
    if (std::uint64_t{e.path_offset} + e.path_length > h.path_count) {
      return Status::Corruption("flat leaf PATH slice out of pool range");
    }
  }

  // Structural pass over the nodes. Preorder is the invariant that makes
  // one forward scan sufficient AND guarantees traversal termination:
  // every child index must point strictly forward, every non-root node
  // must have been referenced by an earlier parent (exactly once), and
  // depth — assigned parent-before-child — must stay under the cap.
  if (h.node_count == 0) {
    if (h.root != kNoNode || h.object_count != 0) {
      return Status::Corruption("flat arena root mismatches empty tree");
    }
    if (v2 && h.path_count != 0) {
      return Status::Corruption("flat arena PATH slab pool not canonical");
    }
    return parts;
  }
  if (h.root != 0) {
    return Status::Corruption("flat arena root must be the first node");
  }
  // v2 slab canonicality: leaf slabs must tile the PATH pool exactly, in
  // node order, with no gaps or overlap — so no two leaves can alias slab
  // doubles and every slab is in bounds by construction.
  std::uint64_t next_slab = 0;
  std::vector<std::uint32_t> depth(static_cast<std::size_t>(h.node_count), 0);
  depth[0] = 1;
  for (std::uint64_t i = 0; i < h.node_count; ++i) {
    const FlatNodeRec& node = parts.nodes[i];
    if (depth[static_cast<std::size_t>(i)] == 0) {
      return Status::Corruption("flat arena node unreachable from root");
    }
    if ((node.flags & ~(kNodeLeaf | kNodeHasVp2)) != 0) {
      return Status::Corruption("flat arena node has unknown flags");
    }
    if (node.vp1 >= h.object_count ||
        ((node.flags & kNodeHasVp2) != 0 && node.vp2 >= h.object_count)) {
      return Status::Corruption("flat arena vantage point id out of range");
    }
    if ((node.flags & kNodeLeaf) != 0) {
      if (node.begin > h.entry_count ||
          node.count > h.entry_count - node.begin) {
        return Status::Corruption("flat arena leaf entry range out of bounds");
      }
      if (v2) {
        const FlatLeafPathRec& lp =
            parts.leafpaths[static_cast<std::size_t>(i)];
        if (lp.reserved != 0) {
          return Status::Corruption("flat arena leaf path record malformed");
        }
        if (lp.path_length > h.num_path_distances) {
          return Status::Corruption(
              "flat arena leaf PATH length exceeds header p");
        }
        if (lp.slab_offset != next_slab) {
          return Status::Corruption("flat arena leaf PATH slab not canonical");
        }
        const std::uint64_t slab_len =
            std::uint64_t{lp.path_length} * node.count;
        if (slab_len > h.path_count - next_slab) {
          return Status::Corruption(
              "flat arena leaf PATH slab out of pool range");
        }
        next_slab += slab_len;
      }
      continue;
    }
    if (v2) {
      const FlatLeafPathRec& lp = parts.leafpaths[static_cast<std::size_t>(i)];
      if (lp.slab_offset != 0 || lp.path_length != 0 || lp.reserved != 0) {
        return Status::Corruption(
            "flat arena internal node has a PATH slab record");
      }
    }
    const std::uint64_t bounds_needed = 2 * m + 2 * m * m;
    if (node.begin > h.bounds_count ||
        bounds_needed > h.bounds_count - node.begin) {
      return Status::Corruption("flat arena bounds range out of bounds");
    }
    if (node.children > h.children_count ||
        m * m > h.children_count - node.children) {
      return Status::Corruption("flat arena children range out of bounds");
    }
    if (depth[static_cast<std::size_t>(i)] >= kMaxFlatDepth) {
      return Status::Corruption("flat tree nesting too deep");
    }
    for (std::uint64_t c = 0; c < m * m; ++c) {
      const std::uint32_t child =
          parts.children[static_cast<std::size_t>(node.children + c)];
      if (child == kNullChild) continue;
      if (child >= h.node_count || child <= i) {
        return Status::Corruption("flat arena child link is not preorder");
      }
      if (depth[child] != 0) {
        return Status::Corruption("flat arena node referenced twice");
      }
      depth[child] = depth[static_cast<std::size_t>(i)] + 1;
    }
  }
  if (v2 && next_slab != h.path_count) {
    return Status::Corruption("flat arena PATH slab pool not canonical");
  }
  return parts;
}

}  // namespace mvp::snapshot::flat

#ifndef MVPTREE_SNAPSHOT_ASYNC_LOADER_H_
#define MVPTREE_SNAPSHOT_ASYNC_LOADER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "fault/failpoint.h"
#include "fault/retry.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"
#include "snapshot/snapshot_store.h"

/// \file
/// Hot-swap snapshot loading: bring a new index generation up behind the
/// serving path, then publish it with one atomic pointer swap.
///
/// The serving side holds a GenerationCell and does `cell.Get()` once per
/// query — an atomic shared_ptr load, no lock, no reader registration. The
/// loading side deserializes the whole snapshot off to the side (on the
/// serve pool, shards in parallel) while queries keep running against the
/// old generation, and only when the new index is fully built does
/// Publish() swap the pointer. This is the RCU discipline with shared_ptr
/// as the grace period: in-flight queries that grabbed the old generation
/// keep it alive through their own reference; the last one out frees it.
/// No query ever observes a half-loaded index, and no query ever waits on
/// a loader.
///
/// Thread-safety analysis: the publication point is a single
/// std::atomic<std::shared_ptr> — lock-free on the reader side by
/// construction, so there is no capability to annotate here; the pool the
/// loader runs on carries the lock annotations.

namespace mvp::snapshot {

/// An atomically swappable, versioned reference to the live index
/// generation. Readers call Get() (wait-free on the lock-free shared_ptr
/// implementations; never blocked by writers on any); the loader calls
/// Publish(). `version()` counts publishes, so a caller can observe "a
/// swap happened" without comparing pointers.
template <typename Index>
class GenerationCell {
 public:
  GenerationCell() = default;
  explicit GenerationCell(std::shared_ptr<const Index> initial) {
    Publish(std::move(initial));
  }

  GenerationCell(const GenerationCell&) = delete;
  GenerationCell& operator=(const GenerationCell&) = delete;

  /// The current generation (may be null before the first Publish). The
  /// returned shared_ptr keeps the generation alive for as long as the
  /// query holds it, even across a concurrent Publish.
  std::shared_ptr<const Index> Get() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Atomically replaces the live generation. The old generation is freed
  /// when its last in-flight reader drops it.
  void Publish(std::shared_ptr<const Index> next) {
    current_.store(std::move(next), std::memory_order_release);
    version_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Number of Publish() calls so far.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::shared_ptr<const Index>> current_{nullptr};
  std::atomic<std::uint64_t> version_{0};
};

/// Loads snapshots on a ThreadPool and publishes them into a
/// GenerationCell. The returned future resolves to the load's Status; on
/// error nothing is published and the old generation keeps serving.
class AsyncSnapshotLoader {
 public:
  explicit AsyncSnapshotLoader(serve::ThreadPool* pool) : pool_(pool) {
    MVP_DCHECK(pool != nullptr);
  }

  /// Asynchronously loads `store`'s committed sharded-index generation and
  /// publishes it into `cell` on success. Shard deserialization itself
  /// also fans out across the pool (ParallelFor's helping protocol makes
  /// the nested fan-out deadlock-free). `cell` must outlive the returned
  /// future's completion.
  ///
  /// Transient I/O failures (per `retry.retryable`; default: IOError only)
  /// are retried with exponential backoff + jitter. The cell is published
  /// exactly once, on the attempt that succeeds; exhausted retries — or a
  /// non-retryable failure such as Corruption — publish nothing, and the
  /// old generation keeps serving. The failpoint "snapshot/load" injects a
  /// failure before each load attempt (see docs/fault_injection.md).
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  std::future<Status> LoadAndSwap(
      SnapshotStore store, Metric metric, Codec codec,
      GenerationCell<serve::ShardedMvpIndex<Object, Metric>>* cell,
      fault::RetryOptions retry = {}) {
    MVP_DCHECK(cell != nullptr);
    serve::ThreadPool* pool = pool_;
    return pool_->Submit([store = std::move(store), metric = std::move(metric),
                          codec = std::move(codec), cell, pool,
                          retry = std::move(retry)]() -> Status {
      return fault::RetryWithBackoff(retry, [&]() -> Status {
        if (MVP_FAILPOINT("snapshot/load")) {
          return Status::IOError("injected transient snapshot load failure");
        }
        auto loaded = store.template LoadSharded<Object>(metric, codec, pool);
        if (!loaded.ok()) return loaded.status();
        using Index = serve::ShardedMvpIndex<Object, Metric>;
        cell->Publish(std::make_shared<const Index>(
            std::move(loaded).ValueOrDie().index));
        return Status::OK();
      });
    });
  }

  /// LoadAndSwap for a flat snapshot (SaveFlat/OpenFlat): the published
  /// generation serves straight off the mmap'd container with zero
  /// deserialization, and it lands in the SAME GenerationCell type as a
  /// heap load — the serving path cannot tell (and need not care) which
  /// representation a swap brought in. Same retry/failpoint/publish-once
  /// contract as LoadAndSwap.
  template <metric::MetricFor<std::vector<double>> Metric>
  std::future<Status> LoadAndSwapFlat(
      SnapshotStore store, Metric metric,
      GenerationCell<serve::ShardedMvpIndex<std::vector<double>, Metric>>*
          cell,
      fault::RetryOptions retry = {}) {
    MVP_DCHECK(cell != nullptr);
    serve::ThreadPool* pool = pool_;
    return pool_->Submit([store = std::move(store), metric = std::move(metric),
                          cell, pool, retry = std::move(retry)]() -> Status {
      return fault::RetryWithBackoff(retry, [&]() -> Status {
        if (MVP_FAILPOINT("snapshot/load")) {
          return Status::IOError("injected transient snapshot load failure");
        }
        auto loaded = store.OpenFlat(metric, pool);
        if (!loaded.ok()) return loaded.status();
        using Index = serve::ShardedMvpIndex<std::vector<double>, Metric>;
        cell->Publish(std::make_shared<const Index>(
            std::move(loaded).ValueOrDie().index));
        return Status::OK();
      });
    });
  }

 private:
  serve::ThreadPool* pool_;
};

}  // namespace mvp::snapshot

#endif  // MVPTREE_SNAPSHOT_ASYNC_LOADER_H_

#ifndef MVPTREE_SNAPSHOT_FORMAT_H_
#define MVPTREE_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "common/macros.h"
#include "common/serialize.h"
#include "common/status.h"

/// \file
/// The snapshot container: a chunked, checksummed framing around the
/// BinaryWriter index codecs (docs/index_format.md documents the layout).
///
/// A container holds N independent chunks — one per shard tree, or one
/// whole forest stream. Every chunk carries its own CRC32C, and the header
/// (magic, version, flags, chunk table) carries one too, so truncation and
/// bit-rot anywhere in the file surface as Status::Corruption naming the
/// failing chunk, never as a crash or a silently wrong index. Chunk
/// payloads are located by (offset, length), which is what lets the read
/// path hand each parallel shard loader a zero-copy span of the mmap'd
/// file instead of re-reading a sequential stream.

namespace mvp::snapshot {

inline constexpr std::uint32_t kContainerMagic = 0x5350564d;  // "MVPS"
inline constexpr std::uint32_t kContainerVersion = 1;

/// What a chunk's payload contains.
enum class ChunkKind : std::uint32_t {
  kShardTree = 1,  ///< u64 shard index, u64v global ids, mvp-tree stream
  kForest = 2,     ///< one MvpForest stream
  kFlatShard = 3,  ///< u64 shard index, then one flat mvp-tree arena
                   ///< (snapshot/flat_tree.h), searched in place
  /// u64v: ascending stable ids, entry g is the stable id of global id g.
  /// Written by the online-update checkpoint/compaction path; absent means
  /// the identity mapping (a generation built directly from a dataset).
  kStableIds = 4,
  /// u64v: sorted stable ids erased from the base generation (a delta
  /// generation's tombstone set).
  kTombstones = 5,
  /// A by-reference shard chunk: `[u64 target generation][u64 target chunk
  /// index][u64 payload length][u32 crc32c]`. Stands for the physical
  /// kShardTree chunk it names in an earlier generation's container —
  /// written by compaction when a shard's serialized bytes are identical
  /// to the base's, so unchanged shards cost ~36 bytes instead of a full
  /// rewrite. Refs always name a PHYSICAL chunk (never another ref); the
  /// referenced generation is pinned by the manifest's base_generation
  /// lineage, which PruneStaleGenerations preserves.
  kShardTreeRef = 6,
};

/// File-offset alignment required for ChunkKind::kFlatShard payloads: the
/// arena that follows the payload's 8-byte shard index is read in place as
/// u64/double/32-byte records, so the payload must start on an 8-byte file
/// offset (which mmap's page alignment — and the heap fallback's allocator
/// alignment — then carries into memory).
inline constexpr std::size_t kFlatChunkAlignment = 8;

/// One entry of the container's chunk table.
struct ChunkEntry {
  std::uint32_t kind = 0;
  std::uint64_t offset = 0;  ///< payload start, from file byte 0
  std::uint64_t length = 0;  ///< payload bytes
  std::uint32_t crc32c = 0;  ///< CRC32C of the payload bytes
};

/// Serialized size of the fixed header for `chunks` table entries:
/// magic, version, flags, chunk_count, then per chunk
/// (kind, reserved, offset, length, crc, reserved2), then the header CRC.
inline std::size_t ContainerHeaderBytes(std::size_t chunks) {
  return 4 * 4 + chunks * (4 + 4 + 8 + 8 + 4 + 4) + 4;
}

/// Accumulates chunks in memory and emits the complete container file.
/// Snapshots are bounded by what the index itself holds in RAM, so an
/// in-memory assembly (followed by one crash-safe WriteFileAtomic) is the
/// simple and sufficient write path.
class ContainerWriter {
 public:
  /// Queues a chunk. `alignment` (a power of two) constrains the payload's
  /// file offset; Finalize zero-pads the gap before an aligned chunk.
  /// Readers are oblivious to padding — chunks are located by (offset,
  /// length) — so aligned and unaligned chunks mix freely in one container.
  void AddChunk(ChunkKind kind, std::vector<std::uint8_t> payload,
                std::size_t alignment = 1) {
    MVP_DCHECK(alignment > 0 && (alignment & (alignment - 1)) == 0);
    ChunkEntry entry;
    entry.kind = static_cast<std::uint32_t>(kind);
    entry.length = payload.size();
    entry.crc32c = Crc32c(payload.data(), payload.size());
    entries_.push_back(entry);
    alignments_.push_back(alignment);
    payloads_.push_back(std::move(payload));
  }

  std::size_t num_chunks() const { return entries_.size(); }

  /// Lays out header + payloads and returns the whole file's bytes.
  std::vector<std::uint8_t> Finalize() && {
    std::uint64_t offset = ContainerHeaderBytes(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const std::uint64_t align = alignments_[i];
      offset = (offset + align - 1) & ~(align - 1);
      entries_[i].offset = offset;
      offset += entries_[i].length;
    }
    BinaryWriter header;
    header.Write<std::uint32_t>(kContainerMagic);
    header.Write<std::uint32_t>(kContainerVersion);
    header.Write<std::uint32_t>(0);  // flags, reserved
    header.Write<std::uint32_t>(static_cast<std::uint32_t>(entries_.size()));
    for (const ChunkEntry& entry : entries_) {
      header.Write<std::uint32_t>(entry.kind);
      header.Write<std::uint32_t>(0);  // reserved
      header.Write<std::uint64_t>(entry.offset);
      header.Write<std::uint64_t>(entry.length);
      header.Write<std::uint32_t>(entry.crc32c);
      header.Write<std::uint32_t>(0);  // reserved
    }
    header.Write<std::uint32_t>(
        Crc32c(header.buffer().data(), header.buffer().size()));

    std::vector<std::uint8_t> file = std::move(header).TakeBuffer();
    file.reserve(static_cast<std::size_t>(offset));
    for (std::size_t i = 0; i < payloads_.size(); ++i) {
      file.resize(static_cast<std::size_t>(entries_[i].offset), 0);
      // resize+memcpy rather than a range insert — see the note on
      // BinaryWriter::Write (GCC 12 -Wnonnull false positive).
      if (!payloads_[i].empty()) {
        const std::size_t base = file.size();
        file.resize(base + payloads_[i].size());
        std::memcpy(file.data() + base, payloads_[i].data(),
                    payloads_[i].size());
      }
    }
    return file;
  }

 private:
  std::vector<ChunkEntry> entries_;
  std::vector<std::size_t> alignments_;
  std::vector<std::vector<std::uint8_t>> payloads_;
};

/// Parses and validates a container over externally owned bytes (typically
/// an MmapFile's view, which must outlive the reader).
class ContainerReader {
 public:
  /// Validates magic, version, header CRC and chunk-table bounds. Chunk
  /// payload CRCs are NOT checked here — call VerifyChunk per chunk (the
  /// parallel load path verifies each shard's chunk on its own thread).
  static Result<ContainerReader> Parse(const std::uint8_t* data,
                                       std::size_t size) {
    BinaryReader reader(data, size);
    std::uint32_t magic = 0, version = 0, flags = 0, count = 0;
    MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&magic));
    if (magic != kContainerMagic) {
      return Status::Corruption("bad snapshot container magic");
    }
    MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&version));
    if (version != kContainerVersion) {
      return Status::NotSupported("unknown snapshot container version " +
                                  std::to_string(version));
    }
    MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&flags));
    MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&count));
    // Each table entry is 32 bytes; bound count before reading the table so
    // a corrupt count cannot drive a huge loop.
    if (ContainerHeaderBytes(count) > size) {
      return Status::Corruption("snapshot chunk table exceeds file size");
    }
    ContainerReader container;
    container.data_ = data;
    container.size_ = size;
    container.entries_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      ChunkEntry entry;
      std::uint32_t reserved = 0;
      MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&entry.kind));
      MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&reserved));
      MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&entry.offset));
      MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&entry.length));
      MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&entry.crc32c));
      MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&reserved));
      container.entries_.push_back(entry);
    }
    const std::size_t header_end = reader.position();
    std::uint32_t stored_crc = 0;
    MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&stored_crc));
    if (Crc32c(data, header_end) != stored_crc) {
      return Status::Corruption("snapshot header CRC mismatch");
    }
    for (std::size_t i = 0; i < container.entries_.size(); ++i) {
      const ChunkEntry& entry = container.entries_[i];
      // offset/length are untrusted u64s: check via subtraction, not
      // offset+length, so the sum cannot wrap.
      if (entry.offset > size || entry.length > size - entry.offset) {
        return Status::Corruption("snapshot chunk " + std::to_string(i) +
                                  " extends past end of file");
      }
    }
    return container;
  }

  std::size_t num_chunks() const { return entries_.size(); }
  const ChunkEntry& chunk(std::size_t i) const { return entries_[i]; }

  /// The chunk's payload bytes (within the parsed file view).
  std::pair<const std::uint8_t*, std::size_t> chunk_payload(
      std::size_t i) const {
    const ChunkEntry& entry = entries_[i];
    return {data_ + entry.offset, static_cast<std::size_t>(entry.length)};
  }

  /// Recomputes chunk i's CRC32C; Corruption (naming the chunk index) on
  /// mismatch. This is the bit-rot/truncation detector for payload bytes.
  Status VerifyChunk(std::size_t i) const {
    const auto [payload, length] = chunk_payload(i);
    if (Crc32c(payload, length) != entries_[i].crc32c) {
      return Status::Corruption("snapshot chunk " + std::to_string(i) +
                                " CRC32C mismatch (truncated or corrupt)");
    }
    return Status::OK();
  }

  /// Indexes of all chunks of the given kind, in file order.
  std::vector<std::size_t> ChunksOfKind(ChunkKind kind) const {
    std::vector<std::size_t> found;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].kind == static_cast<std::uint32_t>(kind)) {
        found.push_back(i);
      }
    }
    return found;
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::vector<ChunkEntry> entries_;
};

}  // namespace mvp::snapshot

#endif  // MVPTREE_SNAPSHOT_FORMAT_H_

#ifndef MVPTREE_SNAPSHOT_SNAPSHOT_STORE_H_
#define MVPTREE_SNAPSHOT_SNAPSHOT_STORE_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/serialize.h"
#include "common/status.h"
#include "core/mvp_tree.h"
#include "dynamic/mvp_forest.h"
#include "metric/lp.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"
#include "snapshot/flat_tree.h"
#include "snapshot/format.h"
#include "snapshot/manifest.h"
#include "snapshot/mmap_file.h"

/// \file
/// Durable generational snapshot store for serving indexes.
///
/// Layout (docs/index_format.md has the byte-level formats):
///
///   <dir>/CURRENT            names the live generation ("gen-000007")
///   <dir>/gen-000007/MANIFEST      self-checksummed metadata + build params
///   <dir>/gen-000007/shards.mvps   chunked CRC32C container (one chunk per
///                                  shard tree, or one forest stream)
///
/// Crash safety is the LevelDB/RocksDB discipline: every file is written
/// via temp + fsync + atomic rename (WriteFileAtomic), and a generation
/// becomes live only when CURRENT — itself swapped atomically, last — names
/// it. A kill at ANY point therefore leaves the previous generation fully
/// loadable: half-written files live in a generation directory nothing
/// references yet, and stray `.tmp` files are ignored by the read path.
///
/// The read path mmaps the container and hands each shard loader a
/// zero-copy span of the mapping, so parallel shard deserialization (on a
/// serve::ThreadPool) shares one physical copy of the bytes and streams
/// them straight from the page cache.

namespace mvp::snapshot {

/// A sharded index loaded from a snapshot, with its provenance.
template <typename Object, metric::MetricFor<Object> Metric>
struct LoadedSharded {
  serve::ShardedMvpIndex<Object, Metric> index;
  SnapshotManifest manifest;
  std::uint64_t generation = 0;
  /// Global id -> stable id, ascending (ChunkKind::kStableIds). Empty means
  /// the identity mapping — a generation built directly from a dataset.
  std::vector<std::uint64_t> stable_ids;
};

/// A delta generation's pieces (kDynamicDelta): the mutation forest, its
/// forest-id -> stable-id map, and the stable ids erased from the base.
template <typename Object, metric::MetricFor<Object> Metric>
struct LoadedDelta {
  dynamic::MvpForest<Object, Metric> forest;
  std::vector<std::uint64_t> forest_stable_ids;
  std::vector<std::uint64_t> base_tombstones;
  SnapshotManifest manifest;
  std::uint64_t generation = 0;
};

/// A dynamic forest loaded from a snapshot, with its provenance.
template <typename Object, metric::MetricFor<Object> Metric>
struct LoadedForest {
  dynamic::MvpForest<Object, Metric> forest;
  SnapshotManifest manifest;
  std::uint64_t generation = 0;
};

class SnapshotStore {
 public:
  static constexpr const char* kCurrentFile = "CURRENT";
  static constexpr const char* kManifestFile = "MANIFEST";
  static constexpr const char* kContainerFile = "shards.mvps";
  /// Decimal leader epoch, newline-terminated. Absent = epoch 0 (a store
  /// that has never been under replication fencing).
  static constexpr const char* kEpochFile = "EPOCH";

  explicit SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// The store's persisted leader epoch; 0 when no EPOCH file exists.
  /// Every generation committed while the file holds N is stamped with
  /// epoch N in its manifest, which is what lets a follower reject a
  /// deposed leader's output (docs/network_serving.md, HA section).
  std::uint64_t ReadEpoch() const {
    auto bytes = ReadFile(dir_ + "/" + kEpochFile);
    if (!bytes.ok()) return 0;
    std::uint64_t epoch = 0;
    for (const std::uint8_t c : bytes.value()) {
      if (c == '\n' || c == '\r') break;
      if (c < '0' || c > '9') return 0;
      epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return epoch;
  }

  /// Persists `epoch` atomically. Epochs must only move forward; callers
  /// enforce monotonicity (BumpEpoch, or a follower adopting a leader's
  /// larger epoch).
  Status WriteEpoch(std::uint64_t epoch) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) return Status::IOError("cannot create store dir: " + dir_);
    const std::string text = std::to_string(epoch) + "\n";
    return WriteFileAtomic(dir_ + "/" + kEpochFile,
                           std::vector<std::uint8_t>(text.begin(), text.end()));
  }

  /// Atomically advances the epoch by one and returns the new value — the
  /// promotion step that fences every generation the old leader commits
  /// from now on.
  Result<std::uint64_t> BumpEpoch() {
    const std::uint64_t next = ReadEpoch() + 1;
    MVP_RETURN_NOT_OK(WriteEpoch(next));
    return next;
  }

  std::string GenerationDir(std::uint64_t gen) const {
    return dir_ + "/" + GenerationName(gen);
  }

  /// The live generation number, or NotFound when the store is empty (no
  /// committed CURRENT). A store directory that does not exist yet is
  /// simply an empty store.
  Result<std::uint64_t> CurrentGeneration() const {
    auto bytes = ReadFile(dir_ + "/" + kCurrentFile);
    if (!bytes.ok()) {
      return Status::NotFound("snapshot store has no committed generation");
    }
    std::string name(bytes.value().begin(), bytes.value().end());
    while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
      name.pop_back();
    }
    if (name.rfind("gen-", 0) != 0) {
      return Status::Corruption("CURRENT does not name a generation");
    }
    std::uint64_t gen = 0;
    for (std::size_t i = 4; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        return Status::Corruption("CURRENT does not name a generation");
      }
      gen = gen * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    return gen;
  }

  /// All generation directories present on disk (committed or orphaned),
  /// ascending.
  std::vector<std::uint64_t> ListGenerations() const {
    std::vector<std::uint64_t> gens;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("gen-", 0) != 0) continue;
      std::uint64_t gen = 0;
      bool numeric = name.size() > 4;
      for (std::size_t i = 4; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') {
          numeric = false;
          break;
        }
        gen = gen * 10 + static_cast<std::uint64_t>(name[i] - '0');
      }
      if (numeric) gens.push_back(gen);
    }
    std::sort(gens.begin(), gens.end());
    return gens;
  }

  /// The parsed manifest of generation `gen` (committed or not).
  Result<SnapshotManifest> ReadManifest(std::uint64_t gen) const {
    auto bytes = ReadFile(GenerationDir(gen) + "/" + kManifestFile);
    if (!bytes.ok()) return bytes.status();
    return SnapshotManifest::Parse(bytes.value());
  }

  /// Deletes every generation directory except the committed one and its
  /// lineage — a committed delta generation keeps the full generation it
  /// layers on (base_generation) alive, transitively. Everything else is an
  /// old generation or an orphan from an interrupted save. Returns how many
  /// were removed.
  std::size_t PruneStaleGenerations() {
    std::vector<std::uint64_t> keep;
    auto current = CurrentGeneration();
    if (current.ok()) {
      std::uint64_t gen = current.value();
      // Walk the base chain (bounded: bases strictly decrease). A manifest
      // that cannot be read keeps only what was already collected — prune
      // must never delete a base it cannot prove stale.
      while (gen != 0 &&
             std::find(keep.begin(), keep.end(), gen) == keep.end()) {
        keep.push_back(gen);
        auto manifest = ReadManifest(gen);
        if (!manifest.ok() || manifest.value().base_generation >= gen) break;
        gen = manifest.value().base_generation;
      }
    }
    std::size_t removed = 0;
    for (const std::uint64_t gen : ListGenerations()) {
      if (std::find(keep.begin(), keep.end(), gen) != keep.end()) continue;
      std::error_code ec;
      std::filesystem::remove_all(GenerationDir(gen), ec);
      if (!ec) ++removed;
    }
    return removed;
  }

  // ---- sharded index -------------------------------------------------------

  /// Persists `index` as a new generation and commits it. Returns the new
  /// generation number. The previous generation is left on disk (prune
  /// explicitly); a crash mid-save leaves it the committed one.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  Result<std::uint64_t> SaveSharded(
      const serve::ShardedMvpIndex<Object, Metric>& index,
      const Codec& codec) {
    MVP_RETURN_NOT_OK(RequireHeapRepresentation(index, "SaveSharded"));
    ContainerWriter container;
    SnapshotManifest manifest;
    MVP_RETURN_NOT_OK(
        AppendShardedChunks(index, codec, &container, &manifest));
    return CommitGeneration(std::move(container).Finalize(), manifest);
  }

  /// Persists a checkpoint/compaction result: a sharded index whose global
  /// id g stands for stable id `stable_ids[g]` (ascending; the live ids
  /// that survived erasure), plus the WAL watermark and id high-water mark
  /// that make recovery idempotent. Written as a version-2 manifest so
  /// pre-lineage binaries reject it instead of serving the wrong ids.
  ///
  /// When `reuse_base_generation` names an earlier kShardedMvpIndex
  /// generation, any shard whose freshly serialized bytes are identical to
  /// that generation's chunk is written as a ~36-byte kShardTreeRef instead
  /// of a full rewrite — compaction I/O then scales with churn, not index
  /// size. `reused_chunks` (optional) reports how many shards were
  /// referenced rather than rewritten.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  Result<std::uint64_t> SaveCompacted(
      const serve::ShardedMvpIndex<Object, Metric>& index,
      const std::vector<std::uint64_t>& stable_ids,
      std::uint64_t last_applied_seq, std::uint64_t next_stable_id,
      const Codec& codec, std::uint64_t reuse_base_generation = 0,
      std::uint64_t* reused_chunks = nullptr) {
    MVP_RETURN_NOT_OK(RequireHeapRepresentation(index, "SaveCompacted"));
    if (stable_ids.size() != index.size()) {
      return Status::InvalidArgument(
          "stable-id map size mismatches the index");
    }
    for (std::size_t g = 1; g < stable_ids.size(); ++g) {
      if (stable_ids[g] <= stable_ids[g - 1]) {
        return Status::InvalidArgument("stable ids must be ascending");
      }
    }
    std::vector<std::vector<std::uint8_t>> payloads;
    SnapshotManifest manifest;
    MVP_RETURN_NOT_OK(SerializeShardChunks(index, codec, &payloads, &manifest));

    // Resolve the base generation's shard chunks to PHYSICAL bytes so a new
    // ref never points at another ref. Failure anywhere here only disables
    // reuse — a full rewrite is always correct.
    std::vector<MmapFile> base_mappings;  // keeps payload spans alive
    std::vector<ResolvedShardChunk> base_shards;
    if (reuse_base_generation != 0) {
      auto resolved =
          ResolveShardChunks(reuse_base_generation, &base_mappings);
      if (resolved.ok()) base_shards = std::move(resolved).ValueOrDie();
    }

    ContainerWriter container;
    std::uint64_t reused = 0;
    for (auto& payload : payloads) {
      const ResolvedShardChunk* match = nullptr;
      for (const ResolvedShardChunk& candidate : base_shards) {
        if (candidate.length == payload.size() &&
            std::memcmp(candidate.payload, payload.data(), payload.size()) ==
                0) {
          match = &candidate;
          break;
        }
      }
      if (match != nullptr) {
        BinaryWriter ref;
        ref.Write<std::uint64_t>(match->generation);
        ref.Write<std::uint64_t>(match->chunk_index);
        ref.Write<std::uint64_t>(match->length);
        ref.Write<std::uint32_t>(match->crc32c);
        container.AddChunk(ChunkKind::kShardTreeRef,
                           std::move(ref).TakeBuffer());
        ++reused;
      } else {
        container.AddChunk(ChunkKind::kShardTree, std::move(payload));
      }
    }
    {
      BinaryWriter chunk;
      chunk.WriteVector(stable_ids);
      container.AddChunk(ChunkKind::kStableIds, std::move(chunk).TakeBuffer());
    }
    manifest.last_applied_seq = last_applied_seq;
    manifest.next_stable_id = next_stable_id;
    // Any ref pins its target generation through the prune-surviving
    // lineage chain.
    if (reused != 0) manifest.base_generation = reuse_base_generation;
    if (reused_chunks != nullptr) *reused_chunks = reused;
    return CommitGeneration(std::move(container).Finalize(), manifest);
  }

  /// Persists a delta generation: the mutation forest (memtable), its
  /// forest-id -> stable-id map, and the stable ids erased from the base —
  /// WITHOUT rewriting the base generation's container. Re-snapshot I/O is
  /// therefore proportional to the churn since the base was written, not
  /// to the index size; the base's chunks are reused in place on load.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  Result<std::uint64_t> SaveDelta(
      const dynamic::MvpForest<Object, Metric>& forest,
      const std::vector<std::uint64_t>& forest_stable_ids,
      const std::vector<std::uint64_t>& base_tombstones,
      std::uint64_t base_generation, std::uint64_t last_applied_seq,
      std::uint64_t next_stable_id, const Codec& codec) {
    ContainerWriter container;
    {
      BinaryWriter chunk;
      MVP_RETURN_NOT_OK(forest.Serialize(&chunk, codec));
      container.AddChunk(ChunkKind::kForest, std::move(chunk).TakeBuffer());
    }
    {
      BinaryWriter chunk;
      chunk.WriteVector(forest_stable_ids);
      container.AddChunk(ChunkKind::kStableIds, std::move(chunk).TakeBuffer());
    }
    {
      BinaryWriter chunk;
      chunk.WriteVector(base_tombstones);
      container.AddChunk(ChunkKind::kTombstones,
                         std::move(chunk).TakeBuffer());
    }
    const auto& tree_options = forest.options().tree;
    SnapshotManifest manifest;
    manifest.index_kind = IndexKind::kDynamicDelta;
    manifest.object_count = forest.size();
    manifest.order = tree_options.order;
    manifest.leaf_capacity = tree_options.leaf_capacity;
    manifest.num_path_distances = tree_options.num_path_distances;
    manifest.seed = tree_options.seed;
    manifest.store_exact_bounds = tree_options.store_exact_bounds ? 1 : 0;
    manifest.base_generation = base_generation;
    manifest.last_applied_seq = last_applied_seq;
    manifest.next_stable_id = next_stable_id;
    return CommitGeneration(std::move(container).Finalize(), manifest);
  }

  /// Loads a delta generation's pieces (see SaveDelta). `at_generation`
  /// defaults to the committed generation.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  Result<LoadedDelta<Object, Metric>> LoadDelta(
      Metric metric, const Codec& codec,
      typename dynamic::MvpForest<Object, Metric>::Options options = {},
      std::optional<std::uint64_t> at_generation = std::nullopt) const {
    auto opened = OpenGeneration(at_generation, IndexKind::kDynamicDelta);
    if (!opened.ok()) return opened.status();
    OpenedGeneration gen = std::move(opened).ValueOrDie();
    const SnapshotManifest& manifest = gen.manifest;
    MVP_RETURN_NOT_OK(ValidateManifestParams(manifest));

    const auto forest_chunks = gen.container.ChunksOfKind(ChunkKind::kForest);
    const auto id_chunks = gen.container.ChunksOfKind(ChunkKind::kStableIds);
    const auto tomb_chunks =
        gen.container.ChunksOfKind(ChunkKind::kTombstones);
    if (forest_chunks.size() != 1 || id_chunks.size() != 1 ||
        tomb_chunks.size() != 1 ||
        gen.container.num_chunks() != manifest.num_chunks) {
      return Status::Corruption("snapshot chunk census mismatches manifest");
    }
    for (const std::size_t c :
         {forest_chunks[0], id_chunks[0], tomb_chunks[0]}) {
      MVP_RETURN_NOT_OK(gen.container.VerifyChunk(c));
    }
    MVP_RETURN_NOT_OK(VerifyFingerprint(gen));

    LoadedDelta<Object, Metric> loaded{
        dynamic::MvpForest<Object, Metric>(metric, options), {}, {},
        manifest, gen.generation};
    {
      const auto [payload, length] =
          gen.container.chunk_payload(id_chunks[0]);
      BinaryReader reader(payload, length);
      MVP_RETURN_NOT_OK(reader.ReadVector(&loaded.forest_stable_ids));
      if (!reader.AtEnd()) {
        return Status::Corruption("trailing bytes after stable-id chunk");
      }
    }
    {
      const auto [payload, length] =
          gen.container.chunk_payload(tomb_chunks[0]);
      BinaryReader reader(payload, length);
      MVP_RETURN_NOT_OK(reader.ReadVector(&loaded.base_tombstones));
      if (!reader.AtEnd()) {
        return Status::Corruption("trailing bytes after tombstone chunk");
      }
    }
    options.tree.order = manifest.order;
    options.tree.leaf_capacity = manifest.leaf_capacity;
    options.tree.num_path_distances = manifest.num_path_distances;
    options.tree.seed = manifest.seed;
    options.tree.store_exact_bounds = manifest.store_exact_bounds != 0;
    {
      const auto [payload, length] =
          gen.container.chunk_payload(forest_chunks[0]);
      BinaryReader reader(payload, length);
      auto forest = dynamic::MvpForest<Object, Metric>::Deserialize(
          &reader, std::move(metric), codec, std::move(options));
      if (!forest.ok()) return forest.status();
      if (!reader.AtEnd()) {
        return Status::Corruption("trailing bytes after forest stream");
      }
      if (forest.value().size() != manifest.object_count) {
        return Status::Corruption("snapshot object count mismatches manifest");
      }
      loaded.forest = std::move(forest).ValueOrDie();
    }
    return loaded;
  }

  /// Loads a generation's sharded index (`at_generation` defaults to the
  /// committed one). Every chunk's CRC32C is verified before its bytes are
  /// trusted; the manifest's recorded build parameters are validated
  /// against the deserialized trees. With a pool, shards are verified and
  /// deserialized in parallel.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  Result<LoadedSharded<Object, Metric>> LoadSharded(
      Metric metric, const Codec& codec, serve::ThreadPool* pool = nullptr,
      std::optional<std::uint64_t> at_generation = std::nullopt) const {
    using Index = serve::ShardedMvpIndex<Object, Metric>;
    using Tree = typename Index::Tree;
    using Part = std::pair<Tree, std::vector<std::size_t>>;

    auto opened = OpenGeneration(at_generation, IndexKind::kShardedMvpIndex);
    if (!opened.ok()) return opened.status();
    OpenedGeneration gen = std::move(opened).ValueOrDie();
    const SnapshotManifest& manifest = gen.manifest;
    MVP_RETURN_NOT_OK(ValidateManifestParams(manifest));

    const auto shard_chunks = gen.container.ChunksOfKind(ChunkKind::kShardTree);
    const auto ref_chunks =
        gen.container.ChunksOfKind(ChunkKind::kShardTreeRef);
    const auto id_chunks = gen.container.ChunksOfKind(ChunkKind::kStableIds);
    if (manifest.num_shards < 1 ||
        shard_chunks.size() + ref_chunks.size() != manifest.num_shards ||
        id_chunks.size() > 1 ||
        gen.container.num_chunks() != manifest.num_chunks) {
      return Status::Corruption("snapshot chunk census mismatches manifest");
    }
    std::vector<std::uint64_t> stable_ids;
    if (!id_chunks.empty()) {
      MVP_RETURN_NOT_OK(gen.container.VerifyChunk(id_chunks[0]));
      const auto [payload, length] = gen.container.chunk_payload(id_chunks[0]);
      BinaryReader reader(payload, length);
      MVP_RETURN_NOT_OK(reader.ReadVector(&stable_ids));
      if (!reader.AtEnd()) {
        return Status::Corruption("trailing bytes after stable-id chunk");
      }
      if (stable_ids.size() != manifest.object_count) {
        return Status::Corruption(
            "stable-id map size mismatches snapshot object count");
      }
      for (std::size_t g = 1; g < stable_ids.size(); ++g) {
        if (stable_ids[g] <= stable_ids[g - 1]) {
          return Status::Corruption("snapshot stable ids are not ascending");
        }
      }
    }

    // Resolve by-reference shard chunks (compaction reuse) to the physical
    // spans they name; the extra mappings stay alive through the decode.
    std::vector<MmapFile> ref_mappings;
    auto resolved = ResolveShardChunks(gen.generation, &ref_mappings);
    if (!resolved.ok()) return resolved.status();
    if (resolved.value().size() != manifest.num_shards) {
      return Status::Corruption("snapshot chunk census mismatches manifest");
    }

    const std::size_t k = resolved.value().size();
    std::vector<std::optional<Part>> parts(k);
    std::vector<Status> statuses(k);
    auto load_shard = [&](std::size_t c) {
      const ResolvedShardChunk& source = resolved.value()[c];
      statuses[c] = DeserializeShardPayload<Object, Metric>(
          source.payload, static_cast<std::size_t>(source.length),
          source.crc32c, source.chunk_index, metric, codec, manifest, k,
          &parts);
    };
    if (pool == nullptr || k == 1) {
      for (std::size_t c = 0; c < k; ++c) load_shard(c);
    } else {
      serve::ParallelFor(*pool, k, load_shard);
    }
    for (const Status& status : statuses) MVP_RETURN_NOT_OK(status);
    MVP_RETURN_NOT_OK(VerifyFingerprint(gen, pool));
    for (const auto& part : parts) {
      if (!part.has_value()) {
        return Status::Corruption("snapshot shard chunks do not cover every "
                                  "shard exactly once");
      }
    }

    typename Index::Options options;
    options.num_shards = manifest.num_shards;
    options.tree = parts[0]->first.options();
    options.tree.seed = manifest.seed;  // not in the tree stream (see docs)
    std::vector<Part> owned;
    owned.reserve(k);
    for (auto& part : parts) owned.push_back(std::move(*part));
    auto restored = Index::Restore(options, std::move(owned));
    if (!restored.ok()) return restored.status();
    if (restored.value().size() != manifest.object_count) {
      return Status::Corruption("snapshot object count mismatches manifest");
    }

    LoadedSharded<Object, Metric> loaded{std::move(restored).ValueOrDie(),
                                         manifest, gen.generation,
                                         std::move(stable_ids)};
    return loaded;
  }

  // ---- flat sharded index --------------------------------------------------

  /// Persists `index` as flat arenas — one ChunkKind::kFlatShard chunk per
  /// shard, each holding a position-independent encoding the read path
  /// serves DIRECTLY out of the mmap'd container (OpenFlat). Vector
  /// datasets only (the arena views stored vectors in place). The index
  /// must be in the canonical round-robin layout Build produces (global id
  /// g in shard g % K at local slot g / K): flat chunks store no id map,
  /// so the reader reconstructs ids arithmetically.
  template <metric::MetricFor<std::vector<double>> Metric>
  Result<std::uint64_t> SaveFlat(
      const serve::ShardedMvpIndex<std::vector<double>, Metric>& index) {
    MVP_RETURN_NOT_OK(RequireHeapRepresentation(index, "SaveFlat"));
    const std::size_t k = index.num_shards();
    ContainerWriter container;
    for (std::size_t s = 0; s < k; ++s) {
      const auto& ids = index.shard_global_ids(s);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] != i * k + s) {
          return Status::InvalidArgument(
              "flat snapshots require the canonical round-robin id layout");
        }
      }
      BinaryWriter stream;
      MVP_RETURN_NOT_OK(index.shard(s).Serialize(&stream, VectorCodec{}));
      auto arena = flat::BuildFlatArena(stream.buffer().data(),
                                       stream.buffer().size());
      if (!arena.ok()) return arena.status();
      // Payload: u64 shard index, then the arena. The 8-byte chunk
      // alignment keeps the arena (at payload + 8) on an 8-byte file
      // offset, which mmap carries into memory.
      BinaryWriter payload;
      payload.Write<std::uint64_t>(s);
      std::vector<std::uint8_t> bytes = std::move(payload).TakeBuffer();
      // resize+memcpy rather than a range insert — see the note on
      // BinaryWriter::Write (GCC 12 -Wnonnull false positive).
      const std::size_t base = bytes.size();
      bytes.resize(base + arena.value().size());
      std::memcpy(bytes.data() + base, arena.value().data(),
                  arena.value().size());
      container.AddChunk(ChunkKind::kFlatShard, std::move(bytes),
                         kFlatChunkAlignment);
    }

    const auto params = index.build_params();
    SnapshotManifest manifest;
    manifest.index_kind = IndexKind::kFlatShardedMvpIndex;
    manifest.object_count = index.size();
    manifest.num_shards = params.num_shards;
    manifest.order = params.order;
    manifest.leaf_capacity = params.leaf_capacity;
    manifest.num_path_distances = params.num_path_distances;
    manifest.seed = params.seed;
    manifest.store_exact_bounds = params.store_exact_bounds ? 1 : 0;
    return CommitGeneration(std::move(container).Finalize(), manifest);
  }

  /// Opens the committed generation's flat index for zero-deserialization
  /// serving: map the container, CRC each chunk, validate each arena's
  /// offsets once, and serve searches straight off the mapping. No object
  /// decode, no tree reconstruction, no per-load allocation proportional
  /// to the index — time-to-first-query is the validation scan, not a
  /// rebuild. The returned index keeps the mapping alive; results are
  /// bit-identical to LoadSharded of the same logical index.
  template <metric::MetricFor<std::vector<double>> Metric>
  Result<LoadedSharded<std::vector<double>, Metric>> OpenFlat(
      Metric metric, serve::ThreadPool* pool = nullptr,
      std::optional<std::uint64_t> at_generation = std::nullopt) const {
    using Index = serve::ShardedMvpIndex<std::vector<double>, Metric>;
    using View = typename Index::FlatView;

    // Prefault the mapping: the fingerprint pass below streams every byte
    // immediately, so batch page-table population beats demand faulting.
    auto opened = OpenGeneration(at_generation, IndexKind::kFlatShardedMvpIndex,
                                 /*prefault=*/true);
    if (!opened.ok()) return opened.status();
    OpenedGeneration gen = std::move(opened).ValueOrDie();
    const SnapshotManifest& manifest = gen.manifest;
    MVP_RETURN_NOT_OK(ValidateManifestParams(manifest));

    const auto chunks = gen.container.ChunksOfKind(ChunkKind::kFlatShard);
    if (manifest.num_shards < 1 || chunks.size() != manifest.num_shards ||
        gen.container.num_chunks() != manifest.num_chunks) {
      return Status::Corruption("snapshot chunk census mismatches manifest");
    }

    // The views alias the mapping for the index's whole lifetime, so move
    // it into shared ownership now (its data pointer is stable under move,
    // keeping the ContainerReader's spans valid).
    auto mapping = std::make_shared<MmapFile>(std::move(gen.mapping));

    // One checksum pass, not two: a matching whole-file fingerprint
    // (CRC32C over every byte, plus the length) proves the container is
    // byte-for-byte what was committed, which subsumes each chunk's CRC —
    // so the per-chunk verification is skipped below. Running it first
    // also lets the block-parallel CRC fault the fresh mapping's pages in
    // from all pool threads at once; this pass IS the flat open's cost
    // (arena validation is microseconds), so it is worth spreading.
    if (FingerprintFromCrc(
            ParallelCrc32c(mapping->data(), mapping->size(), pool),
            mapping->size()) != manifest.dataset_fingerprint) {
      return Status::Corruption(
          "snapshot container does not match its manifest fingerprint");
    }

    const std::size_t k = chunks.size();
    std::vector<std::optional<View>> views(k);
    std::vector<Status> statuses(k);
    auto open_shard = [&](std::size_t c) {
      statuses[c] = OpenFlatChunk<Metric>(gen.container, chunks[c], metric,
                                          manifest, k, &views,
                                          /*verify_chunk_crc=*/false);
    };
    if (pool == nullptr || k == 1) {
      for (std::size_t c = 0; c < k; ++c) open_shard(c);
    } else {
      serve::ParallelFor(*pool, k, open_shard);
    }
    for (const Status& status : statuses) MVP_RETURN_NOT_OK(status);

    typename Index::Options options;
    options.num_shards = manifest.num_shards;
    options.tree.order = manifest.order;
    options.tree.leaf_capacity = manifest.leaf_capacity;
    options.tree.num_path_distances = manifest.num_path_distances;
    options.tree.seed = manifest.seed;
    options.tree.store_exact_bounds = manifest.store_exact_bounds != 0;

    std::vector<View> owned;
    owned.reserve(k);
    for (auto& view : views) {
      if (!view.has_value()) {
        return Status::Corruption("snapshot shard chunks do not cover every "
                                  "shard exactly once");
      }
      owned.push_back(std::move(*view));
    }
    auto restored =
        Index::RestoreFlat(options, manifest.object_count, std::move(owned),
                           std::shared_ptr<const void>(mapping));
    if (!restored.ok()) return restored.status();

    LoadedSharded<std::vector<double>, Metric> loaded{
        std::move(restored).ValueOrDie(), manifest, gen.generation,
        /*stable_ids=*/{}};  // flat generations use the identity mapping
    return loaded;
  }

  // ---- dynamic forest ------------------------------------------------------

  /// Persists `forest` (buffer, tombstones and all levels) as a new
  /// committed generation.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  Result<std::uint64_t> SaveForest(
      const dynamic::MvpForest<Object, Metric>& forest, const Codec& codec) {
    BinaryWriter chunk;
    MVP_RETURN_NOT_OK(forest.Serialize(&chunk, codec));
    ContainerWriter container;
    container.AddChunk(ChunkKind::kForest, std::move(chunk).TakeBuffer());

    const auto& tree_options = forest.options().tree;
    SnapshotManifest manifest;
    manifest.index_kind = IndexKind::kMvpForest;
    manifest.object_count = forest.size();
    manifest.order = tree_options.order;
    manifest.leaf_capacity = tree_options.leaf_capacity;
    manifest.num_path_distances = tree_options.num_path_distances;
    manifest.seed = tree_options.seed;
    manifest.store_exact_bounds = tree_options.store_exact_bounds ? 1 : 0;
    return CommitGeneration(std::move(container).Finalize(), manifest);
  }

  /// Loads the committed generation's forest. The manifest's recorded tree
  /// parameters are applied to the returned forest's options, so future
  /// inserts/merges keep building with the saved configuration; the other
  /// `options` fields (buffer capacity, tombstone policy) are the
  /// caller's.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  Result<LoadedForest<Object, Metric>> LoadForest(
      Metric metric, const Codec& codec,
      typename dynamic::MvpForest<Object, Metric>::Options options = {}) const {
    auto opened = OpenGeneration(std::nullopt, IndexKind::kMvpForest);
    if (!opened.ok()) return opened.status();
    OpenedGeneration gen = std::move(opened).ValueOrDie();
    const SnapshotManifest& manifest = gen.manifest;
    MVP_RETURN_NOT_OK(ValidateManifestParams(manifest));

    const auto chunks = gen.container.ChunksOfKind(ChunkKind::kForest);
    if (chunks.size() != 1 || gen.container.num_chunks() != manifest.num_chunks) {
      return Status::Corruption("snapshot chunk census mismatches manifest");
    }
    MVP_RETURN_NOT_OK(gen.container.VerifyChunk(chunks[0]));
    MVP_RETURN_NOT_OK(VerifyFingerprint(gen));
    const auto [payload, length] = gen.container.chunk_payload(chunks[0]);

    options.tree.order = manifest.order;
    options.tree.leaf_capacity = manifest.leaf_capacity;
    options.tree.num_path_distances = manifest.num_path_distances;
    options.tree.seed = manifest.seed;
    options.tree.store_exact_bounds = manifest.store_exact_bounds != 0;

    BinaryReader reader(payload, length);
    auto forest = dynamic::MvpForest<Object, Metric>::Deserialize(
        &reader, std::move(metric), codec, std::move(options));
    if (!forest.ok()) return forest.status();
    if (!reader.AtEnd()) {
      return Status::Corruption("trailing bytes after forest stream");
    }
    if (forest.value().size() != manifest.object_count) {
      return Status::Corruption("snapshot object count mismatches manifest");
    }
    LoadedForest<Object, Metric> loaded{std::move(forest).ValueOrDie(),
                                        manifest, gen.generation};
    return loaded;
  }

 private:
  /// A parsed, integrity-checked (header + manifest, not yet per-chunk)
  /// view of the committed generation. The mmap member owns the bytes the
  /// container reader points into.
  struct OpenedGeneration {
    std::uint64_t generation = 0;
    SnapshotManifest manifest;
    MmapFile mapping;
    ContainerReader container;
  };

  /// Fail-fast guard for every save path that walks heap shard trees: a
  /// flat-serving index has no heap trees to serialize (its shards are
  /// searched in place from the mmap'd snapshot), so saving it again would
  /// dereference nothing useful. The message names BOTH representations —
  /// what the index is (flat/mmap-backed) and what the operation needs
  /// (heap) — so the caller knows which side to change.
  template <typename Object, metric::MetricFor<Object> Metric>
  static Status RequireHeapRepresentation(
      const serve::ShardedMvpIndex<Object, Metric>& index, const char* op) {
    if (index.flat_serving()) {
      return Status::InvalidArgument(
          std::string(op) +
          " requires the heap (deserialized) representation, but this index "
          "is flat-serving (searched in place from the mmap'd snapshot); "
          "reload it with LoadSharded to re-serialize");
    }
    return Status::OK();
  }

  /// Serializes every heap shard (id map + tree stream) to one payload per
  /// shard and fills `manifest` with the index's kind, size and build
  /// parameters. Shared by the save paths, which differ in whether a
  /// payload becomes a physical chunk or a by-reference one.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  static Status SerializeShardChunks(
      const serve::ShardedMvpIndex<Object, Metric>& index, const Codec& codec,
      std::vector<std::vector<std::uint8_t>>* payloads,
      SnapshotManifest* manifest) {
    for (std::size_t s = 0; s < index.num_shards(); ++s) {
      BinaryWriter chunk;
      chunk.Write<std::uint64_t>(s);
      const auto& ids = index.shard_global_ids(s);
      chunk.Write<std::uint64_t>(ids.size());
      for (const std::size_t id : ids) {
        chunk.Write<std::uint64_t>(id);
      }
      MVP_RETURN_NOT_OK(index.shard(s).Serialize(&chunk, codec));
      payloads->push_back(std::move(chunk).TakeBuffer());
    }
    const auto params = index.build_params();
    manifest->index_kind = IndexKind::kShardedMvpIndex;
    manifest->object_count = index.size();
    manifest->num_shards = params.num_shards;
    manifest->order = params.order;
    manifest->leaf_capacity = params.leaf_capacity;
    manifest->num_path_distances = params.num_path_distances;
    manifest->seed = params.seed;
    manifest->store_exact_bounds = params.store_exact_bounds ? 1 : 0;
    return Status::OK();
  }

  /// Serializes every heap shard directly into `container` as physical
  /// kShardTree chunks (see SerializeShardChunks).
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  static Status AppendShardedChunks(
      const serve::ShardedMvpIndex<Object, Metric>& index, const Codec& codec,
      ContainerWriter* container, SnapshotManifest* manifest) {
    std::vector<std::vector<std::uint8_t>> payloads;
    MVP_RETURN_NOT_OK(SerializeShardChunks(index, codec, &payloads, manifest));
    for (auto& payload : payloads) {
      container->AddChunk(ChunkKind::kShardTree, std::move(payload));
    }
    return Status::OK();
  }

  /// One shard chunk resolved to its physical location: the generation and
  /// chunk index actually holding the bytes (never a ref), plus the payload
  /// span and its table CRC. Spans alias mappings owned by the caller.
  struct ResolvedShardChunk {
    std::uint64_t generation = 0;
    std::uint64_t chunk_index = 0;
    const std::uint8_t* payload = nullptr;
    std::uint64_t length = 0;
    std::uint32_t crc32c = 0;
  };

  /// Resolves generation `gen`'s shard chunks — physical kShardTree chunks
  /// in place, kShardTreeRef chunks followed ONE hop to the physical chunk
  /// they name (a ref naming another ref is Corruption; the writer never
  /// produces one). Opened mappings are appended to `*mappings`, which must
  /// outlive every returned span.
  Result<std::vector<ResolvedShardChunk>> ResolveShardChunks(
      std::uint64_t gen, std::vector<MmapFile>* mappings) const {
    auto manifest = ReadManifest(gen);
    if (!manifest.ok()) return manifest.status();
    if (manifest.value().index_kind != IndexKind::kShardedMvpIndex) {
      return Status::InvalidArgument(
          "shard-chunk reuse requires a sharded base generation");
    }
    // gen number -> index into opened containers (below).
    std::vector<std::pair<std::uint64_t, std::size_t>> opened;
    std::vector<ContainerReader> readers;
    auto open_container =
        [&](std::uint64_t g) -> Result<std::size_t> {
      for (const auto& [og, idx] : opened) {
        if (og == g) return idx;
      }
      auto mapping = MmapFile::Open(GenerationDir(g) + "/" + kContainerFile);
      if (!mapping.ok()) return mapping.status();
      mappings->push_back(std::move(mapping).ValueOrDie());
      auto reader = ContainerReader::Parse(mappings->back().data(),
                                           mappings->back().size());
      if (!reader.ok()) return reader.status();
      readers.push_back(std::move(reader).ValueOrDie());
      opened.emplace_back(g, readers.size() - 1);
      return readers.size() - 1;
    };
    auto base = open_container(gen);
    if (!base.ok()) return base.status();
    // Copy: open_container below may grow `readers` and invalidate refs.
    const ContainerReader container = readers[base.value()];

    std::vector<ResolvedShardChunk> resolved;
    for (std::size_t i = 0; i < container.num_chunks(); ++i) {
      const ChunkEntry& entry = container.chunk(i);
      if (entry.kind == static_cast<std::uint32_t>(ChunkKind::kShardTree)) {
        const auto [payload, length] = container.chunk_payload(i);
        resolved.push_back({gen, i, payload, length, entry.crc32c});
        continue;
      }
      if (entry.kind != static_cast<std::uint32_t>(ChunkKind::kShardTreeRef)) {
        continue;
      }
      MVP_RETURN_NOT_OK(container.VerifyChunk(i));
      const auto [ref_payload, ref_length] = container.chunk_payload(i);
      BinaryReader reader(ref_payload, ref_length);
      std::uint64_t target_gen = 0, target_index = 0, length = 0;
      std::uint32_t crc = 0;
      MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&target_gen));
      MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&target_index));
      MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&length));
      MVP_RETURN_NOT_OK(reader.Read<std::uint32_t>(&crc));
      if (!reader.AtEnd()) {
        return Status::Corruption("trailing bytes after shard ref chunk");
      }
      if (target_gen == 0 || target_gen >= gen) {
        return Status::Corruption("shard ref does not name an older "
                                  "generation");
      }
      auto target = open_container(target_gen);
      if (!target.ok()) return target.status();
      const ContainerReader& target_container = readers[target.value()];
      if (target_index >= target_container.num_chunks()) {
        return Status::Corruption("shard ref chunk index out of range");
      }
      const ChunkEntry& target_entry =
          target_container.chunk(static_cast<std::size_t>(target_index));
      if (target_entry.kind !=
          static_cast<std::uint32_t>(ChunkKind::kShardTree)) {
        return Status::Corruption(
            "shard ref does not name a physical shard chunk");
      }
      if (target_entry.length != length || target_entry.crc32c != crc) {
        return Status::Corruption(
            "shard ref disagrees with its target chunk table");
      }
      const auto [payload, payload_length] = target_container.chunk_payload(
          static_cast<std::size_t>(target_index));
      resolved.push_back({target_gen, target_index, payload, payload_length,
                          target_entry.crc32c});
    }
    return resolved;
  }

  /// Fail-fast gate run right after the manifest parses, BEFORE any chunk
  /// bytes are decoded: build parameters that are not even self-consistent
  /// mean the snapshot cannot possibly restore the index it claims, so the
  /// load is rejected as InvalidArgument immediately instead of after
  /// paying (and possibly mis-attributing) a full deserialization.
  static Status ValidateManifestParams(const SnapshotManifest& manifest) {
    if (manifest.order < 2 || manifest.leaf_capacity < 1 ||
        manifest.num_path_distances < 0) {
      return Status::InvalidArgument(
          "snapshot manifest records invalid build parameters");
    }
    return Status::OK();
  }

  /// Fail-fast options check for one shard chunk: peeks the fixed prefix
  /// of the mvp-tree stream (magic, version, m/k/p, bounds flag — the
  /// first 21 bytes) and compares it against the manifest BEFORE the full
  /// tree decode. A readable stream whose recorded parameters disagree
  /// with the manifest is a snapshot paired with the wrong options —
  /// InvalidArgument, caught in microseconds instead of after
  /// deserializing every object. An unreadable/garbled prefix is left for
  /// Tree::Deserialize to diagnose (Corruption/NotSupported, as before).
  static Status ValidateTreeStreamPrefix(const std::uint8_t* stream,
                                         std::size_t length,
                                         const SnapshotManifest& manifest) {
    // Any instantiation carries the same stream-format constants.
    using SourceTree = core::MvpTree<std::vector<double>, metric::L2>;
    BinaryReader peek(stream, length);
    std::uint32_t magic = 0, version = 0;
    std::int32_t order = 0, leaf_capacity = 0, num_paths = 0;
    std::uint8_t bounds = 0;
    if (!peek.Read<std::uint32_t>(&magic).ok() ||
        !peek.Read<std::uint32_t>(&version).ok() ||
        !peek.Read<std::int32_t>(&order).ok() ||
        !peek.Read<std::int32_t>(&leaf_capacity).ok() ||
        !peek.Read<std::int32_t>(&num_paths).ok() ||
        !peek.Read<std::uint8_t>(&bounds).ok() ||
        magic != SourceTree::kMagic || version != SourceTree::kFormatVersion) {
      return Status::OK();  // not a parseable prefix; defer to Deserialize
    }
    if (order != manifest.order || leaf_capacity != manifest.leaf_capacity ||
        num_paths != manifest.num_path_distances ||
        (bounds != 0) != (manifest.store_exact_bounds != 0)) {
      return Status::InvalidArgument(
          "shard tree build parameters mismatch manifest (snapshot was "
          "written with different options)");
    }
    return Status::OK();
  }

  /// CRC32C of `data[0..size)`, block-parallel when a pool is given:
  /// disjoint 4 MiB blocks are checksummed concurrently and stitched with
  /// Crc32cCombine into the exact serial value. On the flat open path the
  /// whole-file fingerprint is the dominant cost (there is no per-node
  /// decode left to hide it behind), so it is worth spreading.
  static std::uint32_t ParallelCrc32c(const std::uint8_t* data,
                                      std::size_t size,
                                      serve::ThreadPool* pool) {
    // 1 MiB blocks: small enough that a ~10 MB container splits across
    // every pool thread, large enough that the per-block Combine stitch
    // (microseconds) stays invisible. On a single-core host the pool adds
    // only context-switch overhead, so fall through to the serial (still
    // instruction-level-parallel) path there.
    constexpr std::size_t kBlock = std::size_t{1} << 20;
    if (pool == nullptr || size <= kBlock ||
        std::thread::hardware_concurrency() < 2) {
      return Crc32c(data, size);
    }
    const std::size_t blocks = (size + kBlock - 1) / kBlock;
    std::vector<std::uint32_t> crcs(blocks);
    serve::ParallelFor(*pool, blocks, [&](std::size_t b) {
      const std::size_t begin = b * kBlock;
      crcs[b] = Crc32c(data + begin, std::min(kBlock, size - begin));
    });
    std::uint32_t crc = crcs[0];
    for (std::size_t b = 1; b < blocks; ++b) {
      const std::size_t begin = b * kBlock;
      crc = Crc32cCombine(crc, crcs[b], std::min(kBlock, size - begin));
    }
    return crc;
  }

  /// Binds the manifest to the container's exact bytes. Checked after the
  /// per-chunk CRCs so that localized damage is reported with its chunk
  /// index; what this adds is detection of a manifest paired with the
  /// wrong (individually self-consistent) container.
  static Status VerifyFingerprint(const OpenedGeneration& gen,
                                  serve::ThreadPool* pool = nullptr) {
    if (FingerprintFromCrc(
            ParallelCrc32c(gen.mapping.data(), gen.mapping.size(), pool),
            gen.mapping.size()) != gen.manifest.dataset_fingerprint) {
      return Status::Corruption(
          "snapshot container does not match its manifest fingerprint");
    }
    return Status::OK();
  }

  static std::string GenerationName(std::uint64_t gen) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "gen-%06llu",
                  static_cast<unsigned long long>(gen));
    return buf;
  }

  /// Writes container + manifest into the next generation directory and
  /// commits it by atomically swapping CURRENT. The commit point is the
  /// CURRENT rename: everything before it is invisible to readers.
  Result<std::uint64_t> CommitGeneration(std::vector<std::uint8_t> container,
                                         SnapshotManifest manifest) {
    manifest.num_chunks = 0;
    {
      // Chunk count lives in the container header we just finalized.
      auto parsed = ContainerReader::Parse(container.data(), container.size());
      MVP_DCHECK(parsed.ok());
      if (parsed.ok()) manifest.num_chunks = parsed.value().num_chunks();
    }
    manifest.payload_bytes = container.size();
    manifest.dataset_fingerprint =
        ContainerFingerprint(container.data(), container.size());
    // Stamp the store's persisted leader epoch. Epoch-0 stores (no EPOCH
    // file) keep writing their previous manifest version byte for byte, so
    // golden snapshots and pre-epoch binaries are untouched.
    if (manifest.leader_epoch == 0) manifest.leader_epoch = ReadEpoch();

    const auto current = CurrentGeneration();
    const std::uint64_t gen = current.ok() ? current.value() + 1 : 1;
    const std::string gen_dir = GenerationDir(gen);
    std::error_code ec;
    std::filesystem::remove_all(gen_dir, ec);  // orphan from an old crash
    std::filesystem::create_directories(gen_dir, ec);
    if (ec) {
      return Status::IOError("cannot create generation dir: " + gen_dir);
    }
    MVP_RETURN_NOT_OK(
        WriteFileAtomic(gen_dir + "/" + kContainerFile, container));
    MVP_RETURN_NOT_OK(
        WriteFileAtomic(gen_dir + "/" + kManifestFile, manifest.Serialize()));
    const std::string name = GenerationName(gen) + std::string("\n");
    MVP_RETURN_NOT_OK(
        WriteFileAtomic(dir_ + "/" + kCurrentFile,
                        std::vector<std::uint8_t>(name.begin(), name.end())));
    return gen;
  }

  /// Opens a generation (header + manifest validation; `at_generation`
  /// empty means the committed one) for a load path expecting a specific
  /// index kind.
  Result<OpenedGeneration> OpenGeneration(
      std::optional<std::uint64_t> at_generation, IndexKind expected_kind,
      bool prefault = false) const {
    OpenedGeneration gen;
    if (at_generation.has_value()) {
      gen.generation = *at_generation;
    } else {
      auto current = CurrentGeneration();
      if (!current.ok()) return current.status();
      gen.generation = current.value();
    }
    const std::string gen_dir = GenerationDir(gen.generation);

    auto manifest_bytes = ReadFile(gen_dir + "/" + kManifestFile);
    if (!manifest_bytes.ok()) return manifest_bytes.status();
    auto manifest = SnapshotManifest::Parse(manifest_bytes.value());
    if (!manifest.ok()) return manifest.status();
    gen.manifest = std::move(manifest).ValueOrDie();
    if (gen.manifest.index_kind != expected_kind) {
      return Status::Corruption("snapshot holds a different index kind");
    }

    auto mapping = MmapFile::Open(gen_dir + "/" + kContainerFile, prefault);
    if (!mapping.ok()) return mapping.status();
    gen.mapping = std::move(mapping).ValueOrDie();
    if (gen.mapping.size() != gen.manifest.payload_bytes) {
      return Status::Corruption("snapshot container size mismatches manifest");
    }
    auto container =
        ContainerReader::Parse(gen.mapping.data(), gen.mapping.size());
    if (!container.ok()) return container.status();
    gen.container = std::move(container).ValueOrDie();
    return gen;
  }

  /// Verifies and deserializes one shard chunk's payload (possibly living
  /// in another generation's container, via kShardTreeRef) into
  /// parts[shard_index]. Static helper so parallel loaders share no
  /// mutable state but the distinct slots they write.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  static Status DeserializeShardPayload(
      const std::uint8_t* payload, std::size_t length, std::uint32_t crc32c,
      std::uint64_t chunk_index, const Metric& metric, const Codec& codec,
      const SnapshotManifest& manifest, std::size_t num_shards,
      std::vector<std::optional<
          std::pair<typename serve::ShardedMvpIndex<Object, Metric>::Tree,
                    std::vector<std::size_t>>>>* parts) {
    using Tree = typename serve::ShardedMvpIndex<Object, Metric>::Tree;
    if (Crc32c(payload, length) != crc32c) {
      // Name the physical chunk so an operator can find the corrupt span.
      return Status::Corruption(
          "snapshot chunk " + std::to_string(chunk_index) +
          " CRC32C mismatch (truncated or corrupt)");
    }
    BinaryReader reader(payload, length);
    std::uint64_t shard = 0;
    MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&shard));
    if (shard >= num_shards) {
      return Status::Corruption("shard index out of range in shard chunk");
    }
    std::vector<std::uint64_t> raw_ids;
    MVP_RETURN_NOT_OK(reader.ReadVector(&raw_ids));
    MVP_RETURN_NOT_OK(ValidateTreeStreamPrefix(
        payload + reader.position(), length - reader.position(), manifest));
    auto tree = Tree::Deserialize(
        &reader, serve::CancelChecked<Metric>(metric), codec);
    if (!tree.ok()) return tree.status();
    if (!reader.AtEnd()) {
      return Status::Corruption("trailing bytes after shard tree stream");
    }
    const auto& options = tree.value().options();
    if (options.order != manifest.order ||
        options.leaf_capacity != manifest.leaf_capacity ||
        options.num_path_distances != manifest.num_path_distances ||
        options.store_exact_bounds != (manifest.store_exact_bounds != 0)) {
      return Status::Corruption(
          "shard tree build parameters mismatch manifest");
    }
    auto& slot = (*parts)[static_cast<std::size_t>(shard)];
    if (slot.has_value()) {
      return Status::Corruption("duplicate shard index in snapshot");
    }
    std::vector<std::size_t> ids(raw_ids.begin(), raw_ids.end());
    slot.emplace(std::move(tree).ValueOrDie(), std::move(ids));
    return Status::OK();
  }

  /// Verifies and opens one flat shard chunk into views[shard_index]:
  /// chunk CRC (unless the caller already proved the whole file's bytes
  /// via the manifest fingerprint, which subsumes every chunk CRC),
  /// shard-index range, arena validation (ParseFlatArena), and the
  /// fail-fast options-vs-manifest comparison — all without decoding a
  /// single object.
  template <metric::MetricFor<std::vector<double>> Metric>
  static Status OpenFlatChunk(
      const ContainerReader& container, std::size_t chunk_index,
      const Metric& metric, const SnapshotManifest& manifest,
      std::size_t num_shards,
      std::vector<std::optional<typename serve::ShardedMvpIndex<
          std::vector<double>, Metric>::FlatView>>* views,
      bool verify_chunk_crc) {
    using View = typename serve::ShardedMvpIndex<std::vector<double>,
                                                 Metric>::FlatView;
    if (verify_chunk_crc) {
      MVP_RETURN_NOT_OK(container.VerifyChunk(chunk_index));
    }
    const auto [payload, length] = container.chunk_payload(chunk_index);
    BinaryReader reader(payload, length);
    std::uint64_t shard = 0;
    MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&shard));
    if (shard >= num_shards) {
      return Status::Corruption("shard index out of range in chunk " +
                                std::to_string(chunk_index));
    }
    auto view = View::Open(payload + sizeof(std::uint64_t),
                           length - sizeof(std::uint64_t),
                           serve::CancelChecked<Metric>(metric));
    if (!view.ok()) return view.status();
    if (view.value().order() != manifest.order ||
        view.value().leaf_capacity() != manifest.leaf_capacity ||
        view.value().num_path_distances() != manifest.num_path_distances ||
        view.value().store_exact_bounds() !=
            (manifest.store_exact_bounds != 0)) {
      return Status::InvalidArgument(
          "flat shard build parameters mismatch manifest (snapshot was "
          "written with different options)");
    }
    auto& slot = (*views)[static_cast<std::size_t>(shard)];
    if (slot.has_value()) {
      return Status::Corruption("duplicate shard index in snapshot");
    }
    slot.emplace(std::move(view).ValueOrDie());
    return Status::OK();
  }

  std::string dir_;
};

}  // namespace mvp::snapshot

#endif  // MVPTREE_SNAPSHOT_SNAPSHOT_STORE_H_

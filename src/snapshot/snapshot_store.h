#ifndef MVPTREE_SNAPSHOT_SNAPSHOT_STORE_H_
#define MVPTREE_SNAPSHOT_SNAPSHOT_STORE_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/serialize.h"
#include "common/status.h"
#include "dynamic/mvp_forest.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"
#include "snapshot/format.h"
#include "snapshot/manifest.h"
#include "snapshot/mmap_file.h"

/// \file
/// Durable generational snapshot store for serving indexes.
///
/// Layout (docs/index_format.md has the byte-level formats):
///
///   <dir>/CURRENT            names the live generation ("gen-000007")
///   <dir>/gen-000007/MANIFEST      self-checksummed metadata + build params
///   <dir>/gen-000007/shards.mvps   chunked CRC32C container (one chunk per
///                                  shard tree, or one forest stream)
///
/// Crash safety is the LevelDB/RocksDB discipline: every file is written
/// via temp + fsync + atomic rename (WriteFileAtomic), and a generation
/// becomes live only when CURRENT — itself swapped atomically, last — names
/// it. A kill at ANY point therefore leaves the previous generation fully
/// loadable: half-written files live in a generation directory nothing
/// references yet, and stray `.tmp` files are ignored by the read path.
///
/// The read path mmaps the container and hands each shard loader a
/// zero-copy span of the mapping, so parallel shard deserialization (on a
/// serve::ThreadPool) shares one physical copy of the bytes and streams
/// them straight from the page cache.

namespace mvp::snapshot {

/// A sharded index loaded from a snapshot, with its provenance.
template <typename Object, metric::MetricFor<Object> Metric>
struct LoadedSharded {
  serve::ShardedMvpIndex<Object, Metric> index;
  SnapshotManifest manifest;
  std::uint64_t generation = 0;
};

/// A dynamic forest loaded from a snapshot, with its provenance.
template <typename Object, metric::MetricFor<Object> Metric>
struct LoadedForest {
  dynamic::MvpForest<Object, Metric> forest;
  SnapshotManifest manifest;
  std::uint64_t generation = 0;
};

class SnapshotStore {
 public:
  static constexpr const char* kCurrentFile = "CURRENT";
  static constexpr const char* kManifestFile = "MANIFEST";
  static constexpr const char* kContainerFile = "shards.mvps";

  explicit SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  std::string GenerationDir(std::uint64_t gen) const {
    return dir_ + "/" + GenerationName(gen);
  }

  /// The live generation number, or NotFound when the store is empty (no
  /// committed CURRENT). A store directory that does not exist yet is
  /// simply an empty store.
  Result<std::uint64_t> CurrentGeneration() const {
    auto bytes = ReadFile(dir_ + "/" + kCurrentFile);
    if (!bytes.ok()) {
      return Status::NotFound("snapshot store has no committed generation");
    }
    std::string name(bytes.value().begin(), bytes.value().end());
    while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
      name.pop_back();
    }
    if (name.rfind("gen-", 0) != 0) {
      return Status::Corruption("CURRENT does not name a generation");
    }
    std::uint64_t gen = 0;
    for (std::size_t i = 4; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        return Status::Corruption("CURRENT does not name a generation");
      }
      gen = gen * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    return gen;
  }

  /// All generation directories present on disk (committed or orphaned),
  /// ascending.
  std::vector<std::uint64_t> ListGenerations() const {
    std::vector<std::uint64_t> gens;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("gen-", 0) != 0) continue;
      std::uint64_t gen = 0;
      bool numeric = name.size() > 4;
      for (std::size_t i = 4; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') {
          numeric = false;
          break;
        }
        gen = gen * 10 + static_cast<std::uint64_t>(name[i] - '0');
      }
      if (numeric) gens.push_back(gen);
    }
    std::sort(gens.begin(), gens.end());
    return gens;
  }

  /// Deletes every generation directory except the committed one — old
  /// generations and orphans from interrupted saves. Never touches the
  /// live generation. Returns how many were removed.
  std::size_t PruneStaleGenerations() {
    const auto current = CurrentGeneration();
    std::size_t removed = 0;
    for (const std::uint64_t gen : ListGenerations()) {
      if (current.ok() && gen == current.value()) continue;
      std::error_code ec;
      std::filesystem::remove_all(GenerationDir(gen), ec);
      if (!ec) ++removed;
    }
    return removed;
  }

  // ---- sharded index -------------------------------------------------------

  /// Persists `index` as a new generation and commits it. Returns the new
  /// generation number. The previous generation is left on disk (prune
  /// explicitly); a crash mid-save leaves it the committed one.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  Result<std::uint64_t> SaveSharded(
      const serve::ShardedMvpIndex<Object, Metric>& index,
      const Codec& codec) {
    ContainerWriter container;
    for (std::size_t s = 0; s < index.num_shards(); ++s) {
      BinaryWriter chunk;
      chunk.Write<std::uint64_t>(s);
      const auto& ids = index.shard_global_ids(s);
      chunk.Write<std::uint64_t>(ids.size());
      for (const std::size_t id : ids) chunk.Write<std::uint64_t>(id);
      MVP_RETURN_NOT_OK(index.shard(s).Serialize(&chunk, codec));
      container.AddChunk(ChunkKind::kShardTree, std::move(chunk).TakeBuffer());
    }

    const auto params = index.build_params();
    SnapshotManifest manifest;
    manifest.index_kind = IndexKind::kShardedMvpIndex;
    manifest.object_count = index.size();
    manifest.num_shards = params.num_shards;
    manifest.order = params.order;
    manifest.leaf_capacity = params.leaf_capacity;
    manifest.num_path_distances = params.num_path_distances;
    manifest.seed = params.seed;
    manifest.store_exact_bounds = params.store_exact_bounds ? 1 : 0;
    return CommitGeneration(std::move(container).Finalize(), manifest);
  }

  /// Loads the committed generation's sharded index. Every chunk's CRC32C
  /// is verified before its bytes are trusted; the manifest's recorded
  /// build parameters are validated against the deserialized trees. With a
  /// pool, shards are verified and deserialized in parallel.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  Result<LoadedSharded<Object, Metric>> LoadSharded(
      Metric metric, const Codec& codec,
      serve::ThreadPool* pool = nullptr) const {
    using Index = serve::ShardedMvpIndex<Object, Metric>;
    using Tree = typename Index::Tree;
    using Part = std::pair<Tree, std::vector<std::size_t>>;

    auto opened = OpenCurrent(IndexKind::kShardedMvpIndex);
    if (!opened.ok()) return opened.status();
    OpenedGeneration gen = std::move(opened).ValueOrDie();
    const SnapshotManifest& manifest = gen.manifest;

    const auto shard_chunks = gen.container.ChunksOfKind(ChunkKind::kShardTree);
    if (manifest.num_shards < 1 ||
        shard_chunks.size() != manifest.num_shards ||
        gen.container.num_chunks() != manifest.num_chunks) {
      return Status::Corruption("snapshot chunk census mismatches manifest");
    }

    const std::size_t k = shard_chunks.size();
    std::vector<std::optional<Part>> parts(k);
    std::vector<Status> statuses(k);
    auto load_shard = [&](std::size_t c) {
      statuses[c] = DeserializeShardChunk<Object, Metric>(
          gen.container, shard_chunks[c], metric, codec, manifest, k, &parts);
    };
    if (pool == nullptr || k == 1) {
      for (std::size_t c = 0; c < k; ++c) load_shard(c);
    } else {
      serve::ParallelFor(*pool, k, load_shard);
    }
    for (const Status& status : statuses) MVP_RETURN_NOT_OK(status);
    MVP_RETURN_NOT_OK(VerifyFingerprint(gen));
    for (const auto& part : parts) {
      if (!part.has_value()) {
        return Status::Corruption("snapshot shard chunks do not cover every "
                                  "shard exactly once");
      }
    }

    typename Index::Options options;
    options.num_shards = manifest.num_shards;
    options.tree = parts[0]->first.options();
    options.tree.seed = manifest.seed;  // not in the tree stream (see docs)
    std::vector<Part> owned;
    owned.reserve(k);
    for (auto& part : parts) owned.push_back(std::move(*part));
    auto restored = Index::Restore(options, std::move(owned));
    if (!restored.ok()) return restored.status();
    if (restored.value().size() != manifest.object_count) {
      return Status::Corruption("snapshot object count mismatches manifest");
    }

    LoadedSharded<Object, Metric> loaded{std::move(restored).ValueOrDie(),
                                         manifest, gen.generation};
    return loaded;
  }

  // ---- dynamic forest ------------------------------------------------------

  /// Persists `forest` (buffer, tombstones and all levels) as a new
  /// committed generation.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  Result<std::uint64_t> SaveForest(
      const dynamic::MvpForest<Object, Metric>& forest, const Codec& codec) {
    BinaryWriter chunk;
    MVP_RETURN_NOT_OK(forest.Serialize(&chunk, codec));
    ContainerWriter container;
    container.AddChunk(ChunkKind::kForest, std::move(chunk).TakeBuffer());

    const auto& tree_options = forest.options().tree;
    SnapshotManifest manifest;
    manifest.index_kind = IndexKind::kMvpForest;
    manifest.object_count = forest.size();
    manifest.order = tree_options.order;
    manifest.leaf_capacity = tree_options.leaf_capacity;
    manifest.num_path_distances = tree_options.num_path_distances;
    manifest.seed = tree_options.seed;
    manifest.store_exact_bounds = tree_options.store_exact_bounds ? 1 : 0;
    return CommitGeneration(std::move(container).Finalize(), manifest);
  }

  /// Loads the committed generation's forest. The manifest's recorded tree
  /// parameters are applied to the returned forest's options, so future
  /// inserts/merges keep building with the saved configuration; the other
  /// `options` fields (buffer capacity, tombstone policy) are the
  /// caller's.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  Result<LoadedForest<Object, Metric>> LoadForest(
      Metric metric, const Codec& codec,
      typename dynamic::MvpForest<Object, Metric>::Options options = {}) const {
    auto opened = OpenCurrent(IndexKind::kMvpForest);
    if (!opened.ok()) return opened.status();
    OpenedGeneration gen = std::move(opened).ValueOrDie();
    const SnapshotManifest& manifest = gen.manifest;

    const auto chunks = gen.container.ChunksOfKind(ChunkKind::kForest);
    if (chunks.size() != 1 || gen.container.num_chunks() != manifest.num_chunks) {
      return Status::Corruption("snapshot chunk census mismatches manifest");
    }
    MVP_RETURN_NOT_OK(gen.container.VerifyChunk(chunks[0]));
    MVP_RETURN_NOT_OK(VerifyFingerprint(gen));
    const auto [payload, length] = gen.container.chunk_payload(chunks[0]);

    options.tree.order = manifest.order;
    options.tree.leaf_capacity = manifest.leaf_capacity;
    options.tree.num_path_distances = manifest.num_path_distances;
    options.tree.seed = manifest.seed;
    options.tree.store_exact_bounds = manifest.store_exact_bounds != 0;

    BinaryReader reader(payload, length);
    auto forest = dynamic::MvpForest<Object, Metric>::Deserialize(
        &reader, std::move(metric), codec, std::move(options));
    if (!forest.ok()) return forest.status();
    if (!reader.AtEnd()) {
      return Status::Corruption("trailing bytes after forest stream");
    }
    if (forest.value().size() != manifest.object_count) {
      return Status::Corruption("snapshot object count mismatches manifest");
    }
    LoadedForest<Object, Metric> loaded{std::move(forest).ValueOrDie(),
                                        manifest, gen.generation};
    return loaded;
  }

 private:
  /// A parsed, integrity-checked (header + manifest, not yet per-chunk)
  /// view of the committed generation. The mmap member owns the bytes the
  /// container reader points into.
  struct OpenedGeneration {
    std::uint64_t generation = 0;
    SnapshotManifest manifest;
    MmapFile mapping;
    ContainerReader container;
  };

  /// Binds the manifest to the container's exact bytes. Checked after the
  /// per-chunk CRCs so that localized damage is reported with its chunk
  /// index; what this adds is detection of a manifest paired with the
  /// wrong (individually self-consistent) container.
  static Status VerifyFingerprint(const OpenedGeneration& gen) {
    if (ContainerFingerprint(gen.mapping.data(), gen.mapping.size()) !=
        gen.manifest.dataset_fingerprint) {
      return Status::Corruption(
          "snapshot container does not match its manifest fingerprint");
    }
    return Status::OK();
  }

  static std::string GenerationName(std::uint64_t gen) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "gen-%06llu",
                  static_cast<unsigned long long>(gen));
    return buf;
  }

  /// Writes container + manifest into the next generation directory and
  /// commits it by atomically swapping CURRENT. The commit point is the
  /// CURRENT rename: everything before it is invisible to readers.
  Result<std::uint64_t> CommitGeneration(std::vector<std::uint8_t> container,
                                         SnapshotManifest manifest) {
    manifest.num_chunks = 0;
    {
      // Chunk count lives in the container header we just finalized.
      auto parsed = ContainerReader::Parse(container.data(), container.size());
      MVP_DCHECK(parsed.ok());
      if (parsed.ok()) manifest.num_chunks = parsed.value().num_chunks();
    }
    manifest.payload_bytes = container.size();
    manifest.dataset_fingerprint =
        ContainerFingerprint(container.data(), container.size());

    const auto current = CurrentGeneration();
    const std::uint64_t gen = current.ok() ? current.value() + 1 : 1;
    const std::string gen_dir = GenerationDir(gen);
    std::error_code ec;
    std::filesystem::remove_all(gen_dir, ec);  // orphan from an old crash
    std::filesystem::create_directories(gen_dir, ec);
    if (ec) {
      return Status::IOError("cannot create generation dir: " + gen_dir);
    }
    MVP_RETURN_NOT_OK(
        WriteFileAtomic(gen_dir + "/" + kContainerFile, container));
    MVP_RETURN_NOT_OK(
        WriteFileAtomic(gen_dir + "/" + kManifestFile, manifest.Serialize()));
    const std::string name = GenerationName(gen) + std::string("\n");
    MVP_RETURN_NOT_OK(
        WriteFileAtomic(dir_ + "/" + kCurrentFile,
                        std::vector<std::uint8_t>(name.begin(), name.end())));
    return gen;
  }

  Result<OpenedGeneration> OpenCurrent(IndexKind expected_kind) const {
    auto current = CurrentGeneration();
    if (!current.ok()) return current.status();
    OpenedGeneration gen;
    gen.generation = current.value();
    const std::string gen_dir = GenerationDir(gen.generation);

    auto manifest_bytes = ReadFile(gen_dir + "/" + kManifestFile);
    if (!manifest_bytes.ok()) return manifest_bytes.status();
    auto manifest = SnapshotManifest::Parse(manifest_bytes.value());
    if (!manifest.ok()) return manifest.status();
    gen.manifest = std::move(manifest).ValueOrDie();
    if (gen.manifest.index_kind != expected_kind) {
      return Status::Corruption("snapshot holds a different index kind");
    }

    auto mapping = MmapFile::Open(gen_dir + "/" + kContainerFile);
    if (!mapping.ok()) return mapping.status();
    gen.mapping = std::move(mapping).ValueOrDie();
    if (gen.mapping.size() != gen.manifest.payload_bytes) {
      return Status::Corruption("snapshot container size mismatches manifest");
    }
    auto container =
        ContainerReader::Parse(gen.mapping.data(), gen.mapping.size());
    if (!container.ok()) return container.status();
    gen.container = std::move(container).ValueOrDie();
    return gen;
  }

  /// Verifies and deserializes one shard chunk into parts[shard_index].
  /// Static helper so parallel loaders share no mutable state but the
  /// distinct slots they write.
  template <typename Object, metric::MetricFor<Object> Metric,
            CodecFor<Object> Codec>
  static Status DeserializeShardChunk(
      const ContainerReader& container, std::size_t chunk_index,
      const Metric& metric, const Codec& codec,
      const SnapshotManifest& manifest, std::size_t num_shards,
      std::vector<std::optional<
          std::pair<typename serve::ShardedMvpIndex<Object, Metric>::Tree,
                    std::vector<std::size_t>>>>* parts) {
    using Tree = typename serve::ShardedMvpIndex<Object, Metric>::Tree;
    MVP_RETURN_NOT_OK(container.VerifyChunk(chunk_index));
    const auto [payload, length] = container.chunk_payload(chunk_index);
    BinaryReader reader(payload, length);
    std::uint64_t shard = 0;
    MVP_RETURN_NOT_OK(reader.Read<std::uint64_t>(&shard));
    if (shard >= num_shards) {
      return Status::Corruption("shard index out of range in chunk " +
                                std::to_string(chunk_index));
    }
    std::vector<std::uint64_t> raw_ids;
    MVP_RETURN_NOT_OK(reader.ReadVector(&raw_ids));
    auto tree = Tree::Deserialize(
        &reader, serve::CancelChecked<Metric>(metric), codec);
    if (!tree.ok()) return tree.status();
    if (!reader.AtEnd()) {
      return Status::Corruption("trailing bytes after shard tree in chunk " +
                                std::to_string(chunk_index));
    }
    const auto& options = tree.value().options();
    if (options.order != manifest.order ||
        options.leaf_capacity != manifest.leaf_capacity ||
        options.num_path_distances != manifest.num_path_distances ||
        options.store_exact_bounds != (manifest.store_exact_bounds != 0)) {
      return Status::Corruption(
          "shard tree build parameters mismatch manifest");
    }
    auto& slot = (*parts)[static_cast<std::size_t>(shard)];
    if (slot.has_value()) {
      return Status::Corruption("duplicate shard index in snapshot");
    }
    std::vector<std::size_t> ids(raw_ids.begin(), raw_ids.end());
    slot.emplace(std::move(tree).ValueOrDie(), std::move(ids));
    return Status::OK();
  }

  std::string dir_;
};

}  // namespace mvp::snapshot

#endif  // MVPTREE_SNAPSHOT_SNAPSHOT_STORE_H_

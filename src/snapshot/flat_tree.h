#ifndef MVPTREE_SNAPSHOT_FLAT_TREE_H_
#define MVPTREE_SNAPSHOT_FLAT_TREE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/query.h"
#include "common/status.h"
#include "core/search_shared.h"
#include "metric/kernels/kernels.h"

/// \file
/// The flat mvp-tree: a position-independent, offset-based encoding of one
/// shard tree in a single contiguous arena, searched directly out of the
/// mmap'd snapshot container — zero deserialization, zero per-load
/// allocation. Where the heap tree pays a full pointer-tree reconstruction
/// (object decode, node allocation, bound-vector copies) before its first
/// query, opening a flat arena is: map the file, CRC the chunk, validate
/// the arena's offsets once, and search.
///
/// Layout (all integers little-endian; docs/index_format.md has the
/// byte-level diagrams; every section starts on an 8-byte boundary within
/// the arena, and the snapshot writer 8-aligns the arena's file offset so
/// in-memory records are naturally aligned under both mmap and the heap
/// fallback).
///
/// Version 1 (still read; writers emit v2):
///
///   FlatHeaderRec          fixed 144 bytes
///   objects   f64[object_count * dim]   vectors, row-major, viewed in place
///   path      f64[path_count]           the tree's shared PATH pool
///   bounds    f64[bounds_count]         per internal node at `begin`:
///                                       lower1[m] upper1[m]
///                                       lower2[m*m] upper2[m*m]
///   entries   FlatLeafEntryRec[entry_count]   leaf points (D1/D2 + PATH ref)
///   nodes     FlatNodeRec[node_count]         preorder; root is node 0
///   children  u32[children_count]       m*m slots per internal node;
///                                       0xFFFFFFFF = absent child
///
/// Version 2 keeps the 144-byte header prefix byte-compatible (same fields,
/// same offsets) and appends a 48-byte extension, then swaps the leaf
/// encoding from array-of-structs to structure-of-arrays so range-search
/// leaf filtering runs as branchless SIMD compare+mask sweeps straight off
/// the mmap (metric/kernels/kernels.h):
///
///   FlatHeaderRec + FlatHeaderExtRec   fixed 192 bytes
///   objects   f64[object_count * dim]     unchanged
///   path      f64[path_count]             now per-leaf *column-major* PATH
///                                         slabs: leaf slabs in node order,
///                                         slab[j*count + i] = PATH[j] of
///                                         entry i — a contiguous run per
///                                         vantage point, swept 64 wide
///   bounds    f64[bounds_count]           unchanged
///   ids       u32[entry_count]            at entries_offset: leaf point ids
///   d1        f64[entry_count]            contiguous D1[] column
///   d2        f64[entry_count]            contiguous D2[] column
///   leafpaths FlatLeafPathRec[node_count] per-node slab offset + length
///                                         (zeroed for internal nodes)
///   nodes     FlatNodeRec[node_count]     unchanged
///   children  u32[children_count]         unchanged
///
/// ids/d1/d2 are parallel arrays indexed by a leaf's `begin..begin+count`.
/// Slabs are canonical: laid end to end in node order with no gaps or
/// overlap, which ParseFlatArena enforces, so a hostile arena cannot alias
/// slabs or leave them misaligned.
///
/// Safety: the arena is untrusted bytes. ParseFlatArena bounds-checks every
/// offset/count, and a structural pass enforces that child links point
/// strictly forward (preorder), that every node is referenced exactly once,
/// and that depth stays within the same cap as heap deserialization — so a
/// corrupted arena yields Status::Corruption at open, never a crash or an
/// unterminated traversal. The searches mirror core::MvpTree statement for
/// statement (sharing core/search_shared.h) so results and
/// distance-computation counts are bit-identical to the heap tree built
/// from the same stream.

namespace mvp::snapshot::flat {

inline constexpr std::uint32_t kFlatMagic = 0x5a50564d;  // "MVPZ"
inline constexpr std::uint32_t kFlatVersionV1 = 1;
inline constexpr std::uint32_t kFlatVersionV2 = 2;
inline constexpr std::uint32_t kFlatVersionLatest = kFlatVersionV2;
inline constexpr std::uint64_t kNoNode = ~std::uint64_t{0};
inline constexpr std::uint32_t kNullChild = 0xffffffffu;
inline constexpr std::size_t kFlatAlignment = 8;
/// Same nesting cap as MvpTree deserialization.
inline constexpr std::size_t kMaxFlatDepth = 512;

/// Fixed arena header. POD with explicit field order chosen so the struct
/// has no padding; written/read by memcpy on the (little-endian,
/// byte-addressable) targets this library supports.
struct FlatHeaderRec {
  std::uint32_t magic = kFlatMagic;
  std::uint32_t version = kFlatVersionLatest;
  std::uint32_t order = 0;               ///< m
  std::uint32_t leaf_capacity = 0;       ///< k
  std::uint32_t num_path_distances = 0;  ///< p
  std::uint32_t flags = 0;               ///< bit0 = store_exact_bounds
  std::uint32_t dim = 0;                 ///< dimensions per stored vector
  std::uint32_t reserved = 0;
  std::uint64_t object_count = 0;
  std::uint64_t node_count = 0;
  std::uint64_t root = kNoNode;
  std::uint64_t objects_offset = 0;
  std::uint64_t path_offset = 0;
  std::uint64_t path_count = 0;
  std::uint64_t bounds_offset = 0;
  std::uint64_t bounds_count = 0;
  std::uint64_t entries_offset = 0;
  std::uint64_t entry_count = 0;
  std::uint64_t nodes_offset = 0;
  std::uint64_t children_offset = 0;
  std::uint64_t children_count = 0;
  std::uint64_t arena_bytes = 0;
};
static_assert(sizeof(FlatHeaderRec) == 144, "header layout drifted");

/// v2 header extension, immediately after FlatHeaderRec. The 144-byte prefix
/// keeps its exact v1 layout (entries_offset holds the ids section,
/// path_offset/path_count hold the slab pool), so offset-based tooling and
/// the corruption sweep's fixed pokes stay meaningful across versions.
struct FlatHeaderExtRec {
  std::uint64_t d1_offset = 0;
  std::uint64_t d2_offset = 0;
  std::uint64_t leafpaths_offset = 0;
  std::uint64_t reserved0 = 0;
  std::uint64_t reserved1 = 0;
  std::uint64_t reserved2 = 0;
};
static_assert(sizeof(FlatHeaderExtRec) == 48, "header ext layout drifted");

inline constexpr std::size_t kFlatHeaderBytesV1 = sizeof(FlatHeaderRec);
inline constexpr std::size_t kFlatHeaderBytesV2 =
    sizeof(FlatHeaderRec) + sizeof(FlatHeaderExtRec);

inline constexpr std::uint32_t kHeaderExactBounds = 1u << 0;

/// One tree node, 32 bytes. Leaves: `begin`/`count` select a run of leaf
/// entries. Internal nodes: `begin` indexes the bounds pool (2m + 2m*m
/// doubles), `children` indexes m*m slots in the children pool.
struct FlatNodeRec {
  std::uint32_t flags = 0;  ///< bit0 = leaf, bit1 = has_vp2
  std::uint32_t vp1 = 0;
  std::uint32_t vp2 = 0;
  std::uint32_t count = 0;
  std::uint64_t begin = 0;
  std::uint64_t children = 0;
};
static_assert(sizeof(FlatNodeRec) == 32, "node layout drifted");

inline constexpr std::uint32_t kNodeLeaf = 1u << 0;
inline constexpr std::uint32_t kNodeHasVp2 = 1u << 1;

/// One v1 leaf point, 32 bytes: the paper's D1[i]/D2[i] plus its PATH slice.
struct FlatLeafEntryRec {
  std::uint32_t id = 0;
  std::uint32_t path_offset = 0;
  std::uint32_t path_length = 0;
  std::uint32_t reserved = 0;
  double d1 = 0.0;
  double d2 = 0.0;
};
static_assert(sizeof(FlatLeafEntryRec) == 32, "leaf entry layout drifted");

/// One v2 per-node PATH slab descriptor, 16 bytes. For a leaf,
/// `slab_offset` indexes the path pool and the slab holds
/// `path_length * count` doubles column-major (slab[j*count + i]); every
/// entry of a leaf shares one path_length. Zeroed for internal nodes.
struct FlatLeafPathRec {
  std::uint64_t slab_offset = 0;
  std::uint32_t path_length = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(FlatLeafPathRec) == 16, "leaf path layout drifted");

/// Zero-copy view of one stored vector inside the arena. Duck-compatible
/// with std::vector<double> for the Lp metrics' templated operator(), so
/// d(query, stored) runs on the mapped bytes with no materialization.
class VectorView {
 public:
  VectorView(const double* data, std::size_t dim) : data_(data), dim_(dim) {}
  std::size_t size() const { return dim_; }
  double operator[](std::size_t i) const { return data_[i]; }
  const double* data() const { return data_; }

 private:
  const double* data_;
  std::size_t dim_;
};

/// Transcodes one serialized MvpTree stream (the exact bytes
/// MvpTree::Serialize + VectorCodec emit — vector objects only) into a
/// self-contained flat arena. Validates the stream as strictly as
/// MvpTree::Deserialize does; the result is byte-stable for a given stream
/// and version. Writes kFlatVersionLatest; the explicit-version overload
/// exists so tests and corpus generators can still produce v1 arenas.
Result<std::vector<std::uint8_t>> BuildFlatArena(const std::uint8_t* stream,
                                                 std::size_t length);
Result<std::vector<std::uint8_t>> BuildFlatArena(const std::uint8_t* stream,
                                                 std::size_t length,
                                                 std::uint32_t version);

/// A bounds-checked, structurally validated view into a flat arena. All
/// pointers alias the caller's bytes, which must outlive the view.
struct FlatArenaParts {
  FlatHeaderRec header;
  FlatHeaderExtRec ext;  ///< zeroed for v1 arenas
  const double* objects = nullptr;
  const double* path = nullptr;
  const double* bounds = nullptr;
  const FlatLeafEntryRec* entries = nullptr;  ///< v1 only
  const FlatNodeRec* nodes = nullptr;
  const std::uint32_t* children = nullptr;
  // v2 structure-of-arrays leaf sections (null for v1 arenas).
  const std::uint32_t* ids = nullptr;
  const double* d1 = nullptr;
  const double* d2 = nullptr;
  const FlatLeafPathRec* leafpaths = nullptr;
};

/// Parses + validates an arena (untrusted bytes): header sanity, section
/// bounds, id ranges, PATH slices, preorder child links, depth cap. Every
/// corrupt offset yields Corruption; a returned view is safe to traverse.
Result<FlatArenaParts> ParseFlatArena(const std::uint8_t* data,
                                      std::size_t size);

/// Read-only mvp-tree over a validated flat arena. Query objects are dense
/// real vectors; `Metric` must accept (query, VectorView) — all bundled Lp
/// metrics (and serve::CancelChecked wrappers of them) do.
///
/// Search results, their order of discovery, and every SearchStats counter
/// are bit-identical to core::MvpTree over the same logical tree: both
/// traversals evaluate the same metric calls in the same sequence
/// (tests/flat_equivalence_test.cc holds this to 1k+ random queries).
/// Thread safety: immutable after Open; const searches are freely
/// concurrent (same contract as MvpTree).
template <typename Metric>
class FlatTreeView {
 public:
  /// Validates `data` and binds the view. The bytes must stay alive and
  /// unmodified for the view's lifetime (the snapshot path guarantees this
  /// by keeping the MmapFile alive alongside the index).
  static Result<FlatTreeView> Open(const std::uint8_t* data, std::size_t size,
                                   Metric metric) {
    auto parts = ParseFlatArena(data, size);
    if (!parts.ok()) return parts.status();
    return FlatTreeView(std::move(parts).ValueOrDie(), std::move(metric));
  }

  std::size_t size() const {
    return static_cast<std::size_t>(p_.header.object_count);
  }
  int order() const { return static_cast<int>(p_.header.order); }
  int leaf_capacity() const {
    return static_cast<int>(p_.header.leaf_capacity);
  }
  int num_path_distances() const {
    return static_cast<int>(p_.header.num_path_distances);
  }
  bool store_exact_bounds() const {
    return (p_.header.flags & kHeaderExactBounds) != 0;
  }
  std::size_t dim() const { return p_.header.dim; }
  std::size_t node_count() const {
    return static_cast<std::size_t>(p_.header.node_count);
  }
  std::uint32_t version() const { return p_.header.version; }
  const Metric& metric() const { return metric_; }

  /// Root vantage-point vectors, for batch priming (core::RootPrime):
  /// returns false on an empty tree; *vp2 is null when the root has a single
  /// vantage point. Pointers alias the arena.
  bool RootVantagePoints(const double** vp1, const double** vp2) const {
    if (p_.header.root == kNoNode) return false;
    const FlatNodeRec& root = p_.nodes[p_.header.root];
    *vp1 = p_.objects + root.vp1 * static_cast<std::size_t>(p_.header.dim);
    *vp2 = HasVp2(root) ? p_.objects +
                              root.vp2 * static_cast<std::size_t>(p_.header.dim)
                        : nullptr;
    return true;
  }

  VectorView object(std::size_t id) const {
    MVP_DCHECK(id < p_.header.object_count);
    return VectorView(p_.objects + id * p_.header.dim, p_.header.dim);
  }

  /// Mirrors MvpTree::RangeSearch (sorted by distance then id).
  template <typename Query>
  std::vector<Neighbor> RangeSearch(const Query& query, double radius,
                                    SearchStats* stats = nullptr) const {
    std::vector<Neighbor> result;
    SearchStats local;
    RangeSearchInto(query, radius, &result, &local);
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) core::MergeSearchStats(stats, local);
    return result;
  }

  /// Mirrors MvpTree::RangeSearchInto — unsorted append into `*out`; a
  /// cancellation unwinding mid-search leaves the hits found so far.
  /// `root_prime` optionally substitutes precomputed root vantage-point
  /// distances (serve::RunBatch priming); results and stats are bit-identical
  /// with or without it.
  template <typename Query>
  void RangeSearchInto(const Query& query, double radius,
                       std::vector<Neighbor>* out,
                       SearchStats* stats = nullptr,
                       const core::RootPrime* root_prime = nullptr) const {
    MVP_DCHECK(radius >= 0);
    MVP_DCHECK(out != nullptr);
    SearchStats local;
    SearchStats& sink = stats != nullptr ? *stats : local;
    if (p_.header.root != kNoNode) {
      std::vector<double> qpath;
      qpath.reserve(p_.header.num_path_distances);
      RangeSearchNode(p_.header.root, query, radius, qpath, *out, sink,
                      root_prime);
    }
  }

  /// Mirrors MvpTree::KnnSearch (sorted by distance then id).
  template <typename Query>
  std::vector<Neighbor> KnnSearch(const Query& query, std::size_t k,
                                  SearchStats* stats = nullptr) const {
    std::vector<Neighbor> heap;
    SearchStats local;
    KnnSearchInto(query, k, &heap, &local);
    std::sort_heap(heap.begin(), heap.end(), NeighborLess);
    if (stats != nullptr) core::MergeSearchStats(stats, local);
    return heap;
  }

  /// Mirrors MvpTree::KnnSearchInto — `*heap` is a max-heap under
  /// NeighborLess holding the best <= k seen so far.
  template <typename Query>
  void KnnSearchInto(const Query& query, std::size_t k,
                     std::vector<Neighbor>* heap,
                     SearchStats* stats = nullptr,
                     const core::RootPrime* root_prime = nullptr) const {
    MVP_DCHECK(heap != nullptr);
    SearchStats local;
    SearchStats& sink = stats != nullptr ? *stats : local;
    if (p_.header.root != kNoNode && k > 0) {
      std::vector<double> qpath;
      qpath.reserve(p_.header.num_path_distances);
      KnnSearchNode(p_.header.root, query, k, qpath, *heap, sink, root_prime);
    }
  }

 private:
  FlatTreeView(FlatArenaParts parts, Metric metric)
      : p_(parts), metric_(std::move(metric)) {}

  bool IsLeaf(const FlatNodeRec& n) const { return (n.flags & kNodeLeaf) != 0; }
  bool HasVp2(const FlatNodeRec& n) const {
    return (n.flags & kNodeHasVp2) != 0;
  }

  // The traversals below are line-for-line transcriptions of
  // MvpTree::RangeSearchNode / KnnSearchNode / FilterLeaf with pointer
  // dereferences replaced by arena index arithmetic. Keep them in lockstep
  // with core/mvp_tree.h: any divergence is a bug the equivalence suite
  // is designed to catch.

  template <typename Query>
  void RangeSearchNode(std::uint64_t ni, const Query& query, double radius,
                       std::vector<double>& qpath,
                       std::vector<Neighbor>& result, SearchStats& stats,
                       const core::RootPrime* prime = nullptr) const {
    const FlatNodeRec& node = p_.nodes[ni];
    ++stats.nodes_visited;
    // A primed distance replaces the metric call with its precomputed
    // (bit-identical) value but is still charged to the stats and the
    // cancellation budget, so batched and unbatched searches agree exactly.
    double d1;
    if (prime != nullptr && prime->has_d1) {
      core::ConsumePrimedDistance(metric_);
      d1 = prime->d1;
    } else {
      d1 = metric_(query, object(node.vp1));
    }
    ++stats.distance_computations;
    if (d1 <= radius) result.push_back(Neighbor{node.vp1, d1});
    double d2 = 0.0;
    if (HasVp2(node)) {
      if (prime != nullptr && prime->has_d2) {
        core::ConsumePrimedDistance(metric_);
        d2 = prime->d2;
      } else {
        d2 = metric_(query, object(node.vp2));
      }
      ++stats.distance_computations;
      if (d2 <= radius) result.push_back(Neighbor{node.vp2, d2});
    }

    if (IsLeaf(node)) {
      FilterLeaf(node, query, radius, d1, d2, qpath, &result, nullptr, 0,
                 stats);
      return;
    }

    const std::size_t p = p_.header.num_path_distances;
    std::size_t pushed = 0;
    if (qpath.size() < p) {
      qpath.push_back(d1);
      ++pushed;
      if (qpath.size() < p) {
        qpath.push_back(d2);
        ++pushed;
      }
    }

    const std::size_t m = p_.header.order;
    const double* lower1 = p_.bounds + node.begin;
    const double* upper1 = lower1 + m;
    const double* lower2 = upper1 + m;
    const double* upper2 = lower2 + m * m;
    const std::uint32_t* kids = p_.children + node.children;
    for (std::size_t g = 0; g < m; ++g) {
      if (!core::ShellIntersects(d1, radius, lower1[g], upper1[g])) continue;
      for (std::size_t s = 0; s < m; ++s) {
        const std::size_t c = g * m + s;
        if (kids[c] == kNullChild) continue;
        if (!core::ShellIntersects(d2, radius, lower2[c], upper2[c])) continue;
        RangeSearchNode(kids[c], query, radius, qpath, result, stats);
      }
    }
    qpath.resize(qpath.size() - pushed);
  }

  template <typename Query>
  void FilterLeaf(const FlatNodeRec& node, const Query& query, double radius,
                  double d1, double d2, const std::vector<double>& qpath,
                  std::vector<Neighbor>* range_out,
                  std::vector<Neighbor>* heap_out, std::size_t k,
                  SearchStats& stats) const {
    if (p_.header.version >= kFlatVersionV2) {
      FilterLeafV2(node, query, radius, d1, d2, qpath, range_out, heap_out, k,
                   stats);
      return;
    }
    const FlatLeafEntryRec* bucket = p_.entries + node.begin;
    const bool has_vp2 = HasVp2(node);
    if (range_out != nullptr) {
      // Same chunked two-phase structure as the heap tree (see
      // core::ChunkedRangeFilter); the per-entry tests run scalar over the
      // v1 AoS records.
      core::ChunkedRangeFilter(
          node.count,
          [&](std::size_t base, std::size_t n) {
            std::uint64_t mask = 0;
            for (std::size_t i = 0; i < n; ++i) {
              const FlatLeafEntryRec& x = bucket[base + i];
              bool pass = std::abs(d1 - x.d1) <= radius &&
                          (!has_vp2 || std::abs(d2 - x.d2) <= radius);
              if (pass) {
                const std::size_t checks = std::min(
                    qpath.size(), static_cast<std::size_t>(x.path_length));
                for (std::size_t j = 0; j < checks; ++j) {
                  if (std::abs(qpath[j] - p_.path[x.path_offset + j]) >
                      radius) {
                    pass = false;
                    break;
                  }
                }
              }
              if (pass) mask |= std::uint64_t{1} << i;
            }
            return mask;
          },
          [&](std::size_t i) {
            const FlatLeafEntryRec& x = bucket[i];
            const double d = metric_(query, object(x.id));
            ++stats.distance_computations;
            if (d <= radius) range_out->push_back(Neighbor{x.id, d});
          },
          stats);
      return;
    }
    for (std::uint32_t i = 0; i < node.count; ++i) {
      const FlatLeafEntryRec& x = bucket[i];
      ++stats.leaf_points_seen;
      const double r = core::KnnTau(*heap_out, k);
      bool pass = std::abs(d1 - x.d1) <= r &&
                  (!has_vp2 || std::abs(d2 - x.d2) <= r);
      if (pass) {
        const std::size_t checks =
            std::min(qpath.size(), static_cast<std::size_t>(x.path_length));
        for (std::size_t j = 0; j < checks; ++j) {
          if (std::abs(qpath[j] - p_.path[x.path_offset + j]) > r) {
            pass = false;
            break;
          }
        }
      }
      if (!pass) {
        ++stats.leaf_points_filtered;
        continue;
      }
      const double d = metric_(query, object(x.id));
      ++stats.distance_computations;
      core::KnnOffer(*heap_out, k, Neighbor{x.id, d});
    }
  }

  /// v2 structure-of-arrays leaf filter. Range mode sweeps the contiguous
  /// D1/D2 columns and the column-major PATH slab with the branchless
  /// compare+mask kernel (metric::kernels::AnnulusMask), 64 entries per
  /// chunk; the pass bits are identical to the scalar per-entry tests, so
  /// results and SearchStats match the heap tree and the v1 view exactly.
  template <typename Query>
  void FilterLeafV2(const FlatNodeRec& node, const Query& query, double radius,
                    double d1, double d2, const std::vector<double>& qpath,
                    std::vector<Neighbor>* range_out,
                    std::vector<Neighbor>* heap_out, std::size_t k,
                    SearchStats& stats) const {
    const std::uint64_t ni =
        static_cast<std::uint64_t>(&node - p_.nodes);
    const std::uint32_t* ids = p_.ids + node.begin;
    const double* d1s = p_.d1 + node.begin;
    const double* d2s = p_.d2 + node.begin;
    const FlatLeafPathRec& lp = p_.leafpaths[ni];
    const double* slab = p_.path + lp.slab_offset;
    const std::size_t count = node.count;
    const std::size_t checks =
        std::min(qpath.size(), static_cast<std::size_t>(lp.path_length));
    const bool has_vp2 = HasVp2(node);
    if (range_out != nullptr) {
      core::ChunkedRangeFilter(
          count,
          [&](std::size_t base, std::size_t n) {
            std::uint64_t mask =
                metric::kernels::AnnulusMask(d1, d1s + base, n, radius);
            if (has_vp2 && mask != 0) {
              mask &= metric::kernels::AnnulusMask(d2, d2s + base, n, radius);
            }
            for (std::size_t j = 0; j < checks && mask != 0; ++j) {
              mask &= metric::kernels::AnnulusMask(
                  qpath[j], slab + j * count + base, n, radius);
            }
            return mask;
          },
          [&](std::size_t i) {
            const double d = metric_(query, object(ids[i]));
            ++stats.distance_computations;
            if (d <= radius) range_out->push_back(Neighbor{ids[i], d});
          },
          stats);
      return;
    }
    // k-NN mode stays per-entry (tau shrinks with every offer), reading the
    // SoA columns scalar-wise.
    for (std::size_t i = 0; i < count; ++i) {
      ++stats.leaf_points_seen;
      const double r = core::KnnTau(*heap_out, k);
      bool pass = std::abs(d1 - d1s[i]) <= r &&
                  (!has_vp2 || std::abs(d2 - d2s[i]) <= r);
      if (pass) {
        for (std::size_t j = 0; j < checks; ++j) {
          if (std::abs(qpath[j] - slab[j * count + i]) > r) {
            pass = false;
            break;
          }
        }
      }
      if (!pass) {
        ++stats.leaf_points_filtered;
        continue;
      }
      const double d = metric_(query, object(ids[i]));
      ++stats.distance_computations;
      core::KnnOffer(*heap_out, k, Neighbor{ids[i], d});
    }
  }

  template <typename Query>
  void KnnSearchNode(std::uint64_t ni, const Query& query, std::size_t k,
                     std::vector<double>& qpath, std::vector<Neighbor>& heap,
                     SearchStats& stats,
                     const core::RootPrime* prime = nullptr) const {
    const FlatNodeRec& node = p_.nodes[ni];
    ++stats.nodes_visited;
    double d1;
    if (prime != nullptr && prime->has_d1) {
      core::ConsumePrimedDistance(metric_);
      d1 = prime->d1;
    } else {
      d1 = metric_(query, object(node.vp1));
    }
    ++stats.distance_computations;
    core::KnnOffer(heap, k, Neighbor{node.vp1, d1});
    double d2 = 0.0;
    if (HasVp2(node)) {
      if (prime != nullptr && prime->has_d2) {
        core::ConsumePrimedDistance(metric_);
        d2 = prime->d2;
      } else {
        d2 = metric_(query, object(node.vp2));
      }
      ++stats.distance_computations;
      core::KnnOffer(heap, k, Neighbor{node.vp2, d2});
    }

    if (IsLeaf(node)) {
      FilterLeaf(node, query, 0.0, d1, d2, qpath, nullptr, &heap, k, stats);
      return;
    }

    const std::size_t p = p_.header.num_path_distances;
    std::size_t pushed = 0;
    if (qpath.size() < p) {
      qpath.push_back(d1);
      ++pushed;
      if (qpath.size() < p) {
        qpath.push_back(d2);
        ++pushed;
      }
    }

    struct Ranked {
      double bound;
      std::size_t child;
    };
    const std::size_t m = p_.header.order;
    const double* lower1 = p_.bounds + node.begin;
    const double* upper1 = lower1 + m;
    const double* lower2 = upper1 + m;
    const double* upper2 = lower2 + m * m;
    const std::uint32_t* kids = p_.children + node.children;
    std::vector<Ranked> ranked;
    ranked.reserve(m * m);
    for (std::size_t g = 0; g < m; ++g) {
      const double b1 = std::max({0.0, lower1[g] - d1, d1 - upper1[g]});
      for (std::size_t s = 0; s < m; ++s) {
        const std::size_t c = g * m + s;
        if (kids[c] == kNullChild) continue;
        const double b2 = std::max({0.0, lower2[c] - d2, d2 - upper2[c]});
        ranked.push_back(Ranked{std::max(b1, b2), c});
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) { return a.bound < b.bound; });
    for (const Ranked& r : ranked) {
      if (r.bound > core::KnnTau(heap, k)) break;
      KnnSearchNode(kids[r.child], query, k, qpath, heap, stats);
    }
    qpath.resize(qpath.size() - pushed);
  }

  FlatArenaParts p_;
  Metric metric_;
};

}  // namespace mvp::snapshot::flat

#endif  // MVPTREE_SNAPSHOT_FLAT_TREE_H_

#ifndef MVPTREE_SNAPSHOT_FLAT_TREE_H_
#define MVPTREE_SNAPSHOT_FLAT_TREE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/query.h"
#include "common/status.h"
#include "core/search_shared.h"

/// \file
/// The flat mvp-tree: a position-independent, offset-based encoding of one
/// shard tree in a single contiguous arena, searched directly out of the
/// mmap'd snapshot container — zero deserialization, zero per-load
/// allocation. Where the heap tree pays a full pointer-tree reconstruction
/// (object decode, node allocation, bound-vector copies) before its first
/// query, opening a flat arena is: map the file, CRC the chunk, validate
/// the arena's offsets once, and search.
///
/// Layout (all integers little-endian; docs/index_format.md has the
/// byte-level diagrams; every section starts on an 8-byte boundary within
/// the arena, and the snapshot writer 8-aligns the arena's file offset so
/// in-memory records are naturally aligned under both mmap and the heap
/// fallback):
///
///   FlatHeaderRec          fixed 144 bytes
///   objects   f64[object_count * dim]   vectors, row-major, viewed in place
///   path      f64[path_count]           the tree's shared PATH pool
///   bounds    f64[bounds_count]         per internal node at `begin`:
///                                       lower1[m] upper1[m]
///                                       lower2[m*m] upper2[m*m]
///   entries   FlatLeafEntryRec[entry_count]   leaf points (D1/D2 + PATH ref)
///   nodes     FlatNodeRec[node_count]         preorder; root is node 0
///   children  u32[children_count]       m*m slots per internal node;
///                                       0xFFFFFFFF = absent child
///
/// Safety: the arena is untrusted bytes. ParseFlatArena bounds-checks every
/// offset/count, and a structural pass enforces that child links point
/// strictly forward (preorder), that every node is referenced exactly once,
/// and that depth stays within the same cap as heap deserialization — so a
/// corrupted arena yields Status::Corruption at open, never a crash or an
/// unterminated traversal. The searches mirror core::MvpTree statement for
/// statement (sharing core/search_shared.h) so results and
/// distance-computation counts are bit-identical to the heap tree built
/// from the same stream.

namespace mvp::snapshot::flat {

inline constexpr std::uint32_t kFlatMagic = 0x5a50564d;  // "MVPZ"
inline constexpr std::uint32_t kFlatVersion = 1;
inline constexpr std::uint64_t kNoNode = ~std::uint64_t{0};
inline constexpr std::uint32_t kNullChild = 0xffffffffu;
inline constexpr std::size_t kFlatAlignment = 8;
/// Same nesting cap as MvpTree deserialization.
inline constexpr std::size_t kMaxFlatDepth = 512;

/// Fixed arena header. POD with explicit field order chosen so the struct
/// has no padding; written/read by memcpy on the (little-endian,
/// byte-addressable) targets this library supports.
struct FlatHeaderRec {
  std::uint32_t magic = kFlatMagic;
  std::uint32_t version = kFlatVersion;
  std::uint32_t order = 0;               ///< m
  std::uint32_t leaf_capacity = 0;       ///< k
  std::uint32_t num_path_distances = 0;  ///< p
  std::uint32_t flags = 0;               ///< bit0 = store_exact_bounds
  std::uint32_t dim = 0;                 ///< dimensions per stored vector
  std::uint32_t reserved = 0;
  std::uint64_t object_count = 0;
  std::uint64_t node_count = 0;
  std::uint64_t root = kNoNode;
  std::uint64_t objects_offset = 0;
  std::uint64_t path_offset = 0;
  std::uint64_t path_count = 0;
  std::uint64_t bounds_offset = 0;
  std::uint64_t bounds_count = 0;
  std::uint64_t entries_offset = 0;
  std::uint64_t entry_count = 0;
  std::uint64_t nodes_offset = 0;
  std::uint64_t children_offset = 0;
  std::uint64_t children_count = 0;
  std::uint64_t arena_bytes = 0;
};
static_assert(sizeof(FlatHeaderRec) == 144, "header layout drifted");

inline constexpr std::uint32_t kHeaderExactBounds = 1u << 0;

/// One tree node, 32 bytes. Leaves: `begin`/`count` select a run of leaf
/// entries. Internal nodes: `begin` indexes the bounds pool (2m + 2m*m
/// doubles), `children` indexes m*m slots in the children pool.
struct FlatNodeRec {
  std::uint32_t flags = 0;  ///< bit0 = leaf, bit1 = has_vp2
  std::uint32_t vp1 = 0;
  std::uint32_t vp2 = 0;
  std::uint32_t count = 0;
  std::uint64_t begin = 0;
  std::uint64_t children = 0;
};
static_assert(sizeof(FlatNodeRec) == 32, "node layout drifted");

inline constexpr std::uint32_t kNodeLeaf = 1u << 0;
inline constexpr std::uint32_t kNodeHasVp2 = 1u << 1;

/// One leaf point, 32 bytes: the paper's D1[i]/D2[i] plus its PATH slice.
struct FlatLeafEntryRec {
  std::uint32_t id = 0;
  std::uint32_t path_offset = 0;
  std::uint32_t path_length = 0;
  std::uint32_t reserved = 0;
  double d1 = 0.0;
  double d2 = 0.0;
};
static_assert(sizeof(FlatLeafEntryRec) == 32, "leaf entry layout drifted");

/// Zero-copy view of one stored vector inside the arena. Duck-compatible
/// with std::vector<double> for the Lp metrics' templated operator(), so
/// d(query, stored) runs on the mapped bytes with no materialization.
class VectorView {
 public:
  VectorView(const double* data, std::size_t dim) : data_(data), dim_(dim) {}
  std::size_t size() const { return dim_; }
  double operator[](std::size_t i) const { return data_[i]; }
  const double* data() const { return data_; }

 private:
  const double* data_;
  std::size_t dim_;
};

/// Transcodes one serialized MvpTree stream (the exact bytes
/// MvpTree::Serialize + VectorCodec emit — vector objects only) into a
/// self-contained flat arena. Validates the stream as strictly as
/// MvpTree::Deserialize does; the result is byte-stable for a given stream.
Result<std::vector<std::uint8_t>> BuildFlatArena(const std::uint8_t* stream,
                                                 std::size_t length);

/// A bounds-checked, structurally validated view into a flat arena. All
/// pointers alias the caller's bytes, which must outlive the view.
struct FlatArenaParts {
  FlatHeaderRec header;
  const double* objects = nullptr;
  const double* path = nullptr;
  const double* bounds = nullptr;
  const FlatLeafEntryRec* entries = nullptr;
  const FlatNodeRec* nodes = nullptr;
  const std::uint32_t* children = nullptr;
};

/// Parses + validates an arena (untrusted bytes): header sanity, section
/// bounds, id ranges, PATH slices, preorder child links, depth cap. Every
/// corrupt offset yields Corruption; a returned view is safe to traverse.
Result<FlatArenaParts> ParseFlatArena(const std::uint8_t* data,
                                      std::size_t size);

/// Read-only mvp-tree over a validated flat arena. Query objects are dense
/// real vectors; `Metric` must accept (query, VectorView) — all bundled Lp
/// metrics (and serve::CancelChecked wrappers of them) do.
///
/// Search results, their order of discovery, and every SearchStats counter
/// are bit-identical to core::MvpTree over the same logical tree: both
/// traversals evaluate the same metric calls in the same sequence
/// (tests/flat_equivalence_test.cc holds this to 1k+ random queries).
/// Thread safety: immutable after Open; const searches are freely
/// concurrent (same contract as MvpTree).
template <typename Metric>
class FlatTreeView {
 public:
  /// Validates `data` and binds the view. The bytes must stay alive and
  /// unmodified for the view's lifetime (the snapshot path guarantees this
  /// by keeping the MmapFile alive alongside the index).
  static Result<FlatTreeView> Open(const std::uint8_t* data, std::size_t size,
                                   Metric metric) {
    auto parts = ParseFlatArena(data, size);
    if (!parts.ok()) return parts.status();
    return FlatTreeView(std::move(parts).ValueOrDie(), std::move(metric));
  }

  std::size_t size() const {
    return static_cast<std::size_t>(p_.header.object_count);
  }
  int order() const { return static_cast<int>(p_.header.order); }
  int leaf_capacity() const {
    return static_cast<int>(p_.header.leaf_capacity);
  }
  int num_path_distances() const {
    return static_cast<int>(p_.header.num_path_distances);
  }
  bool store_exact_bounds() const {
    return (p_.header.flags & kHeaderExactBounds) != 0;
  }
  std::size_t dim() const { return p_.header.dim; }
  std::size_t node_count() const {
    return static_cast<std::size_t>(p_.header.node_count);
  }
  const Metric& metric() const { return metric_; }

  VectorView object(std::size_t id) const {
    MVP_DCHECK(id < p_.header.object_count);
    return VectorView(p_.objects + id * p_.header.dim, p_.header.dim);
  }

  /// Mirrors MvpTree::RangeSearch (sorted by distance then id).
  template <typename Query>
  std::vector<Neighbor> RangeSearch(const Query& query, double radius,
                                    SearchStats* stats = nullptr) const {
    std::vector<Neighbor> result;
    SearchStats local;
    RangeSearchInto(query, radius, &result, &local);
    std::sort(result.begin(), result.end(), NeighborLess);
    if (stats != nullptr) core::MergeSearchStats(stats, local);
    return result;
  }

  /// Mirrors MvpTree::RangeSearchInto — unsorted append into `*out`; a
  /// cancellation unwinding mid-search leaves the hits found so far.
  template <typename Query>
  void RangeSearchInto(const Query& query, double radius,
                       std::vector<Neighbor>* out,
                       SearchStats* stats = nullptr) const {
    MVP_DCHECK(radius >= 0);
    MVP_DCHECK(out != nullptr);
    SearchStats local;
    SearchStats& sink = stats != nullptr ? *stats : local;
    if (p_.header.root != kNoNode) {
      std::vector<double> qpath;
      qpath.reserve(p_.header.num_path_distances);
      RangeSearchNode(p_.header.root, query, radius, qpath, *out, sink);
    }
  }

  /// Mirrors MvpTree::KnnSearch (sorted by distance then id).
  template <typename Query>
  std::vector<Neighbor> KnnSearch(const Query& query, std::size_t k,
                                  SearchStats* stats = nullptr) const {
    std::vector<Neighbor> heap;
    SearchStats local;
    KnnSearchInto(query, k, &heap, &local);
    std::sort_heap(heap.begin(), heap.end(), NeighborLess);
    if (stats != nullptr) core::MergeSearchStats(stats, local);
    return heap;
  }

  /// Mirrors MvpTree::KnnSearchInto — `*heap` is a max-heap under
  /// NeighborLess holding the best <= k seen so far.
  template <typename Query>
  void KnnSearchInto(const Query& query, std::size_t k,
                     std::vector<Neighbor>* heap,
                     SearchStats* stats = nullptr) const {
    MVP_DCHECK(heap != nullptr);
    SearchStats local;
    SearchStats& sink = stats != nullptr ? *stats : local;
    if (p_.header.root != kNoNode && k > 0) {
      std::vector<double> qpath;
      qpath.reserve(p_.header.num_path_distances);
      KnnSearchNode(p_.header.root, query, k, qpath, *heap, sink);
    }
  }

 private:
  FlatTreeView(FlatArenaParts parts, Metric metric)
      : p_(parts), metric_(std::move(metric)) {}

  bool IsLeaf(const FlatNodeRec& n) const { return (n.flags & kNodeLeaf) != 0; }
  bool HasVp2(const FlatNodeRec& n) const {
    return (n.flags & kNodeHasVp2) != 0;
  }

  // The traversals below are line-for-line transcriptions of
  // MvpTree::RangeSearchNode / KnnSearchNode / FilterLeaf with pointer
  // dereferences replaced by arena index arithmetic. Keep them in lockstep
  // with core/mvp_tree.h: any divergence is a bug the equivalence suite
  // is designed to catch.

  template <typename Query>
  void RangeSearchNode(std::uint64_t ni, const Query& query, double radius,
                       std::vector<double>& qpath,
                       std::vector<Neighbor>& result,
                       SearchStats& stats) const {
    const FlatNodeRec& node = p_.nodes[ni];
    ++stats.nodes_visited;
    const double d1 = metric_(query, object(node.vp1));
    ++stats.distance_computations;
    if (d1 <= radius) result.push_back(Neighbor{node.vp1, d1});
    double d2 = 0.0;
    if (HasVp2(node)) {
      d2 = metric_(query, object(node.vp2));
      ++stats.distance_computations;
      if (d2 <= radius) result.push_back(Neighbor{node.vp2, d2});
    }

    if (IsLeaf(node)) {
      FilterLeaf(node, query, radius, d1, d2, qpath, &result, nullptr, 0,
                 stats);
      return;
    }

    const std::size_t p = p_.header.num_path_distances;
    std::size_t pushed = 0;
    if (qpath.size() < p) {
      qpath.push_back(d1);
      ++pushed;
      if (qpath.size() < p) {
        qpath.push_back(d2);
        ++pushed;
      }
    }

    const std::size_t m = p_.header.order;
    const double* lower1 = p_.bounds + node.begin;
    const double* upper1 = lower1 + m;
    const double* lower2 = upper1 + m;
    const double* upper2 = lower2 + m * m;
    const std::uint32_t* kids = p_.children + node.children;
    for (std::size_t g = 0; g < m; ++g) {
      if (!core::ShellIntersects(d1, radius, lower1[g], upper1[g])) continue;
      for (std::size_t s = 0; s < m; ++s) {
        const std::size_t c = g * m + s;
        if (kids[c] == kNullChild) continue;
        if (!core::ShellIntersects(d2, radius, lower2[c], upper2[c])) continue;
        RangeSearchNode(kids[c], query, radius, qpath, result, stats);
      }
    }
    qpath.resize(qpath.size() - pushed);
  }

  template <typename Query>
  void FilterLeaf(const FlatNodeRec& node, const Query& query, double radius,
                  double d1, double d2, const std::vector<double>& qpath,
                  std::vector<Neighbor>* range_out,
                  std::vector<Neighbor>* heap_out, std::size_t k,
                  SearchStats& stats) const {
    const FlatLeafEntryRec* bucket = p_.entries + node.begin;
    const bool has_vp2 = HasVp2(node);
    for (std::uint32_t i = 0; i < node.count; ++i) {
      const FlatLeafEntryRec& x = bucket[i];
      ++stats.leaf_points_seen;
      const double r = heap_out != nullptr ? core::KnnTau(*heap_out, k) : radius;
      bool pass = std::abs(d1 - x.d1) <= r &&
                  (!has_vp2 || std::abs(d2 - x.d2) <= r);
      if (pass) {
        const std::size_t checks =
            std::min(qpath.size(), static_cast<std::size_t>(x.path_length));
        for (std::size_t j = 0; j < checks; ++j) {
          if (std::abs(qpath[j] - p_.path[x.path_offset + j]) > r) {
            pass = false;
            break;
          }
        }
      }
      if (!pass) {
        ++stats.leaf_points_filtered;
        continue;
      }
      const double d = metric_(query, object(x.id));
      ++stats.distance_computations;
      if (range_out != nullptr) {
        if (d <= radius) range_out->push_back(Neighbor{x.id, d});
      } else {
        core::KnnOffer(*heap_out, k, Neighbor{x.id, d});
      }
    }
  }

  template <typename Query>
  void KnnSearchNode(std::uint64_t ni, const Query& query, std::size_t k,
                     std::vector<double>& qpath, std::vector<Neighbor>& heap,
                     SearchStats& stats) const {
    const FlatNodeRec& node = p_.nodes[ni];
    ++stats.nodes_visited;
    const double d1 = metric_(query, object(node.vp1));
    ++stats.distance_computations;
    core::KnnOffer(heap, k, Neighbor{node.vp1, d1});
    double d2 = 0.0;
    if (HasVp2(node)) {
      d2 = metric_(query, object(node.vp2));
      ++stats.distance_computations;
      core::KnnOffer(heap, k, Neighbor{node.vp2, d2});
    }

    if (IsLeaf(node)) {
      FilterLeaf(node, query, 0.0, d1, d2, qpath, nullptr, &heap, k, stats);
      return;
    }

    const std::size_t p = p_.header.num_path_distances;
    std::size_t pushed = 0;
    if (qpath.size() < p) {
      qpath.push_back(d1);
      ++pushed;
      if (qpath.size() < p) {
        qpath.push_back(d2);
        ++pushed;
      }
    }

    struct Ranked {
      double bound;
      std::size_t child;
    };
    const std::size_t m = p_.header.order;
    const double* lower1 = p_.bounds + node.begin;
    const double* upper1 = lower1 + m;
    const double* lower2 = upper1 + m;
    const double* upper2 = lower2 + m * m;
    const std::uint32_t* kids = p_.children + node.children;
    std::vector<Ranked> ranked;
    ranked.reserve(m * m);
    for (std::size_t g = 0; g < m; ++g) {
      const double b1 = std::max({0.0, lower1[g] - d1, d1 - upper1[g]});
      for (std::size_t s = 0; s < m; ++s) {
        const std::size_t c = g * m + s;
        if (kids[c] == kNullChild) continue;
        const double b2 = std::max({0.0, lower2[c] - d2, d2 - upper2[c]});
        ranked.push_back(Ranked{std::max(b1, b2), c});
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked& a, const Ranked& b) { return a.bound < b.bound; });
    for (const Ranked& r : ranked) {
      if (r.bound > core::KnnTau(heap, k)) break;
      KnnSearchNode(kids[r.child], query, k, qpath, heap, stats);
    }
    qpath.resize(qpath.size() - pushed);
  }

  FlatArenaParts p_;
  Metric metric_;
};

}  // namespace mvp::snapshot::flat

#endif  // MVPTREE_SNAPSHOT_FLAT_TREE_H_

#ifndef MVPTREE_SNAPSHOT_MMAP_FILE_H_
#define MVPTREE_SNAPSHOT_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

#if defined(__unix__) || defined(__APPLE__)
#define MVPTREE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MVPTREE_HAS_MMAP 0
#endif

/// \file
/// Read-only memory-mapped file for the snapshot load path.
///
/// Mapping the snapshot container instead of fread-ing it means the load
/// path deserializes straight out of the page cache with zero intermediate
/// copies of the payload, the kernel prefetches sequentially-scanned chunks
/// (MADV_SEQUENTIAL), and N parallel shard loaders share one physical copy
/// of the bytes. On platforms without mmap the class degrades to reading
/// the file into an owned buffer — same interface, one extra copy.

namespace mvp::snapshot {

/// Move-only RAII view of a whole file's bytes.
class MmapFile {
 public:
  /// Maps `path` read-only. An empty file yields a valid zero-length view.
  static Result<MmapFile> Open(const std::string& path) {
#if MVPTREE_HAS_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IOError("cannot open for mmap: " + path);
    struct ::stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError("fstat failed: " + path);
    }
    MmapFile file;
    file.size_ = static_cast<std::size_t>(st.st_size);
    if (file.size_ > 0) {
      void* map = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map == MAP_FAILED) {
        ::close(fd);
        return Status::IOError("mmap failed: " + path);
      }
      ::madvise(map, file.size_, MADV_SEQUENTIAL);
      file.data_ = static_cast<const std::uint8_t*>(map);
    }
    // The mapping keeps the file alive; the descriptor is no longer needed.
    ::close(fd);
    return file;
#else
    auto bytes = ReadFile(path);
    if (!bytes.ok()) return bytes.status();
    MmapFile file;
    file.fallback_ = std::move(bytes).ValueOrDie();
    file.data_ = file.fallback_.data();
    file.size_ = file.fallback_.size();
    return file;
#endif
  }

  MmapFile() = default;
  ~MmapFile() { Reset(); }

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = other.data_;
      size_ = other.size_;
      fallback_ = std::move(other.fallback_);
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  void Reset() {
#if MVPTREE_HAS_MMAP
    if (data_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
#endif
    data_ = nullptr;
    size_ = 0;
    fallback_.clear();
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::vector<std::uint8_t> fallback_;  // non-mmap platforms only
};

}  // namespace mvp::snapshot

#endif  // MVPTREE_SNAPSHOT_MMAP_FILE_H_

#ifndef MVPTREE_SNAPSHOT_MMAP_FILE_H_
#define MVPTREE_SNAPSHOT_MMAP_FILE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "fault/fault_fs.h"

#if defined(__unix__) || defined(__APPLE__)
#define MVPTREE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MVPTREE_HAS_MMAP 0
#endif

/// \file
/// Read-only memory-mapped file for the snapshot load path.
///
/// Mapping the snapshot container instead of fread-ing it means the load
/// path deserializes straight out of the page cache with zero intermediate
/// copies of the payload, the kernel prefetches sequentially-scanned chunks
/// (MADV_SEQUENTIAL), and N parallel shard loaders share one physical copy
/// of the bytes. The heap-fallback path (read the file into an owned
/// buffer — same interface, one extra copy) is always compiled: it is the
/// only path off-POSIX, and on POSIX it can be forced per process with
/// `MmapFile::ForceHeapFallback(true)` so tests exercise it on Linux too.
/// The mmap path routes open/fstat/mmap through the fault::fs seam for
/// fault-injection tests.
///
/// Thread-safety analysis: an open MmapFile is an immutable view (readers
/// share it freely); the only mutable shared state is the process-wide
/// force_fallback_ atomic. No locks, no capabilities — verified by the
/// TSA build.

namespace mvp::snapshot {

/// Move-only RAII view of a whole file's bytes.
class MmapFile {
 public:
  /// Maps `path` read-only. An empty file yields a valid zero-length view.
  /// With `prefault`, the kernel populates the whole page table at map
  /// time (MAP_POPULATE where available) instead of taking a minor fault
  /// per 4 KiB page on first touch — callers that immediately stream every
  /// byte (the flat snapshot open checksums the full container before its
  /// first query) save thousands of fault round-trips.
  static Result<MmapFile> Open(const std::string& path,
                               bool prefault = false) {
#if MVPTREE_HAS_MMAP
    if (!force_fallback_.load(std::memory_order_relaxed)) {
      const int fd = fault::fs::Open(path.c_str(), O_RDONLY, 0);
      if (fd < 0) return Status::IOError("cannot open for mmap: " + path);
      struct ::stat st {};
      if (fault::fs::Fstat(fd, &st, path.c_str()) != 0) {
        ::close(fd);
        return Status::IOError("fstat failed: " + path);
      }
      MmapFile file;
      file.size_ = static_cast<std::size_t>(st.st_size);
      if (file.size_ > 0) {
        int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
        if (prefault) flags |= MAP_POPULATE;
#else
        (void)prefault;  // advisory only; demand faulting is still correct
#endif
        void* map = fault::fs::Mmap(file.size_, PROT_READ, flags, fd,
                                    path.c_str());
        if (map == MAP_FAILED) {
          ::close(fd);
          return Status::IOError("mmap failed: " + path);
        }
        ::madvise(map, file.size_, MADV_SEQUENTIAL);
        file.data_ = static_cast<const std::uint8_t*>(map);
        file.mapped_ = true;
      }
      // The mapping keeps the file alive; the descriptor is no longer
      // needed.
      ::close(fd);
      return file;
    }
#endif
    auto bytes = ReadFile(path);
    if (!bytes.ok()) return bytes.status();
    MmapFile file;
    file.fallback_ = std::move(bytes).ValueOrDie();
    file.data_ = file.fallback_.data();
    file.size_ = file.fallback_.size();
    return file;
  }

  /// Process-wide switch forcing every subsequent Open onto the heap
  /// fallback, so the fallback path can be tested on platforms that have
  /// mmap. Affects only future opens; existing views are untouched.
  static void ForceHeapFallback(bool on) {
    force_fallback_.store(on, std::memory_order_relaxed);
  }
  static bool heap_fallback_forced() {
    return force_fallback_.load(std::memory_order_relaxed);
  }

  /// True when this view is an actual kernel mapping (false: heap copy).
  bool mapped() const { return mapped_; }

  MmapFile() = default;
  ~MmapFile() { Reset(); }

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = other.data_;
      size_ = other.size_;
      mapped_ = other.mapped_;
      fallback_ = std::move(other.fallback_);
      other.data_ = nullptr;
      other.size_ = 0;
      other.mapped_ = false;
    }
    return *this;
  }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  void Reset() {
#if MVPTREE_HAS_MMAP
    if (mapped_ && data_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
#endif
    data_ = nullptr;
    size_ = 0;
    mapped_ = false;
    fallback_.clear();
  }

  inline static std::atomic<bool> force_fallback_{false};

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> fallback_;  // owned copy when not mapped
};

}  // namespace mvp::snapshot

#endif  // MVPTREE_SNAPSHOT_MMAP_FILE_H_

// AVX-512 tier: 8 double lanes, lane-per-object / lane-per-query batching
// (docs/simd_kernels.md). Compiled with -mavx512f -mavx512dq
// -ffp-contract=off; only ever called after the dispatcher has verified
// avx512f+avx512dq support. Bit-identity rules are the same as the AVX2
// tier: vectorise across the batch, sequential per-lane accumulation,
// sign-mask abs, compare+blend L∞, no FMA.

#include "metric/kernels/kernels.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cmath>

namespace mvp::metric::kernels {
namespace {

inline __m512d Abs512(__m512d v) { return _mm512_abs_pd(v); }

// 4x4 transpose of 256-bit rows (shared with the AVX2 tier's layout).
inline void Transpose4(__m256d r0, __m256d r1, __m256d r2, __m256d r3,
                       __m256d* c0, __m256d* c1, __m256d* c2, __m256d* c3) {
  const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
  const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
  const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
  const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
  *c0 = _mm256_permute2f128_pd(t0, t2, 0x20);
  *c1 = _mm256_permute2f128_pd(t1, t3, 0x20);
  *c2 = _mm256_permute2f128_pd(t0, t2, 0x31);
  *c3 = _mm256_permute2f128_pd(t1, t3, 0x31);
}

template <Family kFam>
inline __m512d Accumulate(__m512d acc, __m512d diff) {
  if constexpr (kFam == Family::kL1) {
    return _mm512_add_pd(acc, Abs512(diff));
  } else if constexpr (kFam == Family::kL2) {
    return _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
  } else {
    const __m512d cur = Abs512(diff);
    const __mmask8 gt = _mm512_cmp_pd_mask(cur, acc, _CMP_GT_OQ);
    return _mm512_mask_blend_pd(gt, acc, cur);
  }
}

template <Family kFam>
inline __m512d Finish(__m512d acc) {
  if constexpr (kFam == Family::kL2) {
    return _mm512_sqrt_pd(acc);
  } else {
    return acc;
  }
}

// Eight vectors (lane-per-vector) against one broadcast vector. The column
// gather is two 4x4 256-bit transposes glued with insertf64x4.
template <Family kFam, bool kQueryBroadcast>
inline void Distance8(const double* broadcast, const double* const rows[8],
                      std::size_t dim, double* out8) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    __m256d lo[4];
    __m256d hi[4];
    Transpose4(_mm256_loadu_pd(rows[0] + i), _mm256_loadu_pd(rows[1] + i),
               _mm256_loadu_pd(rows[2] + i), _mm256_loadu_pd(rows[3] + i),
               &lo[0], &lo[1], &lo[2], &lo[3]);
    Transpose4(_mm256_loadu_pd(rows[4] + i), _mm256_loadu_pd(rows[5] + i),
               _mm256_loadu_pd(rows[6] + i), _mm256_loadu_pd(rows[7] + i),
               &hi[0], &hi[1], &hi[2], &hi[3]);
    for (int j = 0; j < 4; ++j) {
      const __m512d col = _mm512_insertf64x4(
          _mm512_castpd256_pd512(lo[j]), hi[j], 1);
      const __m512d bv = _mm512_set1_pd(broadcast[i + j]);
      const __m512d diff = kQueryBroadcast ? _mm512_sub_pd(bv, col)
                                           : _mm512_sub_pd(col, bv);
      acc = Accumulate<kFam>(acc, diff);
    }
  }
  for (; i < dim; ++i) {
    const __m512d col =
        _mm512_set_pd(rows[7][i], rows[6][i], rows[5][i], rows[4][i],
                      rows[3][i], rows[2][i], rows[1][i], rows[0][i]);
    const __m512d bv = _mm512_set1_pd(broadcast[i]);
    const __m512d diff =
        kQueryBroadcast ? _mm512_sub_pd(bv, col) : _mm512_sub_pd(col, bv);
    acc = Accumulate<kFam>(acc, diff);
  }
  _mm512_storeu_pd(out8, Finish<kFam>(acc));
}

template <Family kFam>
void Avx512OneToMany(const double* query, const double* objects,
                     std::size_t count, std::size_t stride, std::size_t dim,
                     double* out) {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const double* rows[8];
    for (int j = 0; j < 8; ++j) rows[j] = objects + (i + j) * stride;
    Distance8<kFam, /*kQueryBroadcast=*/true>(query, rows, dim, out + i);
  }
  for (; i < count; ++i) {
    out[i] = PairDistance(kFam, query, objects + i * stride, dim);
  }
}

template <Family kFam>
void Avx512ManyToOne(const double* const* queries, std::size_t count,
                     const double* vp, std::size_t dim, double* out) {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const double* rows[8];
    for (int j = 0; j < 8; ++j) rows[j] = queries[i + j];
    Distance8<kFam, /*kQueryBroadcast=*/false>(vp, rows, dim, out + i);
  }
  for (; i < count; ++i) {
    out[i] = PairDistance(kFam, queries[i], vp, dim);
  }
}

std::uint64_t Avx512AnnulusMask(double center, const double* values,
                                std::size_t count, double radius) {
  const __m512d c = _mm512_set1_pd(center);
  const __m512d r = _mm512_set1_pd(radius);
  std::uint64_t mask = 0;
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m512d diff = Abs512(_mm512_sub_pd(c, _mm512_loadu_pd(values + i)));
    const __mmask8 le = _mm512_cmp_pd_mask(diff, r, _CMP_LE_OQ);
    mask |= static_cast<std::uint64_t>(le) << i;
  }
  for (; i < count; ++i) {
    if (std::fabs(center - values[i]) <= radius) {
      mask |= std::uint64_t{1} << i;
    }
  }
  return mask;
}

}  // namespace

namespace internal {

const Ops* Avx512Ops() {
  static const Ops ops = {
      {&Avx512OneToMany<Family::kL1>, &Avx512OneToMany<Family::kL2>,
       &Avx512OneToMany<Family::kLInf>},
      {&Avx512ManyToOne<Family::kL1>, &Avx512ManyToOne<Family::kL2>,
       &Avx512ManyToOne<Family::kLInf>},
      &Avx512AnnulusMask,
  };
  return &ops;
}

}  // namespace internal
}  // namespace mvp::metric::kernels

#else  // !x86_64

namespace mvp::metric::kernels::internal {
const Ops* Avx512Ops() { return nullptr; }
}  // namespace mvp::metric::kernels::internal

#endif

#ifndef MVPTREE_METRIC_KERNELS_KERNELS_H_
#define MVPTREE_METRIC_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/status.h"

/// \file
/// Runtime-dispatched batch distance kernels for the dense Minkowski metrics
/// (docs/simd_kernels.md).
///
/// The contract that makes SIMD safe to ship in this repo is *bit-identity*:
/// every tier must return exactly the bytes the scalar reference returns, for
/// every input including ±0, subnormals, ±Inf and NaN. The canonical
/// evaluation order is the scalar reference in kernels.cc — a strictly
/// sequential walk over the dimensions with unfused multiply+add (the kernel
/// translation units are compiled with `-ffp-contract=off`). The vector tiers
/// reproduce that order by vectorising across the *batch* dimension instead:
/// each SIMD lane owns one object (or one query) and accumulates its
/// dimensions in the same sequential order the scalar loop uses, so every
/// lane's result is the scalar result bit for bit.
///
/// Two batch shapes cover the serving hot paths:
///   * one query × many objects  (`*OneToMany`) — linear sweeps, benches;
///   * many queries × one vantage point (`*ManyToOne`) — `serve::RunBatch`
///     amortising a node's vantage-point distances over co-arriving queries.
/// Single-pair distances (`L1Pair`/`L2Pair`/`LInfPair`) always run the scalar
/// canonical path regardless of the active tier; they *are* the reference.
///
/// `AnnulusMask` is the leaf-filter primitive: a branchless compare+mask
/// sweep answering |center - values[i]| <= radius for up to 64 values at
/// once. Comparisons are exact (no rounding), so tiers are trivially
/// identical; NaN anywhere fails the test, matching the scalar `<=`.
///
/// Dispatch: the best tier is picked once via CPUID-style feature probes
/// (`__builtin_cpu_supports`); `MVPT_FORCE_KERNEL=scalar|avx2|avx512|neon`
/// overrides it, and names a tier this host cannot run, the process aborts
/// loudly rather than silently falling back — a forced tier that quietly
/// degrades would invalidate every conformance claim downstream.

namespace mvp::metric::kernels {

/// Dispatch tiers, ordered by preference. kScalar is always available.
enum class Tier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

inline constexpr int kTierCount = 4;

/// Metric families with batch kernels.
enum class Family : int {
  kL1 = 0,
  kL2 = 1,
  kLInf = 2,
};

inline constexpr int kFamilyCount = 3;

/// Canonical lower-case tier name ("scalar", "avx2", "avx512", "neon").
const char* TierName(Tier tier);

/// True when `tier` is both compiled into this binary and runnable on this
/// host's CPU.
bool TierSupported(Tier tier);

/// The fastest supported tier on this host.
Tier BestSupportedTier();

/// The tier batch kernels currently dispatch to. On first use this resolves
/// the `MVPT_FORCE_KERNEL` environment override (aborting the process if the
/// override names an unknown or unavailable tier).
Tier ActiveTier();

/// Programmatic override: "scalar", "avx2", "avx512", "neon", or "auto" to
/// return to feature-probe dispatch. Unknown names get kInvalidArgument;
/// known-but-unavailable tiers get kNotSupported — never a silent fallback.
Status ForceTier(std::string_view name);

/// Single-pair distances: the scalar canonical reference, used by
/// metric::L1/L2/LInf for contiguous double storage. Never dispatched.
double L1Pair(const double* a, const double* b, std::size_t dim);
double L2Pair(const double* a, const double* b, std::size_t dim);
double LInfPair(const double* a, const double* b, std::size_t dim);
double PairDistance(Family family, const double* a, const double* b,
                    std::size_t dim);

/// One query against `count` row-major vectors starting at `objects`, row
/// stride `stride` doubles (stride >= dim). out[i] is bit-identical to
/// PairDistance(family, query, objects + i * stride, dim).
void OneToMany(Family family, const double* query, const double* objects,
               std::size_t count, std::size_t stride, std::size_t dim,
               double* out);

/// `count` independent queries (pointer per query) against one vantage
/// point. out[i] is bit-identical to PairDistance(family, queries[i], vp,
/// dim).
void ManyToOne(Family family, const double* const* queries, std::size_t count,
               const double* vp, std::size_t dim, double* out);

/// Annulus compare+mask sweep: bit i of the result is set iff
/// |center - values[i]| <= radius. `count` must be <= 64; bits >= count are
/// zero. NaN in center, values, or radius fails the test (bit clear),
/// matching the scalar `<=` on a NaN operand.
std::uint64_t AnnulusMask(double center, const double* values,
                          std::size_t count, double radius);

inline constexpr std::size_t kAnnulusMaskMaxCount = 64;

namespace internal {

/// Per-tier kernel table. Entries are indexed by (int)Family.
struct Ops {
  void (*one_to_many[kFamilyCount])(const double* query, const double* objects,
                                    std::size_t count, std::size_t stride,
                                    std::size_t dim, double* out);
  void (*many_to_one[kFamilyCount])(const double* const* queries,
                                    std::size_t count, const double* vp,
                                    std::size_t dim, double* out);
  std::uint64_t (*annulus_mask)(double center, const double* values,
                                std::size_t count, double radius);
};

/// Tier tables. A tier not compiled into this binary returns nullptr.
const Ops* ScalarOps();
const Ops* Avx2Ops();
const Ops* Avx512Ops();
const Ops* NeonOps();

/// Resolves an MVPT_FORCE_KERNEL value; aborts the process (after printing
/// the reason to stderr) on an unknown name or an unavailable tier. Exposed
/// for the conformance suite's death tests.
Tier TierFromEnvOrDie(const char* value);

}  // namespace internal

/// Maps a metric type to its batch-kernel family. The primary template marks
/// a metric as not batch-capable; metric/lp.h specialises it for
/// metric::L1/L2/LInf.
template <typename Metric>
struct FamilyFor {
  static constexpr bool available = false;
};

}  // namespace mvp::metric::kernels

#endif  // MVPTREE_METRIC_KERNELS_KERNELS_H_

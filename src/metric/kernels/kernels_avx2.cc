// AVX2 tier: 4 double lanes, lane-per-object / lane-per-query batching
// (docs/simd_kernels.md). Compiled with -mavx2 -ffp-contract=off; only ever
// called after the dispatcher has verified __builtin_cpu_supports("avx2").
//
// Bit-identity with the scalar reference in kernels.cc:
//   * each lane accumulates its own vector's dimensions strictly in order —
//     vectorisation is across the batch, never across dimensions;
//   * |x| is the sign-mask AND (vandpd), exactly libm fabs incl. NaN bits;
//   * L∞'s `if (diff > best)` is a _CMP_GT_OQ compare + blend, not max_pd
//     (maxpd returns the second operand on NaN — the wrong semantics);
//   * vsqrtpd and vaddpd/vmulpd are IEEE correctly rounded per lane, and
//     -ffp-contract=off forbids fusing the L2 multiply+add.

#include "metric/kernels/kernels.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cmath>

namespace mvp::metric::kernels {
namespace {

inline __m256d AbsPd(__m256d v) {
  const __m256d sign_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  return _mm256_and_pd(v, sign_mask);
}

// Rows r0..r3 each hold 4 consecutive dimensions of one vector; columns
// c0..c3 each hold one dimension across the 4 vectors.
inline void Transpose4(__m256d r0, __m256d r1, __m256d r2, __m256d r3,
                       __m256d* c0, __m256d* c1, __m256d* c2, __m256d* c3) {
  const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
  const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
  const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
  const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
  *c0 = _mm256_permute2f128_pd(t0, t2, 0x20);
  *c1 = _mm256_permute2f128_pd(t1, t3, 0x20);
  *c2 = _mm256_permute2f128_pd(t0, t2, 0x31);
  *c3 = _mm256_permute2f128_pd(t1, t3, 0x31);
}

template <Family kFam>
inline __m256d Accumulate(__m256d acc, __m256d diff) {
  if constexpr (kFam == Family::kL1) {
    return _mm256_add_pd(acc, AbsPd(diff));
  } else if constexpr (kFam == Family::kL2) {
    return _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
  } else {
    const __m256d cur = AbsPd(diff);
    const __m256d gt = _mm256_cmp_pd(cur, acc, _CMP_GT_OQ);
    return _mm256_blendv_pd(acc, cur, gt);
  }
}

template <Family kFam>
inline __m256d Finish(__m256d acc) {
  if constexpr (kFam == Family::kL2) {
    return _mm256_sqrt_pd(acc);
  } else {
    return acc;
  }
}

// Four vectors (lane-per-vector) against one broadcast vector. `a_is_query`
// flips the subtraction so NaN payload propagation matches the scalar
// `a[i] - b[i]` operand order exactly.
template <Family kFam, bool kQueryBroadcast>
inline void Distance4(const double* broadcast, const double* const rows[4],
                      std::size_t dim, double* out4) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    __m256d c0, c1, c2, c3;
    Transpose4(_mm256_loadu_pd(rows[0] + i), _mm256_loadu_pd(rows[1] + i),
               _mm256_loadu_pd(rows[2] + i), _mm256_loadu_pd(rows[3] + i),
               &c0, &c1, &c2, &c3);
    const __m256d cols[4] = {c0, c1, c2, c3};
    for (int j = 0; j < 4; ++j) {
      const __m256d bv = _mm256_broadcast_sd(broadcast + i + j);
      const __m256d diff = kQueryBroadcast ? _mm256_sub_pd(bv, cols[j])
                                           : _mm256_sub_pd(cols[j], bv);
      acc = Accumulate<kFam>(acc, diff);
    }
  }
  for (; i < dim; ++i) {
    const __m256d col = _mm256_set_pd(rows[3][i], rows[2][i], rows[1][i],
                                      rows[0][i]);
    const __m256d bv = _mm256_broadcast_sd(broadcast + i);
    const __m256d diff =
        kQueryBroadcast ? _mm256_sub_pd(bv, col) : _mm256_sub_pd(col, bv);
    acc = Accumulate<kFam>(acc, diff);
  }
  _mm256_storeu_pd(out4, Finish<kFam>(acc));
}

template <Family kFam>
void Avx2OneToMany(const double* query, const double* objects,
                   std::size_t count, std::size_t stride, std::size_t dim,
                   double* out) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* rows[4] = {objects + (i + 0) * stride,
                             objects + (i + 1) * stride,
                             objects + (i + 2) * stride,
                             objects + (i + 3) * stride};
    Distance4<kFam, /*kQueryBroadcast=*/true>(query, rows, dim, out + i);
  }
  for (; i < count; ++i) {
    out[i] = PairDistance(kFam, query, objects + i * stride, dim);
  }
}

template <Family kFam>
void Avx2ManyToOne(const double* const* queries, std::size_t count,
                   const double* vp, std::size_t dim, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* rows[4] = {queries[i + 0], queries[i + 1], queries[i + 2],
                             queries[i + 3]};
    Distance4<kFam, /*kQueryBroadcast=*/false>(vp, rows, dim, out + i);
  }
  for (; i < count; ++i) {
    out[i] = PairDistance(kFam, queries[i], vp, dim);
  }
}

std::uint64_t Avx2AnnulusMask(double center, const double* values,
                              std::size_t count, double radius) {
  const __m256d c = _mm256_set1_pd(center);
  const __m256d r = _mm256_set1_pd(radius);
  std::uint64_t mask = 0;
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d diff = AbsPd(_mm256_sub_pd(c, _mm256_loadu_pd(values + i)));
    const int bits = _mm256_movemask_pd(_mm256_cmp_pd(diff, r, _CMP_LE_OQ));
    mask |= static_cast<std::uint64_t>(bits) << i;
  }
  for (; i < count; ++i) {
    if (std::fabs(center - values[i]) <= radius) {
      mask |= std::uint64_t{1} << i;
    }
  }
  return mask;
}

}  // namespace

namespace internal {

const Ops* Avx2Ops() {
  static const Ops ops = {
      {&Avx2OneToMany<Family::kL1>, &Avx2OneToMany<Family::kL2>,
       &Avx2OneToMany<Family::kLInf>},
      {&Avx2ManyToOne<Family::kL1>, &Avx2ManyToOne<Family::kL2>,
       &Avx2ManyToOne<Family::kLInf>},
      &Avx2AnnulusMask,
  };
  return &ops;
}

}  // namespace internal
}  // namespace mvp::metric::kernels

#else  // !x86_64

namespace mvp::metric::kernels::internal {
const Ops* Avx2Ops() { return nullptr; }
}  // namespace mvp::metric::kernels::internal

#endif
